(* Rewrite/extraction benchmark: every workload is synthesized under the
   fixed [standard] and [aggressive] pipelines and under cost-guided
   extraction ([extract] = aggressive + cross-block sharing + ILP
   extraction on the area objective, plus the same pass set on the
   latency objective). Each extracted design is cosimulated against the
   behavioral reference, and the per-workload area/latency quadruple
   lands in BENCH_rewrite.json. --validate reparses an emitted file and
   enforces the gates the extraction design promises: every extracted
   cosim is bit-identical, area-guided extraction is never worse than
   fixed [aggressive] on area, and latency-guided extraction is never
   worse than fixed [aggressive] on latency. *)

open Hls_core

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let pipeline spec =
  match Hls_transform.Passes.pipeline_of_string spec with
  | Ok p -> p
  | Error e ->
      Printf.eprintf "internal error: bad pipeline %S: %s\n" spec e;
      exit 2

let synth spec src =
  timed (fun () ->
      Flow.synthesize ~options:{ Flow.default_options with Flow.passes = pipeline spec } src)

type metric = { area : int; latency : float; ms : float }

let metric (d : Flow.design) ms =
  {
    area = d.Flow.estimate.Hls_rtl.Estimate.total_area;
    latency = d.Flow.estimate.Hls_rtl.Estimate.latency_ns;
    ms = 1e3 *. ms;
  }

type row = {
  name : string;
  std : metric;
  agg : metric;
  ext_area : metric;  (** extract, area objective *)
  ext_lat : metric;  (** same pass set, latency objective *)
  cosim_ok : bool;
}

(* A bench-local kernel where every multiply is by a 2^a +- 2^b
   constant: extraction can retire the whole multiplier class, which
   the fixed pipelines cannot (strength reduction only handles the
   power-of-two cases). The paper workloads all keep at least one
   variable x variable product, so on them the cost model correctly
   leaves constant multiplies on the already-materialized multiplier —
   this row is where a strict improvement is expected. *)
let scale4 =
  ( "scale4",
    "module scale4(input x0, x1, x2, x3: int<16>; output y: int<16>);\n\
     begin y := 3 * x0 + 5 * x1 + 6 * x2 + 9 * x3; end" )

let run_bench ~runs ~out =
  let open Hls_util.Json in
  Hls_obs.Trace.reset ();
  let rows =
    List.map
      (fun (name, src) ->
        let d_std, t_std = synth "standard" src in
        let d_agg, t_agg = synth "aggressive" src in
        let d_ea, t_ea = synth "extract" src in
        let d_el, t_el = synth "extract+extract:latency" src in
        let cosim d what =
          match Flow.verify ~runs d with
          | Ok () -> true
          | Error e ->
              Printf.eprintf "%s: %s cosim diverged: %s\n" name what e;
              false
        in
        {
          name;
          std = metric d_std t_std;
          agg = metric d_agg t_agg;
          ext_area = metric d_ea t_ea;
          ext_lat = metric d_el t_el;
          cosim_ok = cosim d_ea "extract:area" && cosim d_el "extract:latency";
        })
      (Workloads.all @ [ scale4 ])
  in
  let all_cosim_ok = List.for_all (fun r -> r.cosim_ok) rows in
  let area_never_worse = List.for_all (fun r -> r.ext_area.area <= r.agg.area) rows in
  let latency_never_worse =
    List.for_all (fun r -> r.ext_lat.latency <= r.agg.latency +. 1e-6) rows
  in
  let improved =
    List.length
      (List.filter
         (fun r -> r.ext_area.area < r.agg.area || r.ext_lat.latency < r.agg.latency)
         rows)
  in
  let metric_json m =
    Obj
      [
        ("area", Num (float_of_int m.area));
        ("latency_ns", Num m.latency);
        ("ms", Num m.ms);
      ]
  in
  let row_json r =
    Obj
      [
        ("name", Str r.name);
        ("standard", metric_json r.std);
        ("aggressive", metric_json r.agg);
        ("extract_area", metric_json r.ext_area);
        ("extract_latency", metric_json r.ext_lat);
        ("cosim_ok", Bool r.cosim_ok);
      ]
  in
  let json =
    Obj
      [
        ("benchmark", Str "rewrite_extraction");
        ("host_cores", Num (float_of_int (Domain.recommended_domain_count ())));
        ( "pool_cap",
          Num (float_of_int (max 0 (Domain.recommended_domain_count () - 1))) );
        ("cosim_runs", Num (float_of_int runs));
        ("workloads", Arr (List.map row_json rows));
        ("all_cosim_ok", Bool all_cosim_ok);
        ("area_never_worse", Bool area_never_worse);
        ("latency_never_worse", Bool latency_never_worse);
        ("improved_workloads", Num (float_of_int improved));
        ("counters", Metrics.counters_json ());
      ]
  in
  let oc = open_out out in
  output_string oc (to_string json);
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf
        "  %-10s area std %5d  agg %5d  extract %5d | latency agg %7.1f  extract %7.1f%s\n"
        r.name r.std.area r.agg.area r.ext_area.area r.agg.latency r.ext_lat.latency
        (if r.cosim_ok then "" else "  COSIM FAIL"))
    rows;
  Printf.printf "%s: %d/%d workloads improved, all cosim ok: %b\n" out improved
    (List.length rows) all_cosim_ok;
  if not (all_cosim_ok && area_never_worse && latency_never_worse) then exit 1

let validate file =
  let open Hls_util.Json in
  let ic =
    try open_in file
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match parse text with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok json ->
      let fail msg =
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      in
      let bool_field key =
        match member key json with
        | Some (Bool b) -> b
        | _ -> fail (Printf.sprintf "missing boolean field %S" key)
      in
      let rows =
        match member "workloads" json with
        | Some (Arr rows) -> rows
        | _ -> fail "missing workloads array"
      in
      if rows = [] then fail "workloads array is empty";
      List.iter
        (fun row ->
          let name =
            match member "name" row with
            | Some (Str s) -> s
            | _ -> fail "workload row missing name"
          in
          let m key field =
            match Option.bind (member key row) (member field) with
            | Some (Num v) -> v
            | _ -> fail (Printf.sprintf "%s: missing %s.%s" name key field)
          in
          (* the tentpole's headline gates, re-checked per row so a
             hand-edited file cannot sneak past the booleans *)
          if m "extract_area" "area" > m "aggressive" "area" then
            fail
              (Printf.sprintf "%s: extraction area %.0f exceeds aggressive %.0f" name
                 (m "extract_area" "area") (m "aggressive" "area"));
          if m "extract_latency" "latency_ns" > m "aggressive" "latency_ns" +. 1e-6 then
            fail
              (Printf.sprintf "%s: extraction latency %.1f exceeds aggressive %.1f" name
                 (m "extract_latency" "latency_ns")
                 (m "aggressive" "latency_ns"));
          match member "cosim_ok" row with
          | Some (Bool true) -> ()
          | _ -> fail (Printf.sprintf "%s: cosim_ok is not true" name))
        rows;
      if not (bool_field "all_cosim_ok") then fail "all_cosim_ok is false";
      if not (bool_field "area_never_worse") then fail "area_never_worse is false";
      if not (bool_field "latency_never_worse") then fail "latency_never_worse is false";
      (* extraction must actually pay off somewhere, not merely tie *)
      (match member "improved_workloads" json with
      | Some (Num v) when v >= 1.0 -> ()
      | Some (Num v) -> fail (Printf.sprintf "only %.0f workload(s) improved (gate: 1)" v)
      | _ -> fail "missing numeric field \"improved_workloads\"");
      Printf.printf "%s: valid (%d workloads, all gates hold)\n" file (List.length rows)

let () =
  let runs = ref 3 and out = ref "BENCH_rewrite.json" in
  let validate_file = ref None in
  let spec =
    [
      ("--runs", Arg.Set_int runs, "N  cosimulation runs per workload (default 3)");
      ("--out", Arg.Set_string out, "FILE  output path (default BENCH_rewrite.json)");
      ( "--validate",
        Arg.String (fun f -> validate_file := Some f),
        "FILE  reparse an emitted result file and check its gates" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench_rewrite";
  match !validate_file with
  | Some f -> validate f
  | None -> run_bench ~runs:!runs ~out:!out
