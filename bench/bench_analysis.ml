(* Range-analysis benchmark: every workload is synthesized twice —
   baseline and [narrow] (range-inferred register/FU/mux widths) — the
   narrowed design is cosimulated against the behavioral reference, and
   the per-workload area pair lands in BENCH_analysis.json together
   with the range/* counters. --validate reparses an emitted file and
   enforces the gates the narrowing design promises: every cosim is
   bit-identical, a narrowed design is never larger than its baseline,
   and at least two workloads see a strict area reduction. The
   @analyze-smoke alias runs emit + validate. *)

open Hls_core

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

type row = {
  name : string;
  base_area : int;
  narrow_area : int;
  cosim_ok : bool;
  base_ms : float;
  narrow_ms : float;
}

let run_bench ~runs ~out =
  let open Hls_util.Json in
  Hls_obs.Trace.reset ();
  let rows =
    List.map
      (fun (name, src) ->
        let base, t_base = timed (fun () -> Flow.synthesize src) in
        let narrow, t_narrow =
          timed (fun () ->
              Flow.synthesize
                ~options:{ Flow.default_options with Flow.narrow = true }
                src)
        in
        let cosim_ok =
          match Flow.verify ~runs narrow with
          | Ok () -> true
          | Error e ->
              Printf.eprintf "%s: narrowed cosim diverged: %s\n" name e;
              false
        in
        {
          name;
          base_area = base.Flow.estimate.Hls_rtl.Estimate.total_area;
          narrow_area = narrow.Flow.estimate.Hls_rtl.Estimate.total_area;
          cosim_ok;
          base_ms = 1e3 *. t_base;
          narrow_ms = 1e3 *. t_narrow;
        })
      Workloads.all
  in
  let all_cosim_ok = List.for_all (fun r -> r.cosim_ok) rows in
  let never_larger = List.for_all (fun r -> r.narrow_area <= r.base_area) rows in
  let reduced = List.length (List.filter (fun r -> r.narrow_area < r.base_area) rows) in
  let row_json r =
    Obj
      [
        ("name", Str r.name);
        ("base_area", Num (float_of_int r.base_area));
        ("narrow_area", Num (float_of_int r.narrow_area));
        ("area_delta", Num (float_of_int (r.base_area - r.narrow_area)));
        ("cosim_ok", Bool r.cosim_ok);
        ("base_ms", Num r.base_ms);
        ("narrow_ms", Num r.narrow_ms);
      ]
  in
  let json =
    Obj
      [
        ("benchmark", Str "range_narrowing");
        ("host_cores", Num (float_of_int (Domain.recommended_domain_count ())));
        ( "pool_cap",
          Num (float_of_int (max 0 (Domain.recommended_domain_count () - 1))) );
        ("cosim_runs", Num (float_of_int runs));
        ("workloads", Arr (List.map row_json rows));
        ("all_cosim_ok", Bool all_cosim_ok);
        ("never_larger", Bool never_larger);
        ("reduced_workloads", Num (float_of_int reduced));
        (* range/* counters: analyses run, designs narrowed, aggressive
           folds — alongside the usual kernel/cache totals *)
        ("counters", Metrics.counters_json ());
      ]
  in
  let oc = open_out out in
  output_string oc (to_string json);
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf "  %-10s base %5d  narrow %5d  (-%d)%s\n" r.name r.base_area
        r.narrow_area (r.base_area - r.narrow_area)
        (if r.cosim_ok then "" else "  COSIM FAIL"))
    rows;
  Printf.printf "%s: %d/%d workloads reduced, all cosim ok: %b\n" out reduced
    (List.length rows) all_cosim_ok;
  if not (all_cosim_ok && never_larger) then exit 1

let validate file =
  let open Hls_util.Json in
  let ic =
    try open_in file
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match parse text with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok json ->
      let fail msg =
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      in
      let num key =
        match member key json with
        | Some (Num v) -> v
        | _ -> fail (Printf.sprintf "missing numeric field %S" key)
      in
      let bool_field key =
        match member key json with
        | Some (Bool b) -> b
        | _ -> fail (Printf.sprintf "missing boolean field %S" key)
      in
      let rows =
        match member "workloads" json with
        | Some (Arr rows) -> rows
        | _ -> fail "missing workloads array"
      in
      if rows = [] then fail "workloads array is empty";
      List.iter
        (fun row ->
          match (member "name" row, member "base_area" row, member "narrow_area" row) with
          | Some (Str name), Some (Num b), Some (Num nw) ->
              if nw > b then
                fail (Printf.sprintf "%s: narrowed area %.0f exceeds baseline %.0f" name nw b);
              (match member "cosim_ok" row with
              | Some (Bool true) -> ()
              | _ -> fail (Printf.sprintf "%s: cosim_ok is not true" name))
          | _ -> fail "workload row missing name/base_area/narrow_area")
        rows;
      if not (bool_field "all_cosim_ok") then fail "all_cosim_ok is false";
      if not (bool_field "never_larger") then fail "never_larger is false";
      (* the tentpole's headline gate: narrowing must actually pay off
         somewhere, not merely do no harm *)
      if num "reduced_workloads" < 2.0 then
        fail
          (Printf.sprintf "only %.0f workload(s) reduced (gate: 2)"
             (num "reduced_workloads"));
      (match member "counters" json with
      | Some (Obj counters) ->
          if
            not
              (List.exists
                 (fun (k, _) -> String.length k > 6 && String.sub k 0 6 = "range/")
                 counters)
          then fail "counters object has no range/ entries"
      | _ -> fail "missing counters object");
      Printf.printf "%s: valid (%d workloads, %.0f reduced)\n" file (List.length rows)
        (num "reduced_workloads")

let () =
  let runs = ref 3 and out = ref "BENCH_analysis.json" in
  let validate_file = ref None in
  let spec =
    [
      ("--runs", Arg.Set_int runs, "N  cosimulation runs per workload (default 3)");
      ("--out", Arg.Set_string out, "FILE  output path (default BENCH_analysis.json)");
      ( "--validate",
        Arg.String (fun f -> validate_file := Some f),
        "FILE  reparse an emitted result file and check its gates" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench_analysis";
  match !validate_file with
  | Some f -> validate f
  | None -> run_bench ~runs:!runs ~out:!out
