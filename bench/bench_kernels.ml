(* Per-kernel micro-benchmarks: the hot algorithms measured one by one
   instead of through the end-to-end flow.

     force_directed — incremental FDS vs the retained reference oracle
                      on a generated ~size-op DFG
     list_sched     — priority-queue list scheduler vs its reference
     clique         — bitset clique partitioning vs its reference
     qm             — Quine–McCluskey on a pseudo-random function
                      (no reference retained; absolute medians only)
     rtl_sim        — compiled simulation image vs the interpreting
                      reference on the sqrt and diffeq workloads

   Optimized/reference pairs are checked for identical answers on every
   iteration before any time is reported (the PR-1 oracle convention).
   Timings are medians over --iters runs; speedups are medians of
   per-iteration ratios so both sides of each ratio shared the same
   ambient load. Results land in BENCH_kernels.json with the same shape
   discipline as BENCH_dse.json; --validate reparses an emitted file
   and checks the shape, which is what the @bench-smoke alias runs. *)

open Hls_lang
open Hls_sched

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, 1e3 *. (Unix.gettimeofday () -. t0))

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

let runs_obj xs =
  Hls_util.Json.Obj
    [ ("median", Hls_util.Json.Num (median xs));
      ("runs", Hls_util.Json.Arr (List.map (fun x -> Hls_util.Json.Num x) xs)) ]

let paired_speedup ref_ms opt_ms = median (List.map2 ( /. ) ref_ms opt_ms)

(* random but seed-deterministic DFG in the shape the schedulers see:
   a couple of reads, [n_ops] binary ops over earlier values, one write *)
let int_ty = Ast.Tint 16

let dfg_of_seed ~n_ops seed =
  let rng = Random.State.make [| seed |] in
  let g = Hls_cdfg.Dfg.create () in
  let a = Hls_cdfg.Dfg.add g (Hls_cdfg.Op.Read "a") [] int_ty in
  let b = Hls_cdfg.Dfg.add g (Hls_cdfg.Op.Read "b") [] int_ty in
  let values = ref [| a; b |] in
  let pick () = !values.(Random.State.int rng (Array.length !values)) in
  for _ = 1 to n_ops do
    let x = pick () and y = pick () in
    let op =
      match Random.State.int rng 5 with
      | 0 -> Hls_cdfg.Op.Add
      | 1 -> Hls_cdfg.Op.Sub
      | 2 -> Hls_cdfg.Op.Mul
      | 3 -> Hls_cdfg.Op.And
      | _ -> Hls_cdfg.Op.Xor
    in
    let nid = Hls_cdfg.Dfg.add g op [ x; y ] int_ty in
    values := Array.append !values [| nid |]
  done;
  ignore
    (Hls_cdfg.Dfg.add g (Hls_cdfg.Op.Write "out")
       [ !values.(Array.length !values - 1) ]
       int_ty);
  g

(* a reference/optimized pair timed back to back, answers compared *)
let bench_pair ~iters ~check_equal ~reference ~optimized =
  let ref_ms = ref [] and opt_ms = ref [] in
  let identical = ref true in
  ignore (reference ());
  ignore (optimized ());
  for _ = 1 to iters do
    let r, tr = timed reference in
    let o, topt = timed optimized in
    if not (check_equal r o) then identical := false;
    ref_ms := tr :: !ref_ms;
    opt_ms := topt :: !opt_ms
  done;
  (!ref_ms, !opt_ms, !identical)

let pair_json ?(extra = []) (ref_ms, opt_ms, identical) =
  let open Hls_util.Json in
  Obj
    (extra
    @ [ ("identical", Bool identical);
        ("reference_ms", runs_obj ref_ms);
        ("optimized_ms", runs_obj opt_ms);
        ("speedup", Num (paired_speedup ref_ms opt_ms)) ])

let bench_force_directed ~iters ~size =
  let dep = Depgraph.of_dfg (dfg_of_seed ~n_ops:size 7) in
  let deadline = Depgraph.critical_length dep + 3 in
  let pair =
    bench_pair ~iters ~check_equal:( = )
      ~reference:(fun () -> Force_directed.schedule_dep_reference ~deadline dep)
      ~optimized:(fun () -> Force_directed.schedule_dep ~deadline dep)
  in
  let open Hls_util.Json in
  pair_json
    ~extra:
      [ ("n_ops", Num (float_of_int (Depgraph.n_ops dep)));
        ("deadline", Num (float_of_int deadline)) ]
    pair

let bench_list_sched ~iters ~size =
  let dep = Depgraph.of_dfg (dfg_of_seed ~n_ops:size 11) in
  let limits = Limits.Total 4 in
  let pair =
    bench_pair ~iters ~check_equal:( = )
      ~reference:(fun () -> List_sched.schedule_dep_reference ~limits dep)
      ~optimized:(fun () -> List_sched.schedule_dep ~limits dep)
  in
  let open Hls_util.Json in
  pair_json ~extra:[ ("n_ops", Num (float_of_int (Depgraph.n_ops dep))) ] pair

let bench_clique ~iters ~size =
  let n = size in
  let rng = Random.State.make [| 23 |] in
  (* symmetric half-matrix of compatibility bits, ~45% density *)
  let compat = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = Random.State.int rng 100 < 45 in
      compat.(i).(j) <- c;
      compat.(j).(i) <- c
    done
  done;
  let compatible i j = compat.(i).(j) in
  let pair =
    bench_pair ~iters ~check_equal:( = )
      ~reference:(fun () -> Hls_alloc.Clique.partition_reference ~n ~compatible)
      ~optimized:(fun () -> Hls_alloc.Clique.partition ~n ~compatible)
  in
  let open Hls_util.Json in
  pair_json ~extra:[ ("n", Num (float_of_int n)) ] pair

let bench_qm ~iters ~size =
  let n_inputs = 11 in
  let space = 1 lsl n_inputs in
  let rng = Random.State.make [| 31 |] in
  (* disjoint pseudo-random on/dc sets sized with the benchmark *)
  let picked = Hashtbl.create (4 * size) in
  let pick_fresh () =
    let rec go () =
      let m = Random.State.int rng space in
      if Hashtbl.mem picked m then go ()
      else begin
        Hashtbl.replace picked m ();
        m
      end
    in
    go ()
  in
  let on_set = List.init (min size (space / 4)) (fun _ -> pick_fresh ()) in
  let dc_set = List.init (min (size / 2) (space / 8)) (fun _ -> pick_fresh ()) in
  let ms = ref [] in
  ignore (Hls_ctrl.Qm.minimize ~n_inputs ~on_set ~dc_set ());
  for _ = 1 to iters do
    let _, t = timed (fun () -> Hls_ctrl.Qm.minimize ~n_inputs ~on_set ~dc_set ()) in
    ms := t :: !ms
  done;
  let open Hls_util.Json in
  Obj
    [ ("n_inputs", Num (float_of_int n_inputs));
      ("on_set", Num (float_of_int (List.length on_set)));
      ("dc_set", Num (float_of_int (List.length dc_set)));
      ("minimize_ms", runs_obj !ms) ]

let bench_rtl_sim ~iters ~size =
  let open Hls_core in
  let reps = max 1 (size / 10) in
  let one (name, src, inputs) =
    let dp = (Flow.synthesize src).Flow.datapath in
    let image = Hls_sim.Rtl_sim.compile dp in
    let cycles = ref 0 in
    let run_ref () =
      let c = ref 0 in
      for _ = 1 to reps do
        let r = Hls_sim.Rtl_sim.run_reference dp ~inputs in
        c := !c + r.Hls_sim.Rtl_sim.cycles
      done;
      cycles := !c / reps;
      (Hls_sim.Rtl_sim.run_reference dp ~inputs).Hls_sim.Rtl_sim.finals
    in
    let run_cmp () =
      for _ = 1 to reps do
        ignore (Hls_sim.Rtl_sim.run_image image ~inputs)
      done;
      (Hls_sim.Rtl_sim.run_image image ~inputs).Hls_sim.Rtl_sim.finals
    in
    let ((ref_ms, opt_ms, _) as pair) =
      bench_pair ~iters ~check_equal:( = ) ~reference:run_ref ~optimized:run_cmp
    in
    let cps ms = float_of_int (!cycles * reps) /. (1e-3 *. median ms) in
    let open Hls_util.Json in
    ( name,
      pair_json
        ~extra:
          [ ("cycles_per_run", Num (float_of_int !cycles));
            ("sim_reps", Num (float_of_int reps));
            ("reference_cycles_per_sec", Num (cps ref_ms));
            ("compiled_cycles_per_sec", Num (cps opt_ms)) ]
        pair )
  in
  Hls_util.Json.Obj
    (List.map one
       [ ("sqrt", Workloads.sqrt_newton, [ ("x", 1 lsl 22) ]);
         ( "diffeq",
           Workloads.diffeq,
           [ ("x_in", 0); ("y_in", 1 lsl 16); ("u_in", 1 lsl 16);
             ("dx", 1 lsl 12); ("a", 1 lsl 18) ] );
       ])

let run_bench ~iters ~size ~out =
  let open Hls_util.Json in
  Hls_obs.Trace.reset ();
  let kernels =
    [ ("force_directed", bench_force_directed ~iters ~size);
      ("list_sched", bench_list_sched ~iters ~size);
      ("clique", bench_clique ~iters ~size);
      ("qm", bench_qm ~iters ~size);
      ("rtl_sim", bench_rtl_sim ~iters ~size);
    ]
  in
  let json =
    Obj
      [ ("benchmark", Str "kernels");
        ("host_cores", Num (float_of_int (Domain.recommended_domain_count ())));
        ( "pool_cap",
          Num (float_of_int (max 0 (Domain.recommended_domain_count () - 1))) );
        ("iters", Num (float_of_int iters));
        ("size", Num (float_of_int size));
        ("kernels", Obj kernels);
        (* work counters accumulated across all kernels above: the
           sched/fd_* incremental-scheduler totals, sim/* compiled-run
           totals, ctrl/qm_iterations, alloc merges, ... *)
        ("counters", Hls_core.Metrics.counters_json ());
      ]
  in
  let oc = open_out out in
  output_string oc (to_string json);
  close_out oc;
  let speedup name =
    match member "kernels" json with
    | Some k -> (
        match member name k with
        | Some obj -> (
            match member "speedup" obj with Some (Num s) -> s | _ -> nan)
        | None -> nan)
    | None -> nan
  in
  let rtl name =
    match member "kernels" json with
    | Some k -> (
        match member "rtl_sim" k with
        | Some r -> (
            match member name r with
            | Some obj -> (
                match member "speedup" obj with Some (Num s) -> s | _ -> nan)
            | None -> nan)
        | None -> nan)
    | None -> nan
  in
  Printf.printf
    "%s: fds %.2fx, list_sched %.2fx, clique %.2fx, rtl_sim sqrt %.2fx / diffeq %.2fx\n"
    out (speedup "force_directed") (speedup "list_sched") (speedup "clique")
    (rtl "sqrt") (rtl "diffeq");
  let all_identical =
    List.for_all
      (fun (_, obj) ->
        match Hls_util.Json.member "identical" obj with
        | Some (Bool b) -> b
        | _ -> true)
      kernels
    &&
    match member "kernels" json with
    | Some k -> (
        match member "rtl_sim" k with
        | Some (Obj workloads) ->
            List.for_all
              (fun (_, w) ->
                match member "identical" w with Some (Bool b) -> b | _ -> false)
              workloads
        | _ -> false)
    | None -> false
  in
  if not all_identical then begin
    Printf.eprintf "error: an optimized kernel disagreed with its reference\n";
    exit 1
  end

let validate file =
  let open Hls_util.Json in
  let ic =
    try open_in file
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match parse text with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok json ->
      let fail msg =
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      in
      let num_in obj key ctx =
        match member key obj with
        | Some (Num v) -> v
        | _ -> fail (Printf.sprintf "%s: missing numeric field %S" ctx key)
      in
      List.iter (fun key -> ignore (num_in json key "top level")) [ "iters"; "size" ];
      let kernels =
        match member "kernels" json with
        | Some (Obj _ as k) -> k
        | _ -> fail "missing kernels object"
      in
      let check_pair ctx obj =
        (match member "identical" obj with
        | Some (Bool true) -> ()
        | Some (Bool false) -> fail (ctx ^ ": identical is false")
        | _ -> fail (ctx ^ ": missing identical"));
        if num_in obj "speedup" ctx <= 0.0 then fail (ctx ^ ": nonpositive speedup");
        List.iter
          (fun side ->
            match member side obj with
            | Some runs -> ignore (num_in runs "median" (ctx ^ "." ^ side))
            | None -> fail (Printf.sprintf "%s: missing %s" ctx side))
          [ "reference_ms"; "optimized_ms" ]
      in
      List.iter
        (fun name ->
          match member name kernels with
          | Some obj -> check_pair name obj
          | None -> fail (Printf.sprintf "missing kernel %S" name))
        [ "force_directed"; "list_sched"; "clique" ];
      (match member "qm" kernels with
      | Some obj -> (
          match member "minimize_ms" obj with
          | Some runs -> ignore (num_in runs "median" "qm.minimize_ms")
          | None -> fail "qm: missing minimize_ms")
      | None -> fail "missing kernel \"qm\"");
      (match member "rtl_sim" kernels with
      | Some sim ->
          List.iter
            (fun wl ->
              match member wl sim with
              | Some obj ->
                  check_pair ("rtl_sim." ^ wl) obj;
                  ignore (num_in obj "compiled_cycles_per_sec" ("rtl_sim." ^ wl))
              | None -> fail (Printf.sprintf "rtl_sim: missing workload %S" wl))
            [ "sqrt"; "diffeq" ]
      | None -> fail "missing kernel \"rtl_sim\"");
      (match member "counters" json with
      | Some (Obj counters) ->
          List.iter
            (fun prefix ->
              let len = String.length prefix in
              if
                not
                  (List.exists
                     (fun (k, _) -> String.length k > len && String.sub k 0 len = prefix)
                     counters)
              then fail (Printf.sprintf "counters object has no %s entries" prefix))
            [ "sched/fd_"; "sim/" ]
      | _ -> fail "missing counters object");
      Printf.printf "%s: valid (%.0f iters, size %.0f)\n" file
        (match member "iters" json with Some (Num v) -> v | _ -> 0.0)
        (match member "size" json with Some (Num v) -> v | _ -> 0.0)

let () =
  let iters = ref 5 and size = ref 200 and out = ref "BENCH_kernels.json" in
  let validate_file = ref None in
  let spec =
    [ ("--iters", Arg.Set_int iters, "N  timed iterations per kernel (default 5)");
      ("--size", Arg.Set_int size, "N  problem size: DFG ops, clique nodes, set sizes (default 200)");
      ("--out", Arg.Set_string out, "FILE  output path (default BENCH_kernels.json)");
      ( "--validate",
        Arg.String (fun f -> validate_file := Some f),
        "FILE  reparse an emitted result file and check its shape" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench_kernels";
  match !validate_file with
  | Some f -> validate f
  | None -> run_bench ~iters:!iters ~size:!size ~out:!out
