(* Benchmark harness: regenerates every figure of the tutorial and the
   survey-style comparative experiments, printing the paper's stated
   value next to the measured one, then times the synthesis kernels with
   Bechamel. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
   for the recorded results. *)

open Hls_util
open Hls_lang
open Hls_cdfg
open Hls_sched
open Hls_core

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"

let i16 = Ast.Tint 16

(* ------------------------------------------------------------------ *)
(* FIG1: specification and CDFG of the sqrt example                    *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "FIG 1 — high-level specification and CDFG for sqrt(X) (Newton)";
  let _prog, cfg = Compile.compile_source Workloads.sqrt_newton in
  print_string "behavioral specification (BSL):\n";
  print_string Workloads.sqrt_newton;
  Printf.printf "\ncompiled control/data-flow graph:\n";
  Format.printf "%a@." Cfg.pp cfg;
  let t = Table.create ~headers:[ "block"; "ops"; "compute ops"; "trip count" ] in
  Cfg.iter
    (fun bid b ->
      Table.add_row t
        [
          b.Cfg.label;
          string_of_int (Dfg.n_nodes b.Cfg.dfg);
          string_of_int (List.length (Dfg.compute_ops b.Cfg.dfg));
          (match Cfg.trip_count cfg bid with Some n -> string_of_int n | None -> "-");
        ])
    cfg;
  Table.print t;
  print_string
    "paper: data-flow + control-flow graphs; loop executes 4 iterations; the\n\
     I+1 operation is independent of the Y chain (parallel-schedulable).\n"

(* ------------------------------------------------------------------ *)
(* FIG2: optimization + schedule lengths (23 vs 10)                    *)
(* ------------------------------------------------------------------ *)

let sqrt_optimized_cfg () =
  let _p, cfg = Compile.compile_source Workloads.sqrt_newton in
  Hls_transform.Passes.run_pipeline ~outputs:[ "y" ]
    (Hls_transform.Passes.standard @ [ Hls_transform.Passes.find_exn "loop-recode" ])
    cfg

let steps_of cfg limits =
  Cfg_sched.compute_steps (Cfg_sched.make cfg ~scheduler:(List_sched.schedule ~limits))

let fig2 () =
  section "FIG 2 — optimized control graph and schedule (sqrt)";
  let raw = snd (Compile.compile_source Workloads.sqrt_newton) in
  let opt = sqrt_optimized_cfg () in
  Printf.printf "optimized loop body (x0.5 -> shift, counter recoded to int<2>,\n";
  Printf.printf "exit test -> free zero-detect):\n";
  Format.printf "%a@." Cfg.pp opt;
  let t =
    Table.create ~headers:[ "configuration"; "paper"; "measured"; "formula" ]
  in
  Table.add_row t
    [ "unoptimized, 1 FU (serial)"; "23"; string_of_int (steps_of raw Limits.Serial);
      "3 + 4*5" ];
  Table.add_row t
    [ "optimized, 2 FUs"; "10"; string_of_int (steps_of opt Limits.two_fu); "2 + 4*2" ];
  let unrolled =
    Hls_transform.Passes.optimize ~level:`Aggressive ~outputs:[ "y" ]
      (snd (Compile.compile_source Workloads.sqrt_newton))
  in
  Table.add_row t
    [ "fully unrolled, 2 FUs"; "(n/a)"; string_of_int (steps_of unrolled Limits.two_fu);
      "straight-line" ];
  Table.print t;
  let cs = Cfg_sched.make opt ~scheduler:(List_sched.schedule ~limits:Limits.two_fu) in
  Printf.printf "\ntwo-FU schedule detail (free ops marked ~):\n";
  Format.printf "%a@." Cfg_sched.pp cs

(* ------------------------------------------------------------------ *)
(* FIG3/4: ASAP vs list scheduling                                     *)
(* ------------------------------------------------------------------ *)

let fig34_dfg () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i16 in
  let b = Dfg.add g (Op.Read "b") [] i16 in
  let x1 = Dfg.add g Op.Add [ a; b ] i16 in
  let x2 = Dfg.add g Op.Sub [ a; b ] i16 in
  let c1 = Dfg.add g Op.Mul [ a; b ] i16 in
  let c2 = Dfg.add g Op.Add [ c1; a ] i16 in
  let c3 = Dfg.add g Op.Add [ c2; b ] i16 in
  ignore (Dfg.add g (Op.Write "o1") [ x1 ] i16);
  ignore (Dfg.add g (Op.Write "o2") [ x2 ] i16);
  ignore (Dfg.add g (Op.Write "o3") [ c3 ] i16);
  g

let fig34 () =
  section "FIG 3/4 — ASAP blocks the critical path; list scheduling fixes it";
  let g = fig34_dfg () in
  let limits = Limits.Total 2 in
  let asap = Asap.schedule ~limits g in
  let list_s = List_sched.schedule ~limits g in
  let bb =
    match Branch_bound.schedule ~limits g with
    | Some s -> s
    | None -> list_s
  in
  Printf.printf "graph: two independent ops precede a 3-op critical chain; 2 FUs\n\n";
  Printf.printf "ASAP schedule (Fig 3):\n";
  Format.printf "%a" Schedule.pp asap;
  Printf.printf "\nlist schedule, path-length priority (Fig 4):\n";
  Format.printf "%a@." Schedule.pp list_s;
  let t = Table.create ~headers:[ "scheduler"; "paper"; "measured steps" ] in
  Table.add_row t [ "ASAP (Fig 3)"; "longer than optimal (4)"; string_of_int (Schedule.n_steps asap) ];
  Table.add_row t [ "list / path priority (Fig 4)"; "optimal (3)"; string_of_int (Schedule.n_steps list_s) ];
  Table.add_row t [ "branch & bound (exact)"; "3"; string_of_int (Schedule.n_steps bb) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* FIG5: force-directed distribution graph                             *)
(* ------------------------------------------------------------------ *)

let fig5_dfg () =
  let g = Dfg.create () in
  let x = Dfg.add g (Op.Read "x") [] i16 in
  let y = Dfg.add g (Op.Read "y") [] i16 in
  let a1 = Dfg.add g Op.Add [ x; y ] i16 in
  let a2 = Dfg.add g Op.Add [ a1; y ] i16 in
  let m = Dfg.add g Op.Mul [ a2; x ] i16 in
  let a3 = Dfg.add g Op.Add [ a1; x ] i16 in
  ignore (Dfg.add g (Op.Write "o1") [ m ] i16);
  ignore (Dfg.add g (Op.Write "o2") [ a3 ] i16);
  (g, a3)

let fig5 () =
  section "FIG 5 — force-directed scheduling: distribution graph";
  let g, a3 = fig5_dfg () in
  let dep = Depgraph.of_dfg g in
  let asap = Depgraph.asap dep in
  let alap = Depgraph.alap dep ~deadline:3 in
  let dg = Force_directed.distribution dep ~asap ~alap ~cls:Op.C_alu ~deadline:3 in
  let t = Table.create ~headers:[ "step"; "paper add-class DG"; "measured" ] in
  Array.iteri
    (fun i v ->
      Table.add_row t
        [
          string_of_int (i + 1);
          List.nth [ "1.0"; "1.5 (1 + 1/2)"; "0.5 (1/2)" ] i;
          Printf.sprintf "%.2f" v;
        ])
    dg;
  Table.print t;
  let s = Force_directed.schedule ~deadline:3 g in
  Printf.printf "\nFDS places a3 into step %d (paper: step 3, 'the greatest effect\n"
    (Schedule.step_of s a3);
  Printf.printf "in balancing the graph'); resulting distribution is flat.\n";
  let after = Force_directed.distribution dep ~asap:(Array.map (fun _ -> 0) asap) ~alap in
  ignore after;
  let req = Schedule.fu_requirement s in
  Printf.printf "functional units implied: %s\n"
    (String.concat ", "
       (List.map (fun (c, n) -> Printf.sprintf "%d %s" n (Op.fu_class_to_string c)) req))

(* ------------------------------------------------------------------ *)
(* FIG6/7: greedy vs clique data-path allocation                       *)
(* ------------------------------------------------------------------ *)

let fig67_design () =
  let g = Dfg.create () in
  let x = Dfg.add g (Op.Read "x") [] i16 in
  let y = Dfg.add g (Op.Read "y") [] i16 in
  let z = Dfg.add g (Op.Read "z") [] i16 in
  let w = Dfg.add g (Op.Read "w") [] i16 in
  let v = Dfg.add g (Op.Read "v") [] i16 in
  let a1 = Dfg.add g Op.Add [ x; y ] i16 in
  let b1 = Dfg.add g Op.Add [ z; w ] i16 in
  let a2 = Dfg.add g Op.Add [ z; v ] i16 in
  let a3 = Dfg.add g Op.Add [ a2; z ] i16 in
  ignore (Dfg.add g (Op.Write "o1") [ a1 ] i16);
  ignore (Dfg.add g (Op.Write "o2") [ b1 ] i16);
  ignore (Dfg.add g (Op.Write "o3") [ a3 ] i16);
  let cfg = Cfg.create () in
  let bid = Cfg.add_block cfg g Cfg.Halt in
  Cfg.set_entry cfg bid;
  let steps = [ (a1, 1); (b1, 1); (a2, 2); (a3, 3) ] in
  Cfg_sched.make cfg ~scheduler:(fun dfg ->
      Schedule.make dfg ~steps:(fun nid -> List.assoc nid steps))

let fig67 () =
  section "FIG 6/7 — data-path allocation: greedy (local, cost-aware) vs clique";
  Printf.printf
    "example: four additions over three steps (a1,b1 concurrent in step 1)\n\n";
  let cs = fig67_design () in
  let variants =
    [
      ("greedy / min-mux (Fig 6)", Hls_alloc.Fu_alloc.greedy ~selection:`Min_mux cs);
      ("greedy / first-fit", Hls_alloc.Fu_alloc.greedy ~selection:`First_fit cs);
      ("clique partitioning (Fig 7)", Hls_alloc.Fu_alloc.by_clique cs);
    ]
  in
  let t = Table.create ~headers:[ "allocator"; "adders"; "extra mux inputs" ] in
  List.iter
    (fun (name, alloc) ->
      Table.add_row t
        [
          name;
          string_of_int (Hls_alloc.Fu_alloc.n_units alloc);
          string_of_int (Hls_alloc.Fu_alloc.mux_inputs cs alloc);
        ])
    variants;
  Table.print t;
  Printf.printf
    "\npaper: cost-aware local selection avoids needless multiplexing ('a2 was\n\
     assigned to adder2 since the increase in multiplexing cost required by\n\
     that allocation was zero'); the clique cover shares one adder among\n\
     three mutually compatible operations, two adders total.\n";
  List.iter
    (fun (name, alloc) ->
      Printf.printf "\n%s binding:\n" name;
      Format.printf "%a" Hls_alloc.Fu_alloc.pp alloc)
    variants

(* ------------------------------------------------------------------ *)
(* EXP-SCHED: scheduler comparison on the workloads                    *)
(* ------------------------------------------------------------------ *)

let block_for_sched src ~tree_height =
  (* largest block of the standard-optimized program *)
  let _p, cfg = Compile.compile_source src in
  let prog = Typecheck.check (Inline.expand (Parser.parse src)) in
  let outputs = Flow.output_names prog in
  let cfg = Hls_transform.Passes.optimize ~level:`Standard ~outputs cfg in
  if tree_height then ignore (Hls_transform.Tree_height.run cfg);
  List.fold_left
    (fun best bid ->
      let g = Cfg.dfg cfg bid in
      match best with
      | Some g' when Dfg.n_nodes g' >= Dfg.n_nodes g -> best
      | _ -> Some g)
    None (Cfg.block_ids cfg)
  |> Option.get

let sched_compare () =
  section "EXP-SCHED — scheduler quality comparison (survey, section 3.1)";
  let workloads =
    [
      ("fir8 (tree-reduced)", block_for_sched Workloads.fir8 ~tree_height:true);
      ("biquad3 (EWF-style)", block_for_sched Workloads.biquad3 ~tree_height:false);
      ("diffeq body", block_for_sched Workloads.diffeq ~tree_height:false);
    ]
  in
  List.iter
    (fun (name, g) ->
      let dep = Depgraph.of_dfg g in
      let cl = max 1 (Depgraph.critical_length dep) in
      Printf.printf "\n%s: %d ops, critical path %d\n" name
        (List.length (Dfg.compute_ops g))
        cl;
      let t =
        Table.create
          ~headers:[ "scheduler"; "constraint"; "steps"; "FU requirement" ]
      in
      let fu_str s =
        Schedule.fu_requirement s
        |> List.map (fun (c, n) -> Printf.sprintf "%d %s" n (Op.fu_class_to_string c))
        |> String.concat ", "
      in
      let add name constraint_ s =
        Table.add_row t [ name; constraint_; string_of_int (Schedule.n_steps s); fu_str s ]
      in
      let limits = Limits.Total 2 in
      add "ASAP" "2 FUs" (Asap.schedule ~limits g);
      add "list / path" "2 FUs" (List_sched.schedule ~limits g);
      add "list / mobility" "2 FUs"
        (List_sched.schedule ~priority:(List_sched.Mobility (cl + 2)) ~limits g);
      (match Branch_bound.schedule ~limits g with
      | Some s -> add "branch & bound" "2 FUs" s
      | None -> Table.add_row t [ "branch & bound"; "2 FUs"; "(too large)"; "" ]);
      add "transformational / parallel" "2 FUs" (Transformational.from_parallel ~limits g);
      add "transformational / serial" "2 FUs" (Transformational.from_serial ~limits g);
      add "force-directed (HAL)" (Printf.sprintf "time = %d" cl)
        (Force_directed.schedule ~deadline:cl g);
      add "freedom-based (MAHA)" (Printf.sprintf "time = %d" cl) (Freedom.schedule g);
      Table.print t)
    workloads;
  Printf.printf
    "\nshape check: list/B&B <= ASAP under resource limits; FDS and MAHA\n\
     minimize units at the time constraint (the paper's qualitative claims).\n"

(* ------------------------------------------------------------------ *)
(* EXP-REG: register allocation comparison                             *)
(* ------------------------------------------------------------------ *)

let reg_compare () =
  section "EXP-REG — storage allocation (REAL's left edge; lifetime sharing)";
  let t =
    Table.create
      ~headers:
        [ "workload"; "temp regs (left edge)"; "= max overlap?"; "var regs shared";
          "var regs unshared" ]
  in
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      let cs = d.Flow.sched in
      let cfg = Cfg_sched.cfg cs in
      (* optimality: left-edge track count equals max simultaneous live *)
      let optimal =
        List.for_all
          (fun bid ->
            let sched = Cfg_sched.block_schedule cs bid in
            let term_cond =
              match Cfg.term cfg bid with Cfg.Branch (c, _, _) -> Some c | _ -> None
            in
            let temps = Hls_alloc.Lifetime.temps (Hls_alloc.Lifetime.analyze sched ~term_cond) in
            let _, tracks = Hls_alloc.Left_edge.assign temps in
            tracks = Interval.max_overlap (List.map snd temps))
          (Cfg.block_ids cfg)
      in
      let ports = List.map (fun (n, _, _) -> n) (Flow.ports_of d.Flow.prog) in
      let outputs = Flow.output_names d.Flow.prog in
      let unshared = Hls_alloc.Reg_alloc.run ~share_variables:false ~ports ~outputs cs in
      Table.add_row t
        [
          name;
          string_of_int (Hls_alloc.Reg_alloc.n_temp_registers d.Flow.regs);
          (if optimal then "yes" else "NO");
          string_of_int (Hls_alloc.Reg_alloc.n_variable_registers d.Flow.regs);
          string_of_int (Hls_alloc.Reg_alloc.n_variable_registers unshared);
        ])
    Workloads.all;
  Table.print t;
  Printf.printf
    "\npaper: 'values may be assigned to the same register when their\n\
     lifetimes do not overlap'; left edge achieves the max-overlap bound.\n"

(* ------------------------------------------------------------------ *)
(* EXP-CTRL: control styles                                            *)
(* ------------------------------------------------------------------ *)

let ctrl_compare () =
  section "EXP-CTRL — control synthesis styles (random logic / PLA / microcode)";
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      let fsm = d.Flow.datapath.Hls_rtl.Datapath.fsm in
      Printf.printf "\n%s: %d states\n" name (Hls_ctrl.Fsm.n_states fsm);
      let t =
        Table.create
          ~headers:
            [ "encoding"; "ffs"; "literals (QM)"; "literals (direct)"; "PLA rows";
              "PLA area" ]
      in
      List.iter
        (fun style ->
          let c = Hls_ctrl.Ctrl_synth.synthesize ~style fsm in
          let rows = Hls_ctrl.Ctrl_synth.pla_rows c in
          Table.add_row t
            [
              Hls_ctrl.Encoding.style_to_string style;
              string_of_int (Hls_ctrl.Ctrl_synth.n_state_bits c);
              string_of_int (Hls_ctrl.Ctrl_synth.literal_cost c);
              string_of_int (Hls_ctrl.Ctrl_synth.direct_literal_cost c);
              string_of_int rows;
              string_of_int (Hls_ctrl.Ctrl_synth.pla_cost c ~rows);
            ])
        [ Hls_ctrl.Encoding.Binary; Hls_ctrl.Encoding.Gray; Hls_ctrl.Encoding.One_hot ];
      Table.print t;
      (* microcode: one word per state; fields = register enables + op select *)
      let n_regs = List.length d.Flow.datapath.Hls_rtl.Datapath.regs in
      let fields =
        [
          { Hls_ctrl.Microcode.fname = "reg_en"; fwidth = max 1 n_regs };
          { Hls_ctrl.Microcode.fname = "fu_op"; fwidth = 5 };
          { Hls_ctrl.Microcode.fname = "branch"; fwidth = 1 };
        ]
      in
      let words =
        Array.init (Hls_ctrl.Fsm.n_states fsm) (fun sid ->
            let enables =
              List.mapi
                (fun i (r : Hls_rtl.Datapath.reg_def) ->
                  if
                    List.exists
                      (fun (l : Hls_rtl.Datapath.load) ->
                        l.Hls_rtl.Datapath.l_reg = r.Hls_rtl.Datapath.rname)
                      (Hls_rtl.Datapath.loads_in d.Flow.datapath sid)
                  then 1 lsl i
                  else 0)
                d.Flow.datapath.Hls_rtl.Datapath.regs
              |> List.fold_left ( lor ) 0
            in
            let op_code =
              match Hls_rtl.Datapath.activities_in d.Flow.datapath sid with
              | a :: _ -> Hashtbl.hash a.Hls_rtl.Datapath.a_op land 0x1F
              | [] -> 0
            in
            let branchy =
              if Hls_rtl.Datapath.cond_wire d.Flow.datapath sid <> None then 1 else 0
            in
            [ enables; op_code; branchy ])
      in
      let mc = Hls_ctrl.Microcode.make ~fields ~words in
      Format.printf "%a" Hls_ctrl.Microcode.pp mc)
    [ ("sqrt", Workloads.sqrt_newton); ("gcd", Workloads.gcd); ("diffeq", Workloads.diffeq) ]

(* ------------------------------------------------------------------ *)
(* EXP-BUS: mux- vs bus-based interconnect (ablation)                  *)
(* ------------------------------------------------------------------ *)

let interconnect_compare () =
  section "EXP-BUS — interconnect: point-to-point multiplexers vs buses";
  let t =
    Table.create ~headers:[ "workload"; "transfers"; "mux inputs"; "buses (clique)" ]
  in
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      let ts = d.Flow.transfers in
      let _, buses = Hls_alloc.Interconnect.bus_allocation ts in
      Table.add_row t
        [
          name;
          string_of_int (List.length ts);
          string_of_int (Hls_alloc.Interconnect.mux_cost ts);
          string_of_int buses;
        ])
    Workloads.all;
  Table.print t;
  Printf.printf
    "\npaper: 'buses ... offer the advantage of requiring less wiring, but\n\
     they may be slower than multiplexers. Depending on the application, a\n\
     combination of both may be the best solution.'\n"

(* ------------------------------------------------------------------ *)
(* EXP-CHAIN: clock period vs operator chaining                        *)
(* ------------------------------------------------------------------ *)

let chaining_compare () =
  section "EXP-CHAIN — clock period vs operator chaining (delays are real)";
  List.iter
    (fun (name, tree_height) ->
      let g = block_for_sched (Workloads.find name) ~tree_height in
      Printf.printf "\n%s (dependence-bound; unconstrained units):\n" name;
      let t =
        Table.create
          ~headers:[ "clock period (ns)"; "control steps"; "latency (ns)" ]
      in
      let rows =
        Chaining.sweep ~limits:Limits.Unlimited
          ~periods_ns:[ 70.0; 85.0; 100.0; 125.0; 150.0; 200.0; 300.0; 500.0 ]
          g
      in
      List.iter
        (fun (p, steps, lat) ->
          Table.add_row t
            [ Printf.sprintf "%.0f" p; string_of_int steps; Printf.sprintf "%.0f" lat ])
        rows;
      Table.print t;
      match
        List.sort (fun (_, _, a) (_, _, b) -> compare a b) rows
      with
      | (best_p, best_s, best_l) :: _ ->
          Printf.printf "best latency: %.0f ns at a %.0f ns clock (%d steps)\n" best_l
            best_p best_s
      | [] -> ())
    [ ("fir8", true); ("diffeq", false) ];
  Printf.printf
    "\npaper: schedules depend on real operator delays; slow clocks waste\n\
     time on short chains, fast clocks forbid chaining ('too many\n\
     operations chained together in the same control step') — the\n\
     latency optimum sits in between.\n"

(* ------------------------------------------------------------------ *)
(* EXP-VERIF: co-simulation                                            *)
(* ------------------------------------------------------------------ *)

let cosim () =
  section "EXP-VERIF — design verification by three-level co-simulation";
  let t =
    Table.create
      ~headers:[ "workload"; "random vectors"; "behavioral = CDFG = RTL"; "gate-level FSM" ]
  in
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      let runs = if name = "diffeq" then 5 else 15 in
      let abstract =
        match Hls_sim.Cosim.check_random ~runs (Flow.cosim_design d) with
        | Ok () -> "agree"
        | Error e -> "MISMATCH: " ^ e
      in
      let gate =
        match
          Hls_sim.Cosim.check_random ~runs:3 ~gate_level_control:true
            (Flow.cosim_design d)
        with
        | Ok () -> "agree"
        | Error e -> "MISMATCH: " ^ e
      in
      Table.add_row t [ name; string_of_int runs; abstract; gate ])
    Workloads.all;
  Table.print t;
  (* the concrete accuracy story for sqrt *)
  let d = Flow.synthesize Workloads.sqrt_newton in
  let ty = Ast.Tfix (8, 24) in
  Printf.printf "\nsqrt RTL accuracy (paper's 4 Newton iterations):\n";
  List.iter
    (fun x ->
      let r =
        Hls_sim.Rtl_sim.run d.Flow.datapath ~inputs:[ ("x", Hls_sim.Beh_sim.to_raw ty x) ]
      in
      let y = Hls_sim.Beh_sim.of_raw ty (List.assoc "y" r.Hls_sim.Rtl_sim.finals) in
      Printf.printf "  sqrt(%-6.4f) = %-9.6f  true %-9.6f  |err| %.2e  (%d cycles)\n" x y
        (sqrt x)
        (abs_float (y -. sqrt x))
        r.Hls_sim.Rtl_sim.cycles)
    [ 0.0625; 0.25; 0.5; 0.75; 1.0 ]

(* ------------------------------------------------------------------ *)
(* EXP-DSE: design-space exploration                                   *)
(* ------------------------------------------------------------------ *)

let explore () =
  section "EXP-DSE — design-space exploration (area/latency trade-offs)";
  List.iter
    (fun (name, src) ->
      Printf.printf "\n%s, resource-limit sweep:\n" name;
      print_string (Explore.table (Explore.sweep_limits src)))
    [ ("sqrt", Workloads.sqrt_newton); ("diffeq", Workloads.diffeq) ];
  Printf.printf "\ndiffeq, scheduler sweep at 2 FUs:\n";
  print_string (Explore.table (Explore.sweep_schedulers Workloads.diffeq))

(* ------------------------------------------------------------------ *)
(* EXP-PIPE: pipelined datapaths (Sehwa)                               *)
(* ------------------------------------------------------------------ *)

let pipeline_compare () =
  section "EXP-PIPE — pipelined data paths (Sehwa, sections 3.3/4)";
  List.iter
    (fun (name, tree_height) ->
      let g = block_for_sched (Workloads.find name) ~tree_height in
      let dep = Depgraph.of_dfg g in
      Printf.printf "\n%s: %d ops, critical path %d\n" name (Depgraph.n_ops dep)
        (Depgraph.critical_length dep);
      let t =
        Table.create
          ~headers:
            [ "initiation interval"; "latency"; "throughput (1/II)"; "steady-state units" ]
      in
      List.iter
        (fun (ii, latency, demand) ->
          Table.add_row t
            [
              string_of_int ii;
              string_of_int latency;
              Printf.sprintf "%.2f results/step" (1.0 /. float_of_int ii);
              String.concat ", "
                (List.map
                   (fun (c, n) -> Printf.sprintf "%d %s" n (Op.fu_class_to_string c))
                   demand);
            ])
        (Pipeline.throughput_table ~limits:(Limits.Total 2) g);
      Table.print t)
    [ ("fir8", true); ("biquad3", false) ];
  Printf.printf
    "\nshape: Sehwa's cost/performance curve — halving the initiation\n\
     interval buys throughput with more concurrently-busy units.\n"

(* ------------------------------------------------------------------ *)
(* EXP-ILP: 0/1 mathematical-programming formulations (Hafer)          *)
(* ------------------------------------------------------------------ *)

let ilp_compare () =
  section "EXP-ILP — exact 0/1 programming vs heuristics (section 3.2.2)";
  (* scheduling *)
  let t = Table.create ~headers:[ "block"; "limits"; "ILP steps"; "B&B"; "list"; "ASAP" ] in
  let sched_row name g limits limits_str =
    let row f = match f with Some s -> string_of_int (Schedule.n_steps s) | None -> "-" in
    Table.add_row t
      [
        name;
        limits_str;
        row (Ilp_sched.schedule ~limits g);
        row (Branch_bound.schedule ~limits g);
        Some (List_sched.schedule ~limits g) |> row;
        Some (Asap.schedule ~limits g) |> row;
      ]
  in
  let sqrt_body =
    let cfg = sqrt_optimized_cfg () in
    Cfg.dfg cfg 1
  in
  sched_row "sqrt body (optimized)" sqrt_body (Limits.Total 2) "2 FUs";
  sched_row "Fig 3/4 graph" (fig34_dfg ()) (Limits.Total 2) "2 FUs";
  sched_row "diffeq body" (block_for_sched Workloads.diffeq ~tree_height:false)
    (Limits.Total 2) "2 FUs";
  Table.print t;
  (* allocation *)
  let t2 = Table.create ~headers:[ "design"; "ILP units"; "clique"; "greedy/min-mux" ] in
  List.iter
    (fun name ->
      let d = Flow.synthesize (Workloads.find name) in
      let row =
        [
          name;
          (match Hls_alloc.Ilp_alloc.min_units d.Flow.sched with
          | Some k -> string_of_int k
          | None -> "(too large)");
          string_of_int (Hls_alloc.Fu_alloc.n_units (Hls_alloc.Fu_alloc.by_clique d.Flow.sched));
          string_of_int (Hls_alloc.Fu_alloc.n_units d.Flow.fu);
        ]
      in
      Table.add_row t2 row)
    [ "sqrt"; "gcd"; "twophase" ];
  Table.print t2;
  Printf.printf
    "\npaper: 'finding an optimal solution requires exhaustive search, which\n\
     is very expensive. This was done by Hafer on a small example' — the\n\
     exact optimum confirms the heuristics on these small designs.\n"

(* ------------------------------------------------------------------ *)
(* EXP-IFCONV: control/data trade-off ablation                         *)
(* ------------------------------------------------------------------ *)

let if_convert_compare () =
  section "EXP-IFCONV — if-conversion: trading control steps for muxes";
  let diamond_src =
    "module absdiff(input a, b: int<16>; output y: int<16>);\n\
     begin\n\
     \  if a > b then\n\
     \    y := a - b;\n\
     \  else\n\
     \    y := b - a;\n\
     \  end;\n\
     end"
  in
  let t =
    Table.create
      ~headers:[ "design"; "blocks"; "FSM states"; "worst-path steps"; "muxes (free)" ]
  in
  let measure label cfg =
    let cs = Cfg_sched.make cfg ~scheduler:(List_sched.schedule ~limits:Limits.two_fu) in
    let worst =
      (* longest acyclic state path: for this diamond, blocks on one arm *)
      Cfg_sched.total_states cs
    in
    let muxes =
      List.fold_left
        (fun acc bid ->
          Dfg.fold
            (fun acc _ n -> match n.Dfg.op with Op.Mux -> acc + 1 | _ -> acc)
            acc (Cfg.dfg cfg bid))
        0 (Cfg.block_ids cfg)
    in
    Table.add_row t
      [
        label;
        string_of_int (Cfg.n_blocks cfg);
        string_of_int (Cfg_sched.total_states cs);
        string_of_int worst;
        string_of_int muxes;
      ]
  in
  let prog = Typecheck.check (Inline.expand (Parser.parse diamond_src)) in
  let base = Hls_cdfg.Compile.compile prog in
  let base = Hls_transform.Passes.optimize ~level:`Standard ~outputs:[ "y" ] base in
  measure "absdiff, branched" base;
  let conv = Hls_cdfg.Compile.compile prog in
  let conv = Hls_transform.Passes.optimize ~level:`Standard ~outputs:[ "y" ] conv in
  let conv, _ = Hls_transform.If_convert.run conv in
  let conv, _ = Hls_transform.Clean_cfg.merge conv in
  measure "absdiff, if-converted" conv;
  Table.print t;
  (* correctness of the converted design end to end *)
  let r1 = Hls_sim.Cfg_sim.run base ~inputs:[ ("a", 9); ("b", 4) ] in
  let r2 = Hls_sim.Cfg_sim.run conv ~inputs:[ ("a", 9); ("b", 4) ] in
  Printf.printf "\n|9-4| both ways: branched %s, converted %s\n"
    (match List.assoc_opt "y" r1 with Some v -> string_of_int v | None -> "?")
    (match List.assoc_opt "y" r2 with Some v -> string_of_int v | None -> "?");
  Printf.printf
    "paper (section 4): 'trading off complexity between the control and the\n\
     data paths' — fewer states and branches, extra (free) steering muxes.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel timing of the synthesis kernels                            *)
(* ------------------------------------------------------------------ *)

let timings () =
  section "TIMINGS — Bechamel, one benchmark per experiment kernel";
  let open Bechamel in
  let fig34_g = fig34_dfg () in
  let fig5_g, _ = fig5_dfg () in
  let biquad = block_for_sched Workloads.biquad3 ~tree_height:false in
  let cs67 = fig67_design () in
  let sqrt_design = Flow.synthesize Workloads.sqrt_newton in
  let sqrt_inputs = [ ("x", Hls_sim.Beh_sim.to_raw (Ast.Tfix (8, 24)) 0.5) ] in
  let tests =
    [
      Test.make ~name:"fig1:compile-sqrt"
        (Staged.stage (fun () -> Compile.compile_source Workloads.sqrt_newton));
      Test.make ~name:"fig2:optimize+schedule"
        (Staged.stage (fun () -> steps_of (sqrt_optimized_cfg ()) Limits.two_fu));
      Test.make ~name:"fig3:asap"
        (Staged.stage (fun () -> Asap.schedule ~limits:(Limits.Total 2) fig34_g));
      Test.make ~name:"fig4:list"
        (Staged.stage (fun () -> List_sched.schedule ~limits:(Limits.Total 2) fig34_g));
      Test.make ~name:"fig5:force-directed"
        (Staged.stage (fun () -> Force_directed.schedule ~deadline:3 fig5_g));
      Test.make ~name:"fig6:greedy-alloc"
        (Staged.stage (fun () -> Hls_alloc.Fu_alloc.greedy cs67));
      Test.make ~name:"fig7:clique-alloc"
        (Staged.stage (fun () -> Hls_alloc.Fu_alloc.by_clique cs67));
      Test.make ~name:"sched:list-biquad3"
        (Staged.stage (fun () -> List_sched.schedule ~limits:(Limits.Total 2) biquad));
      Test.make ~name:"sched:fds-biquad3"
        (Staged.stage (fun () ->
             let dep = Depgraph.of_dfg biquad in
             Force_directed.schedule
               ~deadline:(max 1 (Depgraph.critical_length dep))
               biquad));
      Test.make ~name:"ctrl:qm-sqrt-fsm"
        (Staged.stage (fun () ->
             Hls_ctrl.Ctrl_synth.synthesize
               sqrt_design.Flow.datapath.Hls_rtl.Datapath.fsm));
      Test.make ~name:"verif:rtl-sim-sqrt"
        (Staged.stage (fun () ->
             Hls_sim.Rtl_sim.run sqrt_design.Flow.datapath ~inputs:sqrt_inputs));
      Test.make ~name:"flow:synthesize-sqrt"
        (Staged.stage (fun () -> Flow.synthesize Workloads.sqrt_newton));
      Test.make ~name:"flow:synthesize-diffeq"
        (Staged.stage (fun () -> Flow.synthesize Workloads.diffeq));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  let t = Table.create ~headers:[ "benchmark"; "time per run" ] in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let human =
            if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Table.add_row t [ name; human ])
        results)
    tests;
  Table.print t

let () =
  fig1 ();
  fig2 ();
  fig34 ();
  fig5 ();
  fig67 ();
  sched_compare ();
  reg_compare ();
  ctrl_compare ();
  interconnect_compare ();
  pipeline_compare ();
  ilp_compare ();
  if_convert_compare ();
  chaining_compare ();
  cosim ();
  explore ();
  timings ();
  print_newline ()
