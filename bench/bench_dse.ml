(* DSE engine benchmark: the default scheduler × limits sweep (8 × 5 =
   40 points) over the paper's differential-equation workload, run four
   ways with fresh engines each iteration:

     serial  — memoization off, calling domain only (every point pays
               the full flow; equivalent to the pre-engine sweep loop)
     memo/1  — layered cache on, calling domain only
     memo/N  — layered cache on, N worker domains requested
     pruned  — layered cache on, successive-halving sweep: only
               promising backend classes are promoted

   Every iteration checks that the first three modes produce identical
   designs at every point, and that the pruned sweep's Pareto frontier
   is identical to the exhaustive one, before any time is reported.
   Results land in a JSON file (hand-rolled writer/parser in
   Hls_util.Json); --validate reparses an emitted file, checks its
   shape, and enforces the performance gates conditioned on the
   recorded host: on a host with spare cores (host_cores >= 2) memo/N
   must not lose to memo/1 and a serial fallback is itself a failure;
   on a single-core host the speedup gate is skipped (both sweeps ran
   the same serial code). The pruned sweep must promote at most half
   the points and the pruned counters must be present. The @bench-smoke
   alias runs emit + validate. *)

open Hls_core

let src = Workloads.diffeq

let signature (d : Flow.design) =
  ( d.Flow.estimate.Hls_rtl.Estimate.total_area,
    d.Flow.estimate.Hls_rtl.Estimate.latency_ns,
    d.Flow.estimate.Hls_rtl.Estimate.cycle_ns,
    d.Flow.estimate.Hls_rtl.Estimate.compute_steps,
    Hls_alloc.Fu_alloc.n_units d.Flow.fu,
    Hls_alloc.Reg_alloc.n_registers d.Flow.regs,
    List.length d.Flow.transfers,
    Hls_sched.Cfg_sched.digest d.Flow.sched )

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

let stage_obj entries =
  Hls_util.Json.Obj
    (List.map
       (fun (e : Timing.entry) -> (e.Timing.stage, Hls_util.Json.Num (1e3 *. e.Timing.seconds)))
       entries)

let layer_obj (l : Dse.layer) =
  Hls_util.Json.Obj
    [ ("hits", Hls_util.Json.Num (float_of_int l.Dse.hits));
      ("misses", Hls_util.Json.Num (float_of_int l.Dse.misses)) ]

let run_bench ~iters ~jobs ~out =
  let open Hls_util.Json in
  let sweep ~memoize ~jobs () =
    let config = { Dse.default_config with Dse.jobs; memoize } in
    Explore.sweep ~engine:(Dse.create ~config src) src
  in
  (* warm the code paths and allocator before anything is timed *)
  if iters > 1 then ignore (sweep ~memoize:false ~jobs:1 ());
  let serial_ms = ref [] and memo1_ms = ref [] and memon_ms = ref [] in
  let pruned_ms = ref [] in
  let stages_serial = ref [] and stages_memo = ref [] in
  let cache = ref None in
  let identical = ref true in
  let frontier_identical = ref true in
  let points = ref 0 in
  let promoted = ref 0 and pruned_points = ref 0 in
  let workers_used = ref 0 in
  let serial_fallback = ref false in
  for _ = 1 to iters do
    Timing.reset ();
    let ps, t_serial = timed (sweep ~memoize:false ~jobs:1) in
    stages_serial := Timing.snapshot ();
    let p1, t_memo1 = timed (sweep ~memoize:true ~jobs:1) in
    (* full trace reset (durations and counters) so the counter
       snapshot embedded below covers exactly the last memo/N and
       pruned sweeps *)
    Hls_obs.Trace.reset ();
    let engine = Dse.create ~config:{ Dse.default_config with Dse.jobs = jobs } src in
    let pn, t_memon = timed (fun () -> Explore.sweep ~engine src) in
    stages_memo := Timing.snapshot ();
    cache := Some (Dse.stats engine);
    (* true parallelism: workers that participated in the memo/N sweep
       (the trace was reset just before it), not the requested count —
       the pool's per-map watermark reports 1 when it fell back to the
       calling domain *)
    workers_used :=
      max !workers_used
        (if jobs <= 1 then 1 else Hls_obs.Trace.counter "pool/workers_active");
    if jobs > 1 && Hls_obs.Trace.counter "pool/serial_fallbacks" > 0 then
      serial_fallback := true;
    (* pruned sweep on a fresh engine: pays its own frontend/midend/
       schedule, but promotes only surviving backend classes *)
    let pengine = Dse.create ~config:{ Dse.default_config with Dse.jobs = jobs } src in
    let pr, t_pruned = timed (fun () -> Explore.sweep_pruned ~engine:pengine src) in
    promoted := List.length pr.Explore.evaluated;
    pruned_points := List.length pr.Explore.pruned;
    points := List.length ps;
    let sg l = List.map (fun p -> signature p.Explore.design) l in
    if not (sg ps = sg p1 && sg p1 = sg pn) then identical := false;
    if sg (Explore.pareto ps) <> sg (Explore.pareto pr.Explore.evaluated) then
      frontier_identical := false;
    serial_ms := (1e3 *. t_serial) :: !serial_ms;
    memo1_ms := (1e3 *. t_memo1) :: !memo1_ms;
    memon_ms := (1e3 *. t_memon) :: !memon_ms;
    pruned_ms := (1e3 *. t_pruned) :: !pruned_ms
  done;
  let runs xs = Obj [ ("median", Num (median xs)); ("runs", Arr (List.map (fun x -> Num x) xs)) ] in
  (* paired speedup: ambient load drifts over the run, and a ratio of
     medians can pair a quiet serial iteration against a loaded memoized
     one; the median of per-iteration ratios compares runs that shared
     the same ambient conditions *)
  let paired_speedup memo = median (List.map2 ( /. ) !serial_ms memo) in
  (* a jobs>1 run where the parallel sweep is no faster than the
     single-domain memoized sweep deserves a loud flag, not a silently
     recorded number: either the workers never engaged (see
     workers_used) or contention ate the win *)
  let parallel_speedup = median (List.map2 ( /. ) !memo1_ms !memon_ms) in
  let no_parallel_speedup = jobs > 1 && parallel_speedup <= 1.0 in
  if no_parallel_speedup && not !serial_fallback then
    Printf.eprintf
      "warning: jobs=%d produced no parallel speedup over memo/1 (%.2fx, %d worker(s) active)\n"
      jobs parallel_speedup !workers_used;
  let cache_stats = Option.get !cache in
  let promoted_fraction =
    float_of_int !promoted /. float_of_int (max 1 (!promoted + !pruned_points))
  in
  let json =
    Obj
      [
        ("benchmark", Str "dse_sweep");
        ("workload", Str "diffeq");
        ("points", Num (float_of_int !points));
        ("iters", Num (float_of_int iters));
        ("jobs_requested", Num (float_of_int jobs));
        (* the machine the numbers were taken on: recommended domain
           count and the shared pool's worker cap (cores - 1; the
           caller's domain is the remaining lane). Validation reads
           these to decide whether a parallel-speedup gate is even
           meaningful for this file. *)
        ("host_cores", Num (float_of_int (Domain.recommended_domain_count ())));
        ( "pool_cap",
          Num (float_of_int (max 0 (Domain.recommended_domain_count () - 1))) );
        ("workers_used", Num (float_of_int !workers_used));
        ("no_parallel_speedup", Bool no_parallel_speedup);
        ("serial_fallback", Bool !serial_fallback);
        ("identical_designs", Bool !identical);
        ("frontier_identical", Bool !frontier_identical);
        ("promoted_points", Num (float_of_int !promoted));
        ("pruned_points", Num (float_of_int !pruned_points));
        ("promoted_fraction", Num promoted_fraction);
        ("serial_ms", runs !serial_ms);
        ("memo_jobs1_ms", runs !memo1_ms);
        ("memo_jobsN_ms", runs !memon_ms);
        ("pruned_ms", runs !pruned_ms);
        ("speedup_memo_jobs1", Num (paired_speedup !memo1_ms));
        ("speedup_memo_jobsN", Num (paired_speedup !memon_ms));
        ("speedup_pruned_vs_memo1", Num (median (List.map2 ( /. ) !memo1_ms !pruned_ms)));
        ( "cache",
          Obj
            [
              ("frontend", layer_obj cache_stats.Dse.frontend);
              ("midend", layer_obj cache_stats.Dse.midend);
              ("schedule", layer_obj cache_stats.Dse.schedule);
              ("backend", layer_obj cache_stats.Dse.backend);
            ] );
        ("stages_serial_ms", stage_obj !stages_serial);
        ("stages_memo_ms", stage_obj !stages_memo);
        (* trace counters from the last memo/N sweep: cache hit/miss
           per layer, kernel work totals, pool queue behaviour *)
        ("counters", Metrics.counters_json ());
      ]
  in
  let oc = open_out out in
  output_string oc (to_string json);
  close_out oc;
  Printf.printf
    "%s: %d points, serial %.1f ms, memo/1 %.1f ms (%.2fx), memo/%d %.1f ms (%.2fx%s), pruned %.1f ms (%d/%d promoted), identical designs: %b, identical frontier: %b\n"
    out !points (median !serial_ms) (median !memo1_ms)
    (paired_speedup !memo1_ms) jobs (median !memon_ms)
    (paired_speedup !memon_ms)
    (if !serial_fallback then ", serial fallback" else "")
    (median !pruned_ms) !promoted (!promoted + !pruned_points) !identical
    !frontier_identical;
  if not !identical || not !frontier_identical then exit 1

let validate file =
  let open Hls_util.Json in
  let ic =
    try open_in file
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match parse text with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok json ->
      let fail msg =
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      in
      let num key =
        match member key json with
        | Some (Num v) -> v
        | _ -> fail (Printf.sprintf "missing numeric field %S" key)
      in
      List.iter
        (fun key -> ignore (num key))
        [ "points"; "iters"; "jobs_requested"; "workers_used"; "speedup_memo_jobs1";
          "speedup_memo_jobsN"; "promoted_points"; "pruned_points";
          "promoted_fraction"; "speedup_pruned_vs_memo1"; "host_cores"; "pool_cap" ];
      let bool_field key =
        match member key json with
        | Some (Bool b) -> b
        | _ -> fail (Printf.sprintf "missing boolean field %S" key)
      in
      ignore (bool_field "no_parallel_speedup");
      let serial_fallback = bool_field "serial_fallback" in
      if not (bool_field "identical_designs") then fail "identical_designs is false";
      if not (bool_field "frontier_identical") then fail "frontier_identical is false";
      (match member "cache" json with
      | Some (Obj _) -> ()
      | _ -> fail "missing cache object");
      (match member "counters" json with
      | Some (Obj counters) ->
          if
            not
              (List.exists
                 (fun (k, _) -> String.length k > 4 && String.sub k 0 4 = "dse/")
                 counters)
          then fail "counters object has no dse/ entries";
          List.iter
            (fun key ->
              if not (List.mem_assoc key counters) then
                fail (Printf.sprintf "counters object is missing %S" key))
            [ "dse/points_evaluated"; "dse/pruned_points" ]
      | _ -> fail "missing counters object");
      if num "points" <= 0.0 then fail "no points";
      (* the parallel gate, conditioned on the recorded host: on a
         machine with spare cores (host_cores >= 2) a serial fallback is
         itself a failure — the pool had a lane and didn't use it — and
         jobs>1 must never lose to memo/1. On a single-core host the
         pool cap is 0, both sweeps run the same serial code, and a
         speedup gate would only measure noise, so it is skipped. *)
      if num "host_cores" >= 2.0 then begin
        if serial_fallback then
          fail
            (Printf.sprintf
               "serial fallback recorded on a host with %.0f cores (pool cap %.0f)"
               (num "host_cores") (num "pool_cap"));
        if num "speedup_memo_jobsN" < 1.0 then
          fail
            (Printf.sprintf "speedup_memo_jobsN %.3f below gate 1.0"
               (num "speedup_memo_jobsN"))
      end;
      if num "promoted_fraction" > 0.5 +. 1e-9 then
        fail
          (Printf.sprintf "pruned sweep promoted %.0f%% of points (gate: 50%%)"
             (100.0 *. num "promoted_fraction"));
      Printf.printf
        "%s: valid (%.0f points, memo/N speedup %.2fx, pruned promoted %.0f%%)\n" file
        (num "points") (num "speedup_memo_jobsN")
        (100.0 *. num "promoted_fraction")

let () =
  let iters = ref 5 and jobs = ref 4 and out = ref "BENCH_dse.json" in
  let validate_file = ref None in
  let spec =
    [
      ("--iters", Arg.Set_int iters, "N  timed iterations per mode (default 5)");
      ("--jobs", Arg.Set_int jobs, "N  worker domains for the parallel mode (default 4)");
      ("--out", Arg.Set_string out, "FILE  output path (default BENCH_dse.json)");
      ( "--validate",
        Arg.String (fun f -> validate_file := Some f),
        "FILE  reparse an emitted result file and check its shape" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench_dse";
  match !validate_file with
  | Some f -> validate f
  | None -> run_bench ~iters:!iters ~jobs:!jobs ~out:!out
