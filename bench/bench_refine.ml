(* Feedback-guided refinement benchmark: every workload is synthesized
   one-shot under every scheduler at the default limits; the best
   one-shot design per objective (area, latency) then seeds the
   iterative refinement loop ([Flow.refine_design]) at iterate bounds
   1..3. Each refined design is cosimulated against the behavioral
   reference, the refined-value sequence is checked monotone in the
   iterate bound, and a loop that accepted nothing must return its seed
   bit-identically. Results land in BENCH_refine.json; --validate
   reparses an emitted file and enforces the gates the refinement
   design promises: refinement is never worse than the best one-shot
   design on its objective (either coordinate, same constraints) on
   every workload, strictly better on at least two, every refined
   design's cosim is bit-identical, the per-iteration sequence is
   monotone, and the no-improvement fixpoint is physical identity. The
   @bench-smoke alias and `dune runtest` both run emit + validate. *)

open Hls_core

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let max_iterate = 3

let schedulers =
  [ Flow.Asap; Flow.List_path; Flow.List_mobility; Flow.Freedom; Flow.Branch_bound;
    Flow.Ilp_exact; Flow.Trans_parallel; Flow.Trans_serial ]

type metric = { area : int; latency : float }

let metric (d : Flow.design) =
  {
    area = d.Flow.estimate.Hls_rtl.Estimate.total_area;
    latency = d.Flow.estimate.Hls_rtl.Estimate.latency_ns;
  }

type row = {
  name : string;
  objective : string;  (** ["area"] or ["latency"] *)
  seed_scheduler : string;
  seed : metric;
  refined : metric;  (** at the largest iterate bound *)
  iters : int;  (** accepted iterations at that bound *)
  converged : bool;  (** reached a fixpoint before the bound *)
  cosim_ok : bool;  (** every refined design, at every bound *)
  monotone : bool;  (** values never regress as the bound grows *)
  identity_ok : bool;  (** no acceptance => returned design IS the seed *)
  ms : float;  (** refinement time at the largest bound *)
}

let run_bench ~runs ~out =
  let open Hls_util.Json in
  Hls_obs.Trace.reset ();
  let rows =
    List.concat_map
      (fun (name, src) ->
        let options = Flow.default_options in
        let o =
          Flow.midend ~passes:options.Flow.passes
            ~if_conversion:options.Flow.if_conversion (Flow.frontend src)
        in
        (* the one-shot field: every scheduler at the default limits *)
        let oneshot =
          List.filter_map
            (fun s ->
              let opts = { options with Flow.scheduler = s } in
              match Flow.backend_result opts o with
              | Ok d -> Some (s, opts, d)
              | Error _ -> None)
            schedulers
        in
        let best keyfn =
          match
            List.sort
              (fun (_, _, a) (_, _, b) -> compare (keyfn (metric a)) (keyfn (metric b)))
              oneshot
          with
          | x :: _ -> x
          | [] ->
              Printf.eprintf "%s: no one-shot design synthesized\n" name;
              exit 2
        in
        List.map
          (fun (objective, keyfn) ->
            let s, opts, seed = best keyfn in
            let sm = metric seed in
            let cosim_ok = ref true in
            let monotone = ref true in
            let prev = ref sm in
            let last = ref (seed, 0, 0.0) in
            for k = 1 to max_iterate do
              let (d, iters), t =
                timed (fun () ->
                    Flow.refine_design { opts with Flow.iterate = k } o seed)
              in
              let m = metric d in
              if m.area > !prev.area || m.latency > !prev.latency +. 1e-6 then
                monotone := false;
              prev := m;
              (match Flow.verify ~runs d with
              | Ok () -> ()
              | Error e ->
                  Printf.eprintf "%s/%s: iterate %d cosim diverged: %s\n" name
                    objective k e;
                  cosim_ok := false);
              last := (d, iters, t)
            done;
            let d, iters, t = !last in
            {
              name;
              objective;
              seed_scheduler = Flow.scheduler_to_string s;
              seed = sm;
              refined = metric d;
              iters;
              converged = iters < max_iterate;
              cosim_ok = !cosim_ok;
              monotone = !monotone;
              identity_ok =
                iters > 0 || Dse.design_digest d = Dse.design_digest seed;
              ms = 1e3 *. t;
            })
          [
            ("area", fun m -> (float_of_int m.area, m.latency));
            ("latency", fun m -> (m.latency, float_of_int m.area));
          ])
      Workloads.all
  in
  let all_cosim_ok = List.for_all (fun r -> r.cosim_ok) rows in
  let never_worse =
    List.for_all
      (fun r -> r.refined.area <= r.seed.area && r.refined.latency <= r.seed.latency +. 1e-6)
      rows
  in
  let all_monotone = List.for_all (fun r -> r.monotone) rows in
  let all_identity = List.for_all (fun r -> r.identity_ok) rows in
  let strict r =
    (r.refined.area < r.seed.area && r.refined.latency <= r.seed.latency +. 1e-6)
    || (r.refined.latency < r.seed.latency && r.refined.area <= r.seed.area)
  in
  let improved =
    List.length
      (List.sort_uniq compare
         (List.filter_map (fun r -> if strict r then Some r.name else None) rows))
  in
  let metric_json m =
    Obj [ ("area", Num (float_of_int m.area)); ("latency_ns", Num m.latency) ]
  in
  let row_json r =
    Obj
      [
        ("name", Str r.name);
        ("objective", Str r.objective);
        ("seed_scheduler", Str r.seed_scheduler);
        ("seed", metric_json r.seed);
        ("refined", metric_json r.refined);
        ("iterations", Num (float_of_int r.iters));
        ("converged", Bool r.converged);
        ("cosim_ok", Bool r.cosim_ok);
        ("monotone", Bool r.monotone);
        ("identity_ok", Bool r.identity_ok);
        ("ms", Num r.ms);
      ]
  in
  let json =
    Obj
      [
        ("benchmark", Str "refine");
        ("host_cores", Num (float_of_int (Domain.recommended_domain_count ())));
        ( "pool_cap",
          Num (float_of_int (max 0 (Domain.recommended_domain_count () - 1))) );
        ("cosim_runs", Num (float_of_int runs));
        ("max_iterate", Num (float_of_int max_iterate));
        ("workloads", Arr (List.map row_json rows));
        ("all_cosim_ok", Bool all_cosim_ok);
        ("never_worse", Bool never_worse);
        ("monotone", Bool all_monotone);
        ("identity_ok", Bool all_identity);
        ("improved_workloads", Num (float_of_int improved));
        ("counters", Metrics.counters_json ());
      ]
  in
  let oc = open_out out in
  output_string oc (to_string json);
  close_out oc;
  List.iter
    (fun r ->
      Printf.printf
        "  %-10s %-7s seed %-13s (%5d, %7.0f)  refined (%5d, %7.0f)  iters %d%s%s\n"
        r.name r.objective r.seed_scheduler r.seed.area r.seed.latency r.refined.area
        r.refined.latency r.iters
        (if r.converged then "" else " (bound hit)")
        (if r.cosim_ok then "" else "  COSIM FAIL"))
    rows;
  Printf.printf "%s: %d/%d workloads strictly improved, all cosim ok: %b\n" out
    improved
    (List.length Workloads.all)
    all_cosim_ok;
  if not (all_cosim_ok && never_worse && all_monotone && all_identity) then exit 1

let validate file =
  let open Hls_util.Json in
  let ic =
    try open_in file
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match parse text with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok json ->
      let fail msg =
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
      in
      let bool_field key =
        match member key json with
        | Some (Bool b) -> b
        | _ -> fail (Printf.sprintf "missing boolean field %S" key)
      in
      List.iter
        (fun key ->
          match member key json with
          | Some (Num _) -> ()
          | _ -> fail (Printf.sprintf "missing numeric field %S" key))
        [ "host_cores"; "pool_cap"; "cosim_runs"; "max_iterate" ];
      let rows =
        match member "workloads" json with
        | Some (Arr rows) -> rows
        | _ -> fail "missing workloads array"
      in
      if rows = [] then fail "workloads array is empty";
      List.iter
        (fun row ->
          let name =
            match member "name" row with
            | Some (Str s) -> s
            | _ -> fail "workload row missing name"
          in
          let m key field =
            match Option.bind (member key row) (member field) with
            | Some (Num v) -> v
            | _ -> fail (Printf.sprintf "%s: missing %s.%s" name key field)
          in
          (* the tentpole's headline gate, re-checked per row so a
             hand-edited file cannot sneak past the booleans: iterated
             never worse than the best one-shot design it grew from, on
             either coordinate, under the same constraints *)
          if m "refined" "area" > m "seed" "area" then
            fail
              (Printf.sprintf "%s: refined area %.0f exceeds one-shot seed %.0f" name
                 (m "refined" "area") (m "seed" "area"));
          if m "refined" "latency_ns" > m "seed" "latency_ns" +. 1e-6 then
            fail
              (Printf.sprintf "%s: refined latency %.1f exceeds one-shot seed %.1f"
                 name
                 (m "refined" "latency_ns")
                 (m "seed" "latency_ns"));
          List.iter
            (fun key ->
              match member key row with
              | Some (Bool true) -> ()
              | _ -> fail (Printf.sprintf "%s: %s is not true" name key))
            [ "cosim_ok"; "monotone"; "identity_ok" ])
        rows;
      if not (bool_field "all_cosim_ok") then fail "all_cosim_ok is false";
      if not (bool_field "never_worse") then fail "never_worse is false";
      if not (bool_field "monotone") then fail "monotone is false";
      if not (bool_field "identity_ok") then fail "identity_ok is false";
      (* refinement must strictly beat the best one-shot schedule
         somewhere, not merely tie everywhere *)
      (match member "improved_workloads" json with
      | Some (Num v) when v >= 2.0 -> ()
      | Some (Num v) ->
          fail (Printf.sprintf "only %.0f workload(s) strictly improved (gate: 2)" v)
      | _ -> fail "missing numeric field \"improved_workloads\"");
      Printf.printf "%s: valid (%d rows, all refinement gates hold)\n" file
        (List.length rows)

let () =
  let runs = ref 3 and out = ref "BENCH_refine.json" in
  let validate_file = ref None in
  let spec =
    [
      ("--runs", Arg.Set_int runs, "N  cosimulation runs per refined design (default 3)");
      ("--out", Arg.Set_string out, "FILE  output path (default BENCH_refine.json)");
      ( "--validate",
        Arg.String (fun f -> validate_file := Some f),
        "FILE  reparse an emitted result file and check its gates" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench_refine";
  match !validate_file with
  | Some f -> validate f
  | None -> run_bench ~runs:!runs ~out:!out
