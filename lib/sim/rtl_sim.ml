open Hls_rtl

exception Sim_error of string

type result = { finals : (string * int) list; cycles : int }

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                               *)
(* ------------------------------------------------------------------ *)

(* The seed implementation: per cycle it filters the whole design for the
   current state's activations and loads, walks wire trees through the
   generic [Wire.eval], dispatches operators through [Op.eval], and (in
   gate-level mode) re-derives the branch-condition key from the raw
   transition list. Kept as the oracle for the differential tests and as
   the benchmark baseline (the PR-1 convention). *)
let run_reference ?(fuel = 1_000_000) ?(gate_level_control = false)
    ?(encoding = Hls_ctrl.Encoding.Binary) ?on_cycle (dp : Datapath.t) ~inputs =
  let regs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (r : Datapath.reg_def) -> Hashtbl.replace regs r.Datapath.rname 0) dp.Datapath.regs;
  List.iter
    (fun (name, raw) ->
      if Hashtbl.mem regs name then Hashtbl.replace regs name raw
      else raise (Sim_error (Printf.sprintf "no input register %s" name)))
    inputs;
  let fsm = dp.Datapath.fsm in
  let ctrl =
    if gate_level_control then Some (Hls_ctrl.Ctrl_synth.synthesize ~style:encoding fsm)
    else None
  in
  let state = ref (Hls_ctrl.Fsm.entry fsm) in
  let cycles = ref 0 in
  let reg_read name =
    match Hashtbl.find_opt regs name with
    | Some x -> x
    | None -> raise (Sim_error (Printf.sprintf "read of missing register %s" name))
  in
  while !state <> Hls_ctrl.Fsm.done_state fsm do
    incr cycles;
    if !cycles > fuel then raise (Sim_error "out of fuel (controller may be stuck)");
    let s = !state in
    (* combinational phase: functional units *)
    let fu_out : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let fu_read u =
      match Hashtbl.find_opt fu_out u with
      | Some x -> x
      | None -> raise (Sim_error (Printf.sprintf "combinational use of idle unit %d" u))
    in
    List.iter
      (fun (a : Datapath.activity) ->
        let argv = List.map (fun w -> Wire.eval w ~reg:reg_read ~fu:fu_read) a.Datapath.a_args in
        let v =
          try Hls_cdfg.Op.eval a.Datapath.a_ty a.Datapath.a_op argv
          with Division_by_zero -> raise (Sim_error "division by zero")
        in
        Hashtbl.replace fu_out a.Datapath.a_fu v)
      (Datapath.activities_in dp s);
    (* register loads evaluate against pre-edge register values *)
    let pending =
      List.map
        (fun (l : Datapath.load) ->
          (l.Datapath.l_reg, Wire.eval l.Datapath.l_wire ~reg:reg_read ~fu:fu_read))
        (Datapath.loads_in dp s)
    in
    (* branch decision *)
    let cond_value =
      match Datapath.cond_wire dp s with
      | Some w -> Some (Wire.eval w ~reg:reg_read ~fu:fu_read <> 0)
      | None -> None
    in
    let next =
      match ctrl with
      | Some c ->
          let conds =
            match (cond_value, Datapath.cond_wire dp s) with
            | Some v, Some _ -> (
                (* recover the (block, nid) key for this state's condition *)
                match
                  List.find_opt
                    (fun (tr : Hls_ctrl.Fsm.transition) -> tr.Hls_ctrl.Fsm.t_from = s)
                    (List.filter
                       (fun (tr : Hls_ctrl.Fsm.transition) ->
                         match tr.Hls_ctrl.Fsm.t_guard with
                         | Hls_ctrl.Fsm.G_cond _ -> true
                         | Hls_ctrl.Fsm.G_always -> false)
                       (Hls_ctrl.Fsm.transitions fsm))
                with
                | Some { Hls_ctrl.Fsm.t_guard = Hls_ctrl.Fsm.G_cond (_, nid); _ } ->
                    let st =
                      List.find
                        (fun (x : Hls_ctrl.Fsm.state) -> x.Hls_ctrl.Fsm.sid = s)
                        (Hls_ctrl.Fsm.states fsm)
                    in
                    [ ((st.Hls_ctrl.Fsm.block, nid), v) ]
                | _ -> [])
            | _ -> []
          in
          Hls_ctrl.Ctrl_synth.next_state c ~state:s ~conds
      | None -> (
          let taken =
            List.find_opt
              (fun (tr : Hls_ctrl.Fsm.transition) ->
                match tr.Hls_ctrl.Fsm.t_guard with
                | Hls_ctrl.Fsm.G_always -> true
                | Hls_ctrl.Fsm.G_cond (pol, _) -> (
                    match cond_value with
                    | Some v -> v = pol
                    | None -> raise (Sim_error "branch without condition wire")))
              (Hls_ctrl.Fsm.outgoing fsm s)
          in
          match taken with
          | Some tr -> tr.Hls_ctrl.Fsm.t_to
          | None -> raise (Sim_error (Printf.sprintf "state %d has no enabled transition" s)))
    in
    (* clock edge: commit loads and the state register together *)
    List.iter (fun (r, v) -> Hashtbl.replace regs r v) pending;
    state := next;
    (match on_cycle with
    | Some f ->
        f ~cycle:!cycles ~state:!state
          ~regs:(Hashtbl.fold (fun r v acc -> (r, v) :: acc) regs [] |> List.sort compare)
    | None -> ())
  done;
  let finals = Hashtbl.fold (fun r v acc -> (r, v) :: acc) regs [] |> List.sort compare in
  { finals; cycles = !cycles }

(* ------------------------------------------------------------------ *)
(* Compiled simulation                                                 *)
(* ------------------------------------------------------------------ *)

(* One functional-unit activation, staged: argument wires and the
   operator dispatch are closures, the argument buffer is preallocated. *)
type cact = {
  ca_fu : int;
  ca_eval : int array -> int;
  ca_args : (unit -> int) array;
  ca_buf : int array;
}

type cload = { cl_reg : int; cl_wire : unit -> int }

(* Abstract-FSM transition, pre-resolved from the guard list. *)
type ctrans = CT_always of int | CT_cond of bool * int

type image = {
  im_dp : Datapath.t;
  im_reg_names : string array;  (** sorted; index = register id *)
  im_reg_vals : int array;  (** current register values, reset between runs *)
  im_reg_ids : (string, int) Hashtbl.t;
  im_acts : cact array array;  (** per state *)
  im_loads : cload array array;  (** per state *)
  im_pending : int array array;  (** per state, one slot per load *)
  im_conds : (unit -> int) option array;  (** per state *)
  im_next : ctrans array array;  (** per state, abstract-FSM transitions *)
  im_gate : (int -> bool option -> int) option;
      (** gate-level next-state, memoized per (state, cond value) *)
  im_entry : int;
  im_done : int;
  im_fu_vals : int array;
  im_fu_stamp : int array;  (** cycle number that last drove the unit *)
  im_cycle : int ref;  (** shared with compiled unit-read closures *)
}

let compile ?(gate_level_control = false) ?(encoding = Hls_ctrl.Encoding.Binary)
    (dp : Datapath.t) =
  let fsm = dp.Datapath.fsm in
  let n_states = Hls_ctrl.Fsm.n_states fsm in
  (* registers: [Datapath.build] sorts definitions by name, which is the
     order [Hashtbl.fold ... |> List.sort compare] yields in the
     reference (names are unique), so finals/on_cycle snapshots agree *)
  let reg_names =
    Array.of_list
      (List.sort compare
         (List.map (fun (r : Datapath.reg_def) -> r.Datapath.rname) dp.Datapath.regs))
  in
  let n_regs = Array.length reg_names in
  let reg_ids = Hashtbl.create (2 * max n_regs 1) in
  Array.iteri (fun i name -> Hashtbl.replace reg_ids name i) reg_names;
  let reg_vals = Array.make (max n_regs 1) 0 in
  let n_fus =
    List.fold_left (fun acc (f : Datapath.fu_def) -> max acc (f.Datapath.fuid + 1)) 1
      dp.Datapath.fus
  in
  let n_fus =
    (* activations can reference units beyond the declared instances only
       in malformed designs; size for both so reads fail through stamps,
       not array bounds *)
    List.fold_left
      (fun acc (a : Datapath.activity) -> max acc (a.Datapath.a_fu + 1))
      n_fus dp.Datapath.activities
  in
  let fu_vals = Array.make n_fus 0 in
  let fu_stamp = Array.make n_fus min_int in
  let cycle = ref 0 in
  (* wire compilation: registers resolve to value-array slots, unit reads
     check the stamp of the driving cycle — the reference's "idle unit"
     detection without a per-cycle table *)
  let rec compile_wire (w : Wire.t) : unit -> int =
    match w with
    | Wire.W_reg r -> (
        match Hashtbl.find_opt reg_ids r with
        | Some id -> fun () -> reg_vals.(id)
        | None ->
            fun () -> raise (Sim_error (Printf.sprintf "read of missing register %s" r)))
    | Wire.W_const (v, _) -> fun () -> v
    | Wire.W_fu_out (u, _) ->
        if u < 0 || u >= n_fus then
          (* no activity ever drives this id: always an idle-unit read *)
          fun () ->
            raise (Sim_error (Printf.sprintf "combinational use of idle unit %d" u))
        else
          fun () ->
            if fu_stamp.(u) = !cycle then fu_vals.(u)
            else raise (Sim_error (Printf.sprintf "combinational use of idle unit %d" u))
    | Wire.W_shl (a, k, t) ->
        let fmt = Wire.fmt_of_ty t and ca = compile_wire a in
        fun () -> Hls_util.Fixedpt.shift_left fmt (ca ()) k
    | Wire.W_shr (a, k, t) ->
        let fmt = Wire.fmt_of_ty t and ca = compile_wire a in
        fun () -> Hls_util.Fixedpt.shift_right fmt (ca ()) k
    | Wire.W_zdetect a ->
        let ca = compile_wire a in
        fun () -> if ca () = 0 then 1 else 0
    | Wire.W_mux (c, a, b, _) ->
        let cc = compile_wire c and ca = compile_wire a and cb = compile_wire b in
        fun () -> if cc () <> 0 then ca () else cb ()
    | Wire.W_not (a, t) -> (
        let ca = compile_wire a in
        match t with
        | Hls_lang.Ast.Tbool -> fun () -> if ca () <> 0 then 0 else 1
        | _ ->
            let fmt = Wire.fmt_of_ty t in
            fun () -> Hls_util.Fixedpt.wrap fmt (lnot (ca ())))
  in
  let ix = Datapath.index dp in
  let acts =
    Array.init n_states (fun s ->
        Array.map
          (fun (a : Datapath.activity) ->
            let args = Array.of_list (List.map compile_wire a.Datapath.a_args) in
            {
              ca_fu = a.Datapath.a_fu;
              ca_eval = Hls_cdfg.Op.compile_eval a.Datapath.a_ty a.Datapath.a_op;
              ca_args = args;
              ca_buf = Array.make (Array.length args) 0;
            })
          (Datapath.acts_at ix s))
  in
  let loads =
    Array.init n_states (fun s ->
        Array.map
          (fun (l : Datapath.load) ->
            let reg =
              match Hashtbl.find_opt reg_ids l.Datapath.l_reg with
              | Some id -> id
              | None ->
                  (* no such register: committing would be a silent no-op in
                     the reference (Hashtbl.replace inserts); unreachable in
                     well-formed designs, reject at compile time *)
                  raise
                    (Sim_error (Printf.sprintf "load of missing register %s" l.Datapath.l_reg))
            in
            { cl_reg = reg; cl_wire = compile_wire l.Datapath.l_wire })
          (Datapath.loads_at ix s))
  in
  let pending = Array.map (fun ls -> Array.make (max (Array.length ls) 1) 0) loads in
  let conds = Array.init n_states (fun s -> Option.map compile_wire (Datapath.cond_at ix s)) in
  let next =
    Array.init n_states (fun s ->
        Array.of_list
          (List.map
             (fun (tr : Hls_ctrl.Fsm.transition) ->
               match tr.Hls_ctrl.Fsm.t_guard with
               | Hls_ctrl.Fsm.G_always -> CT_always tr.Hls_ctrl.Fsm.t_to
               | Hls_ctrl.Fsm.G_cond (pol, _) -> CT_cond (pol, tr.Hls_ctrl.Fsm.t_to))
             (Hls_ctrl.Fsm.outgoing fsm s)))
  in
  let gate =
    if not gate_level_control then None
    else begin
      let c = Hls_ctrl.Ctrl_synth.synthesize ~style:encoding fsm in
      (* the reference rebuilds this key per cycle: the first G_cond
         transition out of the state (in global transition order) paired
         with the state's block *)
      let cond_key =
        Array.make n_states (None : (Hls_cdfg.Cfg.bid * Hls_cdfg.Dfg.nid) option)
      in
      for s = 0 to n_states - 1 do
        cond_key.(s) <-
          (match
             List.find_opt
               (fun (tr : Hls_ctrl.Fsm.transition) -> tr.Hls_ctrl.Fsm.t_from = s)
               (List.filter
                  (fun (tr : Hls_ctrl.Fsm.transition) ->
                    match tr.Hls_ctrl.Fsm.t_guard with
                    | Hls_ctrl.Fsm.G_cond _ -> true
                    | Hls_ctrl.Fsm.G_always -> false)
                  (Hls_ctrl.Fsm.transitions fsm))
           with
          | Some { Hls_ctrl.Fsm.t_guard = Hls_ctrl.Fsm.G_cond (_, nid); _ } ->
              let st =
                List.find
                  (fun (x : Hls_ctrl.Fsm.state) -> x.Hls_ctrl.Fsm.sid = s)
                  (Hls_ctrl.Fsm.states fsm)
              in
              Some (st.Hls_ctrl.Fsm.block, nid)
          | _ -> None)
      done;
      (* [Ctrl_synth.next_state] is pure, so one evaluation per
         (state, condition value) serves every cycle; computed on first
         use so states the run never reaches cost nothing *)
      let memo = Array.init n_states (fun _ -> [| None; None; None |]) in
      let slot_of = function None -> 0 | Some false -> 1 | Some true -> 2 in
      Some
        (fun s v ->
          let slot = slot_of v in
          match memo.(s).(slot) with
          | Some nx -> nx
          | None ->
              let conds =
                match (v, cond_key.(s)) with
                | Some b, Some key -> [ (key, b) ]
                | _ -> []
              in
              let nx = Hls_ctrl.Ctrl_synth.next_state c ~state:s ~conds in
              memo.(s).(slot) <- Some nx;
              nx)
    end
  in
  Hls_obs.Trace.incr "sim/images_compiled";
  {
    im_dp = dp;
    im_reg_names = reg_names;
    im_reg_vals = reg_vals;
    im_reg_ids = reg_ids;
    im_acts = acts;
    im_loads = loads;
    im_pending = pending;
    im_conds = conds;
    im_next = next;
    im_gate = gate;
    im_entry = Hls_ctrl.Fsm.entry fsm;
    im_done = Hls_ctrl.Fsm.done_state fsm;
    im_fu_vals = fu_vals;
    im_fu_stamp = fu_stamp;
    im_cycle = cycle;
  }

(* Replicates the reference cycle loop over the compiled image; the
   [cycle] counter referenced by compiled unit-read closures lives in the
   stamp array's generation discipline: a unit's value is only readable
   in the cycle that drove it. *)
let run_image ?(fuel = 1_000_000) ?on_cycle img ~inputs =
  let n_regs = Array.length img.im_reg_names in
  let vals = img.im_reg_vals in
  Array.fill vals 0 (Array.length vals) 0;
  Array.fill img.im_fu_stamp 0 (Array.length img.im_fu_stamp) min_int;
  List.iter
    (fun (name, raw) ->
      match Hashtbl.find_opt img.im_reg_ids name with
      | Some id -> vals.(id) <- raw
      | None -> raise (Sim_error (Printf.sprintf "no input register %s" name)))
    inputs;
  let state = ref img.im_entry in
  let cycles = img.im_cycle in
  cycles := 0;
  let snapshot () =
    let rec go i acc = if i < 0 then acc else go (i - 1) ((img.im_reg_names.(i), vals.(i)) :: acc) in
    go (n_regs - 1) []
  in
  while !state <> img.im_done do
    incr cycles;
    if !cycles > fuel then raise (Sim_error "out of fuel (controller may be stuck)");
    let s = !state in
    let cyc = !cycles in
    (* combinational phase: functional units *)
    let acts = img.im_acts.(s) in
    for i = 0 to Array.length acts - 1 do
      let a = acts.(i) in
      let buf = a.ca_buf in
      for k = 0 to Array.length a.ca_args - 1 do
        buf.(k) <- a.ca_args.(k) ()
      done;
      let v = try a.ca_eval buf with Division_by_zero -> raise (Sim_error "division by zero") in
      (* stamp before the edge: later activations of the same cycle read it *)
      img.im_fu_vals.(a.ca_fu) <- v;
      img.im_fu_stamp.(a.ca_fu) <- cyc
    done;
    (* register loads evaluate against pre-edge register values *)
    let loads = img.im_loads.(s) in
    let pend = img.im_pending.(s) in
    for i = 0 to Array.length loads - 1 do
      pend.(i) <- loads.(i).cl_wire ()
    done;
    (* branch decision *)
    let cond_value =
      match img.im_conds.(s) with Some w -> Some (w () <> 0) | None -> None
    in
    let next =
      match img.im_gate with
      | Some g -> g s cond_value
      | None -> (
          let trs = img.im_next.(s) in
          let rec pick i =
            if i >= Array.length trs then
              raise (Sim_error (Printf.sprintf "state %d has no enabled transition" s))
            else
              match trs.(i) with
              | CT_always t -> t
              | CT_cond (pol, t) -> (
                  match cond_value with
                  | Some v -> if v = pol then t else pick (i + 1)
                  | None -> raise (Sim_error "branch without condition wire"))
          in
          pick 0)
    in
    (* clock edge: commit loads and the state register together *)
    for i = 0 to Array.length loads - 1 do
      vals.(loads.(i).cl_reg) <- pend.(i)
    done;
    state := next;
    (match on_cycle with
    | Some f -> f ~cycle:!cycles ~state:!state ~regs:(snapshot ())
    | None -> ())
  done;
  Hls_obs.Trace.add "sim/cycles" !cycles;
  { finals = snapshot (); cycles = !cycles }

let run ?fuel ?gate_level_control ?encoding ?on_cycle dp ~inputs =
  run_image ?fuel ?on_cycle (compile ?gate_level_control ?encoding dp) ~inputs

(* Throughput mode: one compiled image, many stimulus vectors. run_image
   resets all mutable state up front, so replaying the image is exact. *)
let run_batch ?fuel img ~vectors =
  Hls_obs.Trace.add "sim/batch_vectors" (List.length vectors);
  List.map (fun inputs -> run_image ?fuel img ~inputs) vectors
