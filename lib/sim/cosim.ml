open Hls_util
open Hls_lang

type design = {
  d_prog : Typed.tprogram;
  d_cfg : Hls_cdfg.Cfg.t;
  d_datapath : Hls_rtl.Datapath.t;
}

let fmt_of_ty (ty : Ast.ty) =
  match ty with
  | Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

(* Compare one already-run RTL result against fresh behavioral and CDFG
   runs of the same vector — the common core of [check] and the batched
   [check_random]. *)
let compare_levels d ~inputs (rtl : Rtl_sim.result) =
  let outputs = Beh_sim.output_ports d.d_prog in
  let beh = Beh_sim.run d.d_prog ~inputs in
  let cfg_out = Cfg_sim.run d.d_cfg ~inputs in
  let lookup who l name =
    match List.assoc_opt name l with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: output %s missing" who name)
  in
  let rec compare_ports = function
    | [] -> Ok rtl.Rtl_sim.cycles
    | (name, ty) :: rest -> (
        ignore ty;
        match (lookup "behavioral" beh name, lookup "cdfg" cfg_out name, lookup "rtl" rtl.Rtl_sim.finals name) with
        | Ok a, Ok b, Ok c ->
            if a = b && b = c then compare_ports rest
            else
              Error
                (Printf.sprintf "output %s disagrees: behavioral=%d cdfg=%d rtl=%d" name a
                   b c)
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  in
  compare_ports outputs

let check ?(gate_level_control = false) ?image d ~inputs =
  let rtl =
    match image with
    | Some img -> Rtl_sim.run_image img ~inputs
    | None -> Rtl_sim.run ~gate_level_control d.d_datapath ~inputs
  in
  compare_levels d ~inputs rtl

let check_random ?(runs = 20) ?(seed = 42) ?gate_level_control d =
  let rng = Random.State.make [| seed |] in
  let input_ports =
    List.filter_map
      (fun (p : Ast.port) ->
        if p.Ast.pdir = Ast.Input then Some (p.Ast.pname, p.Ast.pty) else None)
      d.d_prog.Typed.tports
  in
  let random_value ty =
    let fmt = fmt_of_ty ty in
    let bits = Fixedpt.bits fmt in
    (* positive patterns; divisions in the specs stay well-defined and
       fixed-point quotients stay in range *)
    let magnitude = max 1 (min (bits - 1) 16) in
    1 + Random.State.int rng ((1 lsl magnitude) - 1)
  in
  (* draw every vector up front, in run order, so the stimulus stream is
     the same one the sequential loop produced *)
  let rec gen i acc =
    if i >= runs then List.rev acc
    else
      gen (i + 1)
        (List.map (fun (name, ty) -> (name, random_value ty)) input_ports :: acc)
  in
  let vectors = gen 0 [] in
  (* one compiled image serves the whole batch *)
  let image =
    Rtl_sim.compile
      ~gate_level_control:(Option.value gate_level_control ~default:false)
      d.d_datapath
  in
  let rtl_results = Rtl_sim.run_batch image ~vectors in
  let rec go i vs rs =
    match (vs, rs) with
    | [], [] -> Ok ()
    | inputs :: vs, rtl :: rs -> (
        match compare_levels d ~inputs rtl with
        | Ok _ -> go (i + 1) vs rs
        | Error e ->
            Error
              (Printf.sprintf "run %d (inputs %s): %s" i
                 (String.concat ", "
                    (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) inputs))
                 e))
    | _ -> assert false
  in
  go 0 vectors rtl_results
