(** Co-simulation: the design-verification experiment. Runs the
    behavioral interpreter, the CDFG interpreter, and the RTL simulator
    on the same inputs and demands bit-identical output-port values —
    evidence that compilation, every optimization pass, scheduling,
    allocation and controller synthesis preserved the specified
    behavior. *)

open Hls_lang

type design = {
  d_prog : Typed.tprogram;
  d_cfg : Hls_cdfg.Cfg.t;
  d_datapath : Hls_rtl.Datapath.t;
}

val check :
  ?gate_level_control:bool ->
  ?image:Rtl_sim.image ->
  design ->
  inputs:(string * int) list ->
  (int, string) result
(** [Ok cycles] when all three levels agree on every output port (the
    payload is the RTL cycle count); otherwise a diagnostic naming the
    first mismatching port and the three values. Pass [image] (a
    {!Rtl_sim.compile} of the design's datapath) to skip recompiling
    when checking many vectors; [gate_level_control] is then ignored in
    favor of the image's own mode. *)

val check_random :
  ?runs:int ->
  ?seed:int ->
  ?gate_level_control:bool ->
  design ->
  (unit, string) result
(** {!check} on pseudo-random input vectors (default 20 runs). The
    vectors are drawn up front and the RTL level runs as one
    {!Rtl_sim.run_batch} over a single compiled image, so the compile
    cost is paid once per design rather than once per run; the stimulus
    stream and the first-failure diagnostic are the same as the
    sequential loop's. *)
