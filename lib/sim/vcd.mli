(** Value-change-dump (IEEE 1364 VCD) waveform emission for RTL
    simulation runs — open the result in GTKWave or any VCD viewer to
    watch the synthesized design's registers and FSM state cycle by
    cycle. *)

val dump :
  ?module_name:string ->
  ?use_reference:bool ->
  Hls_rtl.Datapath.t ->
  inputs:(string * int) list ->
  string
(** Simulate the datapath on the inputs (abstract controller) and render
    the complete run as VCD text: one signal per register plus the state
    register, one timestep per clock cycle, only changed values dumped
    per step. [use_reference] drives the dump from
    {!Rtl_sim.run_reference} instead of the compiled simulator — the
    differential tests render both and demand equal text. *)

val dump_to_file :
  ?module_name:string ->
  ?use_reference:bool ->
  Hls_rtl.Datapath.t ->
  inputs:(string * int) list ->
  path:string ->
  Rtl_sim.result
(** Like {!dump}, writing the text to [path] and returning the
    simulation result. *)
