(** Cycle-accurate simulation of the synthesized RTL: state register,
    functional-unit activations, register loads and branch decisions,
    exactly as the datapath + controller would execute in hardware.

    With [~gate_level_control:true] the next state is computed by
    evaluating the synthesized (Quine–McCluskey-minimized) next-state
    logic instead of the abstract FSM — demonstrating that controller
    synthesis preserved behavior.

    Simulation is a compiled kernel: {!compile} stages the design once —
    per-state activation/load arrays instead of per-cycle list filtering,
    wire trees and operator dispatch folded into closures, registers in a
    dense value array, and gate-level next-state functions memoized per
    (state, condition) — and {!run_image} replays the staged image at
    ≥3× the interpreted throughput with identical results. {!run} is
    compile-and-run; {!run_reference} is the retained seed interpreter,
    the oracle for the differential tests and the benchmark baseline.
    Work is reported through {!Hls_obs.Trace} counters [sim/cycles] and
    [sim/images_compiled]. *)

exception Sim_error of string

type result = {
  finals : (string * int) list;  (** register name → final pattern *)
  cycles : int;  (** clock cycles until DONE *)
}

type image
(** A compiled design: per-state closures plus the mutable register and
    functional-unit state they execute against. Reusable across
    {!run_image} calls (each run resets the state); not shareable across
    domains. *)

val compile :
  ?gate_level_control:bool -> ?encoding:Hls_ctrl.Encoding.style -> Hls_rtl.Datapath.t -> image
(** Stage a datapath for repeated simulation. [encoding] selects the
    state encoding when [gate_level_control] is on (default binary). *)

val run_image :
  ?fuel:int ->
  ?on_cycle:(cycle:int -> state:int -> regs:(string * int) list -> unit) ->
  image ->
  inputs:(string * int) list ->
  result
(** Execute a compiled image. Same contract as {!run}. *)

val run_batch :
  ?fuel:int -> image -> vectors:(string * int) list list -> result list
(** Throughput mode: replay one compiled image over a whole batch of
    stimulus vectors, amortizing {!compile} across the batch. Results
    are in vector order; each run resets the image, so the batch is
    exactly equivalent to mapping {!run_image}. Reports the batch size
    through the [sim/batch_vectors] counter (the per-run [sim/cycles]
    still accumulates). *)

val run :
  ?fuel:int ->
  ?gate_level_control:bool ->
  ?encoding:Hls_ctrl.Encoding.style ->
  ?on_cycle:(cycle:int -> state:int -> regs:(string * int) list -> unit) ->
  Hls_rtl.Datapath.t ->
  inputs:(string * int) list ->
  result
(** [inputs] preload the named registers (input ports). [fuel] bounds the
    cycle count (default 1_000_000). [encoding] selects the state
    encoding when [gate_level_control] is on (default binary).
    [on_cycle] observes every clock edge: the cycle number, the state
    entered, and the post-edge register values (sorted) — the hook used
    by {!Vcd} waveform dumping. Equivalent to {!compile} followed by
    {!run_image}; callers simulating one design repeatedly should compile
    once. *)

val run_reference :
  ?fuel:int ->
  ?gate_level_control:bool ->
  ?encoding:Hls_ctrl.Encoding.style ->
  ?on_cycle:(cycle:int -> state:int -> regs:(string * int) list -> unit) ->
  Hls_rtl.Datapath.t ->
  inputs:(string * int) list ->
  result
(** The seed interpreter — filters the design per cycle and walks wire
    trees through the generic evaluators. Produces exactly the same
    [finals], [cycles], and [on_cycle] observations as {!run}; kept as
    the oracle for differential tests and benchmark baselines. *)
