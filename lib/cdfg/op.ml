open Hls_util

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type t =
  | Const of int
  | Read of string
  | Write of string
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | And | Or | Xor | Not | Neg
  | Cmp of cmp
  | Incr | Decr
  | Zdetect
  | Mux

let cmp_to_string = function
  | Ceq -> "="
  | Cne -> "<>"
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let to_string = function
  | Const v -> Printf.sprintf "const(%d)" v
  | Read name -> Printf.sprintf "read(%s)" name
  | Write name -> Printf.sprintf "write(%s)" name
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Shl -> "<<"
  | Shr -> ">>"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Neg -> "neg"
  | Cmp c -> "cmp" ^ cmp_to_string c
  | Incr -> "incr"
  | Decr -> "decr"
  | Zdetect -> "zdetect"
  | Mux -> "mux"

let pp ppf op = Format.pp_print_string ppf (to_string op)

let equal (a : t) (b : t) = a = b

let of_binop (op : Hls_lang.Ast.binop) =
  match op with
  | Hls_lang.Ast.Add -> Add
  | Hls_lang.Ast.Sub -> Sub
  | Hls_lang.Ast.Mul -> Mul
  | Hls_lang.Ast.Div -> Div
  | Hls_lang.Ast.Mod -> Mod
  | Hls_lang.Ast.Shl -> Shl
  | Hls_lang.Ast.Shr -> Shr
  | Hls_lang.Ast.And -> And
  | Hls_lang.Ast.Or -> Or
  | Hls_lang.Ast.Xor -> Xor
  | Hls_lang.Ast.Eq -> Cmp Ceq
  | Hls_lang.Ast.Ne -> Cmp Cne
  | Hls_lang.Ast.Lt -> Cmp Clt
  | Hls_lang.Ast.Le -> Cmp Cle
  | Hls_lang.Ast.Gt -> Cmp Cgt
  | Hls_lang.Ast.Ge -> Cmp Cge

let arity = function
  | Const _ | Read _ -> 0
  | Write _ | Not | Neg | Incr | Decr | Zdetect -> 1
  | Add | Sub | Mul | Div | Mod | Shl | Shr | And | Or | Xor | Cmp _ -> 2
  | Mux -> 3

type fu_class = C_alu | C_mul | C_div | C_shift | C_free | C_none

let fu_class_to_string = function
  | C_alu -> "alu"
  | C_mul -> "mul"
  | C_div -> "div"
  | C_shift -> "shift"
  | C_free -> "free"
  | C_none -> "none"

let base_class = function
  | Const _ | Read _ | Write _ -> C_none
  | Add | Sub | And | Or | Xor | Not | Neg | Cmp _ | Incr | Decr -> C_alu
  | Mul -> C_mul
  | Div | Mod -> C_div
  | Shl | Shr -> C_shift
  | Zdetect | Mux -> C_free

(* ---- evaluation ---- *)

(* Also the width/format authority for the range analysis and datapath. *)
let fmt_of (ty : Hls_lang.Ast.ty) =
  match ty with
  | Hls_lang.Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Hls_lang.Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Hls_lang.Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

let bool_of v = v <> 0

let eval ty op args =
  let fmt = fmt_of ty in
  let arg1 () = match args with [ a ] -> a | _ -> invalid_arg "Op.eval: arity" in
  let arg2 () = match args with [ a; b ] -> (a, b) | _ -> invalid_arg "Op.eval: arity" in
  match op with
  | Const v -> Fixedpt.wrap fmt v
  | Read _ -> invalid_arg "Op.eval: Read has no dataflow evaluation"
  | Write _ -> Fixedpt.wrap fmt (arg1 ())
  | Add ->
      let a, b = arg2 () in
      Fixedpt.add fmt a b
  | Sub ->
      let a, b = arg2 () in
      Fixedpt.sub fmt a b
  | Mul ->
      let a, b = arg2 () in
      Fixedpt.mul fmt a b
  | Div ->
      let a, b = arg2 () in
      Fixedpt.div fmt a b
  | Mod ->
      let a, b = arg2 () in
      if b = 0 then raise Division_by_zero;
      Fixedpt.wrap fmt (a mod b)
  | Shl ->
      let a, b = arg2 () in
      Fixedpt.shift_left fmt a b
  | Shr ->
      let a, b = arg2 () in
      Fixedpt.shift_right fmt a b
  | And ->
      let a, b = arg2 () in
      Fixedpt.wrap fmt (a land b)
  | Or ->
      let a, b = arg2 () in
      Fixedpt.wrap fmt (a lor b)
  | Xor ->
      let a, b = arg2 () in
      Fixedpt.wrap fmt (a lxor b)
  | Not ->
      (* logical complement on bool, bitwise on ints *)
      let a = arg1 () in
      (match ty with
      | Hls_lang.Ast.Tbool -> if bool_of a then 0 else 1
      | Hls_lang.Ast.Tint _ | Hls_lang.Ast.Tfix _ -> Fixedpt.wrap fmt (lnot a))
  | Neg -> Fixedpt.neg fmt (arg1 ())
  | Cmp c ->
      (* signed comparison on raw patterns; identical fixed formats compare
         correctly this way *)
      let a, b = arg2 () in
      let r =
        match c with
        | Ceq -> a = b
        | Cne -> a <> b
        | Clt -> a < b
        | Cle -> a <= b
        | Cgt -> a > b
        | Cge -> a >= b
      in
      if r then 1 else 0
  | Incr -> Fixedpt.add fmt (arg1 ()) (Fixedpt.of_int fmt 1)
  | Decr -> Fixedpt.sub fmt (arg1 ()) (Fixedpt.of_int fmt 1)
  | Zdetect -> if arg1 () = 0 then 1 else 0
  | Mux -> (
      match args with
      | [ c; a; b ] -> Fixedpt.wrap fmt (if bool_of c then a else b)
      | _ -> invalid_arg "Op.eval: arity")

(* Compiled evaluation: the format resolution and operator dispatch above
   happen once, returning a closure over an argument buffer. Each closure
   computes exactly what [eval] computes (same [Fixedpt] calls, same
   exceptions), so compiled and interpreted simulation agree bit for bit. *)
let compile_eval ty op =
  let fmt = fmt_of ty in
  let a1 (a : int array) =
    if Array.length a <> 1 then invalid_arg "Op.eval: arity";
    a.(0)
  in
  let chk2 (a : int array) = if Array.length a <> 2 then invalid_arg "Op.eval: arity" in
  match op with
  | Const v -> fun _ -> Fixedpt.wrap fmt v
  | Read _ -> fun _ -> invalid_arg "Op.eval: Read has no dataflow evaluation"
  | Write _ -> fun a -> Fixedpt.wrap fmt (a1 a)
  | Add -> fun a -> chk2 a; Fixedpt.add fmt a.(0) a.(1)
  | Sub -> fun a -> chk2 a; Fixedpt.sub fmt a.(0) a.(1)
  | Mul -> fun a -> chk2 a; Fixedpt.mul fmt a.(0) a.(1)
  | Div -> fun a -> chk2 a; Fixedpt.div fmt a.(0) a.(1)
  | Mod ->
      fun a ->
        chk2 a;
        if a.(1) = 0 then raise Division_by_zero;
        Fixedpt.wrap fmt (a.(0) mod a.(1))
  | Shl -> fun a -> chk2 a; Fixedpt.shift_left fmt a.(0) a.(1)
  | Shr -> fun a -> chk2 a; Fixedpt.shift_right fmt a.(0) a.(1)
  | And -> fun a -> chk2 a; Fixedpt.wrap fmt (a.(0) land a.(1))
  | Or -> fun a -> chk2 a; Fixedpt.wrap fmt (a.(0) lor a.(1))
  | Xor -> fun a -> chk2 a; Fixedpt.wrap fmt (a.(0) lxor a.(1))
  | Not -> (
      match ty with
      | Hls_lang.Ast.Tbool -> fun a -> if bool_of (a1 a) then 0 else 1
      | Hls_lang.Ast.Tint _ | Hls_lang.Ast.Tfix _ ->
          fun a -> Fixedpt.wrap fmt (lnot (a1 a)))
  | Neg -> fun a -> Fixedpt.neg fmt (a1 a)
  | Cmp c ->
      let test : int -> int -> bool =
        match c with
        | Ceq -> ( = )
        | Cne -> ( <> )
        | Clt -> ( < )
        | Cle -> ( <= )
        | Cgt -> ( > )
        | Cge -> ( >= )
      in
      fun a ->
        chk2 a;
        if test a.(0) a.(1) then 1 else 0
  | Incr ->
      let one = Fixedpt.of_int fmt 1 in
      fun a -> Fixedpt.add fmt (a1 a) one
  | Decr ->
      let one = Fixedpt.of_int fmt 1 in
      fun a -> Fixedpt.sub fmt (a1 a) one
  | Zdetect -> fun a -> if a1 a = 0 then 1 else 0
  | Mux ->
      fun a ->
        if Array.length a <> 3 then invalid_arg "Op.eval: arity";
        Fixedpt.wrap fmt (if bool_of a.(0) then a.(1) else a.(2))
