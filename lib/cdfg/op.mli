(** Operation vocabulary of the data-flow graph.

    Each node in a DFG carries one of these operators. [Const], [Read] and
    [Write] anchor values at basic-block boundaries: a [Read] materializes
    the register/port holding a variable at block entry, and a [Write]
    commits a value back to its register/port at the end of its control
    step. The remaining operators are computations that must be assigned
    to functional units by scheduling and allocation. *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type t =
  | Const of int  (** literal bit pattern; meaning given by the node type *)
  | Read of string  (** variable or input port, read at block entry *)
  | Write of string  (** variable or output port; single argument *)
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | And | Or | Xor | Not | Neg
  | Cmp of cmp
  | Incr | Decr  (** increment/decrement, introduced by strength reduction *)
  | Zdetect  (** equality-with-zero test, free wiring on a register output *)
  | Mux  (** args = [cond; then; else]; interconnect, not a functional unit *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val of_binop : Hls_lang.Ast.binop -> t
(** Translation from the surface-language operator. *)

val arity : t -> int
(** Expected argument count ([Const]/[Read] take none). *)

(** Functional-unit class of an operation, the unit of resource limits in
    scheduling and of sharing in allocation.

    [C_free] operations (constant shifts, zero-detect, mux) consume no
    control step and no functional unit — they are wiring, per the paper's
    "the shift operation is free". [C_none] operations ([Const], [Read],
    and [Write] of a computed value) are not executed at all; a [Write]
    whose argument is a constant or another variable is a register move
    and occupies an ALU slot ([C_alu]). Class assignment of shifts and
    writes therefore depends on context and lives in {!Dfg.fu_class_of}. *)
type fu_class = C_alu | C_mul | C_div | C_shift | C_free | C_none

val fu_class_to_string : fu_class -> string

val base_class : t -> fu_class
(** Context-free classification: shifts are classified [C_shift] and writes
    [C_none]; {!Dfg.fu_class_of} refines both. *)

val fmt_of : Hls_lang.Ast.ty -> Hls_util.Fixedpt.format
(** The fixed-point format every evaluation of a node of this type uses
    (booleans are 1-bit integers). Shared with the range analysis so its
    transfer functions wrap exactly like {!eval}. *)

val eval : Hls_lang.Ast.ty -> t -> int list -> int
(** Bit-exact evaluation of an operator at a result type, shared by the
    CDFG interpreter and the RTL simulator. Comparison arguments are
    compared as signed patterns; fixed-point multiply/divide rescale.
    Raises [Invalid_argument] on arity mismatch and [Division_by_zero]
    accordingly. *)

val compile_eval : Hls_lang.Ast.ty -> t -> int array -> int
(** Staged {!eval}: resolves the fixed-point format and the operator
    dispatch once and returns a closure over an argument buffer. The
    closure raises exactly what {!eval} would ([Invalid_argument] on
    arity mismatch, [Division_by_zero]) and computes the same patterns —
    the compiled RTL simulator's per-cycle inner loop. *)
