open Hls_cdfg

type wire =
  | W_fu_out of int
  | W_var of string
  | W_temp of Cfg.bid * Dfg.nid
  | W_wire of Cfg.bid * Dfg.nid
  | W_const of int

type dest =
  | D_fu_in of int * int
  | D_var of string
  | D_temp of Cfg.bid * Dfg.nid

type transfer = { t_src : wire; t_dst : dest; t_bid : Cfg.bid; t_step : int }

let wire_of_source ~regs (src : Fu_alloc.source) =
  match src with
  | Fu_alloc.From_var v -> W_var (Reg_alloc.register_of_var regs v)
  | Fu_alloc.From_const c -> W_const c
  | Fu_alloc.From_temp (bid, nid) -> W_temp (bid, nid)
  | Fu_alloc.From_wire (bid, nid) -> W_wire (bid, nid)

let transfers cs ~fu ~regs =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let acc = ref [] in
  let emit t = acc := t :: !acc in
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      (* FU input transfers *)
      List.iter
        (fun nid ->
          let unit_id = Fu_alloc.of_op fu (bid, nid) in
          let step = Hls_sched.Schedule.step_of sched nid in
          List.iteri
            (fun pos a ->
              let src = wire_of_source ~regs (Fu_alloc.source_of cs bid a) in
              emit { t_src = src; t_dst = D_fu_in (unit_id, pos); t_bid = bid; t_step = step })
            (Dfg.args g nid))
        (Dfg.compute_ops g);
      (* the wire that produces a value (for register latching) *)
      let rec producing_wire nid =
        match Dfg.op g nid with
        | Op.Const c -> W_const c
        | Op.Read v -> W_var (Reg_alloc.register_of_var regs v)
        | Op.Write v -> (
            match Dfg.args g nid with
            | [ a ] -> producing_wire a
            | args ->
                invalid_arg
                  (Printf.sprintf
                     "Interconnect: write of %s (b%d.%%%d) has %d arguments, expected 1" v
                     bid nid (List.length args)))
        | _ when Dfg.occupies_step g nid -> W_fu_out (Fu_alloc.of_op fu (bid, nid))
        | _ -> W_wire (bid, nid)
      in
      (* variable register latches *)
      List.iter
        (fun (v, wnid) ->
          let step = Hls_sched.Schedule.write_step sched wnid in
          let src =
            match Dfg.args g wnid with
            | [ a ] -> (
                (* a write-move occupies an ALU slot: physically the value
                   still travels from its storage to the register *)
                match Dfg.op g a with
                | Op.Read w -> W_var (Reg_alloc.register_of_var regs w)
                | Op.Const c -> W_const c
                | _ -> producing_wire a)
            | args ->
                invalid_arg
                  (Printf.sprintf
                     "Interconnect: write of %s (b%d.%%%d) has %d arguments, expected 1" v
                     bid wnid (List.length args))
          in
          emit
            {
              t_src = src;
              t_dst = D_var (Reg_alloc.register_of_var regs v);
              t_bid = bid;
              t_step = step;
            })
        (Dfg.writes g);
      (* temporary register latches *)
      let term_cond =
        match Cfg.term cfg bid with
        | Cfg.Branch (c, _, _) -> Some c
        | Cfg.Goto _ | Cfg.Halt -> None
      in
      List.iter
        (fun (info : Lifetime.value_info) ->
          match info.Lifetime.storage with
          | Lifetime.Temp iv ->
              let nid = info.Lifetime.nid in
              let src =
                match Dfg.op g nid with
                | Op.Read v -> W_var (Reg_alloc.register_of_var regs v)
                | _ -> W_fu_out (Fu_alloc.of_op fu (bid, nid))
              in
              emit
                {
                  t_src = src;
                  t_dst = D_temp (bid, nid);
                  t_bid = bid;
                  t_step = iv.Hls_util.Interval.lo;
                }
          | Lifetime.In_variable _ | Lifetime.No_storage -> ())
        (Lifetime.analyze sched ~term_cond))
    (Cfg.block_ids cfg);
  List.rev !acc

let mux_cost ts =
  let by_dest : (dest, wire list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun t ->
      let have = try Hashtbl.find by_dest t.t_dst with Not_found -> [] in
      if not (List.mem t.t_src have) then Hashtbl.replace by_dest t.t_dst (t.t_src :: have))
    ts;
  Hashtbl.fold (fun _ srcs acc -> acc + max 0 (List.length srcs - 1)) by_dest 0

let bus_allocation ts =
  let arr = Array.of_list ts in
  let n = Array.length arr in
  let compatible i j =
    let a = arr.(i) and b = arr.(j) in
    (a.t_bid, a.t_step) <> (b.t_bid, b.t_step) || a.t_src = b.t_src
  in
  let groups = Clique.partition ~n ~compatible in
  let bus_groups = List.map (List.map (fun i -> arr.(i))) groups in
  (bus_groups, List.length bus_groups)

let pp_summary ppf ts =
  let _, buses = bus_allocation ts in
  Format.fprintf ppf "%d transfers, mux cost %d, %d buses@." (List.length ts)
    (mux_cost ts) buses
