open Hls_cdfg

type op_ref = { bid : Cfg.bid; nid : Dfg.nid; cls : Op.fu_class; step : int }

type source =
  | From_var of string
  | From_const of int
  | From_temp of Cfg.bid * Dfg.nid
  | From_wire of Cfg.bid * Dfg.nid

type instance = { fu_id : int; fu_cls : Op.fu_class; ops : op_ref list }

(* The op → unit lookup is a hashtable, not a closure, so a finished
   allocation — and the design containing it — can be marshalled into
   the persistent design cache. *)
type t = { instances : instance list; op_units : (Cfg.bid * Dfg.nid, int) Hashtbl.t }

let of_op t (bid, nid) =
  match Hashtbl.find_opt t.op_units (bid, nid) with
  | Some id -> id
  | None ->
      invalid_arg
        (Printf.sprintf "Fu_alloc: operation b%d.%%%d is not allocated to any unit" bid nid)

let collect cs =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  List.concat_map
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      Dfg.compute_ops g
      |> List.map (fun nid ->
             {
               bid;
               nid;
               cls = Dfg.fu_class_of g nid;
               step = Hls_sched.Schedule.step_of sched nid;
             })
      |> List.sort (fun a b -> compare (a.step, a.nid) (b.step, b.nid)))
    (Cfg.block_ids cfg)

(* storage classification per (block, value) *)
let storage_table cs =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let table = Hashtbl.create 64 in
  List.iter
    (fun bid ->
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      let term_cond =
        match Cfg.term cfg bid with
        | Cfg.Branch (c, _, _) -> Some c
        | Cfg.Goto _ | Cfg.Halt -> None
      in
      List.iter
        (fun (info : Lifetime.value_info) ->
          Hashtbl.replace table (bid, info.Lifetime.nid) info.Lifetime.storage)
        (Lifetime.analyze sched ~term_cond))
    (Cfg.block_ids cfg);
  table

let source_of_with_table cs table bid nid =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let g = Cfg.dfg cfg bid in
  match Dfg.op g nid with
  | Op.Const c -> From_const c
  | Op.Read v -> (
      match Hashtbl.find_opt table (bid, nid) with
      | Some (Lifetime.Temp _) -> From_temp (bid, nid)
      | _ -> From_var v)
  | _ when Dfg.occupies_step g nid -> (
      match Hashtbl.find_opt table (bid, nid) with
      | Some (Lifetime.In_variable v) -> From_var v
      | Some (Lifetime.Temp _) -> From_temp (bid, nid)
      | Some Lifetime.No_storage | None ->
          (* consumed only combinationally; treated as direct wiring *)
          From_wire (bid, nid))
  | _ -> From_wire (bid, nid)

let source_of cs bid nid = source_of_with_table cs (storage_table cs) bid nid

let make_lookup instances =
  let table = Hashtbl.create 64 in
  List.iter
    (fun inst ->
      List.iter (fun r -> Hashtbl.replace table (r.bid, r.nid) inst.fu_id) inst.ops)
    instances;
  table

let by_clique cs =
  let ops = Array.of_list (collect cs) in
  let n = Array.length ops in
  let compatible i j =
    let a = ops.(i) and b = ops.(j) in
    a.cls = b.cls && (a.bid <> b.bid || a.step <> b.step)
  in
  let groups = Clique.partition ~n ~compatible in
  let instances =
    List.mapi
      (fun fu_id members ->
        let refs = List.map (fun i -> ops.(i)) members in
        let fu_cls = match refs with r :: _ -> r.cls | [] -> Op.C_alu in
        { fu_id; fu_cls; ops = refs })
      groups
  in
  { instances; op_units = make_lookup instances }

(* mutable instance state during greedy construction *)
type building = {
  b_id : int;
  b_cls : Op.fu_class;
  mutable b_ops : op_ref list;
  mutable b_inputs : source list array;  (* per port position *)
  mutable b_arity : int;
}

let greedy ?(selection = `Min_mux) cs =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let table = storage_table cs in
  let ops = collect cs in
  let instances : building list ref = ref [] in
  let next_id = ref 0 in
  let arg_sources r =
    let g = Cfg.dfg cfg r.bid in
    List.map (fun a -> source_of_with_table cs table r.bid a) (Dfg.args g r.nid)
  in
  let busy inst r = List.exists (fun o -> o.bid = r.bid && o.step = r.step) inst.b_ops in
  let added_cost inst srcs =
    List.mapi
      (fun pos src ->
        if pos >= inst.b_arity then 0
        else begin
          let have = inst.b_inputs.(pos) in
          if have = [] || List.mem src have then 0 else 1
        end)
      srcs
    |> List.fold_left ( + ) 0
  in
  let commit inst r srcs =
    inst.b_ops <- r :: inst.b_ops;
    let arity = List.length srcs in
    if arity > inst.b_arity then begin
      let inputs = Array.make arity [] in
      Array.blit inst.b_inputs 0 inputs 0 inst.b_arity;
      inst.b_inputs <- inputs;
      inst.b_arity <- arity
    end;
    List.iteri
      (fun pos src ->
        if not (List.mem src inst.b_inputs.(pos)) then
          inst.b_inputs.(pos) <- src :: inst.b_inputs.(pos))
      srcs
  in
  List.iter
    (fun r ->
      let srcs = arg_sources r in
      let candidates =
        List.filter (fun inst -> inst.b_cls = r.cls && not (busy inst r)) !instances
      in
      let chosen =
        match selection with
        | `First_fit -> (
            match List.sort (fun a b -> compare a.b_id b.b_id) candidates with
            | c :: _ -> Some c
            | [] -> None)
        | `Min_mux -> (
            match
              List.sort
                (fun a b -> compare (added_cost a srcs, a.b_id) (added_cost b srcs, b.b_id))
                candidates
            with
            | c :: _ -> Some c
            | [] -> None)
      in
      match chosen with
      | Some inst -> commit inst r srcs
      | None ->
          let inst =
            {
              b_id = !next_id;
              b_cls = r.cls;
              b_ops = [];
              b_inputs = [||];
              b_arity = 0;
            }
          in
          incr next_id;
          instances := !instances @ [ inst ];
          commit inst r srcs)
    ops;
  let instances =
    List.map
      (fun b -> { fu_id = b.b_id; fu_cls = b.b_cls; ops = List.rev b.b_ops })
      !instances
  in
  { instances; op_units = make_lookup instances }

let n_units t = List.length t.instances

let units_by_class t =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun inst ->
      let cur = try Hashtbl.find tally inst.fu_cls with Not_found -> 0 in
      Hashtbl.replace tally inst.fu_cls (cur + 1))
    t.instances;
  Hashtbl.fold (fun cls k acc -> (cls, k) :: acc) tally [] |> List.sort compare

let mux_inputs cs t =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let table = storage_table cs in
  List.fold_left
    (fun acc inst ->
      (* distinct sources per port over all ops bound to the unit *)
      let ports : (int, source list) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun r ->
          let g = Cfg.dfg cfg r.bid in
          List.iteri
            (fun pos a ->
              let src = source_of_with_table cs table r.bid a in
              let have = try Hashtbl.find ports pos with Not_found -> [] in
              if not (List.mem src have) then Hashtbl.replace ports pos (src :: have))
            (Dfg.args g r.nid))
        inst.ops;
      Hashtbl.fold (fun _ srcs acc -> acc + max 0 (List.length srcs - 1)) ports acc)
    0 t.instances

let pp ppf t =
  List.iter
    (fun inst ->
      Format.fprintf ppf "FU%d (%s): %s@." inst.fu_id
        (Op.fu_class_to_string inst.fu_cls)
        (String.concat ", "
           (List.map
              (fun r -> Printf.sprintf "b%d.%%%d@s%d" r.bid r.nid r.step)
              inst.ops)))
    t.instances
