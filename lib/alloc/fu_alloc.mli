(** Functional-unit allocation: grouping step-occupying operations onto
    shared functional units.

    Two operations can share a unit iff the unit class can execute both
    and they never execute simultaneously — different control steps, or
    different basic blocks (blocks are mutually exclusive in time).

    Two technique families from section 3.2 of the paper:
    - {!by_clique} — global: clique partitioning of the compatibility
      graph (Fig 7);
    - {!greedy} — iterative/constructive: operations are assigned in
      control-step order; with [`Min_mux] selection each op goes to the
      compatible free unit whose input connections grow the least
      (Fig 6's "a2 was assigned to adder2 since the increase in
      multiplexing cost was zero"); with [`First_fit] it goes to the
      first free unit, ignoring interconnect. *)

open Hls_cdfg

type op_ref = {
  bid : Cfg.bid;
  nid : Dfg.nid;
  cls : Op.fu_class;
  step : int;  (** control step within the block *)
}

(** Where an operand comes from, for interconnect costing. Functional
    units read from registers and constants (values always latch between
    steps); a free chain's combinational output is a distinct wiring
    source. *)
type source =
  | From_var of string  (** a variable's register *)
  | From_const of int
  | From_temp of Cfg.bid * Dfg.nid  (** temp register of a producing value *)
  | From_wire of Cfg.bid * Dfg.nid  (** output of a free (wiring) node *)

type instance = { fu_id : int; fu_cls : Op.fu_class; ops : op_ref list }

type t = {
  instances : instance list;
  op_units : (Cfg.bid * Dfg.nid, int) Hashtbl.t;
      (** op → unit id, as data (not a closure) so an allocation can be
          marshalled into the persistent design cache; query it through
          {!of_op} *)
}

val of_op : t -> Cfg.bid * Dfg.nid -> int
(** Unit id the operation was allocated to. Raises [Invalid_argument]
    for an operation outside the allocation. *)

val collect : Hls_sched.Cfg_sched.t -> op_ref list
(** All step-occupying operations of the scheduled program, in (block,
    step, node) order. *)

val by_clique : Hls_sched.Cfg_sched.t -> t
(** One clique partition per functional-unit class. *)

val greedy : ?selection:[ `Min_mux | `First_fit ] -> Hls_sched.Cfg_sched.t -> t
(** Constructive allocation in step order (default [`Min_mux]). *)

val n_units : t -> int
val units_by_class : t -> (Op.fu_class * int) list

val source_of : Hls_sched.Cfg_sched.t -> Cfg.bid -> Dfg.nid -> source
(** Storage source feeding an operand (resolves lifetime classification). *)

val storage_table :
  Hls_sched.Cfg_sched.t -> (Cfg.bid * Dfg.nid, Lifetime.storage) Hashtbl.t
(** Lifetime classification of every stored value of the design (shared
    by interconnect allocation and datapath construction). *)

val mux_inputs : Hls_sched.Cfg_sched.t -> t -> int
(** Total extra multiplexer inputs implied by the unit binding: for every
    unit input port, [max 0 (distinct sources - 1)] — the cost greedy
    [`Min_mux] minimizes. *)

val pp : Format.formatter -> t -> unit
