(* Super-node clique merging. Each group keeps the set of original nodes
   it contains; two groups are compatible iff all cross pairs are.

   The optimized implementation keeps group-level compatibility as
   Bytes-backed bitsets (adjacency matrix over group slots) and a matrix
   of common-neighbor scores that is updated incrementally on each
   merge, instead of re-deriving both from the member lists with nested
   List.for_all scans. Merge choices (including tie-breaks) replicate
   the reference implementation exactly: candidate pairs are visited in
   the same order — most recently merged group first, then remaining
   groups by age — and a pair only displaces the incumbent best on a
   strictly greater score. *)

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

let bit_clear b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) land lnot (1 lsl (i land 7))))

let popcount_table =
  lazy
    (let t = Bytes.make 256 '\000' in
     for i = 0 to 255 do
       let rec bits x = if x = 0 then 0 else (x land 1) + bits (x lsr 1) in
       Bytes.set t i (Char.chr (bits i))
     done;
     t)

let popcount_and a b =
  let t = Lazy.force popcount_table in
  let acc = ref 0 in
  for i = 0 to Bytes.length a - 1 do
    acc :=
      !acc
      + Char.code (Bytes.get t (Char.code (Bytes.get a i) land Char.code (Bytes.get b i)))
  done;
  !acc

let partition ~n ~compatible =
  if n = 0 then []
  else begin
    let bytes = (n + 7) / 8 in
    (* slot g is alive iff it appears in [order]; a merge folds the later
       slot into the earlier one *)
    let members = Array.init n (fun i -> [ i ]) in
    let adj = Array.init n (fun _ -> Bytes.make bytes '\000') in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if compatible i j then begin
          bit_set adj.(i) j;
          bit_set adj.(j) i
        end
      done
    done;
    (* score.(i*n+j): common compatible neighbors of groups i and j.
       adj excludes self-bits, so the AND automatically excludes both
       endpoints. *)
    let score = Array.make (n * n) 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let s = popcount_and adj.(i) adj.(j) in
        score.((i * n) + j) <- s;
        score.((j * n) + i) <- s
      done
    done;
    let order = ref (List.init n (fun i -> i)) in
    let find_best () =
      let best = ref None in
      let rec pairs = function
        | [] -> ()
        | ga :: rest ->
            List.iter
              (fun gb ->
                if bit_get adj.(ga) gb then begin
                  let s = score.((ga * n) + gb) in
                  match !best with
                  | Some (s', _, _) when s' >= s -> ()
                  | _ -> best := Some (s, ga, gb)
                end)
              rest;
            pairs rest
      in
      pairs !order;
      !best
    in
    let alive = Array.make n true in
    let merge ga gb =
      (* merged adjacency: compatible with both halves *)
      let merged = Bytes.make bytes '\000' in
      for i = 0 to bytes - 1 do
        Bytes.set merged i
          (Char.chr (Char.code (Bytes.get adj.(ga) i) land Char.code (Bytes.get adj.(gb) i)))
      done;
      bit_clear merged ga;
      bit_clear merged gb;
      (* incremental score update for surviving pairs: ga and gb stop
         being anyone's neighbor; the merged group (slot ga) starts being
         one where [merged] says so *)
      alive.(gb) <- false;
      let survivors = List.filter (fun g -> g <> ga && g <> gb) !order in
      let rec update = function
        | [] -> ()
        | x :: rest ->
            List.iter
              (fun y ->
                let had_a = bit_get adj.(x) ga && bit_get adj.(y) ga in
                let had_b = bit_get adj.(x) gb && bit_get adj.(y) gb in
                let has_m = bit_get merged x && bit_get merged y in
                let d = (if has_m then 1 else 0) - (if had_a then 1 else 0) - (if had_b then 1 else 0) in
                if d <> 0 then begin
                  score.((x * n) + y) <- score.((x * n) + y) + d;
                  score.((y * n) + x) <- score.((y * n) + x) + d
                end)
              rest;
            update rest
      in
      update survivors;
      (* rewrite adjacency bits for the merged slot *)
      List.iter
        (fun h ->
          bit_clear adj.(h) gb;
          if bit_get merged h then bit_set adj.(h) ga else bit_clear adj.(h) ga)
        survivors;
      Bytes.blit merged 0 adj.(ga) 0 bytes;
      members.(ga) <- members.(ga) @ members.(gb);
      (* fresh scores for pairs involving the merged group *)
      List.iter
        (fun h ->
          let s = popcount_and adj.(ga) adj.(h) in
          score.((ga * n) + h) <- s;
          score.((h * n) + ga) <- s)
        survivors;
      order := ga :: survivors
    in
    let rec loop () =
      match find_best () with
      | None -> ()
      | Some (_, ga, gb) ->
          merge ga gb;
          Hls_obs.Trace.incr "alloc/clique_merges";
          loop ()
    in
    loop ();
    List.filter_map
      (fun g -> if alive.(g) then Some (List.sort compare members.(g)) else None)
      (List.init n (fun i -> i))
    |> List.sort (fun a b ->
           match (a, b) with x :: _, y :: _ -> compare x y | _, _ -> 0)
  end

(* The seed implementation — groups as lists of lists, compatibility and
   common-neighbor counts recomputed from member pairs on every probe.
   Kept as the oracle for differential tests and benchmark baselines. *)
let partition_reference ~n ~compatible =
  let groups = ref (List.init n (fun i -> [ i ])) in
  let group_compatible ga gb =
    List.for_all (fun a -> List.for_all (fun b -> compatible a b) gb) ga
  in
  let common_neighbors ga gb all =
    List.length
      (List.filter
         (fun gc -> gc != ga && gc != gb && group_compatible ga gc && group_compatible gb gc)
         all)
  in
  let rec loop () =
    let all = !groups in
    (* best compatible pair by common-neighbor count *)
    let best = ref None in
    let rec pairs = function
      | [] -> ()
      | ga :: rest ->
          List.iter
            (fun gb ->
              if group_compatible ga gb then begin
                let score = common_neighbors ga gb all in
                match !best with
                | Some (s, _, _) when s >= score -> ()
                | _ -> best := Some (score, ga, gb)
              end)
            rest;
          pairs rest
    in
    pairs all;
    match !best with
    | None -> ()
    | Some (_, ga, gb) ->
        groups :=
          List.sort compare (ga @ gb)
          :: List.filter (fun g -> g != ga && g != gb) all;
        loop ()
  in
  loop ();
  List.map (List.sort compare) !groups
  |> List.sort (fun a b ->
         match (a, b) with x :: _, y :: _ -> compare x y | _, _ -> 0)

let max_clique_lower_bound ~n ~compatible =
  (* greedy max clique in the complement (incompatibility) graph *)
  let incompatible a b = not (compatible a b) in
  let best = ref 0 in
  for seed = 0 to n - 1 do
    let clique = ref [ seed ] in
    for v = 0 to n - 1 do
      if v <> seed && List.for_all (fun u -> incompatible u v) !clique then
        clique := v :: !clique
    done;
    best := max !best (List.length !clique)
  done;
  if n = 0 then 0 else !best
