open Hls_util

(* Candidate units: per class, as many instances as there are operations
   of that class (the trivial upper bound); symmetry is broken by
   requiring op i to use only units 0..i of its class, a standard
   reduction. *)
let allocate ?(op_cap = 14) cs =
  let ops = Array.of_list (Fu_alloc.collect cs) in
  let n = Array.length ops in
  if n > op_cap then None
  else begin
    let classes =
      Array.to_list ops
      |> List.map (fun (r : Fu_alloc.op_ref) -> r.Fu_alloc.cls)
      |> List.sort_uniq compare
    in
    let prog = Binprog.create () in
    (* unit identity: (class, index) *)
    let unit_vars = Hashtbl.create 16 in
    let used_var cls k =
      match Hashtbl.find_opt unit_vars (cls, k) with
      | Some v -> v
      | None ->
          let v =
            Binprog.new_var prog
              (Printf.sprintf "used_%s_%d" (Hls_cdfg.Op.fu_class_to_string cls) k)
          in
          Hashtbl.add unit_vars (cls, k) v;
          v
    in
    let ops_of_class cls =
      List.filter
        (fun i -> ops.(i).Fu_alloc.cls = cls)
        (List.init n Fun.id)
    in
    (* x.(i) = (unit index, var) list *)
    let x = Array.make n [] in
    List.iter
      (fun cls ->
        let members = ops_of_class cls in
        List.iteri
          (fun rank i ->
            x.(i) <-
              List.init (rank + 1) (fun k ->
                  (k, Binprog.new_var prog (Printf.sprintf "y%d_u%d" i k))))
          members)
      classes;
    Array.iteri (fun _ vars -> if vars <> [] then Binprog.add_group prog (List.map snd vars)) x;
    (* conflicts: same (block, step) ops cannot share a unit *)
    List.iter
      (fun cls ->
        let members = ops_of_class cls in
        List.iter
          (fun i ->
            List.iter
              (fun j ->
                if i < j
                   && ops.(i).Fu_alloc.bid = ops.(j).Fu_alloc.bid
                   && ops.(i).Fu_alloc.step = ops.(j).Fu_alloc.step
                then
                  List.iter
                    (fun (ki, vi) ->
                      List.iter
                        (fun (kj, vj) ->
                          if ki = kj then Binprog.forbid_pair prog vi vj)
                        x.(j))
                    x.(i))
              members)
          members)
      classes;
    (* using a unit sets its indicator *)
    Array.iteri
      (fun i vars ->
        List.iter
          (fun (k, v) -> Binprog.implies prog v (used_var ops.(i).Fu_alloc.cls k))
          vars)
      x;
    let objective =
      Hashtbl.fold (fun _ v acc -> (v, 1) :: acc) unit_vars []
    in
    match Binprog.solve ~objective prog with
    | None -> None
    | Some value ->
        (* materialize instances *)
        let table = Hashtbl.create 16 in
        Array.iteri
          (fun i vars ->
            List.iter
              (fun (k, v) ->
                if value v then begin
                  let key = (ops.(i).Fu_alloc.cls, k) in
                  let cur = try Hashtbl.find table key with Not_found -> [] in
                  Hashtbl.replace table key (ops.(i) :: cur)
                end)
              vars)
          x;
        let instances =
          Hashtbl.fold (fun (cls, _) members acc -> (cls, List.rev members) :: acc) table []
          |> List.sort compare
          |> List.mapi (fun fu_id (fu_cls, ops) -> { Fu_alloc.fu_id; fu_cls; ops })
        in
        let lookup = Hashtbl.create 32 in
        List.iter
          (fun (inst : Fu_alloc.instance) ->
            List.iter
              (fun (r : Fu_alloc.op_ref) ->
                Hashtbl.replace lookup (r.Fu_alloc.bid, r.Fu_alloc.nid) inst.Fu_alloc.fu_id)
              inst.Fu_alloc.ops)
          instances;
        Some { Fu_alloc.instances; op_units = lookup }
  end

let min_units ?op_cap cs =
  match allocate ?op_cap cs with
  | Some t -> Some (Fu_alloc.n_units t)
  | None -> None
