(** Clique partitioning of a compatibility graph (Tseng & Siewiorek,
    Fig 7).

    Elements that can share hardware (operations on functional units,
    values in registers, transfers on buses) are nodes; compatibility is
    an edge. Covering the graph with a minimum number of cliques
    minimizes the hardware; since minimum clique cover is NP-hard, the
    classic greedy heuristic is used: repeatedly merge the pair of
    (super-)nodes with the most common compatible neighbors, until no
    compatible pair remains. *)

val partition : n:int -> compatible:(int -> int -> bool) -> int list list
(** Groups of mutually compatible elements covering [0 .. n-1]; each
    group's members are ascending, groups ordered by smallest member.
    Every pair within a group satisfies [compatible] (the predicate must
    be symmetric and irreflexive-agnostic; self-pairs are never asked).

    Group compatibility is tracked on a [Bytes]-backed bitset adjacency
    matrix with incrementally maintained common-neighbor scores, so each
    merge round costs O(groups²) bit probes instead of re-walking member
    lists. [compatible] is consulted exactly once per unordered pair. *)

val partition_reference : n:int -> compatible:(int -> int -> bool) -> int list list
(** The seed list-of-lists implementation. Produces exactly the same
    partition as {!partition} (merge and tie-break order replicated);
    kept as the oracle for differential tests and benchmark baselines. *)

val max_clique_lower_bound : n:int -> compatible:(int -> int -> bool) -> int
(** Size of the largest {e incompatibility} clique found greedily — a
    quick lower bound on the number of groups any partition needs
    (used by tests as a sanity check, not exact). *)
