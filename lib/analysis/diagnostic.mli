(** Structured diagnostics shared by every IR-level checker.

    The synthesis pipeline (compile → transform → schedule → allocate →
    bind → control synthesis) is a chain of refinements; each stage
    assumes invariants the previous stage must establish. The checkers
    in this library verify those invariants and report violations as
    values of {!t} rather than dying on the first [failwith]: a
    diagnostic names the violated rule (a stable code such as
    ["SCHED001"]), the pipeline stage, the entity at fault and a human
    message, and serializes to JSON via {!Hls_util.Json} for
    machine-readable consumption (feedback-guided exploration, CI). *)

type severity = Info | Warning | Error

(** The IR level a rule belongs to; one checker per stage. *)
type stage = Cdfg | Sched | Alloc | Rtl | Ctrl

(** What the diagnostic points at. Block/node/step identifiers follow
    the conventions of {!Hls_cdfg.Cfg} and {!Hls_sched.Schedule}
    (blocks and nodes 0-based, control steps 1-based). *)
type entity =
  | Design  (** the design as a whole *)
  | Block of int  (** CFG basic block *)
  | Node of int * int  (** (block, DFG node) *)
  | Step of int * int  (** (block, control step) *)
  | Fu of int  (** functional-unit instance *)
  | Register of string  (** physical register *)
  | State of int  (** FSM state *)
  | Transition of int * int  (** FSM transition (from, to) *)
  | Field of string  (** microcode control field *)

type t = {
  code : string;  (** stable rule code, e.g. ["ALLOC003"] *)
  severity : severity;
  stage : stage;
  entity : entity;
  message : string;
}

val diag :
  severity -> stage -> code:string -> entity -> ('a, unit, string, t) format4 -> 'a
(** [diag sev stage ~code entity fmt ...] builds a diagnostic with a
    printf-formatted message. *)

val error : stage -> code:string -> entity -> ('a, unit, string, t) format4 -> 'a
val warning : stage -> code:string -> entity -> ('a, unit, string, t) format4 -> 'a
val info : stage -> code:string -> entity -> ('a, unit, string, t) format4 -> 'a

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val stage_to_string : stage -> string
val entity_to_string : entity -> string

val meets : floor:severity -> t -> bool
(** Whether the diagnostic's severity is at or above the floor. *)

val filter : floor:severity -> t list -> t list
val errors : t list -> t list

val sort : t list -> t list
(** Stable order for reporting: pipeline stage, then descending
    severity, then rule code, then entity. *)

val summary : t list -> string
(** E.g. ["2 errors, 1 warning"]; ["clean"] when empty. *)

val to_string : t -> string
(** One line: [error\[SCHED001\] block 1 step 2: ...]. *)

val to_json : t -> Hls_util.Json.t
(** Object with [code], [severity], [stage], [entity], [message]
    fields; [entity] is itself an object with a [kind] field. *)

val pp : Format.formatter -> t -> unit
