(** Controller checks: FSM structure, state encoding, next-state logic
    and microcode fields.

    The entry points take the controller in decomposed form (state and
    transition lists, code/next functions) so tests can inject known
    defects and assert the exact rule that fires; {!check_fsm_t} and
    {!check_synth} are the convenience wrappers over the real types.

    Rules:
    - [CTRL001] (warning) — an FSM state is unreachable from the entry;
    - [CTRL002] (error) — conflicting transitions leave one state (two
      unconditional, unconditional mixed with conditional, two guards
      on the same condition and polarity to different targets, or
      guards on two different condition nodes);
    - [CTRL003] (error) — a state has no outgoing transition (the FSM
      wedges there);
    - [CTRL004] (error) — a branching state covers only one polarity of
      its condition (incomplete transition function);
    - [CTRL005] (error) — a transition endpoint is not a state of the
      machine;
    - [CTRL006] (error) — two states share an encoded state code;
    - [CTRL007] (error) — the synthesized next-state logic disagrees
      with the FSM's transition relation;
    - [CTRL008] (error) — a microcode word's field value does not fit
      the field, or a word has the wrong field count;
    - [CTRL009] (info) — a microcode field holds the same value in
      every word (dead control field). *)

open Hls_cdfg

val rules : (string * string) list

val check_fsm :
  states:Hls_ctrl.Fsm.state list ->
  transitions:Hls_ctrl.Fsm.transition list ->
  entry:int ->
  Diagnostic.t list
(** [CTRL001]–[CTRL005]. *)

val check_fsm_t : Hls_ctrl.Fsm.t -> Diagnostic.t list

val check_encoding :
  states:Hls_ctrl.Fsm.state list -> code:(int -> int) -> Diagnostic.t list
(** [CTRL006]. [code] maps a state id to its encoded value
    ({!Hls_ctrl.Ctrl_synth.state_code}). *)

val check_next :
  states:Hls_ctrl.Fsm.state list ->
  transitions:Hls_ctrl.Fsm.transition list ->
  next:(state:int -> conds:((Cfg.bid * Dfg.nid) * bool) list -> int) ->
  Diagnostic.t list
(** [CTRL007]. Replays every transition (both polarities of every
    branch) through [next] ({!Hls_ctrl.Ctrl_synth.next_state}) and
    compares against the transition relation. *)

val check_synth : Hls_ctrl.Ctrl_synth.t -> Hls_ctrl.Fsm.t -> Diagnostic.t list
(** [CTRL006]–[CTRL007] on a synthesized controller. *)

val check_microcode :
  fields:Hls_ctrl.Microcode.field list -> words:int list array -> Diagnostic.t list
(** [CTRL008]–[CTRL009] on a microcode image (one word per state, one
    value per field, as {!Hls_ctrl.Microcode.make} takes them). *)
