open Hls_cdfg
open Hls_sched
open Diagnostic

let rules =
  [
    ("SCHED001", "operation starts no later than an operand's producing step");
    ("SCHED002", "control step exceeds the functional-unit limits");
    ("SCHED003", "intermediate control step is empty");
  ]

let check_block ?(limits = Limits.Unlimited) ~bid sched =
  let g = Schedule.dfg sched in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  Dfg.iter
    (fun id node ->
      if Dfg.occupies_step g id then begin
        let s = Schedule.step_of sched id in
        List.iter
          (fun a ->
            let p = Schedule.producer_step sched a in
            if s < p + 1 then
              add
                (error Sched ~code:"SCHED001" (Node (bid, id))
                   "scheduled in step %d but operand %%%d is produced in step %d" s a p))
          node.Dfg.args
      end)
    g;
  let writes_at s =
    List.exists (fun (_, wnid) -> Schedule.write_step sched wnid = s) (Dfg.writes g)
  in
  for s = 1 to Schedule.n_steps sched do
    let counts = Schedule.usage sched s in
    if not (Limits.within limits ~counts) then
      add
        (error Sched ~code:"SCHED002" (Step (bid, s))
           "resource usage {%s} exceeds limits %s"
           (String.concat ", "
              (List.map
                 (fun (cls, k) -> Printf.sprintf "%s:%d" (Op.fu_class_to_string cls) k)
                 counts))
           (Limits.to_string limits));
    if s < Schedule.n_steps sched && Schedule.ops_in_step sched s = [] && not (writes_at s)
    then
      add
        (warning Sched ~code:"SCHED003" (Step (bid, s))
           "step holds no operation and latches no value")
  done;
  List.rev !ds

let check ?(limits = Limits.Unlimited) cs =
  List.concat_map
    (fun bid -> check_block ~limits ~bid (Cfg_sched.block_schedule cs bid))
    (Cfg.block_ids (Cfg_sched.cfg cs))
