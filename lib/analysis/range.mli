(** Forward abstract interpretation over the CDFG: per-node and
    per-variable value ranges on an interval ⊓ known-bits lattice.

    The engine mirrors the concrete semantics shared by [Cfg_sim] and the
    RTL simulator: reads observe block-entry variable values, writes
    commit at block exit (later writes win), branches test the condition
    value against zero, and every operator follows [Op.eval]'s exact
    [Fixedpt] wrapping behavior. Joins happen at CFG merges; loop heads
    widen with {!Hls_util.Interval.widen} after a few visits so fixpoints
    terminate; branch edges are refined with the condition's comparison.

    The derived [bits_needed] projection is sound: every value a node can
    take at runtime is representable in that many signed bits. It feeds
    the [--narrow] datapath option, the RANGE/WIDTH lint rules and the
    DSE area lower bounds. *)

(** Abstract value: a signed interval on raw fixed-point patterns plus
    masks of bits known to be zero / known to be one (over the low
    [width] bits of the pattern). *)
type aval = {
  width : int;  (** declared bit width of the producing type *)
  iv : Hls_util.Interval.t;  (** value interval, endpoints inclusive *)
  zeros : int;  (** mask of pattern bits known to be 0 *)
  ones : int;  (** mask of pattern bits known to be 1 *)
}

val top_of_ty : Hls_lang.Ast.ty -> aval
(** No information beyond the declared type: the full representable range
    ([[-1, 1]] for booleans, whose comparison results are unwrapped). *)

val singleton : Hls_lang.Ast.ty -> int -> aval
(** The abstract value of one concrete (already wrapped) pattern. *)

val join : aval -> aval -> aval
(** Least upper bound: interval hull, intersection of known bits. *)

val is_singleton : aval -> int option

val bits_needed : aval -> int
(** Smallest signed bit count representing every value in the interval
    (at least 1, at most 63). *)

val pp_aval : Format.formatter -> aval -> unit

(** {2 Whole-CFG analysis} *)

type t  (** analysis result: facts for every reachable node and block *)

val analyze :
  ?ports:(string * [ `In | `Out ] * Hls_lang.Ast.ty) list -> Hls_cdfg.Cfg.t -> t
(** Run the dataflow analysis to fixpoint. When [ports] is given, input
    ports start at their full declared range and every other variable
    starts at zero (the simulators' initial store); without it every
    variable conservatively starts unconstrained. Counts work under
    [range/*] counters inside a [range] trace span. *)

val node_range : t -> bid:int -> nid:int -> aval option
(** Fact for one dataflow node; [None] when the block is unreachable. *)

val entry_env : t -> bid:int -> (string * aval) list option
(** Variable values at block entry, sorted by name; [None] when the
    block is unreachable. *)

val node_bits : t -> bid:int -> nid:int -> int
(** Inferred storage width for the node's value: [bits_needed] of its
    fact, clamped to the declared type width (never wider, and the
    declared width when no fact is available). *)

val dead_edges : t -> (int * int * bool) list
(** Branch edges proven never taken, as [(block, untaken-target,
    condition-constant)] — the condition is always [true]/[false]. *)

val reachable : t -> bid:int -> bool

val var_widths : t -> (string * int * int) list
(** Per variable [(name, declared width, inferred width)], sorted by
    name. The inferred width covers every boundary and written value the
    analysis saw, clamped to the declared width. *)
