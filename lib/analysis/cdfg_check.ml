open Hls_cdfg
open Diagnostic

let rules =
  [
    ("CDFG001", "terminator targets a block outside the graph");
    ("CDFG002", "branch condition is not a bool-typed node of its block");
    ("CDFG003", "block is unreachable from the entry");
    ("CDFG004", "DFG arc is dangling or breaks the topological-id invariant");
    ("CDFG005", "node argument count does not match its operator's arity");
    ("CDFG006", "operand/result types are inconsistent");
  ]

let check cfg =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let n = Cfg.n_blocks cfg in
  let valid_bid b = b >= 0 && b < n in
  (* control edges and branch conditions *)
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let target t =
        if not (valid_bid t) then
          add (error Cdfg ~code:"CDFG001" (Block bid) "terminator targets missing block %d" t)
      in
      (match Cfg.term cfg bid with
      | Cfg.Goto t -> target t
      | Cfg.Branch (c, t1, t2) ->
          target t1;
          target t2;
          if c < 0 || c >= Dfg.n_nodes g then
            add
              (error Cdfg ~code:"CDFG002" (Block bid)
                 "branch condition %%%d is not a node of the block" c)
          else if Dfg.ty g c <> Hls_lang.Ast.Tbool then
            add
              (error Cdfg ~code:"CDFG002" (Node (bid, c))
                 "branch condition has type %s, expected bool"
                 (Hls_lang.Ast.ty_to_string (Dfg.ty g c)))
      | Cfg.Halt -> ());
      (* per-node structural and type rules *)
      Dfg.iter
        (fun id node ->
          let args = node.Dfg.args in
          List.iter
            (fun a ->
              if a < 0 || a >= id then
                add
                  (error Cdfg ~code:"CDFG004" (Node (bid, id))
                     "argument %%%d is not an earlier node of the block" a))
            args;
          let want = Op.arity node.Dfg.op in
          if List.length args <> want then
            add
              (error Cdfg ~code:"CDFG005" (Node (bid, id))
                 "%s takes %d argument%s, got %d" (Op.to_string node.Dfg.op) want
                 (if want = 1 then "" else "s")
                 (List.length args));
          let args_ok = List.for_all (fun a -> a >= 0 && a < id) args in
          let type_err fmt =
            Printf.ksprintf
              (fun msg -> add (error Cdfg ~code:"CDFG006" (Node (bid, id)) "%s" msg))
              fmt
          in
          match node.Dfg.op with
          | Op.Cmp _ | Op.Zdetect ->
              if node.Dfg.ty <> Hls_lang.Ast.Tbool then
                type_err "%s must produce bool, produces %s" (Op.to_string node.Dfg.op)
                  (Hls_lang.Ast.ty_to_string node.Dfg.ty)
          | Op.Mux when args_ok -> (
              match args with
              | [ c; a; b ] ->
                  if Dfg.ty g c <> Hls_lang.Ast.Tbool then
                    type_err "mux condition has type %s, expected bool"
                      (Hls_lang.Ast.ty_to_string (Dfg.ty g c));
                  List.iter
                    (fun arm ->
                      if Dfg.ty g arm <> node.Dfg.ty then
                        type_err "mux arm %%%d has type %s, result has %s" arm
                          (Hls_lang.Ast.ty_to_string (Dfg.ty g arm))
                          (Hls_lang.Ast.ty_to_string node.Dfg.ty))
                    [ a; b ]
              | _ -> ())
          | _ -> ())
        g)
    (Cfg.block_ids cfg);
  (* reachability, over the in-range part of the successor relation *)
  let entry = Cfg.entry cfg in
  if valid_bid entry then begin
    let succs =
      Array.init n (fun b -> List.filter valid_bid (Cfg.succs cfg b))
    in
    let reach = Graph_algo.reachable ~succs ~entry in
    List.iter
      (fun bid ->
        if not reach.(bid) then
          add
            (warning Cdfg ~code:"CDFG003" (Block bid) "block %s is unreachable from the entry"
               (Cfg.block cfg bid).Cfg.label))
      (Cfg.block_ids cfg)
  end
  else add (error Cdfg ~code:"CDFG001" Design "entry block %d is outside the graph" entry);
  List.rev !ds
