(** CDFG well-formedness: the invariants the scheduler assumes of the
    compiled (and transformed) control/data-flow graph.

    Rules:
    - [CDFG001] (error) — a terminator targets a block id outside the
      graph (dangling control edge);
    - [CDFG002] (error) — a branch condition is not a bool-typed node
      of its own block's DFG;
    - [CDFG003] (warning) — a block is unreachable from the entry;
    - [CDFG004] (error) — a DFG arc is dangling or violates the
      topological-id invariant (an argument id is not smaller than its
      consumer's id);
    - [CDFG005] (error) — a node's argument count does not match its
      operator's arity;
    - [CDFG006] (error) — operand/result types are inconsistent:
      comparisons and zero-detects must produce bool, a mux condition
      must be bool and its arms must agree with the result type. *)

val rules : (string * string) list
(** [(code, one-line description)] for every rule above. *)

val check : Hls_cdfg.Cfg.t -> Diagnostic.t list
