open Hls_util
open Hls_cdfg
module D = Diagnostic
module I = Interval

let rules =
  [
    ("RANGE001", D.Warning, "comparison outcome is provably constant");
    ("RANGE002", D.Warning, "branch edge can never be taken");
    ("RANGE003", D.Warning, "computed value written to a variable is provably constant");
    ("RANGE004", D.Info, "divisor range contains zero; the division can trap");
    ("WIDTH001", D.Warning, "exact result always exceeds the declared format (certain wrap)");
    ("WIDTH002", D.Info, "variable fits in at most half its declared width");
    ("WIDTH003", D.Warning, "constant shift amount is as large as the operand width");
  ]

(* Exact mathematical result interval for the wrap-prone operators, or
   [None] when we cannot bound it without native-int overflow. *)
let exact_iv fmt op (args : Range.aval list) =
  let f = fmt.Fixedpt.frac_bits in
  match (op, args) with
  | Op.Add, [ a; b ] -> Some (I.add a.Range.iv b.Range.iv)
  | Op.Sub, [ a; b ] -> Some (I.add a.Range.iv (I.neg b.Range.iv))
  | Op.Incr, [ a ] ->
      let one = Fixedpt.of_int fmt 1 in
      Some (I.add a.Range.iv (I.make one one))
  | Op.Decr, [ a ] ->
      let one = Fixedpt.of_int fmt 1 in
      Some (I.add a.Range.iv (I.make (-one) (-one)))
  | Op.Neg, [ a ] -> Some (I.neg a.Range.iv)
  | Op.Mul, [ a; b ] ->
      if Range.bits_needed a + Range.bits_needed b <= 62 then
        let p = I.mul a.Range.iv b.Range.iv in
        Some (I.make (p.I.lo asr f) (p.I.hi asr f))
      else None
  | _ -> None

let iv_str (iv : I.t) = Printf.sprintf "[%d,%d]" iv.I.lo iv.I.hi

let check ?facts ?ports cfg =
  let facts = match facts with Some f -> f | None -> Range.analyze ?ports cfg in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* RANGE002: dead branch edges *)
  List.iter
    (fun (src, dst, value) ->
      emit
        (D.warning D.Cdfg ~code:"RANGE002" (D.Block src)
           "branch to block %d is never taken (condition is always %s)" dst
           (if value then "true" else "false")))
    (Range.dead_edges facts);
  (* per-node rules *)
  List.iter
    (fun bid ->
      if Range.reachable facts ~bid then
        let g = Cfg.dfg cfg bid in
        let aval nid = Range.node_range facts ~bid ~nid in
        Dfg.iter
          (fun nid node ->
            let args = List.filter_map aval node.Dfg.args in
            let have_args = List.length args = List.length node.Dfg.args in
            let fmt = Op.fmt_of node.Dfg.ty in
            let w = Fixedpt.bits fmt in
            (match node.Dfg.op with
            | Op.Cmp _ -> (
                match aval nid with
                | Some a when Range.is_singleton a <> None ->
                    emit
                      (D.warning D.Cdfg ~code:"RANGE001" (D.Node (bid, nid))
                         "comparison %s is always %s" (Op.to_string node.Dfg.op)
                         (if Range.is_singleton a = Some 0 then "false" else "true"))
                | _ -> ())
            | Op.Write v -> (
                match node.Dfg.args with
                | [ a ] when Dfg.occupies_step g a -> (
                    match aval a with
                    | Some av -> (
                        match Range.is_singleton av with
                        | Some k ->
                            emit
                              (D.warning D.Cdfg ~code:"RANGE003" (D.Node (bid, nid))
                                 "%s is always assigned the constant %d computed by %s"
                                 v k
                                 (Op.to_string (Dfg.op g a)))
                        | None -> ())
                    | None -> ())
                | _ -> ())
            | Op.Div | Op.Mod -> (
                match node.Dfg.args with
                | [ _; b ] -> (
                    match aval b with
                    | Some bv
                      when I.contains bv.Range.iv 0
                           && bv.Range.ones = 0
                           && not (bv.Range.iv.I.lo = 0 && bv.Range.iv.I.hi = 0) ->
                        emit
                          (D.info D.Cdfg ~code:"RANGE004" (D.Node (bid, nid))
                             "divisor range %s contains zero; %s can trap"
                             (iv_str bv.Range.iv)
                             (Op.to_string node.Dfg.op))
                    | _ -> ())
                | _ -> ())
            | Op.Shl | Op.Shr -> (
                match node.Dfg.args with
                | [ _; amt ] -> (
                    match Dfg.op g amt with
                    | Op.Const k when k >= w ->
                        emit
                          (D.warning D.Cdfg ~code:"WIDTH003" (D.Node (bid, nid))
                             "shift by %d on a %d-bit value discards every data bit" k
                             w)
                    | _ -> ())
                | _ -> ())
            | _ -> ());
            (* WIDTH001: certain wrap — the exact result interval misses the
               representable range entirely *)
            if have_args then
              match exact_iv fmt node.Dfg.op args with
              | Some exact when I.intersect exact (I.of_width w) = None ->
                  emit
                    (D.warning D.Cdfg ~code:"WIDTH001" (D.Node (bid, nid))
                       "%s result %s never fits the declared %d-bit format: every \
                        evaluation wraps"
                       (Op.to_string node.Dfg.op) (iv_str exact) w)
              | _ -> ())
          g)
    (Cfg.block_ids cfg);
  (* WIDTH002: narrowing opportunities per variable *)
  List.iter
    (fun (v, declared, inferred) ->
      if declared > 1 && inferred * 2 <= declared then
        emit
          (D.info D.Cdfg ~code:"WIDTH002" (D.Register v)
             "variable %s fits in %d of its %d declared bits" v inferred declared))
    (Range.var_widths facts);
  D.sort !diags
