type severity = Info | Warning | Error
type stage = Cdfg | Sched | Alloc | Rtl | Ctrl

type entity =
  | Design
  | Block of int
  | Node of int * int
  | Step of int * int
  | Fu of int
  | Register of string
  | State of int
  | Transition of int * int
  | Field of string

type t = {
  code : string;
  severity : severity;
  stage : stage;
  entity : entity;
  message : string;
}

let diag severity stage ~code entity fmt =
  Printf.ksprintf (fun message -> { code; severity; stage; entity; message }) fmt

let error stage = diag Error stage
let warning stage = diag Warning stage
let info stage = diag Info stage

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let stage_rank = function Cdfg -> 0 | Sched -> 1 | Alloc -> 2 | Rtl -> 3 | Ctrl -> 4

let stage_to_string = function
  | Cdfg -> "cdfg"
  | Sched -> "sched"
  | Alloc -> "alloc"
  | Rtl -> "rtl"
  | Ctrl -> "ctrl"

let entity_to_string = function
  | Design -> "design"
  | Block b -> Printf.sprintf "block %d" b
  | Node (b, n) -> Printf.sprintf "b%d.%%%d" b n
  | Step (b, s) -> Printf.sprintf "block %d step %d" b s
  | Fu id -> Printf.sprintf "fu%d" id
  | Register r -> Printf.sprintf "register %s" r
  | State s -> Printf.sprintf "state %d" s
  | Transition (a, b) -> Printf.sprintf "transition %d->%d" a b
  | Field f -> Printf.sprintf "field %s" f

let meets ~floor d = severity_rank d.severity >= severity_rank floor
let filter ~floor ds = List.filter (meets ~floor) ds
let errors ds = List.filter (fun d -> d.severity = Error) ds

let sort ds =
  List.stable_sort
    (fun a b ->
      compare
        (stage_rank a.stage, -severity_rank a.severity, a.code, a.entity)
        (stage_rank b.stage, -severity_rank b.severity, b.code, b.entity))
    ds

let summary ds =
  let tally sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let part n what = if n = 0 then [] else [ Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") ] in
  match part (tally Error) "error" @ part (tally Warning) "warning" @ part (tally Info) "info" with
  | [] -> "clean"
  | parts -> String.concat ", " parts

let to_string d =
  Printf.sprintf "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code (entity_to_string d.entity) d.message

let entity_json e =
  let open Hls_util.Json in
  let kind k fields = Obj (("kind", Str k) :: fields) in
  match e with
  | Design -> kind "design" []
  | Block b -> kind "block" [ ("block", Num (float_of_int b)) ]
  | Node (b, n) -> kind "node" [ ("block", Num (float_of_int b)); ("node", Num (float_of_int n)) ]
  | Step (b, s) -> kind "step" [ ("block", Num (float_of_int b)); ("step", Num (float_of_int s)) ]
  | Fu id -> kind "fu" [ ("id", Num (float_of_int id)) ]
  | Register r -> kind "register" [ ("name", Str r) ]
  | State s -> kind "state" [ ("id", Num (float_of_int s)) ]
  | Transition (a, b) -> kind "transition" [ ("from", Num (float_of_int a)); ("to", Num (float_of_int b)) ]
  | Field f -> kind "field" [ ("name", Str f) ]

let to_json d =
  Hls_util.Json.Obj
    [
      ("code", Hls_util.Json.Str d.code);
      ("severity", Hls_util.Json.Str (severity_to_string d.severity));
      ("stage", Hls_util.Json.Str (stage_to_string d.stage));
      ("entity", entity_json d.entity);
      ("message", Hls_util.Json.Str d.message);
    ]

let pp ppf d = Format.pp_print_string ppf (to_string d)
