open Hls_util
open Hls_cdfg
module I = Interval
module StrMap = Map.Make (String)

type aval = { width : int; iv : I.t; zeros : int; ones : int }

let mask_of w = (1 lsl w) - 1

(* Smallest signed width representing [v]: -2^(w-1) <= v <= 2^(w-1)-1. *)
let signed_bits v =
  let rec go w =
    if w >= 63 then 63
    else if v >= -(1 lsl (w - 1)) && v <= (1 lsl (w - 1)) - 1 then w
    else go (w + 1)
  in
  go 1

let bits_needed a = max (signed_bits a.iv.I.lo) (signed_bits a.iv.I.hi)

(* Known-bits view of an interval. Only claims bits when they are certain:
   a singleton knows its full pattern; a same-sign representable interval
   knows the pattern prefix above the highest differing bit. *)
let kb_of_iv w (iv : I.t) =
  let mask = mask_of w in
  if iv.I.lo = iv.I.hi then
    let p = iv.I.lo land mask in
    (lnot p land mask, p)
  else
    let rep = I.of_width w in
    if iv.I.lo >= rep.I.lo && iv.I.hi <= rep.I.hi && iv.I.lo < 0 = (iv.I.hi < 0) then (
      let plo = iv.I.lo land mask and phi = iv.I.hi land mask in
      let x = plo lxor phi in
      let rec above m = if m <= x then above (m lsl 1) else m in
      let m = above 1 in
      let known = mask land lnot (m - 1) in
      (known land lnot plo, known land plo))
    else (0, 0)

(* Interval implied by known bits, assuming w-bit sign-extended patterns. *)
let iv_of_kb w zeros ones =
  let mask = mask_of w in
  let unk = mask land lnot (zeros lor ones) in
  let sign = 1 lsl (w - 1) in
  (* shift operators are right-associative: parenthesize the lsl *)
  let sext p = (p lsl (63 - w)) asr (63 - w) in
  let pmin = ones lor (unk land sign) and pmax = ones lor (unk land lnot sign) in
  I.make (sext pmin) (sext pmax)

(* Normalized constructor: masks clipped to the width, contradicting bit
   claims dropped (losing knowledge is always sound), interval and known
   bits each tightened from the other when the interval is representable
   (booleans carry the unwrapped comparison results -1/0/1, where the
   sign-extension reading of the masks does not apply). *)
let mk w iv zeros ones =
  let mask = mask_of w in
  let zeros = zeros land mask and ones = ones land mask in
  let conflict = zeros land ones in
  let zeros = zeros land lnot conflict and ones = ones land lnot conflict in
  let rep = I.of_width w in
  let representable = iv.I.lo >= rep.I.lo && iv.I.hi <= rep.I.hi in
  let iv =
    if representable then
      match I.intersect iv (iv_of_kb w zeros ones) with Some i -> i | None -> iv
    else iv
  in
  let z2, o2 = kb_of_iv w iv in
  let zeros = zeros lor z2 and ones = ones lor o2 in
  let conflict = zeros land ones in
  { width = w; iv; zeros = zeros land lnot conflict; ones = ones land lnot conflict }

let ty_width ty = Fixedpt.bits (Op.fmt_of ty)

let top_of_ty ty =
  match ty with
  | Hls_lang.Ast.Tbool -> mk 1 (I.make (-1) 1) 0 0
  | _ ->
      let w = ty_width ty in
      mk w (I.of_width w) 0 0

let singleton ty v = mk (ty_width ty) (I.make v v) 0 0

let is_singleton a = if a.iv.I.lo = a.iv.I.hi then Some a.iv.I.lo else None

let join a b =
  mk (max a.width b.width) (I.merge a.iv b.iv) (a.zeros land b.zeros) (a.ones land b.ones)

let pp_aval ppf a =
  let known = a.zeros lor a.ones in
  if known = 0 then Format.fprintf ppf "%a:%d" I.pp a.iv (bits_needed a)
  else Format.fprintf ppf "%a:%d bits[z=%#x o=%#x]" I.pp a.iv (bits_needed a) a.zeros a.ones

(* ---- transfer functions ---- *)

let contains_iv iv x = I.contains iv x

(* Abstract [Fixedpt.wrap]: identity on representable intervals; exact on
   singletons; otherwise the full representable range, keeping the known
   low bits (wrapping truncates high bits only). *)
let wrap_aval fmt a =
  let w = Fixedpt.bits fmt in
  let rep = I.of_width w in
  if a.iv.I.lo >= rep.I.lo && a.iv.I.hi <= rep.I.hi then mk w a.iv a.zeros a.ones
  else
    match is_singleton a with
    | Some v ->
        let v = Fixedpt.wrap fmt v in
        mk w (I.make v v) 0 0
    | None -> if a.width = w then mk w rep a.zeros a.ones else mk w rep 0 0

(* Number of consecutive low bits whose pattern is fully known. *)
let low_known a =
  let known = a.zeros lor a.ones in
  let rec go i = if i < a.width && known land (1 lsl i) <> 0 then go (i + 1) else i in
  go 0

let low_zero_count a =
  let rec go i = if i < a.width && a.zeros land (1 lsl i) <> 0 then go (i + 1) else i in
  go 0

(* Low result bits of an addition/subtraction are determined by the low
   bits of the operands alone (carries propagate upward). *)
let addsub_kb ~sub a b =
  let k = min (low_known a) (low_known b) in
  if k = 0 then (0, 0)
  else
    let m = mask_of k in
    let la = a.ones land m and lb = b.ones land m in
    let s = (if sub then la - lb else la + lb) land m in
    (m land lnot s, s)

let bool_const v = mk 1 (I.make v v) 0 0
let bool_unknown = mk 1 (I.make 0 1) 0 0

(* Condition tests mirror [Op.bool_of]: any non-zero value is true. *)
let certainly_true c = (not (contains_iv c.iv 0)) || c.ones <> 0
let certainly_false c = c.iv.I.lo = 0 && c.iv.I.hi = 0

let max_abs (iv : I.t) = max (abs iv.I.lo) (abs iv.I.hi)

(* Unsigned bit count of a non-negative value. *)
let ubits v = signed_bits v - (if v >= 0 then 1 else 0) |> max 1

let transfer ty op (args : aval list) =
  let fmt = Op.fmt_of ty in
  let w = Fixedpt.bits fmt in
  let rep = I.of_width w in
  let topw = mk w rep 0 0 in
  let top_kb zeros ones = mk w rep zeros ones in
  let a1 () = match args with [ a ] -> a | _ -> invalid_arg "Range.transfer: arity" in
  let a2 () = match args with [ a; b ] -> (a, b) | _ -> invalid_arg "Range.transfer: arity" in
  (* wrapped exact-arithmetic result: the math interval plus any known low
     bits (which survive wrapping) *)
  let wrapped ?(zeros = 0) ?(ones = 0) iv =
    if iv.I.lo >= rep.I.lo && iv.I.hi <= rep.I.hi then mk w iv zeros ones
    else if iv.I.lo = iv.I.hi then singleton ty (Fixedpt.wrap fmt iv.I.lo)
    else top_kb zeros ones
  in
  let add_like ~sub a b =
    let zeros, ones = addsub_kb ~sub a b in
    wrapped ~zeros ~ones (I.add a.iv (if sub then I.neg b.iv else b.iv))
  in
  match op with
  | Op.Const v -> singleton ty (Fixedpt.wrap fmt v)
  | Op.Read _ -> invalid_arg "Range.transfer: Read is resolved by the environment"
  | Op.Write _ -> wrap_aval fmt (a1 ())
  | Op.Add ->
      let a, b = a2 () in
      add_like ~sub:false a b
  | Op.Sub ->
      let a, b = a2 () in
      add_like ~sub:true a b
  | Op.Incr -> add_like ~sub:false (a1 ()) (singleton ty (Fixedpt.of_int fmt 1))
  | Op.Decr -> add_like ~sub:true (a1 ()) (singleton ty (Fixedpt.of_int fmt 1))
  | Op.Mul ->
      let a, b = a2 () in
      let f = fmt.Fixedpt.frac_bits in
      let tz = max 0 (min w (low_zero_count a + low_zero_count b - f)) in
      let zeros = mask_of tz in
      if bits_needed a + bits_needed b <= 62 then
        let p = I.mul a.iv b.iv in
        wrapped ~zeros (I.make (p.I.lo asr f) (p.I.hi asr f))
      else top_kb zeros 0
  | Op.Div ->
      let a, b = a2 () in
      let f = fmt.Fixedpt.frac_bits in
      if b.iv.I.lo = 0 && b.iv.I.hi = 0 then topw (* always raises: any value is sound *)
      else
        let min_abs_b =
          if b.iv.I.lo > 0 then b.iv.I.lo else if b.iv.I.hi < 0 then -b.iv.I.hi else 1
        in
        if bits_needed a + f <= 62 then
          let m = max_abs a.iv lsl f / min_abs_b in
          let lo = if a.iv.I.lo >= 0 && b.iv.I.lo > 0 then 0 else -m in
          let hi = if a.iv.I.hi <= 0 && b.iv.I.lo > 0 then 0 else m in
          wrapped (I.make lo hi)
        else topw
  | Op.Mod ->
      let a, b = a2 () in
      if b.iv.I.lo = 0 && b.iv.I.hi = 0 then topw
      else
        let m = min (max_abs b.iv - 1) (max_abs a.iv) in
        let lo = if a.iv.I.lo >= 0 then 0 else -m in
        let hi = if a.iv.I.hi <= 0 then 0 else m in
        wrapped (I.make lo hi)
  | Op.Shl -> (
      let a, b = a2 () in
      match is_singleton b with
      | Some k when k >= 0 && k <= 62 ->
          let zeros = ((a.zeros lsl k) lor mask_of (min k w)) land mask_of w in
          let ones = (a.ones lsl k) land mask_of w in
          if bits_needed a + k <= 62 then
            wrapped ~zeros ~ones (I.make (a.iv.I.lo lsl k) (a.iv.I.hi lsl k))
          else top_kb zeros ones
      | Some _ -> topw (* negative raises; >62 is outside [Fixedpt]'s domain *)
      | None -> topw)
  | Op.Shr -> (
      let a, b = a2 () in
      match is_singleton b with
      | Some k when k >= 0 && k <= 62 ->
          let sign = 1 lsl (a.width - 1) in
          let z = (a.zeros lsr k) land mask_of a.width
          and o = (a.ones lsr k) land mask_of a.width in
          let high =
            mask_of a.width land lnot (mask_of (max 0 (a.width - k)))
          in
          let z, o =
            if a.zeros land sign <> 0 then (z lor high, o)
            else if a.ones land sign <> 0 then (z, o lor high)
            else (z land lnot high, o land lnot high)
          in
          wrapped ~zeros:z ~ones:o (I.make (a.iv.I.lo asr k) (a.iv.I.hi asr k))
      | Some _ -> topw
      | None ->
          let lo = min a.iv.I.lo 0 and hi = if a.iv.I.hi < 0 then -1 else a.iv.I.hi in
          wrapped (I.make lo hi))
  | Op.And ->
      let a, b = a2 () in
      let zeros = a.zeros lor b.zeros and ones = a.ones land b.ones in
      if a.iv.I.lo >= 0 || b.iv.I.lo >= 0 then
        let hi =
          match (a.iv.I.lo >= 0, b.iv.I.lo >= 0) with
          | true, true -> min a.iv.I.hi b.iv.I.hi
          | true, false -> a.iv.I.hi
          | false, _ -> b.iv.I.hi
        in
        wrapped ~zeros ~ones (I.make 0 hi)
      else top_kb zeros ones
  | Op.Or ->
      let a, b = a2 () in
      let zeros = a.zeros land b.zeros and ones = a.ones lor b.ones in
      if a.iv.I.lo >= 0 && b.iv.I.lo >= 0 then
        let hb = max (ubits a.iv.I.hi) (ubits b.iv.I.hi) in
        wrapped ~zeros ~ones (I.make (max a.iv.I.lo b.iv.I.lo) ((1 lsl hb) - 1))
      else top_kb zeros ones
  | Op.Xor ->
      let a, b = a2 () in
      let known = (a.zeros lor a.ones) land (b.zeros lor b.ones) in
      let x = a.ones lxor b.ones in
      let zeros = known land lnot x and ones = known land x in
      if a.iv.I.lo >= 0 && b.iv.I.lo >= 0 then
        let hb = max (ubits a.iv.I.hi) (ubits b.iv.I.hi) in
        wrapped ~zeros ~ones (I.make 0 ((1 lsl hb) - 1))
      else top_kb zeros ones
  | Op.Not -> (
      let a = a1 () in
      match ty with
      | Hls_lang.Ast.Tbool ->
          if certainly_true a then bool_const 0
          else if certainly_false a then bool_const 1
          else bool_unknown
      | Hls_lang.Ast.Tint _ | Hls_lang.Ast.Tfix _ ->
          wrapped ~zeros:a.ones ~ones:a.zeros (I.make (-a.iv.I.hi - 1) (-a.iv.I.lo - 1)))
  | Op.Neg -> wrapped (I.neg (a1 ()).iv)
  | Op.Cmp c -> (
      let a, b = a2 () in
      let kb_differ = a.ones land b.zeros lor (a.zeros land b.ones) <> 0 in
      let certain =
        match c with
        | Op.Ceq ->
            if kb_differ || not (I.overlaps a.iv b.iv) then Some false
            else if is_singleton a <> None && a.iv = b.iv then Some true
            else None
        | Op.Cne ->
            if kb_differ || not (I.overlaps a.iv b.iv) then Some true
            else if is_singleton a <> None && a.iv = b.iv then Some false
            else None
        | Op.Clt ->
            if a.iv.I.hi < b.iv.I.lo then Some true
            else if a.iv.I.lo >= b.iv.I.hi then Some false
            else None
        | Op.Cle ->
            if a.iv.I.hi <= b.iv.I.lo then Some true
            else if a.iv.I.lo > b.iv.I.hi then Some false
            else None
        | Op.Cgt ->
            if a.iv.I.lo > b.iv.I.hi then Some true
            else if a.iv.I.hi <= b.iv.I.lo then Some false
            else None
        | Op.Cge ->
            if a.iv.I.lo >= b.iv.I.hi then Some true
            else if a.iv.I.hi < b.iv.I.lo then Some false
            else None
      in
      match certain with
      | Some true -> bool_const 1
      | Some false -> bool_const 0
      | None -> bool_unknown)
  | Op.Zdetect ->
      let a = a1 () in
      if (not (contains_iv a.iv 0)) || a.ones <> 0 then bool_const 0
      else if a.iv.I.lo = 0 && a.iv.I.hi = 0 then bool_const 1
      else bool_unknown
  | Op.Mux -> (
      match args with
      | [ c; a; b ] ->
          if certainly_true c then wrap_aval fmt a
          else if certainly_false c then wrap_aval fmt b
          else join (wrap_aval fmt a) (wrap_aval fmt b)
      | _ -> invalid_arg "Range.transfer: arity")

(* ---- whole-CFG fixpoint ---- *)

type env = aval StrMap.t

type t = {
  t_cfg : Cfg.t;
  node_avals : aval array array; (* per block; [||] when unreachable *)
  entry_envs : env option array;
  t_dead_edges : (int * int * bool) list;
  t_var_widths : (string * int * int) list;
}

let env_equal = StrMap.equal (fun (a : aval) b -> a = b)

let join_env a b =
  StrMap.merge
    (fun _ x y ->
      match (x, y) with Some x, Some y -> Some (join x y) | _ -> None)
    a b

(* Meet of two facts about the same value; [None] on contradiction (the
   constrained program point is unreachable). *)
let meet a b =
  match I.intersect a.iv b.iv with
  | None -> None
  | Some iv ->
      let zeros = a.zeros lor b.zeros and ones = a.ones lor b.ones in
      if zeros land ones <> 0 then None else Some (mk a.width iv zeros ones)

let chop_hi a h =
  if h < a.iv.I.lo then None
  else Some (mk a.width (I.make a.iv.I.lo (min a.iv.I.hi h)) a.zeros a.ones)

let chop_lo a l =
  if l > a.iv.I.hi then None
  else Some (mk a.width (I.make (max a.iv.I.lo l) a.iv.I.hi) a.zeros a.ones)

let drop_point a k =
  if a.iv.I.lo = k && a.iv.I.hi = k then None
  else if a.iv.I.lo = k then chop_lo a (k + 1)
  else if a.iv.I.hi = k then chop_hi a (k - 1)
  else Some a

let negate_cmp = function
  | Op.Ceq -> Op.Cne
  | Op.Cne -> Op.Ceq
  | Op.Clt -> Op.Cge
  | Op.Cle -> Op.Cgt
  | Op.Cgt -> Op.Cle
  | Op.Cge -> Op.Clt

let swap_cmp = function
  | Op.Ceq -> Op.Ceq
  | Op.Cne -> Op.Cne
  | Op.Clt -> Op.Cgt
  | Op.Cle -> Op.Cge
  | Op.Cgt -> Op.Clt
  | Op.Cge -> Op.Cle

(* What holding [x cmp y] says about [x]. *)
let constrain_left cmp x y =
  match cmp with
  | Op.Clt -> chop_hi x (y.iv.I.hi - 1)
  | Op.Cle -> chop_hi x y.iv.I.hi
  | Op.Cgt -> chop_lo x (y.iv.I.lo + 1)
  | Op.Cge -> chop_lo x y.iv.I.lo
  | Op.Ceq -> meet x y
  | Op.Cne -> ( match is_singleton y with Some k -> drop_point x k | None -> Some x)

let analyze ?ports cfg =
  Hls_obs.Trace.with_span "range" @@ fun () ->
  Hls_obs.Trace.incr "range/analyses";
  let n = Cfg.n_blocks cfg in
  let entry = Cfg.entry cfg in
  let succs = Array.init n (Cfg.succs cfg) in
  let rpo = Graph_algo.reverse_postorder ~succs ~entry in
  let headers = List.map fst (Graph_algo.loops ~succs ~entry) in
  let preds = Graph_algo.preds succs in
  (* variable inventory: declared types from reads/writes, ports override *)
  let var_ty : (string, Hls_lang.Ast.ty) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      Dfg.iter
        (fun _ node ->
          match node.Dfg.op with
          | Op.Read v | Op.Write v ->
              if not (Hashtbl.mem var_ty v) then Hashtbl.replace var_ty v node.Dfg.ty
          | _ -> ())
        (Cfg.dfg cfg bid))
    (Cfg.block_ids cfg);
  Option.iter
    (List.iter (fun (p, _, ty) -> Hashtbl.replace var_ty p ty))
    ports;
  let initial_of v ty =
    match ports with
    | None -> top_of_ty ty (* calling context unknown: assume nothing *)
    | Some ps ->
        if List.exists (fun (p, dir, _) -> p = v && dir = `In) ps then top_of_ty ty
        else singleton ty 0 (* the simulators zero-initialise the store *)
  in
  let entry_env0 =
    Hashtbl.fold (fun v ty acc -> StrMap.add v (initial_of v ty) acc) var_ty StrMap.empty
  in
  let top_env =
    Hashtbl.fold (fun v ty acc -> StrMap.add v (top_of_ty ty) acc) var_ty StrMap.empty
  in
  (* ---- one symbolic execution of a block body ---- *)
  let run_block bid env =
    let g = Cfg.dfg cfg bid in
    let values = Array.make (Dfg.n_nodes g) bool_unknown in
    Dfg.iter
      (fun nid node ->
        values.(nid) <-
          (match node.Dfg.op with
          | Op.Read v -> (
              match StrMap.find_opt v env with
              | Some a -> a
              | None -> top_of_ty node.Dfg.ty)
          | op -> transfer node.Dfg.ty op (List.map (Array.get values) node.Dfg.args)))
      g;
    let exit_env =
      List.fold_left
        (fun acc (v, wnid) -> StrMap.add v values.(wnid) acc)
        env (Dfg.writes g)
    in
    (values, exit_env)
  in
  (* Map condition-node constraints back to variables: a variable's exit
     value equals node [x] when [x] is its (only) read and it is never
     written in the block, or [x] is the argument of its last write and
     writing cannot wrap it. *)
  let edge_constraint_vars bid values exit_env =
    let g = Cfg.dfg cfg bid in
    let written = List.map fst (Dfg.writes g) in
    let sources : (Dfg.nid * string) list =
      List.filter_map
        (fun (v, rnid) -> if List.mem v written then None else Some (rnid, v))
        (Dfg.reads g)
      @ List.filter_map
          (fun (v, wnid) ->
            let last =
              List.fold_left
                (fun acc (v', w') -> if v' = v then Some w' else acc)
                None (Dfg.writes g)
            in
            if last <> Some wnid then None
            else
              match Dfg.args g wnid with
              | [ a ] ->
                  let w = ty_width (Dfg.ty g wnid) in
                  let rep = I.of_width w in
                  if values.(a).iv.I.lo >= rep.I.lo && values.(a).iv.I.hi <= rep.I.hi
                  then Some (a, v)
                  else None
              | _ -> None)
          (Dfg.writes g)
    in
    fun constraints ->
      (* apply node constraints to the exit env; None = edge unreachable *)
      List.fold_left
        (fun acc (nid, c) ->
          match (acc, c) with
          | None, _ -> None
          | Some _, None -> None
          | Some env, Some c ->
              List.fold_left
                (fun acc (snid, v) ->
                  match acc with
                  | None -> None
                  | Some env ->
                      if snid <> nid then Some env
                      else (
                        match meet (StrMap.find v env) c with
                        | Some a -> Some (StrMap.add v a env)
                        | None -> None))
                (Some env) sources)
        (Some exit_env) constraints
  in
  let refine bid values exit_env ~assume cnid =
    let g = Cfg.dfg cfg bid in
    let apply = edge_constraint_vars bid values exit_env in
    match (Dfg.op g cnid, Dfg.args g cnid) with
    | Op.Cmp cmp, [ x; y ] ->
        let cmp = if assume then cmp else negate_cmp cmp in
        let vx = values.(x) and vy = values.(y) in
        apply
          [ (x, constrain_left cmp vx vy); (y, constrain_left (swap_cmp cmp) vy vx) ]
    | Op.Zdetect, [ x ] ->
        let vx = values.(x) in
        let c =
          if assume then meet vx (mk vx.width (I.make 0 0) 0 0) else drop_point vx 0
        in
        apply [ (x, c) ]
    | Op.Read _, [] ->
        let vc = values.(cnid) in
        let c = if assume then drop_point vc 0 else meet vc (mk vc.width (I.make 0 0) 0 0) in
        apply [ (cnid, c) ]
    | _ -> Some exit_env
  in
  (* successor edge environments of a block under the given entry env *)
  let out_edges bid env =
    let values, exit_env = run_block bid env in
    match Cfg.term cfg bid with
    | Cfg.Goto t -> [ (t, Some exit_env) ]
    | Cfg.Halt -> []
    | Cfg.Branch (c, t, f) ->
        if t = f then [ (t, Some exit_env) ]
        else
          let cond = values.(c) in
          if certainly_true cond then [ (t, Some exit_env); (f, None) ]
          else if certainly_false cond then [ (t, None); (f, Some exit_env) ]
          else
            [
              (t, refine bid values exit_env ~assume:true c);
              (f, refine bid values exit_env ~assume:false c);
            ]
  in
  (* ---- fixpoint on block-entry environments ---- *)
  let edge_envs : (int * int, env) Hashtbl.t = Hashtbl.create 16 in
  let in_envs : env option array = Array.make n None in
  let visits = Array.make n 0 in
  let widen_threshold = 4 in
  let widen_env prev next =
    StrMap.merge
      (fun v p nx ->
        match (p, nx) with
        | Some p, Some nx ->
            let bound =
              match Hashtbl.find_opt var_ty v with
              | Some ty -> (top_of_ty ty).iv
              | None -> I.of_width 62
            in
            if p.iv = nx.iv then Some nx
            else (
              Hls_obs.Trace.incr "range/widenings";
              Some (mk nx.width (I.widen ~bound p.iv nx.iv) nx.zeros nx.ones))
        | _ -> None)
      prev next
  in
  let joined_in bid =
    let incoming =
      List.filter_map (fun p -> Hashtbl.find_opt edge_envs (p, bid)) preds.(bid)
    in
    let incoming = if bid = entry then entry_env0 :: incoming else incoming in
    match incoming with
    | [] -> None
    | e :: rest -> Some (List.fold_left join_env e rest)
  in
  let changed = ref true in
  let pass = ref 0 in
  let max_passes = 200 in
  while !changed && !pass < max_passes do
    incr pass;
    Hls_obs.Trace.incr "range/passes";
    changed := false;
    List.iter
      (fun bid ->
        match joined_in bid with
        | None -> ()
        | Some env ->
            let env =
              match in_envs.(bid) with
              | Some prev
                when List.mem bid headers && visits.(bid) >= widen_threshold ->
                  widen_env prev env
              | _ -> env
            in
            let stale =
              match in_envs.(bid) with
              | Some prev -> not (env_equal prev env)
              | None -> true
            in
            if stale then (
              visits.(bid) <- visits.(bid) + 1;
              in_envs.(bid) <- Some env;
              List.iter
                (fun (s, e) ->
                  match e with
                  | None -> ()
                  | Some e ->
                      let key = (bid, s) in
                      let same =
                        match Hashtbl.find_opt edge_envs key with
                        | Some o -> env_equal o e
                        | None -> false
                      in
                      if not same then (
                        Hashtbl.replace edge_envs key e;
                        changed := true))
                (out_edges bid env)))
      rpo
  done;
  if !changed then (
    (* fixpoint did not settle within the pass budget: fall back to the
       sound every-variable-unconstrained answer *)
    Hls_obs.Trace.incr "range/fallbacks";
    List.iter (fun bid -> in_envs.(bid) <- Some top_env) rpo);
  (* ---- final pass: record per-node facts and dead edges ---- *)
  let node_avals = Array.make n [||] in
  let dead = ref [] in
  List.iter
    (fun bid ->
      match in_envs.(bid) with
      | None -> ()
      | Some env -> (
          let values, exit_env = run_block bid env in
          node_avals.(bid) <- values;
          match Cfg.term cfg bid with
          | Cfg.Branch (c, t, f) when t <> f ->
              let cond = values.(c) in
              if certainly_true cond then dead := (bid, f, true) :: !dead
              else if certainly_false cond then dead := (bid, t, false) :: !dead
              else (
                (match refine bid values exit_env ~assume:true c with
                | None -> dead := (bid, t, false) :: !dead
                | Some _ -> ());
                match refine bid values exit_env ~assume:false c with
                | None -> dead := (bid, f, true) :: !dead
                | Some _ -> ())
          | _ -> ()))
    rpo;
  let dead = List.sort compare !dead in
  Hls_obs.Trace.add "range/dead_edges" (List.length dead);
  (* ---- per-variable width summary ---- *)
  let var_widths =
    Hashtbl.fold
      (fun v ty acc ->
        let declared = ty_width ty in
        let inferred = ref 1 in
        let see a = inferred := max !inferred (bits_needed a) in
        Array.iteri
          (fun bid env ->
            match env with
            | Some env ->
                Option.iter see (StrMap.find_opt v env);
                let values = node_avals.(bid) in
                if Array.length values > 0 then
                  Dfg.iter
                    (fun nid node ->
                      match node.Dfg.op with
                      | Op.Write v' when v' = v -> see values.(nid)
                      | _ -> ())
                    (Cfg.dfg cfg bid)
            | None -> ())
          in_envs;
        (v, declared, min declared !inferred) :: acc)
      var_ty []
    |> List.sort compare
  in
  {
    t_cfg = cfg;
    node_avals;
    entry_envs = in_envs;
    t_dead_edges = dead;
    t_var_widths = var_widths;
  }

let node_range t ~bid ~nid =
  if bid < Array.length t.node_avals && Array.length t.node_avals.(bid) > nid then
    Some t.node_avals.(bid).(nid)
  else None

let entry_env t ~bid =
  if bid < Array.length t.entry_envs then
    Option.map (fun e -> StrMap.bindings e) t.entry_envs.(bid)
  else None

let node_bits t ~bid ~nid =
  let declared = ty_width (Dfg.ty (Cfg.dfg t.t_cfg bid) nid) in
  match node_range t ~bid ~nid with
  | Some a -> min declared (bits_needed a)
  | None -> declared

let dead_edges t = t.t_dead_edges

let reachable t ~bid = bid < Array.length t.entry_envs && t.entry_envs.(bid) <> None

let var_widths t = t.t_var_widths
