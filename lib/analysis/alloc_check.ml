open Hls_cdfg
open Hls_alloc
open Diagnostic

let rules =
  [
    ("ALLOC001", "operation bound to a unit of a different class");
    ("ALLOC002", "two operations on one unit in the same (block, step) slot");
    ("ALLOC003", "step-occupying operation bound to no unit");
    ("ALLOC004", "unit binding disagrees with the schedule about a step");
    ("ALLOC005", "overlapping temporary lifetimes share a track");
    ("ALLOC006", "temporary value has no register track");
    ("ALLOC007", "interfering variables share a register");
    ("ALLOC008", "variables written in the same control step share a register");
    ("ALLOC009", "required data transfer missing from the interconnect");
    ("ALLOC010", "interconnect carries a transfer the design never performs");
  ]

let check_fu cs (fu : Fu_alloc.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let bound : (Cfg.bid * Dfg.nid, int * Op.fu_class * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (inst : Fu_alloc.instance) ->
      let slots = Hashtbl.create 8 in
      List.iter
        (fun (r : Fu_alloc.op_ref) ->
          Hashtbl.replace bound (r.Fu_alloc.bid, r.Fu_alloc.nid)
            (inst.Fu_alloc.fu_id, inst.Fu_alloc.fu_cls, r.Fu_alloc.step);
          if r.Fu_alloc.cls <> inst.Fu_alloc.fu_cls then
            add
              (error Alloc ~code:"ALLOC001" (Fu inst.Fu_alloc.fu_id)
                 "operation b%d.%%%d of class %s bound to a %s unit" r.Fu_alloc.bid
                 r.Fu_alloc.nid
                 (Op.fu_class_to_string r.Fu_alloc.cls)
                 (Op.fu_class_to_string inst.Fu_alloc.fu_cls));
          let slot = (r.Fu_alloc.bid, r.Fu_alloc.step) in
          (match Hashtbl.find_opt slots slot with
          | Some prev ->
              add
                (error Alloc ~code:"ALLOC002" (Fu inst.Fu_alloc.fu_id)
                   "operations b%d.%%%d and b%d.%%%d both execute in block %d step %d"
                   r.Fu_alloc.bid prev r.Fu_alloc.bid r.Fu_alloc.nid r.Fu_alloc.bid
                   r.Fu_alloc.step)
          | None -> ());
          Hashtbl.replace slots slot r.Fu_alloc.nid)
        inst.Fu_alloc.ops)
    fu.Fu_alloc.instances;
  List.iter
    (fun (r : Fu_alloc.op_ref) ->
      match Hashtbl.find_opt bound (r.Fu_alloc.bid, r.Fu_alloc.nid) with
      | None ->
          add
            (error Alloc ~code:"ALLOC003" (Node (r.Fu_alloc.bid, r.Fu_alloc.nid))
               "step-occupying %s operation is bound to no unit"
               (Op.fu_class_to_string r.Fu_alloc.cls))
      | Some (fu_id, _, recorded) ->
          if recorded <> r.Fu_alloc.step then
            add
              (error Alloc ~code:"ALLOC004" (Fu fu_id)
                 "binding records b%d.%%%d at step %d but the schedule places it at step %d"
                 r.Fu_alloc.bid r.Fu_alloc.nid recorded r.Fu_alloc.step))
    (Fu_alloc.collect cs);
  List.rev !ds

let check_registers cs ~temp_track ~groups ~outputs =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* temporaries: per-block left-edge tracks *)
  List.iter
    (fun bid ->
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      let term_cond =
        match Cfg.term cfg bid with
        | Cfg.Branch (c, _, _) -> Some c
        | Cfg.Goto _ | Cfg.Halt -> None
      in
      let temps = Lifetime.temps (Lifetime.analyze sched ~term_cond) in
      let by_track : (int, (Dfg.nid * Hls_util.Interval.t) list) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun (nid, iv) ->
          match temp_track bid nid with
          | None ->
              add
                (error Alloc ~code:"ALLOC006" (Node (bid, nid))
                   "value needs a temporary register over steps %d-%d but has no track"
                   iv.Hls_util.Interval.lo iv.Hls_util.Interval.hi)
          | Some track ->
              let have =
                match Hashtbl.find_opt by_track track with Some l -> l | None -> []
              in
              List.iter
                (fun (other, oiv) ->
                  if Hls_util.Interval.overlaps iv oiv then
                    add
                      (error Alloc ~code:"ALLOC005"
                         (Register (Printf.sprintf "tmp%d" track))
                         "b%d.%%%d (steps %d-%d) and b%d.%%%d (steps %d-%d) overlap on one track"
                         bid other oiv.Hls_util.Interval.lo oiv.Hls_util.Interval.hi bid
                         nid iv.Hls_util.Interval.lo iv.Hls_util.Interval.hi))
                have;
              Hashtbl.replace by_track track ((nid, iv) :: have))
        temps)
    (Cfg.block_ids cfg);
  (* variables: liveness interference and same-step write conflicts *)
  let live = Liveness.analyze ~live_at_exit:outputs cfg in
  let write_slots : (string, (Cfg.bid * int) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      List.iter
        (fun (v, wnid) ->
          let slot = (bid, Hls_sched.Schedule.write_step sched wnid) in
          let cur = match Hashtbl.find_opt write_slots v with Some l -> l | None -> [] in
          Hashtbl.replace write_slots v (slot :: cur))
        (Dfg.writes g))
    (Cfg.block_ids cfg);
  List.iter
    (fun group ->
      let reg = match group with r :: _ -> r | [] -> "?" in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                if Liveness.interfere live a b then
                  add
                    (error Alloc ~code:"ALLOC007" (Register reg)
                       "variables %s and %s are simultaneously live but share a register" a
                       b);
                let sa = match Hashtbl.find_opt write_slots a with Some l -> l | None -> [] in
                let sb = match Hashtbl.find_opt write_slots b with Some l -> l | None -> [] in
                match List.find_opt (fun s -> List.mem s sb) sa with
                | Some (bid, step) ->
                    add
                      (error Alloc ~code:"ALLOC008" (Register reg)
                         "variables %s and %s are both written in block %d step %d" a b bid
                         step)
                | None -> ())
              rest;
            pairs rest
      in
      pairs group)
    groups;
  List.rev !ds

let wire_to_string = function
  | Interconnect.W_fu_out id -> Printf.sprintf "fu%d" id
  | Interconnect.W_var v -> v
  | Interconnect.W_temp (b, n) -> Printf.sprintf "temp b%d.%%%d" b n
  | Interconnect.W_wire (b, n) -> Printf.sprintf "wire b%d.%%%d" b n
  | Interconnect.W_const c -> Printf.sprintf "const %d" c

let dest_to_string = function
  | Interconnect.D_fu_in (id, pos) -> Printf.sprintf "fu%d.in%d" id pos
  | Interconnect.D_var v -> Printf.sprintf "register %s" v
  | Interconnect.D_temp (b, n) -> Printf.sprintf "temp b%d.%%%d" b n

let check_transfers cs ~fu ~regs given =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let expected = Interconnect.transfers cs ~fu ~regs in
  let count tbl (t : Interconnect.transfer) delta =
    let cur = match Hashtbl.find_opt tbl t with Some n -> n | None -> 0 in
    Hashtbl.replace tbl t (cur + delta)
  in
  let balance = Hashtbl.create 64 in
  List.iter (fun t -> count balance t 1) expected;
  List.iter (fun t -> count balance t (-1)) given;
  Hashtbl.iter
    (fun (t : Interconnect.transfer) n ->
      if n > 0 then
        add
          (error Alloc ~code:"ALLOC009" (Step (t.Interconnect.t_bid, t.Interconnect.t_step))
             "transfer %s -> %s is required but missing from the interconnect"
             (wire_to_string t.Interconnect.t_src)
             (dest_to_string t.Interconnect.t_dst))
      else if n < 0 then
        add
          (warning Alloc ~code:"ALLOC010"
             (Step (t.Interconnect.t_bid, t.Interconnect.t_step))
             "interconnect carries transfer %s -> %s that the design never performs"
             (wire_to_string t.Interconnect.t_src)
             (dest_to_string t.Interconnect.t_dst)))
    balance;
  List.rev !ds
