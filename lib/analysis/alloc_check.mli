(** Allocation and binding soundness: functional-unit grouping, register
    sharing and interconnect completeness.

    The entry points take the allocation results in decomposed form
    (lookup functions and plain lists rather than only the abstract
    allocator outputs) so tests can inject known-bad bindings and
    assert the exact rule that fires.

    Rules:
    - [ALLOC001] (error) — an operation is bound to a unit of a
      different functional-unit class;
    - [ALLOC002] (error) — two operations on one unit execute in the
      same (block, step) slot;
    - [ALLOC003] (error) — a step-occupying operation of the schedule
      is bound to no unit;
    - [ALLOC004] (error) — a unit's operation record disagrees with the
      schedule about the operation's control step (stale binding);
    - [ALLOC005] (error) — two temporaries with overlapping lifetimes
      share a temp-register track in one block;
    - [ALLOC006] (error) — a value classified as needing a temporary
      register has no track;
    - [ALLOC007] (error) — two variables whose live ranges interfere
      share a register;
    - [ALLOC008] (error) — two variables written in the same control
      step share a register (one latch per register per cycle);
    - [ALLOC009] (error) — a data transfer required by the
      schedule/binding is missing from the interconnect (incomplete
      communication path);
    - [ALLOC010] (warning) — the interconnect carries a transfer the
      design never performs. *)

val rules : (string * string) list

val check_fu : Hls_sched.Cfg_sched.t -> Hls_alloc.Fu_alloc.t -> Diagnostic.t list
(** [ALLOC001]–[ALLOC004]. *)

val check_registers :
  Hls_sched.Cfg_sched.t ->
  temp_track:(Hls_cdfg.Cfg.bid -> Hls_cdfg.Dfg.nid -> int option) ->
  groups:string list list ->
  outputs:string list ->
  Diagnostic.t list
(** [ALLOC005]–[ALLOC008]. [temp_track] and [groups] are
    {!Hls_alloc.Reg_alloc.temp_track} and
    {!Hls_alloc.Reg_alloc.variable_groups} of a real allocation (or
    mutated versions under test); [outputs] lists the output ports,
    live at program exit, as given to the register allocator. *)

val check_transfers :
  Hls_sched.Cfg_sched.t ->
  fu:Hls_alloc.Fu_alloc.t ->
  regs:Hls_alloc.Reg_alloc.t ->
  Hls_alloc.Interconnect.transfer list ->
  Diagnostic.t list
(** [ALLOC009]–[ALLOC010]: diff the given transfer list against the
    transfers the schedule and bindings imply. *)
