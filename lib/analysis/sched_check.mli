(** Schedule legality: the contract allocation and binding assume of a
    whole-program schedule.

    Rules:
    - [SCHED001] (error) — a dependence is violated: a step-occupying
      operation starts no later than the step in which an operand's
      value is produced (free chains included, per the step conventions
      of {!Hls_sched.Schedule});
    - [SCHED002] (error) — a control step uses more functional units of
      some class than the resource limits allow;
    - [SCHED003] (warning) — a control step before the block's last one
      holds no operation and latches no value (a scheduler artifact
      that lengthens the schedule for nothing). *)

val rules : (string * string) list

val check : ?limits:Hls_sched.Limits.t -> Hls_sched.Cfg_sched.t -> Diagnostic.t list
(** [limits] defaults to [Unlimited] (dependence checking only). Pass
    the limits the scheduler was constrained by — or [Unlimited] for
    time-constrained schedulers that ignore them — to also enforce
    [SCHED002]. *)

val check_block :
  ?limits:Hls_sched.Limits.t ->
  bid:Hls_cdfg.Cfg.bid ->
  Hls_sched.Schedule.t ->
  Diagnostic.t list
(** Same rules on a single block's schedule; [bid] only labels the
    reported entities. *)
