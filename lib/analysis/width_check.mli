(** Value-range and bit-width lint rules over the CDFG, driven by the
    {!Range} abstract interpretation.

    - [RANGE001] (warning) — a comparison whose outcome is provably
      constant: one branch of the surrounding control is dead logic.
    - [RANGE002] (warning) — a branch edge that can never be taken.
    - [RANGE003] (warning) — a computed value written to a variable is
      provably a single constant: the functional-unit work is dead.
    - [RANGE004] (info) — a divisor range that contains zero: the
      division can trap at runtime.
    - [WIDTH001] (warning) — an operation whose exact result always
      falls outside its declared format: every evaluation wraps.
    - [WIDTH002] (info) — a variable whose inferred width is at most
      half its declared width: a narrowing opportunity.
    - [WIDTH003] (warning) — a constant shift amount at least as large
      as the operand width: the shift discards every data bit. *)

val rules : (string * Diagnostic.severity * string) list
(** [(code, severity, description)] rows for the lint rule table. *)

val check : ?facts:Range.t -> ?ports:(string * [ `In | `Out ] * Hls_lang.Ast.ty) list ->
  Hls_cdfg.Cfg.t -> Diagnostic.t list
(** Run all RANGE/WIDTH rules. Reuses [facts] when the caller already
    analyzed the CFG (otherwise runs {!Range.analyze} with [ports]). *)
