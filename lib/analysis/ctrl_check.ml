open Hls_ctrl
open Diagnostic

let rules =
  [
    ("CTRL001", "FSM state unreachable from the entry");
    ("CTRL002", "conflicting transitions leave one state");
    ("CTRL003", "state has no outgoing transition");
    ("CTRL004", "branching state covers only one condition polarity");
    ("CTRL005", "transition endpoint is not a state of the machine");
    ("CTRL006", "two states share an encoded state code");
    ("CTRL007", "next-state logic disagrees with the transition relation");
    ("CTRL008", "microcode word does not fit its fields");
    ("CTRL009", "microcode field holds the same value in every word");
  ]

let check_fsm ~states ~transitions ~entry =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let ids = List.map (fun (s : Fsm.state) -> s.Fsm.sid) states in
  let is_state sid = List.mem sid ids in
  List.iter
    (fun (tr : Fsm.transition) ->
      List.iter
        (fun endpoint ->
          if not (is_state endpoint) then
            add
              (error Ctrl ~code:"CTRL005" (Transition (tr.Fsm.t_from, tr.Fsm.t_to))
                 "endpoint %d is not a state of the machine" endpoint))
        [ tr.Fsm.t_from; tr.Fsm.t_to ])
    transitions;
  List.iter
    (fun (s : Fsm.state) ->
      let out = List.filter (fun (tr : Fsm.transition) -> tr.Fsm.t_from = s.Fsm.sid) transitions in
      let always, conds =
        List.partition (fun (tr : Fsm.transition) -> tr.Fsm.t_guard = Fsm.G_always) out
      in
      if out = [] then
        add (error Ctrl ~code:"CTRL003" (State s.Fsm.sid) "state has no outgoing transition");
      if List.length always > 1 then
        add
          (error Ctrl ~code:"CTRL002" (State s.Fsm.sid) "%d unconditional transitions leave the state"
             (List.length always));
      if always <> [] && conds <> [] then
        add
          (error Ctrl ~code:"CTRL002" (State s.Fsm.sid)
             "unconditional and conditional transitions leave the same state");
      let guard_key (tr : Fsm.transition) =
        match tr.Fsm.t_guard with Fsm.G_cond (pol, nid) -> Some (pol, nid) | Fsm.G_always -> None
      in
      let rec dup_guards = function
        | [] -> ()
        | tr :: rest -> (
            match
              List.find_opt
                (fun o -> guard_key o = guard_key tr && o.Fsm.t_to <> tr.Fsm.t_to)
                rest
            with
            | Some o ->
                add
                  (error Ctrl ~code:"CTRL002" (State s.Fsm.sid)
                     "one guard leads to both state %d and state %d" tr.Fsm.t_to o.Fsm.t_to);
                dup_guards rest
            | None -> dup_guards rest)
      in
      dup_guards conds;
      let cond_nids =
        List.sort_uniq compare
          (List.filter_map
             (fun (tr : Fsm.transition) ->
               match tr.Fsm.t_guard with Fsm.G_cond (_, nid) -> Some nid | Fsm.G_always -> None)
             conds)
      in
      (match cond_nids with
      | _ :: _ :: _ ->
          add
            (error Ctrl ~code:"CTRL002" (State s.Fsm.sid)
               "transitions branch on %d different condition values" (List.length cond_nids))
      | [ nid ] when always = [] ->
          let has pol =
            List.exists
              (fun (tr : Fsm.transition) -> tr.Fsm.t_guard = Fsm.G_cond (pol, nid))
              conds
          in
          if not (has true && has false) then
            add
              (error Ctrl ~code:"CTRL004" (State s.Fsm.sid)
                 "branch on %%%d covers only the %s polarity" nid
                 (if has true then "true" else "false"))
      | _ -> ()))
    states;
  (* reachability over valid endpoints *)
  if is_state entry then begin
    let reached = Hashtbl.create 32 in
    let rec visit sid =
      if not (Hashtbl.mem reached sid) then begin
        Hashtbl.add reached sid ();
        List.iter
          (fun (tr : Fsm.transition) ->
            if tr.Fsm.t_from = sid && is_state tr.Fsm.t_to then visit tr.Fsm.t_to)
          transitions
      end
    in
    visit entry;
    List.iter
      (fun (s : Fsm.state) ->
        if not (Hashtbl.mem reached s.Fsm.sid) then
          add
            (warning Ctrl ~code:"CTRL001" (State s.Fsm.sid)
               "state (block %d, step %d) is unreachable from the entry" s.Fsm.block
               s.Fsm.step))
      states
  end
  else add (error Ctrl ~code:"CTRL005" (State entry) "entry is not a state of the machine");
  List.rev !ds

let check_fsm_t fsm =
  check_fsm ~states:(Fsm.states fsm) ~transitions:(Fsm.transitions fsm)
    ~entry:(Fsm.entry fsm)

let check_encoding ~states ~code =
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun (s : Fsm.state) ->
      let c = code s.Fsm.sid in
      match Hashtbl.find_opt seen c with
      | Some other ->
          Some
            (error Ctrl ~code:"CTRL006" (State s.Fsm.sid)
               "states %d and %d share code %d" other s.Fsm.sid c)
      | None ->
          Hashtbl.add seen c s.Fsm.sid;
          None)
    states

let check_next ~states ~transitions ~next =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter
    (fun (s : Fsm.state) ->
      let out = List.filter (fun (tr : Fsm.transition) -> tr.Fsm.t_from = s.Fsm.sid) transitions in
      let expect target conds =
        let got = next ~state:s.Fsm.sid ~conds in
        if got <> target then
          add
            (error Ctrl ~code:"CTRL007" (State s.Fsm.sid)
               "logic steps to state %d where the FSM transitions to state %d" got target)
      in
      match out with
      | [ { Fsm.t_guard = Fsm.G_always; t_to; _ } ] -> expect t_to []
      | _ ->
          List.iter
            (fun (tr : Fsm.transition) ->
              match tr.Fsm.t_guard with
              | Fsm.G_cond (pol, nid) ->
                  expect tr.Fsm.t_to [ ((s.Fsm.block, nid), pol) ]
              | Fsm.G_always -> ())
            out)
    states;
  List.rev !ds

let check_synth ctrl fsm =
  check_encoding ~states:(Fsm.states fsm) ~code:(Ctrl_synth.state_code ctrl)
  @ check_next ~states:(Fsm.states fsm) ~transitions:(Fsm.transitions fsm)
      ~next:(fun ~state ~conds -> Ctrl_synth.next_state ctrl ~state ~conds)

let check_microcode ~fields ~words =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let n_fields = List.length fields in
  Array.iteri
    (fun state word ->
      if List.length word <> n_fields then
        add
          (error Ctrl ~code:"CTRL008" (State state) "word has %d values for %d fields"
             (List.length word) n_fields)
      else
        List.iter2
          (fun (f : Microcode.field) v ->
            if v < 0 || v >= 1 lsl f.Microcode.fwidth then
              add
                (error Ctrl ~code:"CTRL008" (Field f.Microcode.fname)
                   "value %d of state %d does not fit %d bit%s" v state f.Microcode.fwidth
                   (if f.Microcode.fwidth = 1 then "" else "s")))
          fields word)
    words;
  if Array.length words > 1 then
    List.iteri
      (fun pos (f : Microcode.field) ->
        let values =
          Array.to_list words
          |> List.filter_map (fun w -> List.nth_opt w pos)
          |> List.sort_uniq compare
        in
        match values with
        | [ only ] ->
            add
              (info Ctrl ~code:"CTRL009" (Field f.Microcode.fname)
                 "field holds %d in every word (dead control field)" only)
        | _ -> ())
      fields;
  List.rev !ds
