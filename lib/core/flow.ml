open Hls_lang
open Hls_sched

exception Lint_failed of Hls_analysis.Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Lint_failed ds ->
        Some
          (Printf.sprintf "Lint_failed: %s"
             (String.concat "; " (List.map Hls_analysis.Diagnostic.to_string ds)))
    | _ -> None)

type scheduler =
  | Asap
  | List_path
  | List_mobility
  | Force_directed of int
  | Freedom
  | Branch_bound
  | Ilp_exact
  | Trans_parallel
  | Trans_serial

let scheduler_to_string = function
  | Asap -> "asap"
  | List_path -> "list/path"
  | List_mobility -> "list/mobility"
  | Force_directed k -> Printf.sprintf "force-directed+%d" k
  | Freedom -> "freedom"
  | Branch_bound -> "branch-and-bound"
  | Ilp_exact -> "0/1-programming"
  | Trans_parallel -> "transformational/parallel"
  | Trans_serial -> "transformational/serial"

let allocator_to_string = function
  | `Clique -> "clique"
  | `Greedy_min_mux -> "min-mux"
  | `Greedy_first_fit -> "first-fit"

type options = {
  passes : Hls_transform.Passes.pipeline;
  if_conversion : bool;
  scheduler : scheduler;
  limits : Limits.t;
  allocator : [ `Clique | `Greedy_min_mux | `Greedy_first_fit ];
  share_variables : bool;
  encoding : Hls_ctrl.Encoding.style;
  narrow : bool;
      (** shrink register/FU/mux widths to the range analysis' inferred
          widths; area-only (simulation evaluates at full precision) *)
  iterate : int;
      (** feedback-guided refinement iterations after the one-shot
          backend: 0 = off (the historical one-shot flow) *)
}

let default_options =
  {
    passes = Hls_transform.Passes.default_pipeline;
    if_conversion = false;
    scheduler = List_path;
    limits = Limits.two_fu;
    allocator = `Greedy_min_mux;
    share_variables = true;
    encoding = Hls_ctrl.Encoding.Binary;
    narrow = false;
    iterate = 0;
  }

type design = {
  options : options;
  prog : Typed.tprogram;
  cfg : Hls_cdfg.Cfg.t;
  sched : Cfg_sched.t;
  fu : Hls_alloc.Fu_alloc.t;
  regs : Hls_alloc.Reg_alloc.t;
  transfers : Hls_alloc.Interconnect.transfer list;
  datapath : Hls_rtl.Datapath.t;
  controller : Hls_ctrl.Ctrl_synth.t;
  estimate : Hls_rtl.Estimate.t;
}

let ports_of (p : Typed.tprogram) =
  List.map
    (fun (port : Ast.port) ->
      ( port.Ast.pname,
        (match port.Ast.pdir with Ast.Input -> `In | Ast.Output -> `Out),
        port.Ast.pty ))
    p.Typed.tports

let output_names p =
  List.filter_map (fun (n, d, _) -> if d = `Out then Some n else None) (ports_of p)

let block_scheduler options dfg =
  match options.scheduler with
  | Asap -> Hls_sched.Asap.schedule ~limits:options.limits dfg
  | List_path ->
      Hls_sched.List_sched.schedule ~priority:Hls_sched.List_sched.Path_length
        ~limits:options.limits dfg
  | List_mobility ->
      let dep = Hls_sched.Depgraph.of_dfg dfg in
      let deadline = max 1 (Hls_sched.Depgraph.critical_length dep) in
      Hls_sched.List_sched.schedule
        ~priority:(Hls_sched.List_sched.Mobility deadline) ~limits:options.limits dfg
  | Force_directed slack ->
      let dep = Hls_sched.Depgraph.of_dfg dfg in
      let deadline = max 1 (Hls_sched.Depgraph.critical_length dep + slack) in
      Hls_sched.Force_directed.schedule ~deadline dfg
  | Freedom -> Hls_sched.Freedom.schedule dfg
  | Branch_bound -> (
      match Hls_sched.Branch_bound.schedule ~limits:options.limits dfg with
      | Some s -> s
      | None -> Hls_sched.List_sched.schedule ~limits:options.limits dfg)
  | Ilp_exact -> (
      match Hls_sched.Ilp_sched.schedule ~limits:options.limits dfg with
      | Some s -> s
      | None -> Hls_sched.List_sched.schedule ~limits:options.limits dfg)
  | Trans_parallel -> Hls_sched.Transformational.from_parallel ~limits:options.limits dfg
  | Trans_serial -> Hls_sched.Transformational.from_serial ~limits:options.limits dfg

(* ---- staged pipeline ------------------------------------------------ *)

(* Every stage runs under a trace span carrying the option-point
   attributes the stage's result depends on; the span durations are
   what Timing.snapshot reports. *)

type compiled = { c_prog : Typed.tprogram }
type optimized = { o_prog : Typed.tprogram; o_cfg : Hls_cdfg.Cfg.t; o_outputs : string list }

let front ast = { c_prog = Typecheck.check (Inline.expand ast) }
let frontend_program ast = Hls_obs.Trace.with_span "frontend" (fun () -> front ast)
let frontend src = Hls_obs.Trace.with_span "frontend" (fun () -> front (Parser.parse src))
let compiled_of_typed tprog = { c_prog = tprog }

(* Fact oracle for guarded rewrite rules: range-proven non-negativity.
   Recomputed per optimizer consultation (rewrites renumber node ids)
   and only forced when a guarded rule actually asks — pipelines without
   the algebraic rules never pay for the analysis. *)
let nonneg_oracle ~ports cfg =
  let facts = Hls_analysis.Range.analyze ~ports cfg in
  fun bid nid ->
    match Hls_analysis.Range.node_range facts ~bid ~nid with
    | Some a -> a.Hls_analysis.Range.iv.Hls_util.Interval.lo >= 0
    | None -> false

(* Extraction cost derived from the RTL component library: cheapest
   component of each class, delays in picoseconds. *)
let component_cost =
  let by_class cls =
    List.filter (fun c -> c.Hls_rtl.Component.cls = cls) Hls_rtl.Component.library
  in
  let class_area cls ~width =
    match by_class cls with
    | [] -> 0
    | cs -> List.fold_left (fun acc c -> min acc (Hls_rtl.Component.area c ~width)) max_int cs
  in
  let class_delay_ps cls =
    match by_class cls with
    | [] -> 0
    | cs ->
        int_of_float
          (1000.0
          *. List.fold_left (fun acc c -> min acc c.Hls_rtl.Component.delay_ns) infinity cs)
  in
  { Hls_transform.Extract.class_area; class_delay_ps }

let midend ~passes ~if_conversion c =
  Hls_obs.Trace.with_span "midend"
    ~args:
      [
        ("passes", Hls_transform.Passes.pipeline_to_string passes);
        ("if_conversion", string_of_bool if_conversion);
      ]
    (fun () ->
      let prog = c.c_prog in
      let cfg0 = Hls_cdfg.Compile.compile prog in
      let outputs = output_names prog in
      let ports = ports_of prog in
      let optimize cfg =
        Hls_transform.Passes.run_spec ~nonneg:(nonneg_oracle ~ports) ~cost:component_cost
          ~outputs passes cfg
      in
      let cfg = optimize cfg0 in
      let cfg =
        if if_conversion then begin
          let cfg, changed = Hls_transform.If_convert.run cfg in
          if changed then optimize (fst (Hls_transform.Clean_cfg.merge cfg)) else cfg
        end
        else cfg
      in
      (* fact folding (aggressive and up): feed range-proven constants
         back into the folder — values the interval analysis pins down
         across blocks (per-block folding cannot see them) become
         constants, and proven branches become gotos *)
      let cfg =
        if passes.Hls_transform.Passes.fold_facts then begin
          let facts = Hls_analysis.Range.analyze ~ports cfg in
          let value bid nid =
            match Hls_analysis.Range.node_range facts ~bid ~nid with
            | Some a -> Hls_analysis.Range.is_singleton a
            | None -> None
          in
          if Hls_transform.Const_fold.apply_facts cfg ~value then begin
            Hls_obs.Trace.incr "range/folds";
            optimize cfg
          end
          else cfg
        end
        else cfg
      in
      { o_prog = prog; o_cfg = cfg; o_outputs = outputs })

(* time-constrained schedulers derive their own deadline and pay no
   attention to the resource limits in the options *)
let scheduler_ignores_limits = function
  | Force_directed _ | Freedom -> true
  | _ -> false

let schedule options o =
  Hls_obs.Trace.with_span "schedule"
    ~args:
      [
        ("scheduler", scheduler_to_string options.scheduler);
        ("limits", Limits.to_string options.limits);
      ]
    (fun () ->
      let sched = Cfg_sched.make o.o_cfg ~scheduler:(block_scheduler options) in
      (* for limit-ignoring schedulers verify only the dependence half of
         the contract, the full contract otherwise *)
      let verify_limits =
        if scheduler_ignores_limits options.scheduler then Limits.Unlimited
        else options.limits
      in
      (match Cfg_sched.verify verify_limits sched with
      | Ok () -> ()
      | Error e ->
          invalid_arg (Printf.sprintf "Flow: scheduler produced invalid schedule: %s" e));
      sched)

(* ---- design-level lint ------------------------------------------------ *)

let effective_limits options =
  if scheduler_ignores_limits options.scheduler then Limits.Unlimited else options.limits

(* The microcoded-control image of the design: one word per state, a
   register-enable bit per physical register plus an op-select and a
   branch flag (the same shape the microcode experiments cost). *)
let microcode_image (d : design) =
  let dp = d.datapath in
  let regs = dp.Hls_rtl.Datapath.regs in
  let n_regs = List.length regs in
  let fields =
    [
      { Hls_ctrl.Microcode.fname = "reg_en"; fwidth = max 1 n_regs };
      { Hls_ctrl.Microcode.fname = "fu_op"; fwidth = 5 };
      { Hls_ctrl.Microcode.fname = "branch"; fwidth = 1 };
    ]
  in
  let words =
    Array.init
      (Hls_ctrl.Fsm.n_states dp.Hls_rtl.Datapath.fsm)
      (fun sid ->
        let loads = Hls_rtl.Datapath.loads_in dp sid in
        let enables =
          List.mapi
            (fun i (r : Hls_rtl.Datapath.reg_def) ->
              if
                List.exists
                  (fun (l : Hls_rtl.Datapath.load) ->
                    l.Hls_rtl.Datapath.l_reg = r.Hls_rtl.Datapath.rname)
                  loads
              then 1 lsl i
              else 0)
            regs
          |> List.fold_left ( lor ) 0
        in
        let op_code =
          match Hls_rtl.Datapath.activities_in dp sid with
          | a :: _ -> Hashtbl.hash a.Hls_rtl.Datapath.a_op land 0x1F
          | [] -> 0
        in
        let branchy = if Hls_rtl.Datapath.cond_wire dp sid <> None then 1 else 0 in
        [ enables; op_code; branchy ])
  in
  (fields, words)

(* CTRL010: microcode fields addressing dead resources — a reg_en bit
   for a register the state never loads, or a branch flag in a state
   with no condition wire. *)
let lint_microcode (d : design) ~words =
  let open Hls_analysis.Diagnostic in
  let dp = d.datapath in
  let regs = Array.of_list dp.Hls_rtl.Datapath.regs in
  let ds = ref [] in
  Array.iteri
    (fun sid word ->
      match word with
      | [ enables; _; branchy ] ->
          for i = 0 to Array.length regs - 1 do
            let rname = regs.(i).Hls_rtl.Datapath.rname in
            let loaded =
              List.exists
                (fun (l : Hls_rtl.Datapath.load) -> l.Hls_rtl.Datapath.l_reg = rname)
                (Hls_rtl.Datapath.loads_in dp sid)
            in
            if enables land (1 lsl i) <> 0 && not loaded then
              ds :=
                error Ctrl ~code:"CTRL010" (Field "reg_en")
                  "state %d enables register %s which the datapath never loads there" sid
                  rname
                :: !ds
          done;
          if branchy <> 0 && Hls_rtl.Datapath.cond_wire dp sid = None then
            ds :=
              error Ctrl ~code:"CTRL010" (Field "branch")
                "state %d asserts the branch flag without a condition wire" sid
              :: !ds
      | _ -> ())
    words;
  List.rev !ds

let lint (d : design) =
  let outputs = output_names d.prog in
  let limits = effective_limits d.options in
  let fsm = d.datapath.Hls_rtl.Datapath.fsm in
  let fields, words = microcode_image d in
  Hls_analysis.Cdfg_check.check d.cfg
  @ Hls_analysis.Width_check.check ~ports:(ports_of d.prog) d.cfg
  @ Hls_analysis.Sched_check.check ~limits d.sched
  @ Hls_analysis.Alloc_check.check_fu d.sched d.fu
  @ Hls_analysis.Alloc_check.check_registers d.sched
      ~temp_track:(Hls_alloc.Reg_alloc.temp_track d.regs)
      ~groups:(Hls_alloc.Reg_alloc.variable_groups d.regs)
      ~outputs
  @ Hls_analysis.Alloc_check.check_transfers d.sched ~fu:d.fu ~regs:d.regs d.transfers
  @ Hls_rtl.Check.diagnostics d.datapath
  @ Hls_analysis.Ctrl_check.check_fsm_t fsm
  @ Hls_analysis.Ctrl_check.check_synth d.controller fsm
  @ Hls_analysis.Ctrl_check.check_microcode ~fields ~words
  @ lint_microcode d ~words
  |> Hls_analysis.Diagnostic.sort

let lint_check d =
  match Hls_analysis.Diagnostic.errors (lint d) with
  | [] -> ()
  | es -> raise (Lint_failed es)

(* The Result-returning pipeline is primary; the historical raising
   API below is a thin Lint_failed wrapper over it for legacy
   callers. *)

let complete_result ?(verify = false) options o ~sched =
  let prog = o.o_prog in
  let fu, regs, transfers =
    Hls_obs.Trace.with_span "allocate"
      ~args:[ ("allocator", allocator_to_string options.allocator) ]
      (fun () ->
        let fu =
          match options.allocator with
          | `Clique -> Hls_alloc.Fu_alloc.by_clique sched
          | `Greedy_min_mux -> Hls_alloc.Fu_alloc.greedy ~selection:`Min_mux sched
          | `Greedy_first_fit -> Hls_alloc.Fu_alloc.greedy ~selection:`First_fit sched
        in
        let port_names = List.map (fun (n, _, _) -> n) (ports_of prog) in
        let regs =
          Hls_alloc.Reg_alloc.run ~share_variables:options.share_variables
            ~ports:port_names ~outputs:o.o_outputs sched
        in
        let transfers = Hls_alloc.Interconnect.transfers sched ~fu ~regs in
        (fu, regs, transfers))
  in
  let node_bits =
    if options.narrow then (
      let facts = Hls_analysis.Range.analyze ~ports:(ports_of prog) o.o_cfg in
      Hls_obs.Trace.incr "range/narrowed_designs";
      Some (fun bid nid -> Hls_analysis.Range.node_bits facts ~bid ~nid))
    else None
  in
  let datapath_r =
    Hls_obs.Trace.with_span "bind" (fun () ->
        let datapath =
          Hls_rtl.Datapath.build ?node_bits sched ~fu ~regs ~ports:(ports_of prog)
        in
        match Hls_rtl.Check.run datapath with
        | Ok () -> Ok datapath
        | Error ds -> Error ds)
  in
  match datapath_r with
  | Error ds -> Error ds
  | Ok datapath ->
      let controller =
        Hls_obs.Trace.with_span "control"
          ~args:[ ("encoding", Hls_ctrl.Encoding.style_to_string options.encoding) ]
          (fun () ->
            Hls_ctrl.Ctrl_synth.synthesize ~style:options.encoding
              datapath.Hls_rtl.Datapath.fsm)
      in
      let estimate =
        Hls_obs.Trace.with_span "estimate" (fun () ->
            Hls_rtl.Estimate.estimate ~style:options.encoding ~ctrl:controller datapath
              sched)
      in
      let d =
        { options; prog; cfg = o.o_cfg; sched; fu; regs; transfers; datapath;
          controller; estimate }
      in
      Hls_obs.Trace.incr "flow/designs";
      if verify then
        Hls_obs.Trace.with_span "lint" (fun () ->
            match Hls_analysis.Diagnostic.errors (lint d) with
            | [] -> Ok d
            | es -> Error es)
      else Ok d

(* ---- feedback-guided iterative refinement ---------------------------- *)

(* Delay of one op under the component library — the weight used for
   register-to-register critical-chain extraction. Free ops never reach
   the depgraph, so [bind] always finds a component. *)
let refine_op_delay g nid =
  let op = Hls_cdfg.Dfg.op g nid in
  match Hls_rtl.Component.bind ~cls:(Hls_cdfg.Dfg.fu_class_of g nid) ~ops:[ op ] with
  | c -> c.Hls_rtl.Component.delay_ns
  | exception Not_found -> Hls_rtl.Component.free_op_delay_ns

(* Producers of the longest-lived temporaries: the values whose spans
   set the live-storage floor {!Explore.Bound} prices. Longest span
   first, ties on ascending node id. *)
let refine_live_pins cfg bid sched =
  let term_cond =
    match Hls_cdfg.Cfg.term cfg bid with
    | Hls_cdfg.Cfg.Branch (c, _, _) -> Some c
    | _ -> None
  in
  Hls_alloc.Lifetime.analyze sched ~term_cond
  |> List.filter_map (fun (vi : Hls_alloc.Lifetime.value_info) ->
         match vi.Hls_alloc.Lifetime.storage with
         | Hls_alloc.Lifetime.Temp iv ->
             let len = iv.Hls_util.Interval.hi - iv.Hls_util.Interval.lo in
             if len > 0 then Some (len, vi.Hls_alloc.Lifetime.nid) else None
         | _ -> None)
  |> List.sort (fun (l1, n1) (l2, n2) -> compare (-l1, n1) (-l2, n2))
  |> List.map snd

let refine_design options o seed =
  let signals =
    {
      Hls_sched.Refine.op_delay = refine_op_delay;
      live_pins = refine_live_pins o.o_cfg;
    }
  in
  let limits = effective_limits options in
  let evaluate cs =
    match Cfg_sched.verify limits cs with
    | Error _ -> None
    | Ok () -> (
        match complete_result ~verify:false options o ~sched:cs with
        | Ok d -> Some d
        | Error _ -> None)
  in
  let measure (d : design) =
    ( float_of_int d.estimate.Hls_rtl.Estimate.total_area,
      d.estimate.Hls_rtl.Estimate.latency_ns )
  in
  Hls_obs.Trace.with_span "refine"
    ~args:[ ("iterate", string_of_int options.iterate) ]
    (fun () ->
      Hls_sched.Refine.refine ~max_iters:options.iterate
        ~propose:(fun ~iter:_ d -> Hls_sched.Refine.extract signals d.sched)
        ~evaluate ~measure
        ~sched_of:(fun d -> d.sched)
        seed)

let backend_result ?(verify = false) options o =
  let sched = schedule options o in
  if options.iterate <= 0 then complete_result ~verify options o ~sched
  else
    match complete_result ~verify:false options o ~sched with
    | Error ds -> Error ds
    | Ok seed ->
        let d, _iters = refine_design options o seed in
        if verify then
          Hls_obs.Trace.with_span "lint" (fun () ->
              match Hls_analysis.Diagnostic.errors (lint d) with
              | [] -> Ok d
              | es -> Error es)
        else Ok d

let run ?verify options tprog =
  backend_result ?verify options
    (midend ~passes:options.passes ~if_conversion:options.if_conversion
       (compiled_of_typed tprog))

let synthesize_program_result ?(options = default_options) ?verify ast =
  backend_result ?verify options
    (midend ~passes:options.passes ~if_conversion:options.if_conversion
       (frontend_program ast))

let synthesize_result ?(options = default_options) ?verify src =
  backend_result ?verify options
    (midend ~passes:options.passes ~if_conversion:options.if_conversion
       (frontend src))

(* ---- legacy raising wrappers ---------------------------------------- *)

let unwrap = function Ok d -> d | Error ds -> raise (Lint_failed ds)
let complete ?verify options o ~sched = unwrap (complete_result ?verify options o ~sched)
let backend ?verify options o = unwrap (backend_result ?verify options o)

let synthesize_program ?options ?verify ast =
  unwrap (synthesize_program_result ?options ?verify ast)

let synthesize ?options ?verify src = unwrap (synthesize_result ?options ?verify src)

let cosim_design d =
  {
    Hls_sim.Cosim.d_prog = d.prog;
    Hls_sim.Cosim.d_cfg = d.cfg;
    Hls_sim.Cosim.d_datapath = d.datapath;
  }

let verify ?runs d = Hls_sim.Cosim.check_random ?runs (cosim_design d)
