open Hls_lang
open Hls_sched

type scheduler =
  | Asap
  | List_path
  | List_mobility
  | Force_directed of int
  | Freedom
  | Branch_bound
  | Ilp_exact
  | Trans_parallel
  | Trans_serial

let scheduler_to_string = function
  | Asap -> "asap"
  | List_path -> "list/path"
  | List_mobility -> "list/mobility"
  | Force_directed k -> Printf.sprintf "force-directed+%d" k
  | Freedom -> "freedom"
  | Branch_bound -> "branch-and-bound"
  | Ilp_exact -> "0/1-programming"
  | Trans_parallel -> "transformational/parallel"
  | Trans_serial -> "transformational/serial"

type options = {
  opt_level : [ `None | `Standard | `Aggressive ];
  if_conversion : bool;
  scheduler : scheduler;
  limits : Limits.t;
  allocator : [ `Clique | `Greedy_min_mux | `Greedy_first_fit ];
  share_variables : bool;
  encoding : Hls_ctrl.Encoding.style;
}

let default_options =
  {
    opt_level = `Standard;
    if_conversion = false;
    scheduler = List_path;
    limits = Limits.two_fu;
    allocator = `Greedy_min_mux;
    share_variables = true;
    encoding = Hls_ctrl.Encoding.Binary;
  }

type design = {
  options : options;
  prog : Typed.tprogram;
  cfg : Hls_cdfg.Cfg.t;
  sched : Cfg_sched.t;
  fu : Hls_alloc.Fu_alloc.t;
  regs : Hls_alloc.Reg_alloc.t;
  transfers : Hls_alloc.Interconnect.transfer list;
  datapath : Hls_rtl.Datapath.t;
  controller : Hls_ctrl.Ctrl_synth.t;
  estimate : Hls_rtl.Estimate.t;
}

let ports_of (p : Typed.tprogram) =
  List.map
    (fun (port : Ast.port) ->
      ( port.Ast.pname,
        (match port.Ast.pdir with Ast.Input -> `In | Ast.Output -> `Out),
        port.Ast.pty ))
    p.Typed.tports

let output_names p =
  List.filter_map (fun (n, d, _) -> if d = `Out then Some n else None) (ports_of p)

let block_scheduler options dfg =
  match options.scheduler with
  | Asap -> Hls_sched.Asap.schedule ~limits:options.limits dfg
  | List_path ->
      Hls_sched.List_sched.schedule ~priority:Hls_sched.List_sched.Path_length
        ~limits:options.limits dfg
  | List_mobility ->
      let dep = Hls_sched.Depgraph.of_dfg dfg in
      let deadline = max 1 (Hls_sched.Depgraph.critical_length dep) in
      Hls_sched.List_sched.schedule
        ~priority:(Hls_sched.List_sched.Mobility deadline) ~limits:options.limits dfg
  | Force_directed slack ->
      let dep = Hls_sched.Depgraph.of_dfg dfg in
      let deadline = max 1 (Hls_sched.Depgraph.critical_length dep + slack) in
      Hls_sched.Force_directed.schedule ~deadline dfg
  | Freedom -> Hls_sched.Freedom.schedule dfg
  | Branch_bound -> (
      match Hls_sched.Branch_bound.schedule ~limits:options.limits dfg with
      | Some s -> s
      | None -> Hls_sched.List_sched.schedule ~limits:options.limits dfg)
  | Ilp_exact -> (
      match Hls_sched.Ilp_sched.schedule ~limits:options.limits dfg with
      | Some s -> s
      | None -> Hls_sched.List_sched.schedule ~limits:options.limits dfg)
  | Trans_parallel -> Hls_sched.Transformational.from_parallel ~limits:options.limits dfg
  | Trans_serial -> Hls_sched.Transformational.from_serial ~limits:options.limits dfg

(* ---- staged pipeline ------------------------------------------------ *)

type compiled = { c_ast : Ast.program; c_prog : Typed.tprogram }
type optimized = { o_prog : Typed.tprogram; o_cfg : Hls_cdfg.Cfg.t; o_outputs : string list }

let front ast = { c_ast = ast; c_prog = Typecheck.check (Inline.expand ast) }
let frontend_program ast = Timing.time "frontend" (fun () -> front ast)
let frontend src = Timing.time "frontend" (fun () -> front (Parser.parse src))

let midend ~opt_level ~if_conversion c =
  Timing.time "midend" (fun () ->
      let prog = c.c_prog in
      let cfg0 = Hls_cdfg.Compile.compile prog in
      let outputs = output_names prog in
      let cfg = Hls_transform.Passes.optimize ~level:opt_level ~outputs cfg0 in
      let cfg =
        if if_conversion then begin
          let cfg, changed = Hls_transform.If_convert.run cfg in
          if changed then
            Hls_transform.Passes.optimize ~level:opt_level ~outputs
              (fst (Hls_transform.Clean_cfg.merge cfg))
          else cfg
        end
        else cfg
      in
      { o_prog = prog; o_cfg = cfg; o_outputs = outputs })

(* time-constrained schedulers derive their own deadline and pay no
   attention to the resource limits in the options *)
let scheduler_ignores_limits = function
  | Force_directed _ | Freedom -> true
  | _ -> false

let schedule options o =
  Timing.time "schedule" (fun () ->
      let sched = Cfg_sched.make o.o_cfg ~scheduler:(block_scheduler options) in
      (* for limit-ignoring schedulers verify only the dependence half of
         the contract, the full contract otherwise *)
      let verify_limits =
        if scheduler_ignores_limits options.scheduler then Limits.Unlimited
        else options.limits
      in
      (match Cfg_sched.verify verify_limits sched with
      | Ok () -> ()
      | Error e ->
          invalid_arg (Printf.sprintf "Flow: scheduler produced invalid schedule: %s" e));
      sched)

let complete options o ~sched =
  let prog = o.o_prog in
  let fu, regs, transfers =
    Timing.time "allocate" (fun () ->
        let fu =
          match options.allocator with
          | `Clique -> Hls_alloc.Fu_alloc.by_clique sched
          | `Greedy_min_mux -> Hls_alloc.Fu_alloc.greedy ~selection:`Min_mux sched
          | `Greedy_first_fit -> Hls_alloc.Fu_alloc.greedy ~selection:`First_fit sched
        in
        let port_names = List.map (fun (n, _, _) -> n) (ports_of prog) in
        let regs =
          Hls_alloc.Reg_alloc.run ~share_variables:options.share_variables
            ~ports:port_names ~outputs:o.o_outputs sched
        in
        let transfers = Hls_alloc.Interconnect.transfers sched ~fu ~regs in
        (fu, regs, transfers))
  in
  let datapath =
    Timing.time "bind" (fun () ->
        let datapath = Hls_rtl.Datapath.build sched ~fu ~regs ~ports:(ports_of prog) in
        (match Hls_rtl.Check.run datapath with
        | Ok () -> ()
        | Error es ->
            failwith
              (Printf.sprintf "Flow: datapath checks failed: %s" (String.concat "; " es)));
        datapath)
  in
  let controller =
    Timing.time "control" (fun () ->
        Hls_ctrl.Ctrl_synth.synthesize ~style:options.encoding datapath.Hls_rtl.Datapath.fsm)
  in
  let estimate =
    Timing.time "estimate" (fun () ->
        Hls_rtl.Estimate.estimate ~style:options.encoding ~ctrl:controller datapath sched)
  in
  { options; prog; cfg = o.o_cfg; sched; fu; regs; transfers; datapath; controller; estimate }

let backend options o = complete options o ~sched:(schedule options o)

let synthesize_program ?(options = default_options) ast =
  backend options
    (midend ~opt_level:options.opt_level ~if_conversion:options.if_conversion
       (frontend_program ast))

let synthesize ?(options = default_options) src =
  backend options
    (midend ~opt_level:options.opt_level ~if_conversion:options.if_conversion
       (frontend src))

let cosim_design d =
  {
    Hls_sim.Cosim.d_prog = d.prog;
    Hls_sim.Cosim.d_cfg = d.cfg;
    Hls_sim.Cosim.d_datapath = d.datapath;
  }

let verify ?runs d = Hls_sim.Cosim.check_random ?runs (cosim_design d)
