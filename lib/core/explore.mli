(** Design-space exploration — "a good synthesis system can produce
    several designs for the same specification in a reasonable amount of
    time [to] explore different trade-offs between cost, speed, power".

    Sweeps resource limits, schedulers, or their cross product over one
    specification, estimates each design, and reports the area/latency
    Pareto frontier. Sweeps are evaluated through a {!Dse} engine on
    the Result API — memoized and optionally on worker domains per
    [config.jobs] — and return points in sweep order regardless of job
    count. Pass [engine] to share one cache across several sweeps of
    the same source (the engine's own source {e and config} are used —
    [config] only shapes the engine a sweep creates itself; it must
    wrap the same specification). A point that fails verification
    (possible only under an engine configured with [verify]) raises
    {!Flow.Lint_failed}. *)

type point = {
  label : string;
  options : Flow.options;
  design : Flow.design;
  area : int;
  latency_ns : float;
}

val default_limits : Hls_sched.Limits.t list
(** Serial, 2, 3 and 4 general units, and a 1-ALU/1-mul/1-div split. *)

val default_schedulers : Flow.scheduler list

val sweep_limits :
  ?config:Dse.config ->
  ?engine:Dse.t ->
  ?base:Flow.options ->
  ?limits:Hls_sched.Limits.t list ->
  string ->
  point list
(** Synthesize the BSL source under each resource limit. *)

val sweep_schedulers :
  ?config:Dse.config ->
  ?engine:Dse.t ->
  ?base:Flow.options ->
  ?schedulers:Flow.scheduler list ->
  string ->
  point list

val sweep :
  ?config:Dse.config ->
  ?engine:Dse.t ->
  ?base:Flow.options ->
  ?schedulers:Flow.scheduler list ->
  ?limits:Hls_sched.Limits.t list ->
  ?pipelines:Hls_transform.Passes.pipeline list ->
  ?iterates:int list ->
  string ->
  point list
(** Full iterates × pipelines × scheduler × limits cross product
    (default 1 × 1 × 8 × 5 = 40 points), labelled
    ["scheduler @ limits"] — with [" / pipeline"] appended when more
    than one pipeline sweeps and [" / iterate N"] when more than one
    refinement bound does. [pipelines] defaults to just the base
    options' spec, [iterates] to just the base options' [iterate], so
    a sweep can compare feedback-refined points against every one-shot
    scheduler by passing e.g. [~iterates:[0; 3]]. *)

val cross :
  ?pipelines:Hls_transform.Passes.pipeline list ->
  ?iterates:int list ->
  base:Flow.options ->
  schedulers:Flow.scheduler list ->
  limits:Hls_sched.Limits.t list ->
  unit ->
  (string * Flow.options) list
(** The labelled option points a {!sweep} evaluates. *)

type pruned_point = {
  pr_label : string;
  pr_options : Flow.options;
  pr_area_lb : int;  (** sound area lower bound the point was ranked on *)
  pr_latency_lb : float;  (** sound latency lower bound *)
}

type pruned_sweep = {
  evaluated : point list;
      (** points promoted through the backend, in sweep order — a
          superset of the frontier, so [pareto evaluated] equals the
          exhaustive sweep's frontier exactly *)
  pruned : pruned_point list;  (** points discarded before their backend ran *)
  rounds : int;
      (** backend verdicts incorporated in flight (promoted class
          representatives) *)
}

val sweep_pruned :
  ?config:Dse.config ->
  ?engine:Dse.t ->
  ?base:Flow.options ->
  ?schedulers:Flow.scheduler list ->
  ?limits:Hls_sched.Limits.t list ->
  ?pipelines:Hls_transform.Passes.pipeline list ->
  ?iterates:int list ->
  string ->
  pruned_sweep
(** The scheduler × limits cross product under pareto-guided in-flight
    pruning. Every point runs the cheap stages (frontend/midend/
    schedule, memoized) and gets {e sound} area/latency lower bounds
    derived from the schedule alone — coupled per-class unit + operand
    steering floor, peak live-value storage, state register,
    cheapest-component cycle floor (for [iterate > 0] points, their
    schedule-free counterparts — see {!Bound.compute}). Backend classes
    are then decided one at a time, most promising bound-score first,
    with up to a fixed window of promotions evaluating through the
    shared {!Hls_util.Pool} in flight: each backend verdict is
    incorporated the moment its future is awaited (oldest first, in
    submission order — never when it happens to land, keeping every
    decision and counter identical at any job count), and a pending
    point is pruned as soon as an evaluated design dominates its bounds
    (or its exact value, once a point sharing its backend cache key has
    been evaluated). Because the bounds underestimate the true estimate
    componentwise and dominance is monotone and transitive, a pruned
    point can never be on the frontier: [pareto evaluated] is
    bit-identical to [pareto] of the exhaustive {!sweep}. Reports
    [dse/points_evaluated], [dse/pruned_points] (their sum is the point
    count) and [dse/prune_rounds] through {!Hls_obs.Trace}. *)

(** Sound area/latency lower bounds computed from the cheap stages
    (schedule + CFG) alone — what {!sweep_pruned} ranks and prunes on.
    Exposed so tests can assert soundness ([compute] never exceeds the
    true estimate) directly. *)
module Bound : sig
  val fu_area_lb :
    node_w:(Hls_cdfg.Dfg.t -> int -> int -> int) -> Hls_sched.Cfg_sched.t -> int
  (** Per-class peak demand: the larger of the busiest step's
      width-aware cheapest-component sum (concurrent operations run on
      distinct units, each at least as wide as its own operation) and
      peak concurrency × cheapest component at the narrowest class
      width. [node_w g bid nid] is the operation's storage width —
      declared type width normally, the range-inferred width under
      [narrow] (see {!compute}). *)

  val port_reg_area : Flow.optimized -> Hls_sched.Cfg_sched.t -> int
  (** Registers of every port read or written in the CFG — ports are
      never shared (and never narrowed), so these exist at their
      declared widths at every step boundary. *)

  val live_reg_area :
    node_w:(Hls_cdfg.Dfg.t -> int -> int -> int) ->
    Flow.optimized ->
    Hls_sched.Cfg_sched.t ->
    int
  (** Peak simultaneous {e non-port} stored-value footprint over all
      step boundaries ({!Hls_alloc.Lifetime}); adds to
      {!port_reg_area}. *)

  val reg_mux_area_lb :
    node_w:(Hls_cdfg.Dfg.t -> int -> int -> int) ->
    Flow.optimized ->
    Hls_sched.Cfg_sched.t ->
    int
  (** Register-input steering floor: every distinct constant assigned
      to a variable is a distinct wire on its register's load mux (plus
      one wire when any assignment is computed). Port registers are
      dedicated, so their demands add; non-port variables may share
      registers, so only the largest single demand counts. *)

  val fu_input_mux_area_lb :
    node_w:(Hls_cdfg.Dfg.t -> int -> int -> int) ->
    schedule_free:bool ->
    Hls_sched.Cfg_sched.t ->
    int
  (** Coupled functional-unit + operand-steering floor, per class: the
      distinct constant operands at each argument position are
      dedicated wires (plus one for all computed/register operands
      together — those may merge), split across at most one input mux
      per unit; more units absorb more wires but each costs at least
      the cheapest class component, so the floor is the minimum over
      the unit count of the coupled sum. Subsumes {!fu_area_lb} (the
      per-class schedule floor is the FU term's lower envelope) unless
      [schedule_free], which drops schedule-derived terms so the floor
      stays sound for {e any} legal schedule of the CFG — what an
      [iterate > 0] point may ship after refinement. What {!compute}
      uses in place of {!fu_area_lb}. *)

  val ctrl_area_lb : Flow.options -> Hls_sched.Cfg_sched.t -> int
  (** The controller's state register under the point's encoding. *)

  val cycle_lb : Hls_sched.Cfg_sched.t -> float
  (** Register read + one mux level + the slowest operation's cheapest
      class component. *)

  val compute : Flow.options -> Flow.optimized -> Hls_sched.Cfg_sched.t -> int * float
  (** [(area_lb, latency_lb)] — componentwise under the true
      {!Hls_rtl.Estimate} of any backend completion of the point. Under
      [options.narrow] the width-dependent floors use the range
      analysis' inferred widths (the same facts the datapath narrowing
      consumes), so the bounds stay sound {e and} tight for narrowed
      backends. For [options.iterate > 0] the schedule-derived floors
      (per-class peak demand, live storage, state count, step count)
      are replaced by schedule-free ones — critical-chain step/state
      floors, presence-only unit floors — because refinement may ship a
      different schedule than the one ranked here; the bounds then hold
      for the refined design too. *)
end

val dominates : point -> point -> bool
(** [dominates a b]: [a] is no worse in both coordinates and strictly
    better in one. *)

val frontier_mask : (int * float) list -> bool list
(** [frontier_mask values] marks, for each (area, latency) pair, whether
    no other pair dominates it — the Pareto membership test behind
    {!pareto} and {!table}, exposed for property tests. Sort-based,
    O(n log n). *)

val pareto : point list -> point list
(** Points not dominated in (area, latency), sorted by area.
    O(n log n) via {!frontier_mask}. *)

val table : ?timings:bool -> point list -> string
(** Rendered comparison table (label, FUs, steps, area, latency, Pareto
    marker). Frontier membership is decided by the dominance criterion
    (structural), so points coming from a shared design cache are marked
    correctly. [timings:true] appends the {!Timing.snapshot} per-stage
    breakdown accumulated so far. *)
