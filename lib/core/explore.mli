(** Design-space exploration — "a good synthesis system can produce
    several designs for the same specification in a reasonable amount of
    time [to] explore different trade-offs between cost, speed, power".

    Sweeps resource limits, schedulers, or their cross product over one
    specification, estimates each design, and reports the area/latency
    Pareto frontier. Sweeps are evaluated through a {!Dse} engine on
    the Result API — memoized and optionally on worker domains per
    [config.jobs] — and return points in sweep order regardless of job
    count. Pass [engine] to share one cache across several sweeps of
    the same source (the engine's own source {e and config} are used —
    [config] only shapes the engine a sweep creates itself; it must
    wrap the same specification). A point that fails verification
    (possible only under an engine configured with [verify]) raises
    {!Flow.Lint_failed}. *)

type point = {
  label : string;
  options : Flow.options;
  design : Flow.design;
  area : int;
  latency_ns : float;
}

val default_limits : Hls_sched.Limits.t list
(** Serial, 2, 3 and 4 general units, and a 1-ALU/1-mul/1-div split. *)

val default_schedulers : Flow.scheduler list

val sweep_limits :
  ?config:Dse.config ->
  ?engine:Dse.t ->
  ?base:Flow.options ->
  ?limits:Hls_sched.Limits.t list ->
  string ->
  point list
(** Synthesize the BSL source under each resource limit. *)

val sweep_schedulers :
  ?config:Dse.config ->
  ?engine:Dse.t ->
  ?base:Flow.options ->
  ?schedulers:Flow.scheduler list ->
  string ->
  point list

val sweep :
  ?config:Dse.config ->
  ?engine:Dse.t ->
  ?base:Flow.options ->
  ?schedulers:Flow.scheduler list ->
  ?limits:Hls_sched.Limits.t list ->
  string ->
  point list
(** Full scheduler × limits cross product (default 8 × 5 = 40 points),
    labelled ["scheduler @ limits"]. *)

val pareto : point list -> point list
(** Points not dominated in (area, latency), sorted by area. *)

val table : ?timings:bool -> point list -> string
(** Rendered comparison table (label, FUs, steps, area, latency, Pareto
    marker). Frontier membership is decided by the dominance criterion
    (structural), so points coming from a shared design cache are marked
    correctly. [timings:true] appends the {!Timing.snapshot} per-stage
    breakdown accumulated so far. *)
