(** Per-stage wall-clock accumulators for the synthesis flow.

    {!Flow} wraps each pipeline stage ([frontend], [midend], [schedule],
    [allocate], [bind], [control], [estimate]) in {!time}, so after a run
    — serial or across worker domains — {!snapshot} yields the time
    breakdown that {!Explore.table} and the DSE benchmark report. The
    accumulators are global and mutex-guarded; {!reset} starts a fresh
    measurement window. *)

type entry = { stage : string; seconds : float; calls : int }

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration to the stage's
    accumulator (also on exception). *)

val record : string -> float -> unit
(** Add raw seconds to a stage (for externally-timed sections). *)

val reset : unit -> unit

val snapshot : unit -> entry list
(** Accumulated entries in first-recorded order. *)

val pp : Format.formatter -> entry list -> unit
