(** Per-stage wall-clock accumulators for the synthesis flow — a thin
    view over {!Hls_obs.Trace}'s always-on duration accumulators.

    {!Flow} wraps each pipeline stage ([frontend], [midend], [schedule],
    [allocate], [bind], [control], [estimate]) in a trace span, so after
    a run — serial or across worker domains — {!snapshot} yields the
    time breakdown that {!Explore.table} and the DSE benchmark report.
    {!reset} starts a fresh measurement window without touching the
    trace's counters or span ring ({!Hls_obs.Trace.reset} clears
    those). *)

type entry = { stage : string; seconds : float; calls : int }

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall-clock duration to the stage's
    accumulator (also on exception). Equivalent to
    {!Hls_obs.Trace.with_span} with no attributes. *)

val record : string -> float -> unit
(** Add raw seconds to a stage (for externally-timed sections). *)

val reset : unit -> unit

val snapshot : unit -> entry list
(** Accumulated entries in first-recorded order. *)

val pp : Format.formatter -> entry list -> unit
