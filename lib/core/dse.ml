open Hls_lang
open Hls_sched

(* Memo layers, outermost first. Each key is exactly the set of option
   fields the stage's result depends on:

   frontend  ()                                            — per engine
   midend    (opt_level, if_conversion)
   schedule  midend key + (scheduler, canonical limits)
   backend   midend key + (schedule digest, allocator,
                           share_variables, encoding)

   The schedule layer canonicalizes the limits to [Unlimited] for
   schedulers that ignore them (see {!Flow.scheduler_ignores_limits}),
   so e.g. force-directed runs once across a whole limits sweep. The
   backend layer keys on the schedule's {e content} rather than on the
   scheduler that produced it: two option points whose schedulers place
   every operation identically share one allocation/binding/control
   synthesis, and the cached design is rewrapped with the point's own
   options.

   Memoization is single-flight: a slot is either [Done] or [Pending],
   and a worker that finds a key pending blocks on the engine's
   condition variable until the computing worker publishes the value.
   Exactly one compute ever runs per key, which is what makes every
   kernel counter in Hls_obs.Trace — and the hit/miss totals below — a
   deterministic function of the evaluated points, independent of the
   worker count. *)

type mkey = [ `None | `Standard | `Aggressive ] * bool
type skey = mkey * Flow.scheduler * Limits.t

type bkey =
  mkey
  * string (* Cfg_sched.digest *)
  * [ `Clique | `Greedy_min_mux | `Greedy_first_fit ]
  * bool
  * Hls_ctrl.Encoding.style

type config = { jobs : int; verify : bool; memoize : bool }

let default_config = { jobs = 1; verify = false; memoize = true }

type layer = { hits : int; misses : int }
type stats = { frontend : layer; midend : layer; schedule : layer; backend : layer }

type counter = { mutable c_hits : int; mutable c_misses : int }
type 'v slot = Done of 'v | Pending

type t = {
  lock : Mutex.t;
  done_cond : Condition.t;
  config : config;
  source : [ `Src of string | `Ast of Ast.program ];
  front : (unit, Flow.compiled slot) Hashtbl.t;
  mid : (mkey, Flow.optimized slot) Hashtbl.t;
  scheds : (skey, Cfg_sched.t slot) Hashtbl.t;
  backs :
    (bkey, (Flow.design, Hls_analysis.Diagnostic.t list) result slot) Hashtbl.t;
  n_front : counter;
  n_mid : counter;
  n_sched : counter;
  n_back : counter;
}

let make_engine config source =
  {
    lock = Mutex.create ();
    done_cond = Condition.create ();
    config;
    source;
    front = Hashtbl.create 1;
    mid = Hashtbl.create 8;
    scheds = Hashtbl.create 64;
    backs = Hashtbl.create 64;
    n_front = { c_hits = 0; c_misses = 0 };
    n_mid = { c_hits = 0; c_misses = 0 };
    n_sched = { c_hits = 0; c_misses = 0 };
    n_back = { c_hits = 0; c_misses = 0 };
  }

let create ?(config = default_config) src = make_engine config (`Src src)
let create_program ?(config = default_config) ast = make_engine config (`Ast ast)
let config t = t.config

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.front;
  Hashtbl.reset t.mid;
  Hashtbl.reset t.scheds;
  Hashtbl.reset t.backs;
  List.iter
    (fun c ->
      c.c_hits <- 0;
      c.c_misses <- 0)
    [ t.n_front; t.n_mid; t.n_sched; t.n_back ];
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let layer c = { hits = c.c_hits; misses = c.c_misses } in
  let s =
    {
      frontend = layer t.n_front;
      midend = layer t.n_mid;
      schedule = layer t.n_sched;
      backend = layer t.n_back;
    }
  in
  Mutex.unlock t.lock;
  s

let pp_stats ppf s =
  let line name l = Format.fprintf ppf "%-9s %4d hits %4d misses@." name l.hits l.misses in
  line "frontend" s.frontend;
  line "midend" s.midend;
  line "schedule" s.schedule;
  line "backend" s.backend

(* Single-flight memoization. The first prober of a key installs
   [Pending], computes unlocked, publishes [Done] and broadcasts; later
   probers of the same key count a hit and block until the value lands.
   If the computing worker dies, the slot is removed, waiters are woken,
   and the first to notice takes the compute over. Hit/miss counts are
   decided at a probe's first look, so totals are identical for any
   worker count: one miss per unique key, hits for every other probe. *)
let memo t name ctr tbl key compute =
  let bump_trace hit =
    Hls_obs.Trace.incr
      (if hit then "dse/" ^ name ^ ".hits" else "dse/" ^ name ^ ".misses")
  in
  if not t.config.memoize then begin
    Mutex.lock t.lock;
    ctr.c_misses <- ctr.c_misses + 1;
    Mutex.unlock t.lock;
    bump_trace false;
    compute ()
  end
  else begin
    (* called with [t.lock] held, returns with it released *)
    let compute_slot () =
      Hashtbl.replace tbl key Pending;
      Mutex.unlock t.lock;
      match compute () with
      | v ->
          Mutex.lock t.lock;
          Hashtbl.replace tbl key (Done v);
          Condition.broadcast t.done_cond;
          Mutex.unlock t.lock;
          v
      | exception e ->
          Mutex.lock t.lock;
          Hashtbl.remove tbl key;
          Condition.broadcast t.done_cond;
          Mutex.unlock t.lock;
          raise e
    in
    let rec await () =
      match Hashtbl.find_opt tbl key with
      | Some (Done v) ->
          Mutex.unlock t.lock;
          v
      | Some Pending ->
          Condition.wait t.done_cond t.lock;
          await ()
      | None -> compute_slot ()
    in
    Mutex.lock t.lock;
    match Hashtbl.find_opt tbl key with
    | Some (Done v) ->
        ctr.c_hits <- ctr.c_hits + 1;
        Mutex.unlock t.lock;
        bump_trace true;
        v
    | Some Pending ->
        ctr.c_hits <- ctr.c_hits + 1;
        let v = await () in
        bump_trace true;
        v
    | None ->
        ctr.c_misses <- ctr.c_misses + 1;
        let v = compute_slot () in
        bump_trace false;
        v
  end

let point_args (options : Flow.options) =
  [
    ("opt_level", Flow.opt_level_to_string options.opt_level);
    ("if_conversion", string_of_bool options.if_conversion);
    ("scheduler", Flow.scheduler_to_string options.scheduler);
    ("limits", Limits.to_string options.limits);
    ("allocator", Flow.allocator_to_string options.allocator);
    ("encoding", Hls_ctrl.Encoding.style_to_string options.encoding);
  ]

(* The cheap front of the staged flow: frontend, midend and scheduling
   through the memo layers. Shared verbatim between [eval_result] and
   [eval_cheap] so a pruned sweep's ranking pass and the later full
   evaluation of the survivors probe exactly the same cache keys. *)
let eval_stages t (options : Flow.options) =
  let c =
    memo t "frontend" t.n_front t.front () (fun () ->
        match t.source with
        | `Src s -> Flow.frontend s
        | `Ast a -> Flow.frontend_program a)
  in
  let mkey = (options.opt_level, options.if_conversion) in
  let o =
    memo t "midend" t.n_mid t.mid mkey (fun () ->
        Flow.midend ~opt_level:options.opt_level
          ~if_conversion:options.if_conversion c)
  in
  let canonical_limits =
    if Flow.scheduler_ignores_limits options.scheduler then Limits.Unlimited
    else options.limits
  in
  let skey = (mkey, options.scheduler, canonical_limits) in
  let sched =
    memo t "schedule" t.n_sched t.scheds skey (fun () -> Flow.schedule options o)
  in
  (mkey, o, sched)

let eval_cheap t (options : Flow.options) =
  Hls_obs.Trace.with_span "dse/cheap" ~args:(point_args options) (fun () ->
      let _, o, sched = eval_stages t options in
      (o, sched))

let eval_result t (options : Flow.options) =
  Hls_obs.Trace.with_span "dse/point" ~args:(point_args options) (fun () ->
      Hls_obs.Trace.incr "dse/points";
      let mkey, o, sched = eval_stages t options in
      let bkey =
        ( mkey,
          Cfg_sched.digest sched,
          options.allocator,
          options.share_variables,
          options.encoding )
      in
      match
        memo t "backend" t.n_back t.backs bkey (fun () ->
            Flow.complete_result options o ~sched)
      with
      | Error ds ->
          (* a structural netlist failure is as cacheable as a design:
             every point probing this backend key reports the same
             diagnostics *)
          Error ds
      | Ok d ->
          (* lint the rewrapped design, outside the memo: a backend cache
             hit is verified under the point's own options exactly like a
             fresh run *)
          let d = { d with Flow.options } in
          if t.config.verify then
            Hls_obs.Trace.with_span "lint" (fun () ->
                match Hls_analysis.Diagnostic.errors (Flow.lint d) with
                | [] -> Ok d
                | es -> Error es)
          else Ok d)

let eval t options =
  match eval_result t options with Ok d -> d | Error ds -> raise (Flow.Lint_failed ds)

let run_result t options_list =
  (* jobs as configured; the shared pool adapts parallelism to the
     machine (serial fallback on boxes without spare cores), and the
     single-flight cache makes counter totals worker-count independent
     either way *)
  Hls_util.Pool.map ~jobs:t.config.jobs (eval_result t) options_list

let run t options_list =
  List.map
    (function Ok d -> d | Error ds -> raise (Flow.Lint_failed ds))
    (run_result t options_list)
