open Hls_lang
open Hls_sched

(* Memo layers, outermost first. Each key is exactly the set of option
   fields the stage's result depends on:

   frontend  ()                                            — per engine
   midend    (opt_level, if_conversion)
   schedule  midend key + (scheduler, canonical limits)
   backend   midend key + (schedule digest, allocator,
                           share_variables, encoding)

   The schedule layer canonicalizes the limits to [Unlimited] for
   schedulers that ignore them (see {!Flow.scheduler_ignores_limits}),
   so e.g. force-directed runs once across a whole limits sweep. The
   backend layer keys on the schedule's {e content} rather than on the
   scheduler that produced it: two option points whose schedulers place
   every operation identically share one allocation/binding/control
   synthesis, and the cached design is rewrapped with the point's own
   options. *)

type mkey = [ `None | `Standard | `Aggressive ] * bool
type skey = mkey * Flow.scheduler * Limits.t

type bkey =
  mkey
  * string (* Cfg_sched.digest *)
  * [ `Clique | `Greedy_min_mux | `Greedy_first_fit ]
  * bool
  * Hls_ctrl.Encoding.style

type layer = { hits : int; misses : int }
type stats = { frontend : layer; midend : layer; schedule : layer; backend : layer }

type counter = { mutable c_hits : int; mutable c_misses : int }

type t = {
  lock : Mutex.t;
  memoize : bool;
  source : [ `Src of string | `Ast of Ast.program ];
  front : (unit, Flow.compiled) Hashtbl.t;
  mid : (mkey, Flow.optimized) Hashtbl.t;
  scheds : (skey, Cfg_sched.t) Hashtbl.t;
  backs : (bkey, Flow.design) Hashtbl.t;
  n_front : counter;
  n_mid : counter;
  n_sched : counter;
  n_back : counter;
}

let make_engine memoize source =
  {
    lock = Mutex.create ();
    memoize;
    source;
    front = Hashtbl.create 1;
    mid = Hashtbl.create 8;
    scheds = Hashtbl.create 64;
    backs = Hashtbl.create 64;
    n_front = { c_hits = 0; c_misses = 0 };
    n_mid = { c_hits = 0; c_misses = 0 };
    n_sched = { c_hits = 0; c_misses = 0 };
    n_back = { c_hits = 0; c_misses = 0 };
  }

let create ?(memoize = true) src = make_engine memoize (`Src src)
let create_program ?(memoize = true) ast = make_engine memoize (`Ast ast)

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.front;
  Hashtbl.reset t.mid;
  Hashtbl.reset t.scheds;
  Hashtbl.reset t.backs;
  List.iter
    (fun c ->
      c.c_hits <- 0;
      c.c_misses <- 0)
    [ t.n_front; t.n_mid; t.n_sched; t.n_back ];
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let layer c = { hits = c.c_hits; misses = c.c_misses } in
  let s =
    {
      frontend = layer t.n_front;
      midend = layer t.n_mid;
      schedule = layer t.n_sched;
      backend = layer t.n_back;
    }
  in
  Mutex.unlock t.lock;
  s

let pp_stats ppf s =
  let line name l = Format.fprintf ppf "%-9s %4d hits %4d misses@." name l.hits l.misses in
  line "frontend" s.frontend;
  line "midend" s.midend;
  line "schedule" s.schedule;
  line "backend" s.backend

(* Check under the lock; compute unlocked (two workers racing on the
   same key may duplicate work, but stage results are pure functions of
   their keys, so whichever insert lands first is equivalent) — the
   first writer wins and later computations adopt the stored value to
   maximize sharing. *)
let memo t ctr tbl key compute =
  if not t.memoize then begin
    Mutex.lock t.lock;
    ctr.c_misses <- ctr.c_misses + 1;
    Mutex.unlock t.lock;
    compute ()
  end
  else begin
    Mutex.lock t.lock;
    match Hashtbl.find_opt tbl key with
    | Some v ->
        ctr.c_hits <- ctr.c_hits + 1;
        Mutex.unlock t.lock;
        v
    | None ->
        ctr.c_misses <- ctr.c_misses + 1;
        Mutex.unlock t.lock;
        let v = compute () in
        Mutex.lock t.lock;
        let v =
          match Hashtbl.find_opt tbl key with
          | Some winner -> winner
          | None ->
              Hashtbl.add tbl key v;
              v
        in
        Mutex.unlock t.lock;
        v
  end

let eval ?(verify = false) t (options : Flow.options) =
  let c =
    memo t t.n_front t.front () (fun () ->
        match t.source with
        | `Src s -> Flow.frontend s
        | `Ast a -> Flow.frontend_program a)
  in
  let mkey = (options.opt_level, options.if_conversion) in
  let o =
    memo t t.n_mid t.mid mkey (fun () ->
        Flow.midend ~opt_level:options.opt_level ~if_conversion:options.if_conversion c)
  in
  let canonical_limits =
    if Flow.scheduler_ignores_limits options.scheduler then Limits.Unlimited
    else options.limits
  in
  let skey = (mkey, options.scheduler, canonical_limits) in
  let sched = memo t t.n_sched t.scheds skey (fun () -> Flow.schedule options o) in
  let bkey =
    ( mkey,
      Cfg_sched.digest sched,
      options.allocator,
      options.share_variables,
      options.encoding )
  in
  let d = memo t t.n_back t.backs bkey (fun () -> Flow.complete options o ~sched) in
  (* lint the rewrapped design, outside the memo: a backend cache hit is
     verified under the point's own options exactly like a fresh run *)
  let d = { d with Flow.options } in
  if verify then Flow.lint_check d;
  d

let run ?(jobs = 1) ?verify t options_list =
  (* oversubscribing domains past the hardware buys nothing and costs
     stop-the-world minor-GC synchronization; clamp to what the runtime
     says can actually run in parallel *)
  let jobs = min jobs (Domain.recommended_domain_count ()) in
  Hls_util.Pool.map ~jobs (eval ?verify t) options_list
