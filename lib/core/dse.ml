open Hls_lang
open Hls_sched

(* Memo layers, outermost first. Each key is exactly the set of option
   fields the stage's result depends on:

   persist   (binary, source, verify, canonical options)  — only with
             [config.cache_dir]; backed by the on-disk store
   frontend  ()                                            — per engine
   midend    (canonical pipeline spec, if_conversion)
   schedule  midend key + (scheduler, canonical limits)
   backend   midend key + (schedule digest, allocator,
                           share_variables, encoding)

   The schedule layer canonicalizes the limits to [Unlimited] for
   schedulers that ignore them (see {!Flow.scheduler_ignores_limits}),
   so e.g. force-directed runs once across a whole limits sweep. The
   backend layer keys on the schedule's {e content} rather than on the
   scheduler that produced it: two option points whose schedulers place
   every operation identically share one allocation/binding/control
   synthesis, and the cached design is rewrapped with the point's own
   options.

   The persist layer sits on top and spans process lifetimes: an
   in-memory single-flight table over whole evaluated points, with a
   content-addressed disk store (Hls_util.Disk_cache) underneath. A
   warm restart probes memory (miss), then disk (hit) and answers
   without running any pipeline stage; corrupt or truncated entries
   read as a miss and fall through to a fresh compute. Its key mirrors
   the layered memo keys — same source, same verify mode, same
   canonicalized options — plus a digest of the running binary, so a
   rebuilt toolchain can never unmarshal a stale incompatible image.

   Memoization is single-flight: a slot is either [Done] or [Pending],
   and a worker that finds a key pending blocks on the engine's
   condition variable until the computing worker publishes the value.
   Exactly one compute ever runs per key, which is what makes every
   kernel counter in Hls_obs.Trace — and the hit/miss totals below — a
   deterministic function of the evaluated points, independent of the
   worker count.

   Every acquisition of the engine lock goes through Sync.with_lock: a
   raise inside a critical section (or from a compute observed under
   the lock) must never leave the lock held — in a long-lived serve
   daemon that would wedge every future request, not just this one. *)

(* The pipeline participates as its canonical string form: equal specs
   print equally, so two points differing only in spelling (e.g. the
   standard pass list written out by hand) share the midend, while any
   semantic difference — pass set, fact folding, extraction objective —
   is a distinct key. *)
type mkey = string (* Passes.pipeline_to_string *) * bool
type skey = mkey * Flow.scheduler * Limits.t

type bkey =
  mkey
  * string (* Cfg_sched.digest *)
  * [ `Clique | `Greedy_min_mux | `Greedy_first_fit ]
  * bool (* share_variables *)
  * Hls_ctrl.Encoding.style
  * bool (* narrow: width inference changes the bound datapath *)

(* Refinement layer: the one-shot backend seed plus the constraints the
   acceptance loop runs under. Effective limits participate because
   candidate legality is checked against them, and the iterate count
   because it bounds the loop. *)
type rkey = bkey * Limits.t * int

type config = {
  jobs : int;
  verify : bool;
  memoize : bool;
  cache_dir : string option;
}

let default_config = { jobs = 1; verify = false; memoize = true; cache_dir = None }

type layer = { hits : int; misses : int }
type stats = {
  frontend : layer;
  midend : layer;
  schedule : layer;
  backend : layer;
  refine : layer;
}

type counter = { mutable c_hits : int; mutable c_misses : int }
type 'v slot = Done of 'v | Pending

type presult = (Flow.design, Hls_analysis.Diagnostic.t list) result

type t = {
  lock : Mutex.t;
  done_cond : Condition.t;
  config : config;
  source : [ `Src of string | `Ast of Ast.program ];
  source_key : string;
  front : (unit, Flow.compiled slot) Hashtbl.t;
  mid : (mkey, Flow.optimized slot) Hashtbl.t;
  scheds : (skey, Cfg_sched.t slot) Hashtbl.t;
  backs : (bkey, presult slot) Hashtbl.t;
  refines : (rkey, presult slot) Hashtbl.t;
  persist : (string, presult slot) Hashtbl.t;
  n_front : counter;
  n_mid : counter;
  n_sched : counter;
  n_back : counter;
  n_refine : counter;
  n_persist : counter;
}

(* The identity of the running binary participates in every disk key:
   entries are Marshal images of design values, and unmarshalling an
   image written by a binary with different type layouts is undefined
   behavior. Keying on the executable digest turns "stale cache after
   rebuild" into ordinary misses. *)
let binary_digest =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unknown-binary")

let source_key = function
  | `Src s -> Digest.to_hex (Digest.string s)
  | `Ast a -> Digest.to_hex (Digest.string (Marshal.to_string (a : Ast.program) []))

let make_engine config source =
  {
    lock = Mutex.create ();
    done_cond = Condition.create ();
    config;
    source;
    source_key = source_key source;
    front = Hashtbl.create 1;
    mid = Hashtbl.create 8;
    scheds = Hashtbl.create 64;
    backs = Hashtbl.create 64;
    refines = Hashtbl.create 16;
    persist = Hashtbl.create 64;
    n_front = { c_hits = 0; c_misses = 0 };
    n_mid = { c_hits = 0; c_misses = 0 };
    n_sched = { c_hits = 0; c_misses = 0 };
    n_back = { c_hits = 0; c_misses = 0 };
    n_refine = { c_hits = 0; c_misses = 0 };
    n_persist = { c_hits = 0; c_misses = 0 };
  }

let create ?(config = default_config) src = make_engine config (`Src src)
let create_program ?(config = default_config) ast = make_engine config (`Ast ast)
let config t = t.config

let clear t =
  Hls_obs.Sync.with_lock t.lock (fun () ->
      Hashtbl.reset t.front;
      Hashtbl.reset t.mid;
      Hashtbl.reset t.scheds;
      Hashtbl.reset t.backs;
      Hashtbl.reset t.refines;
      Hashtbl.reset t.persist;
      List.iter
        (fun c ->
          c.c_hits <- 0;
          c.c_misses <- 0)
        [ t.n_front; t.n_mid; t.n_sched; t.n_back; t.n_refine; t.n_persist ])

let stats t =
  Hls_obs.Sync.with_lock t.lock (fun () ->
      let layer c = { hits = c.c_hits; misses = c.c_misses } in
      {
        frontend = layer t.n_front;
        midend = layer t.n_mid;
        schedule = layer t.n_sched;
        backend = layer t.n_back;
        refine = layer t.n_refine;
      })

let pp_stats ppf s =
  let line name l = Format.fprintf ppf "%-9s %4d hits %4d misses@." name l.hits l.misses in
  line "frontend" s.frontend;
  line "midend" s.midend;
  line "schedule" s.schedule;
  line "backend" s.backend;
  line "refine" s.refine

(* Single-flight memoization. The first prober of a key installs
   [Pending], computes unlocked, publishes [Done] and broadcasts; later
   probers of the same key count a hit and block until the value lands.
   If the computing worker dies, the slot is removed, waiters are woken,
   and the first to notice takes the compute over. Hit/miss counts are
   decided at a probe's first look, so totals are identical for any
   worker count: one miss per unique key, hits for every other probe. *)
let memo t name ctr tbl key compute =
  let locked f = Hls_obs.Sync.with_lock t.lock f in
  let bump_trace hit =
    Hls_obs.Trace.incr
      (if hit then "dse/" ^ name ^ ".hits" else "dse/" ^ name ^ ".misses")
  in
  if not t.config.memoize then begin
    locked (fun () -> ctr.c_misses <- ctr.c_misses + 1);
    bump_trace false;
    compute ()
  end
  else begin
    let publish v =
      locked (fun () ->
          Hashtbl.replace tbl key (Done v);
          Condition.broadcast t.done_cond)
    in
    let unpublish () =
      locked (fun () ->
          Hashtbl.remove tbl key;
          Condition.broadcast t.done_cond)
    in
    let compute_published () =
      match compute () with
      | v ->
          publish v;
          v
      | exception e ->
          unpublish ();
          raise e
    in
    let role =
      locked (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some (Done v) ->
              ctr.c_hits <- ctr.c_hits + 1;
              `Hit v
          | Some Pending ->
              ctr.c_hits <- ctr.c_hits + 1;
              `Wait
          | None ->
              ctr.c_misses <- ctr.c_misses + 1;
              Hashtbl.replace tbl key Pending;
              `Compute)
    in
    match role with
    | `Hit v ->
        bump_trace true;
        v
    | `Compute ->
        let v = compute_published () in
        bump_trace false;
        v
    | `Wait -> (
        bump_trace true;
        let outcome =
          locked (fun () ->
              let rec await () =
                match Hashtbl.find_opt tbl key with
                | Some (Done v) -> `Done v
                | Some Pending ->
                    Condition.wait t.done_cond t.lock;
                    await ()
                | None ->
                    (* the computing worker died: take the compute over
                       (still counted as the hit decided at first look) *)
                    Hashtbl.replace tbl key Pending;
                    `Take_over
              in
              await ())
        in
        match outcome with `Done v -> v | `Take_over -> compute_published ())
  end

let point_args (options : Flow.options) =
  [
    ("passes", Hls_transform.Passes.pipeline_to_string options.passes);
    ("if_conversion", string_of_bool options.if_conversion);
    ("scheduler", Flow.scheduler_to_string options.scheduler);
    ("limits", Limits.to_string options.limits);
    ("allocator", Flow.allocator_to_string options.allocator);
    ("encoding", Hls_ctrl.Encoding.style_to_string options.encoding);
    ("narrow", string_of_bool options.narrow);
    ("iterate", string_of_int options.iterate);
  ]

let canonical_options (options : Flow.options) =
  if Flow.scheduler_ignores_limits options.scheduler then
    { options with Flow.limits = Limits.Unlimited }
  else options

(* The cheap front of the staged flow: frontend, midend and scheduling
   through the memo layers. Shared verbatim between [eval_result] and
   [eval_cheap] so a pruned sweep's ranking pass and the later full
   evaluation of the survivors probe exactly the same cache keys. *)
let eval_stages t (options : Flow.options) =
  let c =
    memo t "frontend" t.n_front t.front () (fun () ->
        match t.source with
        | `Src s -> Flow.frontend s
        | `Ast a -> Flow.frontend_program a)
  in
  let mkey =
    (Hls_transform.Passes.pipeline_to_string options.passes, options.if_conversion)
  in
  let o =
    memo t "midend" t.n_mid t.mid mkey (fun () ->
        Flow.midend ~passes:options.passes ~if_conversion:options.if_conversion c)
  in
  let skey = (mkey, options.scheduler, (canonical_options options).Flow.limits) in
  let sched =
    memo t "schedule" t.n_sched t.scheds skey (fun () -> Flow.schedule options o)
  in
  (mkey, o, sched)

let eval_cheap t (options : Flow.options) =
  Hls_obs.Trace.with_span "dse/cheap" ~args:(point_args options) (fun () ->
      let _, o, sched = eval_stages t options in
      (o, sched))

(* One full point through the staged in-memory layers (everything the
   engine did before the persistent layer existed). *)
let eval_staged t (options : Flow.options) =
  let mkey, o, sched = eval_stages t options in
  let bkey =
    ( mkey,
      Cfg_sched.digest sched,
      options.allocator,
      options.share_variables,
      options.encoding,
      options.narrow )
  in
  let seeded =
    memo t "backend" t.n_back t.backs bkey (fun () ->
        Flow.complete_result options o ~sched)
  in
  let refined =
    if options.iterate <= 0 then seeded
    else
      (* the refined design depends on the seed (bkey), the limits the
         candidates must verify under, and the iteration bound — all in
         the key, so the memo can be shared across points and stays
         deterministic at any job count (single-flight) *)
      let rkey = (bkey, Flow.effective_limits options, options.iterate) in
      memo t "refine" t.n_refine t.refines rkey (fun () ->
          match seeded with
          | Error ds -> Error ds
          | Ok seed -> Ok (fst (Flow.refine_design options o seed)))
  in
  match refined with
  | Error ds ->
      (* a structural netlist failure is as cacheable as a design:
         every point probing this backend key reports the same
         diagnostics *)
      Error ds
  | Ok d ->
      (* lint the rewrapped design, outside the memo: a backend cache
         hit is verified under the point's own options exactly like a
         fresh run *)
      let d = { d with Flow.options } in
      if t.config.verify then
        Hls_obs.Trace.with_span "lint" (fun () ->
            match Hls_analysis.Diagnostic.errors (Flow.lint d) with
            | [] -> Ok d
            | es -> Error es)
      else Ok d

(* ---- the persistent point layer ---- *)

(* What one disk entry holds: the evaluated point's result (design or
   diagnostics) plus the engine's dse/* counter totals at store time —
   observability breadcrumbs for cache forensics, never re-imported. *)
type disk_entry = {
  de_result : presult;
  de_counters : (string * int) list;
  de_stored_at : float;
}

let point_key t (options : Flow.options) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( Lazy.force binary_digest,
            t.source_key,
            t.config.verify,
            canonical_options options )
          []))

let design_digest (d : Flow.design) = Digest.to_hex (Digest.string (Marshal.to_string d []))

let dse_counters () =
  List.filter
    (fun (name, _) -> String.length name >= 4 && String.sub name 0 4 = "dse/")
    (Hls_obs.Trace.counters ())

let disk_probe t key compute =
  match t.config.cache_dir with
  | None -> compute ()
  | Some dir -> (
      let compute_and_store () =
        Hls_obs.Trace.incr "serve/disk_misses";
        let r = compute () in
        ignore
          (Hls_util.Disk_cache.store ~dir ~key
             (Marshal.to_string
                {
                  de_result = r;
                  de_counters = dse_counters ();
                  de_stored_at = Unix.gettimeofday ();
                }
                []));
        r
      in
      match Hls_util.Disk_cache.load ~dir ~key with
      | Some payload -> (
          (* integrity is already digest-checked by Disk_cache (and the
             binary digest in the key fences off images from other
             builds); decode defensively anyway so a surprise still
             degrades to a miss rather than killing a server *)
          match (Marshal.from_string payload 0 : disk_entry) with
          | entry ->
              Hls_obs.Trace.incr "serve/disk_hits";
              entry.de_result
          | exception _ -> compute_and_store ())
      | None -> compute_and_store ())

let eval_result t (options : Flow.options) =
  Hls_obs.Trace.with_span "dse/point" ~args:(point_args options) (fun () ->
      Hls_obs.Trace.incr "dse/points";
      if t.config.cache_dir = None || not t.config.memoize then eval_staged t options
      else
        let key = point_key t options in
        let r =
          memo t "persist" t.n_persist t.persist key (fun () ->
              disk_probe t key (fun () -> eval_staged t options))
        in
        (* a persist hit may carry another point's options (same key =
           same canonicalized options, but e.g. a different ignored
           limits field): stamp the request's own options back on *)
        match r with Ok d -> Ok { d with Flow.options } | Error ds -> Error ds)

let eval t options =
  match eval_result t options with Ok d -> d | Error ds -> raise (Flow.Lint_failed ds)

let run_result t options_list =
  (* jobs as configured; the shared pool adapts parallelism to the
     machine (serial fallback on boxes without spare cores), and the
     single-flight cache makes counter totals worker-count independent
     either way *)
  Hls_util.Pool.map ~jobs:t.config.jobs (eval_result t) options_list

let run t options_list =
  List.map
    (function Ok d -> d | Error ds -> raise (Flow.Lint_failed ds))
    (run_result t options_list)
