open Hls_util
open Hls_sched

type point = {
  label : string;
  options : Flow.options;
  design : Flow.design;
  area : int;
  latency_ns : float;
}

let default_limits =
  [
    Limits.Serial;
    Limits.Total 2;
    Limits.Total 3;
    Limits.Total 4;
    Limits.Classes [ (Hls_cdfg.Op.C_alu, 1); (Hls_cdfg.Op.C_mul, 1); (Hls_cdfg.Op.C_div, 1) ];
  ]

let default_schedulers =
  [ Flow.Asap; Flow.List_path; Flow.List_mobility; Flow.Freedom; Flow.Branch_bound;
    Flow.Ilp_exact; Flow.Trans_parallel; Flow.Trans_serial ]

let point_of label options design =
  {
    label;
    options;
    design;
    area = design.Flow.estimate.Hls_rtl.Estimate.total_area;
    latency_ns = design.Flow.estimate.Hls_rtl.Estimate.latency_ns;
  }

(* Evaluate labelled option points through a (possibly shared) engine,
   on the Result API. Sweeps surface a failed point as the legacy
   Flow.Lint_failed — a sweep's result type is the point list, and an
   engine configured without [verify] never fails. *)
let run_points ~config ~engine src labelled =
  let engine = match engine with Some e -> e | None -> Dse.create ~config src in
  let results = Dse.run_result engine (List.map snd labelled) in
  List.map2
    (fun (label, options) r ->
      match r with
      | Ok d -> point_of label options d
      | Error ds -> raise (Flow.Lint_failed ds))
    labelled results

let sweep_limits ?(config = Dse.default_config) ?engine ?(base = Flow.default_options)
    ?(limits = default_limits) src =
  run_points ~config ~engine src
    (List.map (fun l -> (Limits.to_string l, { base with Flow.limits = l })) limits)

let sweep_schedulers ?(config = Dse.default_config) ?engine
    ?(base = Flow.default_options) ?(schedulers = default_schedulers) src =
  run_points ~config ~engine src
    (List.map
       (fun s -> (Flow.scheduler_to_string s, { base with Flow.scheduler = s }))
       schedulers)

let sweep ?(config = Dse.default_config) ?engine ?(base = Flow.default_options)
    ?(schedulers = default_schedulers) ?(limits = default_limits) src =
  run_points ~config ~engine src
    (List.concat_map
       (fun s ->
         List.map
           (fun l ->
             ( Flow.scheduler_to_string s ^ " @ " ^ Limits.to_string l,
               { base with Flow.scheduler = s; Flow.limits = l } ))
           limits)
       schedulers)

let dominates a b =
  (a.area <= b.area && a.latency_ns < b.latency_ns)
  || (a.area < b.area && a.latency_ns <= b.latency_ns)

let pareto points =
  List.filter (fun p -> not (List.exists (fun q -> dominates q p) points)) points
  |> List.sort (fun a b -> compare a.area b.area)

let table ?(timings = false) points =
  (* frontier membership by the dominance criterion itself, not by
     physical identity of the point record — cached/rewrapped designs
     make physical equality meaningless *)
  let on_front p = not (List.exists (fun q -> dominates q p) points) in
  let t =
    Table.create ~headers:[ "design"; "FUs"; "steps"; "area"; "latency(ns)"; "pareto" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.label;
          string_of_int (Hls_alloc.Fu_alloc.n_units p.design.Flow.fu);
          string_of_int p.design.Flow.estimate.Hls_rtl.Estimate.compute_steps;
          string_of_int p.area;
          Printf.sprintf "%.0f" p.latency_ns;
          (if on_front p then "*" else "");
        ])
    points;
  let body = Table.render t in
  if timings then
    body ^ Format.asprintf "@.stage timings:@.%a" Timing.pp (Timing.snapshot ())
  else body
