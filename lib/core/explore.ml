open Hls_util
open Hls_sched

type point = {
  label : string;
  options : Flow.options;
  design : Flow.design;
  area : int;
  latency_ns : float;
}

let default_limits =
  [
    Limits.Serial;
    Limits.Total 2;
    Limits.Total 3;
    Limits.Total 4;
    Limits.Classes [ (Hls_cdfg.Op.C_alu, 1); (Hls_cdfg.Op.C_mul, 1); (Hls_cdfg.Op.C_div, 1) ];
  ]

let default_schedulers =
  [ Flow.Asap; Flow.List_path; Flow.List_mobility; Flow.Freedom; Flow.Branch_bound;
    Flow.Ilp_exact; Flow.Trans_parallel; Flow.Trans_serial ]

let point_of label options design =
  {
    label;
    options;
    design;
    area = design.Flow.estimate.Hls_rtl.Estimate.total_area;
    latency_ns = design.Flow.estimate.Hls_rtl.Estimate.latency_ns;
  }

(* Evaluate labelled option points through a (possibly shared) engine,
   on the Result API. Sweeps surface a failed point as the legacy
   Flow.Lint_failed — a sweep's result type is the point list, and an
   engine configured without [verify] never fails. *)
let run_points ~config ~engine src labelled =
  let engine = match engine with Some e -> e | None -> Dse.create ~config src in
  let results = Dse.run_result engine (List.map snd labelled) in
  List.map2
    (fun (label, options) r ->
      match r with
      | Ok d -> point_of label options d
      | Error ds -> raise (Flow.Lint_failed ds))
    labelled results

let cross ?(pipelines = []) ?(iterates = []) ~base ~schedulers ~limits () =
  let pipelines = if pipelines = [] then [ base.Flow.passes ] else pipelines in
  let iterates = if iterates = [] then [ base.Flow.iterate ] else iterates in
  let many = List.length pipelines > 1 in
  let many_it = List.length iterates > 1 in
  List.concat_map
    (fun it ->
      List.concat_map
        (fun p ->
          List.concat_map
            (fun s ->
              List.map
                (fun l ->
                  let label =
                    Flow.scheduler_to_string s ^ " @ " ^ Limits.to_string l
                    ^ (if many then " / " ^ Hls_transform.Passes.pipeline_to_string p
                       else "")
                    ^
                    if many_it then Printf.sprintf " / iterate %d" it else ""
                  in
                  ( label,
                    {
                      base with
                      Flow.scheduler = s;
                      Flow.limits = l;
                      Flow.passes = p;
                      Flow.iterate = it;
                    } ))
                limits)
            schedulers)
        pipelines)
    iterates

let sweep_limits ?(config = Dse.default_config) ?engine ?(base = Flow.default_options)
    ?(limits = default_limits) src =
  run_points ~config ~engine src
    (List.map (fun l -> (Limits.to_string l, { base with Flow.limits = l })) limits)

let sweep_schedulers ?(config = Dse.default_config) ?engine
    ?(base = Flow.default_options) ?(schedulers = default_schedulers) src =
  run_points ~config ~engine src
    (List.map
       (fun s -> (Flow.scheduler_to_string s, { base with Flow.scheduler = s }))
       schedulers)

let sweep ?(config = Dse.default_config) ?engine ?(base = Flow.default_options)
    ?(schedulers = default_schedulers) ?(limits = default_limits) ?pipelines ?iterates
    src =
  run_points ~config ~engine src
    (cross ?pipelines ?iterates ~base ~schedulers ~limits ())

(* ---- pareto frontier ---- *)

let value_dominates (qa, ql) (pa, pl) =
  (qa <= pa && ql < pl) || (qa < pa && ql <= pl)

let dominates a b = value_dominates (a.area, a.latency_ns) (b.area, b.latency_ns)

(* Sort by (area, latency) and scan: a point survives iff it has the
   minimum latency of its equal-area group and that latency is strictly
   below every smaller-area point's. O(n log n) against the O(n²)
   all-pairs check — quadratic was fine at 40 points, not at the
   thousands a rewrite-rule sweep produces. *)
let frontier_mask values =
  let arr = Array.of_list values in
  let n = Array.length arr in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let ai, li = arr.(i) and aj, lj = arr.(j) in
      if ai <> aj then compare ai aj else compare li lj)
    idx;
  let mask = Array.make n false in
  let best = ref infinity in
  let i = ref 0 in
  while !i < n do
    let a, gmin = arr.(idx.(!i)) in
    let j = ref !i in
    while !j < n && fst arr.(idx.(!j)) = a do
      let _, l = arr.(idx.(!j)) in
      if l = gmin && gmin < !best then mask.(idx.(!j)) <- true;
      incr j
    done;
    if gmin < !best then best := gmin;
    i := !j
  done;
  Array.to_list mask

let pareto points =
  let mask = frontier_mask (List.map (fun p -> (p.area, p.latency_ns)) points) in
  List.combine points mask
  |> List.filter_map (fun (p, keep) -> if keep then Some p else None)
  |> List.sort (fun a b -> compare a.area b.area)

let table ?(timings = false) points =
  (* frontier membership by the dominance criterion itself, not by
     physical identity of the point record — cached/rewrapped designs
     make physical equality meaningless *)
  let mask = frontier_mask (List.map (fun p -> (p.area, p.latency_ns)) points) in
  let t =
    Table.create ~headers:[ "design"; "FUs"; "steps"; "area"; "latency(ns)"; "pareto" ]
  in
  List.iter2
    (fun p on_front ->
      Table.add_row t
        [
          p.label;
          string_of_int (Hls_alloc.Fu_alloc.n_units p.design.Flow.fu);
          string_of_int p.design.Flow.estimate.Hls_rtl.Estimate.compute_steps;
          string_of_int p.area;
          Printf.sprintf "%.0f" p.latency_ns;
          (if on_front then "*" else "");
        ])
    points mask;
  let body = Table.render t in
  if timings then
    body ^ Format.asprintf "@.stage timings:@.%a" Timing.pp (Timing.snapshot ())
  else body

(* ---- sound lower bounds from the cheap stages ---- *)

(* Everything below is derived from the schedule and CFG alone — no
   allocation, binding or control synthesis — and underestimates the
   real Estimate componentwise. That soundness is what lets the pruned
   sweep discard a point before its backend runs while still
   guaranteeing the exhaustive frontier: if an evaluated design
   dominates a point's lower bounds, it dominates the point's true
   values (dominance is monotone in both coordinates), and dominance is
   transitive, so no pruned point can ever have made the frontier. *)
module Bound = struct
  let bits_of (ty : Hls_lang.Ast.ty) =
    match ty with
    | Hls_lang.Ast.Tbool -> 1
    | Hls_lang.Ast.Tint w -> w
    | Hls_lang.Ast.Tfix (i, f) -> i + f

  let real_classes =
    [ Hls_cdfg.Op.C_alu; Hls_cdfg.Op.C_mul; Hls_cdfg.Op.C_div; Hls_cdfg.Op.C_shift ]

  let min_class_area cls ~width =
    let a =
      List.fold_left
        (fun acc (c : Hls_rtl.Component.t) ->
          if c.Hls_rtl.Component.cls = cls then min acc (Hls_rtl.Component.area c ~width)
          else acc)
        max_int Hls_rtl.Component.library
    in
    if a = max_int then 0 else a

  let min_class_delay cls =
    let d =
      List.fold_left
        (fun acc (c : Hls_rtl.Component.t) ->
          if c.Hls_rtl.Component.cls = cls then min acc c.Hls_rtl.Component.delay_ns
          else acc)
        infinity Hls_rtl.Component.library
    in
    if d = infinity then 0.0 else d

  (* Per-class peak demand across blocks: the allocator can share units
     between blocks but never within a step. Two floors per class, keep
     the larger. Width-aware: the operations of one step run on distinct
     units, each at least as wide as its own operation, so the busiest
     step's sum of cheapest-component areas at each operation's width is
     unavoidable. Count-based: the peak concurrent count (which also
     covers multi-step occupancy no single start step exhibits) times
     the cheapest component at the block's narrowest class width.
     [node_w] supplies each operation's storage width — declared type
     width normally, the range-inferred width under [narrow], matching
     what {!Hls_rtl.Datapath.build} will bind. *)
  let fu_class_floors ~node_w cs =
    let cfg = Cfg_sched.cfg cs in
    let best = Hashtbl.create 4 in
    let bump cls a =
      let cur = Option.value (Hashtbl.find_opt best cls) ~default:0 in
      if a > cur then Hashtbl.replace best cls a
    in
    List.iter
      (fun bid ->
        let sched = Cfg_sched.block_schedule cs bid in
        let g = Hls_cdfg.Cfg.dfg cfg bid in
        let minw = Hashtbl.create 4 in
        Hls_cdfg.Dfg.iter
          (fun nid _ ->
            if Hls_cdfg.Dfg.occupies_step g nid then begin
              let cls = Hls_cdfg.Dfg.fu_class_of g nid in
              if List.mem cls real_classes then begin
                let w = node_w g bid nid in
                let cur = Option.value (Hashtbl.find_opt minw cls) ~default:max_int in
                Hashtbl.replace minw cls (min cur w)
              end
            end)
          g;
        List.iter
          (fun (cls, n) ->
            match Hashtbl.find_opt minw cls with
            | Some w when List.mem cls real_classes ->
                bump cls (n * min_class_area cls ~width:w)
            | _ -> ())
          (Schedule.fu_requirement sched);
        for s = 0 to Schedule.n_steps sched - 1 do
          let sums = Hashtbl.create 4 in
          List.iter
            (fun nid ->
              if Hls_cdfg.Dfg.occupies_step g nid then begin
                let cls = Hls_cdfg.Dfg.fu_class_of g nid in
                if List.mem cls real_classes then begin
                  let a = min_class_area cls ~width:(node_w g bid nid) in
                  let cur = Option.value (Hashtbl.find_opt sums cls) ~default:0 in
                  Hashtbl.replace sums cls (cur + a)
                end
              end)
            (Schedule.ops_in_step sched s);
          Hashtbl.iter bump sums
        done)
      (Hls_cdfg.Cfg.block_ids cfg);
    best

  let fu_area_lb ~node_w cs =
    Hashtbl.fold (fun _ a acc -> acc + a) (fu_class_floors ~node_w cs) 0

  (* Units of one class are a machine-wide resource, and so is the
     interconnect in front of their operand ports. For argument
     position p of class c, every distinct constant operand is a
     dedicated wire the allocator cannot merge (plus one more wire when
     any operand is computed or register-borne — those may all merge
     into one register, but never into a constant). With U units those
     wires split across at most U port-p muxes, and mux area is linear
     in inputs beyond the first, so the inputs the splitting cannot
     absorb cost [mux_area (D - U + 1)] at the class's narrowest width.
     The unit count itself is the allocator's to choose — more units
     shrink the muxes but each unit costs at least the cheapest class
     component — so the class's true (FU + input-mux) area is at least
     the minimum over U of the coupled sum. [schedule_free] drops the
     schedule-derived per-class floor, leaving floors valid for any
     legal schedule of the same CFG (what an [iterate > 0] point may
     ship after refinement). *)
  let fu_input_mux_area_lb ~node_w ~schedule_free cs =
    let cfg = Cfg_sched.cfg cs in
    let minw : (Hls_cdfg.Op.fu_class, int) Hashtbl.t = Hashtbl.create 4 in
    let arity : (Hls_cdfg.Op.fu_class, int) Hashtbl.t = Hashtbl.create 4 in
    let consts : (Hls_cdfg.Op.fu_class * int, int list) Hashtbl.t = Hashtbl.create 8 in
    let nonconst : (Hls_cdfg.Op.fu_class * int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun bid ->
        let g = Hls_cdfg.Cfg.dfg cfg bid in
        Hls_cdfg.Dfg.iter
          (fun nid node ->
            if Hls_cdfg.Dfg.occupies_step g nid then begin
              let cls = Hls_cdfg.Dfg.fu_class_of g nid in
              if List.mem cls real_classes then begin
                let w = node_w g bid nid in
                let cur = Option.value (Hashtbl.find_opt minw cls) ~default:max_int in
                Hashtbl.replace minw cls (min cur w);
                let ar = Option.value (Hashtbl.find_opt arity cls) ~default:0 in
                Hashtbl.replace arity cls (max ar (List.length node.Hls_cdfg.Dfg.args));
                List.iteri
                  (fun pos a ->
                    match Hls_cdfg.Dfg.op g a with
                    | Hls_cdfg.Op.Const c ->
                        let cur =
                          Option.value (Hashtbl.find_opt consts (cls, pos)) ~default:[]
                        in
                        if not (List.mem c cur) then
                          Hashtbl.replace consts (cls, pos) (c :: cur)
                    | _ -> Hashtbl.replace nonconst (cls, pos) ())
                  node.Hls_cdfg.Dfg.args
              end
            end)
          g)
      (Hls_cdfg.Cfg.block_ids cfg);
    let floors = if schedule_free then None else Some (fu_class_floors ~node_w cs) in
    Hashtbl.fold
      (fun cls w acc ->
        let fc =
          match floors with
          | Some tbl -> Option.value (Hashtbl.find_opt tbl cls) ~default:0
          | None -> 0
        in
        let a_min = min_class_area cls ~width:w in
        let d pos =
          List.length (Option.value (Hashtbl.find_opt consts (cls, pos)) ~default:[])
          + if Hashtbl.mem nonconst (cls, pos) then 1 else 0
        in
        let ds = List.init (Option.value (Hashtbl.find_opt arity cls) ~default:0) d in
        let cost u =
          max fc (u * a_min)
          + List.fold_left
              (fun s dp ->
                s + Hls_rtl.Component.mux_area ~inputs:(max 1 (dp - u + 1)) ~width:w)
              0 ds
        in
        let best = ref (cost 1) in
        for u = 2 to List.fold_left max 1 ds do
          if cost u < !best then best := cost u
        done;
        acc + !best)
      minw 0

  let port_names (o : Flow.optimized) =
    List.map (fun (p : Hls_lang.Ast.port) -> p.Hls_lang.Ast.pname)
      o.Flow.o_prog.Hls_lang.Typed.tports

  (* Every port read or written anywhere keeps a dedicated register for
     the whole run — the allocator never merges ports (their values are
     externally observable) — so their areas are unavoidable at every
     step boundary. *)
  let port_reg_area (o : Flow.optimized) cs =
    let cfg = Cfg_sched.cfg cs in
    let touched = Hashtbl.create 16 in
    List.iter
      (fun bid ->
        let g = Hls_cdfg.Cfg.dfg cfg bid in
        List.iter (fun (v, _) -> Hashtbl.replace touched v ()) (Hls_cdfg.Dfg.reads g);
        List.iter (fun (v, _) -> Hashtbl.replace touched v ()) (Hls_cdfg.Dfg.writes g))
      (Hls_cdfg.Cfg.block_ids cfg);
    List.fold_left
      (fun acc (p : Hls_lang.Ast.port) ->
        if Hashtbl.mem touched p.Hls_lang.Ast.pname then
          acc + Hls_rtl.Component.register_area ~width:(bits_of p.Hls_lang.Ast.pty)
        else acc)
      0 o.Flow.o_prog.Hls_lang.Typed.tports

  (* Peak non-port storage demand: at any step boundary of a block,
     every live stored value (Lifetime) occupies a distinct register at
     least as wide as the value — variables merged across blocks and
     shared temp tracks cannot shrink a single boundary's footprint.
     Port-variable spans are excluded because {!port_reg_area} already
     counts those registers unconditionally, so the two bounds add. *)
  let live_reg_area ~node_w (o : Flow.optimized) cs =
    let ports = port_names o in
    let cfg = Cfg_sched.cfg cs in
    List.fold_left
      (fun acc bid ->
        let g = Hls_cdfg.Cfg.dfg cfg bid in
        let sched = Cfg_sched.block_schedule cs bid in
        let term_cond =
          match Hls_cdfg.Cfg.term cfg bid with
          | Hls_cdfg.Cfg.Branch (c, _, _) -> Some c
          | _ -> None
        in
        let n = Schedule.n_steps sched in
        let diff = Array.make (n + 2) 0 in
        let add lo hi w =
          let lo = max 0 lo and hi = min n hi in
          if lo <= hi then begin
            diff.(lo) <- diff.(lo) + w;
            diff.(hi + 1) <- diff.(hi + 1) - w
          end
        in
        List.iter
          (fun (vi : Hls_alloc.Lifetime.value_info) ->
            let w =
              Hls_rtl.Component.register_area
                ~width:(node_w g bid vi.Hls_alloc.Lifetime.nid)
            in
            match vi.Hls_alloc.Lifetime.storage with
            | Hls_alloc.Lifetime.Temp iv -> add iv.Interval.lo iv.Interval.hi w
            | Hls_alloc.Lifetime.In_variable v when not (List.mem v ports) ->
                add vi.Hls_alloc.Lifetime.produced (vi.Hls_alloc.Lifetime.last_use - 1) w
            | Hls_alloc.Lifetime.In_variable _ | Hls_alloc.Lifetime.No_storage -> ())
          (Hls_alloc.Lifetime.analyze sched ~term_cond);
        let best = ref 0 and run = ref 0 in
        Array.iter
          (fun d ->
            run := !run + d;
            if !run > !best then best := !run)
          diff;
        max acc !best)
      0
      (Hls_cdfg.Cfg.block_ids cfg)

  (* Steering into registers: every write in the CFG produces a load on
     its variable's register, so the register's input mux selects among
     at least as many distinct wires as the variable has distinct
     constant assignments (each constant is its own wire), plus one more
     when any assignment comes from computation. Ports own dedicated
     registers, never merged, so their demands add; non-port variables
     may share registers, so only the largest single demand is
     unavoidable. The mux is at least as wide as the register, which is
     at least as wide as the variable's widest stored value — [node_w]
     again mirrors the datapath's width choice. *)
  let reg_mux_area_lb ~node_w (o : Flow.optimized) cs =
    let ports = port_names o in
    let cfg = Cfg_sched.cfg cs in
    let consts : (string, int list) Hashtbl.t = Hashtbl.create 16 in
    let nonconst : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let width : (string, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun bid ->
        let g = Hls_cdfg.Cfg.dfg cfg bid in
        Hls_cdfg.Dfg.iter
          (fun nid node ->
            match node.Hls_cdfg.Dfg.op with
            | Hls_cdfg.Op.Read v | Hls_cdfg.Op.Write v ->
                let w = node_w g bid nid in
                let cur = Option.value (Hashtbl.find_opt width v) ~default:0 in
                if w > cur then Hashtbl.replace width v w;
                if
                  match node.Hls_cdfg.Dfg.op with
                  | Hls_cdfg.Op.Write _ -> true
                  | _ -> false
                then begin
                  match node.Hls_cdfg.Dfg.args with
                  | [ a ] -> (
                      match Hls_cdfg.Dfg.op g a with
                      | Hls_cdfg.Op.Const c ->
                          let cur =
                            Option.value (Hashtbl.find_opt consts v) ~default:[]
                          in
                          if not (List.mem c cur) then
                            Hashtbl.replace consts v (c :: cur)
                      | _ -> Hashtbl.replace nonconst v ())
                  | _ -> ()
                end
            | _ -> ())
          g)
      (Hls_cdfg.Cfg.block_ids cfg);
    Hashtbl.fold
      (fun v w (sum, mx) ->
        let m =
          List.length (Option.value (Hashtbl.find_opt consts v) ~default:[])
          + if Hashtbl.mem nonconst v then 1 else 0
        in
        let a = Hls_rtl.Component.mux_area ~inputs:m ~width:w in
        if List.mem v ports then (sum + a, mx) else (sum, max mx a))
      width (0, 0)
    |> fun (sum, mx) -> sum + mx

  (* The controller keeps at least its state register; combinational
     next-state logic only adds on top. *)
  let ctrl_area_lb (options : Flow.options) cs =
    let states = max 1 (Cfg_sched.total_states cs) in
    Hls_rtl.Component.register_area
      ~width:(Hls_ctrl.Encoding.width options.Flow.encoding ~n_states:states)

  (* Every scheduled operation's activity pays register read + one mux
     level + its unit's component delay, and that component belongs to
     the operation's class. *)
  let cycle_lb cs =
    let cfg = Cfg_sched.cfg cs in
    let worst =
      List.fold_left
        (fun acc bid ->
          let g = Hls_cdfg.Cfg.dfg cfg bid in
          Hls_cdfg.Dfg.fold
            (fun acc nid _ ->
              if Hls_cdfg.Dfg.occupies_step g nid then
                max acc (min_class_delay (Hls_cdfg.Dfg.fu_class_of g nid))
              else acc)
            acc g)
        0.0
        (Hls_cdfg.Cfg.block_ids cfg)
    in
    if worst > 0.0 then
      Hls_rtl.Component.register_delay_ns +. Hls_rtl.Component.mux_delay_ns +. worst
    else Hls_rtl.Component.register_delay_ns

  (* Schedule-free structural floors. Any legal schedule of a block
     spans at least its critical dependence chain, so a step (and
     state) count summed from critical lengths under-approximates every
     schedule the same CFG can carry — including whatever refinement
     ships for an [iterate > 0] point. *)
  let critical_steps cs =
    let cfg = Cfg_sched.cfg cs in
    List.fold_left
      (fun acc bid ->
        let g = Hls_cdfg.Cfg.dfg cfg bid in
        if Hls_cdfg.Dfg.compute_ops g = [] then acc
        else
          acc
          + Depgraph.critical_length (Depgraph.of_dfg g)
            * Hls_cdfg.Cfg.exec_frequency cfg bid)
      0
      (Hls_cdfg.Cfg.block_ids cfg)

  let states_lb cs =
    let cfg = Cfg_sched.cfg cs in
    List.fold_left
      (fun acc bid ->
        acc + Depgraph.critical_length (Depgraph.of_dfg (Hls_cdfg.Cfg.dfg cfg bid)))
      0
      (Hls_cdfg.Cfg.block_ids cfg)

  let compute (options : Flow.options) (o : Flow.optimized) cs =
    let node_w =
      if options.Flow.narrow then begin
        let facts =
          Hls_analysis.Range.analyze ~ports:(Flow.ports_of o.Flow.o_prog) o.Flow.o_cfg
        in
        fun _g bid nid -> Hls_analysis.Range.node_bits facts ~bid ~nid
      end
      else fun g _bid nid -> bits_of (Hls_cdfg.Dfg.ty g nid)
    in
    (* a point with [iterate > 0] may ship a refined schedule that
       differs from the one the cheap stages produced (refinement
       replaces whole block schedules, constrained only by dependences
       and the point's effective limits), so every schedule-derived
       floor is replaced by its schedule-free counterpart; one-shot
       points keep the tighter schedule-derived bounds. *)
    let sf = options.Flow.iterate > 0 in
    let states = if sf then states_lb cs else Cfg_sched.total_states cs in
    let ctrl =
      Hls_rtl.Component.register_area
        ~width:(Hls_ctrl.Encoding.width options.Flow.encoding ~n_states:(max 1 states))
    in
    let area =
      fu_input_mux_area_lb ~node_w ~schedule_free:sf cs
      + port_reg_area o cs
      + (if sf then 0 else live_reg_area ~node_w o cs)
      + reg_mux_area_lb ~node_w o cs + ctrl
    in
    let steps = if sf then critical_steps cs else Cfg_sched.compute_steps cs in
    let latency = cycle_lb cs *. float_of_int steps in
    (area, latency)
end

(* ---- pruned sweep: pareto-guided successive halving ---- *)

type pruned_point = {
  pr_label : string;
  pr_options : Flow.options;
  pr_area_lb : int;
  pr_latency_lb : float;
}

type pruned_sweep = {
  evaluated : point list;
  pruned : pruned_point list;
  rounds : int;
}

(* Two option points whose cheap stages agree on this key share one
   backend run (the Dse backend layer's key), hence one true
   (area, latency): evaluating one representative reveals the exact
   value of every member. *)
let backend_class (options : Flow.options) sched =
  let key =
    String.concat "|"
      [
        Hls_transform.Passes.pipeline_to_string options.Flow.passes;
        string_of_bool options.Flow.if_conversion;
        Cfg_sched.digest sched;
        Flow.allocator_to_string options.Flow.allocator;
        string_of_bool options.Flow.share_variables;
        Hls_ctrl.Encoding.style_to_string options.Flow.encoding;
        string_of_bool options.Flow.narrow;
      ]
  in
  (* refinement runs downstream of the backend: an iterated point's
     value additionally depends on the iteration bound and on the
     limits its candidates must verify under, so such points share a
     class only when those agree too. One-shot points keep the
     historical key. *)
  if options.Flow.iterate <= 0 then key
  else
    String.concat "|"
      [
        key;
        string_of_int options.Flow.iterate;
        Limits.to_string (Flow.effective_limits options);
      ]

(* In-flight promotion window: at most this many backend evaluations
   outstanding while class decisions are still being made. Fixed —
   independent of [jobs] — so that the decision sequence, and with it
   every promotion, pruning and counter, is identical at any job count:
   a verdict is incorporated only when the oldest outstanding future is
   awaited, in submission order, never when it happens to land. *)
let promote_window = 4

let run_points_pruned ~config ~engine src labelled =
  let engine = match engine with Some e -> e | None -> Dse.create ~config src in
  let jobs = (Dse.config engine).Dse.jobs in
  let n = List.length labelled in
  let items = Array.of_list labelled in
  (* rank pass: every point through the (memoized) cheap stages *)
  let cheap =
    Array.of_list
      (Pool.map ~jobs (fun (_, options) -> Dse.eval_cheap engine options) labelled)
  in
  let lbs =
    Array.init n (fun i ->
        let _, options = items.(i) in
        let o, cs = cheap.(i) in
        Bound.compute options o cs)
  in
  let keys =
    Array.init n (fun i ->
        let _, options = items.(i) in
        backend_class options (snd cheap.(i)))
  in
  let score i = float_of_int (fst lbs.(i)) *. max 1.0 (snd lbs.(i)) in
  let status = Array.make n `Pending in
  let is_pending i = match status.(i) with `Pending -> true | _ -> false in
  let class_value : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let reals = ref [] in
  let dominated v = List.exists (fun q -> value_dominates q v) !reals in
  let prune i =
    status.(i) <- `Pruned;
    Hls_obs.Trace.incr "dse/pruned_points"
  in
  let settle i r =
    match r with
    | Error ds -> raise (Flow.Lint_failed ds)
    | Ok d ->
        let label, options = items.(i) in
        let p = point_of label options d in
        status.(i) <- `Evaluated p;
        Hls_obs.Trace.incr "dse/points_evaluated";
        Hashtbl.replace class_value keys.(i) (p.area, p.latency_ns);
        reals := (p.area, p.latency_ns) :: !reals
  in
  (* one decision per backend class — duplicate schedules never burn a
     promotion slot — most promising bound-score first: the successive-
     halving ranking collapsed to a total order now that verdicts
     stream back in flight instead of round-synchronously *)
  let first_of = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    Hashtbl.replace first_of keys.(i) i
  done;
  let class_order =
    Hashtbl.fold (fun _ i acc -> i :: acc) first_of []
    |> List.sort (fun i j -> compare (score i, i) (score j, j))
  in
  let window = Queue.create () in
  let rounds = ref 0 in
  let drain_one () =
    let i, fut = Queue.pop window in
    incr rounds;
    settle i (Pool.await fut)
  in
  List.iter
    (fun rep ->
      (* decide this class on exactly the verdicts incorporated so far:
         prune what the evaluated designs already dominate, promote the
         first member still standing *)
      let members = ref [] in
      for i = n - 1 downto 0 do
        if keys.(i) = keys.(rep) && is_pending i then
          if dominated lbs.(i) then prune i else members := i :: !members
      done;
      match !members with
      | [] -> () (* the whole class fell to its bounds — never promoted *)
      | i :: _ ->
          if Queue.length window >= promote_window then drain_one ();
          let _, options = items.(i) in
          Queue.push (i, Pool.async ~jobs (fun () -> Dse.eval_result engine options))
            window)
    class_order;
  while not (Queue.is_empty window) do
    drain_one ()
  done;
  (* every surviving point's class is now evaluated: non-dominated ones
     materialize from the backend cache, the rest are pruned by their
     exact value *)
  let survivors = ref [] in
  for i = n - 1 downto 0 do
    if is_pending i then begin
      let v = Hashtbl.find class_value keys.(i) in
      if dominated v then prune i else survivors := i :: !survivors
    end
  done;
  List.iter2 settle !survivors
    (Dse.run_result engine (List.map (fun i -> snd items.(i)) !survivors));
  let indices = List.init n Fun.id in
  let evaluated =
    List.filter_map
      (fun i -> match status.(i) with `Evaluated p -> Some p | _ -> None)
      indices
  in
  let pruned =
    List.filter_map
      (fun i ->
        match status.(i) with
        | `Pruned ->
            let label, options = items.(i) in
            Some
              {
                pr_label = label;
                pr_options = options;
                pr_area_lb = fst lbs.(i);
                pr_latency_lb = snd lbs.(i);
              }
        | _ -> None)
      indices
  in
  Hls_obs.Trace.record_max "dse/prune_rounds" !rounds;
  { evaluated; pruned; rounds = !rounds }

let sweep_pruned ?(config = Dse.default_config) ?engine ?(base = Flow.default_options)
    ?(schedulers = default_schedulers) ?(limits = default_limits) ?pipelines ?iterates
    src =
  run_points_pruned ~config ~engine src
    (cross ?pipelines ?iterates ~base ~schedulers ~limits ())
