(** Lint driver: run every checker over a finished design and render
    the diagnostics for people ([hlsc lint]) or machines ([--json]).

    The checking itself is {!Flow.lint}; this module adds the
    severity-floor filtering, the text/JSON presentation and the
    aggregated rule table. *)

val rules : (string * string) list
(** Every rule code with its one-line description, in pipeline order:
    CDFG well-formedness, schedule legality, allocation/binding
    soundness, netlist structure, controller/microcode consistency. *)

val run : ?floor:Hls_analysis.Diagnostic.severity -> Flow.design -> Hls_analysis.Diagnostic.t list
(** {!Flow.lint} restricted to diagnostics at or above [floor]
    (default [Info], i.e. everything), sorted for reporting. *)

val has_errors : Hls_analysis.Diagnostic.t list -> bool

val render : name:string -> Hls_analysis.Diagnostic.t list -> string
(** Human-readable report: one line per diagnostic plus a summary
    line, e.g. ["gcd: clean"] or ["diffeq: 2 errors, 1 warning"]. *)

val to_json : name:string -> Hls_analysis.Diagnostic.t list -> Hls_util.Json.t
(** [{ "name": ..., "summary": ..., "errors": n, "warnings": n,
    "diagnostics": [...] }] with each diagnostic serialized by
    {!Hls_analysis.Diagnostic.to_json}. *)

val rules_table : unit -> string
(** The {!rules} list formatted as an aligned two-column table. *)
