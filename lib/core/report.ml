

let schedule_table (d : Flow.design) =
  let buf = Buffer.create 512 in
  Hls_cdfg.Cfg.iter
    (fun bid b ->
      let sched = Hls_sched.Cfg_sched.block_schedule d.Flow.sched bid in
      Buffer.add_string buf
        (Printf.sprintf "%s: %d step(s), executes x%d\n" b.Hls_cdfg.Cfg.label
           (Hls_sched.Schedule.n_steps sched)
           (Hls_cdfg.Cfg.exec_frequency (Hls_sched.Cfg_sched.cfg d.Flow.sched) bid));
      Buffer.add_string buf (Format.asprintf "%a" Hls_sched.Schedule.pp sched))
    d.Flow.cfg;
  Buffer.contents buf

let summary (d : Flow.design) =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  out "=== synthesis report: %s ===\n" d.Flow.prog.Hls_lang.Typed.tname;
  out "options: passes=%s, scheduler=%s, limits=%s, allocator=%s, encoding=%s\n"
    (Hls_transform.Passes.pipeline_to_string d.Flow.options.Flow.passes)
    (Flow.scheduler_to_string d.Flow.options.Flow.scheduler)
    (Hls_sched.Limits.to_string d.Flow.options.Flow.limits)
    (match d.Flow.options.Flow.allocator with
    | `Clique -> "clique"
    | `Greedy_min_mux -> "greedy/min-mux"
    | `Greedy_first_fit -> "greedy/first-fit")
    (Hls_ctrl.Encoding.style_to_string d.Flow.options.Flow.encoding);
  let n_ops =
    List.fold_left
      (fun acc bid ->
        acc + List.length (Hls_cdfg.Dfg.compute_ops (Hls_cdfg.Cfg.dfg d.Flow.cfg bid)))
      0
      (Hls_cdfg.Cfg.block_ids d.Flow.cfg)
  in
  out "CDFG: %d blocks, %d step-occupying operations\n"
    (Hls_cdfg.Cfg.n_blocks d.Flow.cfg)
    n_ops;
  out "schedule: %d compute steps (weighted), %d FSM states\n"
    (Hls_sched.Cfg_sched.compute_steps d.Flow.sched)
    (Hls_sched.Cfg_sched.total_states d.Flow.sched);
  out "\n-- schedule --\n%s" (schedule_table d);
  out "\n-- functional units --\n%s"
    (Format.asprintf "%a" Hls_alloc.Fu_alloc.pp d.Flow.fu);
  List.iter
    (fun (f : Hls_rtl.Datapath.fu_def) ->
      out "FU%d bound to %s (%d bits, %d gates)\n" f.Hls_rtl.Datapath.fuid
        f.Hls_rtl.Datapath.comp.Hls_rtl.Component.cname f.Hls_rtl.Datapath.fwidth
        (Hls_rtl.Component.area f.Hls_rtl.Datapath.comp ~width:f.Hls_rtl.Datapath.fwidth))
    d.Flow.datapath.Hls_rtl.Datapath.fus;
  out "\n-- registers --\n%s" (Format.asprintf "%a" Hls_alloc.Reg_alloc.pp d.Flow.regs);
  out "\n-- interconnect --\n%s"
    (Format.asprintf "%a" Hls_alloc.Interconnect.pp_summary d.Flow.transfers);
  out "\n-- controller --\n";
  out "%d states, %d state bits, %d condition inputs\n"
    (Hls_ctrl.Fsm.n_states d.Flow.datapath.Hls_rtl.Datapath.fsm)
    (Hls_ctrl.Ctrl_synth.n_state_bits d.Flow.controller)
    (List.length (Hls_ctrl.Ctrl_synth.cond_signals d.Flow.controller));
  out "next-state logic: %d literals minimized (%d direct), %d PLA rows\n"
    (Hls_ctrl.Ctrl_synth.literal_cost d.Flow.controller)
    (Hls_ctrl.Ctrl_synth.direct_literal_cost d.Flow.controller)
    (Hls_ctrl.Ctrl_synth.pla_rows d.Flow.controller);
  out "\n-- estimate --\n%s" (Format.asprintf "%a" Hls_rtl.Estimate.pp d.Flow.estimate);
  Buffer.contents buf

let print d = print_string (summary d)
