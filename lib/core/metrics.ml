(* Render the Hls_obs.Trace sink for people and machines: a text
   report, a counters JSON object, and the Chrome trace_event format
   (chrome://tracing, Perfetto). Spans become "X" (complete) events —
   pid is the process, tid the recording domain, ts/dur microseconds
   since the trace epoch — and each counter's final total becomes one
   "C" event stamped at the end of the trace. *)

module J = Hls_util.Json
module T = Hls_obs.Trace

let span_json (s : T.span) =
  let args =
    (match s.T.sp_parent with Some p -> [ ("parent", J.Str p) ] | None -> [])
    @ List.map (fun (k, v) -> (k, J.Str v)) s.T.sp_args
  in
  J.Obj
    [
      ("name", J.Str s.T.sp_name);
      ("cat", J.Str "hls");
      ("ph", J.Str "X");
      ("ts", J.Num (1e6 *. s.T.sp_start));
      ("dur", J.Num (1e6 *. s.T.sp_dur));
      ("pid", J.Num 1.0);
      ("tid", J.Num (float_of_int s.T.sp_domain));
      ("args", J.Obj args);
    ]

let counter_event ~ts (name, value) =
  J.Obj
    [
      ("name", J.Str name);
      ("cat", J.Str "hls");
      ("ph", J.Str "C");
      ("ts", J.Num ts);
      ("pid", J.Num 1.0);
      ("args", J.Obj [ (name, J.Num (float_of_int value)) ]);
    ]

let counters_json () =
  J.Obj (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) (T.counters ()))

let counters_with_prefix prefix =
  List.filter (fun (k, _) -> String.starts_with ~prefix k) (T.counters ())

let counters_json_with_prefix prefix =
  J.Obj (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) (counters_with_prefix prefix))

let chrome_trace () =
  let spans = T.spans () in
  let end_ts =
    List.fold_left (fun acc (s : T.span) -> Float.max acc (s.T.sp_start +. s.T.sp_dur)) 0.0 spans
  in
  let events =
    List.map span_json spans
    @ List.map (counter_event ~ts:(1e6 *. end_ts)) (T.counters ())
  in
  J.Obj
    [
      ("traceEvents", J.Arr events);
      ("displayTimeUnit", J.Str "ms");
      ("counters", counters_json ());
      ("droppedEvents", J.Num (float_of_int (T.dropped ())));
    ]

let render_counters () =
  let cs = T.counters () in
  if cs = [] then "no counters recorded\n"
  else
    let width = List.fold_left (fun w (k, _) -> max w (String.length k)) 0 cs in
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%-*s %10d\n" width k v) cs)

let render () =
  let stages = Format.asprintf "%a" Timing.pp (Timing.snapshot ()) in
  let spans = T.spans () in
  Printf.sprintf "stage timings:\n%s\ncounters:\n%s\nspans captured: %d (dropped %d)\n"
    stages (render_counters ()) (List.length spans) (T.dropped ())

(* Shape check for an emitted Chrome trace: what `hlsc trace
   --validate` and the @trace-smoke alias run over the file. *)
let validate_chrome json =
  let ( let* ) = Result.bind in
  let* events =
    match J.member "traceEvents" json with
    | Some (J.Arr es) -> Ok es
    | _ -> Error "missing traceEvents array"
  in
  let* () = if events = [] then Error "empty traceEvents" else Ok () in
  let field name ev = J.member name ev in
  let rec check i = function
    | [] -> Ok ()
    | ev :: rest ->
        let bad what = Error (Printf.sprintf "event %d: %s" i what) in
        let* ph =
          match field "ph" ev with
          | Some (J.Str ph) -> Ok ph
          | _ -> bad "missing ph"
        in
        let* () =
          match field "name" ev with
          | Some (J.Str _) -> Ok ()
          | _ -> bad "missing name"
        in
        let* () =
          match (field "ts" ev, field "pid" ev) with
          | Some (J.Num _), Some (J.Num _) -> Ok ()
          | _ -> bad "missing ts/pid"
        in
        let* () =
          match ph with
          | "X" -> (
              match (field "dur" ev, field "tid" ev) with
              | Some (J.Num _), Some (J.Num _) -> Ok ()
              | _ -> bad "X event missing dur/tid")
          | "C" -> (
              match field "args" ev with
              | Some (J.Obj _) -> Ok ()
              | _ -> bad "C event missing args")
          | _ -> bad (Printf.sprintf "unexpected phase %S" ph)
        in
        check (i + 1) rest
  in
  check 0 events

let pipeline_stages =
  [ "frontend"; "midend"; "schedule"; "allocate"; "bind"; "control"; "estimate" ]

let covered_stages json =
  match J.member "traceEvents" json with
  | Some (J.Arr es) ->
      List.filter
        (fun stage ->
          List.exists
            (fun ev ->
              J.member "name" ev = Some (J.Str stage)
              && J.member "ph" ev = Some (J.Str "X"))
            es)
        pipeline_stages
  | _ -> []
