(** Exports of the {!Hls_obs.Trace} sink: text for people, a counters
    object for reports ([BENCH_dse.json]), and the Chrome
    [trace_event] format for [chrome://tracing] / Perfetto
    ([hlsc trace], [--trace] on [synth] and [dse]). *)

val chrome_trace : unit -> Hls_util.Json.t
(** The captured spans as Chrome ["X"] (complete) events — [pid] 1,
    [tid] the recording domain, [ts]/[dur] in microseconds since the
    trace epoch, span attributes and the parent link under [args] —
    plus one ["C"] (counter) event per counter with its final total,
    stamped at the trace end. Top-level [counters] and
    [droppedEvents] fields summarize the sink. *)

val counters_json : unit -> Hls_util.Json.t
(** All counters as one object, keys sorted. *)

val counters_with_prefix : string -> (string * int) list
(** Counters whose name starts with the prefix (e.g. ["serve/"],
    ["dse/"]), keys sorted — what a serve response embeds. *)

val counters_json_with_prefix : string -> Hls_util.Json.t
(** {!counters_with_prefix} as one JSON object. *)

val render : unit -> string
(** Text report: the {!Timing} stage breakdown, the counters, and the
    span-ring occupancy. *)

val render_counters : unit -> string
(** Just the counters, one aligned [name value] line each. *)

val validate_chrome : Hls_util.Json.t -> (unit, string) result
(** Shape-check an emitted Chrome trace: a non-empty [traceEvents]
    array whose events carry [name]/[ph]/[ts]/[pid], with [dur]/[tid]
    on ["X"] events and [args] on ["C"] events. *)

val pipeline_stages : string list
(** The seven pipeline stage span names, in flow order: [frontend],
    [midend], [schedule], [allocate], [bind], [control], [estimate]. *)

val covered_stages : Hls_util.Json.t -> string list
(** Which of {!pipeline_stages} appear as ["X"] events in a Chrome
    trace, in flow order. *)
