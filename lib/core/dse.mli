(** Parallel, memoized design-space exploration engine.

    An engine wraps one behavioral source and evaluates {!Flow.options}
    points against it, sharing work between points through a layered
    content-keyed cache over the staged flow:

    - {e frontend} (parse/inline/typecheck) runs once per engine;
    - {e midend} (CFG build + optimization) once per
      [(opt_level, if_conversion)];
    - {e schedule} once per midend key + [(scheduler, limits)], with
      the limits canonicalized away for schedulers that ignore them
      ({!Flow.scheduler_ignores_limits});
    - {e backend} (allocate/bind/control/estimate) once per midend key
      + schedule {e content} digest + [(allocator, share_variables,
      encoding)] — points whose schedulers happen to place every
      operation identically share one backend run.

    {!run} evaluates a point list on a {!Hls_util.Pool} of worker
    domains. Results are returned in input order and are identical for
    any [jobs] value: every stage is a deterministic pure function of
    its cache key, so racing workers can at worst duplicate work, never
    change a result (first writer wins; later workers adopt the stored
    value). An engine may be reused across calls — the cache carries
    over, which is the point. *)

open Hls_lang

type t

val create : ?memoize:bool -> string -> t
(** Engine over BSL source text. [memoize:false] disables every cache
    layer (each point pays the full flow) — the serial baseline used
    by the DSE benchmark. Default [true]. *)

val create_program : ?memoize:bool -> Ast.program -> t
(** Engine over an already-parsed program. *)

val eval : ?verify:bool -> t -> Flow.options -> Flow.design
(** Evaluate one option point through the cache. The returned design
    carries exactly the options given (a backend cache hit is rewrapped).
    With [~verify:true] (default [false]) the returned design — rewrapped
    or fresh, cache hits and misses alike — is run through {!Flow.lint}
    and {!Flow.Lint_failed} is raised on any error-severity diagnostic.
    Raises as {!Flow.synthesize} does. *)

val run : ?jobs:int -> ?verify:bool -> t -> Flow.options list -> Flow.design list
(** Evaluate the points on [jobs] worker domains ([<= 1] stays on the
    calling domain); results in input order. [jobs] is clamped to
    [Domain.recommended_domain_count ()] — domains beyond the
    hardware's parallelism only contend on the runtime's stop-the-world
    collector. Use {!Hls_util.Pool.map} directly to force a worker
    count. *)

type layer = { hits : int; misses : int }
type stats = { frontend : layer; midend : layer; schedule : layer; backend : layer }

val stats : t -> stats
(** Cache hit/miss counters per layer since creation (or {!clear}).
    Under concurrent runs, racing misses on one key are each counted. *)

val clear : t -> unit
(** Drop all cached stage results and zero the counters. *)

val pp_stats : Format.formatter -> stats -> unit
