(** Parallel, memoized design-space exploration engine.

    An engine wraps one behavioral source and evaluates {!Flow.options}
    points against it, sharing work between points through a layered
    content-keyed cache over the staged flow:

    - {e frontend} (parse/inline/typecheck) runs once per engine;
    - {e midend} (CFG build + optimization) once per
      [(canonical pipeline spec, if_conversion)];
    - {e schedule} once per midend key + [(scheduler, limits)], with
      the limits canonicalized away for schedulers that ignore them
      ({!Flow.scheduler_ignores_limits});
    - {e backend} (allocate/bind/control/estimate) once per midend key
      + schedule {e content} digest + [(allocator, share_variables,
      encoding)] — points whose schedulers happen to place every
      operation identically share one backend run.

    How an engine evaluates is a {!config} record fixed at creation,
    mirroring how {!Flow.options} fixes what is synthesized. {!run}
    evaluates a point list on a {!Hls_util.Pool} of [config.jobs]
    worker domains. Results are returned in input order and are
    identical for any job count: memoization is {e single-flight} —
    workers racing on one key block until the first computes it — so
    each stage runs exactly once per unique key. That also makes the
    cache hit/miss totals and every kernel counter reported through
    {!Hls_obs.Trace} deterministic across job counts. An engine may be
    reused across calls — the cache carries over, which is the point.

    Each layer also reports global trace counters
    ([dse/frontend.hits], [dse/backend.misses], ...) and each point
    evaluation runs under a [dse/point] span carrying the option-point
    attributes. *)

open Hls_lang

type t

type config = {
  jobs : int;  (** worker domains for {!run} ([<= 1] stays on the calling domain) *)
  verify : bool;  (** run the full design lint on every evaluated point *)
  memoize : bool;  (** [false] disables every cache layer (the serial baseline) *)
  cache_dir : string option;
      (** persistent design cache directory. When set (and [memoize]),
          every {!eval_result} runs through an additional {e persist}
          layer above the staged tables: an in-memory single-flight
          table over whole points, backed by an on-disk
          content-addressed store ({!Hls_util.Disk_cache}). Keys mirror
          the layered memo keys — digest of (running binary, source,
          [verify], options with limits canonicalized for
          limit-ignoring schedulers) — so a fresh process (a daemon
          restart) answers a repeated request from disk without running
          any pipeline stage, bit-identically. Corrupt or truncated
          entries read as a miss. Probes bump [dse/persist.hits/misses]
          (memory) and [serve/disk_hits]/[serve/disk_misses] (disk). *)
}

val default_config : config
(** [{ jobs = 1; verify = false; memoize = true; cache_dir = None }]. *)

val create : ?config:config -> string -> t
(** Engine over BSL source text (default config {!default_config}). *)

val create_program : ?config:config -> Ast.program -> t
(** Engine over an already-parsed program. *)

val config : t -> config

val eval_cheap : t -> Flow.options -> Flow.optimized * Hls_sched.Cfg_sched.t
(** Evaluate one option point through the {e cheap} stages only —
    frontend, midend and scheduling — via the same cache keys as
    {!eval_result}, skipping allocate/bind/control/estimate. This is
    what a pruned sweep ranks on: the schedule fixes the step count
    and per-class unit requirement exactly, from which sound area and
    latency lower bounds follow without paying the backend. A later
    {!eval_result} of the same point reuses every stage computed
    here. *)

val eval_result :
  t -> Flow.options -> (Flow.design, Hls_analysis.Diagnostic.t list) result
(** Evaluate one option point through the cache. The returned design
    carries exactly the options given (a backend cache hit is
    rewrapped). [Error] carries the structural netlist diagnostics, or
    — when [config.verify] — any error-severity diagnostics from
    {!Flow.lint}, run on the rewrapped design for cache hits and misses
    alike. Raises as {!Flow.synthesize_result} does on malformed
    input. *)

val run_result :
  t ->
  Flow.options list ->
  (Flow.design, Hls_analysis.Diagnostic.t list) result list
(** Evaluate the points on up to [config.jobs] workers of the shared
    {!Hls_util.Pool}; results in input order. Effective parallelism
    adapts to the machine — on a box with no spare cores the pool
    falls back to the calling domain — but results and every non-pool
    counter are identical either way. *)

val eval : t -> Flow.options -> Flow.design
(** Legacy raising wrapper: {!eval_result} with [Error ds] rethrown as
    {!Flow.Lint_failed}. *)

val run : t -> Flow.options list -> Flow.design list
(** Legacy raising wrapper over {!run_result}; the first [Error] in
    input order raises {!Flow.Lint_failed}. *)

type layer = { hits : int; misses : int }

type stats = {
  frontend : layer;
  midend : layer;
  schedule : layer;
  backend : layer;
  refine : layer;
      (** the feedback-refinement layer: keyed on the backend seed plus
          effective limits and iterate count, probed only for points
          with [iterate > 0] *)
}

val stats : t -> stats
(** Cache hit/miss counters per layer since creation (or {!clear}).
    Single-flight memoization makes the totals deterministic: one miss
    per unique key probed, hits for every other probe, for any job
    count. *)

val clear : t -> unit
(** Drop all cached stage results (including the in-memory persist
    table — the disk store is untouched) and zero the counters. Must
    not be called while a {!run} is in flight. *)

val design_digest : Flow.design -> string
(** Hex digest of the design's marshalled image. Two designs with equal
    digests are bit-identical values; a disk-cache hit reproduces the
    digest of the design originally stored. What the serve protocol
    reports as [design_hash]. *)

val pp_stats : Format.formatter -> stats -> unit
