(* Thin view over Hls_obs.Trace's always-on duration accumulators.
   The historical Timing API is kept so Explore.table and the DSE
   benchmark read the per-stage breakdown unchanged; the data now
   lives in the trace sink, where spans also carry attributes and feed
   the Chrome trace export (see Metrics). *)

type entry = { stage : string; seconds : float; calls : int }

let reset () = Hls_obs.Trace.reset_durations ()
let record = Hls_obs.Trace.record_duration
let time stage f = Hls_obs.Trace.with_span stage f

let snapshot () =
  List.map
    (fun (stage, seconds, calls) -> { stage; seconds; calls })
    (Hls_obs.Trace.durations_snapshot ())

let pp ppf entries =
  List.iter
    (fun e ->
      Format.fprintf ppf "%-10s %8.3f ms  (%d calls)@." e.stage (1e3 *. e.seconds) e.calls)
    entries
