(* Wall-clock accumulators per named flow stage. A single global table
   guarded by a mutex: worker domains running backend stages in parallel
   all report into the same breakdown. *)

type entry = { stage : string; seconds : float; calls : int }

let lock = Mutex.create ()
let table : (string, float * int) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  order := [];
  Mutex.unlock lock

let record stage seconds =
  Mutex.lock lock;
  (match Hashtbl.find_opt table stage with
  | Some (s, c) -> Hashtbl.replace table stage (s +. seconds, c + 1)
  | None ->
      Hashtbl.add table stage (seconds, 1);
      order := stage :: !order);
  Mutex.unlock lock

let time stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record stage (Unix.gettimeofday () -. t0)) f

let snapshot () =
  Mutex.lock lock;
  let entries =
    List.rev_map
      (fun stage ->
        let seconds, calls = Hashtbl.find table stage in
        { stage; seconds; calls })
      !order
  in
  Mutex.unlock lock;
  entries

let pp ppf entries =
  List.iter
    (fun e ->
      Format.fprintf ppf "%-10s %8.3f ms  (%d calls)@." e.stage (1e3 *. e.seconds) e.calls)
    entries
