module D = Hls_analysis.Diagnostic

let rules =
  Hls_analysis.Cdfg_check.rules
  @ List.map (fun (code, _, doc) -> (code, doc)) Hls_analysis.Width_check.rules
  @ Hls_analysis.Sched_check.rules
  @ Hls_analysis.Alloc_check.rules
  @ Hls_rtl.Check.rules
  @ Hls_analysis.Ctrl_check.rules
  @ [ ("CTRL010", "microcode field addresses a dead resource") ]

let run ?(floor = D.Info) d = D.filter ~floor (Flow.lint d)
let has_errors ds = D.errors ds <> []

let count sev ds = List.length (List.filter (fun (d : D.t) -> d.D.severity = sev) ds)

let render ~name ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (D.to_string d);
      Buffer.add_char buf '\n')
    ds;
  Buffer.add_string buf (Printf.sprintf "%s: %s\n" name (D.summary ds));
  Buffer.contents buf

let to_json ~name ds =
  Hls_util.Json.Obj
    [
      ("name", Hls_util.Json.Str name);
      ("summary", Hls_util.Json.Str (D.summary ds));
      ("errors", Hls_util.Json.Num (float_of_int (count D.Error ds)));
      ("warnings", Hls_util.Json.Num (float_of_int (count D.Warning ds)));
      ("diagnostics", Hls_util.Json.Arr (List.map D.to_json ds));
    ]

let rules_table () =
  let width = List.fold_left (fun w (c, _) -> max w (String.length c)) 0 rules in
  String.concat ""
    (List.map (fun (code, doc) -> Printf.sprintf "%-*s  %s\n" width code doc) rules)
