(** The end-to-end synthesis flow: compile → optimize → schedule →
    allocate → bind → synthesize control → estimate. One call takes a
    behavioral specification to a complete verified register-transfer
    design, with every stage's intermediate result exposed. *)

open Hls_lang
open Hls_sched

type scheduler =
  | Asap
  | List_path  (** list scheduling, critical-path priority *)
  | List_mobility
  | Force_directed of int  (** extra steps of slack over the critical path *)
  | Freedom
  | Branch_bound  (** falls back to list scheduling past 24 ops *)
  | Ilp_exact  (** Hafer-style 0/1 program; falls back past 12 ops *)
  | Trans_parallel
  | Trans_serial

val scheduler_to_string : scheduler -> string

type options = {
  opt_level : [ `None | `Standard | `Aggressive ];
  if_conversion : bool;  (** speculate small branch diamonds into muxes *)
  scheduler : scheduler;
  limits : Limits.t;
  allocator : [ `Clique | `Greedy_min_mux | `Greedy_first_fit ];
  share_variables : bool;
  encoding : Hls_ctrl.Encoding.style;
}

val default_options : options
(** Standard optimization, path-priority list scheduling on two
    functional units, min-mux greedy allocation, binary encoding. *)

type design = {
  options : options;
  prog : Typed.tprogram;
  cfg : Hls_cdfg.Cfg.t;  (** after optimization *)
  sched : Cfg_sched.t;
  fu : Hls_alloc.Fu_alloc.t;
  regs : Hls_alloc.Reg_alloc.t;
  transfers : Hls_alloc.Interconnect.transfer list;
  datapath : Hls_rtl.Datapath.t;
  controller : Hls_ctrl.Ctrl_synth.t;
  estimate : Hls_rtl.Estimate.t;
}

(** {2 Staged pipeline}

    The flow is exposed as reusable stages so the DSE engine can share
    work between option points: the frontend result depends only on the
    source, the midend result only on [(source, opt_level,
    if_conversion)], and the schedule only additionally on [(scheduler,
    limits)] — everything downstream of a stage is a pure function of
    that stage's output plus the remaining option fields. Each stage is
    wrapped in a {!Timing} accumulator ([frontend], [midend],
    [schedule], [allocate], [bind], [control], [estimate]). *)

type compiled = { c_ast : Ast.program; c_prog : Typed.tprogram }
type optimized = { o_prog : Typed.tprogram; o_cfg : Hls_cdfg.Cfg.t; o_outputs : string list }

val frontend : string -> compiled
(** Parse, inline-expand and typecheck BSL source. Raises
    {!Ast.Frontend_error} on bad input. *)

val frontend_program : Ast.program -> compiled
(** As {!frontend}, starting from an already-parsed program. *)

val midend :
  opt_level:[ `None | `Standard | `Aggressive ] ->
  if_conversion:bool ->
  compiled ->
  optimized
(** Build the CFG and run the optimization passes (plus optional
    if-conversion with re-optimization). Compiles a fresh CFG each
    call — passes mutate in place — so distinct [optimized] values
    never alias; the result is only ever read downstream and may be
    shared across worker domains. *)

val schedule : options -> optimized -> Cfg_sched.t
(** Schedule every block with [options.scheduler] under
    [options.limits], and verify the result (dependences always;
    limits too unless {!scheduler_ignores_limits}). Raises
    [Invalid_argument] if the scheduler breaks its contract. *)

val complete : options -> optimized -> sched:Cfg_sched.t -> design
(** Allocation, binding, control synthesis and estimation on top of an
    existing schedule. Raises [Failure] if the produced datapath fails
    the structural netlist checks. *)

val backend : options -> optimized -> design
(** [schedule] then [complete]. *)

val scheduler_ignores_limits : scheduler -> bool
(** Time-constrained schedulers ([Force_directed], [Freedom]) derive
    their own deadline and ignore [options.limits]; their schedules are
    verified (and may be cached) independently of the limits. *)

val synthesize_program : ?options:options -> Ast.program -> design
(** The full flow: [frontend_program] → [midend] → [backend]. Raises
    {!Ast.Frontend_error} on bad input, [Invalid_argument] if an
    internal consistency check fails, and [Failure] if the produced
    datapath fails the structural netlist checks. *)

val synthesize : ?options:options -> string -> design
(** Parse BSL source text and synthesize. *)

val ports_of : Typed.tprogram -> (string * [ `In | `Out ] * Ast.ty) list
val output_names : Typed.tprogram -> string list

val cosim_design : design -> Hls_sim.Cosim.design
(** Adapter for {!Hls_sim.Cosim}. *)

val verify : ?runs:int -> design -> (unit, string) result
(** Random-vector co-simulation of the design (behavior = CDFG = RTL). *)
