(** The end-to-end synthesis flow: compile → optimize → schedule →
    allocate → bind → synthesize control → estimate. One call takes a
    behavioral specification to a complete verified register-transfer
    design, with every stage's intermediate result exposed. *)

open Hls_lang
open Hls_sched

exception Lint_failed of Hls_analysis.Diagnostic.t list
(** Raised by the {e legacy} raising wrappers ({!complete}, {!backend},
    {!synthesize} and friends) with the full structured error list when
    a produced design fails verification — either the always-on
    datapath check or, with [~verify:true], the full design {!lint}.
    New code should use the Result-returning API ({!run},
    {!complete_result}, {!backend_result}, {!synthesize_result}), for
    which this exception never fires. A printer is registered, so an
    uncaught [Lint_failed] renders every diagnostic. *)

type scheduler =
  | Asap
  | List_path  (** list scheduling, critical-path priority *)
  | List_mobility
  | Force_directed of int  (** extra steps of slack over the critical path *)
  | Freedom
  | Branch_bound  (** falls back to list scheduling past 24 ops *)
  | Ilp_exact  (** Hafer-style 0/1 program; falls back past 12 ops *)
  | Trans_parallel
  | Trans_serial

val scheduler_to_string : scheduler -> string
val allocator_to_string : [ `Clique | `Greedy_min_mux | `Greedy_first_fit ] -> string

type options = {
  passes : Hls_transform.Passes.pipeline;
      (** optimization pipeline spec; canonical string form via
          {!Hls_transform.Passes.pipeline_to_string} (legacy levels map
          through {!Hls_transform.Passes.level}) *)
  if_conversion : bool;  (** speculate small branch diamonds into muxes *)
  scheduler : scheduler;
  limits : Limits.t;
  allocator : [ `Clique | `Greedy_min_mux | `Greedy_first_fit ];
  share_variables : bool;
  encoding : Hls_ctrl.Encoding.style;
  narrow : bool;
      (** shrink register/FU/mux widths to the {!Hls_analysis.Range}
          inferred widths. Area-only: simulation evaluates at [Op.eval]
          precision regardless of declared storage width, so narrowed
          designs are bit-identical to the baseline. *)
  iterate : int;
      (** feedback-guided refinement iterations after the one-shot
          backend ({!refine_design}): 0 — the default — is the
          historical one-shot flow. Refinement only ever replaces block
          schedules with verified ones, so an iterated design is
          behaviourally bit-identical to its seed; it is accepted only
          on strict Pareto improvement of (area, latency). *)
}

val default_options : options
(** Standard optimization, path-priority list scheduling on two
    functional units, min-mux greedy allocation, binary encoding. *)

type design = {
  options : options;
  prog : Typed.tprogram;
  cfg : Hls_cdfg.Cfg.t;  (** after optimization *)
  sched : Cfg_sched.t;
  fu : Hls_alloc.Fu_alloc.t;
  regs : Hls_alloc.Reg_alloc.t;
  transfers : Hls_alloc.Interconnect.transfer list;
  datapath : Hls_rtl.Datapath.t;
  controller : Hls_ctrl.Ctrl_synth.t;
  estimate : Hls_rtl.Estimate.t;
}

(** {2 Staged pipeline}

    The flow is exposed as reusable stages so the DSE engine can share
    work between option points: the frontend result depends only on the
    source, the midend result only on [(source, passes,
    if_conversion)], and the schedule only additionally on [(scheduler,
    limits)] — everything downstream of a stage is a pure function of
    that stage's output plus the remaining option fields. Each stage
    runs under an {!Hls_obs.Trace} span named [frontend], [midend],
    [schedule], [allocate], [bind], [control] or [estimate], carrying
    the option fields its result depends on as span attributes — the
    {!Timing} breakdown and the Chrome trace export both read from
    those spans. *)

type compiled = { c_prog : Typed.tprogram }
type optimized = { o_prog : Typed.tprogram; o_cfg : Hls_cdfg.Cfg.t; o_outputs : string list }

val frontend : string -> compiled
(** Parse, inline-expand and typecheck BSL source. Raises
    {!Ast.Frontend_error} on bad input. *)

val frontend_program : Ast.program -> compiled
(** As {!frontend}, starting from an already-parsed program. *)

val compiled_of_typed : Typed.tprogram -> compiled
(** Wrap an already-typechecked program, skipping the frontend. *)

val midend :
  passes:Hls_transform.Passes.pipeline ->
  if_conversion:bool ->
  compiled ->
  optimized
(** Build the CFG and run the pipeline's passes (plus optional
    if-conversion with re-optimization, fact folding when the spec asks
    for it, and cost-guided extraction under the component-library cost
    model). Compiles a fresh CFG each call — passes mutate in place —
    so distinct [optimized] values never alias; the result is only ever
    read downstream and may be shared across worker domains. *)

val nonneg_oracle :
  ports:(string * [ `In | `Out ] * Ast.ty) list ->
  Hls_cdfg.Cfg.t ->
  Hls_cdfg.Cfg.bid ->
  Hls_cdfg.Dfg.nid ->
  bool
(** Range-analysis fact oracle handed to the guarded rewrite rules
    (division by a power of two needs a proven non-negative numerator). *)

val component_cost : Hls_transform.Extract.cost
(** Extraction cost model derived from {!Hls_rtl.Component.library}:
    cheapest component per class, delays in picoseconds. *)

val schedule : options -> optimized -> Cfg_sched.t
(** Schedule every block with [options.scheduler] under
    [options.limits], and verify the result (dependences always;
    limits too unless {!scheduler_ignores_limits}). Raises
    [Invalid_argument] if the scheduler breaks its contract. *)

(** {2 Result API}

    The primary way to drive the flow: verification failures are
    ordinary values carrying the structured diagnostic list, never
    exceptions. [Error] is produced when the datapath fails the
    always-on structural netlist checks, or — with [~verify:true]
    (default [false]) — when the full design {!lint} reports any
    error-severity diagnostic. Internal contract violations (a
    scheduler breaking its own invariants) still raise
    [Invalid_argument]: those are bugs, not designs that failed
    verification. *)

val complete_result :
  ?verify:bool ->
  options ->
  optimized ->
  sched:Cfg_sched.t ->
  (design, Hls_analysis.Diagnostic.t list) result
(** Allocation, binding, control synthesis and estimation on top of an
    existing schedule. *)

val backend_result :
  ?verify:bool -> options -> optimized -> (design, Hls_analysis.Diagnostic.t list) result
(** [schedule] then {!complete_result}; with [options.iterate > 0] the
    completed design additionally goes through {!refine_design}, and
    [~verify] lints the final (refined) design. *)

val refine_design : options -> optimized -> design -> design * int
(** Feedback-guided iterative re-scheduling of a completed design
    ({!Hls_sched.Refine} wired to this backend): up to
    [options.iterate] iterations, each extracting the critical subgraph
    from the current design — the delay-weighted longest
    register-to-register chain under the {!Hls_rtl.Component} delay
    model, blocks with an oversubscribed FU class, producers on the
    live-storage floor — re-scheduling those blocks with the
    incremental force-directed kernel under tightened deadlines and
    distribution-perturbing pins, and completing each candidate through
    the backend. A candidate is kept only if it verifies under
    {!effective_limits} and strictly Pareto-improves (total area,
    latency); with no improvement the seed design itself is returned.
    Returns the design and the number of accepted iterations. Counters
    land under [refine/*] with a [refine] span wrapping the loop and a
    [refine/iter] span per iteration. *)

val run :
  ?verify:bool ->
  options ->
  Typed.tprogram ->
  (design, Hls_analysis.Diagnostic.t list) result
(** The full flow from an already-typechecked program: [midend] →
    {!backend_result}, skipping parse/typecheck. *)

val synthesize_result :
  ?options:options ->
  ?verify:bool ->
  string ->
  (design, Hls_analysis.Diagnostic.t list) result
(** Parse BSL source text and run the full flow. Raises
    {!Ast.Frontend_error} on bad input (malformed input is not a
    design that failed verification). *)

val synthesize_program_result :
  ?options:options ->
  ?verify:bool ->
  Ast.program ->
  (design, Hls_analysis.Diagnostic.t list) result

(** {2 Legacy raising wrappers}

    Each is its [_result] sibling with [Error ds] rethrown as
    [Lint_failed ds]; kept for callers written against the original
    exception-based API. *)

val complete : ?verify:bool -> options -> optimized -> sched:Cfg_sched.t -> design
val backend : ?verify:bool -> options -> optimized -> design

val scheduler_ignores_limits : scheduler -> bool
(** Time-constrained schedulers ([Force_directed], [Freedom]) derive
    their own deadline and ignore [options.limits]; their schedules are
    verified (and may be cached) independently of the limits. *)

val effective_limits : options -> Limits.t
(** The limits a finished design is actually accountable to:
    [options.limits], or [Unlimited] when {!scheduler_ignores_limits}.
    This is what {!lint} checks schedules against and what
    {!refine_design} requires candidates to verify under. *)

val synthesize_program : ?options:options -> ?verify:bool -> Ast.program -> design
(** The full flow: [frontend_program] → [midend] → [backend]. Raises
    {!Ast.Frontend_error} on bad input, [Invalid_argument] if an
    internal consistency check fails, and {!Lint_failed} as
    {!synthesize_program_result} would return [Error]. *)

val synthesize : ?options:options -> ?verify:bool -> string -> design
(** Parse BSL source text and synthesize, raising on failure. *)

(** {2 Design lint}

    Every checker of {!Hls_analysis} plus the netlist rules of
    {!Hls_rtl.Check}, run over one finished design. *)

val lint : design -> Hls_analysis.Diagnostic.t list
(** All diagnostics for the design, sorted with
    {!Hls_analysis.Diagnostic.sort}: CDFG well-formedness, schedule
    legality (under the design's effective limits), allocation/binding
    soundness, netlist structure, controller consistency and the
    microcode image. An empty list means the design is clean. *)

val lint_check : design -> unit
(** Raise {!Lint_failed} with the error-severity subset of {!lint} if
    it is non-empty. *)

val microcode_image :
  design -> Hls_ctrl.Microcode.field list * int list array
(** The microcoded-control image linted by {!lint}: fields [reg_en]
    (one-hot over the datapath registers), [fu_op] and [branch], and
    one word per FSM state. Exposed so tests can mutate the image and
    feed it back through {!lint_microcode}. *)

val lint_microcode :
  design -> words:int list array -> Hls_analysis.Diagnostic.t list
(** CTRL010 — microcode fields addressing dead resources: a [reg_en]
    bit set for a register the state never loads, or a [branch] flag in
    a state with no condition wire. *)

val ports_of : Typed.tprogram -> (string * [ `In | `Out ] * Ast.ty) list
val output_names : Typed.tprogram -> string list

val cosim_design : design -> Hls_sim.Cosim.design
(** Adapter for {!Hls_sim.Cosim}. *)

val verify : ?runs:int -> design -> (unit, string) result
(** Random-vector co-simulation of the design (behavior = CDFG = RTL). *)
