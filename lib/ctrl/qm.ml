module CubeSet = Set.Make (struct
  type t = int * int (* mask, value *)

  let compare = compare
end)

(* Pair generation is the hot path: a cube (m, v) combines with
   (m, v lxor bit) for each cared bit. Looking the partner up in a set
   makes each level O(cubes × inputs) instead of O(cubes²). *)
let combine_level level =
  let combined = ref CubeSet.empty in
  let used = Hashtbl.create (CubeSet.cardinal level * 2) in
  CubeSet.iter
    (fun (m, v) ->
      let rec bits mask =
        if mask <> 0 then begin
          let bit = mask land -mask in
          if v land bit = 0 then begin
            let partner = (m, v lor bit) in
            if CubeSet.mem partner level then begin
              Hashtbl.replace used (m, v) ();
              Hashtbl.replace used partner ();
              let nm = m land lnot bit in
              combined := CubeSet.add (nm, v land nm) !combined
            end
          end;
          bits (mask land lnot bit)
        end
      in
      bits m)
    level;
  let primes =
    CubeSet.filter (fun c -> not (Hashtbl.mem used c)) level
  in
  (primes, !combined)

let minimize ~n_inputs ~on_set ?(dc_set = []) () =
  if n_inputs > 20 then invalid_arg "Qm.minimize: too many inputs";
  (* hash the dc-set once: O(on + dc) instead of the O(on × dc)
     List.exists/List.mem scan, which showed up on one-hot controllers
     where both sets are large *)
  if dc_set <> [] then begin
    let dc = Hashtbl.create (2 * List.length dc_set) in
    List.iter (fun m -> Hashtbl.replace dc m ()) dc_set;
    if List.exists (fun m -> Hashtbl.mem dc m) on_set then
      invalid_arg "Qm.minimize: on-set and dc-set overlap"
  end;
  let full_mask = (1 lsl n_inputs) - 1 in
  match on_set with
  | [] -> []
  | _ ->
      let initial =
        List.fold_left
          (fun acc m -> CubeSet.add (full_mask, m land full_mask) acc)
          CubeSet.empty (on_set @ dc_set)
      in
      let primes = ref CubeSet.empty in
      let rec loop level =
        if not (CubeSet.is_empty level) then begin
          Hls_obs.Trace.incr "ctrl/qm_iterations";
          let level_primes, combined = combine_level level in
          primes := CubeSet.union !primes level_primes;
          loop combined
        end
      in
      loop initial;
      let prime_arr =
        Array.of_list
          (List.map (fun (mask, value) -> { Logic.mask; value }) (CubeSet.elements !primes))
      in
      let on_arr = Array.of_list (List.sort_uniq compare on_set) in
      (* coverage lists: per minterm, the primes covering it *)
      let covering =
        Array.map
          (fun m ->
            let l = ref [] in
            Array.iteri (fun pi c -> if Logic.cube_covers c m then l := pi :: !l) prime_arr;
            !l)
          on_arr
      in
      let chosen = Hashtbl.create (max 16 (2 * Array.length prime_arr)) in
      let covered = Array.make (Array.length on_arr) false in
      let choose pi =
        if not (Hashtbl.mem chosen pi) then begin
          Hashtbl.add chosen pi ();
          Array.iteri
            (fun mi m ->
              if (not covered.(mi)) && Logic.cube_covers prime_arr.(pi) m then
                covered.(mi) <- true)
            on_arr
        end
      in
      (* essential primes: sole cover of some minterm *)
      Array.iteri
        (fun mi cover -> match cover with [ pi ] -> choose pi | _ -> ignore mi)
        covering;
      (* greedy cover of the rest *)
      let rec greedy () =
        let best = ref None in
        Array.iteri
          (fun pi c ->
            if not (Hashtbl.mem chosen pi) then begin
              let gain = ref 0 in
              Array.iteri
                (fun mi m ->
                  if (not covered.(mi)) && Logic.cube_covers c m then incr gain)
                on_arr;
              match !best with
              | Some (g, _) when g >= !gain -> ()
              | _ -> if !gain > 0 then best := Some (!gain, pi)
            end)
          prime_arr;
        match !best with
        | Some (_, pi) ->
            choose pi;
            greedy ()
        | None -> ()
      in
      if Array.exists (fun c -> not c) covered then greedy ();
      if Array.exists (fun c -> not c) covered then
        invalid_arg "Qm.minimize: cover failure (internal)";
      Hashtbl.fold (fun pi () acc -> prime_arr.(pi) :: acc) chosen []
      |> List.sort compare
