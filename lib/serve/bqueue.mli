(** Bounded multi-producer/multi-consumer queue with non-blocking
    admission — the backpressure valve of the serve daemon. [offer]
    refuses rather than blocks when full, which the acceptor turns into
    a typed [busy] response; [take] blocks until an item arrives or the
    queue is closed and drained, which makes [close] a graceful
    shutdown: no new work admitted, everything already accepted still
    served. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on negative capacity. Capacity 0 refuses
    every offer — useful for tests of the rejection path. *)

val offer : 'a t -> 'a -> bool
(** Non-blocking admission: [false] when the queue holds [capacity]
    items or has been closed. *)

val take : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed
    and fully drained ([None]). *)

val close : 'a t -> unit
(** Refuse all future offers and wake every blocked taker; already
    queued items are still handed out. Idempotent. *)

val length : 'a t -> int
val is_closed : 'a t -> bool
