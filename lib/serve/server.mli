(** The [hlsc serve] daemon: a long-running process answering synth /
    dse / lint / ping / stats / shutdown requests framed as JSON
    (see {!Proto}) over a Unix socket or a plain fd pair.

    A server keeps one {!Hls_core.Dse} engine per distinct source text,
    so repeated requests share the staged in-memory cache — and, with
    [cache_dir] set, the persistent disk layer beneath it: a freshly
    started daemon answers a previously computed point from disk,
    bit-identically, without running any pipeline stage.

    Concurrency: a fixed crew of [workers] handler domains drains a
    bounded queue of accepted connections. When the queue holds
    [max_queue] connections the acceptor refuses with a typed [busy]
    response instead of queueing latency invisibly. Shutdown drains:
    accepted connections are served to completion, then the handlers
    join.

    Counters (via {!Hls_obs.Trace}): [serve/requests],
    [serve/rejected], [serve/inflight_peak], and — from the engines'
    disk layer — [serve/disk_hits] / [serve/disk_misses]. Every request
    runs under a [serve/request] span and is answered with its span
    id. *)

type config = {
  workers : int;  (** handler domains draining the connection queue *)
  max_queue : int;  (** accepted-but-unhandled connection bound *)
  jobs : int;  (** per-request Dse worker jobs *)
  verify : bool;  (** full design lint on every evaluated point *)
  cache_dir : string option;  (** persistent design cache location *)
}

val default_config : config
(** [{ workers = 2; max_queue = 16; jobs = 1; verify = false;
    cache_dir = None }]. *)

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on [workers < 1] or negative
    [max_queue]. *)

val handle : t -> Hls_util.Json.t -> Hls_util.Json.t
(** The synchronous request core: decode, dispatch, encode. Every
    failure mode — malformed request, unknown workload, frontend
    errors, a raising pipeline — returns a structured [error]
    response; this function does not raise on client input. Safe to
    call from concurrent domains. *)

val handle_text : t -> string -> Hls_util.Json.t
(** {!handle} after JSON parsing; parse failures become [error]
    responses too. *)

val serve_unix : t -> path:string -> unit
(** Bind [path] (unlinking any stale socket), accept until a stop is
    requested, then drain and join. Blocks the calling domain. *)

val serve_frames : t -> input:Unix.file_descr -> output:Unix.file_descr -> unit
(** Single-client framed mode ([hlsc serve --stdio]): serve requests
    inline until a shutdown request, clean EOF, or torn frame. *)

val request_stop : t -> unit
(** Raise the stop flag; {!serve_unix} observes it within its accept
    timeout (and a [shutdown] request raises it from inside). *)

val stop_requested : t -> bool
val engine_count : t -> int

(** Minimal blocking client over the same framing, for tests and the
    CLI's own smoke checks. *)
module Client : sig
  type conn

  val connect : string -> conn
  val request : conn -> Hls_util.Json.t -> (Hls_util.Json.t, string) result
  val close : conn -> unit
end
