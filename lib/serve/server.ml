(* The hlsc serve daemon.

   One server owns a registry of Dse engines keyed by source digest, so
   repeated requests against the same source share every layer of the
   in-memory staged cache, and — when cache_dir is set — the persistent
   disk layer underneath it: a freshly started daemon answers a request
   it has never seen from the store a previous daemon wrote.

   Concurrency shape: a fixed crew of handler domains drains a bounded
   connection queue fed by the acceptor. Fixed because OCaml domains
   are heavyweight and capped (~128); bounded because admission control
   must be explicit — when the queue is full the acceptor answers a
   typed `busy` frame immediately instead of letting latency hide in an
   unbounded backlog. Within a request, parallelism comes from the
   shared Hls_util.Pool via the engine's `jobs`, exactly as in the CLI.

   Shutdown is graceful by construction: `stop` closes the queue, which
   refuses new connections while the handlers finish everything already
   accepted, then joins the handler domains. A `shutdown` request only
   raises the stop flag; the acceptor loop observes it within its
   select timeout. *)

module J = Hls_util.Json
module Flow = Hls_core.Flow
module Dse = Hls_core.Dse
module Trace = Hls_obs.Trace

type config = {
  workers : int;  (** handler domains draining the connection queue *)
  max_queue : int;  (** accepted-but-unhandled connection bound *)
  jobs : int;  (** per-request Dse worker jobs *)
  verify : bool;  (** full design lint on every evaluated point *)
  cache_dir : string option;  (** persistent design cache location *)
}

let default_config =
  { workers = 2; max_queue = 16; jobs = 1; verify = false; cache_dir = None }

type t = {
  config : config;
  engines : (string, Dse.t) Hashtbl.t;
  engines_lock : Mutex.t;
  queue : Unix.file_descr Bqueue.t;
  stop_flag : bool Atomic.t;
  inflight : int Atomic.t;
}

let create ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.max_queue < 0 then invalid_arg "Server.create: negative max_queue";
  {
    config;
    engines = Hashtbl.create 7;
    engines_lock = Mutex.create ();
    queue = Bqueue.create ~capacity:config.max_queue;
    stop_flag = Atomic.make false;
    inflight = Atomic.make 0;
  }

let stop_requested t = Atomic.get t.stop_flag
let request_stop t = Atomic.set t.stop_flag true

(* One engine per distinct source text; the digest key means inline
   "source" text and the equivalent named "workload" share an engine. *)
let engine_for t source =
  let key = Digest.to_hex (Digest.string source) in
  Hls_obs.Sync.with_lock t.engines_lock (fun () ->
      match Hashtbl.find_opt t.engines key with
      | Some e -> e
      | None ->
          let config =
            {
              Dse.jobs = t.config.jobs;
              verify = t.config.verify;
              memoize = true;
              cache_dir = t.config.cache_dir;
            }
          in
          let e = Dse.create ~config source in
          Hashtbl.add t.engines key e;
          e)

let engine_count t =
  Hls_obs.Sync.with_lock t.engines_lock (fun () -> Hashtbl.length t.engines)

(* ---- the synchronous request core ---- *)

let eval_point t ~source options =
  let engine = engine_for t source in
  match Dse.eval_result engine options with
  | Ok d -> ("ok", [ ("design", Proto.design_summary d) ])
  | Error ds ->
      ( "error",
        [
          ("error", J.Str "design failed verification");
          ("diagnostics", Proto.diagnostics_json ds);
        ] )

let dispatch t ~span req =
  match req with
  | Proto.Synth { source; options; _ } -> (
      match eval_point t ~source options with
      | "ok", fields -> Proto.ok ~span fields
      | _, fields -> Proto.response ~status:"error" ~span fields)
  | Proto.Dse { source; points; _ } ->
      let engine = engine_for t source in
      let results = Dse.run_result engine points in
      let point_json = function
        | Ok d -> Proto.design_summary d
        | Error ds ->
            J.Obj
              [
                ("error", J.Str "design failed verification");
                ("diagnostics", Proto.diagnostics_json ds);
              ]
      in
      Proto.ok ~span
        [
          ("points", J.Arr (List.map point_json results));
          ("counters", Hls_core.Metrics.counters_json_with_prefix "dse/");
        ]
  | Proto.Lint { name; source; options; floor } -> (
      let engine = engine_for t source in
      match Dse.eval_result engine options with
      | Ok d ->
          let ds = Hls_core.Lint.run ~floor d in
          Proto.ok ~span
            [
              ("name", J.Str name);
              ("errors", J.Bool (Hls_core.Lint.has_errors ds));
              ("diagnostics", Proto.diagnostics_json ds);
            ]
      | Error ds ->
          Proto.response ~status:"error" ~span
            [
              ("error", J.Str "design failed verification");
              ("diagnostics", Proto.diagnostics_json ds);
            ])
  | Proto.Ping { delay_ms } ->
      if delay_ms > 0 then Unix.sleepf (float_of_int delay_ms /. 1000.);
      Proto.ok ~span [ ("pong", J.Bool true) ]
  | Proto.Stats ->
      Proto.ok ~span
        [
          ("engines", J.of_int (engine_count t));
          ("serve", Hls_core.Metrics.counters_json_with_prefix "serve/");
          ("dse", Hls_core.Metrics.counters_json_with_prefix "dse/");
        ]
  | Proto.Shutdown ->
      request_stop t;
      Proto.ok ~span [ ("stopping", J.Bool true) ]

(* Handle one already-parsed request body. Every failure mode — bad
   JSON shape, unknown workload, frontend errors in the source, even a
   raising pipeline bug — becomes a structured per-request error
   response; nothing a client sends may take the daemon down. *)
let handle t json =
  let span = Trace.fresh_id () in
  Trace.incr "serve/requests";
  let n = Atomic.fetch_and_add t.inflight 1 + 1 in
  Trace.record_max "serve/inflight_peak" n;
  Fun.protect
    ~finally:(fun () -> ignore (Atomic.fetch_and_add t.inflight (-1)))
    (fun () ->
      match Proto.request_of_json json with
      | Error e -> Proto.error ~span e
      | Ok req -> (
          let cmd =
            match req with
            | Proto.Synth _ -> "synth"
            | Proto.Dse _ -> "dse"
            | Proto.Lint _ -> "lint"
            | Proto.Ping _ -> "ping"
            | Proto.Stats -> "stats"
            | Proto.Shutdown -> "shutdown"
          in
          Trace.with_span ~args:[ ("cmd", cmd); ("span_id", string_of_int span) ]
            "serve/request"
            (fun () ->
              try dispatch t ~span req with
              | Hls_lang.Ast.Frontend_error (_, msg) ->
                  Proto.error ~span (Printf.sprintf "frontend error: %s" msg)
              | Invalid_argument msg | Failure msg ->
                  Proto.error ~span (Printf.sprintf "synthesis failed: %s" msg)
              | Sys_error msg -> Proto.error ~span msg)))

let handle_text t payload =
  match J.parse payload with
  | Error e -> Proto.error ~span:(Trace.fresh_id ()) (Printf.sprintf "bad JSON: %s" e)
  | Ok json -> handle t json

(* ---- connection plumbing ---- *)

(* Serve one accepted connection to completion: a client may pipeline
   any number of frames; the connection ends at a clean frame boundary
   or on the first torn frame. *)
let serve_connection t fd =
  let rec loop () =
    match Proto.read_frame fd with
    | None -> ()
    | Some (Error e) ->
        (try Proto.write_frame fd (J.to_string (Proto.error ~span:(Trace.fresh_id ()) e))
         with Proto.Closed | Unix.Unix_error _ -> ())
    | Some (Ok payload) ->
        let reply = handle_text t payload in
        let continue =
          try
            Proto.write_frame fd (J.to_string reply);
            true
          with Proto.Closed | Unix.Unix_error _ -> false
        in
        if continue then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let handler_loop t =
  let rec loop () =
    match Bqueue.take t.queue with
    | None -> ()
    | Some fd ->
        (try serve_connection t fd with _ -> ());
        loop ()
  in
  loop ()

(* Refuse at the door: the client gets a typed busy frame immediately
   rather than an unbounded wait. *)
let reject fd ~queue ~depth =
  Trace.incr "serve/rejected";
  (try Proto.write_frame fd (J.to_string (Proto.busy ~span:(Trace.fresh_id ()) ~queue ~depth))
   with Proto.Closed | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* A peer that hangs up mid-write must surface as Proto.Closed on that
   connection, not a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ()

let serve_unix t ~path =
  ignore_sigpipe ();
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  let handlers =
    List.init t.config.workers (fun _ -> Domain.spawn (fun () -> handler_loop t))
  in
  let rec accept_loop () =
    if stop_requested t then ()
    else begin
      (* select with a timeout so the stop flag is observed even when
         no client ever connects *)
      (match Unix.select [ listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | fd, _ ->
              if not (Bqueue.offer t.queue fd) then
                reject fd ~queue:(Bqueue.length t.queue) ~depth:t.config.max_queue
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Bqueue.close t.queue;
      List.iter Domain.join handlers)
    accept_loop

(* Single-client mode: frames over a plain fd pair (stdin/stdout under
   `hlsc serve --stdio`). No queue, no handler crew — the caller is the
   only client, so requests are served inline until a shutdown request,
   a clean EOF, or a torn frame. *)
let serve_frames t ~input ~output =
  ignore_sigpipe ();
  let rec loop () =
    if stop_requested t then ()
    else
      match Proto.read_frame input with
      | None -> ()
      | Some (Error e) -> (
          try Proto.write_frame output (J.to_string (Proto.error ~span:(Trace.fresh_id ()) e))
          with Proto.Closed | Unix.Unix_error _ -> ())
      | Some (Ok payload) -> (
          let reply = handle_text t payload in
          match Proto.write_frame output (J.to_string reply) with
          | () -> loop ()
          | exception (Proto.Closed | Unix.Unix_error _) -> ())
  in
  loop ()

(* ---- client helpers ---- *)

module Client = struct
  type conn = Unix.file_descr

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

  let request fd json =
    (* a rejected connection may already be half-closed: the busy frame
       is still readable after the server's close, so a failed write
       must not abort the exchange *)
    (try Proto.write_frame fd (J.to_string json)
     with Proto.Closed | Unix.Unix_error _ -> ());
    match Proto.read_frame fd with
    | Some (Ok payload) -> J.parse payload
    | Some (Error e) -> Error (Printf.sprintf "torn response frame: %s" e)
    | None -> Error "connection closed before response"

  let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
end
