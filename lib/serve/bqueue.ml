(* Bounded multi-producer/multi-consumer queue — the backpressure
   valve between the daemon's acceptor and its handler domains.

   [offer] never blocks: past the capacity (or after [close]) it
   refuses, and the acceptor turns that refusal into a typed `busy`
   response instead of letting latency pile up invisibly. [take]
   blocks until an item or until the queue is closed {e and} drained,
   so graceful shutdown is simply [close]: producers are cut off,
   consumers finish everything already accepted, then exit.

   All critical sections run under Sync.with_lock — an exception while
   holding the lock must not deadlock the daemon. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Bqueue.create: negative capacity";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let offer t x =
  Hls_obs.Sync.with_lock t.lock (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let take t =
  Hls_obs.Sync.with_lock t.lock (fun () ->
      let rec await () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          await ()
        end
      in
      await ())

let close t =
  Hls_obs.Sync.with_lock t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Hls_obs.Sync.with_lock t.lock (fun () -> Queue.length t.items)
let is_closed t = Hls_obs.Sync.with_lock t.lock (fun () -> t.closed)
