(* Wire protocol of `hlsc serve`.

   Framing is length-prefixed JSON: a decimal byte count, one '\n',
   then exactly that many payload bytes. The prefix is what lets a
   client (or the daemon) read a complete message off a stream socket
   without guessing at JSON boundaries, and a torn or oversized frame
   is detected before any parsing happens.

   Requests are objects with a "cmd" field — synth | dse | lint |
   ping | stats | shutdown — a source ("source" inline text or
   "workload" built-in name) where one is needed, and an "options"
   object using exactly the CLI vocabulary (passes, if_convert,
   scheduler, fus, allocator, encoding), so anything expressible as
   `hlsc synth` flags is expressible as a serve request. Responses
   carry "status" ok | busy | error plus a per-request trace span id
   and the protocol version under "proto".

   Versioning: protocol 2 renamed the options' "opt_level" enum to the
   "passes" pipeline spec string. The decoder still accepts the legacy
   "opt_level" field (mapped through Passes.level) so protocol-1
   clients keep working; a client may send "proto": N to assert the
   version it speaks, and the daemon rejects requests from the future
   rather than silently dropping fields it does not know.

   I/O here is over raw Unix file descriptors, not channels: a channel
   pair wrapping one socket fd would double-close it (and possibly a
   reused successor) on finalization. *)

module J = Hls_util.Json
module Flow = Hls_core.Flow
module Passes = Hls_transform.Passes

let version = 2

(* ---- framing ---- *)

let max_frame = 16 * 1024 * 1024

exception Closed

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Closed
    in
    write_all fd s (off + n) (len - n)
  end

let write_frame fd payload =
  let header = string_of_int (String.length payload) ^ "\n" in
  write_all fd header 0 (String.length header);
  write_all fd payload 0 (String.length payload)

(* One byte at a time is fine: headers are a handful of bytes and the
   payload below is read in bulk. *)
(* a connection reset mid-read is the same as the peer hanging up *)
let read_fd fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0

let read_header fd =
  let buf = Bytes.create 1 in
  let rec go acc =
    if List.length acc > 20 then Error "oversized frame header"
    else
      match read_fd fd buf 0 1 with
      | 0 -> if acc = [] then Error "closed" else Error "eof inside frame header"
      | _ ->
          let c = Bytes.get buf 0 in
          if c = '\n' then
            let digits = String.init (List.length acc) (List.nth (List.rev acc)) in
            match int_of_string_opt digits with
            | Some n when n >= 0 && n <= max_frame -> Ok n
            | Some n -> Error (Printf.sprintf "frame length %d out of bounds" n)
            | None -> Error (Printf.sprintf "malformed frame header %S" digits)
          else go (c :: acc)
  in
  go []

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Ok (Bytes.to_string buf)
    else
      match read_fd fd buf off (n - off) with
      | 0 -> Error "eof inside frame payload"
      | k -> go (off + k)
  in
  go 0

let read_frame fd =
  match read_header fd with
  | Error "closed" -> None
  | Error e -> Some (Error e)
  | Ok n -> (
      match read_exactly fd n with
      | Ok payload -> Some (Ok payload)
      | Error e -> Some (Error e))

(* ---- option vocabulary (mirrors the hlsc CLI flags) ---- *)

let schedulers =
  [
    ("asap", Flow.Asap);
    ("list", Flow.List_path);
    ("list-mobility", Flow.List_mobility);
    ("fds", Flow.Force_directed 0);
    ("freedom", Flow.Freedom);
    ("bb", Flow.Branch_bound);
    ("ilp", Flow.Ilp_exact);
    ("trans-par", Flow.Trans_parallel);
    ("trans-ser", Flow.Trans_serial);
  ]

let opt_levels = [ ("none", `None); ("standard", `Standard); ("aggressive", `Aggressive) ]

let allocators =
  [ ("clique", `Clique); ("min-mux", `Greedy_min_mux); ("first-fit", `Greedy_first_fit) ]

let encodings =
  [
    ("binary", Hls_ctrl.Encoding.Binary);
    ("gray", Hls_ctrl.Encoding.Gray);
    ("one-hot", Hls_ctrl.Encoding.One_hot);
  ]

let enum_of_string ~what table s =
  match List.assoc_opt s table with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "unknown %s %S (expected one of: %s)" what s
           (String.concat ", " (List.map fst table)))

let limits_of_fus fus =
  if fus = 0 then Hls_sched.Limits.Serial
  else if fus < 0 then Hls_sched.Limits.Unlimited
  else Hls_sched.Limits.Total fus

let fus_of_limits = function
  | Hls_sched.Limits.Serial -> 0
  | Hls_sched.Limits.Unlimited -> -1
  | Hls_sched.Limits.Total n -> n
  | Hls_sched.Limits.Classes _ -> -1

let options_of_json json =
  let ( let* ) = Result.bind in
  let field name table default =
    match J.str_member name json with
    | None -> Ok default
    | Some s -> enum_of_string ~what:name table s
  in
  let* passes =
    match J.str_member "passes" json with
    | Some spec -> Passes.pipeline_of_string spec
    | None -> (
        (* protocol 1 compatibility: the closed opt_level enum maps to
           its named pipeline *)
        match J.str_member "opt_level" json with
        | None -> Ok Passes.default_pipeline
        | Some s ->
            let* l = enum_of_string ~what:"opt_level" opt_levels s in
            Ok (Passes.level l))
  in
  let* scheduler = field "scheduler" schedulers Flow.List_path in
  let* allocator = field "allocator" allocators `Greedy_min_mux in
  let* encoding = field "encoding" encodings Hls_ctrl.Encoding.Binary in
  let if_conversion = Option.value ~default:false (J.bool_member "if_convert" json) in
  let narrow = Option.value ~default:false (J.bool_member "narrow" json) in
  let iterate = Option.value ~default:0 (J.int_member "iterate" json) in
  let fus = Option.value ~default:2 (J.int_member "fus" json) in
  Ok
    {
      Flow.passes;
      if_conversion;
      scheduler;
      limits = limits_of_fus fus;
      allocator;
      share_variables = true;
      encoding;
      narrow;
      iterate;
    }

let key_of table v = fst (List.find (fun (_, x) -> x = v) table)

let options_to_json (o : Flow.options) =
  J.Obj
    [
      ("passes", J.Str (Passes.pipeline_to_string o.Flow.passes));
      ("if_convert", J.Bool o.Flow.if_conversion);
      ("scheduler", J.Str (key_of schedulers o.Flow.scheduler));
      ("fus", J.of_int (fus_of_limits o.Flow.limits));
      ("allocator", J.Str (key_of allocators o.Flow.allocator));
      ("encoding", J.Str (key_of encodings o.Flow.encoding));
      ("narrow", J.Bool o.Flow.narrow);
      ("iterate", J.of_int o.Flow.iterate);
    ]

(* ---- requests ---- *)

type request =
  | Synth of { name : string; source : string; options : Flow.options }
  | Dse of { name : string; source : string; points : Flow.options list }
  | Lint of {
      name : string;
      source : string;
      options : Flow.options;
      floor : Hls_analysis.Diagnostic.severity;
    }
  | Ping of { delay_ms : int }
  | Stats
  | Shutdown

let source_of_json json =
  match (J.str_member "source" json, J.str_member "workload" json) with
  | Some src, None -> Ok ("<request>", src)
  | None, Some name -> (
      match List.assoc_opt name Hls_core.Workloads.all with
      | Some src -> Ok (name, src)
      | None ->
          Error
            (Printf.sprintf "unknown workload %S (try: %s)" name
               (String.concat ", " (List.map fst Hls_core.Workloads.all))))
  | Some _, Some _ -> Error "give either \"source\" or \"workload\", not both"
  | None, None -> Error "request needs a \"source\" text or a \"workload\" name"

let request_of_json json =
  let ( let* ) = Result.bind in
  let options_field () =
    match J.member "options" json with
    | None -> Ok Flow.default_options
    | Some o -> options_of_json o
  in
  let* () =
    match J.int_member "proto" json with
    | Some v when v > version ->
        Error
          (Printf.sprintf "request speaks protocol %d, this daemon speaks %d" v version)
    | _ -> Ok ()
  in
  match J.str_member "cmd" json with
  | None -> Error "request needs a \"cmd\" field"
  | Some "synth" ->
      let* name, source = source_of_json json in
      let* options = options_field () in
      Ok (Synth { name; source; options })
  | Some "dse" ->
      let* name, source = source_of_json json in
      let* points =
        match J.member "points" json with
        | None ->
            let* o = options_field () in
            Ok [ o ]
        | Some (J.Arr ps) ->
            if ps = [] then Error "\"points\" must be non-empty"
            else
              List.fold_left
                (fun acc p ->
                  let* acc = acc in
                  let* o = options_of_json p in
                  Ok (o :: acc))
                (Ok []) ps
              |> Result.map List.rev
        | Some _ -> Error "\"points\" must be an array of option objects"
      in
      Ok (Dse { name; source; points })
  | Some "lint" ->
      let* name, source = source_of_json json in
      let* options = options_field () in
      let* floor =
        match J.str_member "floor" json with
        | None -> Ok Hls_analysis.Diagnostic.Info
        | Some s -> (
            match Hls_analysis.Diagnostic.severity_of_string s with
            | Some sev -> Ok sev
            | None -> Error (Printf.sprintf "unknown severity floor %S" s))
      in
      Ok (Lint { name; source; options; floor })
  | Some "ping" ->
      let delay_ms = Option.value ~default:0 (J.int_member "delay_ms" json) in
      if delay_ms < 0 || delay_ms > 60_000 then Error "delay_ms out of range"
      else Ok (Ping { delay_ms })
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some c -> Error (Printf.sprintf "unknown cmd %S" c)

(* ---- responses ---- *)

let response ~status ~span fields =
  J.Obj
    (("status", J.Str status) :: ("proto", J.of_int version) :: ("span", J.of_int span)
    :: fields)

let ok ~span fields = response ~status:"ok" ~span fields

let error ~span msg = response ~status:"error" ~span [ ("error", J.Str msg) ]

let busy ~span ~queue ~depth =
  response ~status:"busy" ~span
    [
      ("error", J.Str "server queue full, retry later");
      ("queue", J.of_int queue);
      ("depth", J.of_int depth);
    ]

let design_summary (d : Flow.design) =
  let e = d.Flow.estimate in
  J.Obj
    [
      ("design_hash", J.Str (Hls_core.Dse.design_digest d));
      ("area", J.of_int e.Hls_rtl.Estimate.total_area);
      ("cycle_ns", J.Num e.Hls_rtl.Estimate.cycle_ns);
      ("steps", J.of_int e.Hls_rtl.Estimate.compute_steps);
      ("latency_ns", J.Num e.Hls_rtl.Estimate.latency_ns);
      ("fus", J.of_int (List.length d.Flow.fu.Hls_alloc.Fu_alloc.instances));
      ("options", options_to_json d.Flow.options);
    ]

let diagnostics_json ds = J.Arr (List.map Hls_analysis.Diagnostic.to_json ds)
