(** Wire protocol of [hlsc serve]: length-prefixed JSON frames plus the
    request/response codecs.

    A frame is a decimal byte count, one ['\n'], then exactly that many
    payload bytes. Requests are objects with a ["cmd"] of [synth], [dse],
    [lint], [ping], [stats] or [shutdown]; a source as inline ["source"]
    text or a built-in ["workload"] name; and an ["options"] object
    spelled in the CLI flag vocabulary ([passes], [if_convert],
    [scheduler], [fus], [allocator], [encoding]). Responses carry a
    ["status"] of [ok], [busy] or [error], the protocol [version] under
    ["proto"], and the request's trace span id. *)

module J = Hls_util.Json
module Flow = Hls_core.Flow

val version : int
(** Protocol version (2: pipeline-spec ["passes"] replaced the closed
    ["opt_level"] enum, which the decoder still accepts; responses
    advertise the version, and requests asserting a {e newer} ["proto"]
    are rejected). *)

(** {2 Framing} *)

exception Closed
(** Raised by {!write_frame} when the peer has gone away (EPIPE). *)

val max_frame : int
(** Upper bound on a frame payload (16 MiB); larger headers are
    rejected before any allocation. *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> (string, string) result option
(** [None] on a clean end-of-stream at a frame boundary;
    [Some (Error _)] on a torn, oversized or malformed frame;
    [Some (Ok payload)] otherwise. *)

(** {2 Requests} *)

type request =
  | Synth of { name : string; source : string; options : Flow.options }
  | Dse of { name : string; source : string; points : Flow.options list }
  | Lint of {
      name : string;
      source : string;
      options : Flow.options;
      floor : Hls_analysis.Diagnostic.severity;
    }
  | Ping of { delay_ms : int }  (** testing aid: reply after a delay *)
  | Stats
  | Shutdown

val request_of_json : J.t -> (request, string) result

val options_of_json : J.t -> (Flow.options, string) result
(** Missing fields take the CLI defaults (standard pipeline, list
    scheduler, 2 FUs, min-mux, binary). ["passes"] is a pipeline spec
    string; the legacy ["opt_level"] enum is still accepted when no
    ["passes"] field is present. *)

val options_to_json : Flow.options -> J.t

(** {2 Responses} *)

val response : status:string -> span:int -> (string * J.t) list -> J.t
val ok : span:int -> (string * J.t) list -> J.t
val error : span:int -> string -> J.t
val busy : span:int -> queue:int -> depth:int -> J.t

val design_summary : Flow.design -> J.t
(** [design_hash] (via {!Hls_core.Dse.design_digest}), area/timing
    estimate fields, bound FU count, and the echoed option point. *)

val diagnostics_json : Hls_analysis.Diagnostic.t list -> J.t
