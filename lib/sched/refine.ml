(* Feedback-guided schedule refinement (the loop the 1988 paper leaves
   open: "use post-synthesis area/delay results to redo scheduling").

   A finished design is mined for its critical subgraph — the
   delay-weighted longest register-to-register dependence chain, blocks
   whose FU classes are oversubscribed (peak concurrency above average
   demand), and producers of the values sitting on the live-storage
   floor — and just those blocks are re-scheduled under tightened
   constraints: a reduced deadline on the critical chain, and pins that
   perturb the force-directed distribution-graph priorities. Candidates
   come from the incremental {!Force_directed} kernel (cheap per
   re-schedule), are completed through the backend by the caller, and
   are accepted only on strict Pareto improvement, so iteration is
   monotone and terminates.

   This module is deliberately backend-agnostic: the delay model and
   the live-storage signal arrive through {!signals} callbacks and the
   candidate evaluation through {!refine}'s [evaluate], keeping the
   sched layer free of rtl/alloc dependencies. *)

open Hls_cdfg

type target = {
  t_block : Cfg.bid;
  t_deadline : int;
  t_pins : (int * int) list;  (** (depgraph op index, step) *)
  t_label : string;
}

type signals = {
  op_delay : Dfg.t -> Dfg.nid -> float;
      (** propagation delay of one op under the component library *)
  live_pins : Cfg.bid -> Schedule.t -> Dfg.nid list;
      (** producers of values on the live-storage floor, most
          constraining first *)
}

(* Delay-weighted longest dependence path through a block, as op
   indices in topological order. DP over the depgraph's index order
   (indices are topological); ties keep the lowest-index predecessor so
   extraction is deterministic. *)
let critical_chain dep ~delay =
  let n = Depgraph.n_ops dep in
  if n = 0 then []
  else begin
    let best = Array.make n 0.0 in
    let from = Array.make n (-1) in
    for i = 0 to n - 1 do
      let bp, fp =
        List.fold_left
          (fun ((b, _) as acc) p -> if best.(p) > b then (best.(p), p) else acc)
          (0.0, -1) (Depgraph.preds dep i)
      in
      best.(i) <- delay i +. bp;
      from.(i) <- fp
    done;
    let e = ref 0 in
    for i = 1 to n - 1 do
      if best.(i) > best.(!e) then e := i
    done;
    let rec walk i acc = if i < 0 then acc else walk from.(i) (i :: acc) in
    walk !e []
  end

let extract signals cs =
  let cfg = Cfg_sched.cfg cs in
  List.concat_map
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let dep = Depgraph.of_dfg g in
      let nops = Depgraph.n_ops dep in
      if nops < 2 then []
      else begin
        let s = Cfg_sched.block_schedule cs bid in
        let n = Schedule.n_steps s in
        let cl = max 1 (Depgraph.critical_length dep) in
        let tgt ?(pins = []) ~deadline label =
          {
            t_block = bid;
            t_deadline = deadline;
            t_pins = pins;
            t_label = Printf.sprintf "%s b%d" label bid;
          }
        in
        let class_count c =
          let k = ref 0 in
          for i = 0 to nops - 1 do
            if Depgraph.cls dep i = c then incr k
          done;
          !k
        in
        (* oversubscribed FU class: peak concurrency above the class's
           average demand — a balancing re-schedule may shave a unit *)
        let oversubscribed =
          List.exists
            (fun (c, peak) -> peak * n > class_count c)
            (Schedule.fu_requirement s)
        in
        let rebalance = if oversubscribed then [ tgt ~deadline:n "rebalance" ] else [] in
        let compress =
          if n - 1 >= cl then [ tgt ~deadline:(n - 1) "compress" ] else []
        in
        (* pins along the delay-weighted critical chain, at both frame
           extremes: each perturbs the distribution graphs around the
           chain while keeping the chain itself feasible *)
        let chain = critical_chain dep ~delay:(fun i -> signals.op_delay g (Depgraph.nid_of dep i)) in
        let chain_tgts deadline suffix =
          if List.length chain < 2 || deadline < cl then []
          else begin
            let asap = Depgraph.asap dep in
            let alap = Depgraph.alap dep ~deadline in
            [
              tgt ~deadline
                ~pins:(List.map (fun i -> (i, asap.(i))) chain)
                ("chain-asap" ^ suffix);
              tgt ~deadline
                ~pins:(List.map (fun i -> (i, alap.(i))) chain)
                ("chain-alap" ^ suffix);
            ]
          end
        in
        (* live-storage floor: delaying a long-lived value's producer to
           its ALAP shortens the lifetime that sets the register floor *)
        let live =
          let nids = signals.live_pins bid s in
          let alap = Depgraph.alap dep ~deadline:n in
          List.filteri (fun k _ -> k < 2) nids
          |> List.filter_map (fun nid ->
                 match Depgraph.index_of dep nid with
                 | i -> Some (tgt ~deadline:n ~pins:[ (i, alap.(i)) ] "live")
                 | exception Not_found -> None)
        in
        rebalance @ compress @ chain_tgts n "" @ chain_tgts (n - 1) "-c" @ live
      end)
    (Cfg.block_ids cfg)

let candidates cs ~targets =
  let cfg = Cfg_sched.cfg cs in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun t ->
      match
        let g = Cfg.dfg cfg t.t_block in
        let dep = Depgraph.of_dfg g in
        let steps =
          Force_directed.schedule_dep ~pins:t.t_pins ~deadline:t.t_deadline dep
        in
        Depgraph.to_schedule dep ~steps
      with
      | exception Invalid_argument _ ->
          Hls_obs.Trace.incr "refine/infeasible";
          None
      | s ->
          Hls_obs.Trace.incr "refine/candidates";
          let key = (t.t_block, Schedule.digest s) in
          if
            Schedule.digest s
            = Schedule.digest (Cfg_sched.block_schedule cs t.t_block)
            || Hashtbl.mem seen key
          then begin
            Hls_obs.Trace.incr "refine/duplicates";
            None
          end
          else begin
            Hashtbl.add seen key ();
            Some (t, Cfg_sched.with_block cs t.t_block s)
          end)
    targets

let dominates (a1, l1) (a2, l2) =
  (a1 <= a2 && l1 < l2) || (a1 < a2 && l1 <= l2)

let refine ~max_iters ~propose ~evaluate ~measure ~sched_of seed =
  let score (a, l) = a *. l in
  let current = ref seed in
  let iters = ref 0 in
  let continue_ = ref (max_iters > 0) in
  while !continue_ do
    let iter = !iters + 1 in
    let accepted =
      Hls_obs.Trace.with_span "refine/iter"
        ~args:[ ("iter", string_of_int iter) ]
        (fun () ->
          let targets = propose ~iter !current in
          let cands = candidates (sched_of !current) ~targets in
          let cur_m = measure !current in
          let evaluated = ref 0 in
          let best =
            List.fold_left
              (fun acc (_t, cs) ->
                match evaluate cs with
                | None -> acc
                | Some d ->
                    incr evaluated;
                    let m = measure d in
                    if not (dominates m cur_m) then acc
                    else
                      (* among strict improvements, keep the best
                         area x latency product, first of equals *)
                      (match acc with
                      | Some (bm, _) when score m >= score bm -> acc
                      | _ -> Some (m, d)))
              None cands
          in
          Hls_obs.Trace.add "refine/rejected"
            (!evaluated - match best with Some _ -> 1 | None -> 0);
          best)
    in
    match accepted with
    | Some (_, d) ->
        Hls_obs.Trace.incr "refine/accepted";
        current := d;
        incr iters;
        if !iters >= max_iters then continue_ := false
    | None -> continue_ := false
  done;
  Hls_obs.Trace.add "refine/iterations" !iters;
  (!current, !iters)
