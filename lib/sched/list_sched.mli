(** List scheduling (Fig 4).

    Steps are filled in order; at each step the ready operations (all
    predecessors scheduled in earlier steps) are taken from a priority
    list and placed while resources remain; the rest are deferred. The
    priority function is pluggable:

    - [Path_length] — ops on the longest chain to the end of the block
      (BUD's priority; the paper's Fig 4 example);
    - [Urgency deadline] — distance to the nearest deadline, i.e. the
      ALAP step (Elf and ISYN's priority; smaller = more urgent);
    - [Mobility deadline] — ALAP − ASAP slack (smaller first);
    - [Fifo] — specification order, degenerating to resource-constrained
      ASAP (for comparison). *)

open Hls_cdfg

type priority =
  | Path_length
  | Urgency of int
  | Mobility of int
  | Fifo

val schedule : ?priority:priority -> limits:Limits.t -> Dfg.t -> Schedule.t
(** Default priority is [Path_length]. *)

val schedule_dep : ?priority:priority -> limits:Limits.t -> Depgraph.t -> int array
(** Step assignment over dependence-graph indices. In-degree counting
    feeds ready operations through a priority queue, so each step costs
    O(ready log ready) instead of the naive O(n) readiness rescan. *)

val schedule_dep_reference :
  ?priority:priority -> limits:Limits.t -> Depgraph.t -> int array
(** The straightforward rescan-and-resort implementation (the seed
    code). Produces bit-identical schedules to {!schedule_dep}; kept as
    the oracle for differential tests and benchmark baselines. *)
