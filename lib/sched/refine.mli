(** Feedback-guided iterative scheduling — the loop the 1988 paper
    leaves open ("use post-synthesis area/delay results to redo
    scheduling"), following the subgraph-extraction approach: mine a
    finished design for its critical subgraph, re-schedule just those
    blocks under tightened constraints with the incremental
    {!Force_directed} kernel, re-estimate, and keep the result only on
    strict Pareto improvement.

    The module is backend-agnostic: area/delay knowledge flows in
    through {!signals} (delay model, live-storage floor) and candidate
    completion through {!refine}'s [evaluate] callback, so the sched
    layer stays free of rtl/alloc dependencies — [Flow] supplies both.

    Counters: [refine/candidates] (re-schedules generated),
    [refine/infeasible] (targets whose pins or deadline were
    unschedulable), [refine/duplicates] (candidates identical to the
    current schedule or to an earlier candidate), [refine/rejected]
    (completed candidates that were not strict improvements),
    [refine/accepted] and [refine/iterations], plus a [refine/iter]
    span per iteration. All are deterministic at any job count: the
    whole loop is sequential and runs inside the DSE refine memo's
    single-flight slot. *)

open Hls_cdfg

type target = {
  t_block : Cfg.bid;  (** block to re-schedule *)
  t_deadline : int;  (** FDS deadline (tightened or unchanged) *)
  t_pins : (int * int) list;
      (** (depgraph op index, step) pre-fixed placements perturbing the
          distribution-graph priorities *)
  t_label : string;  (** for diagnostics *)
}

type signals = {
  op_delay : Dfg.t -> Dfg.nid -> float;
      (** propagation delay of one op under the component library — the
          weight of the register-to-register chain extraction *)
  live_pins : Cfg.bid -> Schedule.t -> Dfg.nid list;
      (** producers of the values on the live-storage floor, most
          constraining first (at most two are used per block) *)
}

val critical_chain : Depgraph.t -> delay:(int -> float) -> int list
(** Delay-weighted longest dependence path, as ascending op indices.
    Deterministic: ties keep the lowest-index predecessor/endpoint. *)

val extract : signals -> Cfg_sched.t -> target list
(** Critical-subgraph extraction over every block with at least two
    schedulable ops: a rebalance target when some FU class's peak
    concurrency exceeds its average demand, a reduced-deadline target
    when the block has slack over its critical path, chain pins at both
    frame extremes (at the current and the reduced deadline), and
    live-floor producer pins. *)

val candidates : Cfg_sched.t -> targets:target list -> (target * Cfg_sched.t) list
(** Re-schedule each target's block with the incremental
    force-directed kernel under the target's deadline and pins,
    returning whole-program schedules ({!Cfg_sched.with_block}).
    Infeasible targets are dropped, as are candidates bit-identical to
    the current block schedule or to an earlier candidate. *)

val dominates : float * float -> float * float -> bool
(** [dominates a b]: strict Pareto improvement — no worse in either
    coordinate, strictly better in at least one (lower is better). *)

val refine :
  max_iters:int ->
  propose:(iter:int -> 'd -> target list) ->
  evaluate:(Cfg_sched.t -> 'd option) ->
  measure:('d -> float * float) ->
  sched_of:('d -> Cfg_sched.t) ->
  'd ->
  'd * int
(** The acceptance loop. Each iteration proposes targets from the
    current design, generates candidate schedules, completes each via
    [evaluate] ([None] = illegal under the point's limits or backend
    failure), and keeps the best candidate whose [measure] strictly
    Pareto-dominates the current design's. Stops after [max_iters]
    improving iterations or the first iteration with no improvement.
    Returns the refined design and the number of accepted iterations;
    with no acceptance the returned design is physically the seed. *)
