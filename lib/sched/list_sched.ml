open Hls_util

type priority = Path_length | Urgency of int | Mobility of int | Fifo

let priority_table dep prio =
  let clamp d = max d (Depgraph.critical_length dep) in
  match prio with
  | Path_length -> Depgraph.path_length dep
  | Urgency deadline ->
      (* smaller ALAP = more urgent = higher priority; negate *)
      Array.map (fun l -> -l) (Depgraph.alap dep ~deadline:(clamp deadline))
  | Mobility deadline ->
      let a = Depgraph.asap dep in
      let l = Depgraph.alap dep ~deadline:(clamp deadline) in
      Array.init (Array.length a) (fun i -> -(l.(i) - a.(i)))
  | Fifo -> Array.init (Depgraph.n_ops dep) (fun i -> -i)

(* Ready ops are kept between an in-degree-fed priority queue (ops whose
   last predecessor just finished) and a sorted carry-over list (ops that
   were ready earlier but deferred by the resource limits). Both orders
   agree with [cmp], so one merge per step recovers exactly the sorted
   ready list the naive algorithm builds by rescanning and re-sorting all
   n ops every step. *)
let schedule_dep ?(priority = Path_length) ~limits dep =
  let n = Depgraph.n_ops dep in
  let prio = priority_table dep priority in
  let steps = Array.make n 0 in
  (* higher priority first; index breaks ties, so the order is total and
     independent of queue insertion history *)
  let cmp a b =
    let c = compare prio.(b) prio.(a) in
    if c <> 0 then c else compare a b
  in
  let newly_ready = Pqueue.create ~cmp in
  let indeg = Array.make n 0 in
  for i = 0 to n - 1 do
    indeg.(i) <- List.length (Depgraph.preds dep i);
    if indeg.(i) = 0 then Pqueue.push newly_ready i
  done;
  let unscheduled = ref n in
  let step = ref 0 in
  let deferred = ref [] in
  while !unscheduled > 0 do
    incr step;
    let s = !step in
    let fresh = Pqueue.to_sorted_list newly_ready in
    let eligible = List.merge cmp !deferred fresh in
    let counts = ref [] in
    let placed = ref [] in
    let still_deferred = ref [] in
    List.iter
      (fun i ->
        let cls = Depgraph.cls dep i in
        if Limits.can_add limits ~counts:!counts cls then begin
          steps.(i) <- s;
          decr unscheduled;
          placed := i :: !placed;
          let cur = match List.assoc_opt cls !counts with Some n -> n | None -> 0 in
          counts := (cls, cur + 1) :: List.remove_assoc cls !counts
        end
        else still_deferred := i :: !still_deferred)
      eligible;
    deferred := List.rev !still_deferred;
    (* successors completing their last dependence become ready from s+1 *)
    List.iter
      (fun i ->
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then Pqueue.push newly_ready j)
          (Depgraph.succs dep i))
      !placed
  done;
  steps

(* The seed implementation: rescan all n ops for readiness and re-sort
   every step — O(n^2) per schedule. Kept as the oracle for the
   differential tests and as the benchmark baseline. *)
let schedule_dep_reference ?(priority = Path_length) ~limits dep =
  let n = Depgraph.n_ops dep in
  let prio = priority_table dep priority in
  let steps = Array.make n 0 in
  let unscheduled = ref n in
  let step = ref 0 in
  while !unscheduled > 0 do
    incr step;
    let s = !step in
    (* ready: unscheduled ops whose predecessors all completed before s *)
    let ready =
      List.filter
        (fun i ->
          steps.(i) = 0
          && List.for_all (fun p -> steps.(p) > 0 && steps.(p) < s) (Depgraph.preds dep i))
        (List.init n (fun i -> i))
    in
    let ordered =
      List.sort
        (fun a b ->
          let c = compare prio.(b) prio.(a) in
          if c <> 0 then c else compare a b)
        ready
    in
    let counts = ref [] in
    List.iter
      (fun i ->
        let cls = Depgraph.cls dep i in
        if Limits.can_add limits ~counts:!counts cls then begin
          steps.(i) <- s;
          decr unscheduled;
          let cur = match List.assoc_opt cls !counts with Some n -> n | None -> 0 in
          counts := (cls, cur + 1) :: List.remove_assoc cls !counts
        end)
      ordered
  done;
  steps

let schedule ?priority ~limits g =
  let dep = Depgraph.of_dfg g in
  Depgraph.to_schedule dep ~steps:(schedule_dep ?priority ~limits dep)
