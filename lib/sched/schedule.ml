open Hls_cdfg

type t = { g : Dfg.t; step : int array; produced : int array; total : int }

(* producer_step per node given the occupying-op step table *)
let compute_produced g step =
  let n = Dfg.n_nodes g in
  let produced = Array.make n 0 in
  for id = 0 to n - 1 do
    let node = Dfg.node g id in
    let arg_max = List.fold_left (fun acc a -> max acc produced.(a)) 0 node.Dfg.args in
    produced.(id) <-
      (match node.Dfg.op with
      | Op.Const _ | Op.Read _ -> 0
      | _ -> if Dfg.occupies_step g id then step.(id) else arg_max)
  done;
  produced

let make g ~steps =
  let n = Dfg.n_nodes g in
  let step = Array.make n (-1) in
  for id = 0 to n - 1 do
    if Dfg.occupies_step g id then begin
      let s = steps id in
      if s < 1 then invalid_arg (Printf.sprintf "Schedule.make: node %%%d at step %d" id s);
      step.(id) <- s
    end
  done;
  let produced = compute_produced g step in
  let total = ref 1 in
  for id = 0 to n - 1 do
    if step.(id) >= 0 then total := max !total step.(id);
    match Dfg.op g id with
    | Op.Write _ -> total := max !total (max 1 produced.(id))
    | _ -> ()
  done;
  { g; step; produced; total = !total }

let dfg t = t.g

let digest t = Digest.string (Marshal.to_string (t.step, t.total) [])

let step_of t id =
  if t.step.(id) < 0 then
    invalid_arg (Printf.sprintf "Schedule.step_of: node %%%d is not step-occupying" id)
  else t.step.(id)

let producer_step t id = t.produced.(id)

let write_step t id =
  match Dfg.op t.g id with
  | Op.Write _ -> max 1 t.produced.(id)
  | op ->
      invalid_arg
        (Printf.sprintf "Schedule.write_step: node %%%d is %s, not a Write" id
           (Op.to_string op))

let n_steps t = t.total

let usage t s =
  Dfg.fold
    (fun acc id _ ->
      if t.step.(id) = s then begin
        let cls = Dfg.fu_class_of t.g id in
        let cur = match List.assoc_opt cls acc with Some n -> n | None -> 0 in
        (cls, cur + 1) :: List.remove_assoc cls acc
      end
      else acc)
    [] t.g

let fu_requirement t =
  let merged = Hashtbl.create 4 in
  for s = 1 to n_steps t do
    List.iter
      (fun (cls, n) ->
        let cur = try Hashtbl.find merged cls with Not_found -> 0 in
        Hashtbl.replace merged cls (max cur n))
      (usage t s)
  done;
  Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) merged []
  |> List.sort compare

let ops_in_step t s =
  Dfg.fold (fun acc id _ -> if t.step.(id) = s then id :: acc else acc) [] t.g
  |> List.rev

let verify limits t =
  let g = t.g in
  let errors = ref [] in
  Dfg.iter
    (fun id node ->
      if Dfg.occupies_step g id then begin
        let s = t.step.(id) in
        List.iter
          (fun a ->
            (* chained (free) argument values are usable in the step after
               their producing step; entry values from step 1 *)
            if s < t.produced.(a) + 1 then
              errors :=
                Printf.sprintf "node %%%d (step %d) uses %%%d produced in step %d" id s
                  a t.produced.(a)
                :: !errors)
          node.Dfg.args
      end)
    g;
  for s = 1 to n_steps t do
    if not (Limits.within limits ~counts:(usage t s)) then
      errors := Printf.sprintf "step %d exceeds resource limits" s :: !errors
  done;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

let pp ppf t =
  let g = t.g in
  for s = 1 to n_steps t do
    let ops =
      Dfg.fold
        (fun acc id node ->
          let show =
            (t.step.(id) = s)
            || (Dfg.fu_class_of g id = Op.C_free && t.produced.(id) = s)
            || (match node.Dfg.op with
               | Op.Write _ -> (not (Dfg.occupies_step g id)) && max 1 t.produced.(id) = s
               | _ -> false)
          in
          if show then
            let tag = if Dfg.occupies_step g id then "" else "~" in
            Printf.sprintf "%s%%%d:%s" tag id (Op.to_string node.Dfg.op) :: acc
          else acc)
        [] g
      |> List.rev
    in
    Format.fprintf ppf "step %2d: %s@." s (String.concat "  " ops)
  done
