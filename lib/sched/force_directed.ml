
(* Constrained ASAP/ALAP honoring already-fixed operations. *)
let frames dep ~deadline ~fixed =
  let n = Depgraph.n_ops dep in
  let asap = Array.make n 1 in
  for i = 0 to n - 1 do
    let lo =
      1 + List.fold_left (fun acc p -> max acc asap.(p)) 0 (Depgraph.preds dep i)
    in
    asap.(i) <- (match fixed.(i) with Some s -> s | None -> lo)
  done;
  let alap = Array.make n deadline in
  for i = n - 1 downto 0 do
    let hi =
      List.fold_left (fun acc s -> min acc (alap.(s) - 1)) deadline (Depgraph.succs dep i)
    in
    alap.(i) <- (match fixed.(i) with Some s -> s | None -> hi)
  done;
  (asap, alap)

let distribution dep ~asap ~alap ~cls ~deadline =
  let dg = Array.make deadline 0.0 in
  for i = 0 to Depgraph.n_ops dep - 1 do
    if Depgraph.cls dep i = cls then begin
      let width = alap.(i) - asap.(i) + 1 in
      let p = 1.0 /. float_of_int width in
      for s = asap.(i) to alap.(i) do
        dg.(s - 1) <- dg.(s - 1) +. p
      done
    end
  done;
  dg

let avg_over dg lo hi =
  let sum = ref 0.0 in
  for s = lo to hi do
    sum := !sum +. dg.(s - 1)
  done;
  !sum /. float_of_int (hi - lo + 1)

(* The seed implementation: after every placement, recompute both time
   frames, every distribution graph and the force of every remaining
   (op, step) candidate — O(rounds x candidates x frame-width x degree)
   float work. Kept as the oracle for the differential tests and as the
   benchmark baseline (the PR-1 convention). *)
(* Shared pin validation: pins must name real ops, stay inside
   [1, deadline], agree with each other, and respect dependences among
   themselves. Pins that merely squeeze an unpinned op out of any
   feasible step surface as the scheduler's "no feasible placement"
   [Invalid_argument] instead — both failure modes raise, so a caller
   probing perturbations can simply catch [Invalid_argument]. *)
let check_pins dep ~deadline pins =
  let n = Depgraph.n_ops dep in
  let pinned = Array.make n None in
  List.iter
    (fun (i, s) ->
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "Force_directed: pin on unknown op %d" i);
      if s < 1 || s > deadline then
        invalid_arg
          (Printf.sprintf "Force_directed: pin of op %d at step %d outside 1..%d" i s
             deadline);
      (match pinned.(i) with
      | Some s' when s' <> s ->
          invalid_arg
            (Printf.sprintf "Force_directed: conflicting pins for op %d (%d vs %d)" i
               s' s)
      | _ -> ());
      pinned.(i) <- Some s)
    pins;
  for i = 0 to n - 1 do
    match pinned.(i) with
    | None -> ()
    | Some s ->
        List.iter
          (fun p ->
            match pinned.(p) with
            | Some sp when sp >= s ->
                invalid_arg
                  (Printf.sprintf
                     "Force_directed: pinned ops %d@%d -> %d@%d violate a dependence"
                     p sp i s)
            | _ -> ())
          (Depgraph.preds dep i)
  done;
  pinned

let schedule_dep_reference ?on_fix ?(pins = []) ~deadline dep =
  let n = Depgraph.n_ops dep in
  let cl = Depgraph.critical_length dep in
  if deadline < cl then
    invalid_arg
      (Printf.sprintf "Force_directed: deadline %d below critical path %d" deadline cl);
  let force_evals = ref 0 in
  let fixed = check_pins dep ~deadline pins in
  let n_pinned = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 fixed in
  let classes =
    List.sort_uniq compare (List.init n (fun i -> Depgraph.cls dep i))
  in
  let remaining = ref (n - n_pinned) in
  while !remaining > 0 do
    let asap, alap = frames dep ~deadline ~fixed in
    let dgs =
      List.map (fun c -> (c, distribution dep ~asap ~alap ~cls:c ~deadline)) classes
    in
    let dg_of c = List.assoc c dgs in
    (* self force of placing op i at step s *)
    let self_force i s =
      let dg = dg_of (Depgraph.cls dep i) in
      dg.(s - 1) -. avg_over dg asap.(i) alap.(i)
    in
    (* change in a neighbor's average distribution when its frame is
       clipped by fixing op i at step s *)
    let neighbor_force i s =
      let clip j (lo, hi) =
        let dg = dg_of (Depgraph.cls dep j) in
        if lo > hi then 0.0 (* infeasible placements are filtered below *)
        else avg_over dg lo hi -. avg_over dg asap.(j) alap.(j)
      in
      List.fold_left
        (fun acc p -> acc +. clip p (asap.(p), min alap.(p) (s - 1)))
        0.0 (Depgraph.preds dep i)
      +. List.fold_left
           (fun acc q -> acc +. clip q (max asap.(q) (s + 1), alap.(q)))
           0.0 (Depgraph.succs dep i)
    in
    let best = ref None in
    for i = 0 to n - 1 do
      if fixed.(i) = None then
        for s = asap.(i) to alap.(i) do
          (* a placement must leave every neighbor a feasible frame *)
          let feasible =
            List.for_all (fun p -> asap.(p) <= s - 1) (Depgraph.preds dep i)
            && List.for_all (fun q -> alap.(q) >= s + 1) (Depgraph.succs dep i)
          in
          if feasible then begin
            incr force_evals;
            let f = self_force i s +. neighbor_force i s in
            match !best with
            | Some (bf, _, _) when bf <= f -> ()
            | _ -> best := Some (f, i, s)
          end
        done
    done;
    match !best with
    | Some (_, i, s) ->
        (match on_fix with Some f -> f i s | None -> ());
        fixed.(i) <- Some s;
        decr remaining
    | None -> invalid_arg "Force_directed: no feasible placement (internal)"
  done;
  Hls_obs.Trace.add "sched/fd_ref_force_evals" !force_evals;
  Array.map (function Some s -> s | None -> 1) fixed

(* ------------------------------------------------------------------ *)
(* Incremental kernel                                                  *)
(* ------------------------------------------------------------------ *)

(* Cached candidate summary of one unfixed op over its current frame.
   Only steps in [r_flo, r_fhi] are feasible (the reference's per-pred /
   per-succ feasibility test is equivalent to the interval
   [max_p asap(p) + 1, min_q alap(q) - 1]); [r_min]/[r_argmin] hold the
   lowest candidate force and the first step attaining it — the only
   data the global argmin scan ever reads, since the reference's
   [bf <= f] skip keeps the earliest of equals both within a row and
   across rows. A row stays valid only while every input it read — the
   op's own frame, each neighbor's frame, and the distribution-graph
   values inside those windows — is unchanged, so a cached float is
   always the exact float a full recomputation would produce. *)
type row = {
  mutable r_flo : int;
  mutable r_fhi : int;
  mutable r_min : float;
  mutable r_argmin : int;
  mutable r_valid : bool;
}

(* Incremental force-directed scheduling. Same placements as
   {!schedule_dep_reference}, bit for bit, but after each placement only
   the work that placement actually perturbed is redone:

   - time frames are narrowed with ASAP/ALAP worklists that re-propagate
     only through ops whose bounds changed (integers, so trivially exact);
   - distribution graphs are rebuilt only for classes containing an op
     whose frame moved, with the oracle's own summation loop so the
     array contents are float-identical to a from-scratch build;
   - candidate forces are cached per op and recomputed only when the
     op's frame, a neighbor's frame, or a distribution graph under one
     of their windows changed. Recomputation uses the oracle's formulas
     evaluated in the oracle's operation order, so cache hits and misses
     alike yield the reference's exact floats and the (op, step) argmin
     scan — same order, same <= tie-break — picks the same placement. *)
let schedule_dep ?on_fix ?(pins = []) ~deadline dep =
  let n = Depgraph.n_ops dep in
  let cl = Depgraph.critical_length dep in
  if deadline < cl then
    invalid_arg
      (Printf.sprintf "Force_directed: deadline %d below critical path %d" deadline cl);
  (* work counters, flushed to the trace sink once at the end *)
  let c_placements = ref 0 and c_frame_updates = ref 0 and c_dg_rebuilds = ref 0 in
  let c_rows_built = ref 0 and c_rows_cached = ref 0 and c_force_evals = ref 0 in
  let pinned = check_pins dep ~deadline pins in
  let n_pinned =
    Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 pinned
  in
  let fixed = Array.make n false in
  Array.iteri (fun i p -> if p <> None then fixed.(i) <- true) pinned;
  (* initial frames: the reference's passes with exactly the pins fixed *)
  let asap = Array.make n 1 in
  for i = 0 to n - 1 do
    let lo =
      1 + List.fold_left (fun acc p -> max acc asap.(p)) 0 (Depgraph.preds dep i)
    in
    asap.(i) <- (match pinned.(i) with Some s -> s | None -> lo)
  done;
  let alap = Array.make n deadline in
  for i = n - 1 downto 0 do
    let hi =
      List.fold_left (fun acc s -> min acc (alap.(s) - 1)) deadline (Depgraph.succs dep i)
    in
    alap.(i) <- (match pinned.(i) with Some s -> s | None -> hi)
  done;
  (* dense class ids *)
  let classes =
    List.sort_uniq compare (List.init n (fun i -> Depgraph.cls dep i))
  in
  let n_cls = List.length classes in
  let cid = Array.make n 0 in
  List.iteri
    (fun ci c ->
      for i = 0 to n - 1 do
        if Depgraph.cls dep i = c then cid.(i) <- ci
      done)
    classes;
  (* Per-class distribution graphs, rebuilt with the oracle's loop, plus
     a triangular window-average table: [avgs.(ci).(lo).(hi)] is the
     ascending sum dg.(lo-1) + ... + dg.(hi-1) accumulated in exactly
     [avg_over]'s order, divided by the window width — so every average
     the oracle would compute with an O(width) loop is an O(1) lookup
     with the identical float value. *)
  let dgs = Array.make (max n_cls 1) [||] in
  let avgs = Array.make (max n_cls 1) [||] in
  for ci = 0 to n_cls - 1 do
    avgs.(ci) <- Array.init (deadline + 1) (fun _ -> Array.make (deadline + 1) 0.0)
  done;
  (* class member lists in ascending op order (the oracle's scan order) *)
  let members = Array.make (max n_cls 1) [||] in
  for ci = 0 to n_cls - 1 do
    members.(ci) <-
      Array.of_list (List.filter (fun i -> cid.(i) = ci) (List.init n (fun i -> i)))
  done;
  let rebuild_dg ci =
    incr c_dg_rebuilds;
    let dg = Array.make deadline 0.0 in
    Array.iter
      (fun i ->
        let width = alap.(i) - asap.(i) + 1 in
        let p = 1.0 /. float_of_int width in
        for s = asap.(i) to alap.(i) do
          dg.(s - 1) <- dg.(s - 1) +. p
        done)
      members.(ci);
    dgs.(ci) <- dg;
    let tab = avgs.(ci) in
    for lo = 1 to deadline do
      let row = tab.(lo) in
      let acc = ref 0.0 in
      for hi = lo to deadline do
        acc := !acc +. dg.(hi - 1);
        row.(hi) <- !acc /. float_of_int (hi - lo + 1)
      done
    done
  in
  for ci = 0 to n_cls - 1 do rebuild_dg ci done;
  (* identical float to [avg_over dgs.(ci) lo hi] *)
  let avg ci lo hi = avgs.(ci).(lo).(hi) in
  (* neighbor lists as flat int arrays for the hot loops *)
  let preds_a = Array.init n (fun i -> Array.of_list (Depgraph.preds dep i)) in
  let succs_a = Array.init n (fun i -> Array.of_list (Depgraph.succs dep i)) in
  let rows =
    Array.init n (fun _ ->
        { r_flo = 1; r_fhi = 0; r_min = infinity; r_argmin = 0; r_valid = false })
  in
  (* neighbor-force accumulators over the feasible interval; entry
     [s - flo] collects clip terms in the reference's neighbor order, so
     each per-step sum is the reference's fold, term for term *)
  let pbuf = Array.make deadline 0.0 in
  let qbuf = Array.make deadline 0.0 in
  let build_row i =
    incr c_rows_built;
    let lo = asap.(i) and hi = alap.(i) in
    let ci = cid.(i) in
    let dg = dgs.(ci) in
    (* the reference recomputes these averages for every candidate step;
       they do not depend on [s], so one evaluation (of the very same
       summation, via the table) is the same float *)
    let own_avg = avg ci lo hi in
    let preds = preds_a.(i) and succs = succs_a.(i) in
    let np = Array.length preds and nq = Array.length succs in
    (* the reference's per-neighbor feasibility test, as an interval *)
    let flo = ref lo and fhi = ref hi in
    for k = 0 to np - 1 do
      let a = asap.(preds.(k)) + 1 in
      if a > !flo then flo := a
    done;
    for k = 0 to nq - 1 do
      let l = alap.(succs.(k)) - 1 in
      if l < !fhi then fhi := l
    done;
    let flo = !flo and fhi = !fhi in
    let w = fhi - flo + 1 in
    let rm = ref infinity and ra = ref 0 in
    if w > 0 then begin
      c_force_evals := !c_force_evals + w;
      Array.fill pbuf 0 w 0.0;
      Array.fill qbuf 0 w 0.0;
      for k = 0 to np - 1 do
        let p = preds.(k) in
        let ap = asap.(p) and lp = alap.(p) in
        let whole = avg cid.(p) ap lp in
        let trow = avgs.(cid.(p)).(ap) in
        for s = flo to fhi do
          let hi' = if lp < s - 1 then lp else s - 1 in
          pbuf.(s - flo) <-
            pbuf.(s - flo) +. (if ap > hi' then 0.0 else trow.(hi') -. whole)
        done
      done;
      for k = 0 to nq - 1 do
        let q = succs.(k) in
        let aq = asap.(q) and lq = alap.(q) in
        let whole = avg cid.(q) aq lq in
        let tq = avgs.(cid.(q)) in
        for s = flo to fhi do
          let lo' = if aq > s + 1 then aq else s + 1 in
          qbuf.(s - flo) <-
            qbuf.(s - flo) +. (if lo' > lq then 0.0 else tq.(lo').(lq) -. whole)
        done
      done;
      for s = flo to fhi do
        let f = (dg.(s - 1) -. own_avg) +. (pbuf.(s - flo) +. qbuf.(s - flo)) in
        if f < !rm then begin
          rm := f;
          ra := s
        end
      done
    end;
    let r = rows.(i) in
    r.r_flo <- flo;
    r.r_fhi <- fhi;
    r.r_min <- !rm;
    r.r_argmin <- !ra;
    r.r_valid <- true
  in
  (* per-round bookkeeping, allocated once *)
  let old_asap = Array.make n 0 and old_alap = Array.make n 0 in
  let rec_stamp = Array.make n (-1) in
  let round = ref 0 in
  let dirty_lo = Array.make (max n_cls 1) max_int in
  let dirty_hi = Array.make (max n_cls 1) min_int in
  let remaining = ref (n - n_pinned) in
  let fwd = Queue.create () and bwd = Queue.create () in
  while !remaining > 0 do
    (* argmin scan; strict [<] keeps the first of equals, matching the
       reference's [bf <= f] skip *)
    let best_f = ref infinity and best_i = ref (-1) and best_s = ref 0 in
    for i = 0 to n - 1 do
      if not fixed.(i) then begin
        if rows.(i).r_valid then incr c_rows_cached else build_row i;
        let r = rows.(i) in
        if r.r_fhi >= r.r_flo then begin
          let f = r.r_min in
          if !best_i < 0 || f < !best_f then begin
            best_f := f;
            best_i := i;
            best_s := r.r_argmin
          end
        end
      end
    done;
    match !best_i with
    | -1 -> invalid_arg "Force_directed: no feasible placement (internal)"
    | i ->
        let s = !best_s in
        incr c_placements;
        (match on_fix with Some f -> f i s | None -> ());
        fixed.(i) <- true;
        incr round;
        let changed = ref [] in
        let note j =
          if rec_stamp.(j) <> !round then begin
            rec_stamp.(j) <- !round;
            old_asap.(j) <- asap.(j);
            old_alap.(j) <- alap.(j);
            changed := j :: !changed
          end
        in
        if asap.(i) <> s || alap.(i) <> s then note i;
        let asap_moved = asap.(i) <> s and alap_moved = alap.(i) <> s in
        asap.(i) <- s;
        alap.(i) <- s;
        (* forward ASAP worklist; fixed ops pin their bound, stopping
           propagation exactly where the reference's override would *)
        if asap_moved then Array.iter (fun q -> Queue.push q fwd) succs_a.(i);
        while not (Queue.is_empty fwd) do
          let j = Queue.pop fwd in
          if not fixed.(j) then begin
            let lo =
              1 + Array.fold_left (fun acc p -> max acc asap.(p)) 0 preds_a.(j)
            in
            if lo <> asap.(j) then begin
              note j;
              asap.(j) <- lo;
              Array.iter (fun q -> Queue.push q fwd) succs_a.(j)
            end
          end
        done;
        (* backward ALAP worklist *)
        if alap_moved then Array.iter (fun p -> Queue.push p bwd) preds_a.(i);
        while not (Queue.is_empty bwd) do
          let j = Queue.pop bwd in
          if not fixed.(j) then begin
            let hi =
              Array.fold_left (fun acc q -> min acc (alap.(q) - 1)) deadline succs_a.(j)
            in
            if hi <> alap.(j) then begin
              note j;
              alap.(j) <- hi;
              Array.iter (fun p -> Queue.push p bwd) preds_a.(j)
            end
          end
        done;
        c_frame_updates := !c_frame_updates + List.length !changed;
        (* moved frames dirty their class's distribution graph over the
           union of old and new windows, and directly invalidate the
           moved op's and its neighbors' cached forces *)
        List.iter
          (fun j ->
            let ci = cid.(j) in
            dirty_lo.(ci) <- min dirty_lo.(ci) (min old_asap.(j) asap.(j));
            dirty_hi.(ci) <- max dirty_hi.(ci) (max old_alap.(j) alap.(j));
            rows.(j).r_valid <- false;
            Array.iter (fun p -> rows.(p).r_valid <- false) preds_a.(j);
            Array.iter (fun q -> rows.(q).r_valid <- false) succs_a.(j))
          !changed;
        let any_dirty = ref false in
        for ci = 0 to n_cls - 1 do
          if dirty_lo.(ci) <= dirty_hi.(ci) then begin
            any_dirty := true;
            rebuild_dg ci
          end
        done;
        (* a surviving row also dies if a rebuilt distribution graph
           changed under its own window or under a neighbor's window:
           for each op [j] in a dirty class whose frame overlaps the
           dirty range, kill [j]'s row and its neighbors' rows (the
           symmetric statement of "row k reads a changed window") *)
        if !any_dirty then begin
          for ci = 0 to n_cls - 1 do
            if dirty_lo.(ci) <= dirty_hi.(ci) then begin
              let dlo = dirty_lo.(ci) and dhi = dirty_hi.(ci) in
              Array.iter
                (fun j ->
                  if dlo <= alap.(j) && dhi >= asap.(j) then begin
                    rows.(j).r_valid <- false;
                    Array.iter (fun p -> rows.(p).r_valid <- false) preds_a.(j);
                    Array.iter (fun q -> rows.(q).r_valid <- false) succs_a.(j)
                  end)
                members.(ci);
              dirty_lo.(ci) <- max_int;
              dirty_hi.(ci) <- min_int
            end
          done
        end;
        decr remaining
  done;
  Hls_obs.Trace.add "sched/fd_placements" !c_placements;
  Hls_obs.Trace.add "sched/fd_frame_updates" !c_frame_updates;
  Hls_obs.Trace.add "sched/fd_dg_rebuilds" !c_dg_rebuilds;
  Hls_obs.Trace.add "sched/fd_rows_built" !c_rows_built;
  Hls_obs.Trace.add "sched/fd_rows_cached" !c_rows_cached;
  Hls_obs.Trace.add "sched/fd_force_evals" !c_force_evals;
  let steps = Array.make n 1 in
  for i = 0 to n - 1 do
    steps.(i) <- asap.(i)
  done;
  steps

let schedule ?(pins = []) ~deadline g =
  let dep = Depgraph.of_dfg g in
  let pins = List.map (fun (nid, s) -> (Depgraph.index_of dep nid, s)) pins in
  Depgraph.to_schedule dep ~steps:(schedule_dep ~pins ~deadline dep)
