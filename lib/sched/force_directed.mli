(** Force-directed scheduling (Paulin & Knight's HAL; Fig 5).

    Time-constrained: given a deadline, every operation's possible step
    range (ASAP–ALAP time frame) feeds a per-class {e distribution graph}
    — for each control step, the expected number of concurrent operations
    assuming all schedules equally likely (an op with a k-step frame
    contributes 1/k to each step). Operations are then fixed one at a
    time, choosing the (op, step) pair with the lowest force — the
    placement that best balances the distribution — and frames are
    recomputed after each placement. The functional units required are
    the per-class maxima of the final distribution.

    {!schedule_dep} is the incremental kernel: ASAP/ALAP frames are
    maintained by worklists that re-propagate only through ops whose
    bounds changed, distribution graphs are rebuilt only for classes an
    update touched, and candidate forces are cached per op with
    invalidation scoped to the placement's blast radius. Placements are
    bit-identical to {!schedule_dep_reference} (the retained seed
    implementation) because every recomputed float uses the oracle's
    formulas in the oracle's evaluation order, and cached floats are only
    reused while all of their inputs are unchanged.

    Work is reported through {!Hls_obs.Trace} counters:
    [sched/fd_placements], [sched/fd_frame_updates] (ops whose bounds
    moved), [sched/fd_dg_rebuilds], [sched/fd_rows_built] /
    [sched/fd_rows_cached] (force-row recomputes vs cache hits),
    [sched/fd_force_evals] (candidate forces actually recomputed) and,
    for the oracle, [sched/fd_ref_force_evals]. *)

open Hls_cdfg

val distribution :
  Depgraph.t -> asap:int array -> alap:int array -> cls:Op.fu_class -> deadline:int ->
  float array
(** Distribution graph for one class over steps [1..deadline] (index 0 of
    the result is step 1). This is the quantity plotted in Fig 5. *)

val schedule : ?pins:(Dfg.nid * int) list -> deadline:int -> Dfg.t -> Schedule.t
(** Raises [Invalid_argument] if [deadline] is below the critical path
    length. [pins] pre-fixes compute nodes at given steps (see
    {!schedule_dep}). *)

val schedule_dep :
  ?on_fix:(int -> int -> unit) ->
  ?pins:(int * int) list ->
  deadline:int -> Depgraph.t -> int array
(** Incremental kernel. [on_fix i s] observes each placement in decision
    order (used by the step-for-step differential tests).

    [pins] is a list of [(op index, step)] pairs fixed {e before} the
    balancing loop runs: a pinned op contributes its whole distribution
    weight at one step and clips its neighbours' time frames, which is
    how the refinement layer perturbs the distribution-graph priorities
    of a re-schedule. With [pins = []] the behaviour is unchanged.
    Raises [Invalid_argument] for pins that are out of range, mutually
    conflicting, violate a dependence among themselves, or leave some
    unpinned op without a feasible step. *)

val schedule_dep_reference :
  ?on_fix:(int -> int -> unit) ->
  ?pins:(int * int) list ->
  deadline:int -> Depgraph.t -> int array
(** The seed implementation — recomputes frames, distribution graphs and
    all candidate forces after every placement. Produces exactly the
    same placement sequence as {!schedule_dep} (pins included); kept as
    the oracle for differential tests and benchmark baselines. *)
