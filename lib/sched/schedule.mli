(** Schedule of one basic block: an assignment of step-occupying
    operations to control steps (1-based).

    Step conventions:
    - [Const]/[Read] values exist from step 0 (available at block entry);
    - a step-occupying operation executes in its assigned step and its
      result is usable by other occupying operations from the next step;
    - free operations (constant shifts, zero-detect, mux) chain
      combinationally: their value is produced in the same step as their
      latest occupying ancestor;
    - a [Write] of a computed value latches at the end of its producer's
      step; a [Write] that is a register move occupies a step like any
      ALU operation.

    A block always takes at least one control step (its FSM state). *)

open Hls_cdfg

type t

val make : Dfg.t -> steps:(Dfg.nid -> int) -> t
(** Build from an assignment of steps to the block's step-occupying
    nodes. [steps] is consulted only for nodes with
    {!Dfg.occupies_step}; raises [Invalid_argument] on a step < 1. *)

val dfg : t -> Dfg.t

val digest : t -> string
(** Content digest of the step assignment. Two schedules of the same
    DFG digest equally iff they place every operation identically —
    the key the DSE engine uses to share backend results between
    option points whose schedules coincide. *)

val step_of : t -> Dfg.nid -> int
(** Step of a step-occupying node. Raises [Invalid_argument] for
    non-occupying nodes (use {!producer_step}). *)

val producer_step : t -> Dfg.nid -> int
(** Step in which the node's value is produced: 0 for entry values,
    the assigned step for occupying operations, the latest occupying
    ancestor's step for free chains (0 if the chain hangs off entry
    values only). *)

val write_step : t -> Dfg.nid -> int
(** Control step at which a [Write] node latches (at least 1). *)

val n_steps : t -> int
(** Number of control steps the block occupies (at least 1). *)

val usage : t -> int -> (Op.fu_class * int) list
(** Per-class tally of step-occupying operations in a step. *)

val fu_requirement : t -> (Op.fu_class * int) list
(** For each class, the maximum concurrent use over all steps — the
    number of functional units the schedule implies (force-directed
    scheduling's objective). *)

val ops_in_step : t -> int -> Dfg.nid list
(** Step-occupying operations assigned to the step, ascending. *)

val verify : Limits.t -> t -> (unit, string) result
(** Check data dependences (every occupying operation starts strictly
    after its operands' producing steps) and resource limits in every
    step. *)

val pp : Format.formatter -> t -> unit
(** Tabular rendering: one line per step with its operations, free
    chained operations shown on their producer's step. *)
