open Hls_cdfg

type t = { cfg : Cfg.t; scheds : Schedule.t array }

let make cfg ~scheduler =
  let scheds =
    Array.init (Cfg.n_blocks cfg) (fun bid -> scheduler (Cfg.dfg cfg bid))
  in
  let ops =
    List.fold_left
      (fun acc bid -> acc + List.length (Dfg.compute_ops (Cfg.dfg cfg bid)))
      0 (Cfg.block_ids cfg)
  in
  Hls_obs.Trace.add "sched/ops_scheduled" ops;
  Hls_obs.Trace.add "sched/steps"
    (Array.fold_left (fun acc s -> acc + Schedule.n_steps s) 0 scheds);
  { cfg; scheds }

let cfg t = t.cfg

let block_schedule t bid = t.scheds.(bid)

let with_block t bid sched =
  let scheds = Array.copy t.scheds in
  scheds.(bid) <- sched;
  { t with scheds }

let digest t =
  Digest.string
    (String.concat "" (Array.to_list (Array.map Schedule.digest t.scheds)))

let compute_steps t =
  List.fold_left
    (fun acc bid ->
      let g = Cfg.dfg t.cfg bid in
      if Dfg.compute_ops g = [] then acc
      else acc + (Schedule.n_steps t.scheds.(bid) * Cfg.exec_frequency t.cfg bid))
    0 (Cfg.block_ids t.cfg)

let total_states t =
  Array.fold_left (fun acc s -> acc + Schedule.n_steps s) 0 t.scheds

let verify limits t =
  let rec check = function
    | [] -> Ok ()
    | bid :: rest -> (
        match Schedule.verify limits t.scheds.(bid) with
        | Ok () -> check rest
        | Error e -> Error (Printf.sprintf "block %d: %s" bid e))
  in
  check (Cfg.block_ids t.cfg)

let pp ppf t =
  Cfg.iter
    (fun bid b ->
      Format.fprintf ppf "%s (%d steps):@." b.Cfg.label
        (Schedule.n_steps t.scheds.(bid));
      Schedule.pp ppf t.scheds.(bid))
    t.cfg
