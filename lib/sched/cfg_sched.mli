(** Whole-program schedule: one {!Schedule.t} per basic block.

    The total latency weights each block's step count by its static
    execution frequency (loop trip counts), reproducing the paper's
    arithmetic: sqrt unoptimized serial = 3 + 4·5 = 23 control steps;
    optimized on two functional units = 2 + 4·2 = 10. *)

open Hls_cdfg

type t

val make : Cfg.t -> scheduler:(Dfg.t -> Schedule.t) -> t
(** Schedule every block with the given per-block scheduler. *)

val cfg : t -> Cfg.t
val block_schedule : t -> Cfg.bid -> Schedule.t

val with_block : t -> Cfg.bid -> Schedule.t -> t
(** A copy of the whole-program schedule with one block's schedule
    replaced — the surgical update the refinement loop uses to
    re-schedule a critical block without touching the rest. Bumps no
    counters; the replacement schedule must be over the same block's
    DFG. *)

val digest : t -> string
(** Content digest over all block schedules ({!Schedule.digest} of
    each, in block order). Equal digests on the same CFG mean every
    operation is placed in the same step. *)

val compute_steps : t -> int
(** Σ over blocks with at least one step-occupying operation of
    (steps × execution frequency) — the number the paper quotes. *)

val total_states : t -> int
(** Σ over all blocks of their step count: the FSM state count,
    including empty join/exit states. *)

val verify : Limits.t -> t -> (unit, string) result
(** {!Schedule.verify} on every block. *)

val pp : Format.formatter -> t -> unit
