(** Register-transfer-level datapath: the final structure of high-level
    synthesis — "a network of registers, functional units, multiplexers
    and buses, as well as hardware to control the data transfers in that
    network".

    Built from the schedule, the functional-unit allocation and the
    register allocation. Steering logic appears as per-state wire
    selections on functional-unit input ports and register inputs; the
    companion controller ({!Hls_ctrl.Fsm} / {!Hls_ctrl.Ctrl_synth})
    drives the selections. *)

open Hls_cdfg

type reg_def = {
  rname : string;
  rwidth : int;
  rkind : [ `In_port | `Out_port | `Var | `Temp ];
}

type fu_def = { fuid : int; comp : Component.t; fwidth : int }

(** One functional-unit activation: in [state], unit [fu] performs [op]
    at type [ty] on the wire operands. *)
type activity = { a_state : int; a_fu : int; a_op : Op.t; a_ty : Hls_lang.Ast.ty; a_args : Wire.t list }

type load = { l_state : int; l_reg : string; l_wire : Wire.t }

type t = {
  regs : reg_def list;
  fus : fu_def list;
  activities : activity list;
  loads : load list;
  conds : (int * Wire.t) list;  (** branch-condition wire per deciding state *)
  fsm : Hls_ctrl.Fsm.t;
}

val build :
  ?node_bits:(int -> int -> int) ->
  Hls_sched.Cfg_sched.t ->
  fu:Hls_alloc.Fu_alloc.t ->
  regs:Hls_alloc.Reg_alloc.t ->
  ports:(string * [ `In | `Out ] * Hls_lang.Ast.ty) list ->
  t
(** [node_bits bid nid] overrides the storage width of one node's value
    (default: the declared type width). The range analysis passes its
    inferred widths here to narrow variable/temp registers and functional
    units; ports always keep their declared widths, and simulation is
    width-blind (it evaluates at [Op.eval] precision), so narrowing is
    area-only and bit-identical by construction. *)

val reg_width : t -> string -> int
(** Raises [Not_found] for unknown registers. *)

val fu_of : t -> int -> fu_def

val activities_in : t -> int -> activity list
(** Activations of a state. *)

val loads_in : t -> int -> load list

val cond_wire : t -> int -> Wire.t option

(** Per-state view of activations, loads and branch conditions, built in
    one pass over the datapath. {!activities_in}/{!loads_in}/{!cond_wire}
    scan the whole design per query; a simulator executing millions of
    cycles builds an index once and reads arrays. *)
type index

val index : t -> index

val acts_at : index -> int -> activity array
(** Activations of a state, in {!activities_in} order. *)

val loads_at : index -> int -> load array
(** Loads of a state, in {!loads_in} order. *)

val cond_at : index -> int -> Wire.t option

val stats : t -> string
(** One-line summary: registers / units / activations. *)
