(** Hardware component library for module binding ("for the binding of
    functional units, known components such as adders can be taken from a
    hardware library. Libraries facilitate the synthesis process and the
    size/timing estimation").

    Area is in gate equivalents: a per-bit cost times the datapath width
    plus a fixed overhead. Delays are nanoseconds at any width (a
    simplification documented in DESIGN.md). *)

open Hls_cdfg

(** Which operations a component can execute. Plain data rather than a
    predicate closure so a component — and any design containing one —
    can be marshalled into the persistent design cache. *)
type coverage = Add_sub | Full_alu | Mul_only | Div_mod | Shifts

type t = {
  cname : string;
  cls : Op.fu_class;  (** functional-unit class the component serves *)
  covers : coverage;  (** operation coverage *)
  area_base : int;
  area_per_bit : int;
  delay_ns : float;
}

val executes : t -> Op.t -> bool
(** Whether the component's {!coverage} includes the operation. *)

val library : t list
(** The built-in component catalogue: add/sub unit, full ALU,
    array multiplier, sequential divider, barrel shifter. *)

val find : string -> t
(** Lookup by name. Raises [Not_found]. *)

val area : t -> width:int -> int

val bind : cls:Op.fu_class -> ops:Op.t list -> t
(** Cheapest library component of the class covering all the operations
    (module binding). Raises [Not_found] if nothing covers them. *)

val register_area : width:int -> int
val mux_area : inputs:int -> width:int -> int
(** Gate cost of storage and steering logic. *)

val register_delay_ns : float
val mux_delay_ns : float
val free_op_delay_ns : float
(** Wiring-level delays used by cycle-time estimation (register
    clock-to-q + setup; one 2-way mux level; one free operation such as
    a constant shift or zero-detect). *)
