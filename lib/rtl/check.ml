open Hls_analysis.Diagnostic

let rules =
  [
    ("RTL001", "wire reads a register that does not exist");
    ("RTL002", "functional unit activated twice in one state");
    ("RTL003", "bound component cannot execute an activation's operation");
    ("RTL004", "unit input chains another unit's output in the same state");
    ("RTL005", "register driven by two loads in one state");
    ("RTL006", "load targets a register that does not exist");
    ("RTL007", "wire consumes the output of an idle unit");
    ("RTL008", "state branches without a condition wire");
    ("RTL009", "activation references a unit that does not exist");
  ]

let diagnostics (dp : Datapath.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let reg_exists name =
    List.exists (fun (r : Datapath.reg_def) -> r.Datapath.rname = name) dp.Datapath.regs
  in
  let check_wire entity ctx w =
    List.iter
      (fun r ->
        if not (reg_exists r) then
          add (error Rtl ~code:"RTL001" entity "%s reads missing register %s" ctx r))
      (Wire.regs_read w)
  in
  let active fu state =
    List.exists
      (fun (a : Datapath.activity) -> a.Datapath.a_fu = fu && a.Datapath.a_state = state)
      dp.Datapath.activities
  in
  (* activations *)
  let seen_fu_state = Hashtbl.create 32 in
  List.iter
    (fun (a : Datapath.activity) ->
      let key = (a.Datapath.a_fu, a.Datapath.a_state) in
      if Hashtbl.mem seen_fu_state key then
        add
          (error Rtl ~code:"RTL002" (Fu a.Datapath.a_fu)
             "functional unit %d double-booked in state %d" a.Datapath.a_fu
             a.Datapath.a_state)
      else Hashtbl.add seen_fu_state key ();
      (match
         List.find_opt
           (fun (f : Datapath.fu_def) -> f.Datapath.fuid = a.Datapath.a_fu)
           dp.Datapath.fus
       with
      | None ->
          add
            (error Rtl ~code:"RTL009" (State a.Datapath.a_state)
               "activation references missing unit %d" a.Datapath.a_fu)
      | Some f ->
          if not (Component.executes f.Datapath.comp a.Datapath.a_op) then
            add
              (error Rtl ~code:"RTL003" (Fu f.Datapath.fuid) "unit %d (%s) cannot execute %s"
                 f.Datapath.fuid f.Datapath.comp.Component.cname
                 (Hls_cdfg.Op.to_string a.Datapath.a_op)));
      List.iter
        (check_wire (Fu a.Datapath.a_fu) (Printf.sprintf "fu%d input" a.Datapath.a_fu))
        a.Datapath.a_args;
      (* FU inputs must not depend on same-state FU outputs *)
      List.iter
        (fun w ->
          if Wire.fus_read w <> [] then
            add
              (error Rtl ~code:"RTL004" (Fu a.Datapath.a_fu)
                 "unit %d input chains another unit's output in state %d (unsupported chaining)"
                 a.Datapath.a_fu a.Datapath.a_state))
        a.Datapath.a_args)
    dp.Datapath.activities;
  (* loads *)
  let seen_reg_state = Hashtbl.create 32 in
  List.iter
    (fun (l : Datapath.load) ->
      let key = (l.Datapath.l_reg, l.Datapath.l_state) in
      if Hashtbl.mem seen_reg_state key then
        add
          (error Rtl ~code:"RTL005" (Register l.Datapath.l_reg)
             "register %s double-driven in state %d" l.Datapath.l_reg l.Datapath.l_state)
      else Hashtbl.add seen_reg_state key ();
      if not (reg_exists l.Datapath.l_reg) then
        add
          (error Rtl ~code:"RTL006" (Register l.Datapath.l_reg)
             "load into missing register %s" l.Datapath.l_reg);
      check_wire (Register l.Datapath.l_reg)
        (Printf.sprintf "load of %s" l.Datapath.l_reg)
        l.Datapath.l_wire;
      (* any FU outputs consumed must be active in this state *)
      List.iter
        (fun u ->
          if not (active u l.Datapath.l_state) then
            add
              (error Rtl ~code:"RTL007" (Register l.Datapath.l_reg)
                 "load of %s in state %d consumes idle unit %d" l.Datapath.l_reg
                 l.Datapath.l_state u))
        (Wire.fus_read l.Datapath.l_wire))
    dp.Datapath.loads;
  (* branch conditions *)
  List.iter
    (fun (tr : Hls_ctrl.Fsm.transition) ->
      match tr.Hls_ctrl.Fsm.t_guard with
      | Hls_ctrl.Fsm.G_cond _ ->
          if Datapath.cond_wire dp tr.Hls_ctrl.Fsm.t_from = None then
            add
              (error Rtl ~code:"RTL008" (State tr.Hls_ctrl.Fsm.t_from)
                 "state %d branches without a condition wire" tr.Hls_ctrl.Fsm.t_from)
      | Hls_ctrl.Fsm.G_always -> ())
    (Hls_ctrl.Fsm.transitions dp.Datapath.fsm);
  List.iter
    (fun (state, w) ->
      check_wire (State state) (Printf.sprintf "condition of state %d" state) w;
      List.iter
        (fun u ->
          if not (active u state) then
            add
              (error Rtl ~code:"RTL007" (State state)
                 "condition of state %d consumes idle unit %d" state u))
        (Wire.fus_read w))
    dp.Datapath.conds;
  List.rev !ds

let run dp = match diagnostics dp with [] -> Ok () | ds -> Error ds
