open Hls_cdfg

(* Operation coverage is plain data (not a predicate closure) so that
   components — and everything containing them, like a finished design —
   can be marshalled into the persistent design cache. *)
type coverage = Add_sub | Full_alu | Mul_only | Div_mod | Shifts

type t = {
  cname : string;
  cls : Op.fu_class;
  covers : coverage;
  area_base : int;
  area_per_bit : int;
  delay_ns : float;
}

let add_sub_ops (op : Op.t) =
  match op with
  | Op.Add | Op.Sub | Op.Incr | Op.Decr | Op.Neg | Op.Cmp _ -> true
  | Op.Write _ -> true (* pass-through register move *)
  | _ -> false

let alu_ops (op : Op.t) =
  add_sub_ops op || match op with Op.And | Op.Or | Op.Xor | Op.Not -> true | _ -> false

let executes c (op : Op.t) =
  match c.covers with
  | Add_sub -> add_sub_ops op
  | Full_alu -> alu_ops op
  | Mul_only -> op = Op.Mul
  | Div_mod -> ( match op with Op.Div | Op.Mod -> true | _ -> false)
  | Shifts -> ( match op with Op.Shl | Op.Shr -> true | _ -> false)

let library =
  [
    {
      cname = "add_sub";
      cls = Op.C_alu;
      covers = Add_sub;
      area_base = 20;
      area_per_bit = 10;
      delay_ns = 18.0;
    };
    {
      cname = "alu";
      cls = Op.C_alu;
      covers = Full_alu;
      area_base = 40;
      area_per_bit = 14;
      delay_ns = 20.0;
    };
    {
      cname = "mult";
      cls = Op.C_mul;
      covers = Mul_only;
      area_base = 100;
      area_per_bit = 75;
      delay_ns = 60.0;
    };
    {
      cname = "divider";
      cls = Op.C_div;
      covers = Div_mod;
      area_base = 150;
      area_per_bit = 95;
      delay_ns = 90.0;
    };
    {
      cname = "barrel_shifter";
      cls = Op.C_shift;
      covers = Shifts;
      area_base = 30;
      area_per_bit = 18;
      delay_ns = 25.0;
    };
  ]

let find name = List.find (fun c -> c.cname = name) library

let area c ~width = c.area_base + (c.area_per_bit * width)

let bind ~cls ~ops =
  let candidates =
    List.filter
      (fun c -> c.cls = cls && List.for_all (fun op -> executes c op) ops)
      library
  in
  match
    List.sort (fun a b -> compare (area a ~width:32) (area b ~width:32)) candidates
  with
  | c :: _ -> c
  | [] -> raise Not_found

let register_area ~width = 8 * width

let mux_area ~inputs ~width = max 0 (inputs - 1) * 3 * width

let register_delay_ns = 2.5
let mux_delay_ns = 1.5
let free_op_delay_ns = 1.0
