(** Combinational wire expressions of the datapath: what a functional-unit
    input port or a register input is connected to in a given state.
    Free operations (constant shifts, zero-detect, value-steering muxes)
    appear here as wiring, not as functional units. *)

open Hls_lang

type t =
  | W_reg of string  (** register output *)
  | W_const of int * Ast.ty
  | W_fu_out of int * Ast.ty  (** combinational output of a functional unit *)
  | W_shl of t * int * Ast.ty
  | W_shr of t * int * Ast.ty
  | W_zdetect of t
  | W_mux of t * t * t * Ast.ty  (** cond, then, else *)
  | W_not of t * Ast.ty
      (** boolean complement arising from branch polarity *)

val ty : t -> (string -> Ast.ty) -> Ast.ty
(** Result type; the callback resolves register widths. *)

val fmt_of_ty : Ast.ty -> Hls_util.Fixedpt.format
(** Fixed-point format of a wire type — the wrap discipline {!eval}
    applies, exposed for staged evaluators that resolve it once. *)

val eval : t -> reg:(string -> int) -> fu:(int -> int) -> int
(** Evaluate against current register values and (already computed)
    functional-unit outputs. *)

val depth_delay_ns : t -> float
(** Combinational delay contributed by the free logic of the expression
    (excludes the FU's own delay; includes mux/shift/zero-detect levels). *)

val to_string : t -> string

val regs_read : t -> string list
(** Registers the expression reads, sorted and deduplicated. *)

val fus_read : t -> int list
(** Functional units whose outputs feed the expression. *)
