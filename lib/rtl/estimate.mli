(** Area and timing estimation (what BUD and PLEST provided: "to make
    realistic evaluations of design trade-offs at the algorithmic and
    register transfer levels, it is necessary to anticipate what the
    lower level tools will do").

    Area is the sum of: bound functional units, registers, steering
    multiplexers (per-state wire selections), and the controller
    (minimized next-state logic at 2 gates per literal plus the state
    register). Cycle time is the worst state's register→FU→register
    path; latency is cycle × schedule length. *)

type t = {
  fu_area : int;
  reg_area : int;
  mux_area : int;
  ctrl_area : int;
  total_area : int;
  cycle_ns : float;
  compute_steps : int;  (** weighted schedule length *)
  latency_ns : float;
}

val estimate :
  ?style:Hls_ctrl.Encoding.style ->
  ?ctrl:Hls_ctrl.Ctrl_synth.t ->
  Datapath.t ->
  Hls_sched.Cfg_sched.t ->
  t
(** [?ctrl] supplies an already-synthesized controller for the
    datapath's FSM (it must match [style]); without it the controller
    is re-synthesized here just to price its logic, which doubles the
    most expensive backend stage when the caller — like {!val:estimate}'s
    use in the flow — has one in hand. *)

val pp : Format.formatter -> t -> unit
val to_row : t -> string list
(** [area; cycle; steps; latency] cells for report tables. *)
