(** Structural sanity checks on a built datapath (netlist lint), on the
    shared diagnostic framework of {!Hls_analysis}.

    Rules (all errors):
    - [RTL001] — a wire reads a register that does not exist;
    - [RTL002] — a functional unit is activated twice in one state;
    - [RTL003] — a unit's bound component cannot execute an activation's
      operation;
    - [RTL004] — a unit input chains another unit's combinational
      output in the same state (unsupported chaining);
    - [RTL005] — a register is driven by two loads in one state;
    - [RTL006] — a load targets a register that does not exist;
    - [RTL007] — a wire consumes the output of a unit that is idle in
      the wire's state;
    - [RTL008] — a state branches without a condition wire;
    - [RTL009] — an activation references a unit that does not exist. *)

val rules : (string * string) list
(** [(code, one-line description)] for every rule above. *)

val diagnostics : Datapath.t -> Hls_analysis.Diagnostic.t list
(** All violations, in netlist order. *)

val run : Datapath.t -> (unit, Hls_analysis.Diagnostic.t list) result
(** [Ok ()] iff {!diagnostics} reports nothing. *)
