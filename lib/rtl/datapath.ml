open Hls_cdfg
open Hls_alloc

type reg_def = {
  rname : string;
  rwidth : int;
  rkind : [ `In_port | `Out_port | `Var | `Temp ];
}

type fu_def = { fuid : int; comp : Component.t; fwidth : int }

type activity = {
  a_state : int;
  a_fu : int;
  a_op : Op.t;
  a_ty : Hls_lang.Ast.ty;
  a_args : Wire.t list;
}

type load = { l_state : int; l_reg : string; l_wire : Wire.t }

type t = {
  regs : reg_def list;
  fus : fu_def list;
  activities : activity list;
  loads : load list;
  conds : (int * Wire.t) list;
  fsm : Hls_ctrl.Fsm.t;
}

let bits_of (ty : Hls_lang.Ast.ty) =
  match ty with
  | Hls_lang.Ast.Tbool -> 1
  | Hls_lang.Ast.Tint w -> w
  | Hls_lang.Ast.Tfix (i, f) -> i + f

let temp_name track = Printf.sprintf "tmp%d" track

let build ?node_bits cs ~fu ~regs ~ports =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let storage = Fu_alloc.storage_table cs in
  let fsm = Hls_ctrl.Fsm.of_schedule cs in
  (* storage width of one node's value: declared type width by default,
     or the caller's (range-inferred) narrowing *)
  let nb bid nid (node : Dfg.node) =
    match node_bits with Some f -> f bid nid | None -> bits_of node.Dfg.ty
  in
  (* ---- register inventory ---- *)
  let widths : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let kinds : (string, [ `In_port | `Out_port | `Var | `Temp ]) Hashtbl.t =
    Hashtbl.create 16
  in
  let note_reg name width kind =
    let cur = match Hashtbl.find_opt widths name with Some w -> w | None -> 0 in
    Hashtbl.replace widths name (max cur width);
    (* port kinds take precedence over Var *)
    match (Hashtbl.find_opt kinds name, kind) with
    | Some (`In_port | `Out_port), _ -> ()
    | _, k -> Hashtbl.replace kinds name k
  in
  List.iter
    (fun (p, dir, ty) ->
      note_reg
        (Reg_alloc.register_of_var regs p)
        (bits_of ty)
        (match dir with `In -> `In_port | `Out -> `Out_port))
    ports;
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      Dfg.iter
        (fun nid node ->
          match node.Dfg.op with
          | Op.Read v | Op.Write v ->
              note_reg (Reg_alloc.register_of_var regs v) (nb bid nid node) `Var
          | _ -> ())
        g)
    (Cfg.block_ids cfg);
  (* temp registers: width = max over values sharing a track *)
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      Dfg.iter
        (fun nid node ->
          match Reg_alloc.temp_track regs bid nid with
          | Some track -> note_reg (temp_name track) (nb bid nid node) `Temp
          | None -> ())
        g)
    (Cfg.block_ids cfg);
  let reg_defs =
    Hashtbl.fold
      (fun name width acc ->
        { rname = name; rwidth = width; rkind = Hashtbl.find kinds name } :: acc)
      widths []
    |> List.sort (fun a b -> compare a.rname b.rname)
  in
  (* ---- wire construction ---- *)
  let wire_for bid nid ~step =
    let g = Cfg.dfg cfg bid in
    let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
    let temp_reg nid =
      match Reg_alloc.temp_track regs bid nid with
      | Some track -> temp_name track
      | None -> invalid_arg (Printf.sprintf "Datapath: no temp track for b%d.%%%d" bid nid)
    in
    let rec go nid =
      let node = Dfg.node g nid in
      match node.Dfg.op with
      | Op.Const c -> Wire.W_const (c, node.Dfg.ty)
      | Op.Read v -> (
          match Hashtbl.find_opt storage (bid, nid) with
          | Some (Lifetime.Temp iv) when step > iv.Hls_util.Interval.lo ->
              Wire.W_reg (temp_reg nid)
          | _ -> Wire.W_reg (Reg_alloc.register_of_var regs v))
      | Op.Write _ -> invalid_arg "Datapath: a write is not a readable value"
      | _ when Dfg.occupies_step g nid ->
          let produced = Hls_sched.Schedule.step_of sched nid in
          if step = produced then
            Wire.W_fu_out (Fu_alloc.of_op fu (bid, nid), node.Dfg.ty)
          else (
            match Hashtbl.find_opt storage (bid, nid) with
            | Some (Lifetime.In_variable v) -> Wire.W_reg (Reg_alloc.register_of_var regs v)
            | Some (Lifetime.Temp _) -> Wire.W_reg (temp_reg nid)
            | Some Lifetime.No_storage | None ->
                invalid_arg
                  (Printf.sprintf "Datapath: b%d.%%%d consumed at step %d but not stored"
                     bid nid step))
      | Op.Shl | Op.Shr -> (
          match node.Dfg.args with
          | [ a; amount ] -> (
              match Dfg.op g amount with
              | Op.Const k -> (
                  match node.Dfg.op with
                  | Op.Shl -> Wire.W_shl (go a, k, node.Dfg.ty)
                  | _ -> Wire.W_shr (go a, k, node.Dfg.ty))
              | _ -> invalid_arg "Datapath: variable shift is not free wiring")
          | _ -> invalid_arg "Datapath: malformed shift")
      | Op.Zdetect -> (
          match node.Dfg.args with
          | [ a ] -> Wire.W_zdetect (go a)
          | _ -> invalid_arg "Datapath: malformed zdetect")
      | Op.Mux -> (
          match node.Dfg.args with
          | [ c; a; b ] -> Wire.W_mux (go c, go a, go b, node.Dfg.ty)
          | _ -> invalid_arg "Datapath: malformed mux")
      | op ->
          invalid_arg
            (Printf.sprintf "Datapath: unexpected free operation %s" (Op.to_string op))
    in
    go nid
  in
  (* ---- functional units and their activations ---- *)
  let fu_widths : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let fu_ops : (int, Op.t list) Hashtbl.t = Hashtbl.create 8 in
  let activities = ref [] in
  List.iter
    (fun (r : Fu_alloc.op_ref) ->
      let g = Cfg.dfg cfg r.Fu_alloc.bid in
      let node = Dfg.node g r.Fu_alloc.nid in
      let unit_id = Fu_alloc.of_op fu (r.Fu_alloc.bid, r.Fu_alloc.nid) in
      let state = Hls_ctrl.Fsm.state_of fsm r.Fu_alloc.bid r.Fu_alloc.step in
      let args =
        List.map (fun a -> wire_for r.Fu_alloc.bid a ~step:r.Fu_alloc.step) node.Dfg.args
      in
      let cur_w = match Hashtbl.find_opt fu_widths unit_id with Some w -> w | None -> 1 in
      Hashtbl.replace fu_widths unit_id
        (max cur_w (nb r.Fu_alloc.bid r.Fu_alloc.nid node));
      let cur_ops = match Hashtbl.find_opt fu_ops unit_id with Some l -> l | None -> [] in
      Hashtbl.replace fu_ops unit_id (node.Dfg.op :: cur_ops);
      activities :=
        {
          a_state = state;
          a_fu = unit_id;
          a_op = node.Dfg.op;
          a_ty = node.Dfg.ty;
          a_args = args;
        }
        :: !activities)
    (Fu_alloc.collect cs);
  let fus =
    List.map
      (fun (inst : Fu_alloc.instance) ->
        let fuid = inst.Fu_alloc.fu_id in
        let ops = match Hashtbl.find_opt fu_ops fuid with Some l -> l | None -> [] in
        let comp = Component.bind ~cls:inst.Fu_alloc.fu_cls ~ops in
        let fwidth = match Hashtbl.find_opt fu_widths fuid with Some w -> w | None -> 1 in
        { fuid; comp; fwidth })
      fu.Fu_alloc.instances
  in
  (* ---- register loads ---- *)
  let loads = ref [] in
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      (* variable writes *)
      List.iter
        (fun (v, wnid) ->
          let ws = Hls_sched.Schedule.write_step sched wnid in
          let state = Hls_ctrl.Fsm.state_of fsm bid ws in
          match Dfg.args g wnid with
          | [ a ] ->
              loads :=
                {
                  l_state = state;
                  l_reg = Reg_alloc.register_of_var regs v;
                  l_wire = wire_for bid a ~step:ws;
                }
                :: !loads
          | _ -> ())
        (Dfg.writes g);
      (* temp latches *)
      let term_cond =
        match Cfg.term cfg bid with
        | Cfg.Branch (c, _, _) -> Some c
        | Cfg.Goto _ | Cfg.Halt -> None
      in
      List.iter
        (fun (info : Lifetime.value_info) ->
          match info.Lifetime.storage with
          | Lifetime.Temp iv ->
              let nid = info.Lifetime.nid in
              let step = iv.Hls_util.Interval.lo in
              let state = Hls_ctrl.Fsm.state_of fsm bid step in
              let track =
                match Reg_alloc.temp_track regs bid nid with
                | Some t -> t
                | None -> invalid_arg "Datapath: temp without track"
              in
              loads :=
                { l_state = state; l_reg = temp_name track; l_wire = wire_for bid nid ~step }
                :: !loads
          | Lifetime.In_variable _ | Lifetime.No_storage -> ())
        (Lifetime.analyze (Hls_sched.Cfg_sched.block_schedule cs bid) ~term_cond))
    (Cfg.block_ids cfg);
  (* ---- branch conditions ---- *)
  let conds =
    List.filter_map
      (fun bid ->
        match Cfg.term cfg bid with
        | Cfg.Branch (c, _, _) ->
            let n = Hls_sched.Schedule.n_steps (Hls_sched.Cfg_sched.block_schedule cs bid) in
            let state = Hls_ctrl.Fsm.state_of fsm bid n in
            Some (state, wire_for bid c ~step:n)
        | Cfg.Goto _ | Cfg.Halt -> None)
      (Cfg.block_ids cfg)
  in
  {
    regs = reg_defs;
    fus;
    activities = List.rev !activities;
    loads = List.rev !loads;
    conds;
    fsm;
  }

let reg_width t name =
  match List.find_opt (fun r -> r.rname = name) t.regs with
  | Some r -> r.rwidth
  | None -> raise Not_found

let fu_of t id = List.find (fun f -> f.fuid = id) t.fus

let activities_in t state = List.filter (fun a -> a.a_state = state) t.activities

let loads_in t state = List.filter (fun l -> l.l_state = state) t.loads

let cond_wire t state = List.assoc_opt state t.conds

(* Per-state view built in one pass — the simulator's replacement for
   calling the [List.filter] accessors above every cycle. State ids are
   dense (0 .. n_states-1), so plain arrays index them. *)
type index = {
  ix_acts : activity array array;
  ix_loads : load array array;
  ix_conds : Wire.t option array;
}

let index t =
  let n = Hls_ctrl.Fsm.n_states t.fsm in
  let acts = Array.make n [] and loads = Array.make n [] in
  (* build in reverse so each per-state list ends up in [t]'s order *)
  List.iter (fun a -> acts.(a.a_state) <- a :: acts.(a.a_state)) (List.rev t.activities);
  List.iter (fun l -> loads.(l.l_state) <- l :: loads.(l.l_state)) (List.rev t.loads);
  let conds = Array.make n None in
  (* first binding wins, as in [List.assoc_opt] *)
  List.iter
    (fun (s, w) -> if conds.(s) = None then conds.(s) <- Some w)
    t.conds;
  {
    ix_acts = Array.map Array.of_list acts;
    ix_loads = Array.map Array.of_list loads;
    ix_conds = conds;
  }

let acts_at ix state = ix.ix_acts.(state)
let loads_at ix state = ix.ix_loads.(state)
let cond_at ix state = ix.ix_conds.(state)

let stats t =
  Printf.sprintf "%d registers, %d functional units, %d activations, %d register loads"
    (List.length t.regs) (List.length t.fus) (List.length t.activities)
    (List.length t.loads)
