type t = {
  fu_area : int;
  reg_area : int;
  mux_area : int;
  ctrl_area : int;
  total_area : int;
  cycle_ns : float;
  compute_steps : int;
  latency_ns : float;
}

(* Distinct wire selections per destination → mux sizes. Every mux input
   is as wide as the destination it feeds: the functional unit's bound
   width for operand ports, the register's width for load ports. Unknown
   destinations are datapath construction bugs, not 16-bit guesses. *)
let mux_area_of (dp : Datapath.t) =
  let by_dest : (string, int * Wire.t list) Hashtbl.t = Hashtbl.create 32 in
  let note key width wire =
    let have =
      match Hashtbl.find_opt by_dest key with Some (_, ws) -> ws | None -> []
    in
    if not (List.mem wire have) then Hashtbl.replace by_dest key (width, wire :: have)
  in
  let fu_width id =
    match List.find_opt (fun (f : Datapath.fu_def) -> f.Datapath.fuid = id) dp.Datapath.fus
    with
    | Some f -> f.Datapath.fwidth
    | None ->
        invalid_arg (Printf.sprintf "Estimate: activity references undefined fu%d" id)
  in
  let reg_w name =
    match Datapath.reg_width dp name with
    | w -> w
    | exception Not_found ->
        invalid_arg (Printf.sprintf "Estimate: load targets undefined register %S" name)
  in
  List.iter
    (fun (a : Datapath.activity) ->
      let width = fu_width a.Datapath.a_fu in
      List.iteri
        (fun pos w -> note (Printf.sprintf "fu%d.%d" a.Datapath.a_fu pos) width w)
        a.Datapath.a_args)
    dp.Datapath.activities;
  List.iter
    (fun (l : Datapath.load) ->
      note ("reg:" ^ l.Datapath.l_reg) (reg_w l.Datapath.l_reg) l.Datapath.l_wire)
    dp.Datapath.loads;
  Hashtbl.fold
    (fun _ (width, wires) acc ->
      acc + Component.mux_area ~inputs:(List.length wires) ~width)
    by_dest 0

let cycle_time (dp : Datapath.t) =
  (* worst state: register read + input mux + FU + output wiring + setup *)
  let worst = ref Component.register_delay_ns in
  List.iter
    (fun (a : Datapath.activity) ->
      let input_delay =
        List.fold_left (fun acc w -> max acc (Wire.depth_delay_ns w)) 0.0 a.Datapath.a_args
      in
      let f = Datapath.fu_of dp a.Datapath.a_fu in
      let d =
        Component.register_delay_ns +. Component.mux_delay_ns +. input_delay
        +. f.Datapath.comp.Component.delay_ns
      in
      if d > !worst then worst := d)
    dp.Datapath.activities;
  List.iter
    (fun (l : Datapath.load) ->
      let d =
        Component.register_delay_ns +. Component.mux_delay_ns
        +. Wire.depth_delay_ns l.Datapath.l_wire
      in
      if d > !worst then worst := d)
    dp.Datapath.loads;
  !worst

let estimate ?(style = Hls_ctrl.Encoding.Binary) ?ctrl (dp : Datapath.t) cs =
  let fu_area =
    List.fold_left
      (fun acc (f : Datapath.fu_def) ->
        acc + Component.area f.Datapath.comp ~width:f.Datapath.fwidth)
      0 dp.Datapath.fus
  in
  let reg_area =
    List.fold_left
      (fun acc (r : Datapath.reg_def) -> acc + Component.register_area ~width:r.Datapath.rwidth)
      0 dp.Datapath.regs
  in
  let mux_area = mux_area_of dp in
  let ctrl =
    match ctrl with
    | Some c -> c
    | None -> Hls_ctrl.Ctrl_synth.synthesize ~style dp.Datapath.fsm
  in
  let ctrl_area =
    (2 * Hls_ctrl.Ctrl_synth.literal_cost ctrl)
    + Component.register_area ~width:(Hls_ctrl.Ctrl_synth.n_state_bits ctrl)
  in
  let cycle_ns = cycle_time dp in
  let compute_steps = Hls_sched.Cfg_sched.compute_steps cs in
  {
    fu_area;
    reg_area;
    mux_area;
    ctrl_area;
    total_area = fu_area + reg_area + mux_area + ctrl_area;
    cycle_ns;
    compute_steps;
    latency_ns = cycle_ns *. float_of_int compute_steps;
  }

let pp ppf t =
  Format.fprintf ppf
    "area %d gates (FU %d, reg %d, mux %d, ctrl %d); cycle %.1f ns; %d steps; latency %.0f ns@."
    t.total_area t.fu_area t.reg_area t.mux_area t.ctrl_area t.cycle_ns t.compute_steps
    t.latency_ns

let to_row t =
  [
    string_of_int t.total_area;
    Printf.sprintf "%.1f" t.cycle_ns;
    string_of_int t.compute_steps;
    Printf.sprintf "%.0f" t.latency_ns;
  ]
