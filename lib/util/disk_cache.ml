(* Persistent content-addressed byte store — the disk layer under the
   DSE engine's in-memory tables (and anything else that wants cheap
   crash-safe memoization across process restarts).

   Each entry is one file named by the MD5 of its key:

     <dir>/<hex key digest>.hc

   laid out as  magic  |  16-byte MD5 of payload  |  payload.

   The cache is advisory storage, never a source of truth, so every
   failure mode reads as a miss and every write is best-effort:
   - a missing/unreadable file, a bad magic, a short header, or a
     payload whose digest does not match (truncation, bit rot, a
     concurrent writer's torn write) all return [None] from [load];
   - [store] writes to a unique temp file and renames it into place —
     readers never observe a half-written entry — and reports [false]
     instead of raising if the filesystem refuses.

   Integrity-before-decode matters because payloads are typically
   [Marshal] images: unmarshalling corrupt bytes is undefined behavior,
   so [load] only hands back byte-exact payloads. *)

let magic = "HLSC1\n"
let header_len = String.length magic + 16

let entry_path ~dir ~key =
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".hc")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception (Sys_error _ | End_of_file) -> None)

let load ~dir ~key =
  match read_file (entry_path ~dir ~key) with
  | None -> None
  | Some raw ->
      if
        String.length raw >= header_len
        && String.sub raw 0 (String.length magic) = magic
      then begin
        let digest = String.sub raw (String.length magic) 16 in
        let payload = String.sub raw header_len (String.length raw - header_len) in
        if Digest.string payload = digest then Some payload else None
      end
      else None

let tmp_counter = Atomic.make 0

let store ~dir ~key payload =
  try
    mkdir_p dir;
    let final = entry_path ~dir ~key in
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1))
    in
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_string oc (Digest.string payload);
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp final;
    true
  with Sys_error _ | Unix.Unix_error _ -> false

let entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".hc")
      |> List.sort compare
