(* Domain-based worker pool. Worker domains drain a Mutex/Condition-
   protected work queue; [map] slices a list into chunks so results
   always come back in input order no matter which worker ran them.

   Workers are spawned lazily: [create] spawns nothing, and [submit]
   only starts a new domain when every already-running worker is busy
   (the queue is backing up) and the pool is still under its worker
   cap. A process-wide shared pool sized to the machine
   ([recommended_domain_count () - 1] — the caller's domain is the
   remaining lane) backs [map] unless an explicit pool is passed, so
   repeated parallel regions stop paying per-region domain spawn and
   join. On a machine without spare cores the shared pool's cap is 0
   and every [map] degrades to the serial inline path — adaptive
   fallback rather than paying contention for no parallelism. *)

type t = {
  lock : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable spawned : unit Domain.t list;
  mutable n_spawned : int;
  mutable n_idle : int;  (** workers blocked on [work_ready] *)
  max_workers : int;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.closed do
    pool.n_idle <- pool.n_idle + 1;
    Condition.wait pool.work_ready pool.lock;
    pool.n_idle <- pool.n_idle - 1
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    Hls_obs.Trace.incr "pool/steals";
    task ();
    worker_loop pool
  end

let create ~workers:n =
  {
    lock = Mutex.create ();
    work_ready = Condition.create ();
    queue = Queue.create ();
    closed = false;
    spawned = [];
    n_spawned = 0;
    n_idle = 0;
    max_workers = max 0 n;
  }

let submit pool task =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  let depth = Queue.length pool.queue in
  (* lazy spin-up: only add a domain when nobody idle is going to pick
     this task up and the cap allows another worker *)
  let spawn = pool.n_idle = 0 && pool.n_spawned < pool.max_workers in
  if spawn then begin
    pool.n_spawned <- pool.n_spawned + 1;
    pool.spawned <- Domain.spawn (fun () -> worker_loop pool) :: pool.spawned
  end;
  Condition.signal pool.work_ready;
  Mutex.unlock pool.lock;
  if spawn then Hls_obs.Trace.incr "pool/domains_spawned";
  Hls_obs.Trace.incr "pool/submitted";
  Hls_obs.Trace.record_max "pool/queue_peak" depth

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.work_ready;
  (* with no worker ever spawned, nobody else can drain what is queued:
     run the remainder on the calling domain so "let queued tasks
     finish" holds for lazily-empty pools too *)
  let stranded =
    if pool.n_spawned = 0 then begin
      let ts = List.of_seq (Queue.to_seq pool.queue) in
      Queue.clear pool.queue;
      ts
    end
    else []
  in
  let workers = pool.spawned in
  pool.spawned <- [];
  Mutex.unlock pool.lock;
  List.iter (fun task -> task ()) stranded;
  List.iter Domain.join workers

(* ---- shared process-wide pool ---- *)

let shared =
  lazy
    (let p = create ~workers:(max 0 (Domain.recommended_domain_count () - 1)) in
     at_exit (fun () -> if not p.closed then shutdown p);
     p)

(* ---- futures ---- *)

(* A future is either a deferred thunk (no parallelism available: it
   runs on the calling domain at [await], preserving the exact
   observable order a serial driver would see) or a task submitted to
   a pool, in which case [await] helps drain that pool's queue while
   waiting so a caller blocked on one verdict still advances everyone
   else's work. *)
type 'a fstate =
  | F_deferred of (unit -> 'a)
  | F_pending
  | F_value of 'a
  | F_raised of exn

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a fstate;
  f_help : t option;  (** pool whose queue [await] drains while blocked *)
}

let async ?pool ?(jobs = 1) f =
  let pool' = pool in
  let fresh state help =
    {
      f_lock = Mutex.create ();
      f_cond = Condition.create ();
      f_state = state;
      f_help = help;
    }
  in
  let resolve p =
    let parallel = jobs > 1 && p.max_workers >= 1 && not p.closed in
    if not parallel then fresh (F_deferred f) None
    else begin
      let fut = fresh F_pending (Some p) in
      submit p (fun () ->
          let r = try F_value (f ()) with e -> F_raised e in
          Mutex.lock fut.f_lock;
          fut.f_state <- r;
          Condition.broadcast fut.f_cond;
          Mutex.unlock fut.f_lock);
      fut
    end
  in
  match pool' with
  | Some p -> resolve p
  | None ->
      if jobs <= 1 then fresh (F_deferred f) None
      else resolve (Lazy.force shared)

let await fut =
  let deferred =
    Mutex.lock fut.f_lock;
    let d = match fut.f_state with F_deferred g -> Some g | _ -> None in
    Mutex.unlock fut.f_lock;
    d
  in
  match deferred with
  | Some g -> (
      match (try Ok (g ()) with e -> Error e) with
      | Ok v ->
          fut.f_state <- F_value v;
          v
      | Error e ->
          fut.f_state <- F_raised e;
          raise e)
  | None ->
      let pool = match fut.f_help with Some p -> p | None -> assert false in
      let rec drive () =
        let settled =
          Mutex.lock fut.f_lock;
          let s =
            match fut.f_state with
            | F_value v -> Some (Ok v)
            | F_raised e -> Some (Error e)
            | _ -> None
          in
          Mutex.unlock fut.f_lock;
          s
        in
        match settled with
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None ->
            let task =
              Mutex.lock pool.lock;
              let t =
                if Queue.is_empty pool.queue then None
                else Some (Queue.pop pool.queue)
              in
              Mutex.unlock pool.lock;
              t
            in
            (match task with
            | Some t ->
                Hls_obs.Trace.incr "pool/caller_runs";
                t ()
            | None ->
                (* queue drained but our task is still running on some
                   domain: block until its completion broadcast *)
                Mutex.lock fut.f_lock;
                (match fut.f_state with
                | F_pending -> Condition.wait fut.f_cond fut.f_lock
                | _ -> ());
                Mutex.unlock fut.f_lock);
            drive ()
      in
      drive ()

(* [pool/workers_active] is a per-[map]-call watermark: how many
   distinct domains (workers and the caller alike) ran at least one
   chunk of that call. With a long-lived shared pool, worker identity
   alone can't express this — a region id handed to each chunk closure
   plus a per-domain "last region I counted myself in" slot can. *)
let region_ids = Atomic.make 0
let last_region : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let note_participant ~region participants =
  if Domain.DLS.get last_region <> region then begin
    Domain.DLS.set last_region region;
    Hls_obs.Trace.record_max "pool/workers_active"
      (1 + Atomic.fetch_and_add participants 1)
  end

(* Chunks never let exceptions escape into the worker loop: each item
   slot records either the result or the exception, re-raised at
   collection time in input order. *)
let map ?pool ?(jobs = 1) f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let pool = match pool with Some p -> p | None -> Lazy.force shared in
    (* the caller is a full participant (it helps drain), so available
       parallelism is the worker cap plus one *)
    let lanes = min jobs (pool.max_workers + 1) in
    (* a few chunks per lane for balance, but no chunk smaller than
       [min_chunk] items — per-task locking on tiny tasks is exactly
       the overhead chunking exists to amortize *)
    let min_chunk = 4 in
    let chunks = min (2 * lanes) ((n + min_chunk - 1) / min_chunk) in
    if lanes <= 1 || chunks <= 1 || pool.closed then begin
      (* adaptive serial fallback: jobs>1 on a machine (or pool) with no
         spare workers must never run slower than jobs=1 *)
      Hls_obs.Trace.incr "pool/serial_fallbacks";
      Hls_obs.Trace.record_max "pool/workers_active" 1;
      List.map f xs
    end
    else begin
      let items = Array.of_list xs in
      let results = Array.make n None in
      let local_lock = Mutex.create () in
      let all_done = Condition.create () in
      let remaining = ref chunks in
      let region = Atomic.fetch_and_add region_ids 1 in
      let participants = Atomic.make 0 in
      let run_chunk lo hi () =
        note_participant ~region participants;
        for i = lo to hi - 1 do
          results.(i) <- Some (try Ok (f items.(i)) with e -> Error e)
        done;
        Mutex.lock local_lock;
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock local_lock
      in
      for c = 0 to chunks - 1 do
        let lo = c * n / chunks and hi = (c + 1) * n / chunks in
        submit pool (run_chunk lo hi)
      done;
      (* caller helps drain: run queued chunks (ours or a concurrent
         region's) until this region's chunks have all settled *)
      let rec drive () =
        let task =
          Mutex.lock pool.lock;
          if Queue.is_empty pool.queue then begin
            Mutex.unlock pool.lock;
            None
          end
          else begin
            let t = Queue.pop pool.queue in
            Mutex.unlock pool.lock;
            Some t
          end
        in
        match task with
        | Some t ->
            Hls_obs.Trace.incr "pool/caller_runs";
            t ();
            drive ()
        | None ->
            Mutex.lock local_lock;
            let again = !remaining > 0 in
            if again then Condition.wait all_done local_lock;
            Mutex.unlock local_lock;
            if again then drive ()
      in
      drive ();
      (* collection in input order: the first raising item's original
         exception wins, exactly as the serial path would raise it.
         Every other chunk has already run to completion (the [remaining]
         barrier), so one poison item never strands sibling chunks or
         leaks queued work into later maps. A [None] slot is a pool
         invariant violation (a chunk signalled completion without
         publishing), not a user error — name the item and the chunking
         so the report is actionable. *)
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None ->
                 invalid_arg
                   (Printf.sprintf
                      "Pool.map: internal invariant broken — no result for item \
                       %d/%d (chunk %d of %d) despite completion barrier"
                      i n
                      ((((i + 1) * chunks) - 1) / n)
                      chunks))
           results)
    end
  end
