(* Domain-based worker pool. A fixed set of worker domains drains a
   Mutex/Condition-protected work queue; [map] slices a list into
   indexed tasks so results always come back in input order no matter
   which worker ran them. *)

type t = {
  lock : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  active : int Atomic.t;  (** workers of this pool that have run >= 1 task *)
}

let rec worker_loop pool counted =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.work_ready pool.lock
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    if not !counted then begin
      (* high watermark, not a sum: with one pool per parallel region it
         reads as "how many workers this region actually exercised" even
         when several pools come and go within one trace window *)
      counted := true;
      Hls_obs.Trace.record_max "pool/workers_active"
        (1 + Atomic.fetch_and_add pool.active 1)
    end;
    Hls_obs.Trace.incr "pool/steals";
    task ();
    worker_loop pool counted
  end

let create ~workers:n =
  let pool =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      active = Atomic.make 0;
    }
  in
  pool.workers <-
    List.init (max 1 n) (fun _ -> Domain.spawn (fun () -> worker_loop pool (ref false)));
  pool

let submit pool task =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  let depth = Queue.length pool.queue in
  Condition.signal pool.work_ready;
  Mutex.unlock pool.lock;
  Hls_obs.Trace.incr "pool/submitted";
  Hls_obs.Trace.record_max "pool/queue_peak" depth

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* Tasks never let exceptions escape into the worker loop: each slot
   records either the result or the exception, re-raised at collection
   time in input order. *)
let map ?(jobs = 1) f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n None in
    let lock = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let pool = create ~workers:(min jobs n) in
    Array.iteri
      (fun i x ->
        submit pool (fun () ->
            let r = try Ok (f x) with e -> Error e in
            results.(i) <- Some r;
            Mutex.lock lock;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock lock))
      items;
    Mutex.lock lock;
    while !remaining > 0 do
      Condition.wait all_done lock
    done;
    Mutex.unlock lock;
    shutdown pool;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> failwith "Pool.map: missing result")
  end
