(** Persistent content-addressed byte store: one integrity-checked file
    per key under a cache directory. This is the disk layer beneath the
    DSE engine's in-memory memo tables — what lets a warm daemon
    restart answer repeated requests without re-running the pipeline.

    The store is {e advisory}: every failure reads as a miss, never an
    exception. [load] returns the payload only when the entry's
    embedded digest matches, so truncated or garbage files — including
    torn concurrent writes — degrade to [None] rather than handing
    corrupt bytes to [Marshal]. [store] is atomic (temp file + rename)
    and returns [false] instead of raising when the filesystem
    refuses. *)

val store : dir:string -> key:string -> string -> bool
(** [store ~dir ~key payload] creates [dir] as needed and atomically
    writes the entry for [key]. [true] on success. *)

val load : dir:string -> key:string -> string option
(** The payload stored under [key], or [None] on any miss: absent or
    unreadable entry, bad magic, short header, or digest mismatch. *)

val entry_path : dir:string -> key:string -> string
(** Path the entry for [key] lives at ([<dir>/<md5(key)>.hc]) —
    exposed so tests can corrupt or truncate entries deliberately. *)

val entries : dir:string -> string list
(** Basenames of all cache entries in [dir], sorted; [[]] if the
    directory is missing. *)
