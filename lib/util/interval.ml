type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let contains a x = a.lo <= x && x <= a.hi

let merge a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let length a = a.hi - a.lo + 1

let compare_lo a b =
  let c = compare a.lo b.lo in
  if c <> 0 then c else compare a.hi b.hi

(* Sweep: +1 at lo, -1 just past hi. *)
let max_overlap ivs =
  let events =
    List.concat_map (fun iv -> [ (iv.lo, 1); (iv.hi + 1, -1) ]) ivs
    |> List.sort compare
  in
  let _, best =
    List.fold_left
      (fun (cur, best) (_, d) ->
        let cur = cur + d in
        (cur, max best cur))
      (0, 0) events
  in
  best

let pp ppf a = Format.fprintf ppf "[%d,%d]" a.lo a.hi

(* ---- value-range arithmetic (used by Hls_analysis.Range) ---- *)

let of_width w =
  if w < 1 || w > 62 then invalid_arg "Interval.of_width: width out of 1..62";
  { lo = -(1 lsl (w - 1)); hi = (1 lsl (w - 1)) - 1 }

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }

let neg a = { lo = -a.hi; hi = -a.lo }

let mul a b =
  let p1 = a.lo * b.lo and p2 = a.lo * b.hi and p3 = a.hi * b.lo and p4 = a.hi * b.hi in
  { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

let widen ~bound prev next =
  {
    lo = (if next.lo < prev.lo then min next.lo bound.lo else prev.lo);
    hi = (if next.hi > prev.hi then max next.hi bound.hi else prev.hi);
  }
