(** Closed integer intervals, used for value lifetimes [birth, death].

    An interval [{ lo; hi }] with [lo <= hi] represents the control steps
    during which a value must be kept in storage. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]. Raises [Invalid_argument] if [lo > hi]. *)

val overlaps : t -> t -> bool
(** Whether the two closed intervals share at least one point. *)

val contains : t -> int -> bool

val merge : t -> t -> t
(** Smallest interval covering both. *)

val length : t -> int
(** Number of integer points, [hi - lo + 1]. *)

val compare_lo : t -> t -> int
(** Order by left endpoint, then right endpoint — the left-edge order. *)

val max_overlap : t list -> int
(** Maximum number of intervals simultaneously alive at any point — the
    lower bound (and left-edge-achieved optimum) on register count. Returns
    0 for the empty list. *)

val pp : Format.formatter -> t -> unit

(** {2 Value-range arithmetic}

    The lifetime API above treats intervals as step spans; the operations
    below treat them as sets of runtime values, for the abstract
    interpretation in [Hls_analysis.Range]. Callers are responsible for
    keeping endpoint magnitudes small enough that native [int] arithmetic
    cannot overflow (the range engine guards operand bit counts). *)

val of_width : int -> t
(** [of_width w] is the full range of a signed [w]-bit value,
    [[-2{^w-1}, 2{^w-1} - 1]]. Raises [Invalid_argument] unless
    [1 <= w <= 62]. *)

val intersect : t -> t -> t option
(** Set intersection; [None] when the intervals are disjoint. *)

val add : t -> t -> t
(** Exact interval sum: [[a.lo + b.lo, a.hi + b.hi]]. *)

val neg : t -> t
(** Exact negation: [[-a.hi, -a.lo]]. *)

val mul : t -> t -> t
(** Exact product hull: min/max over the four endpoint products. *)

val widen : bound:t -> t -> t -> t
(** [widen ~bound prev next] keeps every stable endpoint of [prev] and
    jumps any endpoint that moved in [next] straight to [bound] (or past
    it, if [next] already escaped [bound]) — the classic interval widening
    that forces loop fixpoints to terminate. *)
