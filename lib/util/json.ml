(* Minimal JSON: enough to emit and re-read the benchmark reports
   (BENCH_dse.json) without an external dependency. Numbers are floats,
   objects keep insertion order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write b indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num f -> Buffer.add_string b (num_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          write b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b (indent + 2) x)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ---- parsing (recursive descent) ---- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "bad unicode escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* BMP-only; good enough for our ASCII reports *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elems [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_str = function Str s -> Some s | _ -> None

let of_int n = Num (float_of_int n)

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let str_member key v = Option.bind (member key v) to_str
let int_member key v = Option.bind (member key v) to_int
let bool_member key v = Option.bind (member key v) to_bool
