(** Domain-based worker pool (OCaml 5 [Domain] with a [Mutex]/[Condition]
    work queue), used to evaluate independent synthesis jobs — e.g. the
    points of a design-space sweep — concurrently.

    Workers are spawned {e lazily}: creating a pool starts no domain,
    and {!submit} only spins one up when the queue is backing up (no
    worker is idle) and the pool is under its cap. {!map} runs on a
    process-wide shared pool sized to the machine
    ([Domain.recommended_domain_count () - 1] workers — the calling
    domain is the remaining lane and helps drain the queue), submits
    {e chunks} of items rather than one locked task per item, and
    falls back to the plain inline [List.map] whenever the machine,
    the chunk count, or the job count leaves no parallelism to
    exploit — so [jobs > 1] is never slower than [jobs = 1].

    The scheduling order of tasks across workers is nondeterministic,
    but {!map} always collects results in input order, so a parallel
    sweep returns exactly the list a serial one would.

    The pool reports execution-topology counters into
    {!Hls_obs.Trace}: [pool/submitted] (tasks enqueued),
    [pool/steals] (tasks dequeued by a worker domain),
    [pool/caller_runs] (tasks the calling domain drained itself),
    [pool/domains_spawned] (lazy worker spin-ups),
    [pool/serial_fallbacks] ({!map} calls that degraded to inline),
    [pool/queue_peak] (deepest the queue ever got) and
    [pool/workers_active] (high watermark of distinct domains — workers
    or caller — that ran at least one chunk of a single {!map} call:
    the {e true} parallelism achieved, as opposed to the worker count
    requested). These describe how the work was run, not what was
    computed, so — unlike every other counter namespace — they
    legitimately differ between machines and job counts. *)

type t

val create : workers:int -> t
(** A pool capped at [workers] domains. No domain is spawned yet —
    workers appear one at a time as {!submit} finds the queue backed
    up. [workers = 0] is allowed: such a pool never spawns and
    {!shutdown} (or {!map}'s fallback) runs everything on the calling
    domain. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task, spinning up a worker first if none is idle and the
    cap allows. Tasks must not raise — wrap fallible work yourself (as
    {!map} does). Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Close the queue, let queued tasks finish, and join all workers. If
    no worker was ever spawned, queued tasks are run on the calling
    domain. *)

type 'a future
(** A single in-flight computation: either a task running on the pool
    or a deferred thunk that will run on the calling domain at
    {!await} when no parallelism is available. *)

val async : ?pool:t -> ?jobs:int -> (unit -> 'a) -> 'a future
(** [async ~jobs f] starts [f] on the shared pool (or [pool] if
    given). With [jobs <= 1], a zero-worker pool, or a closed pool the
    computation is {e deferred}: it runs on the calling domain inside
    {!await}. Either way the caller observes the result exactly at its
    {!await} call, so a driver that interleaves [async]/[await] makes
    the same decisions at any job count — in-flight pipelining without
    scheduling nondeterminism. *)

val await : 'a future -> 'a
(** Block until the future settles, re-raising its exception if it
    raised. While blocked on a pooled future the caller helps drain
    that pool's queue ([pool/caller_runs]), so awaiting one verdict
    still advances all other queued work. Awaiting a settled or
    deferred future is cheap and idempotent from a single domain;
    futures are not meant to be awaited from several domains at
    once. *)

val map : ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated in chunks on the
    shared pool (or [pool] if given — tests use this to exercise the
    chunked path regardless of the machine), results in input order.
    Parallelism is [min jobs (workers + 1)]: the caller participates.
    With [jobs <= 1], a single chunk (fewer than ~8 items), or no
    spare worker, no domain is spawned and the map runs inline — the
    adaptive serial fallback. If any application raises, the first
    exception in input order is re-raised after all chunks settle. *)
