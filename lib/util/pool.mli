(** Domain-based worker pool (OCaml 5 [Domain] with a [Mutex]/[Condition]
    work queue), used to evaluate independent synthesis jobs — e.g. the
    points of a design-space sweep — concurrently.

    The scheduling order of tasks across workers is nondeterministic,
    but {!map} always collects results in input order, so a parallel
    sweep returns exactly the list a serial one would.

    The pool reports execution-topology counters into
    {!Hls_obs.Trace}: [pool/submitted] (tasks enqueued),
    [pool/steals] (tasks dequeued by a worker domain),
    [pool/queue_peak] (deepest the queue ever got) and
    [pool/workers_active] (high watermark of workers in one pool that
    ran at least one task — the {e true} parallelism achieved, as
    opposed to the worker count requested). These describe how
    the work was run, not what was computed, so — unlike every other
    counter namespace — they legitimately differ between job counts
    ({!map} with [jobs <= 1] never touches a queue at all). *)

type t

val create : workers:int -> t
(** Spawn a pool of [workers] domains (at least one) blocked on an
    empty work queue. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. Tasks must not raise — wrap fallible work yourself
    (as {!map} does). Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Close the queue, let queued tasks finish, and join all workers. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated by a temporary pool of
    [jobs] workers, results in input order. With [jobs <= 1] (the
    default) no domain is spawned and the map runs inline. If any
    application raises, the first exception in input order is re-raised
    after all tasks settle. *)
