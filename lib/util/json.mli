(** Minimal JSON values — emit and parse, no external dependency.
    Used for the machine-readable benchmark reports ([BENCH_dse.json]).

    All numbers are [float]s; object fields keep insertion order;
    [to_string] pretty-prints with two-space indentation and a trailing
    newline. The parser accepts exactly one value with optional
    surrounding whitespace. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val parse : string -> (t, string) result
(** [Error msg] carries the byte offset of the failure. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_list : t -> t list option
val to_str : t -> string option

val of_int : int -> t
(** [Num] of the exact integer value. *)

val to_int : t -> int option
(** [Some n] only for integral numbers within exact-float range. *)

val str_member : string -> t -> string option
val int_member : string -> t -> int option
val bool_member : string -> t -> bool option
(** Typed field lookups — [member] composed with the coercions; used by
    the serve protocol decoder. *)
