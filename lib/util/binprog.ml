type var = int

type constraint_ =
  | At_most of int * var list
  | Implies of var * var
  | Forbid of var * var

type t = {
  mutable names : string list;  (* reversed *)
  mutable count : int;
  mutable groups : var list list;  (* reversed order of addition *)
  mutable constraints : constraint_ list;
}

let create () = { names = []; count = 0; groups = []; constraints = [] }

let new_var t name =
  let v = t.count in
  t.count <- t.count + 1;
  t.names <- name :: t.names;
  v

let n_vars t = t.count

let add_group t vars =
  if vars = [] then invalid_arg "Binprog.add_group: empty group";
  t.groups <- vars :: t.groups

let at_most t k vars = t.constraints <- At_most (k, vars) :: t.constraints

let implies t a b = t.constraints <- Implies (a, b) :: t.constraints

let forbid_pair t a b = t.constraints <- Forbid (a, b) :: t.constraints

(* assignment: 0 = false, 1 = true, -1 = undecided.

   Consistency of the current partial assignment is tracked
   incrementally: every constraint has a "violated" bit (At_most
   additionally a running count of its true variables), a global
   counter holds the number of violated constraints, and assignments
   go through [assign_var] which touches only the constraints the
   changed variable occurs in. A constraint is violated exactly when
     At_most (k, vars): #(v in vars with assign v = 1) > k
     Implies (a, b):    assign a = 1 && assign b = 0
     Forbid (a, b):     assign a = 1 && assign b = 1
   — the same predicates a full rescan would evaluate, so the search
   explores the identical tree and returns the identical assignment,
   just without re-walking the whole constraint list at every node. *)
let solve ?(objective = []) t =
  let groups = List.rev t.groups in
  (* variables not in any group are independent binary decisions *)
  let grouped = Hashtbl.create 16 in
  List.iter (fun g -> List.iter (fun v -> Hashtbl.replace grouped v ()) g) groups;
  let free =
    List.filter
      (fun v -> not (Hashtbl.mem grouped v))
      (List.init t.count Fun.id)
  in
  let decision_sets = groups @ List.map (fun v -> [ v ]) free in
  let free_set = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace free_set v ()) free;
  let nvars = max 1 t.count in
  let weight = Array.make nvars 0 in
  List.iter (fun (v, w) -> weight.(v) <- weight.(v) + w) objective;
  let assign = Array.make nvars (-1) in
  let constraints = Array.of_list t.constraints in
  let nc = Array.length constraints in
  let am_true = Array.make nc 0 in
  let violated = Array.make nc false in
  let n_violated = ref 0 in
  let set_viol ci b =
    if violated.(ci) <> b then begin
      violated.(ci) <- b;
      n_violated := !n_violated + (if b then 1 else -1)
    end
  in
  (* occurrence lists: one entry per textual occurrence, so an At_most
     row listing a variable twice counts it twice, as a rescan would *)
  let occ = Array.make nvars [] in
  Array.iteri
    (fun ci c ->
      match c with
      | At_most (k, vars) ->
          List.iter (fun v -> occ.(v) <- ci :: occ.(v)) vars;
          if k < 0 then set_viol ci true
      | Implies (a, b) ->
          occ.(a) <- ci :: occ.(a);
          if b <> a then occ.(b) <- ci :: occ.(b)
      | Forbid (a, b) ->
          occ.(a) <- ci :: occ.(a);
          if b <> a then occ.(b) <- ci :: occ.(b))
    constraints;
  let assign_var v x =
    let old = assign.(v) in
    if old <> x then begin
      assign.(v) <- x;
      List.iter
        (fun ci ->
          match constraints.(ci) with
          | At_most (k, _) ->
              if old = 1 then am_true.(ci) <- am_true.(ci) - 1;
              if x = 1 then am_true.(ci) <- am_true.(ci) + 1;
              set_viol ci (am_true.(ci) > k)
          | Implies (a, b) -> set_viol ci (assign.(a) = 1 && assign.(b) = 0)
          | Forbid (a, b) -> set_viol ci (assign.(a) = 1 && assign.(b) = 1))
        occ.(v)
    end
  in
  let best = ref None in
  let best_cost = ref max_int in
  let nodes = ref 0 in
  let budget = 10_000_000 in
  let rec search sets cost =
    incr nodes;
    if !nodes > budget then invalid_arg "Binprog.solve: search budget exceeded";
    if cost >= !best_cost then ()
    else
      match sets with
      | [] ->
          if !n_violated = 0 then begin
            best_cost := cost;
            best := Some (Array.copy assign)
          end
      | set :: rest ->
          let choices =
            (* a group picks exactly one member; a free variable may also
               be left at 0 *)
            if List.length set = 1 && Hashtbl.mem free_set (List.hd set) then
              [ None; Some (List.hd set) ]
            else List.map (fun v -> Some v) set
          in
          List.iter
            (fun choice ->
              List.iter (fun v -> assign_var v 0) set;
              (match choice with Some v -> assign_var v 1 | None -> ());
              if !n_violated = 0 then begin
                let added =
                  match choice with Some v -> weight.(v) | None -> 0
                in
                search rest (cost + added)
              end)
            choices;
          List.iter (fun v -> assign_var v (-1)) set
  in
  search decision_sets 0;
  match !best with
  | Some a -> Some (fun v -> a.(v) = 1)
  | None -> None
