(* Exception-safe mutual exclusion. A critical section written as

     Mutex.lock m; ...; Mutex.unlock m

   leaves [m] held forever if the body raises — harmless in a dying
   one-shot process, a deadlock in a long-lived server. Every guarded
   section in the toolkit goes through [with_lock] instead, which
   releases on all exits (normal return, exceptions, and asynchronous
   exceptions via [Fun.protect]). *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
