(** Exception-safe mutual exclusion, used by every mutex-guarded
    critical section in the toolkit. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f ()] with [m] held and releases [m] on every
    exit path — normal return or raise — so an exception inside a
    critical section can never wedge the next acquirer. Not reentrant:
    nesting [with_lock] on the same mutex deadlocks, like [Mutex.lock]
    itself. *)
