(** Structured event tracing and metrics for the synthesis pipeline.

    One global, mutex-guarded sink with three kinds of state, designed
    to be written from any domain (the calling domain and
    [Hls_util.Pool] workers alike):

    - {e duration accumulators} — per-stage wall-clock totals and call
      counts, always on; [Hls_core.Timing] is a thin view over these,
      so the classic per-stage breakdown keeps working unchanged;
    - {e counters} — named monotonic integers, always on. Names are
      namespaced by subsystem ([dse/backend.hits], [sched/ops_scheduled],
      [alloc/clique_merges], [ctrl/qm_iterations], [pool/steals], ...).
      Counters under [pool/] describe execution topology (queue depths,
      steals) and legitimately differ between [--jobs] settings; every
      other counter is a deterministic function of the work done, and —
      because the DSE cache is single-flight — of the option points
      evaluated, independent of worker count;
    - {e the span ring} — completed spans with attributes, a parent
      link and the owning domain id, captured only between {!enable}
      and {!disable}. Fixed capacity, oldest-first overwrite, with
      {!dropped} reporting lost history. This is what the Chrome
      [trace_event] export ([Hls_core.Metrics]) renders.

    Span nesting is tracked with a domain-local stack, so concurrent
    workers never see each other's parents. *)

type span = {
  sp_name : string;
  sp_args : (string * string) list;  (** stage/workload/option-point attributes *)
  sp_parent : string option;  (** innermost enclosing span on the same domain *)
  sp_domain : int;  (** [Domain.self] of the recording domain *)
  sp_start : float;  (** seconds since the trace epoch *)
  sp_dur : float;  (** wall-clock duration in seconds *)
}

(** {2 Spans} *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk as a named span: its duration is always added to the
    stage accumulators (also on exception), and while {!enabled} the
    completed span is pushed onto the ring. *)

val enable : ?capacity:int -> unit -> unit
(** Start capturing spans into a ring of [capacity] (default 8192)
    events. Re-enabling with a different capacity reallocates the ring. *)

val disable : unit -> unit
val enabled : unit -> bool

val spans : unit -> span list
(** Retained spans, oldest first (completion order). *)

val dropped : unit -> int
(** Spans overwritten since the last {!reset}. *)

val current_parent : unit -> string option
(** Name of the innermost open span on the calling domain, if any. *)

val trace_epoch : unit -> float
(** Absolute time ([Unix.gettimeofday]) that span [sp_start] offsets
    are relative to; re-armed by {!reset}. *)

(** {2 Counters} *)

val incr : string -> unit
val add : string -> int -> unit

val record_max : string -> int -> unit
(** High-watermark counter: keep the maximum of the recorded values. *)

val counter : string -> int
(** Current value; 0 for a counter never touched. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Ids} *)

val fresh_id : unit -> int
(** Process-unique monotonically increasing id (atomic, never reset) —
    what the serve daemon stamps each request's trace span with. *)

(** {2 Durations (the Timing view)} *)

val record_duration : string -> float -> unit
(** Add raw seconds to a stage accumulator without a span. *)

val durations_snapshot : unit -> (string * float * int) list
(** [(stage, total seconds, calls)] in first-recorded order. *)

val reset_durations : unit -> unit
(** Clear only the duration accumulators (what [Timing.reset] does). *)

val reset : unit -> unit
(** Clear everything — durations, counters, the span ring — and re-arm
    the trace epoch. Capture stays enabled/disabled as it was. *)
