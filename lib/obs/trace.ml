(* Structured tracing and metrics for the synthesis pipeline.

   Three kinds of state, all global and guarded by one mutex so worker
   domains report into a single view:

   - duration accumulators: per-stage wall-clock totals, always on —
     Hls_core.Timing is a thin view over these;
   - counters: named monotonic integers (cache hits, ops scheduled,
     clique merges, ...), always on — a counter bump is a mutex
     acquire and a hashtable update, cheap against the work it counts;
   - the span ring: completed spans with attributes, parent links and
     the owning domain, captured only while [enabled] — this is what
     the Chrome trace_event export renders.

   The ring has fixed capacity and overwrites oldest-first; overwrites
   are counted so an export can say how much history it lost. Span
   nesting is tracked per domain (domain-local stacks), so spans from
   concurrent Pool workers never corrupt each other's parent links.

   Every critical section goes through Sync.with_lock: the sink is
   shared by long-lived servers, where a raise while holding the lock
   (a failed allocation, an assert in a snapshot) must not wedge every
   future counter bump. *)

type span = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_parent : string option;  (** innermost enclosing span on the same domain *)
  sp_domain : int;
  sp_start : float;  (** seconds since the trace epoch *)
  sp_dur : float;
}

let lock = Mutex.create ()
let locked f = Sync.with_lock lock f

(* ---- always-on stage duration accumulators (the Timing view) ---- *)

let durations : (string, float * int) Hashtbl.t = Hashtbl.create 16
let duration_order : string list ref = ref []

let record_duration_locked stage seconds =
  match Hashtbl.find_opt durations stage with
  | Some (s, c) -> Hashtbl.replace durations stage (s +. seconds, c + 1)
  | None ->
      Hashtbl.add durations stage (seconds, 1);
      duration_order := stage :: !duration_order

let record_duration stage seconds =
  locked (fun () -> record_duration_locked stage seconds)

let reset_durations () =
  locked (fun () ->
      Hashtbl.reset durations;
      duration_order := [])

let durations_snapshot () =
  locked (fun () ->
      List.rev_map
        (fun stage ->
          let seconds, calls = Hashtbl.find durations stage in
          (stage, seconds, calls))
        !duration_order)

(* ---- counters ---- *)

let counters_tbl : (string, int) Hashtbl.t = Hashtbl.create 32

let add name v =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> Hashtbl.replace counters_tbl name (c + v)
      | None -> Hashtbl.add counters_tbl name v)

let incr name = add name 1

let record_max name v =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> if v > c then Hashtbl.replace counters_tbl name v
      | None -> Hashtbl.add counters_tbl name v)

let counter name =
  locked (fun () -> Option.value (Hashtbl.find_opt counters_tbl name) ~default:0)

let counters () =
  let l = locked (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters_tbl []) in
  List.sort compare l

(* ---- ids ---- *)

let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1

(* ---- span ring ---- *)

let enabled_flag = ref false
let default_capacity = 8192
let ring : span option array ref = ref (Array.make default_capacity None)
let ring_next = ref 0 (* total spans ever pushed; write slot is [!ring_next mod cap] *)
let epoch = ref (Unix.gettimeofday ())

let enable ?(capacity = default_capacity) () =
  locked (fun () ->
      if capacity < 1 then invalid_arg "Trace.enable: capacity must be positive";
      if Array.length !ring <> capacity then ring := Array.make capacity None;
      enabled_flag := true)

let disable () = locked (fun () -> enabled_flag := false)
let enabled () = !enabled_flag

let reset () =
  locked (fun () ->
      Hashtbl.reset durations;
      duration_order := [];
      Hashtbl.reset counters_tbl;
      Array.fill !ring 0 (Array.length !ring) None;
      ring_next := 0;
      epoch := Unix.gettimeofday ())

let trace_epoch () = !epoch

let dropped () = locked (fun () -> max 0 (!ring_next - Array.length !ring))

let spans () =
  locked (fun () ->
      let cap = Array.length !ring in
      let n = min !ring_next cap in
      let first = if !ring_next <= cap then 0 else !ring_next mod cap in
      List.init n (fun i ->
          match !ring.((first + i) mod cap) with
          | Some s -> s
          | None -> assert false))

(* ---- span capture ---- *)

(* the stack of open span names on the current domain, innermost first *)
let span_stack : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let current_parent () =
  match Domain.DLS.get span_stack with [] -> None | p :: _ -> Some p

let with_span ?(args = []) name f =
  let outer = Domain.DLS.get span_stack in
  let parent = match outer with [] -> None | p :: _ -> Some p in
  Domain.DLS.set span_stack (name :: outer);
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Unix.gettimeofday () in
      Domain.DLS.set span_stack outer;
      locked (fun () ->
          record_duration_locked name (t1 -. t0);
          if !enabled_flag then begin
            let s =
              {
                sp_name = name;
                sp_args = args;
                sp_parent = parent;
                sp_domain = (Domain.self () :> int);
                sp_start = t0 -. !epoch;
                sp_dur = t1 -. t0;
              }
            in
            let cap = Array.length !ring in
            !ring.(!ring_next mod cap) <- Some s;
            Stdlib.incr ring_next
          end))
    f
