open Hls_util
open Hls_cdfg

(* Cost-guided extraction: bounded e-graph-lite over the candidate
   rules. Per block, every extraction rule's right-hand side is
   materialized NEXT TO the original node (the alternative's cone is
   built first so the original copy can still reference nothing newer
   than itself — node ids stay topological), then a small 0/1 program
   over Binprog picks one member per choice group minimizing an
   area/latency cost, and the block is rebuilt keeping only the live
   side of each choice.

   The cost model mirrors how the backend actually pays: functional
   units are shared, so replacing one multiply by shift/add chains only
   saves area if it removes the LAST multiply from the block. That is
   expressed with per-class indicator variables y_c — created only for
   classes not already required by unconditional nodes — such that
   selecting a cone containing a step-occupying node of class c forces
   y_c, whose objective weight is the class's cheapest-component area at
   the widest optional operand. Per-step weights (10 per step-occupying
   cone node for area, class delay/100 for latency) plus a +1 alternative
   tie-break make the original win whenever no class disappears. *)

type objective = [ `Area | `Latency ]

let objective_to_string = function `Area -> "area" | `Latency -> "latency"

let objective_of_string = function
  | "area" -> Some `Area
  | "latency" -> Some `Latency
  | _ -> None

type cost = {
  class_area : Op.fu_class -> width:int -> int;
  class_delay_ps : Op.fu_class -> int;
}

(* Stand-in numbers of the same flavor as the RTL component library;
   Flow injects the real library-derived figures. *)
let default_cost =
  {
    class_area =
      (fun c ~width ->
        match c with
        | Op.C_alu -> 24 + (4 * width)
        | Op.C_mul -> 120 + (24 * width)
        | Op.C_div -> 160 + (30 * width)
        | Op.C_shift -> 16 + (3 * width)
        | Op.C_free | Op.C_none -> 0);
    class_delay_ps =
      (fun c ->
        match c with
        | Op.C_alu -> 10_000
        | Op.C_mul -> 40_000
        | Op.C_div -> 60_000
        | Op.C_shift -> 8_000
        | Op.C_free | Op.C_none -> 0);
  }

let width_of ty = Fixedpt.bits (Rules.fmt_of_ty ty)

let run ?(nonneg = Rules.no_facts) ?(cost = default_cost) ~objective
    ?(rules = Rules.extraction_rules) cfg =
  let oracle = lazy (nonneg cfg) in
  let changed = ref false in
  List.iter
    (fun bid ->
      let src = Cfg.dfg cfg bid in
      let env = { Rules.nonneg = (fun nid -> (Lazy.force oracle) bid nid) } in
      let fns = List.map (fun r -> r.Rules.make src env) rules in
      (* Saturation: run each candidate rule per node, recording the
         freshly built cone as a half-open window [lo, hi) with its
         root, then keep the original too. *)
      let pending : (Dfg.nid, (int * int * Dfg.nid) list) Hashtbl.t = Hashtbl.create 8 in
      let sat, sat_remap =
        Rewrite.rewrite_dfg src ~rule:(fun ~out ~remap id node ~mapped_args ->
            let v = { Rules.out; remap; id; node; mapped_args } in
            let alts =
              List.filter_map
                (fun f ->
                  let lo = Dfg.n_nodes out in
                  match f v with
                  | Some (Rewrite.Subst root) -> Some (lo, Dfg.n_nodes out, root)
                  | Some _ | None -> None)
                fns
            in
            if alts <> [] then Hashtbl.replace pending id alts;
            Rewrite.Copy)
      in
      if Hashtbl.length pending > 0 then begin
        let groups =
          Hashtbl.fold (fun old_id alts acc -> (sat_remap.(old_id), alts) :: acc) pending []
        in
        let optional = Hashtbl.create 32 in
        List.iter
          (fun (copy, alts) ->
            Hashtbl.replace optional copy ();
            List.iter
              (fun (lo, hi, _) ->
                for n = lo to hi - 1 do
                  Hashtbl.replace optional n ()
                done)
              alts)
          groups;
        (* classes the block needs regardless of any choice *)
        let always = Hashtbl.create 8 in
        Dfg.iter
          (fun nid _ ->
            if (not (Hashtbl.mem optional nid)) && Dfg.occupies_step sat nid then
              Hashtbl.replace always (Dfg.fu_class_of sat nid) ())
          sat;
        let bp = Binprog.create () in
        let step_cost nid =
          if not (Dfg.occupies_step sat nid) then 0
          else
            match objective with
            | `Area -> 10
            | `Latency -> cost.class_delay_ps (Dfg.fu_class_of sat nid) / 100
        in
        let yvars : (Op.fu_class, Binprog.var) Hashtbl.t = Hashtbl.create 4 in
        let ywidth : (Op.fu_class, int) Hashtbl.t = Hashtbl.create 4 in
        let yvar c =
          match Hashtbl.find_opt yvars c with
          | Some v -> v
          | None ->
              let v = Binprog.new_var bp ("fu:" ^ Op.fu_class_to_string c) in
              Hashtbl.add yvars c v;
              v
        in
        let obj = ref [] in
        let add_sel_costs var cone_ids ~tie =
          let w = List.fold_left (fun acc nid -> acc + step_cost nid) tie cone_ids in
          if w > 0 then obj := (var, w) :: !obj;
          List.iter
            (fun nid ->
              if Dfg.occupies_step sat nid then begin
                let c = Dfg.fu_class_of sat nid in
                if not (Hashtbl.mem always c) then begin
                  Binprog.implies bp var (yvar c);
                  let w0 = Option.value (Hashtbl.find_opt ywidth c) ~default:0 in
                  Hashtbl.replace ywidth c (max w0 (width_of (Dfg.ty sat nid)))
                end
              end)
            cone_ids
        in
        let selections =
          List.map
            (fun (copy, alts) ->
              let x_orig = Binprog.new_var bp (Printf.sprintf "orig:%d" copy) in
              let x_alts =
                List.map
                  (fun (lo, hi, root) ->
                    (Binprog.new_var bp (Printf.sprintf "alt:%d" root), lo, hi, root))
                  alts
              in
              Binprog.add_group bp (x_orig :: List.map (fun (v, _, _, _) -> v) x_alts);
              add_sel_costs x_orig [ copy ] ~tie:0;
              List.iter
                (fun (v, lo, hi, _) ->
                  add_sel_costs v (List.init (hi - lo) (fun i -> lo + i)) ~tie:1)
                x_alts;
              (copy, x_orig, x_alts))
            groups
        in
        (match objective with
        | `Area ->
            Hashtbl.iter
              (fun c y ->
                obj := (y, cost.class_area c ~width:(Hashtbl.find ywidth c)) :: !obj)
              yvars
        | `Latency -> ());
        match (try Binprog.solve ~objective:!obj bp with Invalid_argument _ -> None) with
        | None -> () (* infeasible/over budget: keep the original block *)
        | Some sol ->
            let redirect = Hashtbl.create 8 in
            List.iter
              (fun (copy, x_orig, x_alts) ->
                if not (sol x_orig) then
                  match List.find_opt (fun (v, _, _, _) -> sol v) x_alts with
                  | Some (_, _, _, root) -> Hashtbl.replace redirect copy root
                  | None -> ())
              selections;
            if Hashtbl.length redirect > 0 then begin
              let follow id = Option.value (Hashtbl.find_opt redirect id) ~default:id in
              let n = Dfg.n_nodes sat in
              let live = Array.make n false in
              let rec mark id =
                let id = follow id in
                if not live.(id) then begin
                  live.(id) <- true;
                  List.iter mark (Dfg.args sat id)
                end
              in
              Dfg.iter
                (fun nid node ->
                  match node.Dfg.op with Op.Write _ -> mark nid | _ -> ())
                sat;
              let term = Cfg.term cfg bid in
              (match term with
              | Cfg.Branch (c, _, _) -> mark sat_remap.(c)
              | Cfg.Goto _ | Cfg.Halt -> ());
              let final = Dfg.create () in
              let fmap = Array.make n (-1) in
              for id = 0 to n - 1 do
                if live.(id) then begin
                  let node = Dfg.node sat id in
                  fmap.(id) <-
                    Dfg.add final node.Dfg.op
                      (List.map (fun a -> fmap.(follow a)) node.Dfg.args)
                      node.Dfg.ty
                end
              done;
              let term' =
                match term with
                | Cfg.Branch (c, bt, bf) -> Cfg.Branch (fmap.(follow sat_remap.(c)), bt, bf)
                | t -> t
              in
              Cfg.replace_dfg cfg bid final term';
              changed := true
            end
      end)
    (Cfg.block_ids cfg);
  !changed
