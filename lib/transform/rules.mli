(** Declarative DFG rewrite rules.

    Each rule packages a pattern + guard + builder over
    {!Rewrite.rewrite_dfg}: the [make] closure receives the source graph
    (for precomputation such as use counts or sharing tables) and a fact
    environment, and returns a matcher that inspects one node of the
    rewrite in flight and either declines ([None]) or produces a
    {!Rewrite.decision}. Rules compose first-match-wins in
    {!run_rules}, and a subset serves as candidate generators for
    cost-guided extraction ({!Extract}). *)

open Hls_cdfg

(** Facts a guard may consult about {e source-graph} node ids. *)
type env = { nonneg : Dfg.nid -> bool }

val no_facts : Cfg.t -> Cfg.bid -> Dfg.nid -> bool
(** The empty fact oracle: proves nothing, so guarded rules never fire. *)

(** One node of the rewrite in flight, as seen by a matcher: the new
    graph under construction, the remap table, and the current source
    node with its arguments already remapped. *)
type view = {
  out : Dfg.t;
  remap : int array;
  id : Dfg.nid;
  node : Dfg.node;
  mapped_args : Dfg.nid list;
}

type t = {
  name : string;
  descr : string;
  group : string;
  make : Dfg.t -> env -> (view -> Rewrite.decision option);
}

(** {1 The catalogue} *)

val mul_pow2_shift : t
val add_one_incr : t
val sub_one_decr : t
val cmp_zero_zdetect : t
val mul_const_chain : t
val div_pow2_shift : t
val add_rebalance : t
val cse_node : t

val all : t list
val groups : string list
val group : string -> t list
(** Rules belonging to one named group ("strength", "algebraic",
    "balance", "share"). *)

val extraction_rules : t list
(** Candidate generators for {!Extract.run}: rules whose right-hand
    sides trade operator classes (multiply/divide vs shift/ALU) and so
    deserve a cost model rather than unconditional application. *)

(** {1 Application} *)

val run_rules : ?nonneg:(Cfg.t -> Cfg.bid -> Dfg.nid -> bool) -> t list -> Cfg.t -> bool
(** Rewrite every block, applying the rules first-match-wins per node;
    unmatched nodes are copied. Returns whether anything changed. The
    fact oracle (default {!no_facts}) is forced lazily — consulted only
    when a guarded rule actually examines a node. *)

val cse_global : Cfg.t -> bool
(** Cross-block common-subexpression sharing: in a block whose unique
    predecessor computed and committed the same expression over
    variables it did not overwrite, the recomputation is replaced by a
    read of the committed variable. Sound because block writes commit at
    block exit and reads observe block-entry values. *)

(** {1 Pattern helpers shared with {!Strength} and {!Extract}} *)

val fmt_of_ty : Hls_lang.Ast.ty -> Hls_util.Fixedpt.format
val frac_bits : Hls_lang.Ast.ty -> int
val log2_exact : int -> int option
val const_of : Dfg.t -> Dfg.nid -> int option
val with_const : Dfg.t -> Dfg.nid list -> (Dfg.nid * int) option
val shift_for_mul : Hls_lang.Ast.ty -> int -> (Op.t * int) option
val csd2 : Hls_lang.Ast.ty -> int -> (bool * int * int) option
(** [csd2 ty c] decomposes a positive non-power-of-two constant pattern
    as [2^a + 2^b] ([Some (true, a, b)]) or [2^a - 2^b]
    ([Some (false, a, b)]) with [a > b >= frac_bits ty], the condition
    under which the shift/add chain is bit-exact. *)
