open Hls_cdfg

type t = {
  name : string;
  descr : string;
  run : outputs:string list -> Cfg.t -> Cfg.t * bool;
}

let in_place f ~outputs cfg =
  ignore outputs;
  let changed = f cfg in
  (cfg, changed)

let const_fold = { name = "const-fold"; descr = "constant folding and algebraic identities"; run = in_place Const_fold.run }

let cse = { name = "cse"; descr = "common subexpression elimination"; run = in_place Cse.run }

let forward = { name = "forward"; descr = "storage forwarding within blocks"; run = in_place Forward.run }

let strength =
  { name = "strength"; descr = "strength reduction (mul-by-2^k to shift, +-1 to incr/decr, =0 to zero-detect)";
    run = in_place (fun cfg -> Strength.run cfg) }

let dce =
  { name = "dce"; descr = "dead code and dead write elimination";
    run = (fun ~outputs cfg -> (cfg, Dead_code.run ~outputs cfg)) }

let tree_height = { name = "tree-height"; descr = "tree height reduction of associative chains"; run = in_place Tree_height.run }

let loop_recode =
  { name = "loop-recode"; descr = "counter recoding to wraparound width and free zero-detect exit";
    run = (fun ~outputs cfg -> (cfg, Loop_recode.run ~protected:outputs cfg)) }

let unroll =
  { name = "unroll"; descr = "unrolling of counted loops";
    run = (fun ~outputs:_ cfg -> Unroll.unroll_all cfg) }

let merge =
  { name = "merge-blocks"; descr = "straight-line block merging and unreachable-block pruning";
    run = (fun ~outputs:_ cfg -> Clean_cfg.merge cfg) }

let prune =
  { name = "prune"; descr = "unreachable-block pruning";
    run = (fun ~outputs:_ cfg -> Clean_cfg.prune cfg) }

let if_convert =
  { name = "if-convert"; descr = "speculative mux conversion of small branch diamonds";
    run = (fun ~outputs:_ cfg -> If_convert.run cfg) }

let cse_global =
  { name = "cse-global"; descr = "cross-block sharing of expressions committed by the unique predecessor";
    run = in_place Rules.cse_global }

(* Declarative rules, exposed individually (rule:NAME) and as groups
   (rules:GROUP), parameterized by the fact oracle that guards e.g. the
   division rewrite. *)
let rule_pass ~nonneg (r : Rules.t) =
  { name = "rule:" ^ r.Rules.name; descr = r.Rules.descr;
    run = in_place (Rules.run_rules ~nonneg [ r ]) }

let group_descr = function
  | "strength" -> "strength-reduction rewrite rules"
  | "algebraic" -> "algebraic mul/div-by-constant decomposition rules"
  | "balance" -> "associative chain rebalancing rules"
  | "share" -> "expression sharing rules"
  | g -> g ^ " rewrite rules"

let group_pass ~nonneg g =
  { name = "rules:" ^ g; descr = group_descr g;
    run = in_place (Rules.run_rules ~nonneg (Rules.group g)) }

let static =
  [ const_fold; cse; forward; strength; dce; tree_height; loop_recode; unroll; merge;
    prune; if_convert; cse_global ]

let all_with ~nonneg =
  static
  @ List.map (group_pass ~nonneg) Rules.groups
  @ List.map (rule_pass ~nonneg) Rules.all

let all = all_with ~nonneg:Rules.no_facts

(* ---- lookup with a typed error ---- *)

type find_error = { unknown : string; suggestion : string option; known : string list }

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let row = Array.init (lb + 1) Fun.id in
  for i = 1 to la do
    let diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      let v = min (min (row.(j) + 1) (row.(j - 1) + 1)) (!diag + cost) in
      diag := row.(j);
      row.(j) <- v
    done
  done;
  row.(lb)

let find_in pool name =
  match List.find_opt (fun p -> p.name = name) pool with
  | Some p -> Ok p
  | None ->
      let known = List.map (fun p -> p.name) pool in
      let suggestion =
        List.fold_left
          (fun best k ->
            let d = levenshtein name k in
            if d <= max 2 (String.length name / 2)
               && (match best with Some (_, bd) -> d < bd | None -> true)
            then Some (k, d)
            else best)
          None known
        |> Option.map fst
      in
      Error { unknown = name; suggestion; known }

let find name = find_in all name

let find_error_to_string e =
  Printf.sprintf "unknown pass %S%s (known passes: %s)" e.unknown
    (match e.suggestion with Some s -> Printf.sprintf " (did you mean %S?)" s | None -> "")
    (String.concat ", " e.known)

let find_exn ?(pool = all) name =
  match find_in pool name with Ok p -> p | Error e -> invalid_arg (find_error_to_string e)

(* ---- pipelines ---- *)

let run_pipeline ~outputs passes cfg =
  let max_rounds = 16 in
  let rec go cfg round =
    if round >= max_rounds then cfg
    else begin
      let cfg, changed =
        List.fold_left
          (fun (cfg, changed) pass ->
            let cfg, c = pass.run ~outputs cfg in
            (cfg, changed || c))
          (cfg, false) passes
      in
      if changed then go cfg (round + 1) else cfg
    end
  in
  go cfg 0

let standard = [ forward; const_fold; cse; strength; dce ]

let aggressive = standard @ [ loop_recode; unroll; merge; tree_height; prune ]

(* ---- pipeline specs ---- *)

type objective = Extract.objective

type pipeline = { passes : string list; fold_facts : bool; extract : objective option }

let pass_names ps = List.map (fun p -> p.name) ps

let standard_names = pass_names standard
let aggressive_names = pass_names aggressive
let extract_names = aggressive_names @ [ "cse-global" ]

let named_pipelines =
  [
    ("none", { passes = []; fold_facts = false; extract = None });
    ("standard", { passes = standard_names; fold_facts = false; extract = None });
    ("aggressive", { passes = aggressive_names; fold_facts = true; extract = None });
    ("extract", { passes = extract_names; fold_facts = true; extract = Some `Area });
  ]

let level = function
  | `None -> List.assoc "none" named_pipelines
  | `Standard -> List.assoc "standard" named_pipelines
  | `Aggressive -> List.assoc "aggressive" named_pipelines

let default_pipeline = List.assoc "standard" named_pipelines

let pipeline_of_string s =
  let ( let* ) r f = Result.bind r f in
  match List.map String.trim (String.split_on_char '+' (String.trim s)) with
  | [] -> Error "empty pipeline spec"
  | base :: mods ->
      let* spec =
        match List.assoc_opt base named_pipelines with
        | Some spec -> Ok spec
        | None ->
            if base = "" then Error "empty pipeline spec (spell no passes as \"none\")"
            else begin
              let names =
                List.map String.trim (String.split_on_char ',' base)
                |> List.filter (fun n -> n <> "")
              in
              let rec check = function
                | [] -> Ok { passes = names; fold_facts = false; extract = None }
                | n :: rest -> (
                    match find n with
                    | Ok _ -> check rest
                    | Error e -> Error (find_error_to_string e))
              in
              check names
            end
      in
      List.fold_left
        (fun acc m ->
          let* spec = acc in
          if m = "facts" then Ok { spec with fold_facts = true }
          else if String.length m > 8 && String.sub m 0 8 = "extract:" then
            let o = String.sub m 8 (String.length m - 8) in
            match Extract.objective_of_string o with
            | Some o -> Ok { spec with extract = Some o }
            | None -> Error (Printf.sprintf "unknown extraction objective %S (expected area or latency)" o)
          else
            Error
              (Printf.sprintf
                 "unknown pipeline modifier %S (expected \"facts\" or \"extract:area|latency\")" m))
        (Ok spec) mods

let pipeline_to_string spec =
  match List.find_opt (fun (_, s) -> s = spec) named_pipelines with
  | Some (n, _) -> n
  | None ->
      (* a named base may be used when modifiers can only add on top *)
      let compatible base =
        base.passes = spec.passes
        && ((not base.fold_facts) || spec.fold_facts)
        && (match base.extract with None -> true | Some o -> spec.extract = Some o)
      in
      let base, base_spec =
        match List.find_opt (fun (_, s) -> compatible s) named_pipelines with
        | Some (n, s) -> (n, s)
        | None ->
            ( String.concat "," spec.passes,
              { passes = spec.passes; fold_facts = false; extract = None } )
      in
      let mods =
        (if spec.fold_facts && not base_spec.fold_facts then [ "facts" ] else [])
        @
        match spec.extract with
        | Some o when base_spec.extract <> Some o ->
            [ "extract:" ^ Extract.objective_to_string o ]
        | _ -> []
      in
      String.concat "+" (base :: mods)

(* [fold_facts] is deliberately NOT interpreted here: folding
   analysis-proved constants needs the range analysis, which lives above
   this library — Flow runs it between optimizer rounds. *)
let run_spec ?(nonneg = Rules.no_facts) ?cost ~outputs spec cfg =
  let pool = all_with ~nonneg in
  let passes = List.map (fun n -> find_exn ~pool n) spec.passes in
  let cfg = run_pipeline ~outputs passes cfg in
  match spec.extract with
  | None -> cfg
  | Some objective ->
      let changed = Extract.run ~nonneg ?cost ~objective cfg in
      if changed then run_pipeline ~outputs passes cfg else cfg

let optimize ?level:(l = `Standard) ~outputs cfg = run_spec ~outputs (level l) cfg
