(** Cost-guided extraction over the declarative rewrite rules.

    Bounded e-graph-lite: per DFG, every {!Rules.extraction_rules}
    right-hand side is materialized next to the node it rewrites, and a
    0/1 program over {!Hls_util.Binprog} picks one member per choice
    group minimizing an estimate-flavored area or latency cost —
    shift/add decompositions are chosen exactly when they eliminate a
    whole functional-unit class (or are strictly free), matching how
    shared-FU hardware actually pays for operators. The losing side of
    each choice is dropped by liveness and the block rebuilt. *)

open Hls_cdfg

type objective = [ `Area | `Latency ]

val objective_to_string : objective -> string
val objective_of_string : string -> objective option

(** Per-class cost oracle. [class_area] is the cheapest component of the
    class at the given operand width; [class_delay_ps] its propagation
    delay. {!default_cost} has stand-in figures; {!Hls_core.Flow}
    injects numbers derived from the RTL component library. *)
type cost = {
  class_area : Op.fu_class -> width:int -> int;
  class_delay_ps : Op.fu_class -> int;
}

val default_cost : cost

val run :
  ?nonneg:(Cfg.t -> Cfg.bid -> Dfg.nid -> bool) ->
  ?cost:cost ->
  objective:objective ->
  ?rules:Rules.t list ->
  Cfg.t ->
  bool
(** Saturate + extract every block; returns whether anything changed.
    Blocks where the program selects every original are left untouched
    (the speculative candidate cones are discarded). *)
