(** Pass manager: named optimization passes, declarative rewrite-rule
    passes, and first-class pipeline specs.

    A pipeline spec names the passes to run to a fixpoint, whether
    analysis-proved constant facts should be folded between optimizer
    rounds (interpreted by [Flow], which owns the range analysis), and
    an optional cost-guided extraction objective ({!Extract}). Specs
    have one canonical string form, round-tripping through
    {!pipeline_of_string}/{!pipeline_to_string}:

    {v
      SPEC     ::= BASE ("+" MODIFIER)*
      BASE     ::= "none" | "standard" | "aggressive" | "extract"
                 | PASS ("," PASS)*
      MODIFIER ::= "facts" | "extract:area" | "extract:latency"
    v}

    A named base imports its whole record; modifiers only add. The
    [standard] pipeline is the paper's compiler-like optimizations;
    [aggressive] adds loop recoding, unrolling, block merging and tree
    height reduction plus fact folding; [extract] further adds
    cross-block sharing and area-guided extraction. *)

open Hls_cdfg

type t = {
  name : string;
  descr : string;
  run : outputs:string list -> Cfg.t -> Cfg.t * bool;
}

val all : t list
(** Every registered pass, including one [rule:NAME] pass per
    declarative rewrite rule and one [rules:GROUP] pass per rule group
    (instantiated with the empty fact oracle). *)

val all_with : nonneg:(Cfg.t -> Cfg.bid -> Dfg.nid -> bool) -> t list
(** Like {!all} with rule passes guarded by the given fact oracle. *)

(** {1 Lookup} *)

type find_error = { unknown : string; suggestion : string option; known : string list }

val find : string -> (t, find_error) result
(** Look up by name; the error carries the known names and a
    nearest-name suggestion. *)

val find_error_to_string : find_error -> string

val find_exn : ?pool:t list -> string -> t
(** Raises [Invalid_argument] with {!find_error_to_string}. *)

(** {1 Pipelines} *)

val run_pipeline : outputs:string list -> t list -> Cfg.t -> Cfg.t
(** Apply the pass list repeatedly until a fixpoint (bounded). *)

val standard : t list
val aggressive : t list

type objective = Extract.objective

type pipeline = { passes : string list; fold_facts : bool; extract : objective option }

val named_pipelines : (string * pipeline) list
(** [none], [standard], [aggressive], [extract]. *)

val default_pipeline : pipeline
(** The [standard] named pipeline. *)

val level : [ `None | `Standard | `Aggressive ] -> pipeline
(** The spec equivalent of a legacy optimization level. *)

val pipeline_of_string : string -> (pipeline, string) result
val pipeline_to_string : pipeline -> string
(** Canonical form: named specs print as their name; a pass list
    matching a named spec prints as that name plus any additive
    modifiers. [pipeline_of_string (pipeline_to_string p) = Ok p]. *)

val run_spec :
  ?nonneg:(Cfg.t -> Cfg.bid -> Dfg.nid -> bool) ->
  ?cost:Extract.cost ->
  outputs:string list ->
  pipeline ->
  Cfg.t ->
  Cfg.t
(** Run a spec's passes to a fixpoint, then (if requested) cost-guided
    extraction followed by a cleanup round. Raises [Invalid_argument]
    on an unknown pass name. [fold_facts] is not interpreted here —
    the range analysis lives above this library; [Flow] owns it. *)

val optimize :
  ?level:[ `None | `Standard | `Aggressive ] -> outputs:string list -> Cfg.t -> Cfg.t
(** Deprecated thin wrapper: run the named pipeline a legacy level maps
    to (default [`Standard]). *)
