open Hls_util
open Hls_cdfg

(* ---- facts a guard may consult ---- *)

type env = { nonneg : Dfg.nid -> bool }

let no_facts _cfg _bid _nid = false

(* ---- the rule record ---- *)

type view = {
  out : Dfg.t;
  remap : int array;
  id : Dfg.nid;
  node : Dfg.node;
  mapped_args : Dfg.nid list;
}

type t = {
  name : string;
  descr : string;
  group : string;
  make : Dfg.t -> env -> (view -> Rewrite.decision option);
}

(* A rule whose matcher needs no per-block precomputation. *)
let stateless f = fun (_src : Dfg.t) (_env : env) -> f

(* ---- shared pattern helpers ---- *)

let fmt_of_ty (ty : Hls_lang.Ast.ty) =
  match ty with
  | Hls_lang.Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Hls_lang.Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Hls_lang.Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

let frac_bits (ty : Hls_lang.Ast.ty) =
  match ty with Hls_lang.Ast.Tfix (_, f) -> f | Hls_lang.Ast.Tbool | Hls_lang.Ast.Tint _ -> 0

(* If [v] (a positive pattern) is exactly 2^m, return m. *)
let log2_exact v =
  if v <= 0 then None
  else begin
    let rec loop m p = if p = v then Some m else if p > v then None else loop (m + 1) (p * 2) in
    loop 0 1
  end

let const_of out nid = match Dfg.op out nid with Op.Const v -> Some v | _ -> None

(* Split a commutative argument pair into (non-const, const value). *)
let with_const out args =
  match args with
  | [ a; b ] -> (
      match (const_of out a, const_of out b) with
      | None, Some v -> Some (a, v)
      | Some v, None -> Some (b, v)
      | _ -> None)
  | _ -> None

let shift_amount_ty = Hls_lang.Ast.Tint 6

let emit_shift out ty x (op, k) =
  let amount = Dfg.add out (Op.Const k) [] shift_amount_ty in
  Rewrite.Subst (Dfg.add out op [ x; amount ] ty)

(* Multiplying by constant 2^(m - frac) is a shift by |m - frac|.
   Exactness: fixed multiply computes floor((a*c)/2^frac); with c = 2^m
   that is floor(a * 2^(m-frac)), exactly what the arithmetic shift
   computes in either direction. *)
let shift_for_mul ty c =
  match log2_exact c with
  | None -> None
  | Some m ->
      let k = m - frac_bits ty in
      if k = 0 then None (* multiplication by one; constant folding's job *)
      else if k > 0 then Some (Op.Shl, k)
      else Some (Op.Shr, -k)

(* A two-term shift/add (canonical signed digit) decomposition of a
   positive non-power-of-two constant pattern: c = 2^a + 2^b or
   c = 2^a - 2^b with a > b >= frac_bits. Returns (is_add, a, b). *)
let csd2 ty c =
  let f = frac_bits ty in
  if c <= 0 || log2_exact c <> None then None
  else begin
    let add_form =
      (* exactly two set bits *)
      let rec bits v i acc = if v = 0 then acc else bits (v lsr 1) (i + 1) (if v land 1 = 1 then i :: acc else acc) in
      match bits c 0 [] with
      | [ a; b ] when b >= f -> Some (true, a, b)
      | _ -> None
    in
    match add_form with
    | Some _ as r -> r
    | None ->
        (* c = 2^a - 2^b: scan borrow positions *)
        let rec scan b =
          if b > 61 || 1 lsl b > c then None
          else if b < f then scan (b + 1)
          else
            match log2_exact (c + (1 lsl b)) with
            | Some a when a > b && a <= 61 -> Some (false, a, b)
            | _ -> scan (b + 1)
        in
        scan 0
  end

(* ---- the rule catalogue ---- *)

(* Exactness of the shift/add chain: with c = 2^a ± 2^b and a, b >=
   frac_bits, the fixed multiply computes floor(x*c / 2^f) =
   x*2^(a-f) ± x*2^(b-f) with no truncation (both terms are integer
   multiples), and left shifts plus a wrapping add/sub compute the same
   value modulo 2^bits — bit-identical after the final wrap. *)

let mul_pow2_shift =
  {
    name = "mul-pow2-shift";
    group = "strength";
    descr = "x * 2^k  ->  arithmetic shift (exact in either direction)";
    make =
      stateless (fun v ->
          match v.node.Dfg.op with
          | Op.Mul -> (
              match with_const v.out v.mapped_args with
              | Some (x, c) -> (
                  match shift_for_mul v.node.Dfg.ty c with
                  | Some shift -> Some (emit_shift v.out v.node.Dfg.ty x shift)
                  | None -> None)
              | None -> None)
          | _ -> None);
  }

let mul_const_chain =
  {
    name = "mul-const-chain";
    group = "algebraic";
    descr = "x * c with c = 2^a +- 2^b  ->  two free shifts and one ALU op";
    make =
      stateless (fun v ->
          match v.node.Dfg.op with
          | Op.Mul -> (
              match with_const v.out v.mapped_args with
              | Some (x, c) -> (
                  match csd2 v.node.Dfg.ty c with
                  | Some (is_add, a, b) ->
                      let ty = v.node.Dfg.ty in
                      let f = frac_bits ty in
                      let term e =
                        if e = f then x else
                        match emit_shift v.out ty x (Op.Shl, e - f) with
                        | Rewrite.Subst nid -> nid
                        | _ -> assert false
                      in
                      let t1 = term a in
                      let t2 = term b in
                      Some
                        (Rewrite.Subst
                           (Dfg.add v.out (if is_add then Op.Add else Op.Sub) [ t1; t2 ] ty))
                  | None -> None)
              | None -> None)
          | _ -> None);
  }

(* Truncating division by 2^k agrees with the flooring arithmetic right
   shift only for a non-negative numerator; the guard consults the
   range-analysis fact oracle, so without proven facts the rule never
   fires. *)
let div_pow2_shift =
  {
    name = "div-pow2-shift";
    group = "algebraic";
    descr = "x / 2^k  ->  right shift, when x is proven non-negative";
    make =
      (fun _src env v ->
        match (v.node.Dfg.op, v.mapped_args, v.node.Dfg.args) with
        | Op.Div, [ x; c ], [ x_orig; _ ] -> (
            match const_of v.out c with
            | Some cv -> (
                match log2_exact cv with
                | Some m ->
                    let k = m - frac_bits v.node.Dfg.ty in
                    if k > 0 && env.nonneg x_orig then
                      Some (emit_shift v.out v.node.Dfg.ty x (Op.Shr, k))
                    else None
                | None -> None)
            | None -> None)
        | _ -> None);
  }

let add_one_incr =
  {
    name = "add-one-incr";
    group = "strength";
    descr = "x + 1  ->  increment";
    make =
      stateless (fun v ->
          match v.node.Dfg.op with
          | Op.Add -> (
              let one = Fixedpt.of_int (fmt_of_ty v.node.Dfg.ty) 1 in
              match with_const v.out v.mapped_args with
              | Some (x, c) when c = one ->
                  Some (Rewrite.Subst (Dfg.add v.out Op.Incr [ x ] v.node.Dfg.ty))
              | _ -> None)
          | _ -> None);
  }

let sub_one_decr =
  {
    name = "sub-one-decr";
    group = "strength";
    descr = "x - 1  ->  decrement";
    make =
      stateless (fun v ->
          match v.node.Dfg.op with
          | Op.Sub -> (
              let one = Fixedpt.of_int (fmt_of_ty v.node.Dfg.ty) 1 in
              match v.mapped_args with
              | [ x; c ] when const_of v.out c = Some one ->
                  Some (Rewrite.Subst (Dfg.add v.out Op.Decr [ x ] v.node.Dfg.ty))
              | _ -> None)
          | _ -> None);
  }

let cmp_zero_zdetect =
  {
    name = "cmp-zero-zdetect";
    group = "strength";
    descr = "x = 0  ->  free zero-detect";
    make =
      stateless (fun v ->
          match v.node.Dfg.op with
          | Op.Cmp Op.Ceq -> (
              match with_const v.out v.mapped_args with
              | Some (x, 0) ->
                  Some (Rewrite.Subst (Dfg.add v.out Op.Zdetect [ x ] Hls_lang.Ast.Tbool))
              | _ -> None)
          | _ -> None);
  }

(* Associativity license for rebalancing: exact for wrapping integer and
   fixed adds and integer multiplies, and for the bitwise ops; fixed
   multiplies truncate per step and must keep their order. *)
let assoc_ok (op : Op.t) (ty : Hls_lang.Ast.ty) =
  match (op, ty) with
  | Op.Add, (Hls_lang.Ast.Tint _ | Hls_lang.Ast.Tfix _) -> true
  | Op.Mul, Hls_lang.Ast.Tint _ -> true
  | (Op.And | Op.Or | Op.Xor), _ -> true
  | _ -> false

let add_rebalance =
  {
    name = "add-rebalance";
    group = "balance";
    descr = "rebalance associative operator chains into trees (height reduction)";
    make =
      (fun src _env ->
        let users = Dfg.users src in
        let node_op id = (Dfg.node src id).Dfg.op in
        let node_ty id = (Dfg.node src id).Dfg.ty in
        (* internal chain node: same associative op/ty as its unique user *)
        let internal id =
          assoc_ok (node_op id) (node_ty id)
          && (match users.(id) with
             | [ u ] -> node_op u = node_op id && node_ty u = node_ty id
             | _ -> false)
        in
        let rec leaves id acc =
          (* pre-order, left to right *)
          List.fold_left
            (fun acc a -> if internal a then leaves a acc else a :: acc)
            acc (Dfg.args src id)
        in
        let is_root id =
          assoc_ok (node_op id) (node_ty id)
          && (not (internal id))
          && List.exists internal (Dfg.args src id)
        in
        fun v ->
          if internal v.id then Some Rewrite.Drop
          else if is_root v.id then begin
            let op = node_op v.id and ty = node_ty v.id in
            let old_leaves = List.rev (leaves v.id []) in
            let mapped = List.map (fun l -> v.remap.(l)) old_leaves in
            let rec pairup = function
              | [] -> []
              | [ x ] -> [ x ]
              | a :: b :: rest -> Dfg.add v.out op [ a; b ] ty :: pairup rest
            in
            let rec reduce = function [ x ] -> x | xs -> reduce (pairup xs) in
            Some (Rewrite.Subst (reduce mapped))
          end
          else None);
  }

let cse_node =
  {
    name = "cse-node";
    group = "share";
    descr = "share structurally identical expressions within a block";
    make =
      (fun _src _env ->
        let table : (string, Dfg.nid) Hashtbl.t = Hashtbl.create 16 in
        fun v ->
          match v.node.Dfg.op with
          | Op.Write _ -> None
          | op ->
              let key =
                Printf.sprintf "%s(%s):%s" (Op.to_string op)
                  (String.concat "," (List.map string_of_int v.mapped_args))
                  (Hls_lang.Ast.ty_to_string v.node.Dfg.ty)
              in
              (match Hashtbl.find_opt table key with
              | Some nid -> Some (Rewrite.Subst nid)
              | None ->
                  let nid = Dfg.add v.out op v.mapped_args v.node.Dfg.ty in
                  Hashtbl.add table key nid;
                  Some (Rewrite.Subst nid)));
  }

let all =
  [
    mul_pow2_shift;
    add_one_incr;
    sub_one_decr;
    cmp_zero_zdetect;
    mul_const_chain;
    div_pow2_shift;
    add_rebalance;
    cse_node;
  ]

let groups = [ "strength"; "algebraic"; "balance"; "share" ]

let group g = List.filter (fun r -> r.group = g) all

(* Candidate generators for cost-guided extraction: rules whose
   right-hand sides are genuine alternatives a cost model should pick
   between (or strictly free replacements the ILP accepts trivially). *)
let extraction_rules = [ mul_pow2_shift; mul_const_chain; div_pow2_shift ]

(* ---- greedy application ---- *)

let run_rules ?(nonneg = no_facts) rules cfg =
  (* The fact oracle is recomputed per application (rewrites renumber
     node ids) and forced lazily: blocks already rewritten in this very
     application were rewritten semantics-preservingly, so facts about
     the still-untouched blocks remain valid. *)
  let oracle = lazy (nonneg cfg) in
  Rewrite.rewrite_all cfg ~rule:(fun bid ->
      let src = Cfg.dfg cfg bid in
      let env = { nonneg = (fun nid -> (Lazy.force oracle) bid nid) } in
      let fns = List.map (fun r -> r.make src env) rules in
      fun ~out ~remap id node ~mapped_args ->
        let v = { out; remap; id; node; mapped_args } in
        let rec first = function
          | [] -> Rewrite.Copy
          | f :: rest -> ( match f v with Some d -> d | None -> first rest)
        in
        first fns)

(* ---- cross-block common-subexpression sharing ---- *)

(* If block B's unique predecessor is A (and B is not the entry), every
   execution of B immediately follows a full execution of A, so B's
   entry store equals A's exit store. An expression op(reads/consts)
   computed in A whose read variables A never writes, and whose value
   A's last write to some variable w commits, is therefore available in
   B as a free Read w: B's recomputation over the same reads/consts
   observes A-exit values (reads see block-entry values) and computes
   exactly the value stored in w. Trap behavior is preserved — A already
   evaluated the identical operator on identical operands first. *)

let pure_op (op : Op.t) =
  match op with Op.Const _ | Op.Read _ | Op.Write _ -> false | _ -> true

let cse_global cfg =
  let entry = Cfg.entry cfg in
  let preds : (Cfg.bid, Cfg.bid list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = Option.value (Hashtbl.find_opt preds s) ~default:[] in
          if not (List.mem b cur) then Hashtbl.replace preds s (b :: cur))
        (Cfg.succs cfg b))
    (Cfg.block_ids cfg);
  (* stable description of an available expression's operand: a variable
     unwritten in the defining block, or a constant *)
  let describe g written nid =
    let n = Dfg.node g nid in
    match n.Dfg.op with
    | Op.Read v when not (Hashtbl.mem written v) ->
        Some (Printf.sprintf "r:%s:%s" v (Hls_lang.Ast.ty_to_string n.Dfg.ty))
    | Op.Const c -> Some (Printf.sprintf "c:%d:%s" c (Hls_lang.Ast.ty_to_string n.Dfg.ty))
    | _ -> None
  in
  let expr_key g written nid =
    let n = Dfg.node g nid in
    if not (pure_op n.Dfg.op) then None
    else
      let args = List.map (describe g written) n.Dfg.args in
      if List.for_all Option.is_some args then
        Some
          (Printf.sprintf "%s(%s):%s" (Op.to_string n.Dfg.op)
             (String.concat "," (List.map Option.get args))
             (Hls_lang.Ast.ty_to_string n.Dfg.ty))
      else None
  in
  List.fold_left
    (fun acc b ->
      if b = entry then acc
      else
        match Hashtbl.find_opt preds b with
        | Some [ a ] when a <> b ->
            let ga = Cfg.dfg cfg a in
            let written_a = Hashtbl.create 8 in
            List.iter (fun (v, _) -> Hashtbl.replace written_a v ()) (Dfg.writes ga);
            (* last write per variable wins (block semantics) *)
            let last_write : (string, Dfg.nid) Hashtbl.t = Hashtbl.create 8 in
            List.iter (fun (v, nid) -> Hashtbl.replace last_write v nid) (Dfg.writes ga);
            let avail : (string, string * Hls_lang.Ast.ty) Hashtbl.t = Hashtbl.create 8 in
            Hashtbl.iter
              (fun w wid ->
                match Dfg.args ga wid with
                | [ value ] -> (
                    match expr_key ga written_a value with
                    | Some key ->
                        if not (Hashtbl.mem avail key) then
                          Hashtbl.replace avail key (w, (Dfg.node ga wid).Dfg.ty)
                    | None -> ())
                | _ -> ())
              last_write;
            if Hashtbl.length avail = 0 then acc
            else begin
              let gb = Cfg.dfg cfg b in
              let reads : (string, Dfg.nid) Hashtbl.t = Hashtbl.create 4 in
              let rule : Rewrite.rule =
               fun ~out ~remap:_ id node ~mapped_args:_ ->
                match expr_key gb written_a id with
                | Some key -> (
                    match Hashtbl.find_opt avail key with
                    | Some (w, wty) when wty = node.Dfg.ty ->
                        let rd =
                          match Hashtbl.find_opt reads w with
                          | Some nid -> nid
                          | None ->
                              let nid = Dfg.add out (Op.Read w) [] node.Dfg.ty in
                              Hashtbl.add reads w nid;
                              nid
                        in
                        Rewrite.Subst rd
                    | _ -> Rewrite.Copy)
                | None -> Rewrite.Copy
              in
              Rewrite.rewrite_block cfg b ~rule || acc
            end
        | _ -> acc)
    false (Cfg.block_ids cfg)
