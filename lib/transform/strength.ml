(* The strength-reduction rewrites live declaratively in {!Rules}
   (group "strength"); this module keeps the historical entry point.
   [allow_div_floor] maps to the guarded division rule with an
   always-true fact oracle — the caller asserts non-negativity. *)

let run ?(allow_div_floor = false) cfg =
  if allow_div_floor then
    Rules.run_rules
      ~nonneg:(fun _ _ _ -> true)
      (Rules.group "strength" @ [ Rules.div_pow2_shift ])
      cfg
  else Rules.run_rules (Rules.group "strength") cfg
