open Hls_util
open Hls_cdfg

let fmt_of_ty (ty : Hls_lang.Ast.ty) =
  match ty with
  | Hls_lang.Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Hls_lang.Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Hls_lang.Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

let zero_pattern _ty = 0

let one_pattern (ty : Hls_lang.Ast.ty) = Fixedpt.of_int (fmt_of_ty ty) 1

let const_of out nid =
  match Dfg.op out nid with Op.Const v -> Some v | _ -> None

(* Per-block rule with a constant-dedup table threaded via closure. *)
let make_rule () : Rewrite.rule =
  let const_table : (string, Dfg.nid) Hashtbl.t = Hashtbl.create 16 in
  fun ~out ~remap:_ _id node ~mapped_args ->
    let ty = node.Dfg.ty in
    let add_const v =
      let v = Fixedpt.wrap (fmt_of_ty ty) v in
      let key = Printf.sprintf "%d:%s" v (Hls_lang.Ast.ty_to_string ty) in
      match Hashtbl.find_opt const_table key with
      | Some nid -> Rewrite.Subst nid
      | None ->
          let nid = Dfg.add out (Op.Const v) [] ty in
          Hashtbl.add const_table key nid;
          Rewrite.Subst nid
    in
    let args_const = List.map (const_of out) mapped_args in
    let all_const =
      List.for_all (function Some _ -> true | None -> false) args_const
    in
    match node.Dfg.op with
    | Op.Const v -> add_const v
    | Op.Read _ | Op.Write _ -> Rewrite.Copy
    | op when all_const && op <> Op.Mux -> (
        (* Mux of three constants also folds, but handled below to share
           the cond-only case *)
        let vals = List.map (function Some v -> v | None -> 0) args_const in
        match Op.eval ty op vals with
        | v -> add_const v
        | exception Division_by_zero -> Rewrite.Copy
        | exception Invalid_argument _ -> Rewrite.Copy)
    | Op.Add -> (
        match (mapped_args, args_const) with
        | [ x; _ ], [ _; Some c ] when c = zero_pattern ty -> Rewrite.Subst x
        | [ _; y ], [ Some c; _ ] when c = zero_pattern ty -> Rewrite.Subst y
        | _ -> Rewrite.Copy)
    | Op.Sub -> (
        match (mapped_args, args_const) with
        | [ x; _ ], [ _; Some c ] when c = zero_pattern ty -> Rewrite.Subst x
        | [ x; y ], _ when x = y -> add_const 0
        | _ -> Rewrite.Copy)
    | Op.Mul -> (
        match (mapped_args, args_const) with
        | [ x; _ ], [ _; Some c ] when c = one_pattern ty -> Rewrite.Subst x
        | [ _; y ], [ Some c; _ ] when c = one_pattern ty -> Rewrite.Subst y
        | [ _; _ ], [ _; Some 0 ] | [ _; _ ], [ Some 0; _ ] -> add_const 0
        | _ -> Rewrite.Copy)
    | Op.Div -> (
        match (mapped_args, args_const) with
        | [ x; _ ], [ _; Some c ] when c = one_pattern ty -> Rewrite.Subst x
        | _ -> Rewrite.Copy)
    | Op.Shl | Op.Shr -> (
        match (mapped_args, args_const) with
        | [ x; _ ], [ _; Some 0 ] -> Rewrite.Subst x
        | _ -> Rewrite.Copy)
    | Op.And | Op.Or -> (
        match mapped_args with [ x; y ] when x = y -> Rewrite.Subst x | _ -> Rewrite.Copy)
    | Op.Xor -> (
        match mapped_args with [ x; y ] when x = y -> add_const 0 | _ -> Rewrite.Copy)
    | Op.Not -> (
        match mapped_args with
        | [ x ] -> (
            match Dfg.node out x with
            | { Dfg.op = Op.Not; args = [ inner ]; ty = ity } when ity = ty ->
                Rewrite.Subst inner
            | _ -> Rewrite.Copy)
        | _ -> Rewrite.Copy)
    | Op.Neg -> (
        match mapped_args with
        | [ x ] -> (
            match Dfg.node out x with
            | { Dfg.op = Op.Neg; args = [ inner ]; ty = ity } when ity = ty ->
                Rewrite.Subst inner
            | _ -> Rewrite.Copy)
        | _ -> Rewrite.Copy)
    | Op.Mux -> (
        match (mapped_args, args_const) with
        | [ _; a; b ], _ when a = b -> Rewrite.Subst a
        | [ _; a; _ ], Some c :: _ when c <> 0 -> Rewrite.Subst a
        | [ _; _; b ], Some 0 :: _ -> Rewrite.Subst b
        | _ -> Rewrite.Copy)
    | Op.Mod | Op.Cmp _ | Op.Incr | Op.Decr | Op.Zdetect -> Rewrite.Copy

let fold_branches cfg =
  List.fold_left
    (fun acc bid ->
      match Cfg.term cfg bid with
      | Cfg.Branch (cond, bt, bf) -> (
          match Dfg.op (Cfg.dfg cfg bid) cond with
          | Op.Const v ->
              Cfg.set_term cfg bid (Cfg.Goto (if v <> 0 then bt else bf));
              true
          | _ -> acc)
      | Cfg.Goto _ | Cfg.Halt -> acc)
    false (Cfg.block_ids cfg)

let run cfg =
  let changed = Rewrite.rewrite_all cfg ~rule:(fun _bid -> make_rule ()) in
  let branch_changed = fold_branches cfg in
  changed || branch_changed

(* Fold with externally proven facts (the range analysis): a node whose
   runtime value is a single known pattern becomes that constant, and a
   branch whose condition is proven becomes a goto. [value bid nid] must
   be the node's value in {e every} execution; it is consulted with the
   node ids of the graph as passed in, before any renumbering. *)
let apply_facts cfg ~value =
  (* branches first: the rewrite below renumbers node ids *)
  let branch_changed =
    List.fold_left
      (fun acc bid ->
        match Cfg.term cfg bid with
        | Cfg.Branch (cond, bt, bf) -> (
            match Dfg.op (Cfg.dfg cfg bid) cond with
            | Op.Const _ -> acc (* fold_branches territory *)
            | _ -> (
                match value bid cond with
                | Some v ->
                    Cfg.set_term cfg bid (Cfg.Goto (if v <> 0 then bt else bf));
                    true
                | None -> acc))
        | Cfg.Goto _ | Cfg.Halt -> acc)
      false (Cfg.block_ids cfg)
  in
  let changed =
    Rewrite.rewrite_all cfg ~rule:(fun bid ->
        let rule = make_rule () in
        fun ~out ~remap id node ~mapped_args ->
          match node.Dfg.op with
          | Op.Const _ | Op.Read _ | Op.Write _ ->
              rule ~out ~remap id node ~mapped_args
          | _ -> (
              match value bid id with
              | Some v when Fixedpt.wrap (fmt_of_ty node.Dfg.ty) v = v ->
                  (* re-enter the shared rule with a constant node so the
                     per-block constant dedup table applies *)
                  rule ~out ~remap id
                    { Dfg.op = Op.Const v; args = []; ty = node.Dfg.ty }
                    ~mapped_args:[]
              | _ -> rule ~out ~remap id node ~mapped_args))
  in
  branch_changed || changed
