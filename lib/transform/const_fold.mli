(** Constant folding, constant propagation and algebraic simplification.

    Within each block: operations whose inputs are all constants are
    evaluated at compile time (bit-exactly, via {!Hls_cdfg.Op.eval});
    algebraic identities ([x+0], [x*1], [x*0], [x-x], [x xor x], double
    negation, constant-condition muxes, shift by zero) are simplified; and
    identical constants are merged. A branch whose condition folds to a
    constant becomes an unconditional jump, exposing unreachable blocks to
    {!Clean_cfg}. *)

val run : Hls_cdfg.Cfg.t -> bool
(** Returns true if anything changed. *)

val apply_facts : Hls_cdfg.Cfg.t -> value:(int -> int -> int option) -> bool
(** Fold with externally proven per-node constants — [value bid nid] is
    [Some v] when the node provably evaluates to the pattern [v] in every
    execution (e.g. a {!Hls_analysis.Range} singleton). Replaces such
    nodes with constants (when [v] is representable in the node's type)
    and turns proven branches into gotos. The transform library stays
    analysis-agnostic: callers supply the valuation. Returns true if
    anything changed. *)
