(* Tree-height reduction, expressed as the declarative rebalancing rule
   in {!Rules}. *)

let run cfg = Rules.run_rules [ Rules.add_rebalance ] cfg
