(* Common subexpression elimination, expressed as the declarative
   sharing rule in {!Rules}. *)

let run cfg = Rules.run_rules [ Rules.cse_node ] cfg
