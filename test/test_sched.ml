(* Scheduler tests: the paper's Fig 3/4 ASAP-vs-list example, the Fig 5
   force-directed distribution graph, the Fig 2 schedule lengths, and
   properties over random DAGs (validity of every algorithm, optimality
   ordering against branch-and-bound). *)

open Hls_lang
open Hls_cdfg
open Hls_sched

let i16 = Ast.Tint 16

(* The Fig 3/4 situation: two independent low-priority operations appear
   first in specification order; a three-operation critical chain
   follows. With two units, ASAP fills step 1 with the low-priority ops
   and stretches the chain; list scheduling (path-length priority) starts
   the chain immediately. *)
let fig34_dfg () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i16 in
  let b = Dfg.add g (Op.Read "b") [] i16 in
  let x1 = Dfg.add g Op.Add [ a; b ] i16 in
  let x2 = Dfg.add g Op.Sub [ a; b ] i16 in
  let c1 = Dfg.add g Op.Mul [ a; b ] i16 in
  let c2 = Dfg.add g Op.Add [ c1; a ] i16 in
  let c3 = Dfg.add g Op.Add [ c2; b ] i16 in
  ignore (Dfg.add g (Op.Write "o1") [ x1 ] i16);
  ignore (Dfg.add g (Op.Write "o2") [ x2 ] i16);
  ignore (Dfg.add g (Op.Write "o3") [ c3 ] i16);
  g

let limits2 = Limits.Total 2

let test_fig3_asap_suboptimal () =
  let g = fig34_dfg () in
  let s = Asap.schedule ~limits:limits2 g in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Schedule.verify limits2 s);
  Alcotest.(check int) "ASAP needs 4 steps" 4 (Schedule.n_steps s)

let test_fig4_list_optimal () =
  let g = fig34_dfg () in
  let s = List_sched.schedule ~limits:limits2 g in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Schedule.verify limits2 s);
  Alcotest.(check int) "list needs 3 steps" 3 (Schedule.n_steps s)

let test_fig4_bb_confirms () =
  let g = fig34_dfg () in
  match Branch_bound.schedule ~limits:limits2 g with
  | Some s -> Alcotest.(check int) "optimum is 3" 3 (Schedule.n_steps s)
  | None -> Alcotest.fail "graph small enough for exact search"

(* Fig 5: chain a1 -> a2 -> m with deadline 3 pins a1, a2; a3 (also an
   add, depending on a1) ranges over steps 2..3. Expected distribution
   for the add class: [1.0; 1.5; 0.5]; balancing places a3 in step 3. *)
let fig5_dfg () =
  let g = Dfg.create () in
  let x = Dfg.add g (Op.Read "x") [] i16 in
  let y = Dfg.add g (Op.Read "y") [] i16 in
  let a1 = Dfg.add g Op.Add [ x; y ] i16 in
  let a2 = Dfg.add g Op.Add [ a1; y ] i16 in
  let m = Dfg.add g Op.Mul [ a2; x ] i16 in
  let a3 = Dfg.add g Op.Add [ a1; x ] i16 in
  ignore (Dfg.add g (Op.Write "o1") [ m ] i16);
  ignore (Dfg.add g (Op.Write "o2") [ a3 ] i16);
  (g, a3)

let test_fig5_distribution () =
  let g, _ = fig5_dfg () in
  let dep = Depgraph.of_dfg g in
  let asap = Depgraph.asap dep in
  let alap = Depgraph.alap dep ~deadline:3 in
  let dg = Force_directed.distribution dep ~asap ~alap ~cls:Op.C_alu ~deadline:3 in
  Alcotest.(check (array (float 0.001))) "distribution graph (Fig 5)"
    [| 1.0; 1.5; 0.5 |] dg

let test_fig5_fds_balances () =
  let g, a3 = fig5_dfg () in
  let s = Force_directed.schedule ~deadline:3 g in
  Alcotest.(check (result unit string)) "valid" (Ok ())
    (Schedule.verify Limits.Unlimited s);
  Alcotest.(check int) "a3 balanced into step 3" 3 (Schedule.step_of s a3);
  Alcotest.(check (list (pair string int))) "one adder, one multiplier"
    [ ("alu", 1); ("mul", 1) ]
    (List.map
       (fun (c, n) -> (Op.fu_class_to_string c, n))
       (Schedule.fu_requirement s))

let test_fds_deadline_too_tight () =
  let g, _ = fig5_dfg () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Force_directed.schedule ~deadline:2 g);
       false
     with Invalid_argument _ -> true)

(* ---- Fig 2: whole-program schedule lengths ---- *)

let test_fig2_lengths () =
  let _, cfg = Compile.compile_source Hls_core.Workloads.sqrt_newton in
  let cs = Cfg_sched.make cfg ~scheduler:(List_sched.schedule ~limits:Limits.serial) in
  Alcotest.(check int) "serial unoptimized = 23" 23 (Cfg_sched.compute_steps cs);
  let _, cfg2 = Compile.compile_source Hls_core.Workloads.sqrt_newton in
  let cfg2 =
    Hls_transform.Passes.run_pipeline ~outputs:[ "y" ]
      (Hls_transform.Passes.standard @ [ Hls_transform.Passes.find_exn "loop-recode" ])
      cfg2
  in
  let cs2 = Cfg_sched.make cfg2 ~scheduler:(List_sched.schedule ~limits:Limits.two_fu) in
  Alcotest.(check int) "two FUs optimized = 10" 10 (Cfg_sched.compute_steps cs2);
  Alcotest.(check (result unit string)) "valid" (Ok ())
    (Cfg_sched.verify Limits.two_fu cs2)

(* ---- freedom-based ---- *)

let test_freedom_meets_critical_path () =
  let g = fig34_dfg () in
  let dep = Depgraph.of_dfg g in
  let s = Freedom.schedule g in
  Alcotest.(check int) "critical-path length met" (Depgraph.critical_length dep)
    (Schedule.n_steps s);
  Alcotest.(check (result unit string)) "deps hold" (Ok ())
    (Schedule.verify Limits.Unlimited s)

(* ---- transformational ---- *)

let test_transformational_legal () =
  let g = fig34_dfg () in
  List.iter
    (fun (name, s) ->
      Alcotest.(check (result unit string)) name (Ok ()) (Schedule.verify limits2 s))
    [
      ("from parallel", Transformational.from_parallel ~limits:limits2 g);
      ("from serial", Transformational.from_serial ~limits:limits2 g);
    ]

let test_serial_compaction_beats_serial () =
  let g = fig34_dfg () in
  let s = Transformational.from_serial ~limits:limits2 g in
  Alcotest.(check bool) "compacted below 7 steps" true (Schedule.n_steps s < 7)

(* ---- depgraph ---- *)

let test_depgraph_through_free_ops () =
  (* x >> 1 (free) between two adds: the adds must still be chained *)
  let g = Dfg.create () in
  let x = Dfg.add g (Op.Read "x") [] i16 in
  let a1 = Dfg.add g Op.Add [ x; x ] i16 in
  let k = Dfg.add g (Op.Const 1) [] (Ast.Tint 6) in
  let sh = Dfg.add g Op.Shr [ a1; k ] i16 in
  let a2 = Dfg.add g Op.Add [ sh; x ] i16 in
  ignore (Dfg.add g (Op.Write "y") [ a2 ] i16);
  let dep = Depgraph.of_dfg g in
  Alcotest.(check int) "2 ops" 2 (Depgraph.n_ops dep);
  Alcotest.(check int) "critical length" 2 (Depgraph.critical_length dep);
  let i1 = Depgraph.index_of dep a1 and i2 = Depgraph.index_of dep a2 in
  Alcotest.(check (list int)) "edge through shift" [ i1 ] (Depgraph.preds dep i2)

(* ---- properties over random DAGs ---- *)

let limits_choices =
  [ Limits.Serial; Limits.Total 2; Limits.Total 3;
    Limits.Classes [ (Op.C_alu, 1); (Op.C_mul, 1) ]; Limits.Unlimited ]

let all_schedulers limits g =
  [
    ("asap", Asap.schedule ~limits g);
    ("list/path", List_sched.schedule ~limits g);
    ("list/mobility",
     List_sched.schedule ~priority:(List_sched.Mobility 100) ~limits g);
    ("list/urgency", List_sched.schedule ~priority:(List_sched.Urgency 100) ~limits g);
    ("list/fifo", List_sched.schedule ~priority:List_sched.Fifo ~limits g);
    ("trans/par", Transformational.from_parallel ~limits g);
    ("trans/ser", Transformational.from_serial ~limits g);
  ]

let prop_all_schedulers_valid =
  QCheck.Test.make ~name:"every scheduler produces a valid schedule" ~count:120
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      List.for_all
        (fun limits ->
          List.for_all
            (fun (_, s) -> Schedule.verify limits s = Ok ())
            (all_schedulers limits g))
        limits_choices)

let prop_list_sched_matches_reference =
  QCheck.Test.make
    ~name:"pqueue list scheduler is bit-identical to the reference" ~count:150
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed ~max_ops:20 seed in
      let dep = Depgraph.of_dfg g in
      let deadline = max 1 (Depgraph.critical_length dep) in
      let priorities =
        [ List_sched.Path_length; List_sched.Urgency deadline;
          List_sched.Mobility deadline; List_sched.Fifo ]
      in
      List.for_all
        (fun limits ->
          List.for_all
            (fun priority ->
              List_sched.schedule_dep ~priority ~limits dep
              = List_sched.schedule_dep_reference ~priority ~limits dep)
            priorities)
        limits_choices)

let prop_bb_is_optimal =
  QCheck.Test.make ~name:"branch-and-bound never beaten" ~count:60
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed ~max_ops:9 seed in
      List.for_all
        (fun limits ->
          match Branch_bound.schedule ~limits g with
          | None -> true
          | Some bb ->
              List.for_all
                (fun (_, s) -> Schedule.n_steps bb <= Schedule.n_steps s)
                (all_schedulers limits g))
        [ Limits.Serial; Limits.Total 2 ])

let prop_unconstrained_asap_is_critical_path =
  QCheck.Test.make ~name:"unconstrained ASAP equals critical path" ~count:150
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      let dep = Depgraph.of_dfg g in
      Schedule.n_steps (Asap.unconstrained g) = max 1 (Depgraph.critical_length dep))

let prop_fds_respects_deadline =
  QCheck.Test.make ~name:"force-directed meets its deadline" ~count:80
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      let dep = Depgraph.of_dfg g in
      let deadline = max 1 (Depgraph.critical_length dep) + 1 in
      let s = Force_directed.schedule ~deadline g in
      Schedule.n_steps s <= deadline && Schedule.verify Limits.Unlimited s = Ok ())

let prop_fds_matches_reference =
  QCheck.Test.make
    ~name:"incremental force-directed kernel is step-for-step identical to the reference"
    ~count:120 Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed ~max_ops:24 seed in
      let dep = Depgraph.of_dfg g in
      let cl = max 1 (Depgraph.critical_length dep) in
      List.for_all
        (fun deadline ->
          let trace
              (kernel :
                ?on_fix:(int -> int -> unit) ->
                ?pins:(int * int) list ->
                deadline:int ->
                Depgraph.t ->
                int array) ~pins =
            let log = ref [] in
            let steps =
              kernel ~on_fix:(fun i s -> log := (i, s) :: !log) ~pins ~deadline dep
            in
            (steps, List.rev !log)
          in
          (* pin the lowest-index op at its ALAP frame top: a legal pin on
             every graph, and one that actually perturbs the priorities *)
          let alap = Depgraph.alap dep ~deadline in
          List.for_all
            (fun pins ->
              let s_inc, fixes_inc = trace Force_directed.schedule_dep ~pins in
              let s_ref, fixes_ref =
                trace Force_directed.schedule_dep_reference ~pins
              in
              s_inc = s_ref && fixes_inc = fixes_ref)
            [ []; [ (0, alap.(0)) ] ])
        [ cl; cl + 1; cl + 3 ])

let prop_freedom_valid =
  QCheck.Test.make ~name:"freedom-based valid at critical path" ~count:80
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      let s = Freedom.schedule g in
      Schedule.verify Limits.Unlimited s = Ok ())

let prop_serial_length_is_op_count =
  QCheck.Test.make ~name:"serial schedule length = op count" ~count:100
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      let s = List_sched.schedule ~limits:Limits.Serial g in
      Schedule.n_steps s = List.length (Dfg.compute_ops g))

(* ---- pipelined (modulo) scheduling — Sehwa ---- *)

let test_pipeline_modulo_legality () =
  let g = fig34_dfg () in
  (* 5 ops on 2 units cannot restart every 2 steps (2 slots x 2 = 4 < 5) *)
  Alcotest.(check bool) "ii=2 infeasible" true
    (Pipeline.schedule ~limits:limits2 ~ii:2 g = None);
  match Pipeline.schedule ~limits:limits2 ~ii:3 g with
  | None -> Alcotest.fail "ii=3 must be feasible"
  | Some r ->
      (* dependences still hold *)
      Alcotest.(check (result unit string)) "valid" (Ok ())
        (Schedule.verify Limits.Unlimited r.Pipeline.schedule);
      (* no modulo slot exceeds the limits *)
      List.iter
        (fun (_, counts) ->
          Alcotest.(check bool) "slot within limits" true
            (Limits.within limits2 ~counts))
        r.Pipeline.modulo_usage

let test_pipeline_min_ii_bound () =
  let g = fig34_dfg () in
  (* 5 ops on 2 units: at least ceil(5/2) = 3 between initiations *)
  Alcotest.(check int) "resource bound" 3 (Pipeline.resource_min_ii ~limits:limits2 g);
  let r = Pipeline.min_ii ~limits:limits2 g in
  Alcotest.(check int) "achieved" 3 r.Pipeline.ii

let test_pipeline_serial_ii_is_op_count () =
  let g = fig34_dfg () in
  let r = Pipeline.min_ii ~limits:Limits.Serial g in
  Alcotest.(check int) "serial ii = ops" 5 r.Pipeline.ii

let test_pipeline_throughput_monotone () =
  let g = fig34_dfg () in
  let rows = Pipeline.throughput_table ~limits:limits2 g in
  Alcotest.(check bool) "has rows" true (rows <> []);
  let total demand = List.fold_left (fun acc (_, k) -> acc + k) 0 demand in
  let rec decreasing = function
    | (_, _, d1) :: ((_, _, d2) :: _ as rest) ->
        total d1 > total d2 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "units strictly decrease with ii" true (decreasing rows)

let prop_pipeline_valid =
  QCheck.Test.make ~name:"modulo schedules are legal at min ii" ~count:80
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      let r = Pipeline.min_ii ~limits:(Limits.Total 2) g in
      Schedule.verify Limits.Unlimited r.Pipeline.schedule = Ok ()
      && List.for_all
           (fun (_, counts) -> Limits.within (Limits.Total 2) ~counts)
           r.Pipeline.modulo_usage)

(* ---- delay-aware chaining ---- *)

let test_chaining_long_period_packs () =
  let g = fig34_dfg () in
  (* a generous period chains whole dependence paths into few steps *)
  let wide = Chaining.schedule ~period_ns:500.0 ~limits:Limits.Unlimited g in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Chaining.verify wide);
  Alcotest.(check int) "everything chains into one step" 1 wide.Chaining.n_steps;
  (* a tight period breaks the mul->add chain: the critical path needs a
     second step (mul 60ns + add 18ns + overhead 4ns = 82 > 70) *)
  let tight = Chaining.schedule ~period_ns:70.0 ~limits:Limits.Unlimited g in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Chaining.verify tight);
  Alcotest.(check int) "chain split across two steps" 2 tight.Chaining.n_steps

let test_chaining_rejects_impossible_period () =
  let g = fig34_dfg () in
  Alcotest.(check bool) "too fast" true
    (try
       ignore (Chaining.schedule ~period_ns:10.0 ~limits:Limits.Unlimited g);
       false
     with Invalid_argument _ -> true)

let test_chaining_sweep_monotone () =
  let g = fig34_dfg () in
  let rows =
    Chaining.sweep ~limits:(Limits.Total 2)
      ~periods_ns:[ 70.0; 100.0; 150.0; 300.0; 600.0 ]
      g
  in
  Alcotest.(check bool) "has rows" true (List.length rows >= 3);
  (* longer periods never need more steps *)
  let rec non_increasing = function
    | (_, s1, _) :: ((_, s2, _) :: _ as rest) -> s1 >= s2 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "steps non-increasing in period" true (non_increasing rows)

let prop_chaining_valid =
  QCheck.Test.make ~name:"chained schedules verify" ~count:100 Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      List.for_all
        (fun period_ns ->
          List.for_all
            (fun limits ->
              let t = Chaining.schedule ~period_ns ~limits g in
              Chaining.verify ~limits t = Ok ())
            [ Limits.Unlimited; Limits.Total 2 ])
        [ 100.0; 250.0 ])

(* ---- 0/1 programming formulation (Hafer) ---- *)

let test_ilp_matches_bb () =
  let g = fig34_dfg () in
  match (Ilp_sched.schedule ~limits:limits2 g, Branch_bound.schedule ~limits:limits2 g) with
  | Some ilp, Some bb ->
      Alcotest.(check int) "same optimum" (Schedule.n_steps bb) (Schedule.n_steps ilp);
      Alcotest.(check (result unit string)) "valid" (Ok ()) (Schedule.verify limits2 ilp)
  | _ -> Alcotest.fail "both should solve"

let prop_ilp_optimal =
  QCheck.Test.make ~name:"0/1 formulation matches branch-and-bound" ~count:30
    Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed ~max_ops:7 seed in
      List.for_all
        (fun limits ->
          match (Ilp_sched.schedule ~limits g, Branch_bound.schedule ~limits g) with
          | Some ilp, Some bb ->
              Schedule.n_steps ilp = Schedule.n_steps bb
              && Schedule.verify limits ilp = Ok ()
          | _ -> false)
        [ Limits.Serial; Limits.Total 2 ])

let () =
  Alcotest.run "sched"
    [
      ( "figures",
        [
          Alcotest.test_case "Fig 3: ASAP blocks critical path" `Quick test_fig3_asap_suboptimal;
          Alcotest.test_case "Fig 4: list schedule optimal" `Quick test_fig4_list_optimal;
          Alcotest.test_case "Fig 4: B&B confirms optimum" `Quick test_fig4_bb_confirms;
          Alcotest.test_case "Fig 5: distribution graph" `Quick test_fig5_distribution;
          Alcotest.test_case "Fig 5: FDS balances" `Quick test_fig5_fds_balances;
          Alcotest.test_case "FDS rejects impossible deadline" `Quick test_fds_deadline_too_tight;
          Alcotest.test_case "Fig 2: 23 and 10 steps" `Quick test_fig2_lengths;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "freedom meets critical path" `Quick test_freedom_meets_critical_path;
          Alcotest.test_case "transformational legal" `Quick test_transformational_legal;
          Alcotest.test_case "serial compaction" `Quick test_serial_compaction_beats_serial;
          Alcotest.test_case "depgraph free-op chaining" `Quick test_depgraph_through_free_ops;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "modulo legality" `Quick test_pipeline_modulo_legality;
          Alcotest.test_case "min ii bound" `Quick test_pipeline_min_ii_bound;
          Alcotest.test_case "serial ii" `Quick test_pipeline_serial_ii_is_op_count;
          Alcotest.test_case "throughput curve" `Quick test_pipeline_throughput_monotone;
          QCheck_alcotest.to_alcotest prop_pipeline_valid;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "matches B&B" `Quick test_ilp_matches_bb;
          QCheck_alcotest.to_alcotest prop_ilp_optimal;
        ] );
      ( "chaining",
        [
          Alcotest.test_case "period drives packing" `Quick test_chaining_long_period_packs;
          Alcotest.test_case "impossible period" `Quick test_chaining_rejects_impossible_period;
          Alcotest.test_case "sweep monotone" `Quick test_chaining_sweep_monotone;
          QCheck_alcotest.to_alcotest prop_chaining_valid;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_all_schedulers_valid;
          QCheck_alcotest.to_alcotest prop_list_sched_matches_reference;
          QCheck_alcotest.to_alcotest prop_bb_is_optimal;
          QCheck_alcotest.to_alcotest prop_unconstrained_asap_is_critical_path;
          QCheck_alcotest.to_alcotest prop_fds_respects_deadline;
          QCheck_alcotest.to_alcotest prop_fds_matches_reference;
          QCheck_alcotest.to_alcotest prop_freedom_valid;
          QCheck_alcotest.to_alcotest prop_serial_length_is_op_count;
        ] );
    ]
