(* End-to-end flow tests: synthesis under a grid of option combinations
   with verification, design-space exploration properties, and report
   contents. *)

open Hls_core
open Hls_sched

(* ---- option grid ---- *)

let schedulers =
  [ Flow.Asap; Flow.List_path; Flow.List_mobility; Flow.Freedom; Flow.Branch_bound;
    Flow.Trans_parallel; Flow.Trans_serial ]

let allocators = [ `Clique; `Greedy_min_mux; `Greedy_first_fit ]

let fast_workloads = [ "sqrt"; "gcd"; "fir8"; "biquad3" ]

let test_scheduler_grid () =
  List.iter
    (fun name ->
      let src = Workloads.find name in
      List.iter
        (fun scheduler ->
          let options = { Flow.default_options with Flow.scheduler } in
          let d = Flow.synthesize ~options src in
          match Flow.verify ~runs:3 d with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s with %s: %s" name (Flow.scheduler_to_string scheduler) e)
        schedulers)
    fast_workloads

let test_allocator_grid () =
  List.iter
    (fun name ->
      let src = Workloads.find name in
      List.iter
        (fun allocator ->
          let options = { Flow.default_options with Flow.allocator } in
          let d = Flow.synthesize ~options src in
          match Flow.verify ~runs:3 d with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" name e)
        allocators)
    fast_workloads

let test_opt_level_grid () =
  List.iter
    (fun name ->
      let src = Workloads.find name in
      List.iter
        (fun spec ->
          let passes =
            match Hls_transform.Passes.pipeline_of_string spec with
            | Ok p -> p
            | Error e -> Alcotest.failf "pipeline %S: %s" spec e
          in
          let options = { Flow.default_options with Flow.passes } in
          let d = Flow.synthesize ~options src in
          match Flow.verify ~runs:3 d with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s under %s: %s" name spec e)
        [ "none"; "standard"; "aggressive"; "extract"; "standard+extract:latency" ])
    fast_workloads

let test_diffeq_full_default () =
  let d = Flow.synthesize Workloads.diffeq in
  match Flow.verify ~runs:3 d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "diffeq: %s" e

let test_if_conversion_option () =
  (* gcd's inner diamond becomes muxes; semantics preserved end to end *)
  let options = { Flow.default_options with Flow.if_conversion = true } in
  let d = Flow.synthesize ~options Workloads.gcd in
  (match Flow.verify ~runs:5 d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "if-converted gcd: %s" e);
  let plain = Flow.synthesize Workloads.gcd in
  Alcotest.(check bool) "fewer FSM states" true
    (Hls_sched.Cfg_sched.total_states d.Flow.sched
    < Hls_sched.Cfg_sched.total_states plain.Flow.sched)

let test_ilp_scheduler_option () =
  let options = { Flow.default_options with Flow.scheduler = Flow.Ilp_exact } in
  List.iter
    (fun name ->
      let d = Flow.synthesize ~options (Workloads.find name) in
      match Flow.verify ~runs:3 d with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s with ILP scheduler: %s" name e)
    [ "sqrt"; "gcd"; "twophase" ]

let test_invalid_source_reported () =
  Alcotest.(check bool) "frontend error" true
    (try
       ignore (Flow.synthesize "module m(; begin end");
       false
     with Hls_lang.Ast.Frontend_error _ -> true)

(* ---- optimization reduces or keeps cost ---- *)

let test_optimization_improves_sqrt () =
  let with_level l =
    Flow.synthesize
      ~options:{ Flow.default_options with Flow.passes = Hls_transform.Passes.level l }
      Workloads.sqrt_newton
  in
  let none = with_level `None in
  let std = with_level `Standard in
  Alcotest.(check bool) "standard not slower" true
    (std.Flow.estimate.Hls_rtl.Estimate.compute_steps
    <= none.Flow.estimate.Hls_rtl.Estimate.compute_steps);
  (* the paper's headline: 23 serial unoptimized, 10 on two FUs optimized *)
  let serial_none =
    Flow.synthesize
      ~options:
        {
          Flow.default_options with
          Flow.passes = Hls_transform.Passes.level `None;
          Flow.limits = Limits.Serial;
        }
      Workloads.sqrt_newton
  in
  Alcotest.(check int) "serial unoptimized = 23" 23
    serial_none.Flow.estimate.Hls_rtl.Estimate.compute_steps;
  Alcotest.(check int) "two FUs standard = 10" 10
    std.Flow.estimate.Hls_rtl.Estimate.compute_steps

(* ---- explore ---- *)

let test_explore_pareto () =
  let points = Explore.sweep_limits Workloads.sqrt_newton in
  let front = Explore.pareto points in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  (* no front point dominated by any other point *)
  List.iter
    (fun (p : Explore.point) ->
      List.iter
        (fun (q : Explore.point) ->
          Alcotest.(check bool) "not dominated" false
            (q.Explore.area <= p.Explore.area
            && q.Explore.latency_ns < p.Explore.latency_ns
            || (q.Explore.area < p.Explore.area
               && q.Explore.latency_ns <= p.Explore.latency_ns)))
        points)
    front;
  (* serial design is the slowest *)
  let serial = List.find (fun (p : Explore.point) -> p.Explore.label = "serial") points in
  List.iter
    (fun (p : Explore.point) ->
      Alcotest.(check bool) "serial slowest" true
        (p.Explore.latency_ns <= serial.Explore.latency_ns))
    points

let test_explore_table_renders () =
  let points = Explore.sweep_limits Workloads.gcd in
  let table = Explore.table points in
  Alcotest.(check bool) "has rows" true
    (List.length (String.split_on_char '\n' table) > List.length points)

(* ---- report ---- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_report_sections () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let r = Report.summary d in
  List.iter
    (fun s -> Alcotest.(check bool) s true (contains r s))
    [
      "synthesis report";
      "-- schedule --";
      "-- functional units --";
      "-- registers --";
      "-- interconnect --";
      "-- controller --";
      "-- estimate --";
    ]

let () =
  Alcotest.run "flow"
    [
      ( "grids",
        [
          Alcotest.test_case "schedulers" `Slow test_scheduler_grid;
          Alcotest.test_case "allocators" `Slow test_allocator_grid;
          Alcotest.test_case "optimization levels" `Slow test_opt_level_grid;
          Alcotest.test_case "diffeq default" `Quick test_diffeq_full_default;
          Alcotest.test_case "if-conversion option" `Quick test_if_conversion_option;
          Alcotest.test_case "ILP scheduler option" `Quick test_ilp_scheduler_option;
          Alcotest.test_case "frontend errors surface" `Quick test_invalid_source_reported;
        ] );
      ( "quality",
        [ Alcotest.test_case "optimization improves sqrt" `Quick test_optimization_improves_sqrt ] );
      ( "explore",
        [
          Alcotest.test_case "pareto" `Quick test_explore_pareto;
          Alcotest.test_case "table" `Quick test_explore_table_renders;
        ] );
      ("report", [ Alcotest.test_case "sections" `Quick test_report_sections ]);
    ]
