(* End-to-end smoke of `hlsc serve` (the @serve-smoke alias).

   Drives the real binary (argv.(1)) as a daemon subprocess over a Unix
   socket, twice, against one persistent cache directory:

     phase 1 — start, synth + dse request (computes, stores), shutdown;
     phase 2 — restart, repeat the same requests against the cold
               process, assert serve/disk_hits >= 1 in its stats and a
               bit-identical design_hash, clean shutdown.

   Both daemons must exit 0 — shutdown is a request, not a kill. *)

module J = Hls_util.Json
module Client = Hls_serve.Server.Client

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("serve_smoke: " ^ s); exit 1) fmt

let scratch = Printf.sprintf "%s/hlsc_serve_smoke_%d" (Filename.get_temp_dir_name ()) (Unix.getpid ())
let cache_dir = scratch ^ "/cache"

let start_daemon hlsc n =
  let socket = Printf.sprintf "%s/daemon%d.sock" scratch n in
  let pid =
    Unix.create_process hlsc
      [| hlsc; "serve"; "--socket"; socket; "--cache-dir"; cache_dir; "--workers"; "2" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let rec await tries =
    if tries = 0 then die "daemon %d: socket %s never appeared" n socket;
    if not (Sys.file_exists socket) then begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, status -> die "daemon %d died during startup (%s)" n (match status with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      Unix.sleepf 0.05;
      await (tries - 1)
    end
  in
  await 200;
  (pid, socket)

let request conn req =
  match Client.request conn req with
  | Ok reply -> reply
  | Error e -> die "request failed: %s" e

let str_field name json =
  match J.str_member name json with
  | Some s -> s
  | None -> die "missing %S in %s" name (J.to_string json)

let expect_ok what reply =
  if str_field "status" reply <> "ok" then die "%s: %s" what (J.to_string reply);
  reply

let design_hash reply =
  match J.member "design" reply with
  | Some d -> str_field "design_hash" d
  | None -> die "no design in %s" (J.to_string reply)

let synth_req = J.Obj [ ("cmd", J.Str "synth"); ("workload", J.Str "diffeq") ]

let dse_req =
  J.Obj
    [
      ("cmd", J.Str "dse");
      ("workload", J.Str "diffeq");
      ("points", J.Arr [ J.Obj [ ("fus", J.Num 1.0) ]; J.Obj [ ("fus", J.Num 3.0) ] ]);
    ]

let stats_field group name reply =
  match J.member group reply with
  | Some g -> Option.value ~default:0 (J.int_member name g)
  | None -> 0

let shutdown_and_reap conn pid n =
  ignore (expect_ok "shutdown" (request conn (J.Obj [ ("cmd", J.Str "shutdown") ])));
  Client.close conn;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "daemon %d exited %d after shutdown" n c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> die "daemon %d killed by signal %d" n s

let () =
  if Array.length Sys.argv < 2 then die "usage: serve_smoke HLSC_BINARY";
  let hlsc = Sys.argv.(1) in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)));
  Unix.mkdir scratch 0o755;

  (* phase 1: cold cache — compute and persist *)
  let pid1, sock1 = start_daemon hlsc 1 in
  let c1 = Client.connect sock1 in
  let hash1 = design_hash (expect_ok "phase 1 synth" (request c1 synth_req)) in
  ignore (expect_ok "phase 1 dse" (request c1 dse_req));
  let stats1 = expect_ok "phase 1 stats" (request c1 (J.Obj [ ("cmd", J.Str "stats") ])) in
  let misses1 = stats_field "serve" "serve/disk_misses" stats1 in
  if misses1 < 3 then die "phase 1: expected >= 3 disk misses, saw %d" misses1;
  shutdown_and_reap c1 pid1 1;
  if Hls_util.Disk_cache.entries ~dir:cache_dir = [] then die "phase 1 stored nothing";

  (* phase 2: a cold process over the warm store must answer from disk *)
  let pid2, sock2 = start_daemon hlsc 2 in
  let c2 = Client.connect sock2 in
  let hash2 = design_hash (expect_ok "phase 2 synth" (request c2 synth_req)) in
  ignore (expect_ok "phase 2 dse" (request c2 dse_req));
  let stats2 = expect_ok "phase 2 stats" (request c2 (J.Obj [ ("cmd", J.Str "stats") ])) in
  let hits2 = stats_field "serve" "serve/disk_hits" stats2 in
  if hits2 < 1 then die "phase 2: no disk hits after restart (stats: %s)" (J.to_string stats2);
  if hash1 <> hash2 then die "restart changed the design: %s vs %s" hash1 hash2;
  shutdown_and_reap c2 pid2 2;

  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)));
  Printf.printf
    "serve smoke: restart served from disk (%d hits), design %s stable across daemons\n"
    hits2 hash1
