(* Observability subsystem: the Hls_obs.Trace sink (counters, duration
   accumulators, span ring with parent links), the Timing view over it,
   the Chrome trace_event export and its shape checker, and the two
   contracts the tracing design rests on: a full synthesis covers all
   seven pipeline stages, and counter totals outside pool/ are
   identical whether a sweep runs on one domain or four. *)

open Hls_core
module Trace = Hls_obs.Trace
module J = Hls_util.Json

let fresh () =
  Trace.reset ();
  Trace.disable ()

(* ---- counters ---- *)

let test_counters () =
  fresh ();
  Alcotest.(check int) "untouched counter is 0" 0 (Trace.counter "t/x");
  Trace.incr "t/x";
  Trace.incr "t/x";
  Trace.add "t/x" 3;
  Alcotest.(check int) "incr/add accumulate" 5 (Trace.counter "t/x");
  Trace.record_max "t/peak" 4;
  Trace.record_max "t/peak" 2;
  Trace.record_max "t/peak" 7;
  Alcotest.(check int) "record_max keeps the max" 7 (Trace.counter "t/peak");
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("t/peak", 7); ("t/x", 5) ]
    (Trace.counters ());
  Trace.reset ();
  Alcotest.(check int) "reset clears counters" 0 (Trace.counter "t/x")

(* ---- spans ---- *)

let test_spans_nesting () =
  fresh ();
  Trace.enable ();
  Alcotest.(check bool) "no open span outside with_span" true
    (Trace.current_parent () = None);
  let v =
    Trace.with_span "outer" (fun () ->
        Alcotest.(check bool) "parent tracked" true
          (Trace.current_parent () = Some "outer");
        Trace.with_span ~args:[ ("k", "v") ] "inner" (fun () -> ());
        42)
  in
  Alcotest.(check int) "with_span returns the thunk's value" 42 v;
  match Trace.spans () with
  | [ inner; outer ] ->
      (* completion order: inner finishes first *)
      Alcotest.(check string) "inner name" "inner" inner.Trace.sp_name;
      Alcotest.(check bool) "inner parent is outer" true
        (inner.Trace.sp_parent = Some "outer");
      Alcotest.(check (list (pair string string)))
        "span args retained" [ ("k", "v") ] inner.Trace.sp_args;
      Alcotest.(check bool) "outer has no parent" true (outer.Trace.sp_parent = None);
      Alcotest.(check bool) "durations non-negative" true
        (inner.Trace.sp_dur >= 0.0 && outer.Trace.sp_dur >= 0.0)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_ring_overflow () =
  fresh ();
  Trace.enable ~capacity:4 ();
  for i = 1 to 10 do
    Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans ()) in
  Alcotest.(check (list string)) "ring keeps the newest, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ] names;
  Alcotest.(check int) "dropped counts the overwritten" 6 (Trace.dropped ())

let test_disabled_spans_still_time () =
  fresh ();
  Trace.with_span "quiet" (fun () -> ());
  Alcotest.(check int) "no span captured while disabled" 0
    (List.length (Trace.spans ()));
  Alcotest.(check bool) "duration accumulated anyway" true
    (List.exists (fun (stage, _, calls) -> stage = "quiet" && calls = 1)
       (Trace.durations_snapshot ()))

(* ---- the Timing view ---- *)

let test_timing_view () =
  fresh ();
  Timing.record "alpha" 0.25;
  Timing.record "alpha" 0.25;
  ignore (Timing.time "beta" (fun () -> 7));
  let snap = Timing.snapshot () in
  let entry stage =
    List.find (fun (e : Timing.entry) -> e.Timing.stage = stage) snap
  in
  Alcotest.(check int) "two recorded calls" 2 (entry "alpha").Timing.calls;
  Alcotest.(check (float 1e-9)) "seconds accumulate" 0.5 (entry "alpha").Timing.seconds;
  Alcotest.(check int) "Timing.time records one call" 1 (entry "beta").Timing.calls;
  Alcotest.(check bool) "Timing reads the Trace accumulators" true
    (List.exists (fun (s, _, _) -> s = "alpha") (Trace.durations_snapshot ()));
  Timing.reset ();
  Alcotest.(check int) "Timing.reset clears the view" 0
    (List.length (Timing.snapshot ()))

(* ---- Chrome export ---- *)

let test_chrome_trace_shape () =
  fresh ();
  Trace.enable ();
  (match Flow.synthesize_result Workloads.diffeq with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "diffeq failed to synthesize");
  let json = Metrics.chrome_trace () in
  (* round-trip through the writer and parser, as `hlsc trace` +
     `--validate` do *)
  let reparsed =
    match J.parse (J.to_string json) with
    | Ok j -> j
    | Error e -> Alcotest.failf "emitted trace does not reparse: %s" e
  in
  (match Metrics.validate_chrome reparsed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid Chrome trace: %s" e);
  Alcotest.(check (list string))
    "one synthesis covers all seven pipeline stages" Metrics.pipeline_stages
    (Metrics.covered_stages reparsed);
  match J.member "traceEvents" reparsed with
  | Some (J.Arr events) ->
      let phase ev = J.member "ph" ev in
      Alcotest.(check bool) "counter events are emitted" true
        (List.exists (fun ev -> phase ev = Some (J.Str "C")) events)
  | _ -> Alcotest.fail "traceEvents missing after reparse"

let test_validate_rejects () =
  let bad = J.Obj [ ("traceEvents", J.Arr []) ] in
  Alcotest.(check bool) "empty traceEvents rejected" true
    (Result.is_error (Metrics.validate_chrome bad));
  let bogus_phase =
    J.Obj
      [
        ( "traceEvents",
          J.Arr
            [
              J.Obj
                [
                  ("name", J.Str "x"); ("ph", J.Str "B"); ("ts", J.Num 0.0);
                  ("pid", J.Num 1.0);
                ];
            ] );
      ]
  in
  Alcotest.(check bool) "unexpected phase rejected" true
    (Result.is_error (Metrics.validate_chrome bogus_phase))

(* ---- determinism across worker counts ---- *)

let non_pool_counters () =
  List.filter
    (fun (k, _) -> not (String.length k > 5 && String.sub k 0 5 = "pool/"))
    (Trace.counters ())

let span_shape () =
  (* (name, parent) multiset: the span tree shape, ordering and
     domain placement aside *)
  List.sort compare
    (List.map (fun s -> (s.Trace.sp_name, s.Trace.sp_parent)) (Trace.spans ()))

let sweep_with ?(base = Flow.default_options) ~jobs () =
  fresh ();
  Trace.enable ~capacity:65536 ();
  let config = { Dse.default_config with Dse.jobs } in
  let points =
    Explore.sweep ~engine:(Dse.create ~config Workloads.diffeq) ~base Workloads.diffeq
  in
  (List.length points, non_pool_counters (), span_shape ())

let test_counters_jobs_independent () =
  let n1, c1, t1 = sweep_with ~jobs:1 () in
  let n4, c4, t4 = sweep_with ~jobs:4 () in
  Alcotest.(check int) "same point count" n1 n4;
  Alcotest.(check (list (pair string int)))
    "non-pool counter totals identical across jobs 1 and 4" c1 c4;
  Alcotest.(check bool) "span (name, parent) multiset identical" true (t1 = t4);
  Alcotest.(check bool) "cache layers actually counted" true
    (List.mem_assoc "dse/frontend.misses" c1 && List.assoc "dse/points" c1 = n1)

let test_range_counters_jobs_independent () =
  (* under [narrow] every backend completion runs the range analysis;
     its counters must not depend on domain placement *)
  let base = { Flow.default_options with Flow.narrow = true } in
  let _, c1, _ = sweep_with ~base ~jobs:1 () in
  let _, c4, _ = sweep_with ~base ~jobs:4 () in
  let range cs =
    List.filter (fun (k, _) -> String.length k > 6 && String.sub k 0 6 = "range/") cs
  in
  Alcotest.(check (list (pair string int)))
    "range/* totals identical across jobs 1 and 4" (range c1) (range c4);
  Alcotest.(check bool) "narrowing actually counted" true
    (match List.assoc_opt "range/narrowed_designs" c1 with
    | Some n -> n > 0
    | None -> false)

(* ---- Flow Result API ---- *)

let test_flow_result_api () =
  fresh ();
  let d =
    match Flow.synthesize_result ~verify:true Workloads.diffeq with
    | Ok d -> d
    | Error ds ->
        Alcotest.failf "verified synthesis failed: %s"
          (Hls_analysis.Diagnostic.summary ds)
  in
  (* the raising wrapper is a thin view over the Result API *)
  let d' = Flow.synthesize ~verify:true Workloads.diffeq in
  Alcotest.(check int) "wrapper and Result API agree on area"
    d.Flow.estimate.Hls_rtl.Estimate.total_area
    d'.Flow.estimate.Hls_rtl.Estimate.total_area;
  let tprog = (Flow.frontend Workloads.diffeq).Flow.c_prog in
  match Flow.run Flow.default_options tprog with
  | Ok d'' ->
      Alcotest.(check int) "Flow.run from a typed program matches"
        d.Flow.estimate.Hls_rtl.Estimate.total_area
        d''.Flow.estimate.Hls_rtl.Estimate.total_area
  | Error ds ->
      Alcotest.failf "Flow.run failed: %s" (Hls_analysis.Diagnostic.summary ds)

let () =
  fresh ();
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "span nesting and args" `Quick test_spans_nesting;
          Alcotest.test_case "ring overflow" `Quick test_span_ring_overflow;
          Alcotest.test_case "durations without capture" `Quick
            test_disabled_spans_still_time;
          Alcotest.test_case "Timing is a view over Trace" `Quick test_timing_view;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export shape and stage coverage" `Quick
            test_chrome_trace_shape;
          Alcotest.test_case "validator rejects bad traces" `Quick test_validate_rejects;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "counters independent of worker count" `Quick
            test_counters_jobs_independent;
          Alcotest.test_case "range counters independent of worker count" `Quick
            test_range_counters_jobs_independent;
        ] );
      ( "result-api",
        [ Alcotest.test_case "Flow result/wrapper agreement" `Quick test_flow_result_api ] );
    ]
