(* RTL tests: component library and module binding, datapath
   construction with netlist checks, wires, structural emission, and
   area/latency estimation trends. *)

open Hls_cdfg
open Hls_core
open Hls_rtl

(* ---- component binding ---- *)

let test_bind_cheapest () =
  let c = Component.bind ~cls:Op.C_alu ~ops:[ Op.Add; Op.Sub; Op.Incr ] in
  Alcotest.(check string) "add_sub suffices" "add_sub" c.Component.cname;
  let c2 = Component.bind ~cls:Op.C_alu ~ops:[ Op.Add; Op.And ] in
  Alcotest.(check string) "logic needs full alu" "alu" c2.Component.cname;
  let c3 = Component.bind ~cls:Op.C_mul ~ops:[ Op.Mul ] in
  Alcotest.(check string) "multiplier" "mult" c3.Component.cname;
  let c4 = Component.bind ~cls:Op.C_div ~ops:[ Op.Div; Op.Mod ] in
  Alcotest.(check string) "divider" "divider" c4.Component.cname

let test_bind_failure () =
  Alcotest.(check bool) "mul on alu fails" true
    (try
       ignore (Component.bind ~cls:Op.C_alu ~ops:[ Op.Mul ]);
       false
     with Not_found -> true)

let test_area_scales_with_width () =
  let c = Component.find "mult" in
  Alcotest.(check bool) "wider is bigger" true
    (Component.area c ~width:32 > Component.area c ~width:8)

(* ---- wires ---- *)

let test_wire_eval () =
  let ty = Hls_lang.Ast.Tint 8 in
  let w =
    Wire.W_mux
      ( Wire.W_zdetect (Wire.W_reg "a"),
        Wire.W_shl (Wire.W_const (3, ty), 1, ty),
        Wire.W_reg "b",
        ty )
  in
  let reg = function "a" -> 0 | "b" -> 9 | _ -> assert false in
  let fu _ = assert false in
  Alcotest.(check int) "mux true path" 6 (Wire.eval w ~reg ~fu);
  let reg2 = function "a" -> 5 | "b" -> 9 | _ -> assert false in
  Alcotest.(check int) "mux false path" 9 (Wire.eval w ~reg:reg2 ~fu);
  Alcotest.(check (list string)) "regs read" [ "a"; "b" ] (Wire.regs_read w);
  Alcotest.(check bool) "mux adds delay" true (Wire.depth_delay_ns w > 0.0)

(* ---- datapath + checks on every workload ---- *)

let test_all_workloads_check () =
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      match Check.run d.Flow.datapath with
      | Ok () -> ()
      | Error ds ->
          Alcotest.failf "%s: %s" name
            (String.concat "; " (List.map Hls_analysis.Diagnostic.to_string ds)))
    Workloads.all

let test_check_catches_double_booking () =
  (* force two ops of the same class into one step with a 1-unit clique
     allocation — impossible, so fabricate the defect directly *)
  let d = Flow.synthesize Workloads.sqrt_newton in
  let dp = d.Flow.datapath in
  match dp.Datapath.activities with
  | a :: rest ->
      let clash = { a with Datapath.a_state = (List.hd rest).Datapath.a_state; a_fu = (List.hd rest).Datapath.a_fu } in
      let broken = { dp with Datapath.activities = clash :: (List.hd rest) :: List.tl rest @ [ a ] } in
      (match Check.run broken with
      | Ok () -> Alcotest.fail "double booking not caught"
      | Error _ -> ())
  | [] -> Alcotest.fail "no activities"

(* ---- one failure test per Check rule ---- *)

let expect_code code dp =
  match Check.run dp with
  | Ok () -> Alcotest.failf "%s not caught" code
  | Error ds ->
      Alcotest.(check bool) (code ^ " reported") true
        (List.exists
           (fun (d : Hls_analysis.Diagnostic.t) -> d.Hls_analysis.Diagnostic.code = code)
           ds)

let checked = lazy (Flow.synthesize Workloads.gcd)
let checked_dp () = (Lazy.force checked).Flow.datapath
let i8 = Hls_lang.Ast.Tint 8

let test_rtl001_missing_reg_read () =
  let dp = checked_dp () in
  let reg = (List.hd dp.Datapath.regs).Datapath.rname in
  let bad = { Datapath.l_state = 9999; l_reg = reg; l_wire = Wire.W_reg "ghost" } in
  expect_code "RTL001" { dp with Datapath.loads = bad :: dp.Datapath.loads }

let test_rtl002_double_booking () =
  let dp = checked_dp () in
  match dp.Datapath.activities with
  | a :: _ -> expect_code "RTL002" { dp with Datapath.activities = a :: dp.Datapath.activities }
  | [] -> Alcotest.fail "no activities"

let test_rtl003_inexecutable_op () =
  let dp = checked_dp () in
  match
    List.find_opt
      (fun (a : Datapath.activity) ->
        let f = Datapath.fu_of dp a.Datapath.a_fu in
        not (Component.executes f.Datapath.comp Op.Div))
      dp.Datapath.activities
  with
  | Some a ->
      let acts =
        List.map
          (fun (x : Datapath.activity) ->
            if x == a then { x with Datapath.a_op = Op.Div } else x)
          dp.Datapath.activities
      in
      expect_code "RTL003" { dp with Datapath.activities = acts }
  | None -> Alcotest.fail "every unit divides"

let test_rtl004_same_state_chaining () =
  let dp = checked_dp () in
  match dp.Datapath.activities with
  | a :: rest ->
      let chained = { a with Datapath.a_args = [ Wire.W_fu_out (a.Datapath.a_fu, i8) ] } in
      expect_code "RTL004" { dp with Datapath.activities = chained :: rest }
  | [] -> Alcotest.fail "no activities"

let test_rtl005_double_drive () =
  let dp = checked_dp () in
  match dp.Datapath.loads with
  | l :: _ -> expect_code "RTL005" { dp with Datapath.loads = l :: dp.Datapath.loads }
  | [] -> Alcotest.fail "no loads"

let test_rtl006_load_missing_reg () =
  let dp = checked_dp () in
  let bad = { Datapath.l_state = 9999; l_reg = "ghost"; l_wire = Wire.W_const (0, i8) } in
  expect_code "RTL006" { dp with Datapath.loads = bad :: dp.Datapath.loads }

let test_rtl007_idle_unit_consumed () =
  let dp = checked_dp () in
  let reg = (List.hd dp.Datapath.regs).Datapath.rname in
  let fuid = (List.hd dp.Datapath.fus).Datapath.fuid in
  (* state 9999 exists nowhere, so the unit is certainly idle there *)
  let bad = { Datapath.l_state = 9999; l_reg = reg; l_wire = Wire.W_fu_out (fuid, i8) } in
  expect_code "RTL007" { dp with Datapath.loads = bad :: dp.Datapath.loads }

let test_rtl008_branch_without_cond () =
  let dp = checked_dp () in
  Alcotest.(check bool) "gcd branches" true (dp.Datapath.conds <> []);
  expect_code "RTL008" { dp with Datapath.conds = [] }

let test_rtl009_ghost_unit () =
  let dp = checked_dp () in
  match dp.Datapath.activities with
  | a :: rest ->
      expect_code "RTL009"
        { dp with Datapath.activities = { a with Datapath.a_fu = 99 } :: rest }
  | [] -> Alcotest.fail "no activities"

(* ---- emission ---- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_emit_verilog () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let v = Emit.verilog ~name:"sqrt" d.Flow.datapath in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (contains v fragment))
    [ "module sqrt"; "endmodule"; "case (state)"; "posedge clk"; "assign done" ]

let test_emit_dot () =
  let d = Flow.synthesize Workloads.gcd in
  let dot = Emit.dot d.Flow.datapath in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "has register node" true (contains dot "reg_")

(* ---- estimation ---- *)

let test_estimate_trends () =
  let opts limits = { Flow.default_options with Flow.limits } in
  let serial = Flow.synthesize ~options:(opts Hls_sched.Limits.Serial) Workloads.sqrt_newton in
  let two = Flow.synthesize ~options:(opts Hls_sched.Limits.two_fu) Workloads.sqrt_newton in
  Alcotest.(check bool) "two FUs faster" true
    (two.Flow.estimate.Estimate.latency_ns < serial.Flow.estimate.Estimate.latency_ns);
  List.iter
    (fun (d : Flow.design) ->
      let e = d.Flow.estimate in
      Alcotest.(check bool) "areas positive" true
        (e.Estimate.fu_area > 0 && e.Estimate.reg_area > 0 && e.Estimate.ctrl_area > 0);
      Alcotest.(check int) "total is the sum"
        (e.Estimate.fu_area + e.Estimate.reg_area + e.Estimate.mux_area + e.Estimate.ctrl_area)
        e.Estimate.total_area;
      Alcotest.(check bool) "cycle covers a unit delay" true (e.Estimate.cycle_ns > 10.0))
    [ serial; two ]

let test_estimate_row () =
  let d = Flow.synthesize Workloads.gcd in
  Alcotest.(check int) "row arity" 4 (List.length (Estimate.to_row d.Flow.estimate))

let () =
  Alcotest.run "rtl"
    [
      ( "component",
        [
          Alcotest.test_case "bind cheapest" `Quick test_bind_cheapest;
          Alcotest.test_case "bind failure" `Quick test_bind_failure;
          Alcotest.test_case "area scaling" `Quick test_area_scales_with_width;
        ] );
      ("wire", [ Alcotest.test_case "eval" `Quick test_wire_eval ]);
      ( "datapath",
        [
          Alcotest.test_case "all workloads pass checks" `Quick test_all_workloads_check;
          Alcotest.test_case "lint catches double booking" `Quick test_check_catches_double_booking;
        ] );
      ( "check rules",
        [
          Alcotest.test_case "RTL001 missing register read" `Quick test_rtl001_missing_reg_read;
          Alcotest.test_case "RTL002 double booking" `Quick test_rtl002_double_booking;
          Alcotest.test_case "RTL003 inexecutable op" `Quick test_rtl003_inexecutable_op;
          Alcotest.test_case "RTL004 same-state chaining" `Quick test_rtl004_same_state_chaining;
          Alcotest.test_case "RTL005 double drive" `Quick test_rtl005_double_drive;
          Alcotest.test_case "RTL006 load into missing register" `Quick test_rtl006_load_missing_reg;
          Alcotest.test_case "RTL007 idle unit consumed" `Quick test_rtl007_idle_unit_consumed;
          Alcotest.test_case "RTL008 branch without cond" `Quick test_rtl008_branch_without_cond;
          Alcotest.test_case "RTL009 ghost unit" `Quick test_rtl009_ghost_unit;
        ] );
      ( "emit",
        [
          Alcotest.test_case "verilog" `Quick test_emit_verilog;
          Alcotest.test_case "dot" `Quick test_emit_dot;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "trends" `Quick test_estimate_trends;
          Alcotest.test_case "report row" `Quick test_estimate_row;
        ] );
    ]
