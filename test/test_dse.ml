(* DSE engine tests: the worker pool (real domains, result ordering,
   exception propagation), the JSON emitter/parser behind the benchmark
   report, determinism of the memoized parallel sweep (jobs=1 = jobs=4 =
   unmemoized serial, design for design), cache-layer accounting, and
   the structural Pareto marking in Explore.table. *)

open Hls_util
open Hls_core

(* ---- worker pool ---- *)

let test_pool_map_order () =
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "jobs=4 preserves input order" (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_pool_inline () =
  Alcotest.(check (list int)) "jobs=1 runs inline" [ 2; 4 ] (Pool.map (( * ) 2) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty list" [] (Pool.map ~jobs:4 Fun.id [])

let test_pool_more_jobs_than_work () =
  Alcotest.(check (list int))
    "8 workers, 3 items" [ 1; 2; 3 ]
    (Pool.map ~jobs:8 Fun.id [ 1; 2; 3 ])

let test_pool_exception () =
  Alcotest.check_raises "first exception in input order wins"
    (Failure "boom 2")
    (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x >= 2 then failwith (Printf.sprintf "boom %d" x) else x)
           [ 0; 1; 2; 3; 4 ]))

let test_pool_submit_after_shutdown () =
  let p = Pool.create ~workers:2 in
  let hits = Atomic.make 0 in
  Pool.submit p (fun () -> Atomic.incr hits);
  Pool.submit p (fun () -> Atomic.incr hits);
  Pool.shutdown p;
  Alcotest.(check int) "queued tasks ran" 2 (Atomic.get hits);
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.submit: pool is shut down")
    (fun () -> Pool.submit p (fun () -> ()))

let test_pool_lazy_no_spawn () =
  (* a sweep that fits one chunk must run inline: no domain spawned,
     whatever the machine *)
  let spawned0 = Hls_obs.Trace.counter "pool/domains_spawned" in
  let fallbacks0 = Hls_obs.Trace.counter "pool/serial_fallbacks" in
  let r = Pool.map ~jobs:8 (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "result" [ 2; 3; 4 ] r;
  Alcotest.(check int) "no domain spawned for a one-chunk sweep" spawned0
    (Hls_obs.Trace.counter "pool/domains_spawned");
  Alcotest.(check bool) "serial fallback engaged" true
    (Hls_obs.Trace.counter "pool/serial_fallbacks" > fallbacks0)

let test_pool_explicit_chunked () =
  (* an explicit pool with spare workers exercises the chunked path
     deterministically even on a single-core machine *)
  let p = Pool.create ~workers:2 in
  let xs = List.init 24 Fun.id in
  let spawned0 = Hls_obs.Trace.counter "pool/domains_spawned" in
  let r = Pool.map ~pool:p ~jobs:2 (fun x -> x * 3) xs in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * 3) xs) r;
  Alcotest.(check bool) "worker spawned lazily on demand" true
    (Hls_obs.Trace.counter "pool/domains_spawned" > spawned0);
  Alcotest.(check (list int)) "pool is reusable" xs (Pool.map ~pool:p ~jobs:2 Fun.id xs);
  Alcotest.check_raises "first exception in input order through chunks"
    (Failure "boom 7") (fun () ->
      ignore
        (Pool.map ~pool:p ~jobs:2
           (fun x -> if x >= 7 then failwith (Printf.sprintf "boom %d" x) else x)
           xs));
  Pool.shutdown p

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "dse \"bench\"\n");
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.Arr [ Json.Num 1.0; Json.Num (-2.5); Json.Obj [] ]);
        ("empty", Json.Arr []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)

let test_json_accessors () =
  let v = Json.Obj [ ("speedup", Json.Num 2.5); ("ok", Json.Bool true) ] in
  Alcotest.(check (option (float 1e-9)))
    "member/to_float" (Some 2.5)
    (Option.bind (Json.member "speedup" v) Json.to_float);
  Alcotest.(check (option bool))
    "member/to_bool" (Some true)
    (Option.bind (Json.member "ok" v) Json.to_bool);
  Alcotest.(check (option bool)) "missing member" None
    (Option.bind (Json.member "nope" v) Json.to_bool)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ---- engine determinism ---- *)

let signature (d : Flow.design) =
  ( d.Flow.estimate.Hls_rtl.Estimate.total_area,
    d.Flow.estimate.Hls_rtl.Estimate.latency_ns,
    d.Flow.estimate.Hls_rtl.Estimate.compute_steps,
    Hls_alloc.Fu_alloc.n_units d.Flow.fu,
    Hls_alloc.Reg_alloc.n_registers d.Flow.regs,
    List.length d.Flow.transfers,
    Hls_sched.Cfg_sched.digest d.Flow.sched )

let sweep ~memoize ~jobs src =
  let config = { Dse.default_config with Dse.jobs; memoize } in
  Explore.sweep ~engine:(Dse.create ~config src) src

let test_sweep_deterministic () =
  let src = Workloads.diffeq in
  let serial = sweep ~memoize:false ~jobs:1 src in
  let memo1 = sweep ~memoize:true ~jobs:1 src in
  let memo4 = sweep ~memoize:true ~jobs:4 src in
  let sg l = List.map (fun p -> signature p.Explore.design) l in
  let labels l = List.map (fun p -> p.Explore.label) l in
  Alcotest.(check int) "40 points" 40 (List.length serial);
  Alcotest.(check bool) "labels stable" true
    (labels serial = labels memo1 && labels memo1 = labels memo4);
  Alcotest.(check bool) "memoized jobs=1 = unmemoized serial" true (sg serial = sg memo1);
  Alcotest.(check bool) "jobs=4 = jobs=1" true (sg memo1 = sg memo4)

let test_point_keeps_own_options () =
  (* a backend cache hit must be rewrapped with the point's options *)
  let src = Workloads.diffeq in
  let points = sweep ~memoize:true ~jobs:1 src in
  List.iter
    (fun (p : Explore.point) ->
      Alcotest.(check bool)
        (p.Explore.label ^ " carries its own options")
        true
        (p.Explore.options = p.Explore.design.Flow.options))
    points

let test_cache_accounting () =
  let src = Workloads.diffeq in
  let engine = Dse.create src in
  let points = Explore.sweep ~engine src in
  let s = Dse.stats engine in
  let n = List.length points in
  let total l = l.Dse.hits + l.Dse.misses in
  Alcotest.(check int) "frontend probed per point" n (total s.Dse.frontend);
  Alcotest.(check int) "frontend compiled once" 1 s.Dse.frontend.Dse.misses;
  Alcotest.(check int) "one midend per (opt,ifc)" 1 s.Dse.midend.Dse.misses;
  Alcotest.(check bool) "schedule layer shares limit-ignoring schedulers" true
    (s.Dse.schedule.Dse.misses < n);
  Alcotest.(check bool) "backend layer shares coinciding schedules" true
    (s.Dse.backend.Dse.misses < n && s.Dse.backend.Dse.hits > 0);
  (* a second identical sweep is answered entirely from the cache *)
  let again = Explore.sweep ~engine src in
  let s2 = Dse.stats engine in
  Alcotest.(check int) "no new backend misses" s.Dse.backend.Dse.misses
    s2.Dse.backend.Dse.misses;
  Alcotest.(check bool) "same results" true
    (List.map (fun p -> signature p.Explore.design) points
    = List.map (fun p -> signature p.Explore.design) again);
  Dse.clear engine;
  let s3 = Dse.stats engine in
  Alcotest.(check int) "clear zeroes counters" 0
    (total s3.Dse.frontend + total s3.Dse.midend + total s3.Dse.schedule
   + total s3.Dse.backend)

(* ---- pipeline specs as cache keys ---- *)

module P = Hls_transform.Passes

let pipeline spec =
  match P.pipeline_of_string spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "pipeline %S: %s" spec e

let popts spec = { Flow.default_options with Flow.passes = pipeline spec }

let test_pipeline_roundtrip () =
  List.iter
    (fun s ->
      let p = pipeline s in
      let c = P.pipeline_to_string p in
      match P.pipeline_of_string c with
      | Error e -> Alcotest.failf "canonical %S of %S: %s" c s e
      | Ok p' ->
          Alcotest.(check bool)
            (Printf.sprintf "%S -> %S round-trips" s c)
            true (p = p'))
    [
      "none"; "standard"; "aggressive"; "extract"; "standard+facts";
      "none+extract:latency"; "aggressive+extract:area"; "forward,cse,dce";
      "const-fold"; "rule:mul-const-chain"; "rules:strength,dce";
    ]

let test_pipeline_canonical_names () =
  let canon s = P.pipeline_to_string (pipeline s) in
  Alcotest.(check string) "named spec prints as its name" "standard" (canon "standard");
  Alcotest.(check string) "spelled-out standard canonicalizes" "standard"
    (canon "forward,const-fold,cse,strength,dce");
  Alcotest.(check string) "modifier survives canonicalization" "standard+extract:latency"
    (canon "standard+extract:latency")

let test_pipeline_rejects_garbage () =
  List.iter
    (fun s ->
      match P.pipeline_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "bogus"; "cse,bogus"; "standard+nope"; "standard+extract:speed" ]

let test_pipeline_memo_sensitivity () =
  (* same source, different --passes: never the same cache entry *)
  let engine = Dse.create Workloads.sqrt_newton in
  let d_none = Dse.eval engine (popts "none") in
  let d_std = Dse.eval engine (popts "standard") in
  let s = Dse.stats engine in
  Alcotest.(check int) "distinct pipelines miss separately" 2 s.Dse.midend.Dse.misses;
  Alcotest.(check bool) "designs differ" true (signature d_none <> signature d_std);
  (* the same spec spelled differently is the same key *)
  let d_std2 = Dse.eval engine (popts "forward,const-fold,cse,strength,dce") in
  let s2 = Dse.stats engine in
  Alcotest.(check int) "equal spec shares the entry" 2 s2.Dse.midend.Dse.misses;
  Alcotest.(check bool) "same design back" true (signature d_std = signature d_std2)

let test_pipeline_disk_sensitivity () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsc_dse_pipe_%d" (Unix.getpid ()))
  in
  let config = { Dse.default_config with Dse.cache_dir = Some dir } in
  let e = Dse.create ~config Workloads.gcd in
  ignore (Dse.eval e (popts "none"));
  ignore (Dse.eval e (popts "extract"));
  Alcotest.(check int) "two pipelines, two disk entries" 2
    (List.length (Disk_cache.entries ~dir))

(* ---- pruned sweeps ---- *)

let psig (p : Explore.point) = (p.Explore.label, signature p.Explore.design)

let check_pruned_matches ?schedulers ?iterates src =
  let all = Explore.sweep ?schedulers ?iterates src in
  let pr = Explore.sweep_pruned ?schedulers ?iterates src in
  Alcotest.(check int) "evaluated + pruned = total" (List.length all)
    (List.length pr.Explore.evaluated + List.length pr.Explore.pruned);
  Alcotest.(check bool) "frontier identical to the exhaustive sweep" true
    (List.map psig (Explore.pareto all)
    = List.map psig (Explore.pareto pr.Explore.evaluated))

let test_pruned_matches_exhaustive () =
  List.iter check_pruned_matches
    [ Workloads.diffeq; Workloads.sqrt_newton; Workloads.gcd ];
  (* a reduced scheduler matrix takes a different promotion path *)
  check_pruned_matches ~schedulers:[ Flow.Asap; Flow.Freedom; Flow.Trans_serial ]
    Workloads.fir8;
  (* refined points ride the schedule-free bounds: the frontier must
     still be exact when one-shot and iterated points compete *)
  check_pruned_matches
    ~schedulers:[ Flow.Asap; Flow.Freedom; Flow.Trans_serial ]
    ~iterates:[ 0; 2 ] Workloads.diffeq

let test_pruned_counters () =
  Hls_obs.Trace.reset ();
  let pr = Explore.sweep_pruned Workloads.diffeq in
  let ev = Hls_obs.Trace.counter "dse/points_evaluated" in
  let pd = Hls_obs.Trace.counter "dse/pruned_points" in
  Alcotest.(check int) "evaluated counter" (List.length pr.Explore.evaluated) ev;
  Alcotest.(check int) "pruned counter" (List.length pr.Explore.pruned) pd;
  Alcotest.(check int) "counters partition the sweep" 40 (ev + pd);
  Alcotest.(check bool) "something was pruned" true (pd > 0);
  Alcotest.(check bool) "at most half promoted through the backend" true (2 * ev <= 40);
  Alcotest.(check bool) "took more than one round" true (pr.Explore.rounds > 1)

let test_bounds_sound () =
  (* the frontier-identity argument rests on Bound.compute never
     exceeding the true estimate; check it on every workload. The
     exhaustive schedulers (branch-and-bound, 0/1-programming) blow up
     on the larger specifications, so bound the matrix to the
     polynomial ones — the bounds only read the schedule, not the
     scheduler that produced it. *)
  let schedulers = [ Flow.Asap; Flow.List_path; Flow.Freedom; Flow.Trans_serial ] in
  List.iter
    (fun (name, src) ->
      let engine = Dse.create src in
      (* iterate > 0 points exercise the schedule-free branch of the
         bounds: refinement may ship a different schedule than the one
         ranked, so the bound must hold for the refined estimate too *)
      let points = Explore.sweep ~engine ~schedulers ~iterates:[ 0; 2 ] src in
      List.iter
        (fun (p : Explore.point) ->
          let o, cs = Dse.eval_cheap engine p.Explore.options in
          let area_lb, lat_lb = Explore.Bound.compute p.Explore.options o cs in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: area bound %d <= %d" name p.Explore.label
               area_lb p.Explore.area)
            true (area_lb <= p.Explore.area);
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: latency bound %.1f <= %.1f" name
               p.Explore.label lat_lb p.Explore.latency_ns)
            true
            (lat_lb <= p.Explore.latency_ns +. 1e-6))
        points)
    Workloads.all

(* ---- feedback refinement ---- *)

let refine_schedulers = [ Flow.Asap; Flow.List_path; Flow.Freedom; Flow.Trans_serial ]

let test_refine_never_worse_and_terminates () =
  (* the acceptance loop only keeps strict Pareto improvements, so the
     refined design can never be worse than its one-shot seed on either
     coordinate; and on every workload x scheduler the loop must reach
     a fixpoint before a generous bound (termination is not just the
     bound firing). A loop that accepted nothing must hand back the
     seed itself, not a rebuilt copy. *)
  List.iter
    (fun (name, src) ->
      let engine = Dse.create src in
      List.iter
        (fun s ->
          let opts = { Flow.default_options with Flow.scheduler = s } in
          let o, _ = Dse.eval_cheap engine opts in
          match Flow.backend_result opts o with
          | Error _ -> ()
          | Ok seed ->
              let tag = Printf.sprintf "%s/%s" name (Flow.scheduler_to_string s) in
              let d, iters =
                Flow.refine_design { opts with Flow.iterate = 4 } o seed
              in
              Alcotest.(check bool) (tag ^ ": converged before the bound") true
                (iters < 4);
              Alcotest.(check bool) (tag ^ ": area never worse") true
                (d.Flow.estimate.Hls_rtl.Estimate.total_area
                <= seed.Flow.estimate.Hls_rtl.Estimate.total_area);
              Alcotest.(check bool) (tag ^ ": latency never worse") true
                (d.Flow.estimate.Hls_rtl.Estimate.latency_ns
                <= seed.Flow.estimate.Hls_rtl.Estimate.latency_ns +. 1e-6);
              if iters = 0 then
                Alcotest.(check bool)
                  (tag ^ ": no-acceptance fixpoint is the seed itself")
                  true (d == seed)
              else begin
                (* re-refining from the refined design's options makes
                   no further progress through the engine either: the
                   iterated point is a fixpoint of one more iteration *)
                let d2, _ = Flow.refine_design { opts with Flow.iterate = 4 } o seed in
                Alcotest.(check string) (tag ^ ": refinement is deterministic")
                  (Dse.design_digest d) (Dse.design_digest d2)
              end)
        refine_schedulers)
    Workloads.all

let refine_counters () =
  List.map
    (fun c -> (c, Hls_obs.Trace.counter ("refine/" ^ c)))
    [ "candidates"; "infeasible"; "duplicates"; "rejected"; "accepted"; "iterations" ]

let test_refine_jobs_deterministic () =
  (* refine/* counters and the final designs must not depend on the job
     count: refinement runs inside the memoized backend stage, and the
     single-flight memo plus decisions-at-await keep every loop run
     identical whether points evaluate serially or on worker domains *)
  let src = Workloads.diffeq in
  let run jobs =
    Hls_obs.Trace.reset ();
    let config = { Dse.default_config with Dse.jobs } in
    let points =
      Explore.sweep
        ~engine:(Dse.create ~config src)
        ~schedulers:refine_schedulers ~iterates:[ 0; 3 ] src
    in
    (List.map (fun (p : Explore.point) -> psig p) points, refine_counters ())
  in
  let sigs1, counters1 = run 1 in
  let sigs4, counters4 = run 4 in
  Alcotest.(check bool) "some refinement work happened" true
    (List.assoc "candidates" counters1 > 0);
  Alcotest.(check bool) "jobs=4 designs = jobs=1 designs" true (sigs1 = sigs4);
  Alcotest.(check (list (pair string int))) "refine/* counters identical" counters1
    counters4

let test_refine_memo_key_sensitivity () =
  (* the refinement layer is keyed on (backend seed, effective limits,
     iterate): one-shot points never touch it, equal bounds share one
     entry, distinct bounds miss separately — and the seed itself is
     computed once for all of them *)
  let engine = Dse.create Workloads.diffeq in
  (* freedom-scheduled diffeq is a seed the loop strictly improves *)
  let opts it =
    { Flow.default_options with Flow.scheduler = Flow.Freedom; Flow.iterate = it }
  in
  let d0 = Dse.eval engine (opts 0) in
  let s0 = Dse.stats engine in
  Alcotest.(check int) "one-shot point skips the refine layer" 0
    (s0.Dse.refine.Dse.hits + s0.Dse.refine.Dse.misses);
  let d2 = Dse.eval engine (opts 2) in
  let s2 = Dse.stats engine in
  Alcotest.(check int) "first iterated point misses" 1 s2.Dse.refine.Dse.misses;
  Alcotest.(check int) "iterated point reuses the one-shot seed"
    s0.Dse.backend.Dse.misses s2.Dse.backend.Dse.misses;
  let d2' = Dse.eval engine (opts 2) in
  let s2' = Dse.stats engine in
  Alcotest.(check int) "equal bound shares the entry" 1 s2'.Dse.refine.Dse.misses;
  Alcotest.(check bool) "hit recorded" true (s2'.Dse.refine.Dse.hits > 0);
  Alcotest.(check bool) "same design back" true (signature d2 = signature d2');
  ignore (Dse.eval engine (opts 3));
  let s3 = Dse.stats engine in
  Alcotest.(check int) "a different bound misses separately" 2
    s3.Dse.refine.Dse.misses;
  Alcotest.(check bool) "refinement improved diffeq's one-shot design" true
    (signature d0 <> signature d2)

let test_refine_disk_key_sensitivity () =
  (* --iterate participates in the persistent point key: a one-shot
     entry can never answer for an iterated point or vice versa *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsc_dse_refine_%d" (Unix.getpid ()))
  in
  let config = { Dse.default_config with Dse.cache_dir = Some dir } in
  let e = Dse.create ~config Workloads.diffeq in
  ignore (Dse.eval e { Flow.default_options with Flow.iterate = 0 });
  ignore (Dse.eval e { Flow.default_options with Flow.iterate = 2 });
  ignore (Dse.eval e { Flow.default_options with Flow.iterate = 3 });
  Alcotest.(check int) "three iterate bounds, three disk entries" 3
    (List.length (Disk_cache.entries ~dir))

(* ---- pareto marking ---- *)

let test_frontier_mask_matches_reference () =
  (* small value ranges force heavy ties and duplicates — the cases
     where a sort-based scan is easy to get wrong *)
  let rng = Random.State.make [| 7 |] in
  let dom (qa, ql) (pa, pl) = (qa <= pa && ql < pl) || (qa < pa && ql <= pl) in
  for _ = 1 to 100 do
    let n = 1 + Random.State.int rng 60 in
    let pts =
      List.init n (fun _ ->
          (Random.State.int rng 8, float_of_int (Random.State.int rng 8)))
    in
    let reference =
      List.map (fun p -> not (List.exists (fun q -> dom q p) pts)) pts
    in
    Alcotest.(check (list bool)) "mask = quadratic reference" reference
      (Explore.frontier_mask pts)
  done;
  Alcotest.(check (list bool)) "empty" [] (Explore.frontier_mask [])

let test_table_marks_structural_copies () =
  let src = Workloads.sqrt_newton in
  let points = Explore.sweep_limits src in
  (* rebuild every point record so no row is physically equal to any
     frontier member — the marking must still appear *)
  let copies = List.map (fun (p : Explore.point) -> { p with Explore.label = p.Explore.label }) points in
  let stars s = List.length (String.split_on_char '*' s) - 1 in
  let marked = stars (Explore.table points) in
  Alcotest.(check bool) "some rows are on the frontier" true (marked > 0);
  Alcotest.(check int) "copied records marked identically" marked
    (stars (Explore.table copies))

let () =
  Alcotest.run "dse"
    [
      ( "pool",
        [
          Alcotest.test_case "map order (4 domains)" `Quick test_pool_map_order;
          Alcotest.test_case "inline and empty" `Quick test_pool_inline;
          Alcotest.test_case "more workers than work" `Quick test_pool_more_jobs_than_work;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "shutdown" `Quick test_pool_submit_after_shutdown;
          Alcotest.test_case "lazy spawn: one chunk stays inline" `Quick
            test_pool_lazy_no_spawn;
          Alcotest.test_case "explicit pool: chunked path" `Quick
            test_pool_explicit_chunked;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sweep deterministic across jobs" `Quick test_sweep_deterministic;
          Alcotest.test_case "points keep their options" `Quick test_point_keeps_own_options;
          Alcotest.test_case "cache accounting" `Quick test_cache_accounting;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "spec round-trip" `Quick test_pipeline_roundtrip;
          Alcotest.test_case "canonical names" `Quick test_pipeline_canonical_names;
          Alcotest.test_case "rejects garbage" `Quick test_pipeline_rejects_garbage;
          Alcotest.test_case "memo key sensitivity" `Quick test_pipeline_memo_sensitivity;
          Alcotest.test_case "disk key sensitivity" `Quick test_pipeline_disk_sensitivity;
        ] );
      ( "pruned",
        [
          Alcotest.test_case "frontier identical to exhaustive" `Quick
            test_pruned_matches_exhaustive;
          Alcotest.test_case "counters partition the sweep" `Quick
            test_pruned_counters;
          Alcotest.test_case "lower bounds never exceed the estimate" `Slow
            test_bounds_sound;
        ] );
      ( "refine",
        [
          Alcotest.test_case "never worse, converges, fixpoint identity" `Slow
            test_refine_never_worse_and_terminates;
          Alcotest.test_case "counters and designs independent of jobs" `Quick
            test_refine_jobs_deterministic;
          Alcotest.test_case "memo key sensitivity to --iterate" `Quick
            test_refine_memo_key_sensitivity;
          Alcotest.test_case "disk key sensitivity to --iterate" `Quick
            test_refine_disk_key_sensitivity;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "structural frontier marking" `Quick
            test_table_marks_structural_copies;
          Alcotest.test_case "mask matches quadratic reference" `Quick
            test_frontier_mask_matches_reference;
        ] );
    ]
