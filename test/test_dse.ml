(* DSE engine tests: the worker pool (real domains, result ordering,
   exception propagation), the JSON emitter/parser behind the benchmark
   report, determinism of the memoized parallel sweep (jobs=1 = jobs=4 =
   unmemoized serial, design for design), cache-layer accounting, and
   the structural Pareto marking in Explore.table. *)

open Hls_util
open Hls_core

(* ---- worker pool ---- *)

let test_pool_map_order () =
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "jobs=4 preserves input order" (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_pool_inline () =
  Alcotest.(check (list int)) "jobs=1 runs inline" [ 2; 4 ] (Pool.map (( * ) 2) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty list" [] (Pool.map ~jobs:4 Fun.id [])

let test_pool_more_jobs_than_work () =
  Alcotest.(check (list int))
    "8 workers, 3 items" [ 1; 2; 3 ]
    (Pool.map ~jobs:8 Fun.id [ 1; 2; 3 ])

let test_pool_exception () =
  Alcotest.check_raises "first exception in input order wins"
    (Failure "boom 2")
    (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x >= 2 then failwith (Printf.sprintf "boom %d" x) else x)
           [ 0; 1; 2; 3; 4 ]))

let test_pool_submit_after_shutdown () =
  let p = Pool.create ~workers:2 in
  let hits = Atomic.make 0 in
  Pool.submit p (fun () -> Atomic.incr hits);
  Pool.submit p (fun () -> Atomic.incr hits);
  Pool.shutdown p;
  Alcotest.(check int) "queued tasks ran" 2 (Atomic.get hits);
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pool.submit: pool is shut down")
    (fun () -> Pool.submit p (fun () -> ()))

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "dse \"bench\"\n");
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.Arr [ Json.Num 1.0; Json.Num (-2.5); Json.Obj [] ]);
        ("empty", Json.Arr []);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)

let test_json_accessors () =
  let v = Json.Obj [ ("speedup", Json.Num 2.5); ("ok", Json.Bool true) ] in
  Alcotest.(check (option (float 1e-9)))
    "member/to_float" (Some 2.5)
    (Option.bind (Json.member "speedup" v) Json.to_float);
  Alcotest.(check (option bool))
    "member/to_bool" (Some true)
    (Option.bind (Json.member "ok" v) Json.to_bool);
  Alcotest.(check (option bool)) "missing member" None
    (Option.bind (Json.member "nope" v) Json.to_bool)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ---- engine determinism ---- *)

let signature (d : Flow.design) =
  ( d.Flow.estimate.Hls_rtl.Estimate.total_area,
    d.Flow.estimate.Hls_rtl.Estimate.latency_ns,
    d.Flow.estimate.Hls_rtl.Estimate.compute_steps,
    Hls_alloc.Fu_alloc.n_units d.Flow.fu,
    Hls_alloc.Reg_alloc.n_registers d.Flow.regs,
    List.length d.Flow.transfers,
    Hls_sched.Cfg_sched.digest d.Flow.sched )

let sweep ~memoize ~jobs src =
  let config = { Dse.default_config with Dse.jobs; memoize } in
  Explore.sweep ~engine:(Dse.create ~config src) src

let test_sweep_deterministic () =
  let src = Workloads.diffeq in
  let serial = sweep ~memoize:false ~jobs:1 src in
  let memo1 = sweep ~memoize:true ~jobs:1 src in
  let memo4 = sweep ~memoize:true ~jobs:4 src in
  let sg l = List.map (fun p -> signature p.Explore.design) l in
  let labels l = List.map (fun p -> p.Explore.label) l in
  Alcotest.(check int) "40 points" 40 (List.length serial);
  Alcotest.(check bool) "labels stable" true
    (labels serial = labels memo1 && labels memo1 = labels memo4);
  Alcotest.(check bool) "memoized jobs=1 = unmemoized serial" true (sg serial = sg memo1);
  Alcotest.(check bool) "jobs=4 = jobs=1" true (sg memo1 = sg memo4)

let test_point_keeps_own_options () =
  (* a backend cache hit must be rewrapped with the point's options *)
  let src = Workloads.diffeq in
  let points = sweep ~memoize:true ~jobs:1 src in
  List.iter
    (fun (p : Explore.point) ->
      Alcotest.(check bool)
        (p.Explore.label ^ " carries its own options")
        true
        (p.Explore.options = p.Explore.design.Flow.options))
    points

let test_cache_accounting () =
  let src = Workloads.diffeq in
  let engine = Dse.create src in
  let points = Explore.sweep ~engine src in
  let s = Dse.stats engine in
  let n = List.length points in
  let total l = l.Dse.hits + l.Dse.misses in
  Alcotest.(check int) "frontend probed per point" n (total s.Dse.frontend);
  Alcotest.(check int) "frontend compiled once" 1 s.Dse.frontend.Dse.misses;
  Alcotest.(check int) "one midend per (opt,ifc)" 1 s.Dse.midend.Dse.misses;
  Alcotest.(check bool) "schedule layer shares limit-ignoring schedulers" true
    (s.Dse.schedule.Dse.misses < n);
  Alcotest.(check bool) "backend layer shares coinciding schedules" true
    (s.Dse.backend.Dse.misses < n && s.Dse.backend.Dse.hits > 0);
  (* a second identical sweep is answered entirely from the cache *)
  let again = Explore.sweep ~engine src in
  let s2 = Dse.stats engine in
  Alcotest.(check int) "no new backend misses" s.Dse.backend.Dse.misses
    s2.Dse.backend.Dse.misses;
  Alcotest.(check bool) "same results" true
    (List.map (fun p -> signature p.Explore.design) points
    = List.map (fun p -> signature p.Explore.design) again);
  Dse.clear engine;
  let s3 = Dse.stats engine in
  Alcotest.(check int) "clear zeroes counters" 0
    (total s3.Dse.frontend + total s3.Dse.midend + total s3.Dse.schedule
   + total s3.Dse.backend)

(* ---- pareto marking ---- *)

let test_table_marks_structural_copies () =
  let src = Workloads.sqrt_newton in
  let points = Explore.sweep_limits src in
  (* rebuild every point record so no row is physically equal to any
     frontier member — the marking must still appear *)
  let copies = List.map (fun (p : Explore.point) -> { p with Explore.label = p.Explore.label }) points in
  let stars s = List.length (String.split_on_char '*' s) - 1 in
  let marked = stars (Explore.table points) in
  Alcotest.(check bool) "some rows are on the frontier" true (marked > 0);
  Alcotest.(check int) "copied records marked identically" marked
    (stars (Explore.table copies))

let () =
  Alcotest.run "dse"
    [
      ( "pool",
        [
          Alcotest.test_case "map order (4 domains)" `Quick test_pool_map_order;
          Alcotest.test_case "inline and empty" `Quick test_pool_inline;
          Alcotest.test_case "more workers than work" `Quick test_pool_more_jobs_than_work;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "shutdown" `Quick test_pool_submit_after_shutdown;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sweep deterministic across jobs" `Quick test_sweep_deterministic;
          Alcotest.test_case "points keep their options" `Quick test_point_keeps_own_options;
          Alcotest.test_case "cache accounting" `Quick test_cache_accounting;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "structural frontier marking" `Quick
            test_table_marks_structural_copies;
        ] );
    ]
