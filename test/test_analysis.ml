(* Analysis tests: mutation tests that inject one defect per IR level
   and assert the exact rule code the checker reports, plus the clean
   matrix — every workload under every scheduler/allocator combination
   must lint without errors or warnings. *)

open Hls_lang
open Hls_cdfg
open Hls_analysis
open Hls_core
module D = Diagnostic

let i8 = Ast.Tint 8
let has_code c ds = List.exists (fun (d : D.t) -> d.D.code = c) ds

let check_code name code ds =
  Alcotest.(check bool) (Printf.sprintf "%s flags %s" name code) true (has_code code ds)

let check_clean name ds =
  Alcotest.(check (list string)) (name ^ " is clean") []
    (List.map D.to_string (D.errors ds))

(* ---- diagnostics ---- *)

let test_diag_basics () =
  let d = D.error D.Sched ~code:"SCHED001" (D.Step (1, 2)) "op %%%d too early" 4 in
  Alcotest.(check string) "to_string" "error[SCHED001] block 1 step 2: op %4 too early"
    (D.to_string d);
  let w = D.warning D.Cdfg ~code:"CDFG003" (D.Block 3) "dead" in
  let i = D.info D.Ctrl ~code:"CTRL009" (D.Field "x") "dead field" in
  Alcotest.(check bool) "floor keeps errors" true (D.meets ~floor:D.Warning d);
  Alcotest.(check bool) "floor drops info" false (D.meets ~floor:D.Warning i);
  Alcotest.(check int) "filter" 2 (List.length (D.filter ~floor:D.Warning [ d; w; i ]));
  Alcotest.(check string) "summary empty" "clean" (D.summary []);
  (* sort: stage order first (Cdfg before Sched before Ctrl) *)
  (match D.sort [ i; d; w ] with
  | [ a; b; c ] ->
      Alcotest.(check string) "sorted stages" "cdfg,sched,ctrl"
        (String.concat "," (List.map (fun (x : D.t) -> D.stage_to_string x.D.stage) [ a; b; c ]))
  | _ -> Alcotest.fail "sort lost elements");
  match D.to_json d with
  | Hls_util.Json.Obj fields ->
      Alcotest.(check bool) "json has code" true
        (List.assoc_opt "code" fields = Some (Hls_util.Json.Str "SCHED001"))
  | _ -> Alcotest.fail "to_json is not an object"

(* ---- CDFG mutations ---- *)

let block_with term =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let cfg = Cfg.create () in
  let b = Cfg.add_block cfg g (term a) in
  Cfg.set_entry cfg b;
  cfg

let test_cdfg_dangling_target () =
  let cfg = block_with (fun _ -> Cfg.Goto 7) in
  check_code "goto 7" "CDFG001" (Cdfg_check.check cfg)

let test_cdfg_bad_branch_cond () =
  (* condition is the int-typed Read, not a bool *)
  let cfg = block_with (fun a -> Cfg.Branch (a, 0, 0)) in
  check_code "int cond" "CDFG002" (Cdfg_check.check cfg)

let test_cdfg_unreachable_block () =
  let cfg = block_with (fun _ -> Cfg.Halt) in
  let g = Dfg.create () in
  ignore (Cfg.add_block cfg ~label:"orphan" g Cfg.Halt);
  check_code "orphan" "CDFG003" (Cdfg_check.check cfg)

let test_cdfg_type_rules () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let b = Dfg.add g (Op.Read "b") [] i8 in
  (* comparison producing int, and a mux whose condition is int *)
  let c = Dfg.add g (Op.Cmp Op.Clt) [ a; b ] i8 in
  ignore (Dfg.add g Op.Mux [ a; b; c ] i8);
  let cfg = Cfg.create () in
  Cfg.set_entry cfg (Cfg.add_block cfg g Cfg.Halt);
  let ds = Cdfg_check.check cfg in
  check_code "cmp:int" "CDFG006" ds;
  Alcotest.(check bool) "two type errors" true
    (List.length (List.filter (fun (d : D.t) -> d.D.code = "CDFG006") ds) >= 2)

(* ---- range/width mutations ----

   Each rule gets one handcrafted CFG exhibiting exactly the defect the
   rule describes, driven through {!Width_check.check} (which runs the
   range analysis itself). [~ports:[]] starts every variable at the
   simulators' zero initial store; omitting it leaves variables
   unconstrained. *)

let halt_block g =
  let cfg = Cfg.create () in
  Cfg.set_entry cfg (Cfg.add_block cfg g Cfg.Halt);
  cfg

let test_range_constant_cmp () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Const 5) [] i8 in
  let b = Dfg.add g (Op.Const 3) [] i8 in
  let c = Dfg.add g (Op.Cmp Op.Clt) [ a; b ] Ast.Tbool in
  ignore (Dfg.add g (Op.Write "out") [ c ] Ast.Tbool);
  check_code "5 < 3" "RANGE001" (Width_check.check (halt_block g))

let test_range_dead_edge () =
  let cfg = Cfg.create () in
  let b1 = Cfg.add_block cfg (Dfg.create ()) Cfg.Halt in
  let b2 = Cfg.add_block cfg (Dfg.create ()) Cfg.Halt in
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Const 1) [] i8 in
  let b = Dfg.add g (Op.Const 2) [] i8 in
  let c = Dfg.add g (Op.Cmp Op.Clt) [ a; b ] Ast.Tbool in
  let b0 = Cfg.add_block cfg g (Cfg.Branch (c, b1, b2)) in
  Cfg.set_entry cfg b0;
  check_code "1 < 2 never false" "RANGE002" (Width_check.check cfg)

let test_range_constant_write () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Const 2) [] i8 in
  let b = Dfg.add g (Op.Const 3) [] i8 in
  let x = Dfg.add g Op.Add [ a; b ] i8 in
  ignore (Dfg.add g (Op.Write "v") [ x ] i8);
  check_code "v := 2 + 3" "RANGE003" (Width_check.check (halt_block g))

let test_range_div_by_zero () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let d = Dfg.add g (Op.Read "d") [] i8 in
  (* no ports: [d] spans the full signed range, including zero *)
  let q = Dfg.add g Op.Div [ a; d ] i8 in
  ignore (Dfg.add g (Op.Write "q") [ q ] i8);
  check_code "unconstrained divisor" "RANGE004" (Width_check.check (halt_block g))

let test_width_certain_wrap () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Const 100) [] i8 in
  let x = Dfg.add g Op.Add [ a; a ] i8 in
  ignore (Dfg.add g (Op.Write "v") [ x ] i8);
  check_code "100 + 100 in 8 bits" "WIDTH001" (Width_check.check (halt_block g))

let test_width_oversized_variable () =
  let g = Dfg.create () in
  let c = Dfg.add g (Op.Const 3) [] i8 in
  ignore (Dfg.add g (Op.Write "v") [ c ] i8);
  (* zero-initialised store: v only ever holds 0 or 3 *)
  check_code "8-bit v holds 3" "WIDTH002" (Width_check.check ~ports:[] (halt_block g))

let test_width_full_shift () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let k = Dfg.add g (Op.Const 8) [] i8 in
  let x = Dfg.add g Op.Shl [ a; k ] i8 in
  ignore (Dfg.add g (Op.Write "v") [ x ] i8);
  check_code "a << 8 at 8 bits" "WIDTH003" (Width_check.check (halt_block g))

(* range facts feed the aggressive-level constant folder: the folded
   design must still agree with the unoptimized behavioral reference *)
let test_range_fold_cosim () =
  List.iter
    (fun (name, src) ->
      let options =
        { Flow.default_options with Flow.passes = Hls_transform.Passes.level `Aggressive }
      in
      let d = Flow.synthesize ~options src in
      match Flow.verify ~runs:3 d with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s (aggressive): %s" name e))
    Workloads.all

(* narrowing is area-only: bit-identical designs, never larger *)
let test_narrow_cosim_and_area () =
  List.iter
    (fun (name, src) ->
      let base = Flow.synthesize src in
      let narrow =
        Flow.synthesize ~options:{ Flow.default_options with Flow.narrow = true } src
      in
      (match Flow.verify ~runs:3 narrow with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s (narrow): %s" name e));
      Alcotest.(check bool)
        (Printf.sprintf "%s: narrowed area never larger" name)
        true
        (narrow.Flow.estimate.Hls_rtl.Estimate.total_area
        <= base.Flow.estimate.Hls_rtl.Estimate.total_area))
    Workloads.all

(* ---- schedule mutations ---- *)

let chain_dfg () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let b = Dfg.add g (Op.Read "b") [] i8 in
  let x = Dfg.add g Op.Add [ a; b ] i8 in
  let y = Dfg.add g Op.Add [ x; b ] i8 in
  ignore (Dfg.add g (Op.Write "out") [ y ] i8);
  (g, x, y)

let test_sched_dependence_violation () =
  let g, _, _ = chain_dfg () in
  (* y consumes x's value in the very step x computes it *)
  let sched = Hls_sched.Schedule.make g ~steps:(fun _ -> 1) in
  check_code "same step" "SCHED001" (Sched_check.check_block ~bid:0 sched)

let test_sched_over_limit () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let b = Dfg.add g (Op.Read "b") [] i8 in
  let x = Dfg.add g Op.Add [ a; b ] i8 in
  let y = Dfg.add g Op.Sub [ a; b ] i8 in
  ignore (Dfg.add g (Op.Write "o1") [ x ] i8);
  ignore (Dfg.add g (Op.Write "o2") [ y ] i8);
  let sched = Hls_sched.Schedule.make g ~steps:(fun _ -> 1) in
  let ds = Sched_check.check_block ~limits:(Hls_sched.Limits.Total 1) ~bid:0 sched in
  check_code "two alu ops, one unit" "SCHED002" ds;
  check_clean "same schedule, two units"
    (Sched_check.check_block ~limits:(Hls_sched.Limits.Total 2) ~bid:0 sched)

let test_sched_empty_step () =
  let g, x, y = chain_dfg () in
  let sched =
    Hls_sched.Schedule.make g ~steps:(fun n -> if n = x then 1 else if n = y then 3 else 1)
  in
  check_code "hole at step 2" "SCHED003" (Sched_check.check_block ~bid:0 sched)

(* ---- allocation mutations (on a real design) ---- *)

let design = lazy (Flow.synthesize Workloads.diffeq)

let test_alloc_unbound_op () =
  let d = Lazy.force design in
  let fu = { Hls_alloc.Fu_alloc.instances = []; op_units = d.Flow.fu.Hls_alloc.Fu_alloc.op_units } in
  check_code "no instances" "ALLOC003" (Alloc_check.check_fu d.Flow.sched fu)

let mutate_first_instance f (fu : Hls_alloc.Fu_alloc.t) =
  match fu.Hls_alloc.Fu_alloc.instances with
  | inst :: rest -> { fu with Hls_alloc.Fu_alloc.instances = f inst :: rest }
  | [] -> Alcotest.fail "design has no functional units"

let test_alloc_wrong_class () =
  let d = Lazy.force design in
  let flip cls = if cls = Op.C_mul then Op.C_alu else Op.C_mul in
  let fu =
    mutate_first_instance
      (fun inst -> { inst with Hls_alloc.Fu_alloc.fu_cls = flip inst.Hls_alloc.Fu_alloc.fu_cls })
      d.Flow.fu
  in
  check_code "class flip" "ALLOC001" (Alloc_check.check_fu d.Flow.sched fu)

let test_alloc_slot_clash () =
  let d = Lazy.force design in
  let fu =
    mutate_first_instance
      (fun inst ->
        match inst.Hls_alloc.Fu_alloc.ops with
        | r :: _ -> { inst with Hls_alloc.Fu_alloc.ops = r :: inst.Hls_alloc.Fu_alloc.ops }
        | [] -> Alcotest.fail "unit binds no operations")
      d.Flow.fu
  in
  check_code "duplicated op_ref" "ALLOC002" (Alloc_check.check_fu d.Flow.sched fu)

let test_alloc_stale_step () =
  let d = Lazy.force design in
  let fu =
    mutate_first_instance
      (fun inst ->
        match inst.Hls_alloc.Fu_alloc.ops with
        | r :: rest ->
            {
              inst with
              Hls_alloc.Fu_alloc.ops =
                { r with Hls_alloc.Fu_alloc.step = r.Hls_alloc.Fu_alloc.step + 1 } :: rest;
            }
        | [] -> Alcotest.fail "unit binds no operations")
      d.Flow.fu
  in
  check_code "step bumped" "ALLOC004" (Alloc_check.check_fu d.Flow.sched fu)

let test_alloc_missing_track () =
  let d = Lazy.force design in
  let ds =
    Alloc_check.check_registers d.Flow.sched
      ~temp_track:(fun _ _ -> None)
      ~groups:(Hls_alloc.Reg_alloc.variable_groups d.Flow.regs)
      ~outputs:(Flow.output_names d.Flow.prog)
  in
  check_code "all tracks dropped" "ALLOC006" ds

let test_alloc_overlapping_tracks () =
  let d = Lazy.force design in
  let ds =
    Alloc_check.check_registers d.Flow.sched
      ~temp_track:(fun _ _ -> Some 0)
      ~groups:(Hls_alloc.Reg_alloc.variable_groups d.Flow.regs)
      ~outputs:(Flow.output_names d.Flow.prog)
  in
  check_code "all temps on one track" "ALLOC005" ds

let test_alloc_interfering_group () =
  let d = Lazy.force design in
  let groups = Hls_alloc.Reg_alloc.variable_groups d.Flow.regs in
  let ds =
    Alloc_check.check_registers d.Flow.sched
      ~temp_track:(Hls_alloc.Reg_alloc.temp_track d.Flow.regs)
      ~groups:[ List.concat groups ]
      ~outputs:(Flow.output_names d.Flow.prog)
  in
  check_code "all variables merged" "ALLOC007" ds

let test_alloc_transfer_drift () =
  let d = Lazy.force design in
  let check given =
    Alloc_check.check_transfers d.Flow.sched ~fu:d.Flow.fu ~regs:d.Flow.regs given
  in
  (match d.Flow.transfers with
  | t :: rest ->
      check_code "dropped transfer" "ALLOC009" (check rest);
      check_code "duplicated transfer" "ALLOC010" (check (t :: t :: rest))
  | [] -> Alcotest.fail "design has no transfers");
  check_clean "unmutated transfers" (check d.Flow.transfers)

(* ---- controller mutations ---- *)

let st sid = { Hls_ctrl.Fsm.sid; block = 0; step = sid + 1 }
let tr t_from t_guard t_to = { Hls_ctrl.Fsm.t_from; t_guard; t_to }

let test_ctrl_no_outgoing () =
  let ds =
    Ctrl_check.check_fsm ~states:[ st 0; st 1 ]
      ~transitions:[ tr 0 Hls_ctrl.Fsm.G_always 1 ]
      ~entry:0
  in
  check_code "wedged state" "CTRL003" ds

let test_ctrl_conflicting_transitions () =
  let ds =
    Ctrl_check.check_fsm ~states:[ st 0; st 1 ]
      ~transitions:
        [
          tr 0 Hls_ctrl.Fsm.G_always 1;
          tr 0 Hls_ctrl.Fsm.G_always 0;
          tr 1 Hls_ctrl.Fsm.G_always 1;
        ]
      ~entry:0
  in
  check_code "two unconditional exits" "CTRL002" ds

let test_ctrl_single_polarity () =
  let ds =
    Ctrl_check.check_fsm ~states:[ st 0; st 1 ]
      ~transitions:
        [ tr 0 (Hls_ctrl.Fsm.G_cond (true, 0)) 1; tr 1 Hls_ctrl.Fsm.G_always 1 ]
      ~entry:0
  in
  check_code "no false edge" "CTRL004" ds

let test_ctrl_bad_endpoint () =
  let ds =
    Ctrl_check.check_fsm ~states:[ st 0 ] ~transitions:[ tr 0 Hls_ctrl.Fsm.G_always 9 ]
      ~entry:0
  in
  check_code "edge to 9" "CTRL005" ds

let test_ctrl_unreachable_state () =
  let ds =
    Ctrl_check.check_fsm
      ~states:[ st 0; st 1; st 2 ]
      ~transitions:
        [
          tr 0 Hls_ctrl.Fsm.G_always 0;
          tr 1 Hls_ctrl.Fsm.G_always 2;
          tr 2 Hls_ctrl.Fsm.G_always 1;
        ]
      ~entry:0
  in
  check_code "island 1<->2" "CTRL001" ds

let test_ctrl_code_collision () =
  let ds = Ctrl_check.check_encoding ~states:[ st 0; st 1 ] ~code:(fun _ -> 0) in
  check_code "constant encoder" "CTRL006" ds

let test_ctrl_next_state_disagrees () =
  let states = [ st 0; st 1 ] in
  let transitions = [ tr 0 Hls_ctrl.Fsm.G_always 1; tr 1 Hls_ctrl.Fsm.G_always 1 ] in
  let ds =
    Ctrl_check.check_next ~states ~transitions ~next:(fun ~state:_ ~conds:_ -> 0)
  in
  check_code "next always 0" "CTRL007" ds;
  check_clean "faithful next"
    (Ctrl_check.check_next ~states ~transitions ~next:(fun ~state:_ ~conds:_ -> 1))

let test_ctrl_microcode_misfit () =
  let fields = [ { Hls_ctrl.Microcode.fname = "reg_en"; fwidth = 2 } ] in
  check_code "value 5 in 2 bits" "CTRL008"
    (Ctrl_check.check_microcode ~fields ~words:[| [ 5 ] |]);
  check_code "wrong field count" "CTRL008"
    (Ctrl_check.check_microcode ~fields ~words:[| [ 1; 2 ] |])

let test_ctrl_dead_field () =
  let fields = [ { Hls_ctrl.Microcode.fname = "x"; fwidth = 1 } ] in
  check_code "constant field" "CTRL009"
    (Ctrl_check.check_microcode ~fields ~words:[| [ 1 ]; [ 1 ] |])

let test_ctrl_microcode_dead_resource () =
  let d = Lazy.force design in
  let _, words = Flow.microcode_image d in
  let n_regs = List.length d.Flow.datapath.Hls_rtl.Datapath.regs in
  (* set a reg_en bit some state's datapath never loads *)
  let mutated = ref false in
  let words =
    Array.map
      (fun word ->
        match word with
        | [ enables; op; br ] when not !mutated ->
            let rec free i =
              if i >= n_regs then None
              else if enables land (1 lsl i) = 0 then Some i
              else free (i + 1)
            in
            (match free 0 with
            | Some i ->
                mutated := true;
                [ enables lor (1 lsl i); op; br ]
            | None -> word)
        | word -> word)
      words
  in
  Alcotest.(check bool) "found a bit to flip" true !mutated;
  check_code "phantom enable" "CTRL010" (Flow.lint_microcode d ~words)

(* ---- lint driver ---- *)

let test_lint_rule_table () =
  let codes = List.map fst Lint.rules in
  Alcotest.(check int) "codes unique" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  Alcotest.(check bool) "covers all stages" true
    (List.for_all
       (fun prefix ->
         List.exists (fun c -> String.length c > 4 && String.sub c 0 4 = prefix) codes)
       [ "CDFG"; "SCHE"; "ALLO"; "CTRL" ])

let test_lint_failed_propagates () =
  let d = Lazy.force design in
  let broken = { d with Flow.transfers = List.tl d.Flow.transfers } in
  match Flow.lint_check broken with
  | () -> Alcotest.fail "mutated design passed lint"
  | exception Flow.Lint_failed ds -> check_code "propagated list" "ALLOC009" ds

let test_lint_floor () =
  let d = Lazy.force design in
  let all = Lint.run d in
  let errs = Lint.run ~floor:D.Error d in
  Alcotest.(check bool) "floor is a subset" true (List.length errs <= List.length all);
  Alcotest.(check (list string)) "design has no errors" [] (List.map D.to_string errs)

let test_verify_flag () =
  (* ~verify:true must pass on a clean design, through Flow and Dse,
     cache hits included *)
  ignore (Flow.synthesize ~verify:true Workloads.gcd);
  let eng =
    Dse.create ~config:{ Dse.default_config with Dse.verify = true } Workloads.gcd
  in
  let o = Flow.default_options in
  ignore (Dse.eval eng o);
  ignore (Dse.eval eng o)

(* ---- the clean matrix ---- *)

let test_clean_matrix () =
  let schedulers =
    [
      Flow.Asap;
      Flow.List_path;
      Flow.List_mobility;
      Flow.Force_directed 0;
      Flow.Freedom;
      Flow.Branch_bound;
      Flow.Ilp_exact;
      Flow.Trans_parallel;
      Flow.Trans_serial;
    ]
  in
  let allocators = [ `Clique; `Greedy_min_mux; `Greedy_first_fit ] in
  List.iter
    (fun (name, src) ->
      let eng = Dse.create src in
      List.iter
        (fun scheduler ->
          List.iter
            (fun allocator ->
              let options = { Flow.default_options with Flow.scheduler; allocator } in
              let d = Dse.eval eng options in
              let offenders = D.filter ~floor:D.Warning (Flow.lint d) in
              Alcotest.(check (list string))
                (Printf.sprintf "%s/%s" name (Flow.scheduler_to_string scheduler))
                []
                (List.map D.to_string offenders))
            allocators)
        schedulers)
    Workloads.all

let () =
  Alcotest.run "analysis"
    [
      ("diagnostic", [ Alcotest.test_case "basics" `Quick test_diag_basics ]);
      ( "cdfg",
        [
          Alcotest.test_case "dangling target" `Quick test_cdfg_dangling_target;
          Alcotest.test_case "bad branch cond" `Quick test_cdfg_bad_branch_cond;
          Alcotest.test_case "unreachable block" `Quick test_cdfg_unreachable_block;
          Alcotest.test_case "type rules" `Quick test_cdfg_type_rules;
        ] );
      ( "range",
        [
          Alcotest.test_case "constant comparison" `Quick test_range_constant_cmp;
          Alcotest.test_case "dead branch edge" `Quick test_range_dead_edge;
          Alcotest.test_case "constant write" `Quick test_range_constant_write;
          Alcotest.test_case "possible zero divisor" `Quick test_range_div_by_zero;
          Alcotest.test_case "certain wrap" `Quick test_width_certain_wrap;
          Alcotest.test_case "oversized variable" `Quick test_width_oversized_variable;
          Alcotest.test_case "full-width shift" `Quick test_width_full_shift;
          Alcotest.test_case "aggressive fold cosim" `Quick test_range_fold_cosim;
          Alcotest.test_case "narrow cosim and area" `Quick test_narrow_cosim_and_area;
        ] );
      ( "sched",
        [
          Alcotest.test_case "dependence violation" `Quick test_sched_dependence_violation;
          Alcotest.test_case "over limit" `Quick test_sched_over_limit;
          Alcotest.test_case "empty step" `Quick test_sched_empty_step;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "unbound op" `Quick test_alloc_unbound_op;
          Alcotest.test_case "wrong class" `Quick test_alloc_wrong_class;
          Alcotest.test_case "slot clash" `Quick test_alloc_slot_clash;
          Alcotest.test_case "stale step" `Quick test_alloc_stale_step;
          Alcotest.test_case "missing track" `Quick test_alloc_missing_track;
          Alcotest.test_case "overlapping tracks" `Quick test_alloc_overlapping_tracks;
          Alcotest.test_case "interfering group" `Quick test_alloc_interfering_group;
          Alcotest.test_case "transfer drift" `Quick test_alloc_transfer_drift;
        ] );
      ( "ctrl",
        [
          Alcotest.test_case "no outgoing" `Quick test_ctrl_no_outgoing;
          Alcotest.test_case "conflicting transitions" `Quick
            test_ctrl_conflicting_transitions;
          Alcotest.test_case "single polarity" `Quick test_ctrl_single_polarity;
          Alcotest.test_case "bad endpoint" `Quick test_ctrl_bad_endpoint;
          Alcotest.test_case "unreachable state" `Quick test_ctrl_unreachable_state;
          Alcotest.test_case "code collision" `Quick test_ctrl_code_collision;
          Alcotest.test_case "next-state disagrees" `Quick test_ctrl_next_state_disagrees;
          Alcotest.test_case "microcode misfit" `Quick test_ctrl_microcode_misfit;
          Alcotest.test_case "dead field" `Quick test_ctrl_dead_field;
          Alcotest.test_case "dead resource" `Quick test_ctrl_microcode_dead_resource;
        ] );
      ( "lint",
        [
          Alcotest.test_case "rule table" `Quick test_lint_rule_table;
          Alcotest.test_case "Lint_failed propagates" `Quick test_lint_failed_propagates;
          Alcotest.test_case "severity floor" `Quick test_lint_floor;
          Alcotest.test_case "verify flag" `Quick test_verify_flag;
          Alcotest.test_case "clean matrix" `Quick test_clean_matrix;
        ] );
    ]
