(* Allocation tests: left-edge register packing (REAL), clique
   partitioning (Fig 7), greedy constructive allocation with local
   cost-aware selection (Fig 6), lifetime analysis, register allocation
   and interconnect/bus allocation. *)

open Hls_lang
open Hls_util
open Hls_cdfg
open Hls_sched
open Hls_alloc

let i16 = Ast.Tint 16

(* ---- left edge ---- *)

let test_left_edge_basic () =
  let mk = Interval.make in
  let items = [ (0, mk 1 3); (1, mk 2 4); (2, mk 4 6); (3, mk 5 7) ] in
  let assignment, tracks = Left_edge.assign items in
  Alcotest.(check int) "tracks" 2 tracks;
  (* value 2 reuses value 0's register (dies at 3, born at 4) *)
  Alcotest.(check (option int)) "reuse" (List.assoc_opt 0 assignment)
    (List.assoc_opt 2 assignment)

let prop_left_edge_optimal =
  QCheck.Test.make ~name:"left edge uses max-overlap registers (REAL optimal)"
    ~count:300 Gen.intervals_arbitrary
    (fun seed ->
      let items = Gen.intervals_of_seed seed in
      let _, tracks = Left_edge.assign items in
      tracks = Interval.max_overlap (List.map snd items))

let prop_left_edge_no_conflicts =
  QCheck.Test.make ~name:"left edge never overlaps within a track" ~count:300
    Gen.intervals_arbitrary
    (fun seed ->
      let items = Gen.intervals_of_seed seed in
      let assignment, _ = Left_edge.assign items in
      List.for_all
        (fun (k1, t1) ->
          List.for_all
            (fun (k2, t2) ->
              k1 >= k2 || t1 <> t2
              || not (Interval.overlaps (List.assoc k1 items) (List.assoc k2 items)))
            assignment)
        assignment)

(* ---- clique partitioning ---- *)

let test_clique_small () =
  (* 0-1 incompatible; everything else compatible: two groups *)
  let compatible i j = not ((i = 0 && j = 1) || (i = 1 && j = 0)) in
  let groups = Clique.partition ~n:4 ~compatible in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let covered = List.sort compare (List.concat groups) in
  Alcotest.(check (list int)) "cover" [ 0; 1; 2; 3 ] covered

let prop_clique_valid =
  QCheck.Test.make ~name:"clique groups are pairwise compatible and cover" ~count:200
    QCheck.(pair (int_bound 1000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let matrix = Array.init n (fun _ -> Array.init n (fun _ -> Random.State.bool rng)) in
      let compatible i j = matrix.(min i j).(max i j) in
      let groups = Clique.partition ~n ~compatible in
      let cover = List.sort compare (List.concat groups) = List.init n Fun.id in
      let valid =
        List.for_all
          (fun g ->
            List.for_all
              (fun a -> List.for_all (fun b -> a = b || compatible a b) g)
              g)
          groups
      in
      cover && valid)

let prop_clique_matches_reference =
  QCheck.Test.make
    ~name:"bitset clique partition is bit-identical to the reference" ~count:200
    QCheck.(pair (int_bound 1000) (int_range 0 24))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      (* vary density so sparse and dense graphs are both covered *)
      let p = 1 + Random.State.int rng 9 in
      let matrix =
        Array.init n (fun _ -> Array.init n (fun _ -> Random.State.int rng 10 < p))
      in
      let compatible i j = matrix.(min i j).(max i j) in
      Clique.partition ~n ~compatible = Clique.partition_reference ~n ~compatible)

(* ---- Fig 6 / Fig 7 example ----

   Schedule (one block):
     step 1:  a1 = x + y          b1 = z + w
     step 2:  a2 = z + v
     step 3:  a3 = a2 + z
   Adds a1 and b1 conflict; {a1|b1, a2, a3} can share. Clique partition
   covers the four adds with two adders (Fig 7). Greedy with min-mux
   selection puts a2 on b1's adder (port sources z/w already half match:
   cost 1) where first-fit picks a1's adder (cost 2) — Fig 6's "assigned
   to adder2 since the increase in multiplexing cost was zero/least". *)

let fig67_design () =
  let g = Dfg.create () in
  let x = Dfg.add g (Op.Read "x") [] i16 in
  let y = Dfg.add g (Op.Read "y") [] i16 in
  let z = Dfg.add g (Op.Read "z") [] i16 in
  let w = Dfg.add g (Op.Read "w") [] i16 in
  let v = Dfg.add g (Op.Read "v") [] i16 in
  let a1 = Dfg.add g Op.Add [ x; y ] i16 in
  let b1 = Dfg.add g Op.Add [ z; w ] i16 in
  let a2 = Dfg.add g Op.Add [ z; v ] i16 in
  let a3 = Dfg.add g Op.Add [ a2; z ] i16 in
  ignore (Dfg.add g (Op.Write "o1") [ a1 ] i16);
  ignore (Dfg.add g (Op.Write "o2") [ b1 ] i16);
  ignore (Dfg.add g (Op.Write "o3") [ a3 ] i16);
  let cfg = Cfg.create () in
  let bid = Cfg.add_block cfg g Cfg.Halt in
  Cfg.set_entry cfg bid;
  Cfg.validate cfg;
  (* force the intended steps: a1,b1 @1; a2 @2; a3 @3 *)
  let steps = [ (a1, 1); (b1, 1); (a2, 2); (a3, 3) ] in
  let cs =
    Cfg_sched.make cfg ~scheduler:(fun dfg ->
        Schedule.make dfg ~steps:(fun nid -> List.assoc nid steps))
  in
  (cs, (a1, b1, a2, a3))

let test_fig7_clique_two_adders () =
  let cs, (a1, b1, a2, a3) = fig67_design () in
  let alloc = Fu_alloc.by_clique cs in
  Alcotest.(check int) "two adders" 2 (Fu_alloc.n_units alloc);
  (* a2 and a3 share; a1 and b1 are split *)
  Alcotest.(check bool) "a2/a3 share" true
    (Fu_alloc.of_op alloc (0, a2) = Fu_alloc.of_op alloc (0, a3));
  Alcotest.(check bool) "a1/b1 split" true
    (Fu_alloc.of_op alloc (0, a1) <> Fu_alloc.of_op alloc (0, b1))

let test_fig6_greedy_cost_aware () =
  let cs, _ = fig67_design () in
  let min_mux = Fu_alloc.greedy ~selection:`Min_mux cs in
  let first_fit = Fu_alloc.greedy ~selection:`First_fit cs in
  Alcotest.(check int) "both use two adders" (Fu_alloc.n_units min_mux)
    (Fu_alloc.n_units first_fit);
  let cost_min = Fu_alloc.mux_inputs cs min_mux in
  let cost_ff = Fu_alloc.mux_inputs cs first_fit in
  Alcotest.(check bool)
    (Printf.sprintf "min-mux (%d) cheaper than first-fit (%d)" cost_min cost_ff)
    true (cost_min < cost_ff)

let test_greedy_never_double_books () =
  let cs, _ = fig67_design () in
  let alloc = Fu_alloc.greedy cs in
  List.iter
    (fun (inst : Fu_alloc.instance) ->
      let slots =
        List.map (fun (r : Fu_alloc.op_ref) -> (r.Fu_alloc.bid, r.Fu_alloc.step)) inst.Fu_alloc.ops
      in
      Alcotest.(check int) "no slot reused" (List.length slots)
        (List.length (List.sort_uniq compare slots)))
    alloc.Fu_alloc.instances

(* ---- lifetime analysis ---- *)

let scheduled_sqrt () =
  let _, cfg = Compile.compile_source Hls_core.Workloads.sqrt_newton in
  let cfg =
    Hls_transform.Passes.run_pipeline ~outputs:[ "y" ]
      (Hls_transform.Passes.standard @ [ Hls_transform.Passes.find_exn "loop-recode" ])
      cfg
  in
  Cfg_sched.make cfg ~scheduler:(List_sched.schedule ~limits:Limits.two_fu)

let test_lifetime_sqrt_body () =
  let cs = scheduled_sqrt () in
  let cfg = Cfg_sched.cfg cs in
  let sched = Cfg_sched.block_schedule cs 1 in
  let term_cond =
    match Cfg.term cfg 1 with Cfg.Branch (c, _, _) -> Some c | _ -> None
  in
  let infos = Lifetime.analyze sched ~term_cond in
  (* exactly one temporary: the division result crosses from step 1 into
     the step-2 addition; everything else lives in variable registers *)
  (match Lifetime.temps infos with
  | [ (nid, iv) ] ->
      (match Dfg.op (Cfg.dfg cfg 1) nid with
      | Op.Div -> ()
      | op -> Alcotest.failf "temp should hold the division, got %s" (Op.to_string op));
      Alcotest.(check int) "born step 1" 1 iv.Interval.lo;
      Alcotest.(check int) "dies before step 2" 1 iv.Interval.hi
  | l -> Alcotest.failf "expected one temp, got %d" (List.length l));
  (* reads of x and y are In_variable *)
  List.iter
    (fun (info : Lifetime.value_info) ->
      match Dfg.op (Cfg.dfg cfg 1) info.Lifetime.nid with
      | Op.Read v -> (
          match info.Lifetime.storage with
          | Lifetime.In_variable v' ->
              Alcotest.(check string) "read storage" v v'
          | Lifetime.Temp _ -> Alcotest.failf "read of %s needs temp" v
          | Lifetime.No_storage -> ())
      | _ -> ())
    infos

let test_lifetime_needs_temp () =
  (* serial schedule: t = a*b produced step 1, consumed step 3 and not
     written to a live variable -> needs a temp *)
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i16 in
  let b = Dfg.add g (Op.Read "b") [] i16 in
  let t = Dfg.add g Op.Mul [ a; b ] i16 in
  let u = Dfg.add g Op.Add [ a; b ] i16 in
  let s = Dfg.add g Op.Sub [ u; b ] i16 in
  let r = Dfg.add g Op.Add [ t; s ] i16 in
  ignore (Dfg.add g (Op.Write "y") [ r ] i16);
  let sched =
    Schedule.make g ~steps:(fun nid -> List.assoc nid [ (t, 1); (u, 2); (s, 3); (r, 4) ])
  in
  let infos = Lifetime.analyze sched ~term_cond:None in
  (* t, u and s all cross step boundaries unattached to a variable *)
  let temps = Lifetime.temps infos in
  Alcotest.(check int) "three temps" 3 (List.length temps);
  (match List.assoc_opt t temps with
  | Some iv ->
      Alcotest.(check int) "mul born" 1 iv.Interval.lo;
      Alcotest.(check int) "mul dies" 3 iv.Interval.hi
  | None -> Alcotest.fail "mul needs a temp");
  (* left edge packs them into two registers (t conflicts with both) *)
  let _, tracks = Left_edge.assign temps in
  Alcotest.(check int) "two registers suffice" 2 tracks

let test_lifetime_read_overwritten () =
  (* v := v + 1 at step 1; old v still read at step 2 -> old value needs a
     temp from the overwrite step on *)
  let g = Dfg.create () in
  let v = Dfg.add g (Op.Read "v") [] i16 in
  let one = Dfg.add g (Op.Const 1) [] i16 in
  let inc = Dfg.add g Op.Add [ v; one ] i16 in
  let use = Dfg.add g Op.Mul [ v; v ] i16 in
  ignore (Dfg.add g (Op.Write "v") [ inc ] i16);
  ignore (Dfg.add g (Op.Write "y") [ use ] i16);
  let sched =
    Schedule.make g ~steps:(fun nid -> List.assoc nid [ (inc, 1); (use, 2) ])
  in
  let infos = Lifetime.analyze sched ~term_cond:None in
  match Lifetime.temps infos with
  | [ (nid, iv) ] ->
      Alcotest.(check int) "temp holds the old read" v nid;
      Alcotest.(check int) "from overwrite step" 1 iv.Interval.lo
  | l -> Alcotest.failf "expected one temp, got %d" (List.length l)

(* ---- register allocation ---- *)

let test_reg_alloc_sqrt () =
  let cs = scheduled_sqrt () in
  let regs = Reg_alloc.run ~ports:[ "x"; "y" ] ~outputs:[ "y" ] cs in
  Alcotest.(check int) "one temp (division result)" 1 (Reg_alloc.n_temp_registers regs);
  (* x, y, i all interfere across the loop: three registers *)
  Alcotest.(check int) "variable registers" 3 (Reg_alloc.n_variable_registers regs);
  Alcotest.(check int) "total" 4 (Reg_alloc.n_registers regs)

let test_reg_alloc_shares_disjoint_vars () =
  let src =
    "module m(input a: int<8>; output y: int<8>); var p, q: int<8>; begin p := a + 1; y := p * 2; q := y + 3; y := q * 4; end"
  in
  let _, cfg = Compile.compile_source src in
  let cs = Cfg_sched.make cfg ~scheduler:(List_sched.schedule ~limits:Limits.serial) in
  let shared = Reg_alloc.run ~ports:[ "a"; "y" ] ~outputs:[ "y" ] cs in
  let unshared =
    Reg_alloc.run ~share_variables:false ~ports:[ "a"; "y" ] ~outputs:[ "y" ] cs
  in
  Alcotest.(check bool) "sharing saves a register" true
    (Reg_alloc.n_variable_registers shared < Reg_alloc.n_variable_registers unshared);
  (* p and q never live together: same physical register *)
  Alcotest.(check string) "p/q merged" (Reg_alloc.register_of_var shared "p")
    (Reg_alloc.register_of_var shared "q")

let test_reg_alloc_ports_never_merged () =
  let cs = scheduled_sqrt () in
  let regs = Reg_alloc.run ~ports:[ "x"; "y" ] ~outputs:[ "y" ] cs in
  List.iter
    (fun p -> Alcotest.(check string) "port keeps own register" p (Reg_alloc.register_of_var regs p))
    [ "x"; "y" ]

(* ---- interconnect ---- *)

let test_interconnect_sqrt () =
  let cs = scheduled_sqrt () in
  let fu = Fu_alloc.greedy cs in
  let regs = Reg_alloc.run ~ports:[ "x"; "y" ] ~outputs:[ "y" ] cs in
  let ts = Interconnect.transfers cs ~fu ~regs in
  Alcotest.(check bool) "has transfers" true (List.length ts > 0);
  let groups, buses = Interconnect.bus_allocation ts in
  Alcotest.(check bool) "buses do not exceed transfers" true (buses <= List.length ts);
  (* all groups pairwise compatible *)
  List.iter
    (fun group ->
      List.iter
        (fun (t1 : Interconnect.transfer) ->
          List.iter
            (fun (t2 : Interconnect.transfer) ->
              if t1 != t2 then
                Alcotest.(check bool) "bus slot conflict" true
                  ((t1.Interconnect.t_bid, t1.Interconnect.t_step)
                   <> (t2.Interconnect.t_bid, t2.Interconnect.t_step)
                  || t1.Interconnect.t_src = t2.Interconnect.t_src))
            group)
        group)
    groups;
  (* buses needed >= peak transfers in any single step *)
  let by_slot = Hashtbl.create 16 in
  List.iter
    (fun (t : Interconnect.transfer) ->
      let k = (t.Interconnect.t_bid, t.Interconnect.t_step) in
      let srcs = try Hashtbl.find by_slot k with Not_found -> [] in
      if not (List.mem t.Interconnect.t_src srcs) then
        Hashtbl.replace by_slot k (t.Interconnect.t_src :: srcs))
    ts;
  let peak = Hashtbl.fold (fun _ srcs acc -> max acc (List.length srcs)) by_slot 0 in
  Alcotest.(check bool) "buses >= peak concurrent sources" true (buses >= peak)

let test_mux_cost_positive_on_sharing () =
  let cs, _ = fig67_design () in
  let fu = Fu_alloc.by_clique cs in
  let regs = Reg_alloc.run ~ports:[] ~outputs:[ "o1"; "o2"; "o3" ] cs in
  let ts = Interconnect.transfers cs ~fu ~regs in
  Alcotest.(check bool) "sharing forces muxes" true (Interconnect.mux_cost ts > 0)

(* ---- 0/1 programming allocation (Hafer) ---- *)

let test_ilp_alloc_fig67 () =
  let cs, _ = fig67_design () in
  match Ilp_alloc.allocate cs with
  | None -> Alcotest.fail "small enough"
  | Some alloc ->
      (* optimum matches the clique result: two adders *)
      Alcotest.(check int) "two adders" 2 (Fu_alloc.n_units alloc);
      (* every op bound to exactly one unit; no slot conflicts *)
      List.iter
        (fun (inst : Fu_alloc.instance) ->
          let slots =
            List.map
              (fun (r : Fu_alloc.op_ref) -> (r.Fu_alloc.bid, r.Fu_alloc.step))
              inst.Fu_alloc.ops
          in
          Alcotest.(check int) "no conflicts" (List.length slots)
            (List.length (List.sort_uniq compare slots)))
        alloc.Fu_alloc.instances

let test_ilp_alloc_never_worse_than_clique () =
  List.iter
    (fun name ->
      let d = Hls_core.Flow.synthesize (Hls_core.Workloads.find name) in
      match Ilp_alloc.min_units d.Hls_core.Flow.sched with
      | None -> () (* too large; fine *)
      | Some opt ->
          let clique = Fu_alloc.n_units (Fu_alloc.by_clique d.Hls_core.Flow.sched) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: ILP %d <= clique %d" name opt clique)
            true (opt <= clique))
    [ "sqrt"; "gcd" ]

let () =
  Alcotest.run "alloc"
    [
      ( "left_edge",
        [
          Alcotest.test_case "basic reuse" `Quick test_left_edge_basic;
          QCheck_alcotest.to_alcotest prop_left_edge_optimal;
          QCheck_alcotest.to_alcotest prop_left_edge_no_conflicts;
        ] );
      ( "clique",
        [
          Alcotest.test_case "small" `Quick test_clique_small;
          QCheck_alcotest.to_alcotest prop_clique_valid;
          QCheck_alcotest.to_alcotest prop_clique_matches_reference;
        ] );
      ( "figures",
        [
          Alcotest.test_case "Fig 7: two adders by clique" `Quick test_fig7_clique_two_adders;
          Alcotest.test_case "Fig 6: min-mux beats first-fit" `Quick test_fig6_greedy_cost_aware;
          Alcotest.test_case "no double booking" `Quick test_greedy_never_double_books;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "sqrt body" `Quick test_lifetime_sqrt_body;
          Alcotest.test_case "temp for long value" `Quick test_lifetime_needs_temp;
          Alcotest.test_case "overwritten read" `Quick test_lifetime_read_overwritten;
        ] );
      ( "registers",
        [
          Alcotest.test_case "sqrt registers" `Quick test_reg_alloc_sqrt;
          Alcotest.test_case "disjoint variables share" `Quick test_reg_alloc_shares_disjoint_vars;
          Alcotest.test_case "ports never merged" `Quick test_reg_alloc_ports_never_merged;
        ] );
      ( "interconnect",
        [
          Alcotest.test_case "sqrt transfers/buses" `Quick test_interconnect_sqrt;
          Alcotest.test_case "mux cost on sharing" `Quick test_mux_cost_positive_on_sharing;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "Fig 6/7 optimum" `Quick test_ilp_alloc_fig67;
          Alcotest.test_case "never worse than clique" `Quick test_ilp_alloc_never_worse_than_clique;
        ] );
    ]
