(* Tests for the optimization passes: each pass's specific rewrites on
   handwritten inputs, plus the central property — every pass pipeline
   preserves the program's observable behavior (CDFG interpreter
   equivalence on random inputs). *)

open Hls_lang
open Hls_cdfg
open Hls_transform

let compile src = snd (Compile.compile_source src)

let compile_prog p = Compile.compile (Typecheck.check p)

let compute_ops cfg =
  List.fold_left
    (fun acc bid -> acc + List.length (Dfg.compute_ops (Cfg.dfg cfg bid)))
    0 (Cfg.block_ids cfg)

let count_op cfg pred =
  List.fold_left
    (fun acc bid ->
      Dfg.fold (fun acc _ n -> if pred n.Dfg.op then acc + 1 else acc) acc (Cfg.dfg cfg bid))
    0 (Cfg.block_ids cfg)

(* ---- const fold ---- *)

let test_fold_arith () =
  let cfg = compile "module m(output y: int<8>); begin y := 2 + 3 * 4; end" in
  ignore (Const_fold.run cfg);
  let g = Cfg.dfg cfg 0 in
  (* the write's argument is the constant 14 *)
  match Dfg.writes g with
  | [ ("y", w) ] -> (
      match Dfg.op g (List.hd (Dfg.args g w)) with
      | Op.Const 14 -> ()
      | op -> Alcotest.failf "got %s" (Op.to_string op))
  | _ -> Alcotest.fail "one write expected"

let test_fold_identities () =
  let cfg =
    compile
      "module m(input a: int<8>; output y: int<8>); begin y := (a + 0) * 1 - (a - a); end"
  in
  ignore (Const_fold.run cfg);
  ignore (Const_fold.run cfg);
  let adds =
    count_op cfg (function Op.Add | Op.Sub | Op.Mul -> true | _ -> false)
  in
  Alcotest.(check int) "all identities folded" 0 adds

let test_fold_branch () =
  let cfg =
    compile "module m(output y: int<8>); begin if 1 > 2 then y := 1; else y := 2; end; end"
  in
  ignore (Const_fold.run cfg);
  (match Cfg.term cfg 0 with
  | Cfg.Goto b -> Alcotest.(check int) "takes else branch" 2 b
  | _ -> Alcotest.fail "branch should fold to goto");
  let pruned, changed = Clean_cfg.prune cfg in
  Alcotest.(check bool) "pruned" true changed;
  Alcotest.(check int) "then-block dropped" 3 (Cfg.n_blocks pruned)

(* ---- cse ---- *)

let test_cse () =
  let cfg =
    compile
      "module m(input a, b: int<8>; output y: int<8>); begin y := (a * b) + (a * b); end"
  in
  let before = count_op cfg (function Op.Mul -> true | _ -> false) in
  ignore (Cse.run cfg);
  let after = count_op cfg (function Op.Mul -> true | _ -> false) in
  Alcotest.(check int) "two muls before" 2 before;
  Alcotest.(check int) "one mul after" 1 after

(* ---- dce ---- *)

let test_dce_dead_write () =
  let cfg =
    compile
      "module m(input a: int<8>; output y: int<8>); var t: int<8>; begin t := a * a; y := a + 1; end"
  in
  ignore (Dead_code.run ~outputs:[ "y" ] cfg);
  Alcotest.(check int) "mul removed" 0 (count_op cfg (function Op.Mul -> true | _ -> false));
  Alcotest.(check int) "write t removed" 0
    (count_op cfg (function Op.Write "t" -> true | _ -> false))

let test_dce_keeps_live () =
  let cfg = compile Hls_core.Workloads.sqrt_newton in
  let before = compute_ops cfg in
  ignore (Dead_code.run ~outputs:[ "y" ] cfg);
  Alcotest.(check int) "nothing dead in sqrt" before (compute_ops cfg)

(* ---- strength ---- *)

let test_strength_mul_to_shift () =
  let cfg =
    compile "module m(input x: fix<8,24>; output y: fix<8,24>); begin y := 0.5 * x; end"
  in
  ignore (Strength.run cfg);
  Alcotest.(check int) "mul gone" 0 (count_op cfg (function Op.Mul -> true | _ -> false));
  Alcotest.(check int) "shift present" 1
    (count_op cfg (function Op.Shr -> true | _ -> false))

let test_strength_int_mul () =
  let cfg = compile "module m(input x: int<8>; output y: int<8>); begin y := x * 8; end" in
  ignore (Strength.run cfg);
  Alcotest.(check int) "shl" 1 (count_op cfg (function Op.Shl -> true | _ -> false))

let test_strength_incr_zdetect () =
  let cfg =
    compile
      "module m(input x: int<8>; output y: int<8>; output z: bool); begin y := x + 1; z := x = 0; end"
  in
  ignore (Strength.run cfg);
  Alcotest.(check int) "incr" 1 (count_op cfg (function Op.Incr -> true | _ -> false));
  Alcotest.(check int) "zdetect" 1
    (count_op cfg (function Op.Zdetect -> true | _ -> false))

let test_strength_non_pow2_untouched () =
  let cfg = compile "module m(input x: int<8>; output y: int<8>); begin y := x * 3; end" in
  ignore (Strength.run cfg);
  Alcotest.(check int) "mul stays" 1 (count_op cfg (function Op.Mul -> true | _ -> false))

(* ---- loop recode (the paper's transformation) ---- *)

let test_loop_recode_sqrt () =
  let cfg = compile Hls_core.Workloads.sqrt_newton in
  ignore (Passes.optimize ~level:`Standard ~outputs:[ "y" ] cfg);
  let changed = Loop_recode.run ~protected:[ "y" ] cfg in
  Alcotest.(check bool) "recoded" true changed;
  Alcotest.(check int) "zdetect" 1
    (count_op cfg (function Op.Zdetect -> true | _ -> false));
  Alcotest.(check int) "no compare left" 0
    (count_op cfg (function Op.Cmp _ -> true | _ -> false));
  let body = Cfg.dfg cfg 1 in
  let narrow_types =
    Dfg.fold
      (fun acc _ n ->
        match (n.Dfg.op, n.Dfg.ty) with
        | Op.Read "i", ty | Op.Write "i", ty -> ty :: acc
        | _ -> acc)
      [] body
  in
  List.iter
    (fun ty -> Alcotest.(check bool) "i is int<2>" true (ty = Ast.Tint 2))
    narrow_types;
  Alcotest.(check bool) "found i nodes" true (narrow_types <> [])

let test_loop_recode_requires_pow2 () =
  let src =
    "module m(input x: int<8>; output y: int<8>); var i: int<8>; begin y := x; i := 0; repeat y := y + 1; i := i + 1; until i > 2; end"
  in
  let cfg = compile src in
  ignore (Passes.optimize ~level:`Standard ~outputs:[ "y" ] cfg);
  Alcotest.(check bool) "not recoded (trip 3)" false (Loop_recode.run ~protected:[ "y" ] cfg)

(* ---- unroll ---- *)

let test_unroll_sqrt () =
  let cfg = compile Hls_core.Workloads.sqrt_newton in
  let cfg, changed = Unroll.unroll_all cfg in
  Alcotest.(check bool) "unrolled" true changed;
  let trips = List.filter_map (fun bid -> Cfg.trip_count cfg bid) (Cfg.block_ids cfg) in
  Alcotest.(check (list int)) "no loops left" [] trips;
  Alcotest.(check int) "blocks" 6 (Cfg.n_blocks cfg)

let test_unroll_then_merge_single_block () =
  let cfg = compile Hls_core.Workloads.sqrt_newton in
  let cfg = Passes.optimize ~level:`Aggressive ~outputs:[ "y" ] cfg in
  Alcotest.(check bool) "few blocks" true (Cfg.n_blocks cfg <= 2);
  let divs = count_op cfg (function Op.Div -> true | _ -> false) in
  Alcotest.(check int) "4 divisions (one per iteration)" 4 divs;
  Alcotest.(check int) "counter gone" 0
    (count_op cfg (function Op.Read "i" | Op.Write "i" -> true | _ -> false))

let test_unroll_while_style () =
  let src =
    "module m(input a: int<8>; output y: int<8>); var i: int<8>; begin y := a; i := 0; while i < 3 do y := y + y; i := i + 1; end; end"
  in
  let cfg = compile src in
  let cfg, changed = Unroll.unroll_all cfg in
  Alcotest.(check bool) "unrolled" true changed;
  Cfg.validate cfg;
  let trips = List.filter_map (fun bid -> Cfg.trip_count cfg bid) (Cfg.block_ids cfg) in
  Alcotest.(check (list int)) "no loops left" [] trips

(* ---- tree height ---- *)

let test_tree_height_chain () =
  let cfg =
    compile
      "module m(input a, b, c, d, e, f, g2, h: int<16>; output y: int<16>); begin y := a + b + c + d + e + f + g2 + h; end"
  in
  let depth_of cfg =
    List.fold_left
      (fun acc bid ->
        max acc
          (Hls_sched.Depgraph.critical_length
             (Hls_sched.Depgraph.of_dfg (Cfg.dfg cfg bid))))
      0 (Cfg.block_ids cfg)
  in
  Alcotest.(check int) "chain depth" 7 (depth_of cfg);
  Alcotest.(check bool) "changed" true (Tree_height.run cfg);
  Alcotest.(check int) "balanced depth" 3 (depth_of cfg)

let test_tree_height_respects_sharing () =
  let cfg =
    compile
      "module m(input a, b, c: int<16>; output y, z: int<16>); var t: int<16>; begin t := a + b; y := t + c; z := t; end"
  in
  Alcotest.(check bool) "no rebalance across shared value" false (Tree_height.run cfg)

let test_tree_height_not_fix_mul () =
  let cfg =
    compile
      "module m(input a, b, c, d: fix<8,8>; output y: fix<8,8>); begin y := a * b * c * d; end"
  in
  Alcotest.(check bool) "fix mul untouched" false (Tree_height.run cfg)

(* ---- merge blocks ---- *)

let test_merge_goto_chain () =
  (* unrolled loop copies form a single-predecessor Goto chain *)
  let cfg = compile Hls_core.Workloads.sqrt_newton in
  let cfg, unrolled = Unroll.unroll_all cfg in
  Alcotest.(check bool) "unrolled" true unrolled;
  let n_before = Cfg.n_blocks cfg in
  let merged, changed = Clean_cfg.merge cfg in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check bool) "fewer blocks" true (Cfg.n_blocks merged < n_before);
  Cfg.validate merged;
  (* no merge opportunity in a plain diamond *)
  let diamond =
    compile
      "module m(input a: int<8>; output y: int<8>); begin if a > 0 then y := 1; else y := 2; end; y := y + 1; end"
  in
  let _, changed = Clean_cfg.merge diamond in
  Alcotest.(check bool) "diamond untouched" false changed

let inputs_of rng =
  [ ("a", Random.State.int rng 1000); ("b", 1 + Random.State.int rng 1000) ]

let equal_outputs outs1 outs2 names =
  List.for_all (fun n -> List.assoc_opt n outs1 = List.assoc_opt n outs2) names

(* ---- if-conversion ---- *)

let test_if_convert_diamond () =
  let cfg =
    compile
      "module m(input a, b: int<8>; output y: int<8>); begin if a > b then y := a + 1; else y := b * 2; end; y := y + a; end"
  in
  let n_before = Cfg.n_blocks cfg in
  let cfg, changed = If_convert.run cfg in
  Alcotest.(check bool) "converted" true changed;
  Alcotest.(check bool) "fewer blocks" true (Cfg.n_blocks cfg < n_before);
  Cfg.validate cfg;
  Alcotest.(check int) "one mux" 1 (count_op cfg (function Op.Mux -> true | _ -> false));
  (* semantics on both branch directions *)
  List.iter
    (fun (a, b) ->
      let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("a", a); ("b", b) ] in
      let expected = (if a > b then a + 1 else b * 2) + a in
      Alcotest.(check (option int))
        (Printf.sprintf "a=%d b=%d" a b)
        (Some (((expected + 128) mod 256) - 128))
        (List.assoc_opt "y" r))
    [ (5, 3); (3, 5); (4, 4) ]

let test_if_convert_no_else () =
  let cfg =
    compile
      "module m(input a: int<8>; output y: int<8>); begin y := a; if a > 0 then y := a + a; end; end"
  in
  let cfg, changed = If_convert.run cfg in
  Alcotest.(check bool) "converted" true changed;
  (* converted block + the (empty) exit block *)
  Alcotest.(check int) "two blocks" 2 (Cfg.n_blocks cfg);
  let merged, _ = Clean_cfg.merge cfg in
  Alcotest.(check int) "single block after merge" 1 (Cfg.n_blocks merged);
  let cfg = merged in
  List.iter
    (fun a ->
      let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("a", a) ] in
      let expected = if a > 0 then a + a else a in
      Alcotest.(check (option int)) (Printf.sprintf "a=%d" a) (Some expected)
        (List.assoc_opt "y" r))
    [ 7; -3; 0 ]

let test_if_convert_refuses_division () =
  (* speculating a division could trap: must not convert *)
  let cfg =
    compile
      "module m(input a, b: int<8>; output y: int<8>); begin if b <> 0 then y := a / b; else y := 0; end; end"
  in
  let _, changed = If_convert.run cfg in
  Alcotest.(check bool) "not converted" false changed

let test_if_convert_refuses_loops () =
  let cfg = compile Hls_core.Workloads.gcd in
  let _, changed = If_convert.run cfg in
  (* gcd's diamond arms rejoin inside a loop; the inner diamond IS
     convertible (subtractions are safe) — conversion must keep the
     loop semantics *)
  if changed then begin
    let cfg, _ = If_convert.run cfg in
    let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("a_in", 12); ("b_in", 18) ] in
    Alcotest.(check (option int)) "gcd still correct" (Some 6) (List.assoc_opt "g" r)
  end

let prop_if_convert_preserves =
  QCheck.Test.make ~name:"if-conversion preserves semantics" ~count:100
    Gen.program_arbitrary
    (fun seed ->
      let prog = Gen.program_of_seed seed in
      let cfg_ref = compile_prog prog in
      let cfg1 = compile_prog prog in
      let cfg1, _ = If_convert.run cfg1 in
      Cfg.validate cfg1;
      let rng = Random.State.make [| seed + 13 |] in
      List.for_all
        (fun _ ->
          let inputs = inputs_of rng in
          equal_outputs
            (Hls_sim.Cfg_sim.run cfg_ref ~inputs)
            (Hls_sim.Cfg_sim.run cfg1 ~inputs)
            [ "o1"; "o2" ])
        [ 1; 2; 3 ])

(* ---- declarative rules: soundness + guards ---- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let rule_pipeline name =
  { Passes.passes = [ "rule:" ^ name ]; fold_facts = false; extract = None }

(* every rule alone, through the full flow, stays bit-identical to the
   reference on every built-in workload (three-level co-simulation) *)
let test_each_rule_cosim () =
  List.iter
    (fun (r : Rules.t) ->
      let options =
        {
          Hls_core.Flow.default_options with
          Hls_core.Flow.passes = rule_pipeline r.Rules.name;
        }
      in
      List.iter
        (fun (wname, src) ->
          let d = Hls_core.Flow.synthesize ~options src in
          match Hls_core.Flow.verify ~runs:3 d with
          | Ok () -> ()
          | Error e -> Alcotest.failf "rule %s on %s: %s" r.Rules.name wname e)
        Hls_core.Workloads.all)
    Rules.all

let test_rule_mul_chain () =
  (* 5 = 4 + 1: a two-term shift/add chain replaces the multiplier *)
  let cfg = compile "module m(input x: int<8>; output y: int<8>); begin y := x * 5; end" in
  Alcotest.(check bool) "changed" true (Rules.run_rules [ Rules.mul_const_chain ] cfg);
  Alcotest.(check int) "mul gone" 0 (count_op cfg (function Op.Mul -> true | _ -> false));
  Alcotest.(check int) "shift present" 1
    (count_op cfg (function Op.Shl -> true | _ -> false));
  List.iter
    (fun x ->
      let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("x", x) ] in
      Alcotest.(check (option int)) (Printf.sprintf "x=%d" x) (Some (x * 5))
        (List.assoc_opt "y" r))
    [ 3; -7; 10 ]

let test_rule_mul_chain_guard () =
  (* 11 is not 2^a +/- 2^b: the multiplier must stay *)
  let cfg = compile "module m(input x: int<8>; output y: int<8>); begin y := x * 11; end" in
  Alcotest.(check bool) "unchanged" false (Rules.run_rules [ Rules.mul_const_chain ] cfg);
  Alcotest.(check int) "mul stays" 1 (count_op cfg (function Op.Mul -> true | _ -> false))

let test_rule_div_guard () =
  let src = "module m(input x: int<8>; output y: int<8>); begin y := x / 4; end" in
  (* truncating division of a possibly-negative value is not a shift *)
  let cfg = compile src in
  Alcotest.(check bool) "unproven sign: untouched" false
    (Rules.run_rules [ Rules.div_pow2_shift ] cfg);
  Alcotest.(check int) "div stays" 1 (count_op cfg (function Op.Div -> true | _ -> false));
  (* with the numerator proven non-negative the rewrite fires *)
  let cfg = compile src in
  Alcotest.(check bool) "proven nonneg: rewritten" true
    (Rules.run_rules ~nonneg:(fun _ _ _ -> true) [ Rules.div_pow2_shift ] cfg);
  Alcotest.(check int) "div gone" 0 (count_op cfg (function Op.Div -> true | _ -> false));
  Alcotest.(check int) "shr" 1 (count_op cfg (function Op.Shr -> true | _ -> false));
  List.iter
    (fun x ->
      let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("x", x) ] in
      Alcotest.(check (option int)) (Printf.sprintf "x=%d" x) (Some (x / 4))
        (List.assoc_opt "y" r))
    [ 0; 7; 100 ];
  (* a non-power-of-two divisor is never rewritten, proof or not *)
  let cfg3 = compile "module m(input x: int<8>; output y: int<8>); begin y := x / 3; end" in
  Alcotest.(check bool) "x/3 untouched" false
    (Rules.run_rules ~nonneg:(fun _ _ _ -> true) [ Rules.div_pow2_shift ] cfg3)

let test_rule_incr_decr_guards () =
  let cfg = compile "module m(input x: int<8>; output y: int<8>); begin y := x + 2; end" in
  Alcotest.(check bool) "x+2 not incr" false (Rules.run_rules [ Rules.add_one_incr ] cfg);
  let cfg = compile "module m(input x: int<8>; output y: int<8>); begin y := 1 - x; end" in
  Alcotest.(check bool) "1-x not decr" false (Rules.run_rules [ Rules.sub_one_decr ] cfg);
  Alcotest.(check int) "sub stays" 1 (count_op cfg (function Op.Sub -> true | _ -> false))

let test_rule_cmp_guard () =
  let cfg =
    compile "module m(input x: int<8>; output z: bool); begin z := x = 1; end"
  in
  Alcotest.(check bool) "x=1 not zdetect" false
    (Rules.run_rules [ Rules.cmp_zero_zdetect ] cfg);
  Alcotest.(check int) "no zdetect" 0
    (count_op cfg (function Op.Zdetect -> true | _ -> false))

let test_rule_cse_guard () =
  (* operand order matters: a-b and b-a are distinct expressions *)
  let cfg =
    compile
      "module m(input a, b: int<8>; output y: int<8>); begin y := (a - b) + (b - a); end"
  in
  Alcotest.(check bool) "no merge" false (Rules.run_rules [ Rules.cse_node ] cfg);
  Alcotest.(check int) "both subs stay" 2
    (count_op cfg (function Op.Sub -> true | _ -> false))

let test_cse_global_shares () =
  let src =
    "module m(input a, b: int<8>; output y: int<8>); var t: int<8>; begin t := a * b; \
     if a > 0 then y := a * b + 1; else y := 0 - t; end; end"
  in
  let cfg = compile src in
  Alcotest.(check int) "two muls before" 2
    (count_op cfg (function Op.Mul -> true | _ -> false));
  Alcotest.(check bool) "shared" true (Rules.cse_global cfg);
  Alcotest.(check int) "one mul after" 1
    (count_op cfg (function Op.Mul -> true | _ -> false));
  Cfg.validate cfg;
  List.iter
    (fun (a, b) ->
      let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("a", a); ("b", b) ] in
      let expected = if a > 0 then (a * b) + 1 else -(a * b) in
      Alcotest.(check (option int))
        (Printf.sprintf "a=%d b=%d" a b)
        (Some expected) (List.assoc_opt "y" r))
    [ (3, 4); (-2, 5) ]

let test_cse_global_respects_clobber () =
  (* the predecessor overwrites u after computing u*b, so the committed
     variable no longer holds the expression — no sharing allowed *)
  let src =
    "module m(input a, b: int<8>; output y: int<8>); var t, u: int<8>; begin u := a; \
     t := u * b; u := b; if a > 0 then y := u * b; else y := 0; end; end"
  in
  let cfg = compile src in
  ignore (Rules.cse_global cfg);
  Cfg.validate cfg;
  List.iter
    (fun (a, b) ->
      let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("a", a); ("b", b) ] in
      let expected = if a > 0 then b * b else 0 in
      Alcotest.(check (option int))
        (Printf.sprintf "a=%d b=%d" a b)
        (Some expected) (List.assoc_opt "y" r))
    [ (3, 4); (-1, 4) ]

let test_find_suggestion () =
  match Passes.find "stregth" with
  | Ok _ -> Alcotest.fail "typo should not resolve"
  | Error e ->
      Alcotest.(check (option string)) "suggestion" (Some "strength") e.Passes.suggestion;
      Alcotest.(check bool) "known names listed" true (e.Passes.known <> []);
      let msg = Passes.find_error_to_string e in
      Alcotest.(check bool) "message names the suggestion" true (contains msg "strength")

(* ---- cost-guided extraction ---- *)

let test_extract_area_rewrites_mul () =
  (* 6 = 4 + 2: under the area objective the shift/add chain beats the
     multiplier, and the multiplier class disappears from the block *)
  let cfg = compile "module m(input x: int<8>; output y: int<8>); begin y := x * 6; end" in
  Alcotest.(check bool) "changed" true (Extract.run ~objective:`Area cfg);
  Alcotest.(check int) "mul gone" 0 (count_op cfg (function Op.Mul -> true | _ -> false));
  Cfg.validate cfg;
  List.iter
    (fun x ->
      let r = Hls_sim.Cfg_sim.run cfg ~inputs:[ ("x", x) ] in
      Alcotest.(check (option int)) (Printf.sprintf "x=%d" x) (Some (x * 6))
        (List.assoc_opt "y" r))
    [ 5; -3; 0 ]

let test_extract_keeps_original_when_best () =
  (* nothing to gain: a plain add has no candidate alternatives *)
  let cfg =
    compile "module m(input a, b: int<8>; output y: int<8>); begin y := a + b; end"
  in
  Alcotest.(check bool) "unchanged" false (Extract.run ~objective:`Area cfg)

(* ---- semantic preservation (the big property) ---- *)

let preservation_property level seed =
  let prog = Gen.program_of_seed seed in
  let cfg_ref = compile_prog prog in
  let cfg_opt = compile_prog prog in
  let cfg_opt = Passes.optimize ~level ~outputs:[ "o1"; "o2" ] cfg_opt in
  Cfg.validate cfg_opt;
  let rng = Random.State.make [| seed + 7 |] in
  List.for_all
    (fun _ ->
      let inputs = inputs_of rng in
      let r1 = Hls_sim.Cfg_sim.run cfg_ref ~inputs in
      let r2 = Hls_sim.Cfg_sim.run cfg_opt ~inputs in
      equal_outputs r1 r2 [ "o1"; "o2" ])
    [ 1; 2; 3 ]

let prop_standard_preserves =
  QCheck.Test.make ~name:"standard pipeline preserves semantics" ~count:150
    Gen.program_arbitrary
    (preservation_property `Standard)

let prop_aggressive_preserves =
  QCheck.Test.make ~name:"aggressive pipeline preserves semantics" ~count:150
    Gen.program_arbitrary
    (preservation_property `Aggressive)

let prop_each_pass_preserves =
  QCheck.Test.make ~name:"each pass alone preserves semantics" ~count:60
    Gen.program_arbitrary
    (fun seed ->
      List.for_all
        (fun (pass : Passes.t) ->
          let prog = Gen.program_of_seed seed in
          let cfg_ref = compile_prog prog in
          let cfg1 = compile_prog prog in
          let cfg1, _ = pass.Passes.run ~outputs:[ "o1"; "o2" ] cfg1 in
          Cfg.validate cfg1;
          let rng = Random.State.make [| seed |] in
          let inputs = inputs_of rng in
          equal_outputs
            (Hls_sim.Cfg_sim.run cfg_ref ~inputs)
            (Hls_sim.Cfg_sim.run cfg1 ~inputs)
            [ "o1"; "o2" ])
        Passes.all)

let test_sqrt_all_levels_agree () =
  let ty = Ast.Tfix (8, 24) in
  List.iter
    (fun x ->
      let inputs = [ ("x", Hls_sim.Beh_sim.to_raw ty x) ] in
      let base = Hls_sim.Cfg_sim.run (compile Hls_core.Workloads.sqrt_newton) ~inputs in
      List.iter
        (fun level ->
          let cfg = compile Hls_core.Workloads.sqrt_newton in
          let cfg = Passes.optimize ~level ~outputs:[ "y" ] cfg in
          let r = Hls_sim.Cfg_sim.run cfg ~inputs in
          Alcotest.(check (option int))
            (Printf.sprintf "y at x=%f" x)
            (List.assoc_opt "y" base) (List.assoc_opt "y" r))
        [ `None; `Standard; `Aggressive ])
    [ 0.0625; 0.3; 0.9 ]

let () =
  Alcotest.run "transform"
    [
      ( "const_fold",
        [
          Alcotest.test_case "arithmetic" `Quick test_fold_arith;
          Alcotest.test_case "identities" `Quick test_fold_identities;
          Alcotest.test_case "branch folding + prune" `Quick test_fold_branch;
        ] );
      ("cse", [ Alcotest.test_case "shared subexpression" `Quick test_cse ]);
      ( "dce",
        [
          Alcotest.test_case "dead write" `Quick test_dce_dead_write;
          Alcotest.test_case "keeps live" `Quick test_dce_keeps_live;
        ] );
      ( "strength",
        [
          Alcotest.test_case "0.5*x -> shift (paper)" `Quick test_strength_mul_to_shift;
          Alcotest.test_case "x*8 -> shl" `Quick test_strength_int_mul;
          Alcotest.test_case "incr / zdetect" `Quick test_strength_incr_zdetect;
          Alcotest.test_case "x*3 untouched" `Quick test_strength_non_pow2_untouched;
        ] );
      ( "loop_recode",
        [
          Alcotest.test_case "sqrt counter (paper)" `Quick test_loop_recode_sqrt;
          Alcotest.test_case "needs power-of-two trip" `Quick test_loop_recode_requires_pow2;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "sqrt x4" `Quick test_unroll_sqrt;
          Alcotest.test_case "unroll+merge straightline" `Quick test_unroll_then_merge_single_block;
          Alcotest.test_case "while-style" `Quick test_unroll_while_style;
        ] );
      ( "tree_height",
        [
          Alcotest.test_case "8-chain to depth 3" `Quick test_tree_height_chain;
          Alcotest.test_case "respects sharing" `Quick test_tree_height_respects_sharing;
          Alcotest.test_case "fix mul untouched" `Quick test_tree_height_not_fix_mul;
        ] );
      ("merge", [ Alcotest.test_case "goto chain" `Quick test_merge_goto_chain ]);
      ( "if_convert",
        [
          Alcotest.test_case "diamond" `Quick test_if_convert_diamond;
          Alcotest.test_case "if without else" `Quick test_if_convert_no_else;
          Alcotest.test_case "refuses division" `Quick test_if_convert_refuses_division;
          Alcotest.test_case "gcd inner diamond" `Quick test_if_convert_refuses_loops;
          QCheck_alcotest.to_alcotest prop_if_convert_preserves;
        ] );
      ( "rules",
        [
          Alcotest.test_case "each rule cosims on all workloads" `Slow test_each_rule_cosim;
          Alcotest.test_case "x*5 -> shift/add chain" `Quick test_rule_mul_chain;
          Alcotest.test_case "x*11 untouched (guard)" `Quick test_rule_mul_chain_guard;
          Alcotest.test_case "div guard needs nonneg proof" `Quick test_rule_div_guard;
          Alcotest.test_case "incr/decr guards" `Quick test_rule_incr_decr_guards;
          Alcotest.test_case "cmp guard" `Quick test_rule_cmp_guard;
          Alcotest.test_case "cse operand order guard" `Quick test_rule_cse_guard;
          Alcotest.test_case "cross-block sharing" `Quick test_cse_global_shares;
          Alcotest.test_case "sharing respects clobber" `Quick test_cse_global_respects_clobber;
          Alcotest.test_case "find suggests nearest pass" `Quick test_find_suggestion;
        ] );
      ( "extract",
        [
          Alcotest.test_case "area objective drops multiplier" `Quick
            test_extract_area_rewrites_mul;
          Alcotest.test_case "original kept when best" `Quick
            test_extract_keeps_original_when_best;
        ] );
      ( "preservation",
        [
          Alcotest.test_case "sqrt agrees at all levels" `Quick test_sqrt_all_levels_agree;
          QCheck_alcotest.to_alcotest prop_standard_preserves;
          QCheck_alcotest.to_alcotest prop_aggressive_preserves;
          QCheck_alcotest.to_alcotest prop_each_pass_preserves;
        ] );
    ]
