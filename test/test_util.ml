(* Unit and property tests for the hls_util substrate. *)

open Hls_util

let check = Alcotest.(check int)

(* ---- Pqueue ---- *)

let test_pqueue_basic () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  List.iter (Pqueue.push q) [ 5; 1; 4; 1; 3 ];
  check "length" 5 (Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek q);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Pqueue.to_sorted_list q);
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  (* equal priorities pop in insertion order *)
  let q = Pqueue.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Pqueue.push q) [ (1, "first"); (0, "zero"); (1, "second"); (1, "third") ];
  let order = List.map snd (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "fifo" [ "zero"; "first"; "second"; "third" ] order

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Pqueue.of_list ~cmp:compare xs in
      Pqueue.to_sorted_list q = List.sort compare xs)

let test_pqueue_pop_empty () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop q);
  Pqueue.push q 7;
  Alcotest.(check (option int)) "pop" (Some 7) (Pqueue.pop q);
  Alcotest.(check (option int)) "empty again" None (Pqueue.pop q)

(* ---- Union_find ---- *)

let test_union_find_groups () =
  let u = Union_find.create 6 in
  Union_find.union u 0 1;
  Union_find.union u 2 3;
  Union_find.union u 1 2;
  Alcotest.(check bool) "same 0 3" true (Union_find.same u 0 3);
  Alcotest.(check bool) "not same 0 4" false (Union_find.same u 0 4);
  Alcotest.(check (list (list int)))
    "groups" [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5 ] ] (Union_find.groups u)

let test_union_find_idempotent () =
  let u = Union_find.create 3 in
  Union_find.union u 0 1;
  Union_find.union u 0 1;
  Union_find.union u 1 0;
  Alcotest.(check (list (list int))) "groups" [ [ 0; 1 ]; [ 2 ] ] (Union_find.groups u)

let prop_union_find_transitive =
  QCheck.Test.make ~name:"union-find is transitive" ~count:100
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let u = Union_find.create 10 in
      List.iter (fun (a, b) -> Union_find.union u a b) pairs;
      (* same-ness must match connected components computed naively *)
      let adj = Array.make 10 [] in
      List.iter
        (fun (a, b) ->
          adj.(a) <- b :: adj.(a);
          adj.(b) <- a :: adj.(b))
        pairs;
      let component src =
        let seen = Array.make 10 false in
        let rec dfs v =
          if not seen.(v) then begin
            seen.(v) <- true;
            List.iter dfs adj.(v)
          end
        in
        dfs src;
        seen
      in
      List.for_all
        (fun a -> List.for_all (fun b -> Union_find.same u a b = (component a).(b))
            (List.init 10 Fun.id))
        (List.init 10 Fun.id))

(* ---- Fixedpt ---- *)

let q8_8 = Fixedpt.format ~int_bits:8 ~frac_bits:8

let test_fixed_roundtrip () =
  List.iter
    (fun x ->
      let raw = Fixedpt.of_float q8_8 x in
      let back = Fixedpt.to_float q8_8 raw in
      if abs_float (back -. x) > Fixedpt.eps q8_8 then
        Alcotest.failf "roundtrip %f -> %f" x back)
    [ 0.0; 1.0; -1.0; 3.75; -2.5; 0.00390625; 127.0; -128.0 ]

let test_fixed_wrap () =
  let f = Fixedpt.format ~int_bits:4 ~frac_bits:0 in
  check "wrap 8" (-8) (Fixedpt.wrap f 8);
  check "wrap 7" 7 (Fixedpt.wrap f 7);
  check "wrap -9" 7 (Fixedpt.wrap f (-9));
  check "wrap 16" 0 (Fixedpt.wrap f 16)

let test_fixed_mul_div () =
  let a = Fixedpt.of_float q8_8 1.5 and b = Fixedpt.of_float q8_8 2.25 in
  Alcotest.(check (float 0.01)) "mul" 3.375 (Fixedpt.to_float q8_8 (Fixedpt.mul q8_8 a b));
  Alcotest.(check (float 0.01)) "div" 0.6666
    (Fixedpt.to_float q8_8 (Fixedpt.div q8_8 a b));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Fixedpt.div q8_8 a 0))

let test_fixed_incr_semantics () =
  check "of_int" 256 (Fixedpt.of_int q8_8 1);
  check "to_int trunc" 1 (Fixedpt.to_int q8_8 (Fixedpt.of_float q8_8 1.75))

let prop_fixed_mul_pow2_is_shift =
  QCheck.Test.make ~name:"fixed multiply by 0.5 equals shift right 1" ~count:500
    QCheck.(int_range (-30000) 30000)
    (fun a ->
      let half = Fixedpt.of_float q8_8 0.5 in
      Fixedpt.mul q8_8 a half = Fixedpt.shift_right q8_8 a 1)

let prop_fixed_add_assoc =
  QCheck.Test.make ~name:"wrapping addition associative" ~count:300
    QCheck.(triple small_int small_int small_int)
    (fun (a, b, c) ->
      Fixedpt.add q8_8 (Fixedpt.add q8_8 a b) c
      = Fixedpt.add q8_8 a (Fixedpt.add q8_8 b c))

let test_fixed_bad_format () =
  Alcotest.check_raises "zero bits" (Invalid_argument "Fixedpt.format: total bits must be in 1..62")
    (fun () -> ignore (Fixedpt.format ~int_bits:0 ~frac_bits:0))

(* ---- Interval ---- *)

let test_interval_overlap () =
  let mk = Interval.make in
  Alcotest.(check bool) "adjacent closed" true (Interval.overlaps (mk 0 2) (mk 2 4));
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (mk 0 1) (mk 2 4));
  Alcotest.(check bool) "nested" true (Interval.overlaps (mk 0 9) (mk 3 4));
  check "length" 3 (Interval.length (mk 2 4));
  Alcotest.check_raises "bad" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (mk 3 1))

let test_interval_max_overlap () =
  let mk = Interval.make in
  check "empty" 0 (Interval.max_overlap []);
  check "single" 1 (Interval.max_overlap [ mk 0 5 ]);
  check "stack of 3" 3 (Interval.max_overlap [ mk 0 5; mk 1 2; mk 2 3 ]);
  check "chain" 1 (Interval.max_overlap [ mk 0 0; mk 1 1; mk 2 2 ])

let test_interval_arith () =
  let mk = Interval.make in
  let eq name a b =
    Alcotest.(check (pair int int)) name (a.Interval.lo, a.Interval.hi)
      (b.Interval.lo, b.Interval.hi)
  in
  eq "of_width 8" (mk (-128) 127) (Interval.of_width 8);
  eq "of_width 1" (mk (-1) 0) (Interval.of_width 1);
  Alcotest.check_raises "of_width 0"
    (Invalid_argument "Interval.of_width: width out of 1..62") (fun () ->
      ignore (Interval.of_width 0));
  eq "add" (mk 3 12) (Interval.add (mk 1 4) (mk 2 8));
  eq "neg" (mk (-4) (-1)) (Interval.neg (mk 1 4));
  eq "mul signs" (mk (-12) 6) (Interval.mul (mk (-2) 1) (mk 2 6));
  eq "mul negative pair" (mk 2 12) (Interval.mul (mk (-4) (-1)) (mk (-3) (-2)));
  (match Interval.intersect (mk 0 5) (mk 3 9) with
  | Some iv -> eq "intersect" (mk 3 5) iv
  | None -> Alcotest.fail "overlapping intersection is empty");
  Alcotest.(check bool) "disjoint intersect" true
    (Interval.intersect (mk 0 1) (mk 3 9) = None)

let test_interval_widen () =
  let mk = Interval.make in
  let bound = Interval.of_width 8 in
  let eq name a b =
    Alcotest.(check (pair int int)) name (a.Interval.lo, a.Interval.hi)
      (b.Interval.lo, b.Interval.hi)
  in
  (* stable bounds stay; growing bounds jump to the widening bound *)
  eq "stable" (mk 0 5) (Interval.widen ~bound (mk 0 5) (mk 0 5));
  eq "hi grows" (mk 0 127) (Interval.widen ~bound (mk 0 5) (mk 0 6));
  eq "lo grows" (mk (-128) 5) (Interval.widen ~bound (mk 0 5) (mk (-1) 5));
  eq "inside stays" (mk 0 9) (Interval.widen ~bound (mk 0 9) (mk 2 7))

let prop_max_overlap_brute =
  QCheck.Test.make ~name:"max_overlap matches brute force" ~count:200
    Gen.intervals_arbitrary
    (fun seed ->
      let ivs = List.map snd (Gen.intervals_of_seed seed) in
      let brute =
        List.fold_left
          (fun acc p ->
            max acc (List.length (List.filter (fun iv -> Interval.contains iv p) ivs)))
          0
          (List.init 40 Fun.id)
      in
      Interval.max_overlap ivs = brute)

(* ---- Table / Dot / Vec ---- *)

let test_table_render () =
  let t = Table.create ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "xxx"; "y" ];
  Table.add_row t [ "1" ] (* short row pads *);
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: sep :: _ ->
      Alcotest.(check bool) "separator dashes" true (String.contains sep '-');
      Alcotest.(check bool) "header first" true (String.length header >= 4)
  | _ -> Alcotest.fail "too few lines");
  check "line count" 5 (List.length lines)

let test_dot_escaping () =
  let d = Dot.create "g\"raph" in
  Dot.node d ~attrs:[ ("label", "a\"b\nc") ] "n1";
  Dot.edge d "n1" "n1";
  let s = Dot.render d in
  Alcotest.(check bool) "escaped quote" true
    (String.length s > 0 && not (String.equal s ""));
  Alcotest.(check bool) "digraph" true (String.sub s 0 7 = "digraph")

let test_vec () =
  let v = Vec.create () in
  check "push0" 0 (Vec.push v 10);
  check "push1" 1 (Vec.push v 20);
  check "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  check "set" 99 (Vec.get v 0);
  Alcotest.(check (list int)) "to_list" [ 99; 20 ] (Vec.to_list v);
  check "fold" 119 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 99) v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 2))

(* ---- Binprog ---- *)

let test_binprog_basic () =
  let prog = Binprog.create () in
  let a = Binprog.new_var prog "a" in
  let b = Binprog.new_var prog "b" in
  let c = Binprog.new_var prog "c" in
  Binprog.add_group prog [ a; b ];
  Binprog.implies prog a c;
  (* minimize: prefer b (cost 0) over a (cost 1) *)
  (match Binprog.solve ~objective:[ (a, 1); (c, 1) ] prog with
  | Some value ->
      Alcotest.(check bool) "picks b" true (value b);
      Alcotest.(check bool) "not a" false (value a)
  | None -> Alcotest.fail "satisfiable");
  Alcotest.(check int) "vars" 3 (Binprog.n_vars prog)

let test_binprog_unsat () =
  let prog = Binprog.create () in
  let a = Binprog.new_var prog "a" in
  let b = Binprog.new_var prog "b" in
  Binprog.add_group prog [ a ];
  Binprog.add_group prog [ b ];
  Binprog.forbid_pair prog a b;
  Alcotest.(check bool) "unsat" true (Binprog.solve prog = None)

let test_binprog_at_most () =
  let prog = Binprog.create () in
  let vars = List.init 4 (fun i -> Binprog.new_var prog (Printf.sprintf "v%d" i)) in
  (* each var is an independent decision; forcing via implies from a
     grouped var *)
  let trigger = Binprog.new_var prog "t" in
  Binprog.add_group prog [ trigger ];
  List.iter (fun v -> Binprog.implies prog trigger v) vars;
  Binprog.at_most prog 3 vars;
  Alcotest.(check bool) "over budget unsat" true (Binprog.solve prog = None)

let prop_binprog_exactly_one =
  QCheck.Test.make ~name:"solution picks exactly one per group" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (n_groups, group_size) ->
      let prog = Binprog.create () in
      let groups =
        List.init n_groups (fun gi ->
            List.init group_size (fun k ->
                Binprog.new_var prog (Printf.sprintf "g%d_%d" gi k)))
      in
      List.iter (Binprog.add_group prog) groups;
      match Binprog.solve prog with
      | None -> false
      | Some value ->
          List.for_all
            (fun g -> List.length (List.filter value g) = 1)
            groups)

let () =
  Alcotest.run "util"
    [
      ( "pqueue",
        [
          Alcotest.test_case "basic" `Quick test_pqueue_basic;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "pop empty" `Quick test_pqueue_pop_empty;
          QCheck_alcotest.to_alcotest prop_pqueue_sorts;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "groups" `Quick test_union_find_groups;
          Alcotest.test_case "idempotent" `Quick test_union_find_idempotent;
          QCheck_alcotest.to_alcotest prop_union_find_transitive;
        ] );
      ( "fixedpt",
        [
          Alcotest.test_case "roundtrip" `Quick test_fixed_roundtrip;
          Alcotest.test_case "wrap" `Quick test_fixed_wrap;
          Alcotest.test_case "mul/div" `Quick test_fixed_mul_div;
          Alcotest.test_case "int conversions" `Quick test_fixed_incr_semantics;
          Alcotest.test_case "bad format" `Quick test_fixed_bad_format;
          QCheck_alcotest.to_alcotest prop_fixed_mul_pow2_is_shift;
          QCheck_alcotest.to_alcotest prop_fixed_add_assoc;
        ] );
      ( "interval",
        [
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
          Alcotest.test_case "max_overlap" `Quick test_interval_max_overlap;
          Alcotest.test_case "range arithmetic" `Quick test_interval_arith;
          Alcotest.test_case "widen" `Quick test_interval_widen;
          QCheck_alcotest.to_alcotest prop_max_overlap_brute;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "dot" `Quick test_dot_escaping;
          Alcotest.test_case "vec" `Quick test_vec;
        ] );
      ( "binprog",
        [
          Alcotest.test_case "objective" `Quick test_binprog_basic;
          Alcotest.test_case "unsat" `Quick test_binprog_unsat;
          Alcotest.test_case "at-most" `Quick test_binprog_at_most;
          QCheck_alcotest.to_alcotest prop_binprog_exactly_one;
        ] );
    ]
