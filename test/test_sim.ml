(* Simulation tests: the behavioral interpreter's semantics, behavioral =
   CDFG equivalence on random programs, RTL cycle accounting, and full
   three-level co-simulation of every workload (the design-verification
   experiment). *)

open Hls_lang
open Hls_core
open Hls_sim

let fix824 = Ast.Tfix (8, 24)

(* ---- behavioral interpreter ---- *)

let run_src src inputs =
  Beh_sim.run (Typecheck.check (Parser.parse src)) ~inputs

let test_beh_sqrt_accuracy () =
  List.iter
    (fun x ->
      let out = run_src Workloads.sqrt_newton [ ("x", Beh_sim.to_raw fix824 x) ] in
      let y = Beh_sim.of_raw fix824 (List.assoc "y" out) in
      Alcotest.(check bool)
        (Printf.sprintf "sqrt %f: %f vs %f" x y (sqrt x))
        true
        (abs_float (y -. sqrt x) < 1e-4))
    [ 0.0625; 0.1; 0.25; 0.5; 0.9; 1.0 ]

let test_beh_gcd () =
  List.iter
    (fun (a, b, g) ->
      let out = run_src Workloads.gcd [ ("a_in", a); ("b_in", b) ] in
      Alcotest.(check int) (Printf.sprintf "gcd %d %d" a b) g (List.assoc "g" out))
    [ (12, 18, 6); (7, 7, 7); (35, 14, 7); (100, 75, 25); (17, 5, 1) ]

let test_beh_wrap_semantics () =
  let out =
    run_src "module m(input a: int<4>; output y: int<4>); begin y := a + 1; end"
      [ ("a", 7) ]
  in
  Alcotest.(check int) "int<4> overflow wraps" (-8) (List.assoc "y" out)

let test_beh_division_by_zero () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (run_src "module m(input a: int<8>; output y: int<8>); begin y := 1 / a; end"
            [ ("a", 0) ]);
       false
     with Beh_sim.Sim_error _ -> true)

let test_beh_fuel () =
  Alcotest.(check bool) "non-terminating loop trapped" true
    (try
       ignore
         (Beh_sim.run ~fuel:1000
            (Typecheck.check
               (Parser.parse
                  "module m(output y: int<8>); begin y := 0; while y = 0 do y := 0; end; end"))
            ~inputs:[]);
       false
     with Beh_sim.Sim_error _ -> true)

let test_beh_for_loop () =
  let out =
    run_src
      "module m(output y: int<16>); var i: int<8>; begin y := 0; for i := 1 to 10 do y := y + i; end; end"
      []
  in
  Alcotest.(check int) "sum 1..10" 55 (List.assoc "y" out)

(* ---- behavioral = CDFG ---- *)

let prop_beh_cfg_agree =
  QCheck.Test.make ~name:"behavioral and CDFG interpreters agree" ~count:200
    Gen.program_arbitrary
    (fun seed ->
      let prog = Typecheck.check (Gen.program_of_seed seed) in
      let cfg = Hls_cdfg.Compile.compile prog in
      let rng = Random.State.make [| seed * 3 |] in
      List.for_all
        (fun _ ->
          let inputs =
            [ ("a", Random.State.int rng 500); ("b", Random.State.int rng 500) ]
          in
          let r1 = Beh_sim.run prog ~inputs in
          let r2 = Cfg_sim.run cfg ~inputs in
          List.for_all
            (fun p -> List.assoc_opt p r1 = List.assoc_opt p r2)
            [ "o1"; "o2" ])
        [ 1; 2; 3 ])

(* ---- RTL cycle accounting ---- *)

let test_rtl_cycles_sqrt () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let r = Rtl_sim.run d.Flow.datapath ~inputs:[ ("x", Beh_sim.to_raw fix824 0.5) ] in
  (* 10 compute steps + 1 exit state *)
  Alcotest.(check int) "cycles" 11 r.Rtl_sim.cycles

let test_rtl_trace_matches_schedule () =
  let d = Flow.synthesize Workloads.fir8 in
  let r = Rtl_sim.run d.Flow.datapath ~inputs:[ ("x0", 100) ] in
  Alcotest.(check int) "straight-line cycles = FSM states"
    (Hls_sched.Cfg_sched.total_states d.Flow.sched)
    r.Rtl_sim.cycles

(* ---- VCD waveforms ---- *)

let test_vcd_dump () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let text =
    Vcd.dump d.Flow.datapath ~inputs:[ ("x", Beh_sim.to_raw fix824 0.25) ]
  in
  let contains needle =
    let lh = String.length text and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub text i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (contains fragment))
    [ "$timescale"; "$enddefinitions"; "$dumpvars"; " state $end"; " y $end"; "#11" ];
  (* every non-empty line is well-formed: directive, timestamp, or a
     binary value change *)
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "line %S" line)
          true
          (line.[0] = '$' || line.[0] = '#' || line.[0] = 'b'))
    (String.split_on_char '
' text)

(* ---- compiled simulator vs. reference interpreter ---- *)

(* positive patterns, as in Cosim.check_random: divisions in the specs
   stay well-defined and fixed-point quotients stay in range *)
let random_input_value rng ty =
  let bits =
    match ty with Ast.Tbool -> 1 | Ast.Tint w -> w | Ast.Tfix (i, f) -> i + f
  in
  let magnitude = max 1 (min (bits - 1) 16) in
  1 + Random.State.int rng ((1 lsl magnitude) - 1)

let input_ports_of (prog : Typed.tprogram) =
  List.filter_map
    (fun (p : Ast.port) ->
      if p.Ast.pdir = Ast.Input then Some (p.Ast.pname, p.Ast.pty) else None)
    prog.Typed.tports

let sim_trace kernel dp ~inputs =
  let log = ref [] in
  let on_cycle ~cycle ~state ~regs = log := (cycle, state, regs) :: !log in
  let r = kernel ~on_cycle dp ~inputs in
  (r.Rtl_sim.finals, r.Rtl_sim.cycles, List.rev !log)

let check_sim_agree ~what dp ~inputs ~gate_level_control ~encoding =
  let compiled =
    sim_trace
      (fun ~on_cycle dp ~inputs ->
        Rtl_sim.run ~gate_level_control ~encoding ~on_cycle dp ~inputs)
      dp ~inputs
  in
  let interpreted =
    sim_trace
      (fun ~on_cycle dp ~inputs ->
        Rtl_sim.run_reference ~gate_level_control ~encoding ~on_cycle dp ~inputs)
      dp ~inputs
  in
  Alcotest.(check bool)
    (what ^ ": finals, cycles and per-cycle trace agree")
    true (compiled = interpreted)

(* every workload runs the abstract controller (two vectors) plus
   gate-level binary and gray; one-hot is restricted to the small FSMs —
   Quine–McCluskey over one-hot state bits of the largest workloads takes
   tens of seconds per synthesis and each agreement check synthesizes on
   both the compiled and reference sides *)
let sim_modes_of name =
  [
    (2, false, Hls_ctrl.Encoding.Binary);
    (1, true, Hls_ctrl.Encoding.Binary);
    (1, true, Hls_ctrl.Encoding.Gray);
  ]
  @
  if List.mem name [ "sqrt"; "gcd"; "twophase" ] then
    [ (1, true, Hls_ctrl.Encoding.One_hot) ]
  else []

let test_compiled_sim_matches_reference () =
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      let prog = (Flow.cosim_design d).Cosim.d_prog in
      let ports = input_ports_of prog in
      let rng = Random.State.make [| 11 |] in
      List.iter
        (fun (vectors, glc, enc) ->
          for _ = 1 to vectors do
            let inputs =
              List.map (fun (n, ty) -> (n, random_input_value rng ty)) ports
            in
            check_sim_agree
              ~what:
                (Printf.sprintf "%s gate=%b %s" name glc
                   (Hls_ctrl.Encoding.style_to_string enc))
              d.Flow.datapath ~inputs ~gate_level_control:glc ~encoding:enc
          done)
        (sim_modes_of name))
    Workloads.all

let test_vcd_compiled_equals_reference () =
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      let prog = (Flow.cosim_design d).Cosim.d_prog in
      let rng = Random.State.make [| 23 |] in
      let inputs =
        List.map (fun (n, ty) -> (n, random_input_value rng ty)) (input_ports_of prog)
      in
      let fast = Vcd.dump d.Flow.datapath ~inputs in
      let slow = Vcd.dump ~use_reference:true d.Flow.datapath ~inputs in
      Alcotest.(check string) (name ^ ": identical VCD text") slow fast)
    Workloads.all

let prop_compiled_sim_matches_reference_random =
  QCheck.Test.make
    ~name:"compiled RTL simulator matches the reference on random programs" ~count:30
    Gen.program_arbitrary
    (fun seed ->
      let prog = Gen.program_of_seed seed in
      let d = Flow.synthesize_program prog in
      let tprog = (Flow.cosim_design d).Cosim.d_prog in
      let ports = input_ports_of tprog in
      let rng = Random.State.make [| (seed * 7) + 1 |] in
      (* abstract controller only: gate-level synthesis on arbitrary
         random FSMs can hit multi-second QM minimizations, and the
         workload matrix above already covers gate-level agreement *)
      List.for_all
        (fun _ ->
          let inputs =
            List.map (fun (n, ty) -> (n, random_input_value rng ty)) ports
          in
          let kernel
              (runner :
                ?fuel:int ->
                ?gate_level_control:bool ->
                ?encoding:Hls_ctrl.Encoding.style ->
                ?on_cycle:(cycle:int -> state:int -> regs:(string * int) list -> unit) ->
                Hls_rtl.Datapath.t ->
                inputs:(string * int) list ->
                Rtl_sim.result) ~on_cycle dp ~inputs =
            runner ~on_cycle dp ~inputs
          in
          sim_trace (kernel Rtl_sim.run) d.Flow.datapath ~inputs
          = sim_trace (kernel Rtl_sim.run_reference) d.Flow.datapath ~inputs)
        [ 1; 2 ])

let test_batch_equals_individual_runs () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let prog = (Flow.cosim_design d).Cosim.d_prog in
  let ports = input_ports_of prog in
  let rng = Random.State.make [| 7 |] in
  let rec gen i acc =
    if i >= 6 then List.rev acc
    else
      gen (i + 1)
        (List.map (fun (n, ty) -> (n, random_input_value rng ty)) ports :: acc)
  in
  let vectors = gen 0 [] in
  let image = Rtl_sim.compile d.Flow.datapath in
  let batch0 = Hls_obs.Trace.counter "sim/batch_vectors" in
  let batched = Rtl_sim.run_batch image ~vectors in
  Alcotest.(check int) "batch size counted" 6
    (Hls_obs.Trace.counter "sim/batch_vectors" - batch0);
  List.iter2
    (fun (b : Rtl_sim.result) inputs ->
      let r = Rtl_sim.run_image image ~inputs in
      Alcotest.(check int) "cycles agree" r.Rtl_sim.cycles b.Rtl_sim.cycles;
      Alcotest.(check (list (pair string int)))
        "finals agree" r.Rtl_sim.finals b.Rtl_sim.finals)
    batched vectors

(* ---- cosim: the verification experiment ---- *)

let test_cosim_all_workloads () =
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      match Cosim.check_random ~runs:8 (Flow.cosim_design d) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    Workloads.all

let test_cosim_gate_level () =
  List.iter
    (fun name ->
      let d = Flow.synthesize (Workloads.find name) in
      match Cosim.check_random ~runs:4 ~gate_level_control:true (Flow.cosim_design d) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s (gate level): %s" name e)
    [ "sqrt"; "gcd"; "fir8" ]

let test_cosim_detects_mismatch () =
  (* simulate against the wrong datapath: must be flagged *)
  let d1 = Flow.synthesize Workloads.sqrt_newton in
  let d2 =
    Flow.synthesize
      "module sqrt(input x: fix<8,24>; output y: fix<8,24>); begin y := x; end"
  in
  let franken =
    { (Flow.cosim_design d1) with Cosim.d_datapath = d2.Flow.datapath }
  in
  match Cosim.check franken ~inputs:[ ("x", Beh_sim.to_raw fix824 0.5) ] with
  | Ok _ -> Alcotest.fail "mismatch not detected"
  | Error e -> Alcotest.(check bool) "names the output" true (String.length e > 0)

let prop_random_programs_synthesize_and_cosim =
  QCheck.Test.make ~name:"random programs synthesize and co-simulate" ~count:40
    Gen.program_arbitrary
    (fun seed ->
      let prog = Gen.program_of_seed seed in
      let d = Flow.synthesize_program prog in
      match Cosim.check_random ~runs:3 ~seed (Flow.cosim_design d) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let () =
  Alcotest.run "sim"
    [
      ( "behavioral",
        [
          Alcotest.test_case "sqrt accuracy" `Quick test_beh_sqrt_accuracy;
          Alcotest.test_case "gcd" `Quick test_beh_gcd;
          Alcotest.test_case "wraparound" `Quick test_beh_wrap_semantics;
          Alcotest.test_case "division by zero" `Quick test_beh_division_by_zero;
          Alcotest.test_case "fuel" `Quick test_beh_fuel;
          Alcotest.test_case "for loop" `Quick test_beh_for_loop;
        ] );
      ("cdfg", [ QCheck_alcotest.to_alcotest prop_beh_cfg_agree ]);
      ( "rtl",
        [
          Alcotest.test_case "sqrt cycle count" `Quick test_rtl_cycles_sqrt;
          Alcotest.test_case "cycles = states (straight line)" `Quick test_rtl_trace_matches_schedule;
        ] );
      ("vcd", [ Alcotest.test_case "dump" `Quick test_vcd_dump ]);
      ( "compiled",
        [
          Alcotest.test_case "matches reference on workloads x encoding x control" `Slow
            test_compiled_sim_matches_reference;
          Alcotest.test_case "identical VCD text" `Quick test_vcd_compiled_equals_reference;
          Alcotest.test_case "batch replay equals individual runs" `Quick
            test_batch_equals_individual_runs;
          QCheck_alcotest.to_alcotest prop_compiled_sim_matches_reference_random;
        ] );
      ( "cosim",
        [
          Alcotest.test_case "all workloads" `Slow test_cosim_all_workloads;
          Alcotest.test_case "gate-level control" `Quick test_cosim_gate_level;
          Alcotest.test_case "detects mismatch" `Quick test_cosim_detects_mismatch;
          QCheck_alcotest.to_alcotest prop_random_programs_synthesize_and_cosim;
        ] );
    ]
