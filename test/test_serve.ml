(* Serve-layer tests: the disk cache (roundtrip, corruption reads as a
   miss), the persistent Dse layer (a fresh engine over the same cache
   dir answers from disk, bit-identically), exception-safety of the
   memoized engine (a raising eval must not wedge the next call), the
   bounded queue's deterministic admission, Pool.map survival after a
   raising item, and the server core: concurrent requests with
   deterministic counters, plus busy rejection over a real socket. *)

open Hls_util
open Hls_core
module Serve = Hls_serve
module Trace = Hls_obs.Trace
module J = Json

let fresh_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsc_serve_test_%d_%d_%s" (Unix.getpid ()) !n tag)

let diffeq = List.assoc "diffeq" Workloads.all

(* ---- Disk_cache ---- *)

let test_disk_cache_roundtrip () =
  let dir = fresh_dir "rt" in
  Alcotest.(check bool) "store succeeds" true (Disk_cache.store ~dir ~key:"k1" "payload one");
  Alcotest.(check bool) "second key" true (Disk_cache.store ~dir ~key:"k2" "payload two");
  Alcotest.(check (option string)) "k1 back" (Some "payload one") (Disk_cache.load ~dir ~key:"k1");
  Alcotest.(check (option string)) "k2 back" (Some "payload two") (Disk_cache.load ~dir ~key:"k2");
  Alcotest.(check (option string)) "absent key misses" None (Disk_cache.load ~dir ~key:"k3");
  Alcotest.(check int) "two entries listed" 2 (List.length (Disk_cache.entries ~dir));
  Alcotest.(check bool) "overwrite succeeds" true (Disk_cache.store ~dir ~key:"k1" "updated");
  Alcotest.(check (option string)) "overwrite visible" (Some "updated")
    (Disk_cache.load ~dir ~key:"k1")

let test_disk_cache_corruption_is_miss () =
  let dir = fresh_dir "corrupt" in
  ignore (Disk_cache.store ~dir ~key:"k" "precious bytes");
  let path = Disk_cache.entry_path ~dir ~key:"k" in
  (* truncated mid-payload *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 3)));
  Alcotest.(check (option string)) "truncated entry misses" None (Disk_cache.load ~dir ~key:"k");
  (* outright garbage *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a cache entry");
  Alcotest.(check (option string)) "garbage entry misses" None (Disk_cache.load ~dir ~key:"k");
  (* empty file *)
  Out_channel.with_open_bin path (fun _ -> ());
  Alcotest.(check (option string)) "empty entry misses" None (Disk_cache.load ~dir ~key:"k");
  (* flipped payload byte behind a valid header *)
  ignore (Disk_cache.store ~dir ~key:"k" "precious bytes");
  let full = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string full in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  Alcotest.(check (option string)) "bit-flipped entry misses" None
    (Disk_cache.load ~dir ~key:"k")

(* ---- persistent Dse layer ---- *)

let cached_config dir =
  { Dse.default_config with Dse.cache_dir = Some dir }

let test_dse_disk_persistence () =
  let dir = fresh_dir "persist" in
  let opts = Flow.default_options in
  let e1 = Dse.create ~config:(cached_config dir) diffeq in
  let d1 =
    match Dse.eval_result e1 opts with Ok d -> d | Error _ -> Alcotest.fail "eval 1"
  in
  let hits0 = Trace.counter "serve/disk_hits" in
  (* a fresh engine models a daemon restart: empty in-memory tables,
     same store — the design must come back from disk, bit-identical *)
  let e2 = Dse.create ~config:(cached_config dir) diffeq in
  let d2 =
    match Dse.eval_result e2 opts with Ok d -> d | Error _ -> Alcotest.fail "eval 2"
  in
  Alcotest.(check bool) "disk hit on restart" true (Trace.counter "serve/disk_hits" > hits0);
  Alcotest.(check string) "bit-identical design" (Dse.design_digest d1) (Dse.design_digest d2);
  Alcotest.(check int) "frontend never ran in engine 2" 0 (Dse.stats e2).Dse.frontend.Dse.misses

let test_dse_corrupt_entry_recomputes () =
  let dir = fresh_dir "recompute" in
  let opts = Flow.default_options in
  let e1 = Dse.create ~config:(cached_config dir) diffeq in
  let d1 =
    match Dse.eval_result e1 opts with Ok d -> d | Error _ -> Alcotest.fail "eval 1"
  in
  (* corrupt every stored entry behind the engine's back *)
  List.iter
    (fun base ->
      let path = Filename.concat dir base in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "corrupt"))
    (Disk_cache.entries ~dir);
  let misses0 = Trace.counter "serve/disk_misses" in
  let e2 = Dse.create ~config:(cached_config dir) diffeq in
  let d2 =
    match Dse.eval_result e2 opts with Ok d -> d | Error _ -> Alcotest.fail "eval 2"
  in
  Alcotest.(check bool) "corrupt entry read as a miss" true
    (Trace.counter "serve/disk_misses" > misses0);
  Alcotest.(check string) "recompute reproduces the design" (Dse.design_digest d1)
    (Dse.design_digest d2)

let test_dse_exception_does_not_wedge () =
  (* a raising eval must release the single-flight slot: the next call
     on the same engine raises again promptly instead of blocking on a
     Pending entry nobody will ever complete *)
  let e = Dse.create ~config:(cached_config (fresh_dir "wedge")) "x :=" in
  let raises () =
    match Dse.eval_result e Flow.default_options with
    | exception Hls_lang.Ast.Frontend_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "first eval raises" true (raises ());
  Alcotest.(check bool) "second eval raises too (no wedge)" true (raises ());
  (* the engine's bookkeeping survives: stats and clear still work *)
  ignore (Dse.stats e);
  Dse.clear e;
  Alcotest.(check bool) "third eval after clear raises" true (raises ())

(* ---- bounded queue ---- *)

let test_bqueue_bound () =
  let q = Serve.Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "offer 1" true (Serve.Bqueue.offer q 1);
  Alcotest.(check bool) "offer 2" true (Serve.Bqueue.offer q 2);
  Alcotest.(check bool) "offer 3 refused at bound" false (Serve.Bqueue.offer q 3);
  Alcotest.(check (option int)) "fifo take" (Some 1) (Serve.Bqueue.take q);
  Alcotest.(check bool) "slot freed" true (Serve.Bqueue.offer q 4);
  Serve.Bqueue.close q;
  Alcotest.(check bool) "offer after close refused" false (Serve.Bqueue.offer q 5);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Serve.Bqueue.take q);
  Alcotest.(check (option int)) "drain 4" (Some 4) (Serve.Bqueue.take q);
  Alcotest.(check (option int)) "closed and drained" None (Serve.Bqueue.take q)

let test_bqueue_zero_capacity () =
  let q = Serve.Bqueue.create ~capacity:0 in
  Alcotest.(check bool) "capacity 0 refuses everything" false (Serve.Bqueue.offer q 1)

let test_bqueue_close_wakes_takers () =
  let q : int Serve.Bqueue.t = Serve.Bqueue.create ~capacity:4 in
  let taker = Domain.spawn (fun () -> Serve.Bqueue.take q) in
  Unix.sleepf 0.05;
  Serve.Bqueue.close q;
  Alcotest.(check (option int)) "blocked taker woken by close" None (Domain.join taker)

(* ---- Pool.map after a raising item ---- *)

let test_pool_usable_after_raise () =
  let p = Pool.create ~workers:2 in
  Alcotest.check_raises "original exception re-raised" (Failure "item 3 exploded")
    (fun () ->
      ignore
        (Pool.map ~pool:p
           (fun x -> if x = 3 then failwith "item 3 exploded" else x * 10)
           (List.init 8 Fun.id)));
  (* no stranded chunks: the same pool still completes a full map *)
  Alcotest.(check (list int)) "pool survives the raising map"
    [ 0; 10; 20; 30 ]
    (Pool.map ~pool:p (fun x -> x * 10) [ 0; 1; 2; 3 ]);
  Pool.shutdown p

(* ---- server core ---- *)

let synth_req ?(fus = 2) () =
  J.Obj
    [
      ("cmd", J.Str "synth");
      ("workload", J.Str "diffeq");
      ("options", J.Obj [ ("fus", J.of_int fus) ]);
    ]

let str_field name json =
  match J.str_member name json with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "response missing %S: %s" name (J.to_string json))

let design_hash json =
  match J.member "design" json with
  | Some d -> str_field "design_hash" d
  | None -> Alcotest.fail ("response missing design: " ^ J.to_string json)

let test_handle_synth_and_errors () =
  let t = Serve.Server.create () in
  let ok = Serve.Server.handle t (synth_req ()) in
  Alcotest.(check string) "synth ok" "ok" (str_field "status" ok);
  Alcotest.(check bool) "hash present" true (String.length (design_hash ok) = 32);
  (* malformed requests and broken sources answer, never raise *)
  let checks =
    [
      ("no cmd", J.Obj [ ("workload", J.Str "diffeq") ]);
      ("unknown cmd", J.Obj [ ("cmd", J.Str "frobnicate") ]);
      ("unknown workload", J.Obj [ ("cmd", J.Str "synth"); ("workload", J.Str "nope") ]);
      ("frontend error", J.Obj [ ("cmd", J.Str "synth"); ("source", J.Str "x :=") ]);
      ( "bad option",
        J.Obj
          [
            ("cmd", J.Str "synth");
            ("workload", J.Str "diffeq");
            ("options", J.Obj [ ("scheduler", J.Str "magic") ]);
          ] );
    ]
  in
  List.iter
    (fun (what, req) ->
      Alcotest.(check string) what "error" (str_field "status" (Serve.Server.handle t req)))
    checks;
  Alcotest.(check string) "bad JSON text" "error"
    (str_field "status" (Serve.Server.handle_text t "{nope"));
  (* distinct span ids per request *)
  let span r = Option.get (J.int_member "span" r) in
  let first = span (Serve.Server.handle t (synth_req ())) in
  let second = span (Serve.Server.handle t (synth_req ())) in
  Alcotest.(check bool) "fresh span ids" true (first < second)

let test_handle_concurrent_deterministic () =
  let dir = fresh_dir "concurrent" in
  let t =
    Serve.Server.create
      ~config:{ Serve.Server.default_config with Serve.Server.cache_dir = Some dir }
      ()
  in
  let requests0 = Trace.counter "serve/requests" in
  let persist_miss0 = Trace.counter "dse/persist.misses" in
  let persist_hit0 = Trace.counter "dse/persist.hits" in
  let n = 4 in
  let workers =
    List.init n (fun _ -> Domain.spawn (fun () -> Serve.Server.handle t (synth_req ())))
  in
  let replies = List.map Domain.join workers in
  let hashes = List.map design_hash replies in
  List.iter (fun r -> Alcotest.(check string) "all ok" "ok" (str_field "status" r)) replies;
  Alcotest.(check int) "one shared engine" 1 (Serve.Server.engine_count t);
  (match hashes with
  | h :: rest -> List.iter (Alcotest.(check string) "identical designs" h) rest
  | [] -> Alcotest.fail "no replies");
  Alcotest.(check int) "serve/requests counts every request" n
    (Trace.counter "serve/requests" - requests0);
  (* single-flight: exactly one point computation, the rest are hits —
     for any interleaving of the n domains *)
  Alcotest.(check int) "one persist miss" 1 (Trace.counter "dse/persist.misses" - persist_miss0);
  Alcotest.(check int) "n-1 persist hits" (n - 1)
    (Trace.counter "dse/persist.hits" - persist_hit0)

(* ---- protocol: pipeline specs and versioning ---- *)

module P = Hls_transform.Passes

let test_proto_passes_codec () =
  let passes =
    match P.pipeline_of_string "aggressive+extract:latency" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let opts = { Flow.default_options with Flow.passes } in
  let j = Serve.Proto.options_to_json opts in
  Alcotest.(check (option string)) "canonical spec emitted"
    (Some "aggressive+extract:latency") (J.str_member "passes" j);
  match Serve.Proto.options_of_json j with
  | Ok o -> Alcotest.(check bool) "codec round-trip" true (o.Flow.passes = passes)
  | Error e -> Alcotest.fail e

let test_proto_legacy_opt_level () =
  (* protocol-1 clients still speak opt_level *)
  match Serve.Proto.options_of_json (J.Obj [ ("opt_level", J.Str "aggressive") ]) with
  | Ok o ->
      Alcotest.(check bool) "maps to the aggressive pipeline" true
        (o.Flow.passes = P.level `Aggressive)
  | Error e -> Alcotest.fail e

let test_proto_bad_spec () =
  (match Serve.Proto.options_of_json (J.Obj [ ("passes", J.Str "standard+bogus") ]) with
  | Ok _ -> Alcotest.fail "accepted a bogus modifier"
  | Error _ -> ());
  match Serve.Proto.options_of_json (J.Obj [ ("passes", J.Str "cse,stregth") ]) with
  | Ok _ -> Alcotest.fail "accepted a misspelled pass"
  | Error e ->
      (* the typed find error surfaces its suggestion through the wire *)
      Alcotest.(check bool) "error suggests the pass" true
        (let lh = String.length e and n = "strength" in
         let ln = String.length n in
         let rec go i = i + ln <= lh && (String.sub e i ln = n || go (i + 1)) in
         go 0)

let test_proto_versioning () =
  let t = Serve.Server.create () in
  let r = Serve.Server.handle t (synth_req ()) in
  Alcotest.(check (option int)) "response advertises the protocol"
    (Some Serve.Proto.version) (J.int_member "proto" r);
  let ping proto = J.Obj [ ("cmd", J.Str "ping"); ("proto", J.of_int proto) ] in
  Alcotest.(check string) "current version accepted" "ok"
    (str_field "status" (Serve.Server.handle t (ping Serve.Proto.version)));
  Alcotest.(check string) "older version accepted" "ok"
    (str_field "status" (Serve.Server.handle t (ping 1)));
  Alcotest.(check string) "future version refused" "error"
    (str_field "status" (Serve.Server.handle t (ping (Serve.Proto.version + 1))))

let test_proto_synth_with_passes () =
  let t = Serve.Server.create () in
  let req =
    J.Obj
      [
        ("cmd", J.Str "synth");
        ("workload", J.Str "gcd");
        ("options", J.Obj [ ("passes", J.Str "extract") ]);
      ]
  in
  let r = Serve.Server.handle t req in
  Alcotest.(check string) "ok" "ok" (str_field "status" r);
  match Option.bind (J.member "design" r) (J.member "options") with
  | Some o ->
      Alcotest.(check (option string)) "spec echoed back" (Some "extract")
        (J.str_member "passes" o)
  | None -> Alcotest.fail "design options missing"

(* ---- sockets: busy rejection and graceful stop ---- *)

let test_socket_busy_rejection () =
  let path = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hlsc_busy_%d.sock" (Unix.getpid ())) in
  (* capacity-0 queue: every connection is refused with a typed busy *)
  let t =
    Serve.Server.create
      ~config:{ Serve.Server.default_config with Serve.Server.max_queue = 0; workers = 1 }
      ()
  in
  let rejected0 = Trace.counter "serve/rejected" in
  let server = Domain.spawn (fun () -> Serve.Server.serve_unix t ~path) in
  let rec await_socket n =
    if n = 0 then Alcotest.fail "socket never appeared";
    if not (Sys.file_exists path) then (Unix.sleepf 0.02; await_socket (n - 1))
  in
  await_socket 100;
  let c = Serve.Server.Client.connect path in
  let reply =
    match Serve.Server.Client.request c (J.Obj [ ("cmd", J.Str "stats") ]) with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Serve.Server.Client.close c;
  Alcotest.(check string) "typed busy response" "busy" (str_field "status" reply);
  Alcotest.(check bool) "rejection counted" true (Trace.counter "serve/rejected" > rejected0);
  Serve.Server.request_stop t;
  Domain.join server;
  Alcotest.(check bool) "socket unlinked on stop" false (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [
      ( "disk-cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_disk_cache_roundtrip;
          Alcotest.test_case "corruption is a miss" `Quick test_disk_cache_corruption_is_miss;
        ] );
      ( "dse-persist",
        [
          Alcotest.test_case "fresh engine hits disk" `Quick test_dse_disk_persistence;
          Alcotest.test_case "corrupt entry recomputes" `Quick test_dse_corrupt_entry_recomputes;
          Alcotest.test_case "raising eval does not wedge" `Quick
            test_dse_exception_does_not_wedge;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "bound and drain" `Quick test_bqueue_bound;
          Alcotest.test_case "zero capacity" `Quick test_bqueue_zero_capacity;
          Alcotest.test_case "close wakes takers" `Quick test_bqueue_close_wakes_takers;
        ] );
      ( "pool",
        [ Alcotest.test_case "usable after a raising map" `Quick test_pool_usable_after_raise ] );
      ( "proto",
        [
          Alcotest.test_case "passes codec round-trip" `Quick test_proto_passes_codec;
          Alcotest.test_case "legacy opt_level accepted" `Quick test_proto_legacy_opt_level;
          Alcotest.test_case "bad spec rejected with suggestion" `Quick test_proto_bad_spec;
          Alcotest.test_case "versioning" `Quick test_proto_versioning;
          Alcotest.test_case "synth under a passes spec" `Quick test_proto_synth_with_passes;
        ] );
      ( "server",
        [
          Alcotest.test_case "synth and structured errors" `Quick test_handle_synth_and_errors;
          Alcotest.test_case "concurrent requests deterministic" `Quick
            test_handle_concurrent_deterministic;
          Alcotest.test_case "busy rejection over a socket" `Quick test_socket_busy_rejection;
        ] );
    ]
