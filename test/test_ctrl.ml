(* Controller tests: state encodings, two-level logic, Quine–McCluskey
   minimization (with an exhaustive-equivalence property), FSM
   extraction, synthesized next-state logic correctness, and microcode
   cost relations. *)

open Hls_sched
open Hls_ctrl

(* ---- encodings ---- *)

let test_encoding_widths () =
  Alcotest.(check int) "binary 5" 3 (Encoding.width Encoding.Binary ~n_states:5);
  Alcotest.(check int) "binary 8" 3 (Encoding.width Encoding.Binary ~n_states:8);
  Alcotest.(check int) "binary 9" 4 (Encoding.width Encoding.Binary ~n_states:9);
  Alcotest.(check int) "gray 5" 3 (Encoding.width Encoding.Gray ~n_states:5);
  Alcotest.(check int) "one-hot 5" 5 (Encoding.width Encoding.One_hot ~n_states:5);
  Alcotest.(check int) "binary 1" 1 (Encoding.width Encoding.Binary ~n_states:1)

let test_encoding_distinct () =
  List.iter
    (fun style ->
      let codes = Encoding.encode style ~n_states:12 in
      let sorted = List.sort_uniq compare (Array.to_list codes) in
      Alcotest.(check int)
        (Encoding.style_to_string style)
        12 (List.length sorted))
    [ Encoding.Binary; Encoding.Gray; Encoding.One_hot ]

let test_gray_adjacent () =
  let codes = Encoding.encode Encoding.Gray ~n_states:16 in
  let popcount v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
    go v 0
  in
  for i = 0 to 14 do
    Alcotest.(check int) "one bit flips" 1 (popcount (codes.(i) lxor codes.(i + 1)))
  done

let test_one_hot_codes () =
  let codes = Encoding.encode Encoding.One_hot ~n_states:4 in
  Alcotest.(check (array int)) "powers of two" [| 1; 2; 4; 8 |] codes

(* ---- logic ---- *)

let test_logic_eval () =
  let c = { Logic.mask = 0b101; value = 0b001 } in
  Alcotest.(check bool) "covers" true (Logic.cube_covers c 0b011);
  Alcotest.(check bool) "not covers" false (Logic.cube_covers c 0b100);
  Alcotest.(check int) "literals" 2 (Logic.literals ~n_inputs:3 c);
  Alcotest.(check bool) "sop" true (Logic.eval [ c; { Logic.mask = 0; value = 0 } ] 0b100);
  Alcotest.(check string) "render" "!x2&x0" (Logic.cube_to_string ~n_inputs:3 c)

(* ---- Quine–McCluskey ---- *)

let test_qm_classics () =
  (* full function -> universal cube *)
  (match Qm.minimize ~n_inputs:2 ~on_set:[ 0; 1; 2; 3 ] () with
  | [ { Logic.mask = 0; value = 0 } ] -> ()
  | sop -> Alcotest.failf "expected universal cube, got %s" (Logic.sop_to_string ~n_inputs:2 sop));
  (* xor needs two full product terms *)
  Alcotest.(check int) "xor cubes" 2 (List.length (Qm.minimize ~n_inputs:2 ~on_set:[ 1; 2 ] ()));
  (* empty function *)
  Alcotest.(check int) "empty" 0 (List.length (Qm.minimize ~n_inputs:3 ~on_set:[] ()));
  (* don't cares enable merging: f(0)=1, f(1)=dc over 1 var -> constant 1 *)
  match Qm.minimize ~n_inputs:1 ~on_set:[ 0 ] ~dc_set:[ 1 ] () with
  | [ { Logic.mask = 0; value = 0 } ] -> ()
  | sop -> Alcotest.failf "dc merge failed: %s" (Logic.sop_to_string ~n_inputs:1 sop)

let test_qm_rejects_overlap () =
  Alcotest.(check bool) "overlap" true
    (try
       ignore (Qm.minimize ~n_inputs:2 ~on_set:[ 1 ] ~dc_set:[ 1 ] ());
       false
     with Invalid_argument _ -> true)

let prop_qm_equivalent =
  QCheck.Test.make ~name:"QM result equals the function (exhaustive)" ~count:300
    QCheck.(pair (int_range 1 5) (int_bound 100000))
    (fun (n_inputs, seed) ->
      let rng = Random.State.make [| seed |] in
      let size = 1 lsl n_inputs in
      let kind = Array.init size (fun _ -> Random.State.int rng 3) in
      (* 0 = off, 1 = on, 2 = don't care *)
      let on_set = List.filter (fun i -> kind.(i) = 1) (List.init size Fun.id) in
      let dc_set = List.filter (fun i -> kind.(i) = 2) (List.init size Fun.id) in
      let sop = Qm.minimize ~n_inputs ~on_set ~dc_set () in
      List.for_all
        (fun x ->
          match kind.(x) with
          | 1 -> Logic.eval sop x
          | 0 -> not (Logic.eval sop x)
          | _ -> true)
        (List.init size Fun.id))

let prop_qm_no_more_literals_than_minterms =
  QCheck.Test.make ~name:"QM never exceeds the minterm expansion" ~count:200
    QCheck.(pair (int_range 1 5) (int_bound 100000))
    (fun (n_inputs, seed) ->
      let rng = Random.State.make [| seed |] in
      let size = 1 lsl n_inputs in
      let on_set =
        List.filter (fun _ -> Random.State.bool rng) (List.init size Fun.id)
      in
      let sop = Qm.minimize ~n_inputs ~on_set () in
      Logic.sop_literals ~n_inputs sop <= n_inputs * List.length on_set)

(* ---- FSM extraction ---- *)

let sqrt_cs () =
  let _, cfg = Hls_cdfg.Compile.compile_source Hls_core.Workloads.sqrt_newton in
  let cfg =
    Hls_transform.Passes.run_pipeline ~outputs:[ "y" ]
      (Hls_transform.Passes.standard @ [ Hls_transform.Passes.find_exn "loop-recode" ])
      cfg
  in
  Cfg_sched.make cfg ~scheduler:(List_sched.schedule ~limits:Limits.two_fu)

let test_fsm_sqrt () =
  let cs = sqrt_cs () in
  let fsm = Fsm.of_schedule cs in
  (* 2 prologue + 2 body + 1 exit + DONE *)
  Alcotest.(check int) "states" 6 (Fsm.n_states fsm);
  Alcotest.(check int) "entry is first prologue step" (Fsm.state_of fsm 0 1) (Fsm.entry fsm);
  (* the body's last state branches two ways *)
  let branch_state = Fsm.state_of fsm 1 2 in
  Alcotest.(check int) "two outgoing" 2 (List.length (Fsm.outgoing fsm branch_state));
  (* DONE self-loops *)
  match Fsm.outgoing fsm (Fsm.done_state fsm) with
  | [ { Fsm.t_to; _ } ] -> Alcotest.(check int) "self loop" (Fsm.done_state fsm) t_to
  | _ -> Alcotest.fail "done must self-loop"

let test_fsm_transition_totality () =
  let cs = sqrt_cs () in
  let fsm = Fsm.of_schedule cs in
  List.iter
    (fun (s : Fsm.state) ->
      let outs = Fsm.outgoing fsm s.Fsm.sid in
      Alcotest.(check bool) "has transition" true (outs <> []);
      match outs with
      | [ { Fsm.t_guard = Fsm.G_always; _ } ] -> ()
      | [ t1; t2 ] -> (
          match (t1.Fsm.t_guard, t2.Fsm.t_guard) with
          | Fsm.G_cond (p1, n1), Fsm.G_cond (p2, n2) ->
              Alcotest.(check bool) "complementary" true (p1 <> p2 && n1 = n2)
          | _ -> Alcotest.fail "branch guards must be complementary")
      | _ -> Alcotest.fail "state must have 1 or 2 transitions")
    (Fsm.states fsm)

(* ---- synthesized next-state logic ---- *)

let expected_next fsm sid cond_value =
  let taken =
    List.find
      (fun (tr : Fsm.transition) ->
        match tr.Fsm.t_guard with
        | Fsm.G_always -> true
        | Fsm.G_cond (pol, _) -> pol = cond_value)
      (Fsm.outgoing fsm sid)
  in
  taken.Fsm.t_to

let test_ctrl_synth_matches_fsm () =
  let cs = sqrt_cs () in
  let fsm = Fsm.of_schedule cs in
  List.iter
    (fun style ->
      let c = Ctrl_synth.synthesize ~style fsm in
      List.iter
        (fun (s : Fsm.state) ->
          List.iter
            (fun cond_value ->
              let conds =
                List.map (fun key -> (key, cond_value)) (Ctrl_synth.cond_signals c)
              in
              let got = Ctrl_synth.next_state c ~state:s.Fsm.sid ~conds in
              let want = expected_next fsm s.Fsm.sid cond_value in
              Alcotest.(check int)
                (Printf.sprintf "%s state %d cond %b" (Encoding.style_to_string style)
                   s.Fsm.sid cond_value)
                want got)
            [ true; false ])
        (Fsm.states fsm))
    [ Encoding.Binary; Encoding.Gray; Encoding.One_hot ]

let test_minimization_helps () =
  let cs = sqrt_cs () in
  let fsm = Fsm.of_schedule cs in
  let c = Ctrl_synth.synthesize ~style:Encoding.Binary fsm in
  Alcotest.(check bool) "minimized not worse than direct" true
    (Ctrl_synth.literal_cost c <= Ctrl_synth.direct_literal_cost c);
  Alcotest.(check bool) "pla rows positive" true (Ctrl_synth.pla_rows c > 0)

(* ---- microcode ---- *)

let test_microcode_costs () =
  let fields =
    [ { Microcode.fname = "enables"; fwidth = 6 }; { Microcode.fname = "op"; fwidth = 3 } ]
  in
  let words = [| [ 1; 2 ]; [ 1; 2 ]; [ 5; 0 ]; [ 1; 2 ] |] in
  let mc = Microcode.make ~fields ~words in
  Alcotest.(check int) "states" 4 (Microcode.n_states mc);
  Alcotest.(check int) "horizontal" (4 * 9) (Microcode.horizontal_bits mc);
  Alcotest.(check int) "unique" 2 (Microcode.unique_words mc);
  (* dictionary: 4 pointers of 1 bit + 2 words of 9 bits *)
  Alcotest.(check int) "dictionary" (4 + 18) (Microcode.dictionary_bits mc);
  (* vertical: enables takes 2 values -> 1 bit; op takes 2 values -> 1 bit *)
  Alcotest.(check int) "vertical" (4 * 2) (Microcode.vertical_bits mc);
  Alcotest.(check bool) "dictionary wins on duplicates" true
    (Microcode.dictionary_bits mc < Microcode.horizontal_bits mc)

let test_microcode_validation () =
  let fields = [ { Microcode.fname = "f"; fwidth = 2 } ] in
  Alcotest.(check bool) "range" true
    (try
       ignore (Microcode.make ~fields ~words:[| [ 4 ] |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "arity" true
    (try
       ignore (Microcode.make ~fields ~words:[| [ 1; 2 ] |]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "ctrl"
    [
      ( "encoding",
        [
          Alcotest.test_case "widths" `Quick test_encoding_widths;
          Alcotest.test_case "distinct" `Quick test_encoding_distinct;
          Alcotest.test_case "gray adjacency" `Quick test_gray_adjacent;
          Alcotest.test_case "one-hot" `Quick test_one_hot_codes;
        ] );
      ("logic", [ Alcotest.test_case "eval/render" `Quick test_logic_eval ]);
      ( "qm",
        [
          Alcotest.test_case "classics" `Quick test_qm_classics;
          Alcotest.test_case "rejects overlap" `Quick test_qm_rejects_overlap;
          QCheck_alcotest.to_alcotest prop_qm_equivalent;
          QCheck_alcotest.to_alcotest prop_qm_no_more_literals_than_minterms;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "sqrt fsm" `Quick test_fsm_sqrt;
          Alcotest.test_case "transition totality" `Quick test_fsm_transition_totality;
        ] );
      ( "ctrl_synth",
        [
          Alcotest.test_case "logic matches FSM (all encodings)" `Quick test_ctrl_synth_matches_fsm;
          Alcotest.test_case "minimization helps" `Quick test_minimization_helps;
        ] );
      ( "microcode",
        [
          Alcotest.test_case "costs" `Quick test_microcode_costs;
          Alcotest.test_case "validation" `Quick test_microcode_validation;
        ] );
    ]
