(* hlsc — command-line driver for the high-level synthesis toolkit.

   Subcommands:
     synth    synthesize a specification and print the design report
     run      synthesize and simulate the RTL on given inputs
     dse      sweep resource limits / schedulers and print the trade-off
              (explore is kept as an alias)
     lint     run every IR-level checker and report structured diagnostics
     analyze  dump the value-range/bitwidth inference per variable
     trace    synthesize under the event tracer and emit a Chrome trace
     passes   list optimization passes, rewrite rules and named pipelines
     examples list the built-in workloads

   Every subcommand shares one source term (positional FILE — a path or
   a built-in workload name — or --example) and one options term (the
   scheduler/limits/allocator/encoding flags), so each flag is spelled
   and documented exactly once. *)

open Cmdliner
open Hls_core

(* ---- shared source term ---- *)

(* The one guarded file reader behind every path the CLI opens. Open
   first and report the failure, never probe-then-open: between a
   Sys.file_exists check and the open the path can vanish or change
   kind, and a directory path passes the probe only to blow up
   mid-read. Here a directory, a vanished file, or a permission wall
   all come back as an ordinary Error the caller renders — and in serve
   mode as a per-request error response, never process death. *)
let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Ok (really_input_string ic (in_channel_length ic)) with
          | Sys_error msg ->
              (* opening a directory succeeds on Linux; the read is what
                 fails, with an unhelpful errno — name the real cause *)
              Error (if Sys.is_directory path then path ^ ": is a directory" else msg)
          | End_of_file -> Error (path ^ ": file changed size during read"))

let read_source path_opt example_opt =
  let of_name name =
    match List.assoc_opt name Workloads.all with
    | Some src -> Ok (name, src)
    | None ->
        Error
          (Printf.sprintf "unknown example %s (try: %s)" name
             (String.concat ", " (List.map fst Workloads.all)))
  in
  match (path_opt, example_opt) with
  | Some path, None -> (
      match read_file path with
      | Ok s -> Ok (path, s)
      | Error file_err -> (
          (* a bare workload name works positionally too *)
          match of_name path with
          | Ok r -> Ok r
          | Error name_err ->
              (* both failed: the file error for something that looks
                 like (or is) a path, the name suggestions otherwise *)
              Error (if Sys.file_exists path || String.contains path '/' then file_err else name_err)))
  | None, Some name -> of_name name
  | Some _, Some _ -> Error "give either FILE or --example, not both"
  | None, None -> Error "give a FILE, a built-in workload name, or --example NAME"

let source_file =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"BSL source file, or the name of a built-in workload.")

let example =
  Arg.(
    value
    & opt (some string) None
    & info [ "example"; "e" ] ~docv:"NAME" ~doc:"Use a built-in workload.")

let source_term = Term.(const (fun f e -> (f, e)) $ source_file $ example)

(* continue with the named source, or print the source error and exit 1 *)
let with_source (file, example) k =
  match read_source file example with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  | Ok (name, src) -> k ~name ~src

(* ---- shared options term ---- *)

let passes_conv =
  let parse s =
    match Hls_transform.Passes.pipeline_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print ppf p =
    Format.pp_print_string ppf (Hls_transform.Passes.pipeline_to_string p)
  in
  Arg.conv ~docv:"SPEC" (parse, print)

let passes_arg =
  Arg.(
    value
    & opt (some passes_conv) None
    & info [ "passes" ] ~docv:"SPEC"
        ~doc:
          "Optimization pipeline spec: a named pipeline \
           (none|standard|aggressive|extract), or a comma-separated pass list, \
           optionally followed by $(b,+facts), $(b,+extract:area) or \
           $(b,+extract:latency) modifiers. Run $(b,hlsc passes) for the \
           catalogue. Examples: $(b,aggressive), $(b,forward,cse,dce), \
           $(b,standard+extract:latency).")

let opt_level =
  Arg.(
    value
    & opt
        (some (enum [ ("none", `None); ("standard", `Standard); ("aggressive", `Aggressive) ]))
        None
    & info [ "opt"; "O" ] ~docv:"LEVEL"
        ~doc:
          "Deprecated alias for $(b,--passes) (none|standard|aggressive); ignored \
           when $(b,--passes) is given.")

let scheduler =
  let sched_conv =
    Arg.enum
      [
        ("asap", Flow.Asap);
        ("list", Flow.List_path);
        ("list-mobility", Flow.List_mobility);
        ("fds", Flow.Force_directed 0);
        ("freedom", Flow.Freedom);
        ("bb", Flow.Branch_bound);
        ("ilp", Flow.Ilp_exact);
        ("trans-par", Flow.Trans_parallel);
        ("trans-ser", Flow.Trans_serial);
      ]
  in
  Arg.(
    value & opt sched_conv Flow.List_path
    & info [ "scheduler"; "s" ] ~docv:"ALGO"
        ~doc:"Scheduler (asap|list|list-mobility|fds|freedom|bb|ilp|trans-par|trans-ser).")

let fus =
  Arg.(
    value & opt int 2
    & info [ "fus"; "k" ] ~docv:"N" ~doc:"Functional-unit limit (0 = serial, -1 = unlimited).")

let allocator =
  Arg.(
    value
    & opt (enum [ ("clique", `Clique); ("min-mux", `Greedy_min_mux); ("first-fit", `Greedy_first_fit) ]) `Greedy_min_mux
    & info [ "allocator"; "a" ] ~docv:"ALGO" ~doc:"Allocator (clique|min-mux|first-fit).")

let encoding =
  Arg.(
    value
    & opt
        (enum
           [
             ("binary", Hls_ctrl.Encoding.Binary);
             ("gray", Hls_ctrl.Encoding.Gray);
             ("one-hot", Hls_ctrl.Encoding.One_hot);
           ])
        Hls_ctrl.Encoding.Binary
    & info [ "encoding" ] ~docv:"STYLE" ~doc:"State encoding (binary|gray|one-hot).")

let if_convert_flag =
  Arg.(value & flag & info [ "if-convert" ] ~doc:"Speculate small branch diamonds into muxes.")

let narrow_flag =
  Arg.(
    value & flag
    & info [ "narrow" ]
        ~doc:
          "Narrow registers, functional units and muxes to the widths the value-range \
           analysis proves sufficient (area-only; the design stays bit-identical).")

let iterate_arg =
  Arg.(
    value & opt int 0
    & info [ "iterate" ] ~docv:"N"
        ~doc:
          "Feedback-guided refinement: after the one-shot flow, extract the \
           critical subgraph (longest register-to-register chains, \
           oversubscribed unit classes, live-storage floor) and re-schedule \
           it under tightened constraints, up to N accepted iterations. A \
           refined design is behaviourally bit-identical to its seed and \
           accepted only on strict (area, latency) improvement; 0 disables.")

let make_options passes opt_level if_conversion scheduler fus allocator encoding narrow
    iterate =
  let limits =
    if fus = 0 then Hls_sched.Limits.Serial
    else if fus < 0 then Hls_sched.Limits.Unlimited
    else Hls_sched.Limits.Total fus
  in
  let passes =
    match (passes, opt_level) with
    | Some p, _ -> p
    | None, Some l -> Hls_transform.Passes.level l
    | None, None -> Hls_transform.Passes.default_pipeline
  in
  { Flow.passes; if_conversion; scheduler; limits; allocator;
    share_variables = true; encoding; narrow; iterate }

let options_term =
  Term.(
    const make_options $ passes_arg $ opt_level $ if_convert_flag $ scheduler $ fus
    $ allocator $ encoding $ narrow_flag $ iterate_arg)

(* ---- shared tracing/metrics flags ---- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Evaluate sweep points on N worker domains (clamped to the \
           hardware's recommended domain count).")

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let trace_out_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Capture pipeline spans and write a Chrome trace_event JSON to FILE.")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the counter totals after the run.")

let verify_flag =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Run the full design lint after synthesis and fail on any error.")

let start_tracing trace_out =
  (* a fresh window either way; span capture only when asked for *)
  Hls_obs.Trace.reset ();
  if trace_out <> None then Hls_obs.Trace.enable ()

let write_chrome_trace path =
  let text = Hls_util.Json.to_string (Metrics.chrome_trace ()) in
  if path = "-" then print_string text
  else begin
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

let finish_tracing trace_out metrics =
  Option.iter write_chrome_trace trace_out;
  if metrics then print_string (Metrics.render_counters ())

let report_lint_failure ds =
  List.iter (fun d -> Printf.eprintf "%s\n" (Hls_analysis.Diagnostic.to_string d)) ds;
  Printf.eprintf "error: design failed verification (%s)\n"
    (Hls_analysis.Diagnostic.summary ds);
  exit 1

let handle_errors f =
  try f () with
  | Hls_lang.Ast.Frontend_error (pos, msg) ->
      Printf.eprintf "error at %d:%d: %s\n" pos.Hls_lang.Ast.line pos.Hls_lang.Ast.col msg;
      exit 1
  | Flow.Lint_failed ds ->
      (* legacy raising paths (e.g. a sweep point failing verification) *)
      report_lint_failure ds
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

(* ---- synth ---- *)

let verilog_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-verilog" ] ~docv:"FILE" ~doc:"Write structural Verilog to FILE.")

let dot_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-dot" ] ~docv:"FILE" ~doc:"Write a datapath DOT graph to FILE.")

let synth_cmd =
  let run source options verify verilog_out dot_out trace_out metrics =
    with_source source (fun ~name:_ ~src ->
        handle_errors (fun () ->
            start_tracing trace_out;
            match Flow.synthesize_result ~options ~verify src with
            | Error ds -> report_lint_failure ds
            | Ok d ->
                Report.print d;
                (match Flow.verify ~runs:5 d with
                | Ok () ->
                    print_endline
                      "co-simulation: behavioral = CDFG = RTL on 5 random vectors"
                | Error e -> Printf.printf "co-simulation FAILED: %s\n" e);
                (match verilog_out with
                | Some path ->
                    let name = d.Flow.prog.Hls_lang.Typed.tname in
                    let oc = open_out path in
                    output_string oc (Hls_rtl.Emit.verilog ~name d.Flow.datapath);
                    close_out oc;
                    Printf.printf "wrote %s\n" path
                | None -> ());
                (match dot_out with
                | Some path ->
                    let oc = open_out path in
                    output_string oc (Hls_rtl.Emit.dot d.Flow.datapath);
                    close_out oc;
                    Printf.printf "wrote %s\n" path
                | None -> ());
                finish_tracing trace_out metrics))
  in
  let info = Cmd.info "synth" ~doc:"Synthesize a behavioral specification to RTL." in
  Cmd.v info
    Term.(
      const run $ source_term $ options_term $ verify_flag $ verilog_out $ dot_out
      $ trace_out_flag $ metrics_flag)

(* ---- lint ---- *)

let matrix_flag =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:"Lint each source under every scheduler \\$(i,\\times) allocator combination.")

let lint_all_flag =
  Arg.(value & flag & info [ "all" ] ~doc:"Lint every built-in workload.")

let rules_flag =
  Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule-code table and exit.")

let floor_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("info", Hls_analysis.Diagnostic.Info);
             ("warning", Hls_analysis.Diagnostic.Warning);
             ("error", Hls_analysis.Diagnostic.Error);
           ])
        Hls_analysis.Diagnostic.Info
    & info [ "severity" ] ~docv:"LEVEL"
        ~doc:"Report only diagnostics at or above LEVEL (info|warning|error).")

let lint_schedulers =
  [
    Flow.Asap;
    Flow.List_path;
    Flow.List_mobility;
    Flow.Force_directed 0;
    Flow.Freedom;
    Flow.Branch_bound;
    Flow.Ilp_exact;
    Flow.Trans_parallel;
    Flow.Trans_serial;
  ]

let lint_allocators =
  [ (`Clique, "clique"); (`Greedy_min_mux, "min-mux"); (`Greedy_first_fit, "first-fit") ]

let lint_cmd =
  let run source all matrix json floor rules base =
    if rules then begin
      print_string (Lint.rules_table ());
      exit 0
    end;
    let sources =
      if all then Ok Workloads.all
      else
        match read_source (fst source) (snd source) with
        | Error e -> Error e
        | Ok (name, src) -> Ok [ (name, src) ]
    in
    match sources with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2
    | Ok sources ->
        handle_errors (fun () ->
            let points =
              if matrix then
                List.concat_map
                  (fun s ->
                    List.map
                      (fun (a, aname) ->
                        ({ base with Flow.scheduler = s; allocator = a }, Some aname))
                      lint_allocators)
                  lint_schedulers
              else [ (base, None) ]
            in
            let reports =
              List.concat_map
                (fun (name, src) ->
                  let eng = Dse.create src in
                  List.map
                    (fun ((options : Flow.options), aname) ->
                      let label =
                        match aname with
                        | Some aname ->
                            Printf.sprintf "%s[%s,%s]" name
                              (Flow.scheduler_to_string options.Flow.scheduler)
                              aname
                        | None -> name
                      in
                      (* Result API: a design that fails the structural
                         netlist checks is itself a lint report *)
                      match Dse.eval_result eng options with
                      | Ok d -> (label, Lint.run ~floor d)
                      | Error ds ->
                          (label, Hls_analysis.Diagnostic.filter ~floor ds))
                    points)
                sources
            in
            (if json then
               let objs = List.map (fun (label, ds) -> Lint.to_json ~name:label ds) reports in
               print_string
                 (Hls_util.Json.to_string
                    (match objs with [ o ] -> o | _ -> Hls_util.Json.Arr objs))
             else
               List.iter (fun (label, ds) -> print_string (Lint.render ~name:label ds)) reports);
            if List.exists (fun (_, ds) -> Lint.has_errors ds) reports then exit 1)
  in
  let info =
    Cmd.info "lint"
      ~doc:
        "Run every IR-level checker (CDFG, schedule, allocation, netlist, controller, \
         microcode) over a synthesized design and report structured diagnostics. Exits \
         non-zero if any error-severity diagnostic is found."
  in
  Cmd.v info
    Term.(
      const run $ source_term $ lint_all_flag $ matrix_flag $ json_flag $ floor_arg
      $ rules_flag $ options_term)

(* ---- analyze ---- *)

let analyze_cmd =
  let run source options json trace_out metrics =
    with_source source (fun ~name ~src ->
        handle_errors (fun () ->
            start_tracing trace_out;
            let c = Flow.frontend src in
            let o =
              Flow.midend ~passes:options.Flow.passes
                ~if_conversion:options.Flow.if_conversion c
            in
            let ports = Flow.ports_of o.Flow.o_prog in
            let facts = Hls_analysis.Range.analyze ~ports o.Flow.o_cfg in
            let widths = Hls_analysis.Range.var_widths facts in
            (* boundary range per variable: join of its value at every
               reachable block entry *)
            let module R = Hls_analysis.Range in
            let joined : (string, R.aval) Hashtbl.t = Hashtbl.create 16 in
            List.iter
              (fun bid ->
                match R.entry_env facts ~bid with
                | None -> ()
                | Some env ->
                    List.iter
                      (fun (v, a) ->
                        match Hashtbl.find_opt joined v with
                        | None -> Hashtbl.replace joined v a
                        | Some b -> Hashtbl.replace joined v (R.join a b))
                      env)
              (Hls_cdfg.Cfg.block_ids o.Flow.o_cfg);
            let dead = R.dead_edges facts in
            let ds = Hls_analysis.Width_check.check ~facts ~ports o.Flow.o_cfg in
            (if json then
               let var_obj (v, declared, inferred) =
                 let base =
                   [
                     ("name", Hls_util.Json.Str v);
                     ("declared_bits", Hls_util.Json.of_int declared);
                     ("inferred_bits", Hls_util.Json.of_int inferred);
                   ]
                 in
                 let range =
                   match Hashtbl.find_opt joined v with
                   | Some a ->
                       [
                         ("lo", Hls_util.Json.of_int a.R.iv.Hls_util.Interval.lo);
                         ("hi", Hls_util.Json.of_int a.R.iv.Hls_util.Interval.hi);
                       ]
                   | None -> []
                 in
                 Hls_util.Json.Obj (base @ range)
               in
               let edge_obj (src, dst, taken) =
                 Hls_util.Json.Obj
                   [
                     ("from", Hls_util.Json.of_int src);
                     ("to", Hls_util.Json.of_int dst);
                     ("condition", Hls_util.Json.Bool taken);
                   ]
               in
               print_string
                 (Hls_util.Json.to_string
                    (Hls_util.Json.Obj
                       [
                         ("name", Hls_util.Json.Str name);
                         ("variables", Hls_util.Json.Arr (List.map var_obj widths));
                         ("dead_edges", Hls_util.Json.Arr (List.map edge_obj dead));
                         ( "diagnostics",
                           Hls_util.Json.Arr
                             (List.map
                                (fun d ->
                                  Hls_util.Json.Str
                                    (Hls_analysis.Diagnostic.to_string d))
                                ds) );
                       ]))
             else begin
               Printf.printf "%s: inferred value ranges (passes %s)\n" name
                 (Hls_transform.Passes.pipeline_to_string options.Flow.passes);
               Printf.printf "  %-12s %9s %9s  %s\n" "variable" "declared" "inferred"
                 "boundary range";
               List.iter
                 (fun (v, declared, inferred) ->
                   let range =
                     match Hashtbl.find_opt joined v with
                     | Some a -> Format.asprintf "%a" R.pp_aval a
                     | None -> "-"
                   in
                   Printf.printf "  %-12s %9d %9d  %s\n" v declared inferred range)
                 widths;
               List.iter
                 (fun (src, dst, taken) ->
                   Printf.printf "  dead edge: b%d -> b%d (condition always %b)\n" src
                     dst taken)
                 dead;
               if ds <> [] then begin
                 print_endline "diagnostics:";
                 List.iter
                   (fun d ->
                     Printf.printf "  %s\n" (Hls_analysis.Diagnostic.to_string d))
                   ds
               end
             end);
            finish_tracing trace_out metrics))
  in
  let info =
    Cmd.info "analyze"
      ~doc:
        "Run the value-range and bitwidth inference over the optimized CDFG and report \
         per-variable boundary ranges, declared vs inferred widths, dead branch edges \
         and the RANGE/WIDTH diagnostics. $(b,--json) emits the same report as JSON."
  in
  Cmd.v info
    Term.(const run $ source_term $ options_term $ json_flag $ trace_out_flag $ metrics_flag)

(* ---- run ---- *)

let inputs_arg =
  Arg.(
    value & opt_all string []
    & info [ "input"; "i" ] ~docv:"NAME=VALUE"
        ~doc:"Input port value (decimal; floats allowed for fixed-point ports). Repeatable.")

let vcd_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD waveform of the run to FILE.")

let run_cmd =
  let run source options inputs vcd =
    with_source source (fun ~name:_ ~src ->
        handle_errors (fun () ->
            let d =
              match Flow.synthesize_result ~options src with
              | Ok d -> d
              | Error ds -> report_lint_failure ds
            in
            let port_ty name =
              match
                List.find_opt (fun (n, _, _) -> n = name) (Flow.ports_of d.Flow.prog)
              with
              | Some (_, _, ty) -> ty
              | None ->
                  Printf.eprintf "error: no port %s\n" name;
                  exit 1
            in
            let parse_input s =
              match String.index_opt s '=' with
              | None ->
                  Printf.eprintf "error: input %S is not NAME=VALUE\n" s;
                  exit 1
              | Some i ->
                  let name = String.sub s 0 i in
                  let v = String.sub s (i + 1) (String.length s - i - 1) in
                  (name, Hls_sim.Beh_sim.to_raw (port_ty name) (float_of_string v))
            in
            let inputs = List.map parse_input inputs in
            let r =
              match vcd with
              | Some path ->
                  let r = Hls_sim.Vcd.dump_to_file d.Flow.datapath ~inputs ~path in
                  Printf.printf "wrote %s\n" path;
                  r
              | None -> Hls_sim.Rtl_sim.run d.Flow.datapath ~inputs
            in
            Printf.printf "finished in %d cycles\n" r.Hls_sim.Rtl_sim.cycles;
            List.iter
              (fun (name, _, ty) ->
                match List.assoc_opt name r.Hls_sim.Rtl_sim.finals with
                | Some raw ->
                    Printf.printf "%s = %g (raw %d)\n" name
                      (Hls_sim.Beh_sim.of_raw ty raw) raw
                | None -> ())
              (List.filter (fun (_, d, _) -> d = `Out) (Flow.ports_of d.Flow.prog))))
  in
  let info = Cmd.info "run" ~doc:"Synthesize and simulate the RTL on given inputs." in
  Cmd.v info Term.(const run $ source_term $ options_term $ inputs_arg $ vcd_out)

(* ---- dse (né explore) ---- *)

let all_flag =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Sweep the full scheduler \\$(i,\\times) limits cross product instead of limits only.")

let timings_flag =
  Arg.(
    value & flag
    & info [ "timings" ] ~doc:"Append the per-stage wall-clock breakdown to the table.")

let prune_flag =
  Arg.(
    value & flag
    & info [ "prune" ]
        ~doc:
          "Prune the sweep with pareto-guided successive halving: every point runs \
           the cheap stages, but only promising backend classes are promoted through \
           allocation/binding/control. The reported frontier is identical to the \
           exhaustive sweep's.")

let cosim_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cosim" ] ~docv:"N"
        ~doc:
          "Co-simulate each Pareto-frontier design on N random input vectors \
           (behavioral vs CDFG vs batched RTL) after the sweep.")

let sweep_passes_arg =
  Arg.(
    value & opt_all passes_conv []
    & info [ "sweep-passes" ] ~docv:"SPEC"
        ~doc:
          "Add a pipeline spec to the sweep (repeatable). With two or more \
           specs the sweep crosses pipelines with schedulers and limits, so \
           fixed pipelines and cost-guided extraction land in one trade-off \
           table.")

let dse_term =
  let run source base jobs all timings prune cosim sweep_passes trace_out metrics =
    with_source source (fun ~name:_ ~src ->
        handle_errors (fun () ->
            start_tracing trace_out;
            let config = { Dse.default_config with Dse.jobs } in
            let schedulers =
              if all then None else Some [ base.Flow.scheduler ]
            in
            let pipelines = match sweep_passes with [] -> None | ps -> Some ps in
            (* with --iterate N the sweep crosses a refinement axis, so
               iterated points land in the same trade-off table as every
               one-shot scheduler *)
            let iterates =
              if base.Flow.iterate > 0 then Some [ 0; base.Flow.iterate ] else None
            in
            let points =
              if prune then begin
                let pr =
                  Explore.sweep_pruned ~config ~base ?schedulers ?pipelines ?iterates
                    src
                in
                Printf.printf
                  "pruned %d of %d points before the backend (%d rounds)\n"
                  (List.length pr.Explore.pruned)
                  (List.length pr.Explore.evaluated + List.length pr.Explore.pruned)
                  pr.Explore.rounds;
                pr.Explore.evaluated
              end
              else if all || pipelines <> None || iterates <> None then
                Explore.sweep ~config ~base ?schedulers ?pipelines ?iterates src
              else Explore.sweep_limits ~config ~base src
            in
            print_string (Explore.table ~timings points);
            (match cosim with
            | None -> ()
            | Some runs ->
                List.iter
                  (fun (p : Explore.point) ->
                    match
                      Hls_sim.Cosim.check_random ~runs (Flow.cosim_design p.Explore.design)
                    with
                    | Ok () ->
                        Printf.printf "cosim %-24s ok (%d vectors)\n" p.Explore.label runs
                    | Error e ->
                        Printf.eprintf "cosim %-24s FAILED: %s\n" p.Explore.label e;
                        exit 1)
                  (Explore.pareto points));
            finish_tracing trace_out metrics))
  in
  Term.(
    const run $ source_term $ options_term $ jobs_arg $ all_flag $ timings_flag
    $ prune_flag $ cosim_arg $ sweep_passes_arg $ trace_out_flag $ metrics_flag)

let dse_doc =
  "Sweep resource limits (or, with $(b,--all), the scheduler \\$(i,\\times) limits \
   cross product) through the memoized DSE engine; print the trade-off table. \
   $(b,--sweep-passes) adds a pipeline dimension to the sweep; $(b,--prune) \
   promotes only promising points through the backend; $(b,--cosim) \
   verifies the frontier designs by three-level co-simulation."

let dse_cmd = Cmd.v (Cmd.info "dse" ~doc:dse_doc) dse_term
let explore_cmd = Cmd.v (Cmd.info "explore" ~doc:(dse_doc ^ " (Alias of $(b,dse).)")) dse_term

(* ---- trace ---- *)

let trace_out_arg =
  Arg.(
    value & opt string "-"
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Write the Chrome trace_event JSON to FILE (default stdout).")

let sweep_flag =
  Arg.(
    value & flag
    & info [ "sweep" ]
        ~doc:"Trace the full scheduler \\$(i,\\times) limits sweep instead of one synthesis.")

let validate_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "validate" ] ~docv:"FILE"
        ~doc:
          "Validate an emitted trace instead of synthesizing: parse FILE, check the \
           trace_event shape and the pipeline-stage coverage.")

let validate_trace file =
  let text =
    match read_file file with
    | Ok text -> text
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  match Hls_util.Json.parse text with
  | Error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  | Ok json -> (
      match Metrics.validate_chrome json with
      | Error e ->
          Printf.eprintf "%s: invalid Chrome trace: %s\n" file e;
          exit 1
      | Ok () ->
          let covered = Metrics.covered_stages json in
          let missing =
            List.filter (fun s -> not (List.mem s covered)) Metrics.pipeline_stages
          in
          if missing <> [] then begin
            Printf.eprintf "%s: missing pipeline stages: %s\n" file
              (String.concat ", " missing);
            exit 1
          end;
          Printf.printf "%s: valid Chrome trace covering all %d pipeline stages\n" file
            (List.length Metrics.pipeline_stages))

let trace_cmd =
  let run validate source options out sweep jobs metrics =
    match validate with
    | Some file -> validate_trace file
    | None ->
        with_source source (fun ~name:_ ~src ->
            handle_errors (fun () ->
                Hls_obs.Trace.reset ();
                Hls_obs.Trace.enable ();
                (if sweep then begin
                   let config = { Dse.default_config with Dse.jobs } in
                   ignore (Explore.sweep ~config ~base:options src)
                 end
                 else
                   match Flow.synthesize_result ~options src with
                   | Ok _ -> ()
                   | Error ds -> report_lint_failure ds);
                write_chrome_trace out;
                if metrics then print_string (Metrics.render_counters ())))
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Synthesize (or, with $(b,--sweep), sweep) under the structured event tracer \
         and emit the spans and counters as Chrome trace_event JSON \
         (chrome://tracing, Perfetto). $(b,--validate) checks an emitted file instead."
  in
  Cmd.v info
    Term.(
      const run $ validate_arg $ source_term $ options_term $ trace_out_arg $ sweep_flag
      $ jobs_arg $ metrics_flag)

(* ---- serve ---- *)

let serve_cmd =
  let run socket stdio cache_dir max_queue workers jobs verify =
    let config = { Hls_serve.Server.workers; max_queue; jobs; verify; cache_dir } in
    handle_errors (fun () ->
        let server = Hls_serve.Server.create ~config () in
        match (socket, stdio) with
        | Some path, false ->
            Printf.eprintf "hlsc serve: listening on %s\n%!" path;
            Hls_serve.Server.serve_unix server ~path
        | None, true ->
            Hls_serve.Server.serve_frames server ~input:Unix.stdin ~output:Unix.stdout
        | Some _, true ->
            Printf.eprintf "error: give --socket or --stdio, not both\n";
            exit 1
        | None, false ->
            Printf.eprintf "error: give --socket PATH or --stdio\n";
            exit 1)
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen for clients on a Unix socket at PATH.")
  in
  let stdio_flag =
    Arg.(
      value & flag
      & info [ "stdio" ] ~doc:"Serve one client over length-prefixed frames on stdin/stdout.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist evaluated designs to a content-addressed store under DIR, so a \
             restarted daemon answers repeated requests from disk.")
  in
  let queue_arg =
    Arg.(
      value & opt int Hls_serve.Server.default_config.Hls_serve.Server.max_queue
      & info [ "queue" ] ~docv:"N"
          ~doc:"Refuse (typed $(b,busy) response) past N queued connections.")
  in
  let workers_arg =
    Arg.(
      value & opt int Hls_serve.Server.default_config.Hls_serve.Server.workers
      & info [ "workers" ] ~docv:"N" ~doc:"Handler domains serving connections.")
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run as a long-lived daemon answering synth/dse/lint requests as \
         length-prefixed JSON frames over a Unix socket ($(b,--socket)) or \
         stdin/stdout ($(b,--stdio)), with bounded-queue backpressure and an \
         optional persistent design cache ($(b,--cache-dir))."
  in
  Cmd.v info
    Term.(
      const run $ socket_arg $ stdio_flag $ cache_dir_arg $ queue_arg $ workers_arg
      $ jobs_arg $ verify_flag)

(* ---- passes ---- *)

let passes_cmd =
  let module P = Hls_transform.Passes in
  let module R = Hls_transform.Rules in
  let module E = Hls_transform.Extract in
  let run json =
    if json then
      let pass_obj (p : P.t) =
        Hls_util.Json.Obj
          [ ("name", Hls_util.Json.Str p.P.name); ("descr", Hls_util.Json.Str p.P.descr) ]
      in
      let rule_obj (r : R.t) =
        Hls_util.Json.Obj
          [
            ("name", Hls_util.Json.Str r.R.name);
            ("group", Hls_util.Json.Str r.R.group);
            ("descr", Hls_util.Json.Str r.R.descr);
          ]
      in
      let pipeline_obj (name, (p : P.pipeline)) =
        Hls_util.Json.Obj
          [
            ("name", Hls_util.Json.Str name);
            ( "passes",
              Hls_util.Json.Arr
                (List.map (fun n -> Hls_util.Json.Str n) p.P.passes) );
            ("fold_facts", Hls_util.Json.Bool p.P.fold_facts);
            ( "extract",
              match p.P.extract with
              | None -> Hls_util.Json.Null
              | Some o -> Hls_util.Json.Str (E.objective_to_string o) );
          ]
      in
      print_string
        (Hls_util.Json.to_string
           (Hls_util.Json.Obj
              [
                ("passes", Hls_util.Json.Arr (List.map pass_obj P.all));
                ("rules", Hls_util.Json.Arr (List.map rule_obj R.all));
                ( "pipelines",
                  Hls_util.Json.Arr (List.map pipeline_obj P.named_pipelines) );
              ]))
    else begin
      print_endline "passes (use with --passes PASS,PASS,...):";
      List.iter (fun (p : P.t) -> Printf.printf "  %-22s %s\n" p.P.name p.P.descr) P.all;
      print_endline "";
      print_endline "rewrite rules (pass rule:NAME, or a whole group as rules:GROUP):";
      List.iter
        (fun g ->
          Printf.printf "  group %s:\n" g;
          List.iter
            (fun (r : R.t) -> Printf.printf "    %-20s %s\n" r.R.name r.R.descr)
            (R.group g))
        R.groups;
      print_endline "";
      print_endline "named pipelines (modifiers: +facts, +extract:area, +extract:latency):";
      List.iter
        (fun (name, (p : P.pipeline)) ->
          let mods =
            (if p.P.fold_facts then [ "facts" ] else [])
            @
            match p.P.extract with
            | None -> []
            | Some o -> [ "extract:" ^ E.objective_to_string o ]
          in
          Printf.printf "  %-12s = %s%s\n" name
            (if p.P.passes = [] then "(no passes)" else String.concat "," p.P.passes)
            (if mods = [] then "" else " + " ^ String.concat " + " mods))
        P.named_pipelines
    end
  in
  let info =
    Cmd.info "passes"
      ~doc:
        "List the registered optimization passes, the declarative rewrite rules \
         behind them (with their groups), and the named pipelines a \
         $(b,--passes) spec can start from. $(b,--json) emits the same \
         catalogue as JSON."
  in
  Cmd.v info Term.(const run $ json_flag)

(* ---- examples ---- *)

let examples_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Workloads.all
  in
  let info = Cmd.info "examples" ~doc:"List built-in workloads." in
  Cmd.v info Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hlsc" ~version:"1.0.0"
      ~doc:"High-level synthesis: behavioral specifications to RTL structures."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            synth_cmd; dse_cmd; explore_cmd; lint_cmd; analyze_cmd; trace_cmd; run_cmd;
            serve_cmd; passes_cmd; examples_cmd;
          ]))
