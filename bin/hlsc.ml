(* hlsc — command-line driver for the high-level synthesis toolkit.

   Subcommands:
     synth    synthesize a specification and print the design report
     run      synthesize and simulate the RTL on given inputs
     explore  sweep resource limits and print the area/latency trade-off
     examples list the built-in workloads *)

open Cmdliner
open Hls_core

let read_source path_opt example_opt =
  match (path_opt, example_opt) with
  | Some path, None ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
  | None, Some name -> (
      match List.assoc_opt name Workloads.all with
      | Some src -> Ok src
      | None ->
          Error
            (Printf.sprintf "unknown example %s (try: %s)" name
               (String.concat ", " (List.map fst Workloads.all))))
  | Some _, Some _ -> Error "give either FILE or --example, not both"
  | None, None -> Error "give a FILE or --example NAME"

let source_file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"BSL source file.")

let example =
  Arg.(
    value
    & opt (some string) None
    & info [ "example"; "e" ] ~docv:"NAME" ~doc:"Use a built-in workload.")

let opt_level =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("standard", `Standard); ("aggressive", `Aggressive) ]) `Standard
    & info [ "opt"; "O" ] ~docv:"LEVEL" ~doc:"Optimization level (none|standard|aggressive).")

let scheduler =
  let sched_conv =
    Arg.enum
      [
        ("asap", Flow.Asap);
        ("list", Flow.List_path);
        ("list-mobility", Flow.List_mobility);
        ("fds", Flow.Force_directed 0);
        ("freedom", Flow.Freedom);
        ("bb", Flow.Branch_bound);
        ("ilp", Flow.Ilp_exact);
        ("trans-par", Flow.Trans_parallel);
        ("trans-ser", Flow.Trans_serial);
      ]
  in
  Arg.(
    value & opt sched_conv Flow.List_path
    & info [ "scheduler"; "s" ] ~docv:"ALGO"
        ~doc:"Scheduler (asap|list|list-mobility|fds|freedom|bb|ilp|trans-par|trans-ser).")

let fus =
  Arg.(
    value & opt int 2
    & info [ "fus"; "k" ] ~docv:"N" ~doc:"Functional-unit limit (0 = serial, -1 = unlimited).")

let allocator =
  Arg.(
    value
    & opt (enum [ ("clique", `Clique); ("min-mux", `Greedy_min_mux); ("first-fit", `Greedy_first_fit) ]) `Greedy_min_mux
    & info [ "allocator"; "a" ] ~docv:"ALGO" ~doc:"Allocator (clique|min-mux|first-fit).")

let encoding =
  Arg.(
    value
    & opt
        (enum
           [
             ("binary", Hls_ctrl.Encoding.Binary);
             ("gray", Hls_ctrl.Encoding.Gray);
             ("one-hot", Hls_ctrl.Encoding.One_hot);
           ])
        Hls_ctrl.Encoding.Binary
    & info [ "encoding" ] ~docv:"STYLE" ~doc:"State encoding (binary|gray|one-hot).")

let verilog_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-verilog" ] ~docv:"FILE" ~doc:"Write structural Verilog to FILE.")

let dot_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-dot" ] ~docv:"FILE" ~doc:"Write a datapath DOT graph to FILE.")

let if_convert_flag =
  Arg.(value & flag & info [ "if-convert" ] ~doc:"Speculate small branch diamonds into muxes.")

let make_options opt_level if_conversion scheduler fus allocator encoding =
  let limits =
    if fus = 0 then Hls_sched.Limits.Serial
    else if fus < 0 then Hls_sched.Limits.Unlimited
    else Hls_sched.Limits.Total fus
  in
  { Flow.opt_level; if_conversion; scheduler; limits; allocator;
    share_variables = true; encoding }

let handle_errors f =
  try f () with
  | Hls_lang.Ast.Frontend_error (pos, msg) ->
      Printf.eprintf "error at %d:%d: %s\n" pos.Hls_lang.Ast.line pos.Hls_lang.Ast.col msg;
      exit 1
  | Flow.Lint_failed ds ->
      List.iter
        (fun d -> Printf.eprintf "%s\n" (Hls_analysis.Diagnostic.to_string d))
        ds;
      Printf.eprintf "error: design failed verification (%s)\n"
        (Hls_analysis.Diagnostic.summary ds);
      exit 1
  | Invalid_argument msg | Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

(* ---- synth ---- *)

let verify_flag =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:"Run the full design lint after synthesis and fail on any error.")

let synth_cmd =
  let run file example opt_level if_conv scheduler fus allocator encoding verify verilog_out
      dot_out =
    match read_source file example with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    | Ok src ->
        handle_errors (fun () ->
            let options = make_options opt_level if_conv scheduler fus allocator encoding in
            let d = Flow.synthesize ~options ~verify src in
            Report.print d;
            (match Flow.verify ~runs:5 d with
            | Ok () -> print_endline "co-simulation: behavioral = CDFG = RTL on 5 random vectors"
            | Error e -> Printf.printf "co-simulation FAILED: %s\n" e);
            (match verilog_out with
            | Some path ->
                let name = d.Flow.prog.Hls_lang.Typed.tname in
                let oc = open_out path in
                output_string oc (Hls_rtl.Emit.verilog ~name d.Flow.datapath);
                close_out oc;
                Printf.printf "wrote %s\n" path
            | None -> ());
            match dot_out with
            | Some path ->
                let oc = open_out path in
                output_string oc (Hls_rtl.Emit.dot d.Flow.datapath);
                close_out oc;
                Printf.printf "wrote %s\n" path
            | None -> ())
  in
  let info = Cmd.info "synth" ~doc:"Synthesize a behavioral specification to RTL." in
  Cmd.v info
    Term.(
      const run $ source_file $ example $ opt_level $ if_convert_flag $ scheduler $ fus
      $ allocator $ encoding $ verify_flag $ verilog_out $ dot_out)

(* ---- lint ---- *)

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let matrix_flag =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:"Lint each source under every scheduler \\$(i,\\times) allocator combination.")

let lint_all_flag =
  Arg.(value & flag & info [ "all" ] ~doc:"Lint every built-in workload.")

let rules_flag =
  Arg.(value & flag & info [ "rules" ] ~doc:"Print the rule-code table and exit.")

let floor_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("info", Hls_analysis.Diagnostic.Info);
             ("warning", Hls_analysis.Diagnostic.Warning);
             ("error", Hls_analysis.Diagnostic.Error);
           ])
        Hls_analysis.Diagnostic.Info
    & info [ "severity" ] ~docv:"LEVEL"
        ~doc:"Report only diagnostics at or above LEVEL (info|warning|error).")

let lint_schedulers =
  [
    Flow.Asap;
    Flow.List_path;
    Flow.List_mobility;
    Flow.Force_directed 0;
    Flow.Freedom;
    Flow.Branch_bound;
    Flow.Ilp_exact;
    Flow.Trans_parallel;
    Flow.Trans_serial;
  ]

let lint_allocators =
  [ (`Clique, "clique"); (`Greedy_min_mux, "min-mux"); (`Greedy_first_fit, "first-fit") ]

let lint_cmd =
  let run file example all matrix json floor rules opt_level if_conv scheduler fus allocator
      encoding =
    if rules then begin
      print_string (Lint.rules_table ());
      exit 0
    end;
    let sources =
      if all then Ok Workloads.all
      else
        match read_source file example with
        | Error e -> Error e
        | Ok src ->
            let name =
              match example with
              | Some n -> n
              | None -> Option.value file ~default:"design"
            in
            Ok [ (name, src) ]
    in
    match sources with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2
    | Ok sources ->
        handle_errors (fun () ->
            let base = make_options opt_level if_conv scheduler fus allocator encoding in
            let points =
              if matrix then
                List.concat_map
                  (fun s ->
                    List.map
                      (fun (a, aname) ->
                        ({ base with Flow.scheduler = s; allocator = a }, Some aname))
                      lint_allocators)
                  lint_schedulers
              else [ (base, None) ]
            in
            let reports =
              List.concat_map
                (fun (name, src) ->
                  let eng = Dse.create src in
                  List.map
                    (fun ((options : Flow.options), aname) ->
                      let label =
                        match aname with
                        | Some aname ->
                            Printf.sprintf "%s[%s,%s]" name
                              (Flow.scheduler_to_string options.Flow.scheduler)
                              aname
                        | None -> name
                      in
                      (label, Lint.run ~floor (Dse.eval eng options)))
                    points)
                sources
            in
            (if json then
               let objs = List.map (fun (label, ds) -> Lint.to_json ~name:label ds) reports in
               print_string
                 (Hls_util.Json.to_string
                    (match objs with [ o ] -> o | _ -> Hls_util.Json.Arr objs))
             else
               List.iter (fun (label, ds) -> print_string (Lint.render ~name:label ds)) reports);
            if List.exists (fun (_, ds) -> Lint.has_errors ds) reports then exit 1)
  in
  let info =
    Cmd.info "lint"
      ~doc:
        "Run every IR-level checker (CDFG, schedule, allocation, netlist, controller, \
         microcode) over a synthesized design and report structured diagnostics. Exits \
         non-zero if any error-severity diagnostic is found."
  in
  Cmd.v info
    Term.(
      const run $ source_file $ example $ lint_all_flag $ matrix_flag $ json_flag $ floor_arg
      $ rules_flag $ opt_level $ if_convert_flag $ scheduler $ fus $ allocator $ encoding)

(* ---- run ---- *)

let inputs_arg =
  Arg.(
    value & opt_all string []
    & info [ "input"; "i" ] ~docv:"NAME=VALUE"
        ~doc:"Input port value (decimal; floats allowed for fixed-point ports). Repeatable.")

let vcd_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD waveform of the run to FILE.")

let run_cmd =
  let run file example opt_level if_conv scheduler fus allocator encoding inputs vcd =
    match read_source file example with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    | Ok src ->
        handle_errors (fun () ->
            let options = make_options opt_level if_conv scheduler fus allocator encoding in
            let d = Flow.synthesize ~options src in
            let port_ty name =
              match
                List.find_opt (fun (n, _, _) -> n = name) (Flow.ports_of d.Flow.prog)
              with
              | Some (_, _, ty) -> ty
              | None ->
                  Printf.eprintf "error: no port %s\n" name;
                  exit 1
            in
            let parse_input s =
              match String.index_opt s '=' with
              | None ->
                  Printf.eprintf "error: input %S is not NAME=VALUE\n" s;
                  exit 1
              | Some i ->
                  let name = String.sub s 0 i in
                  let v = String.sub s (i + 1) (String.length s - i - 1) in
                  (name, Hls_sim.Beh_sim.to_raw (port_ty name) (float_of_string v))
            in
            let inputs = List.map parse_input inputs in
            let r =
              match vcd with
              | Some path ->
                  let r = Hls_sim.Vcd.dump_to_file d.Flow.datapath ~inputs ~path in
                  Printf.printf "wrote %s\n" path;
                  r
              | None -> Hls_sim.Rtl_sim.run d.Flow.datapath ~inputs
            in
            Printf.printf "finished in %d cycles\n" r.Hls_sim.Rtl_sim.cycles;
            List.iter
              (fun (name, _, ty) ->
                match List.assoc_opt name r.Hls_sim.Rtl_sim.finals with
                | Some raw ->
                    Printf.printf "%s = %g (raw %d)\n" name
                      (Hls_sim.Beh_sim.of_raw ty raw) raw
                | None -> ())
              (List.filter (fun (_, d, _) -> d = `Out) (Flow.ports_of d.Flow.prog)))
  in
  let info = Cmd.info "run" ~doc:"Synthesize and simulate the RTL on given inputs." in
  Cmd.v info
    Term.(
      const run $ source_file $ example $ opt_level $ if_convert_flag $ scheduler $ fus
      $ allocator $ encoding $ inputs_arg $ vcd_out)

(* ---- explore ---- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Evaluate sweep points on N worker domains (clamped to the \
           hardware's recommended domain count).")

let all_flag =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Sweep the full scheduler \\$(i,\\times) limits cross product instead of limits only.")

let timings_flag =
  Arg.(
    value & flag
    & info [ "timings" ] ~doc:"Append the per-stage wall-clock breakdown to the table.")

let explore_cmd =
  let run file example opt_level if_conv scheduler allocator encoding jobs all timings =
    match read_source file example with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 1
    | Ok src ->
        handle_errors (fun () ->
            let base = make_options opt_level if_conv scheduler 2 allocator encoding in
            Timing.reset ();
            let points =
              if all then Explore.sweep ~jobs ~base src
              else Explore.sweep_limits ~jobs ~base src
            in
            print_string (Explore.table ~timings points))
  in
  let info =
    Cmd.info "explore"
      ~doc:
        "Sweep resource limits (or, with $(b,--all), the scheduler \\$(i,\\times) limits \
         cross product) through the memoized DSE engine; print the trade-off table."
  in
  Cmd.v info
    Term.(
      const run $ source_file $ example $ opt_level $ if_convert_flag $ scheduler
      $ allocator $ encoding $ jobs_arg $ all_flag $ timings_flag)

(* ---- examples ---- *)

let examples_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Workloads.all
  in
  let info = Cmd.info "examples" ~doc:"List built-in workloads." in
  Cmd.v info Term.(const run $ const ())

let () =
  let info =
    Cmd.info "hlsc" ~version:"1.0.0"
      ~doc:"High-level synthesis: behavioral specifications to RTL structures."
  in
  exit (Cmd.eval (Cmd.group info [ synth_cmd; lint_cmd; run_cmd; explore_cmd; examples_cmd ]))
