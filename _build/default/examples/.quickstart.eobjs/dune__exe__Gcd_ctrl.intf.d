examples/gcd_ctrl.mli:
