examples/quickstart.mli:
