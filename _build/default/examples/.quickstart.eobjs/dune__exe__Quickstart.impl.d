examples/quickstart.ml: Flow Hls_core Hls_lang Hls_rtl Hls_sim List Printf Report Workloads
