examples/fir_filter.ml: Array Depgraph Flow Hls_cdfg Hls_core Hls_lang Hls_rtl Hls_sched Hls_sim Hls_transform Limits List Printf Workloads
