examples/explore_sqrt.mli:
