examples/explore_sqrt.ml: Cfg_sched Explore Flow Hls_cdfg Hls_core Hls_ctrl Hls_lang Hls_rtl Hls_sched Hls_transform Limits List List_sched Printf String Workloads
