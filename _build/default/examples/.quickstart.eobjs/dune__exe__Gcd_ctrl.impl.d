examples/gcd_ctrl.ml: Array Flow Format Hashtbl Hls_core Hls_ctrl Hls_rtl Hls_sim Hls_util List Printf Table Workloads
