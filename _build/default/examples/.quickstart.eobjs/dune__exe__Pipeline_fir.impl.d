examples/pipeline_fir.ml: Depgraph Flow Hls_cdfg Hls_core Hls_lang Hls_sched Hls_transform Hls_util Limits List Option Pipeline Printf Schedule String Table Workloads
