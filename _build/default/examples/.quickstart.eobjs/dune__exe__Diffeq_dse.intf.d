examples/diffeq_dse.mli:
