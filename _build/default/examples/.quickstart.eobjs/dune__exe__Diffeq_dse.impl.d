examples/diffeq_dse.ml: Explore Flow Hls_core List Printf Workloads
