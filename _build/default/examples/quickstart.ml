(* Quickstart: synthesize the paper's sqrt example end to end, simulate
   the generated RTL, and check it against the behavioral specification.

     dune exec examples/quickstart.exe *)

open Hls_core

let () =
  (* 1. synthesize with default options: standard optimizations, list
     scheduling on two functional units, min-mux greedy allocation *)
  let design = Flow.synthesize Workloads.sqrt_newton in
  Printf.printf "synthesized '%s': %s\n\n"
    design.Flow.prog.Hls_lang.Typed.tname
    (Hls_rtl.Datapath.stats design.Flow.datapath);

  (* 2. simulate the RTL on a few inputs and compare with √x *)
  let ty = Hls_lang.Ast.Tfix (8, 24) in
  print_endline "  x        sqrt(x)   RTL y     |error|   cycles";
  List.iter
    (fun x ->
      let inputs = [ ("x", Hls_sim.Beh_sim.to_raw ty x) ] in
      let r = Hls_sim.Rtl_sim.run design.Flow.datapath ~inputs in
      let y = Hls_sim.Beh_sim.of_raw ty (List.assoc "y" r.Hls_sim.Rtl_sim.finals) in
      Printf.printf "  %-8.4f %-9.6f %-9.6f %-9.2e %d\n" x (sqrt x) y
        (abs_float (y -. sqrt x))
        r.Hls_sim.Rtl_sim.cycles)
    [ 0.0625; 0.125; 0.25; 0.5; 0.75; 1.0 ];

  (* 3. verify: behavioral spec, compiled CDFG and RTL agree bit-exactly *)
  print_newline ();
  (match Flow.verify ~runs:25 design with
  | Ok () -> print_endline "co-simulation: 25 random vectors, all three levels agree"
  | Error e -> Printf.printf "co-simulation FAILED: %s\n" e);

  (* 4. the design report *)
  print_newline ();
  Report.print design
