(* Control-dominated example: Euclid's GCD. Compares the three control
   styles of section 2 — random logic (by encoding), PLA, and microcode
   ROM — on the same schedule, and runs the design with the synthesized
   (Quine-McCluskey-minimized) next-state logic in the loop.

     dune exec examples/gcd_ctrl.exe *)

open Hls_core
open Hls_util

let () =
  let design = Flow.synthesize Workloads.gcd in
  let fsm = design.Flow.datapath.Hls_rtl.Datapath.fsm in
  Printf.printf "GCD controller: %d states\n\n" (Hls_ctrl.Fsm.n_states fsm);

  let t =
    Table.create
      ~headers:[ "encoding"; "state bits"; "literals(min)"; "literals(direct)"; "PLA rows"; "PLA area" ]
  in
  List.iter
    (fun style ->
      let c = Hls_ctrl.Ctrl_synth.synthesize ~style fsm in
      let rows = Hls_ctrl.Ctrl_synth.pla_rows c in
      Table.add_row t
        [
          Hls_ctrl.Encoding.style_to_string style;
          string_of_int (Hls_ctrl.Ctrl_synth.n_state_bits c);
          string_of_int (Hls_ctrl.Ctrl_synth.literal_cost c);
          string_of_int (Hls_ctrl.Ctrl_synth.direct_literal_cost c);
          string_of_int rows;
          string_of_int (Hls_ctrl.Ctrl_synth.pla_cost c ~rows);
        ])
    [ Hls_ctrl.Encoding.Binary; Hls_ctrl.Encoding.Gray; Hls_ctrl.Encoding.One_hot ];
  Table.print t;

  (* microcode cost on the same controller: one word per state holding
     the register-load enables and the unit operation selects *)
  let n_states = Hls_ctrl.Fsm.n_states fsm in
  let n_loads = List.length design.Flow.datapath.Hls_rtl.Datapath.regs in
  let fields =
    [
      { Hls_ctrl.Microcode.fname = "reg_enables"; fwidth = max 1 n_loads };
      { Hls_ctrl.Microcode.fname = "fu_op"; fwidth = 4 };
      { Hls_ctrl.Microcode.fname = "next_sel"; fwidth = 2 };
    ]
  in
  let words =
    Array.init n_states (fun sid ->
        let enables =
          List.mapi
            (fun i (r : Hls_rtl.Datapath.reg_def) ->
              if
                List.exists
                  (fun (l : Hls_rtl.Datapath.load) -> l.Hls_rtl.Datapath.l_reg = r.Hls_rtl.Datapath.rname)
                  (Hls_rtl.Datapath.loads_in design.Flow.datapath sid)
              then 1 lsl i
              else 0)
            design.Flow.datapath.Hls_rtl.Datapath.regs
          |> List.fold_left ( lor ) 0
        in
        let op_code =
          match Hls_rtl.Datapath.activities_in design.Flow.datapath sid with
          | a :: _ -> (Hashtbl.hash a.Hls_rtl.Datapath.a_op land 0xF)
          | [] -> 0
        in
        let branchy = if Hls_rtl.Datapath.cond_wire design.Flow.datapath sid <> None then 1 else 0 in
        [ enables; op_code; branchy ])
  in
  let mc = Hls_ctrl.Microcode.make ~fields ~words in
  Printf.printf "\n%s" (Format.asprintf "%a" Hls_ctrl.Microcode.pp mc);

  (* run with the minimized gate-level controller in the loop *)
  print_endline "\ngate-level controller simulation:";
  List.iter
    (fun (a, b) ->
      let r =
        Hls_sim.Rtl_sim.run ~gate_level_control:true design.Flow.datapath
          ~inputs:[ ("a_in", a); ("b_in", b) ]
      in
      Printf.printf "  gcd(%d, %d) = %d  (%d cycles)\n" a b
        (List.assoc "g" r.Hls_sim.Rtl_sim.finals)
        r.Hls_sim.Rtl_sim.cycles)
    [ (12, 18); (35, 14); (81, 27); (1024, 768); (17, 5) ]
