(* DSP example: an 8-tap FIR filter (the CATHEDRAL domain). Shows the
   effect of tree-height reduction — rebalancing the long accumulation
   chain shortens the critical path and lets more multipliers run in
   parallel — and filters an actual signal through the synthesized RTL.

     dune exec examples/fir_filter.exe *)

open Hls_core
open Hls_sched

let optimized_cfg src ~tree_height =
  let prog = Hls_lang.Typecheck.check (Hls_lang.Inline.expand (Hls_lang.Parser.parse src)) in
  let cfg = Hls_cdfg.Compile.compile prog in
  let outputs = Flow.output_names prog in
  let cfg = Hls_transform.Passes.optimize ~level:`Standard ~outputs cfg in
  if tree_height then ignore (Hls_transform.Tree_height.run cfg);
  cfg

let critical_length cfg =
  List.fold_left
    (fun acc bid ->
      max acc (Depgraph.critical_length (Depgraph.of_dfg (Hls_cdfg.Cfg.dfg cfg bid))))
    0
    (Hls_cdfg.Cfg.block_ids cfg)

let () =
  let src = Workloads.fir8 in
  let chain_cl = critical_length (optimized_cfg src ~tree_height:false) in
  let tree_cl = critical_length (optimized_cfg src ~tree_height:true) in
  Printf.printf "critical path: %d steps as written, %d after tree-height reduction\n\n"
    chain_cl tree_cl;

  (* synthesize and run a signal through the filter *)
  let design =
    Flow.synthesize
      ~options:{ Flow.default_options with Flow.limits = Limits.Total 3 }
      src
  in
  Printf.printf "design: %s\n" (Hls_rtl.Datapath.stats design.Flow.datapath);
  let ty = Hls_lang.Ast.Tfix (8, 24) in
  let taps = [| "x0"; "x1"; "x2"; "x3"; "x4"; "x5"; "x6"; "x7" |] in
  let signal = Array.init 24 (fun n -> sin (float_of_int n /. 3.0)) in
  let window = Array.make 8 0.0 in
  print_endline "n   input     filtered";
  Array.iteri
    (fun n x ->
      Array.blit window 0 window 1 7;
      window.(0) <- x;
      let inputs =
        Array.to_list
          (Array.mapi (fun i t -> (t, Hls_sim.Beh_sim.to_raw ty window.(i))) taps)
      in
      let r = Hls_sim.Rtl_sim.run design.Flow.datapath ~inputs in
      let y = Hls_sim.Beh_sim.of_raw ty (List.assoc "y" r.Hls_sim.Rtl_sim.finals) in
      Printf.printf "%-3d %+.5f  %+.5f\n" n x y)
    signal;
  match Flow.verify ~runs:10 design with
  | Ok () -> print_endline "\nco-simulation: 10 random vectors agree"
  | Error e -> Printf.printf "\nco-simulation FAILED: %s\n" e
