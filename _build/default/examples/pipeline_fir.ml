(* Pipelined datapath exploration (Sehwa): modulo-schedule the FIR
   filter kernel at decreasing initiation intervals and print the
   cost/performance curve — throughput bought with concurrently-busy
   functional units.

     dune exec examples/pipeline_fir.exe *)

open Hls_core
open Hls_sched
open Hls_util

let kernel_of src =
  let prog = Hls_lang.Typecheck.check (Hls_lang.Inline.expand (Hls_lang.Parser.parse src)) in
  let cfg = Hls_cdfg.Compile.compile prog in
  let outputs = Flow.output_names prog in
  let cfg = Hls_transform.Passes.optimize ~level:`Standard ~outputs cfg in
  ignore (Hls_transform.Tree_height.run cfg);
  (* largest block is the kernel *)
  List.fold_left
    (fun best bid ->
      let g = Hls_cdfg.Cfg.dfg cfg bid in
      match best with
      | Some g' when Hls_cdfg.Dfg.n_nodes g' >= Hls_cdfg.Dfg.n_nodes g -> best
      | _ -> Some g)
    None
    (Hls_cdfg.Cfg.block_ids cfg)
  |> Option.get

let () =
  let g = kernel_of Workloads.fir8 in
  let dep = Depgraph.of_dfg g in
  Printf.printf "fir8 kernel: %d operations, critical path %d steps\n\n"
    (Depgraph.n_ops dep)
    (Depgraph.critical_length dep);

  (* the full trade-off curve *)
  let t =
    Table.create
      ~headers:[ "II"; "latency"; "results/step"; "units (steady state)" ]
  in
  List.iter
    (fun (ii, latency, demand) ->
      Table.add_row t
        [
          string_of_int ii;
          string_of_int latency;
          Printf.sprintf "%.2f" (1.0 /. float_of_int ii);
          String.concat ", "
            (List.map
               (fun (c, n) ->
                 Printf.sprintf "%d %s" n (Hls_cdfg.Op.fu_class_to_string c))
               demand);
        ])
    (Pipeline.throughput_table ~limits:(Limits.Total 2) g);
  Table.print t;

  (* zoom in on one design point: smallest interval on two units *)
  let r = Pipeline.min_ii ~limits:(Limits.Total 2) g in
  Printf.printf
    "\nsmallest interval on 2 general units: II = %d (latency %d steps)\n"
    r.Pipeline.ii
    (Schedule.n_steps r.Pipeline.schedule);
  Printf.printf "steady-state slot loads (overlapped iterations):\n";
  List.iter
    (fun (slot, counts) ->
      Printf.printf "  slot %d: %s\n" slot
        (String.concat ", "
           (List.map
              (fun (c, n) -> Printf.sprintf "%d %s" n (Hls_cdfg.Op.fu_class_to_string c))
              counts)))
    r.Pipeline.modulo_usage;

  (* sanity: the modulo schedule still respects all dependences *)
  match Schedule.verify Limits.Unlimited r.Pipeline.schedule with
  | Ok () -> print_endline "\ndependences verified for the pipelined schedule"
  | Error e -> Printf.printf "\nINVALID: %s\n" e
