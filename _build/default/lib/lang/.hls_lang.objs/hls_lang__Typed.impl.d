lib/lang/typed.ml: Ast List
