lib/lang/inline.ml: Ast List Printf
