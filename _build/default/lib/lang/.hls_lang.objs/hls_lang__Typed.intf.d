lib/lang/typed.mli: Ast
