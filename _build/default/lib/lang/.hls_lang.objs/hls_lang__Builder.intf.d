lib/lang/builder.mli: Ast
