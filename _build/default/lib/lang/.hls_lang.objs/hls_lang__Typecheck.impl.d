lib/lang/typecheck.ml: Ast Hashtbl List Printf Typed
