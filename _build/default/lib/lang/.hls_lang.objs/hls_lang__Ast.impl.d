lib/lang/ast.ml: Format Printf
