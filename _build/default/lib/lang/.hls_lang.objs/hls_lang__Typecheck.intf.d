lib/lang/typecheck.mli: Ast Typed
