type token =
  | INT of int
  | REAL of float
  | IDENT of string
  | KW_MODULE | KW_INPUT | KW_OUTPUT | KW_VAR
  | KW_BEGIN | KW_END | KW_IF | KW_THEN | KW_ELSE
  | KW_WHILE | KW_DO | KW_REPEAT | KW_UNTIL | KW_FOR | KW_TO
  | KW_TRUE | KW_FALSE
  | KW_AND | KW_OR | KW_XOR | KW_NOT | KW_MOD
  | KW_INT | KW_FIX | KW_BOOL
  | KW_PROC | KW_CALL
  | LPAREN | RPAREN | SEMI | COLON | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH
  | SHL | SHR
  | EQ | NE | LT | LE | GT | GE
  | EOF

let token_to_string = function
  | INT n -> string_of_int n
  | REAL x -> string_of_float x
  | IDENT s -> s
  | KW_MODULE -> "module"
  | KW_INPUT -> "input"
  | KW_OUTPUT -> "output"
  | KW_VAR -> "var"
  | KW_BEGIN -> "begin"
  | KW_END -> "end"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_REPEAT -> "repeat"
  | KW_UNTIL -> "until"
  | KW_FOR -> "for"
  | KW_TO -> "to"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_XOR -> "xor"
  | KW_NOT -> "not"
  | KW_MOD -> "mod"
  | KW_INT -> "int"
  | KW_FIX -> "fix"
  | KW_BOOL -> "bool"
  | KW_PROC -> "proc"
  | KW_CALL -> "call"
  | LPAREN -> "("
  | RPAREN -> ")"
  | SEMI -> ";"
  | COLON -> ":"
  | COMMA -> ","
  | ASSIGN -> ":="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | SHL -> "<<"
  | SHR -> ">>"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

type lexed = { tok : token; tpos : Ast.pos }

let keyword_table =
  [
    ("module", KW_MODULE); ("input", KW_INPUT); ("output", KW_OUTPUT);
    ("var", KW_VAR); ("begin", KW_BEGIN); ("end", KW_END); ("if", KW_IF);
    ("then", KW_THEN); ("else", KW_ELSE); ("while", KW_WHILE); ("do", KW_DO);
    ("repeat", KW_REPEAT); ("until", KW_UNTIL); ("for", KW_FOR); ("to", KW_TO);
    ("true", KW_TRUE); ("false", KW_FALSE); ("and", KW_AND); ("or", KW_OR);
    ("xor", KW_XOR); ("not", KW_NOT); ("mod", KW_MOD); ("int", KW_INT);
    ("fix", KW_FIX); ("bool", KW_BOOL); ("proc", KW_PROC); ("call", KW_CALL);
  ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

type state = { src : string; mutable i : int; mutable line : int; mutable col : int }

let pos st : Ast.pos = { line = st.line; col = st.col }

let peek_char st = if st.i < String.length st.src then Some st.src.[st.i] else None

let peek_char2 st =
  if st.i + 1 < String.length st.src then Some st.src.[st.i + 1] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.i <- st.i + 1

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '-' when peek_char2 st = Some '-' ->
      (* comment to end of line *)
      let rec to_eol () =
        match peek_char st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws st
  | Some _ | None -> ()

let lex_number st =
  let p = pos st in
  let start = st.i in
  while (match peek_char st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_real =
    peek_char st = Some '.'
    && (match peek_char2 st with Some c -> is_digit c | None -> false)
  in
  if is_real then begin
    advance st;
    while (match peek_char st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.i - start) in
    match float_of_string_opt text with
    | Some x -> { tok = REAL x; tpos = p }
    | None -> Ast.error p (Printf.sprintf "malformed real literal %S" text)
  end
  else begin
    let text = String.sub st.src start (st.i - start) in
    match int_of_string_opt text with
    | Some n -> { tok = INT n; tpos = p }
    | None -> Ast.error p (Printf.sprintf "malformed integer literal %S" text)
  end

let lex_ident st =
  let p = pos st in
  let start = st.i in
  while (match peek_char st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.i - start) in
  match List.assoc_opt (String.lowercase_ascii text) keyword_table with
  | Some kw -> { tok = kw; tpos = p }
  | None -> { tok = IDENT text; tpos = p }

let next_token st =
  skip_ws st;
  let p = pos st in
  match peek_char st with
  | None -> { tok = EOF; tpos = p }
  | Some c when is_digit c -> lex_number st
  | Some c when is_ident_start c -> lex_ident st
  | Some c -> (
      let two target result =
        advance st;
        if peek_char st = Some target then begin
          advance st;
          result
        end
        else Ast.error p (Printf.sprintf "unexpected character after '%c'" c)
      in
      match c with
      | '(' ->
          advance st;
          { tok = LPAREN; tpos = p }
      | ')' ->
          advance st;
          { tok = RPAREN; tpos = p }
      | ';' ->
          advance st;
          { tok = SEMI; tpos = p }
      | ',' ->
          advance st;
          { tok = COMMA; tpos = p }
      | '+' ->
          advance st;
          { tok = PLUS; tpos = p }
      | '-' ->
          advance st;
          { tok = MINUS; tpos = p }
      | '*' ->
          advance st;
          { tok = STAR; tpos = p }
      | '/' ->
          advance st;
          { tok = SLASH; tpos = p }
      | '=' ->
          advance st;
          { tok = EQ; tpos = p }
      | ':' ->
          advance st;
          if peek_char st = Some '=' then begin
            advance st;
            { tok = ASSIGN; tpos = p }
          end
          else { tok = COLON; tpos = p }
      | '<' ->
          advance st;
          (match peek_char st with
          | Some '=' ->
              advance st;
              { tok = LE; tpos = p }
          | Some '>' ->
              advance st;
              { tok = NE; tpos = p }
          | Some '<' ->
              advance st;
              { tok = SHL; tpos = p }
          | Some _ | None -> { tok = LT; tpos = p })
      | '>' ->
          advance st;
          (match peek_char st with
          | Some '=' ->
              advance st;
              { tok = GE; tpos = p }
          | Some '>' ->
              advance st;
              { tok = SHR; tpos = p }
          | Some _ | None -> { tok = GT; tpos = p })
      | '&' -> two '&' { tok = KW_AND; tpos = p }
      | '|' -> two '|' { tok = KW_OR; tpos = p }
      | c -> Ast.error p (Printf.sprintf "illegal character '%c'" c))

let tokenize src =
  let st = { src; i = 0; line = 1; col = 1 } in
  let rec loop acc =
    let t = next_token st in
    match t.tok with EOF -> List.rev (t :: acc) | _ -> loop (t :: acc)
  in
  loop []
