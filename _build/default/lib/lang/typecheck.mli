(** Type checker: untyped AST → typed AST.

    Typing rules:
    - integer literals adopt the type of their context (any [int] or [fix]);
      without context they default to [int<32>];
    - real literals require a fixed-point context;
    - arithmetic requires both operands in the same family ([int] of any
      widths joins to the widest; [fix] requires an identical format);
    - shift amounts must be integers; the result has the shifted operand's
      type;
    - [and]/[or]/[xor] are logical on booleans and bitwise on integers;
    - comparisons yield [bool]; loop and branch conditions must be [bool];
    - assignments to input ports, uses of undeclared names, and duplicate
      declarations are errors. *)

val check : Ast.program -> Typed.tprogram
(** Raises {!Ast.Frontend_error} with a source position on any violation. *)

val check_expr :
  env:(string * Ast.ty) list -> ?expected:Ast.ty -> Ast.expr -> Typed.texpr
(** Check a standalone expression against an environment (used in tests). *)
