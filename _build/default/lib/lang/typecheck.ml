open Ast
open Typed

let default_int_width = 32

let is_literal (e : Ast.expr) =
  match e.e with Eint _ | Ereal _ -> true | Ebool _ | Evar _ | Ebin _ | Eun _ -> false

(* Widest common type of two operand types for arithmetic. *)
let join pos a b =
  match (a, b) with
  | Tint w1, Tint w2 -> Tint (max w1 w2)
  | Tfix (i1, f1), Tfix (i2, f2) when i1 = i2 && f1 = f2 -> Tfix (i1, f1)
  | Tfix _, Tfix _ ->
      error pos
        (Printf.sprintf "fixed-point formats differ: %s vs %s" (ty_to_string a)
           (ty_to_string b))
  | _ ->
      error pos
        (Printf.sprintf "operand types do not mix: %s vs %s" (ty_to_string a)
           (ty_to_string b))

let rec infer env (e : Ast.expr) (expected : ty option) : texpr =
  let pos = e.epos in
  match e.e with
  | Eint n -> (
      match expected with
      | Some (Tint _ as t) | Some (Tfix _ as t) -> { te = TEint n; ty = t }
      | Some Tbool -> error pos "integer literal used where a bool is required"
      | None -> { te = TEint n; ty = Tint default_int_width })
  | Ereal x -> (
      match expected with
      | Some (Tfix _ as t) -> { te = TEreal x; ty = t }
      | Some t ->
          error pos
            (Printf.sprintf "real literal used where %s is required" (ty_to_string t))
      | None -> error pos "real literal requires a fixed-point context")
  | Ebool b -> (
      match expected with
      | Some Tbool | None -> { te = TEbool b; ty = Tbool }
      | Some t ->
          error pos
            (Printf.sprintf "boolean literal used where %s is required"
               (ty_to_string t)))
  | Evar name -> (
      match List.assoc_opt name env with
      | Some t -> { te = TEvar name; ty = t }
      | None -> error pos (Printf.sprintf "undeclared identifier %s" name))
  | Eun (Neg, operand) ->
      let t = infer_numeric env operand expected pos in
      { te = TEun (Neg, t); ty = t.ty }
  | Eun (Not, operand) -> (
      let t = infer env operand expected in
      match t.ty with
      | Tbool | Tint _ -> { te = TEun (Not, t); ty = t.ty }
      | Tfix _ -> error pos "'not' does not apply to fixed-point values")
  | Ebin (op, a, b) -> infer_bin env pos op a b expected

and infer_numeric env e expected pos =
  let t = infer env e expected in
  match t.ty with
  | Tint _ | Tfix _ -> t
  | Tbool -> error pos "numeric operand required"

(* Infer the two operands of a binary operator. If one side is a bare
   literal, type the other side first so the literal adopts its type. *)
and infer_pair env pos a b expected =
  if is_literal a && not (is_literal b) then begin
    let tb = infer env b expected in
    let ta = infer env a (Some tb.ty) in
    (ta, tb, join pos ta.ty tb.ty)
  end
  else begin
    let ta = infer env a expected in
    let tb = infer env b (Some ta.ty) in
    (ta, tb, join pos ta.ty tb.ty)
  end

and infer_bin env pos op a b expected =
  match op with
  | Add | Sub | Mul | Div | Mod ->
      let expected_num =
        match expected with Some (Tint _ | Tfix _) -> expected | Some Tbool | None -> None
      in
      let ta, tb, ty = infer_pair env pos a b expected_num in
      (match ty with
      | Tint _ | Tfix _ -> { te = TEbin (op, ta, tb); ty }
      | Tbool -> error pos "arithmetic on booleans")
  | Shl | Shr ->
      let ta = infer_numeric env a expected pos in
      let tb = infer env b (Some (Tint 6)) in
      (match tb.ty with
      | Tint _ -> { te = TEbin (op, ta, tb); ty = ta.ty }
      | Tbool | Tfix _ -> error pos "shift amount must be an integer")
  | And | Or | Xor -> (
      let ta, tb, ty =
        (* booleans have no literal form except true/false, so plain pair
           inference works for both the logical and bitwise reading *)
        infer_pair_logic env pos a b expected
      in
      match ty with
      | Tbool | Tint _ -> { te = TEbin (op, ta, tb); ty }
      | Tfix _ -> error pos "bitwise logic does not apply to fixed-point values")
  | Eq | Ne | Lt | Le | Gt | Ge ->
      let ta, tb, _ = infer_pair env pos a b None in
      { te = TEbin (op, ta, tb); ty = Tbool }

and infer_pair_logic env pos a b expected =
  let ta = infer env a expected in
  let tb = infer env b (Some ta.ty) in
  match (ta.ty, tb.ty) with
  | Tbool, Tbool -> (ta, tb, Tbool)
  | Tint _, Tint _ -> (ta, tb, join pos ta.ty tb.ty)
  | _ ->
      error pos
        (Printf.sprintf "logic operands do not mix: %s vs %s" (ty_to_string ta.ty)
           (ty_to_string tb.ty))

let check_expr ~env ?expected e = infer env e expected

let check (p : Ast.program) : tprogram =
  (* duplicate-declaration check *)
  let names =
    List.map (fun (port : port) -> port.pname) p.ports
    @ List.map (fun (d : decl) -> d.vname) p.vars
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        error dummy_pos (Printf.sprintf "duplicate declaration of %s" n)
      else Hashtbl.add seen n ())
    names;
  let env =
    List.map (fun (port : port) -> (port.pname, port.pty)) p.ports
    @ List.map (fun (d : decl) -> (d.vname, d.vty)) p.vars
  in
  let inputs =
    List.filter_map
      (fun (port : port) -> if port.pdir = Input then Some port.pname else None)
      p.ports
  in
  let check_target pos name =
    match List.assoc_opt name env with
    | None -> error pos (Printf.sprintf "assignment to undeclared identifier %s" name)
    | Some t ->
        if List.mem name inputs then
          error pos (Printf.sprintf "assignment to input port %s" name)
        else t
  in
  let check_cond env (e : Ast.expr) =
    let t = infer env e (Some Tbool) in
    match t.ty with
    | Tbool -> t
    | ty ->
        error e.epos
          (Printf.sprintf "condition must be bool, found %s" (ty_to_string ty))
  in
  let rec check_stmt (st : Ast.stmt) : tstmt =
    let pos = st.spos in
    match st.s with
    | Sassign (name, rhs) ->
        let target_ty = check_target pos name in
        let trhs = infer env rhs (Some target_ty) in
        let ok =
          match (target_ty, trhs.ty) with
          | Tint _, Tint _ -> true (* implicit wrap/extend between int widths *)
          | a, b -> equal_ty a b
        in
        if not ok then
          error pos
            (Printf.sprintf "cannot assign %s to %s : %s" (ty_to_string trhs.ty)
               name
               (ty_to_string target_ty));
        TSassign (name, trhs)
    | Sif (cond, then_, else_) ->
        TSif (check_cond env cond, List.map check_stmt then_, List.map check_stmt else_)
    | Swhile (cond, body) -> TSwhile (check_cond env cond, List.map check_stmt body)
    | Srepeat (body, cond) -> TSrepeat (List.map check_stmt body, check_cond env cond)
    | Scall (name, _) ->
        error pos
          (Printf.sprintf
             "call to %s not expanded (run Inline.expand before type checking)" name)
    | Sfor (name, from_, to_, body) ->
        let target_ty = check_target pos name in
        (match target_ty with
        | Tint _ -> ()
        | t ->
            error pos
              (Printf.sprintf "for-loop variable %s must be an integer, found %s" name
                 (ty_to_string t)));
        let tfrom = infer env from_ (Some target_ty) in
        let tto = infer env to_ (Some target_ty) in
        TSfor (name, tfrom, tto, List.map check_stmt body)
  in
  {
    tname = p.mname;
    tports = p.ports;
    tvars = p.vars;
    tbody = List.map check_stmt p.body;
  }
