(** Type-annotated abstract syntax, the output of {!Typecheck} and the
    input to CDFG compilation. Every expression carries its resolved type;
    literal values are still symbolic (scaling to fixed-point bit patterns
    happens during CDFG compilation). *)

type texpr = { te : texpr_node; ty : Ast.ty }

and texpr_node =
  | TEint of int
  | TEreal of float
  | TEbool of bool
  | TEvar of string
  | TEbin of Ast.binop * texpr * texpr
  | TEun of Ast.unop * texpr

type tstmt =
  | TSassign of string * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSrepeat of tstmt list * texpr
  | TSfor of string * texpr * texpr * tstmt list

type tprogram = {
  tname : string;
  tports : Ast.port list;
  tvars : Ast.decl list;
  tbody : tstmt list;
}

val var_ty : tprogram -> string -> Ast.ty
(** Type of a port or variable. Raises [Not_found] if undeclared. *)

val all_vars : tprogram -> (string * Ast.ty) list
(** All ports and variables with their types, ports first. *)
