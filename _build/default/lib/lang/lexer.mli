(** Hand-written lexer for the behavioral specification language. *)

type token =
  | INT of int
  | REAL of float
  | IDENT of string
  (* keywords *)
  | KW_MODULE | KW_INPUT | KW_OUTPUT | KW_VAR
  | KW_BEGIN | KW_END | KW_IF | KW_THEN | KW_ELSE
  | KW_WHILE | KW_DO | KW_REPEAT | KW_UNTIL | KW_FOR | KW_TO
  | KW_TRUE | KW_FALSE
  | KW_AND | KW_OR | KW_XOR | KW_NOT | KW_MOD
  | KW_INT | KW_FIX | KW_BOOL
  | KW_PROC | KW_CALL
  (* punctuation and operators *)
  | LPAREN | RPAREN | SEMI | COLON | COMMA
  | ASSIGN            (** [:=] *)
  | PLUS | MINUS | STAR | SLASH
  | SHL | SHR         (** [<<], [>>] *)
  | EQ | NE | LT | LE | GT | GE
  | EOF

val token_to_string : token -> string

type lexed = { tok : token; tpos : Ast.pos }

val tokenize : string -> lexed list
(** Tokenize an entire source string. Comments run from ["--"] to end of
    line. Raises {!Ast.Frontend_error} on illegal characters or malformed
    numbers. The result always ends with an [EOF] token. *)
