open Ast

let mk e = { e; epos = dummy_pos }
let mks s = { s; spos = dummy_pos }

let v name = mk (Evar name)
let int n = mk (Eint n)
let real x = mk (Ereal x)
let bool b = mk (Ebool b)

let bin op a b = mk (Ebin (op, a, b))

let ( + ) a b = bin Add a b
let ( - ) a b = bin Sub a b
let ( * ) a b = bin Mul a b
let ( / ) a b = bin Div a b
let ( mod ) a b = bin Mod a b
let ( lsl ) a b = bin Shl a b
let ( lsr ) a b = bin Shr a b
let ( = ) a b = bin Eq a b
let ( <> ) a b = bin Ne a b
let ( < ) a b = bin Lt a b
let ( <= ) a b = bin Le a b
let ( > ) a b = bin Gt a b
let ( >= ) a b = bin Ge a b
let ( && ) a b = bin And a b
let ( || ) a b = bin Or a b
let xor a b = bin Xor a b
let neg a = mk (Eun (Neg, a))
let not_ a = mk (Eun (Not, a))

let ( <-- ) name rhs = mks (Sassign (name, rhs))
let if_ cond then_ else_ = mks (Sif (cond, then_, else_))
let while_ cond body = mks (Swhile (cond, body))
let repeat body ~until = mks (Srepeat (body, until))
let for_ name ~from ~to_ body = mks (Sfor (name, from, to_, body))

let in_ pname pty = { pname; pdir = Input; pty }
let out pname pty = { pname; pdir = Output; pty }
let local vname vty = { vname; vty }

let call name args = mks (Scall (name, args))

let proc prname ~params ~vars prbody = { prname; prparams = params; prvars = vars; prbody }

let program ?(procs = []) mname ~ports ~vars body = { mname; ports; procs; vars; body }
