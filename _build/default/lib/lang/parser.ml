open Ast

type state = { toks : Lexer.lexed array; mutable i : int }

let cur st = st.toks.(st.i)

let cur_tok st = (cur st).tok

let cur_pos st = (cur st).tpos

let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let expect st tok =
  if cur_tok st = tok then advance st
  else
    error (cur_pos st)
      (Printf.sprintf "expected '%s' but found '%s'" (Lexer.token_to_string tok)
         (Lexer.token_to_string (cur_tok st)))

let expect_ident st =
  match cur_tok st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t ->
      error (cur_pos st)
        (Printf.sprintf "expected identifier but found '%s'" (Lexer.token_to_string t))

let expect_int st =
  match cur_tok st with
  | Lexer.INT n ->
      advance st;
      n
  | t ->
      error (cur_pos st)
        (Printf.sprintf "expected integer but found '%s'" (Lexer.token_to_string t))

(* ---- types ---- *)

let parse_ty st =
  match cur_tok st with
  | Lexer.KW_BOOL ->
      advance st;
      Tbool
  | Lexer.KW_INT ->
      advance st;
      expect st Lexer.LT;
      let w = expect_int st in
      expect st Lexer.GT;
      if w < 1 || w > 62 then error (cur_pos st) "int width must be in 1..62";
      Tint w
  | Lexer.KW_FIX ->
      advance st;
      expect st Lexer.LT;
      let i = expect_int st in
      expect st Lexer.COMMA;
      let f = expect_int st in
      expect st Lexer.GT;
      if i < 0 || f < 0 || i + f < 1 || i + f > 62 then
        error (cur_pos st) "fix format must have 1..62 total bits";
      Tfix (i, f)
  | t ->
      error (cur_pos st)
        (Printf.sprintf "expected a type but found '%s'" (Lexer.token_to_string t))

(* ---- expressions ---- *)

let rec parse_expr_prec st =
  parse_or st

and parse_or st =
  let rec loop lhs =
    match cur_tok st with
    | Lexer.KW_OR ->
        let p = cur_pos st in
        advance st;
        let rhs = parse_and st in
        loop { e = Ebin (Or, lhs, rhs); epos = p }
    | _ -> lhs
  in
  loop (parse_and st)

and parse_and st =
  let rec loop lhs =
    match cur_tok st with
    | Lexer.KW_AND ->
        let p = cur_pos st in
        advance st;
        let rhs = parse_cmp st in
        loop { e = Ebin (And, lhs, rhs); epos = p }
    | Lexer.KW_XOR ->
        let p = cur_pos st in
        advance st;
        let rhs = parse_cmp st in
        loop { e = Ebin (Xor, lhs, rhs); epos = p }
    | _ -> lhs
  in
  loop (parse_cmp st)

and parse_cmp st =
  let lhs = parse_shift st in
  let mk op =
    let p = cur_pos st in
    advance st;
    let rhs = parse_shift st in
    { e = Ebin (op, lhs, rhs); epos = p }
  in
  match cur_tok st with
  | Lexer.EQ -> mk Eq
  | Lexer.NE -> mk Ne
  | Lexer.LT -> mk Lt
  | Lexer.LE -> mk Le
  | Lexer.GT -> mk Gt
  | Lexer.GE -> mk Ge
  | _ -> lhs

and parse_shift st =
  let rec loop lhs =
    let mk op =
      let p = cur_pos st in
      advance st;
      let rhs = parse_add st in
      loop { e = Ebin (op, lhs, rhs); epos = p }
    in
    match cur_tok st with
    | Lexer.SHL -> mk Shl
    | Lexer.SHR -> mk Shr
    | _ -> lhs
  in
  loop (parse_add st)

and parse_add st =
  let rec loop lhs =
    let mk op =
      let p = cur_pos st in
      advance st;
      let rhs = parse_mul st in
      loop { e = Ebin (op, lhs, rhs); epos = p }
    in
    match cur_tok st with
    | Lexer.PLUS -> mk Add
    | Lexer.MINUS -> mk Sub
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    let mk op =
      let p = cur_pos st in
      advance st;
      let rhs = parse_unary st in
      loop { e = Ebin (op, lhs, rhs); epos = p }
    in
    match cur_tok st with
    | Lexer.STAR -> mk Mul
    | Lexer.SLASH -> mk Div
    | Lexer.KW_MOD -> mk Mod
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match cur_tok st with
  | Lexer.MINUS ->
      let p = cur_pos st in
      advance st;
      let operand = parse_unary st in
      { e = Eun (Neg, operand); epos = p }
  | Lexer.KW_NOT ->
      let p = cur_pos st in
      advance st;
      let operand = parse_unary st in
      { e = Eun (Not, operand); epos = p }
  | _ -> parse_atom st

and parse_atom st =
  let p = cur_pos st in
  match cur_tok st with
  | Lexer.INT n ->
      advance st;
      { e = Eint n; epos = p }
  | Lexer.REAL x ->
      advance st;
      { e = Ereal x; epos = p }
  | Lexer.KW_TRUE ->
      advance st;
      { e = Ebool true; epos = p }
  | Lexer.KW_FALSE ->
      advance st;
      { e = Ebool false; epos = p }
  | Lexer.IDENT name ->
      advance st;
      { e = Evar name; epos = p }
  | Lexer.LPAREN ->
      advance st;
      let inner = parse_expr_prec st in
      expect st Lexer.RPAREN;
      inner
  | t ->
      error p
        (Printf.sprintf "expected an expression but found '%s'"
           (Lexer.token_to_string t))

(* ---- statements ---- *)

let rec parse_stmts st ~stop =
  let rec loop acc =
    if List.mem (cur_tok st) stop then List.rev acc
    else begin
      let stmt = parse_stmt st in
      expect st Lexer.SEMI;
      loop (stmt :: acc)
    end
  in
  loop []

and parse_stmt st =
  let p = cur_pos st in
  match cur_tok st with
  | Lexer.IDENT name ->
      advance st;
      expect st Lexer.ASSIGN;
      let rhs = parse_expr_prec st in
      { s = Sassign (name, rhs); spos = p }
  | Lexer.KW_IF ->
      advance st;
      let cond = parse_expr_prec st in
      expect st Lexer.KW_THEN;
      let then_ = parse_stmts st ~stop:[ Lexer.KW_ELSE; Lexer.KW_END ] in
      let else_ =
        if cur_tok st = Lexer.KW_ELSE then begin
          advance st;
          parse_stmts st ~stop:[ Lexer.KW_END ]
        end
        else []
      in
      expect st Lexer.KW_END;
      { s = Sif (cond, then_, else_); spos = p }
  | Lexer.KW_WHILE ->
      advance st;
      let cond = parse_expr_prec st in
      expect st Lexer.KW_DO;
      let body = parse_stmts st ~stop:[ Lexer.KW_END ] in
      expect st Lexer.KW_END;
      { s = Swhile (cond, body); spos = p }
  | Lexer.KW_REPEAT ->
      advance st;
      let body = parse_stmts st ~stop:[ Lexer.KW_UNTIL ] in
      expect st Lexer.KW_UNTIL;
      let cond = parse_expr_prec st in
      { s = Srepeat (body, cond); spos = p }
  | Lexer.KW_FOR ->
      advance st;
      let name = expect_ident st in
      expect st Lexer.ASSIGN;
      let from_ = parse_expr_prec st in
      expect st Lexer.KW_TO;
      let to_ = parse_expr_prec st in
      expect st Lexer.KW_DO;
      let body = parse_stmts st ~stop:[ Lexer.KW_END ] in
      expect st Lexer.KW_END;
      { s = Sfor (name, from_, to_, body); spos = p }
  | Lexer.KW_CALL ->
      advance st;
      let name = expect_ident st in
      expect st Lexer.LPAREN;
      let args =
        if cur_tok st = Lexer.RPAREN then []
        else begin
          let rec loop acc =
            let e = parse_expr_prec st in
            if cur_tok st = Lexer.COMMA then begin
              advance st;
              loop (e :: acc)
            end
            else List.rev (e :: acc)
          in
          loop []
        end
      in
      expect st Lexer.RPAREN;
      { s = Scall (name, args); spos = p }
  | t ->
      error p
        (Printf.sprintf "expected a statement but found '%s'"
           (Lexer.token_to_string t))

(* ---- declarations ---- *)

let parse_names st =
  let rec loop acc =
    let name = expect_ident st in
    if cur_tok st = Lexer.COMMA then begin
      advance st;
      loop (name :: acc)
    end
    else List.rev (name :: acc)
  in
  loop []

let parse_port_group st =
  let dir =
    match cur_tok st with
    | Lexer.KW_INPUT ->
        advance st;
        Input
    | Lexer.KW_OUTPUT ->
        advance st;
        Output
    | t ->
        error (cur_pos st)
          (Printf.sprintf "expected 'input' or 'output' but found '%s'"
             (Lexer.token_to_string t))
  in
  let names = parse_names st in
  expect st Lexer.COLON;
  let ty = parse_ty st in
  List.map (fun pname -> { pname; pdir = dir; pty = ty }) names

let parse_ports st =
  let rec loop acc =
    let group = parse_port_group st in
    let acc = acc @ group in
    if cur_tok st = Lexer.SEMI then begin
      advance st;
      loop acc
    end
    else acc
  in
  if cur_tok st = Lexer.RPAREN then [] else loop []

let parse_vars st =
  let rec loop acc =
    if cur_tok st = Lexer.KW_VAR then begin
      advance st;
      let names = parse_names st in
      expect st Lexer.COLON;
      let ty = parse_ty st in
      expect st Lexer.SEMI;
      loop (acc @ List.map (fun vname -> { vname; vty = ty }) names)
    end
    else acc
  in
  loop []

let parse_proc st =
  expect st Lexer.KW_PROC;
  let prname = expect_ident st in
  expect st Lexer.LPAREN;
  let prparams = parse_ports st in
  expect st Lexer.RPAREN;
  expect st Lexer.SEMI;
  let prvars = parse_vars st in
  expect st Lexer.KW_BEGIN;
  let prbody = parse_stmts st ~stop:[ Lexer.KW_END ] in
  expect st Lexer.KW_END;
  if cur_tok st = Lexer.SEMI then advance st;
  { prname; prparams; prvars; prbody }

let parse_program st =
  expect st Lexer.KW_MODULE;
  let mname = expect_ident st in
  expect st Lexer.LPAREN;
  let ports = parse_ports st in
  expect st Lexer.RPAREN;
  expect st Lexer.SEMI;
  let rec parse_procs acc =
    if cur_tok st = Lexer.KW_PROC then parse_procs (parse_proc st :: acc)
    else List.rev acc
  in
  let procs = parse_procs [] in
  let vars = parse_vars st in
  expect st Lexer.KW_BEGIN;
  let body = parse_stmts st ~stop:[ Lexer.KW_END ] in
  expect st Lexer.KW_END;
  (* trailing semicolon or EOF both fine *)
  if cur_tok st = Lexer.SEMI then advance st;
  (match cur_tok st with
  | Lexer.EOF -> ()
  | t ->
      error (cur_pos st)
        (Printf.sprintf "trailing input after module: '%s'" (Lexer.token_to_string t)));
  { mname; ports; procs; vars; body }

let make_state src = { toks = Array.of_list (Lexer.tokenize src); i = 0 }

let parse src = parse_program (make_state src)

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_prec st in
  (match cur_tok st with
  | Lexer.EOF -> ()
  | t ->
      error (cur_pos st)
        (Printf.sprintf "trailing input after expression: '%s'"
           (Lexer.token_to_string t)));
  e
