open Ast

(* Precedence levels matching the parser, used to parenthesize minimally. *)
let prec_of = function
  | Or -> 1
  | And | Xor -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Shl | Shr -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let unary_prec = 7

(* Comparisons are non-associative in the grammar: a chained comparison on
   the left must be parenthesized. Everything else is left-associative. *)
let rec expr_prec buf e ctx_prec =
  match e.e with
  | Eint n ->
      if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
      else Buffer.add_string buf (string_of_int n)
  | Ereal x ->
      let s = Printf.sprintf "%.12g" x in
      let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
      Buffer.add_string buf s
  | Ebool true -> Buffer.add_string buf "true"
  | Ebool false -> Buffer.add_string buf "false"
  | Evar name -> Buffer.add_string buf name
  | Eun (op, operand) ->
      let need_paren = ctx_prec > unary_prec in
      if need_paren then Buffer.add_char buf '(';
      Buffer.add_string buf (unop_to_string op);
      (match op with Not -> Buffer.add_char buf ' ' | Neg -> ());
      expr_prec buf operand unary_prec;
      if need_paren then Buffer.add_char buf ')'
  | Ebin (op, a, b) ->
      let p = prec_of op in
      let need_paren = ctx_prec > p || (is_comparison op && ctx_prec = p) in
      if need_paren then Buffer.add_char buf '(';
      expr_prec buf a p;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_to_string op);
      Buffer.add_char buf ' ';
      expr_prec buf b (p + 1);
      if need_paren then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_prec buf e 0;
  Buffer.contents buf

let rec stmt_lines ~indent (st : stmt) : string list =
  let pad = String.make indent ' ' in
  match st.s with
  | Sassign (name, rhs) -> [ Printf.sprintf "%s%s := %s;" pad name (expr_to_string rhs) ]
  | Sif (cond, then_, []) ->
      (Printf.sprintf "%sif %s then" pad (expr_to_string cond))
      :: stmts_lines ~indent:(indent + 2) then_
      @ [ pad ^ "end;" ]
  | Sif (cond, then_, else_) ->
      (Printf.sprintf "%sif %s then" pad (expr_to_string cond))
      :: stmts_lines ~indent:(indent + 2) then_
      @ [ pad ^ "else" ]
      @ stmts_lines ~indent:(indent + 2) else_
      @ [ pad ^ "end;" ]
  | Swhile (cond, body) ->
      (Printf.sprintf "%swhile %s do" pad (expr_to_string cond))
      :: stmts_lines ~indent:(indent + 2) body
      @ [ pad ^ "end;" ]
  | Srepeat (body, cond) ->
      (pad ^ "repeat")
      :: stmts_lines ~indent:(indent + 2) body
      @ [ Printf.sprintf "%suntil %s;" pad (expr_to_string cond) ]
  | Sfor (name, from_, to_, body) ->
      (Printf.sprintf "%sfor %s := %s to %s do" pad name (expr_to_string from_)
         (expr_to_string to_))
      :: stmts_lines ~indent:(indent + 2) body
      @ [ pad ^ "end;" ]
  | Scall (name, args) ->
      [
        Printf.sprintf "%scall %s(%s);" pad name
          (String.concat ", " (List.map expr_to_string args));
      ]

and stmts_lines ~indent stmts = List.concat_map (stmt_lines ~indent) stmts

let stmt_to_string ?(indent = 0) st = String.concat "\n" (stmt_lines ~indent st)

let program_to_string (p : program) =
  let buf = Buffer.create 512 in
  let port_str (port : port) =
    Printf.sprintf "%s %s: %s"
      (match port.pdir with Input -> "input" | Output -> "output")
      port.pname (ty_to_string port.pty)
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" p.mname
       (String.concat "; " (List.map port_str p.ports)));
  List.iter
    (fun (pr : proc_def) ->
      Buffer.add_string buf
        (Printf.sprintf "proc %s(%s);\n" pr.prname
           (String.concat "; " (List.map port_str pr.prparams)));
      List.iter
        (fun (d : decl) ->
          Buffer.add_string buf
            (Printf.sprintf "var %s: %s;\n" d.vname (ty_to_string d.vty)))
        pr.prvars;
      Buffer.add_string buf "begin\n";
      List.iter
        (fun line -> Buffer.add_string buf (line ^ "\n"))
        (stmts_lines ~indent:2 pr.prbody);
      Buffer.add_string buf "end;\n")
    p.procs;
  List.iter
    (fun (d : decl) ->
      Buffer.add_string buf (Printf.sprintf "var %s: %s;\n" d.vname (ty_to_string d.vty)))
    p.vars;
  Buffer.add_string buf "begin\n";
  List.iter
    (fun line -> Buffer.add_string buf (line ^ "\n"))
    (stmts_lines ~indent:2 p.body);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)
