(** Abstract syntax of the behavioral specification language (BSL).

    BSL is the Pascal/ISPS-flavored procedural input language described in
    section 2 of the tutorial: assignments over integer and fixed-point
    scalars, structured into sequences, conditionals and loops. A program
    ("module") describes the required mapping from input ports to output
    ports; it constrains internal structure as little as possible. *)

(** Source position, for diagnostics. *)
type pos = { line : int; col : int }

val dummy_pos : pos

(** Scalar types.

    - [Tbool] — a single condition bit.
    - [Tint w] — signed two's-complement integer of [w] bits.
    - [Tfix (i, f)] — signed fixed-point with [i] integer bits and [f]
      fraction bits. *)
type ty = Tbool | Tint of int | Tfix of int * int

val equal_ty : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | And | Or | Xor
  | Eq | Ne | Lt | Le | Gt | Ge

val binop_to_string : binop -> string
val is_comparison : binop -> bool

type unop = Neg | Not

val unop_to_string : unop -> string

type expr = { e : expr_node; epos : pos }

and expr_node =
  | Eint of int
  | Ereal of float
  | Ebool of bool
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Sassign of string * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Srepeat of stmt list * expr  (** body, until-condition *)
  | Sfor of string * expr * expr * stmt list  (** var, from, to (inclusive), body *)
  | Scall of string * expr list
      (** procedure call; removed by {!Inline.expand} before type
          checking. Arguments bound to [output] parameters must be bare
          variable references. *)

type port_dir = Input | Output

type port = { pname : string; pdir : port_dir; pty : ty }

type decl = { vname : string; vty : ty }

(** A procedure: parameters use the same [input]/[output] structure as
    module ports; the body may declare locals. Procedures are expanded
    inline at every call site (the paper's "inline expansion of
    procedures") — they never survive into the CDFG. *)
type proc_def = {
  prname : string;
  prparams : port list;
  prvars : decl list;
  prbody : stmt list;
}

type program = {
  mname : string;  (** module name *)
  ports : port list;
  procs : proc_def list;
  vars : decl list;
  body : stmt list;
}

(** Errors raised by the frontend (lexer, parser, type checker). *)
exception Frontend_error of pos * string

val error : pos -> string -> 'a
(** Raise {!Frontend_error}. *)
