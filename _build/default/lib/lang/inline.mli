(** Inline expansion of procedures — one of the paper's named high-level
    transformations ("inline expansion of procedures and loop
    unrolling").

    Every [call p(a1, …, an)] is replaced by the procedure's body with:
    - each {e input} parameter bound through a fresh local variable
      initialized to the actual argument expression (so argument
      expressions evaluate exactly once, before the body);
    - each {e output} parameter renamed to the actual argument, which
      must be a bare variable (or output port) reference;
    - each local variable of the procedure renamed freshly per call
      site, so distinct expansions never interfere.

    Procedures may call previously-defined procedures; direct or mutual
    recursion is rejected (hardware has no stack). The result is a
    procedure-free program ready for type checking. *)

val expand : Ast.program -> Ast.program
(** Raises {!Ast.Frontend_error} on: calls to unknown procedures, arity
    mismatches, a non-variable actual for an output parameter, or
    recursion. Programs without procedures are returned unchanged. *)
