(** Combinators for constructing BSL programs programmatically, used by the
    example applications and by tests that need precise control over the
    input graph (e.g. the elliptic-wave-filter benchmark). *)

open Ast

(** {1 Expressions} *)

val v : string -> expr
(** Variable reference. *)

val int : int -> expr
val real : float -> expr
val bool : bool -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( mod ) : expr -> expr -> expr
val ( lsl ) : expr -> expr -> expr
val ( lsr ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val xor : expr -> expr -> expr
val neg : expr -> expr
val not_ : expr -> expr

(** {1 Statements} *)

val ( <-- ) : string -> expr -> stmt
(** Assignment. *)

val if_ : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val repeat : stmt list -> until:expr -> stmt
val for_ : string -> from:expr -> to_:expr -> stmt list -> stmt

(** {1 Declarations} *)

val in_ : string -> ty -> port
val out : string -> ty -> port
val local : string -> ty -> decl

val call : string -> expr list -> stmt
(** Procedure call statement. *)

val proc : string -> params:port list -> vars:decl list -> stmt list -> proc_def

val program :
  ?procs:proc_def list -> string -> ports:port list -> vars:decl list -> stmt list -> program
