type texpr = { te : texpr_node; ty : Ast.ty }

and texpr_node =
  | TEint of int
  | TEreal of float
  | TEbool of bool
  | TEvar of string
  | TEbin of Ast.binop * texpr * texpr
  | TEun of Ast.unop * texpr

type tstmt =
  | TSassign of string * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSrepeat of tstmt list * texpr
  | TSfor of string * texpr * texpr * tstmt list

type tprogram = {
  tname : string;
  tports : Ast.port list;
  tvars : Ast.decl list;
  tbody : tstmt list;
}

let all_vars p =
  List.map (fun (port : Ast.port) -> (port.pname, port.pty)) p.tports
  @ List.map (fun (d : Ast.decl) -> (d.vname, d.vty)) p.tvars

let var_ty p name = List.assoc name (all_vars p)
