open Ast

(* fresh-name generation for one expansion run *)
type namer = { mutable counter : int }

let fresh namer base =
  namer.counter <- namer.counter + 1;
  Printf.sprintf "__%s_%d" base namer.counter

let rec rename_expr subst (e : expr) : expr =
  let node =
    match e.e with
    | Evar v -> (
        match List.assoc_opt v subst with Some v' -> Evar v' | None -> Evar v)
    | Ebin (op, a, b) -> Ebin (op, rename_expr subst a, rename_expr subst b)
    | Eun (op, a) -> Eun (op, rename_expr subst a)
    | (Eint _ | Ereal _ | Ebool _) as n -> n
  in
  { e with e = node }

let rename_var subst v = match List.assoc_opt v subst with Some v' -> v' | None -> v

let rec rename_stmt subst (st : stmt) : stmt =
  let node =
    match st.s with
    | Sassign (v, rhs) -> Sassign (rename_var subst v, rename_expr subst rhs)
    | Sif (c, a, b) ->
        Sif (rename_expr subst c, List.map (rename_stmt subst) a, List.map (rename_stmt subst) b)
    | Swhile (c, body) -> Swhile (rename_expr subst c, List.map (rename_stmt subst) body)
    | Srepeat (body, c) -> Srepeat (List.map (rename_stmt subst) body, rename_expr subst c)
    | Sfor (v, f, t, body) ->
        Sfor
          ( rename_var subst v,
            rename_expr subst f,
            rename_expr subst t,
            List.map (rename_stmt subst) body )
    | Scall (name, args) -> Scall (name, List.map (rename_expr subst) args)
  in
  { st with s = node }

(* Expand one call site. Returns the replacement statements and the fresh
   local declarations they need. *)
let expand_call namer procs ~depth pos name args expand_stmts =
  let proc =
    match List.find_opt (fun (pr : proc_def) -> pr.prname = name) procs with
    | Some pr -> pr
    | None -> error pos (Printf.sprintf "call to unknown procedure %s" name)
  in
  if depth > List.length procs then
    error pos (Printf.sprintf "recursive expansion of procedure %s" name);
  if List.length args <> List.length proc.prparams then
    error pos
      (Printf.sprintf "procedure %s expects %d arguments, got %d" name
         (List.length proc.prparams) (List.length args));
  (* build the substitution and the binding prelude *)
  let decls = ref [] in
  let prelude = ref [] in
  let subst =
    List.map2
      (fun (param : port) (arg : expr) ->
        match param.pdir with
        | Input ->
            let v = fresh namer (name ^ "_" ^ param.pname) in
            decls := { vname = v; vty = param.pty } :: !decls;
            prelude := { s = Sassign (v, arg); spos = pos } :: !prelude;
            (param.pname, v)
        | Output -> (
            match arg.e with
            | Evar v -> (param.pname, v)
            | _ ->
                error arg.epos
                  (Printf.sprintf
                     "argument for output parameter %s of %s must be a variable"
                     param.pname name)))
      proc.prparams args
  in
  let subst =
    subst
    @ List.map
        (fun (d : decl) ->
          let v = fresh namer (name ^ "_" ^ d.vname) in
          decls := { vname = v; vty = d.vty } :: !decls;
          (d.vname, v))
        proc.prvars
  in
  let body = List.map (rename_stmt subst) proc.prbody in
  (* the body may itself contain calls (to other procedures) *)
  let body, inner_decls = expand_stmts ~depth:(depth + 1) body in
  (List.rev !prelude @ body, List.rev !decls @ inner_decls)

let expand (p : program) : program =
  begin
    let namer = { counter = 0 } in
    let rec expand_stmts ~depth stmts =
      List.fold_left
        (fun (acc_stmts, acc_decls) st ->
          let replaced, decls = expand_stmt ~depth st in
          (acc_stmts @ replaced, acc_decls @ decls))
        ([], []) stmts
    and expand_stmt ~depth (st : stmt) =
      match st.s with
      | Scall (name, args) ->
          expand_call namer p.procs ~depth st.spos name args expand_stmts
      | Sassign _ -> ([ st ], [])
      | Sif (c, a, b) ->
          let a', da = expand_stmts ~depth a in
          let b', db = expand_stmts ~depth b in
          ([ { st with s = Sif (c, a', b') } ], da @ db)
      | Swhile (c, body) ->
          let body', d = expand_stmts ~depth body in
          ([ { st with s = Swhile (c, body') } ], d)
      | Srepeat (body, c) ->
          let body', d = expand_stmts ~depth body in
          ([ { st with s = Srepeat (body', c) } ], d)
      | Sfor (v, f, t, body) ->
          let body', d = expand_stmts ~depth body in
          ([ { st with s = Sfor (v, f, t, body') } ], d)
    in
    let body, decls = expand_stmts ~depth:0 p.body in
    { p with procs = []; vars = p.vars @ decls; body }
  end
