(** Recursive-descent parser for the behavioral specification language.

    Concrete grammar (informally):
    {v
    program  ::= "module" IDENT "(" ports ")" ";" vars "begin" stmts "end"
    ports    ::= port (";" port)*        port ::= ("input"|"output") names ":" ty
    vars     ::= ("var" names ":" ty ";")*
    ty       ::= "bool" | "int" "<" INT ">" | "fix" "<" INT "," INT ">"
    stmts    ::= (stmt ";")*
    stmt     ::= IDENT ":=" expr
               | "if" expr "then" stmts ["else" stmts] "end"
               | "while" expr "do" stmts "end"
               | "repeat" stmts "until" expr
               | "for" IDENT ":=" expr "to" expr "do" stmts "end"
    expr     ::= or-expr with usual precedence:
                 or < and/xor < comparison < shift < add < mul < unary
    v} *)

val parse : string -> Ast.program
(** Parse a full module. Raises {!Ast.Frontend_error} on syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used in tests). *)
