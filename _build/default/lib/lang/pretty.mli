(** Pretty-printer: AST back to concrete BSL syntax.

    [parse (program_to_string p)] is structurally equal to [p] (up to
    source positions), a property exercised by the round-trip tests. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val program_to_string : Ast.program -> string
val pp_program : Format.formatter -> Ast.program -> unit
