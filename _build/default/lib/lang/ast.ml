type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

type ty = Tbool | Tint of int | Tfix of int * int

let equal_ty a b =
  match (a, b) with
  | Tbool, Tbool -> true
  | Tint w1, Tint w2 -> w1 = w2
  | Tfix (i1, f1), Tfix (i2, f2) -> i1 = i2 && f1 = f2
  | (Tbool | Tint _ | Tfix _), _ -> false

let ty_to_string = function
  | Tbool -> "bool"
  | Tint w -> Printf.sprintf "int<%d>" w
  | Tfix (i, f) -> Printf.sprintf "fix<%d,%d>" i f

let pp_ty ppf t = Format.pp_print_string ppf (ty_to_string t)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | And | Or | Xor
  | Eq | Ne | Lt | Le | Gt | Ge

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Shl -> "<<"
  | Shr -> ">>"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let is_comparison = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | Div | Mod | Shl | Shr | And | Or | Xor -> false

type unop = Neg | Not

let unop_to_string = function Neg -> "-" | Not -> "not"

type expr = { e : expr_node; epos : pos }

and expr_node =
  | Eint of int
  | Ereal of float
  | Ebool of bool
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Sassign of string * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Srepeat of stmt list * expr
  | Sfor of string * expr * expr * stmt list
  | Scall of string * expr list

type port_dir = Input | Output

type port = { pname : string; pdir : port_dir; pty : ty }

type decl = { vname : string; vty : ty }

type proc_def = {
  prname : string;
  prparams : port list;
  prvars : decl list;
  prbody : stmt list;
}

type program = {
  mname : string;
  ports : port list;
  procs : proc_def list;
  vars : decl list;
  body : stmt list;
}

exception Frontend_error of pos * string

let error pos msg = raise (Frontend_error (pos, msg))
