(** Structural emission of the synthesized design.

    [verilog] renders a synthesizable-flavored single-module Verilog
    description: state register, next-state case statement, register
    loads gated by state, and one assignment per functional-unit output.
    [dot] renders the datapath as a graph (registers, units, steering). *)

val verilog : name:string -> Datapath.t -> string
val dot : ?name:string -> Datapath.t -> string
