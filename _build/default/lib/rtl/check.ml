let run (dp : Datapath.t) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let reg_exists name = List.exists (fun (r : Datapath.reg_def) -> r.Datapath.rname = name) dp.Datapath.regs in
  let check_wire ctx w =
    List.iter
      (fun r -> if not (reg_exists r) then err "%s reads missing register %s" ctx r)
      (Wire.regs_read w)
  in
  (* activations *)
  let seen_fu_state = Hashtbl.create 32 in
  List.iter
    (fun (a : Datapath.activity) ->
      let key = (a.Datapath.a_fu, a.Datapath.a_state) in
      if Hashtbl.mem seen_fu_state key then
        err "functional unit %d double-booked in state %d" a.Datapath.a_fu a.Datapath.a_state
      else Hashtbl.add seen_fu_state key ();
      (match List.find_opt (fun (f : Datapath.fu_def) -> f.Datapath.fuid = a.Datapath.a_fu) dp.Datapath.fus with
      | None -> err "activation references missing unit %d" a.Datapath.a_fu
      | Some f ->
          if not (f.Datapath.comp.Component.executes a.Datapath.a_op) then
            err "unit %d (%s) cannot execute %s" f.Datapath.fuid
              f.Datapath.comp.Component.cname
              (Hls_cdfg.Op.to_string a.Datapath.a_op));
      List.iter (check_wire (Printf.sprintf "fu%d input" a.Datapath.a_fu)) a.Datapath.a_args;
      (* FU inputs must not depend on same-state FU outputs *)
      List.iter
        (fun w ->
          if Wire.fus_read w <> [] then
            err "unit %d input chains another unit's output in state %d (unsupported chaining)"
              a.Datapath.a_fu a.Datapath.a_state)
        a.Datapath.a_args)
    dp.Datapath.activities;
  (* loads *)
  let seen_reg_state = Hashtbl.create 32 in
  List.iter
    (fun (l : Datapath.load) ->
      let key = (l.Datapath.l_reg, l.Datapath.l_state) in
      if Hashtbl.mem seen_reg_state key then
        err "register %s double-driven in state %d" l.Datapath.l_reg l.Datapath.l_state
      else Hashtbl.add seen_reg_state key ();
      if not (reg_exists l.Datapath.l_reg) then err "load into missing register %s" l.Datapath.l_reg;
      check_wire (Printf.sprintf "load of %s" l.Datapath.l_reg) l.Datapath.l_wire;
      (* any FU outputs consumed must be active in this state *)
      List.iter
        (fun u ->
          let active =
            List.exists
              (fun (a : Datapath.activity) ->
                a.Datapath.a_fu = u && a.Datapath.a_state = l.Datapath.l_state)
              dp.Datapath.activities
          in
          if not active then
            err "load of %s in state %d consumes idle unit %d" l.Datapath.l_reg
              l.Datapath.l_state u)
        (Wire.fus_read l.Datapath.l_wire))
    dp.Datapath.loads;
  (* branch conditions *)
  List.iter
    (fun (tr : Hls_ctrl.Fsm.transition) ->
      match tr.Hls_ctrl.Fsm.t_guard with
      | Hls_ctrl.Fsm.G_cond _ ->
          if Datapath.cond_wire dp tr.Hls_ctrl.Fsm.t_from = None then
            err "state %d branches without a condition wire" tr.Hls_ctrl.Fsm.t_from
      | Hls_ctrl.Fsm.G_always -> ())
    (Hls_ctrl.Fsm.transitions dp.Datapath.fsm);
  List.iter
    (fun (state, w) ->
      check_wire (Printf.sprintf "condition of state %d" state) w;
      List.iter
        (fun u ->
          let active =
            List.exists
              (fun (a : Datapath.activity) -> a.Datapath.a_fu = u && a.Datapath.a_state = state)
              dp.Datapath.activities
          in
          if not active then err "condition of state %d consumes idle unit %d" state u)
        (Wire.fus_read w))
    dp.Datapath.conds;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
