lib/rtl/check.mli: Datapath
