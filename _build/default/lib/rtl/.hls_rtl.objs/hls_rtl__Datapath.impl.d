lib/rtl/datapath.ml: Cfg Component Dfg Fu_alloc Hashtbl Hls_alloc Hls_cdfg Hls_ctrl Hls_lang Hls_sched Hls_util Lifetime List Op Printf Reg_alloc Wire
