lib/rtl/wire.ml: Ast Component Fixedpt Hls_lang Hls_util List Printf
