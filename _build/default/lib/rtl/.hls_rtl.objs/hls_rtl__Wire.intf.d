lib/rtl/wire.mli: Ast Hls_lang
