lib/rtl/emit.ml: Buffer Component Datapath Hashtbl Hls_cdfg Hls_ctrl Hls_util List Op Printf Wire
