lib/rtl/component.ml: Hls_cdfg List Op
