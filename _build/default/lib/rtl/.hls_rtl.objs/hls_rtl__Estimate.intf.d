lib/rtl/estimate.mli: Datapath Format Hls_ctrl Hls_sched
