lib/rtl/estimate.ml: Component Datapath Format Hashtbl Hls_ctrl Hls_sched List Printf String Wire
