lib/rtl/check.ml: Component Datapath Hashtbl Hls_cdfg Hls_ctrl List Printf Wire
