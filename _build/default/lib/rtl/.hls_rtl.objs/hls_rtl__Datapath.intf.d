lib/rtl/datapath.mli: Component Hls_alloc Hls_cdfg Hls_ctrl Hls_lang Hls_sched Op Wire
