lib/rtl/component.mli: Hls_cdfg Op
