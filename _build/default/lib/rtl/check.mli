(** Structural sanity checks on a built datapath (netlist lint).

    Verified properties:
    - every register referenced by a wire exists;
    - at most one activation per functional unit per state, and the
      unit's bound component can execute the activation's operation;
    - at most one load per register per state (single driver);
    - every functional-unit output consumed by a wire in a state comes
      from a unit actually active in that state;
    - every state of the FSM that branches has a condition wire. *)

val run : Datapath.t -> (unit, string list) result
