open Hls_util
open Hls_lang

type t =
  | W_reg of string
  | W_const of int * Ast.ty
  | W_fu_out of int * Ast.ty
  | W_shl of t * int * Ast.ty
  | W_shr of t * int * Ast.ty
  | W_zdetect of t
  | W_mux of t * t * t * Ast.ty
  | W_not of t * Ast.ty

let ty w reg_ty =
  match w with
  | W_reg r -> reg_ty r
  | W_const (_, t) | W_fu_out (_, t) | W_shl (_, _, t) | W_shr (_, _, t)
  | W_mux (_, _, _, t) | W_not (_, t) ->
      t
  | W_zdetect _ -> Ast.Tbool

let fmt_of_ty (ty : Ast.ty) =
  match ty with
  | Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

let rec eval w ~reg ~fu =
  match w with
  | W_reg r -> reg r
  | W_const (v, _) -> v
  | W_fu_out (u, _) -> fu u
  | W_shl (a, k, t) -> Fixedpt.shift_left (fmt_of_ty t) (eval a ~reg ~fu) k
  | W_shr (a, k, t) -> Fixedpt.shift_right (fmt_of_ty t) (eval a ~reg ~fu) k
  | W_zdetect a -> if eval a ~reg ~fu = 0 then 1 else 0
  | W_mux (c, a, b, _) -> if eval c ~reg ~fu <> 0 then eval a ~reg ~fu else eval b ~reg ~fu
  | W_not (a, t) -> (
      match t with
      | Ast.Tbool -> if eval a ~reg ~fu <> 0 then 0 else 1
      | _ -> Fixedpt.wrap (fmt_of_ty t) (lnot (eval a ~reg ~fu)))

let rec depth_delay_ns = function
  | W_reg _ | W_const _ | W_fu_out _ -> 0.0
  | W_shl (a, _, _) | W_shr (a, _, _) ->
      (* constant shifts are wiring: no gate delay *)
      depth_delay_ns a
  | W_zdetect a -> Component.free_op_delay_ns +. depth_delay_ns a
  | W_not (a, _) -> Component.free_op_delay_ns +. depth_delay_ns a
  | W_mux (c, a, b, _) ->
      Component.mux_delay_ns
      +. List.fold_left max 0.0 [ depth_delay_ns c; depth_delay_ns a; depth_delay_ns b ]

let rec to_string = function
  | W_reg r -> r
  | W_const (v, _) -> string_of_int v
  | W_fu_out (u, _) -> Printf.sprintf "fu%d" u
  | W_shl (a, k, _) -> Printf.sprintf "(%s << %d)" (to_string a) k
  | W_shr (a, k, _) -> Printf.sprintf "(%s >> %d)" (to_string a) k
  | W_zdetect a -> Printf.sprintf "(%s == 0)" (to_string a)
  | W_mux (c, a, b, _) ->
      Printf.sprintf "(%s ? %s : %s)" (to_string c) (to_string a) (to_string b)
  | W_not (a, _) -> Printf.sprintf "(~%s)" (to_string a)

let rec regs_read_acc w acc =
  match w with
  | W_reg r -> r :: acc
  | W_const _ | W_fu_out _ -> acc
  | W_shl (a, _, _) | W_shr (a, _, _) | W_zdetect a | W_not (a, _) -> regs_read_acc a acc
  | W_mux (c, a, b, _) -> regs_read_acc c (regs_read_acc a (regs_read_acc b acc))

let regs_read w = List.sort_uniq compare (regs_read_acc w [])

let rec fus_read_acc w acc =
  match w with
  | W_fu_out (u, _) -> u :: acc
  | W_reg _ | W_const _ -> acc
  | W_shl (a, _, _) | W_shr (a, _, _) | W_zdetect a | W_not (a, _) -> fus_read_acc a acc
  | W_mux (c, a, b, _) -> fus_read_acc c (fus_read_acc a (fus_read_acc b acc))

let fus_read w = List.sort_uniq compare (fus_read_acc w [])
