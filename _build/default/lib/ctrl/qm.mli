(** Quine–McCluskey two-level minimization (the "optimization of the
    combinational logic" step of hardwired-control synthesis).

    Exact prime-implicant generation followed by essential-prime
    selection and a greedy cover of the remainder. Exponential in the
    input count — controller logic with ≲16 inputs, which is what
    schedule FSMs produce, is comfortable. *)

val minimize :
  n_inputs:int -> on_set:int list -> ?dc_set:int list -> unit -> Logic.sop
(** Minimal (or near-minimal) sum of products covering every [on_set]
    assignment, possibly using [dc_set] don't-cares, and covering no
    assignment outside their union. Raises [Invalid_argument] when
    [n_inputs] exceeds 20 or the sets overlap. *)
