type style = Binary | Gray | One_hot

let style_to_string = function
  | Binary -> "binary"
  | Gray -> "gray"
  | One_hot -> "one-hot"

let bits_for n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  if n <= 1 then 1 else go 1

let width style ~n_states =
  match style with
  | Binary | Gray -> bits_for n_states
  | One_hot -> max 1 n_states

let encode style ~n_states =
  match style with
  | Binary -> Array.init n_states (fun i -> i)
  | Gray -> Array.init n_states (fun i -> i lxor (i lsr 1))
  | One_hot -> Array.init n_states (fun i -> 1 lsl i)
