(** State-encoding styles for hardwired control ("the FSM can be
    synthesized using known methods, including state encoding and
    optimization of the combinational logic").

    - [Binary] — ⌈log₂ n⌉ flip-flops, densest;
    - [Gray] — same width, adjacent states differ in one bit (cheap
      next-state logic for sequential chains, which schedules mostly
      are);
    - [One_hot] — n flip-flops, one per state, trivial decode. *)

type style = Binary | Gray | One_hot

val style_to_string : style -> string

val width : style -> n_states:int -> int
(** Number of state flip-flops. *)

val encode : style -> n_states:int -> int array
(** Code of each state id. Codes are distinct and fit in [width] bits. *)
