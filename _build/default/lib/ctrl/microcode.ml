type field = { fname : string; fwidth : int }

type t = { fields : field list; words : int list array }

let bits_for n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  if n <= 1 then 0 else go 1

let make ~fields ~words =
  Array.iteri
    (fun state vals ->
      if List.length vals <> List.length fields then
        invalid_arg (Printf.sprintf "Microcode.make: state %d arity mismatch" state);
      List.iter2
        (fun f v ->
          if v < 0 || v >= 1 lsl f.fwidth then
            invalid_arg
              (Printf.sprintf "Microcode.make: state %d field %s value %d out of range"
                 state f.fname v))
        fields vals)
    words;
  { fields; words }

let n_states t = Array.length t.words

let word_width t = List.fold_left (fun acc f -> acc + f.fwidth) 0 t.fields

let horizontal_bits t = n_states t * word_width t

let vertical_bits t =
  (* each field encoded to the distinct values it actually takes *)
  let nth_values i =
    Array.to_list t.words |> List.map (fun vals -> List.nth vals i) |> List.sort_uniq compare
  in
  let encoded_width =
    List.mapi (fun i _ -> bits_for (List.length (nth_values i))) t.fields
    |> List.fold_left ( + ) 0
  in
  n_states t * encoded_width

let unique_words t =
  Array.to_list t.words |> List.sort_uniq compare |> List.length

let dictionary_bits t =
  let u = unique_words t in
  let pointer = bits_for u in
  (n_states t * pointer) + (u * word_width t)

let pp ppf t =
  Format.fprintf ppf
    "microcode: %d states x %d bits; horizontal %d, vertical %d, dictionary %d bits (%d unique words)@."
    (n_states t) (word_width t) (horizontal_bits t) (vertical_bits t)
    (dictionary_bits t) (unique_words t)
