(** Two-level boolean logic: sums of products over an input vector.

    A cube is a pair [(mask, value)]: the product term asserting that
    every input bit selected by [mask] equals the corresponding bit of
    [value] (bits outside [mask] are don't-cares). A function is a list
    of cubes (OR of ANDs). Used for FSM next-state/output logic and its
    PLA / random-logic cost models. *)

type cube = { mask : int; value : int }

type sop = cube list

val cube_covers : cube -> int -> bool
(** Does the product term evaluate true on the input assignment? *)

val eval : sop -> int -> bool

val literals : n_inputs:int -> cube -> int
(** Number of literals in the product term. *)

val sop_literals : n_inputs:int -> sop -> int
(** Total literal count — the usual random-logic area proxy. *)

val cube_to_string : n_inputs:int -> cube -> string
(** E.g. ["x1·¬x3"]; ["1"] for the universal cube. *)

val sop_to_string : n_inputs:int -> sop -> string
