lib/ctrl/encoding.mli:
