lib/ctrl/logic.ml: List Printf String
