lib/ctrl/logic.mli:
