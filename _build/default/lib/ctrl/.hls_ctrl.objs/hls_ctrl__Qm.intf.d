lib/ctrl/qm.mli: Logic
