lib/ctrl/microcode.ml: Array Format List Printf
