lib/ctrl/fsm.mli: Cfg Dfg Format Hls_cdfg Hls_sched
