lib/ctrl/qm.ml: Array Hashtbl List Logic Set
