lib/ctrl/ctrl_synth.ml: Array Cfg Dfg Encoding Format Fsm Hashtbl Hls_cdfg List Logic Qm
