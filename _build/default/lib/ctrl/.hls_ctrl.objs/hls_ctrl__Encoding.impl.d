lib/ctrl/encoding.ml: Array
