lib/ctrl/ctrl_synth.mli: Cfg Dfg Encoding Format Fsm Hls_cdfg Logic
