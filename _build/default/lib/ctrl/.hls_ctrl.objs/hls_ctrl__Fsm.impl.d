lib/ctrl/fsm.ml: Cfg Dfg Format Hashtbl Hls_cdfg Hls_sched Hls_util List Printf String
