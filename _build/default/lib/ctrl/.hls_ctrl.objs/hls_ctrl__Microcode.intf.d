lib/ctrl/microcode.mli: Format
