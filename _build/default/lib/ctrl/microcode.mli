(** Microcoded control ("if microcoded control is chosen, a control step
    corresponds to a microprogram step and the microprogram can be
    optimized using encoding techniques for the microcontrol word").

    A control store holds one word per state. Costing styles:
    - {e horizontal}: raw word width × states;
    - {e vertical (field-encoded)}: each field shrinks to
      ⌈log₂ distinct-values⌉ bits plus a decoder;
    - {e dictionary}: unique words go to a small dictionary ROM,
      addressed by a narrow pointer per state. *)

type field = { fname : string; fwidth : int }

type t

val make : fields:field list -> words:int list array -> t
(** [words.(state)] lists the field values of the state's control word,
    in field order. Raises [Invalid_argument] on arity or range
    mismatch. *)

val n_states : t -> int
val horizontal_bits : t -> int
(** Total ROM bits, horizontal layout. *)

val vertical_bits : t -> int
(** Total ROM bits after per-field value encoding. *)

val dictionary_bits : t -> int
(** Pointer ROM + dictionary ROM bits. *)

val unique_words : t -> int

val pp : Format.formatter -> t -> unit
