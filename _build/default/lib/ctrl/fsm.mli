(** Finite-state machine extraction from a schedule: "if hardwired
    control is chosen, a control step corresponds to a state in the
    controlling finite state machine".

    Each (block, control step) pair becomes a state; a block's last step
    hands over according to its terminator — unconditionally, on a branch
    condition computed in that block, or to the dedicated DONE state,
    which self-loops until reset. *)

open Hls_cdfg

type state = {
  sid : int;
  block : Cfg.bid;  (** [-1] for the DONE state *)
  step : int;  (** 1-based within the block; 0 for DONE *)
}

type guard =
  | G_always
  | G_cond of bool * Dfg.nid
      (** taken when the condition value (in the source state's block)
          equals the polarity *)

type transition = { t_from : int; t_guard : guard; t_to : int }

type t

val of_schedule : Hls_sched.Cfg_sched.t -> t

val states : t -> state list
val n_states : t -> int
val transitions : t -> transition list
val entry : t -> int
val done_state : t -> int

val state_of : t -> Cfg.bid -> int -> int
(** State id of (block, step). Raises [Not_found] if absent. *)

val outgoing : t -> int -> transition list

val pp : Format.formatter -> t -> unit
val to_dot : ?name:string -> t -> string
