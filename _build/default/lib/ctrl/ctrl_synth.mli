(** Hardwired controller synthesis: state register + next-state logic.

    The FSM's inputs are the state register bits followed by one bit per
    distinct branch-condition signal; its outputs are the next-state
    bits. Logic is produced two ways:

    - {e direct}: one product term per transition (for one-hot encoding
      the state part is a single literal);
    - {e minimized}: exact minterm expansion + Quine–McCluskey, using
      unused state codes as don't-cares (only attempted while the input
      count stays tractable).

    The literal/PLA cost gap between the two is the benefit of
    combinational-logic optimization, one of the paper's control-styles
    comparisons. *)

open Hls_cdfg

type t

val synthesize : ?style:Encoding.style -> Fsm.t -> t
(** Default style is [Binary]. *)

val style : t -> Encoding.style
val n_state_bits : t -> int
val n_inputs : t -> int
(** State bits + condition bits. *)

val cond_signals : t -> (Cfg.bid * Dfg.nid) list
(** Condition inputs in bit order (bit index = state bits + position). *)

val state_code : t -> int -> int
(** Encoded value of a state id. *)

val next_logic : t -> Logic.sop array
(** Per next-state bit, the minimized (or direct, if minimization was
    intractable) sum of products. *)

val direct_logic : t -> Logic.sop array

val next_state : t -> state:int -> conds:((Cfg.bid * Dfg.nid) * bool) list -> int
(** Simulate one FSM step on state ids (used by the RTL simulator and by
    the logic-equivalence tests). Unknown conditions default to false. *)

val literal_cost : t -> int
(** Total literals of the minimized next-state logic. *)

val direct_literal_cost : t -> int

val pla_cost : t -> rows:int -> int
(** PLA area proxy for a given row count: rows × (2·inputs + outputs). *)

val pla_rows : t -> int
(** Distinct product terms across the minimized outputs. *)

val pp : Format.formatter -> t -> unit
