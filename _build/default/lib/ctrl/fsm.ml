open Hls_cdfg

type state = { sid : int; block : Cfg.bid; step : int }

type guard = G_always | G_cond of bool * Dfg.nid

type transition = { t_from : int; t_guard : guard; t_to : int }

type t = {
  state_list : state list;
  trans : transition list;
  entry_sid : int;
  done_sid : int;
  index : (Cfg.bid * int, int) Hashtbl.t;
}

let of_schedule cs =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  let index = Hashtbl.create 32 in
  let states = ref [] in
  let next = ref 0 in
  List.iter
    (fun bid ->
      let n = Hls_sched.Schedule.n_steps (Hls_sched.Cfg_sched.block_schedule cs bid) in
      for step = 1 to n do
        let sid = !next in
        incr next;
        Hashtbl.replace index (bid, step) sid;
        states := { sid; block = bid; step } :: !states
      done)
    (Cfg.block_ids cfg);
  let done_sid = !next in
  states := { sid = done_sid; block = -1; step = 0 } :: !states;
  let first_state bid = Hashtbl.find index (bid, 1) in
  let trans = ref [] in
  List.iter
    (fun bid ->
      let n = Hls_sched.Schedule.n_steps (Hls_sched.Cfg_sched.block_schedule cs bid) in
      for step = 1 to n - 1 do
        trans :=
          {
            t_from = Hashtbl.find index (bid, step);
            t_guard = G_always;
            t_to = Hashtbl.find index (bid, step + 1);
          }
          :: !trans
      done;
      let last = Hashtbl.find index (bid, n) in
      match Cfg.term cfg bid with
      | Cfg.Goto target ->
          trans := { t_from = last; t_guard = G_always; t_to = first_state target } :: !trans
      | Cfg.Branch (cond, bt, bf) ->
          trans :=
            { t_from = last; t_guard = G_cond (true, cond); t_to = first_state bt }
            :: { t_from = last; t_guard = G_cond (false, cond); t_to = first_state bf }
            :: !trans
      | Cfg.Halt ->
          trans := { t_from = last; t_guard = G_always; t_to = done_sid } :: !trans)
    (Cfg.block_ids cfg);
  trans := { t_from = done_sid; t_guard = G_always; t_to = done_sid } :: !trans;
  {
    state_list = List.rev !states;
    trans = List.rev !trans;
    entry_sid = first_state (Cfg.entry cfg);
    done_sid;
    index;
  }

let states t = t.state_list
let n_states t = List.length t.state_list
let transitions t = t.trans
let entry t = t.entry_sid
let done_state t = t.done_sid
let state_of t bid step = Hashtbl.find t.index (bid, step)
let outgoing t sid = List.filter (fun tr -> tr.t_from = sid) t.trans

let pp ppf t =
  List.iter
    (fun s ->
      let name =
        if s.sid = t.done_sid then "DONE" else Printf.sprintf "b%d.s%d" s.block s.step
      in
      let outs =
        List.map
          (fun tr ->
            match tr.t_guard with
            | G_always -> Printf.sprintf "-> %d" tr.t_to
            | G_cond (pol, c) -> Printf.sprintf "-[%s%%%d]-> %d" (if pol then "" else "!") c tr.t_to)
          (outgoing t s.sid)
      in
      Format.fprintf ppf "S%d (%s)%s: %s@." s.sid name
        (if s.sid = t.entry_sid then " entry" else "")
        (String.concat " " outs))
    t.state_list

let to_dot ?(name = "fsm") t =
  let d = Hls_util.Dot.create name in
  List.iter
    (fun s ->
      let label =
        if s.sid = t.done_sid then "DONE" else Printf.sprintf "b%d.s%d" s.block s.step
      in
      Hls_util.Dot.node d ~attrs:[ ("label", label) ] (string_of_int s.sid))
    t.state_list;
  List.iter
    (fun tr ->
      let attrs =
        match tr.t_guard with
        | G_always -> []
        | G_cond (pol, c) ->
            [ ("label", Printf.sprintf "%s%%%d" (if pol then "" else "!") c) ]
      in
      Hls_util.Dot.edge d ~attrs (string_of_int tr.t_from) (string_of_int tr.t_to))
    t.trans;
  Hls_util.Dot.render d
