type cube = { mask : int; value : int }

type sop = cube list

let cube_covers c x = x land c.mask = c.value

let eval sop x = List.exists (fun c -> cube_covers c x) sop

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let literals ~n_inputs c = popcount (c.mask land ((1 lsl n_inputs) - 1))

let sop_literals ~n_inputs sop =
  List.fold_left (fun acc c -> acc + literals ~n_inputs c) 0 sop

(* most-significant input first *)
let cube_to_string ~n_inputs c =
  let parts = ref [] in
  for i = 0 to n_inputs - 1 do
    if c.mask land (1 lsl i) <> 0 then
      parts :=
        (if c.value land (1 lsl i) <> 0 then Printf.sprintf "x%d" i
         else Printf.sprintf "!x%d" i)
        :: !parts
  done;
  match !parts with [] -> "1" | ps -> String.concat "&" ps

let sop_to_string ~n_inputs sop =
  match sop with
  | [] -> "0"
  | cubes -> String.concat " | " (List.map (cube_to_string ~n_inputs) cubes)
