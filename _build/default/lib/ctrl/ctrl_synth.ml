open Hls_cdfg

type t = {
  enc_style : Encoding.style;
  state_bits : int;
  conds : (Cfg.bid * Dfg.nid) list;
  codes : int array;
  fsm : Fsm.t;
  direct : Logic.sop array;
  minimized : Logic.sop array;
}

let collect_conds fsm =
  List.filter_map
    (fun (tr : Fsm.transition) ->
      match tr.Fsm.t_guard with
      | Fsm.G_cond (_, nid) ->
          let st = List.find (fun (s : Fsm.state) -> s.Fsm.sid = tr.Fsm.t_from) (Fsm.states fsm) in
          Some (st.Fsm.block, nid)
      | Fsm.G_always -> None)
    (Fsm.transitions fsm)
  |> List.sort_uniq compare

(* cube asserting that the state register holds [code] *)
let state_cube style ~state_bits ~code =
  match style with
  | Encoding.One_hot ->
      (* with one-hot codes, testing the single 1 bit suffices *)
      { Logic.mask = code; value = code }
  | Encoding.Binary | Encoding.Gray ->
      let mask = (1 lsl state_bits) - 1 in
      { Logic.mask; value = code land mask }

let cond_bit ~state_bits conds key =
  let rec idx i = function
    | [] -> raise Not_found
    | k :: rest -> if k = key then i else idx (i + 1) rest
  in
  state_bits + idx 0 conds

let direct_logic_of fsm style codes state_bits conds =
  let n_outputs = state_bits in
  let out = Array.make n_outputs [] in
  let state_tbl = Hashtbl.create 16 in
  List.iter (fun (s : Fsm.state) -> Hashtbl.replace state_tbl s.Fsm.sid s) (Fsm.states fsm);
  List.iter
    (fun (tr : Fsm.transition) ->
      let from_state : Fsm.state = Hashtbl.find state_tbl tr.Fsm.t_from in
      let base = state_cube style ~state_bits ~code:codes.(tr.Fsm.t_from) in
      let cube =
        match tr.Fsm.t_guard with
        | Fsm.G_always -> base
        | Fsm.G_cond (pol, nid) ->
            let bit = cond_bit ~state_bits conds (from_state.Fsm.block, nid) in
            {
              Logic.mask = base.Logic.mask lor (1 lsl bit);
              value = base.Logic.value lor (if pol then 1 lsl bit else 0);
            }
      in
      let target = codes.(tr.Fsm.t_to) in
      for k = 0 to n_outputs - 1 do
        if target land (1 lsl k) <> 0 then out.(k) <- cube :: out.(k)
      done)
    (Fsm.transitions fsm);
  Array.map List.rev out

(* exact minterm table when tractable *)
let minimized_logic_of fsm style codes state_bits conds =
  let n_inputs = state_bits + List.length conds in
  if n_inputs > 12 then None
  else begin
    let n_outputs = state_bits in
    let code_to_sid = Hashtbl.create 16 in
    Array.iteri (fun sid code -> Hashtbl.replace code_to_sid code sid) codes;
    let state_tbl = Hashtbl.create 16 in
    List.iter (fun (s : Fsm.state) -> Hashtbl.replace state_tbl s.Fsm.sid s) (Fsm.states fsm);
    let on = Array.make n_outputs [] in
    let dc = Array.make n_outputs [] in
    let state_mask = (1 lsl state_bits) - 1 in
    for x = 0 to (1 lsl n_inputs) - 1 do
      let scode =
        match style with
        | Encoding.One_hot -> x land state_mask
        | Encoding.Binary | Encoding.Gray -> x land state_mask
      in
      match Hashtbl.find_opt code_to_sid scode with
      | None ->
          (* unused state code: full don't care *)
          for k = 0 to n_outputs - 1 do
            dc.(k) <- x :: dc.(k)
          done
      | Some sid ->
          let from_state : Fsm.state = Hashtbl.find state_tbl sid in
          let taken =
            List.find_opt
              (fun (tr : Fsm.transition) ->
                match tr.Fsm.t_guard with
                | Fsm.G_always -> true
                | Fsm.G_cond (pol, nid) ->
                    let bit = cond_bit ~state_bits conds (from_state.Fsm.block, nid) in
                    x land (1 lsl bit) <> 0 = pol)
              (Fsm.outgoing fsm sid)
          in
          let target = match taken with Some tr -> codes.(tr.Fsm.t_to) | None -> scode in
          for k = 0 to n_outputs - 1 do
            if target land (1 lsl k) <> 0 then on.(k) <- x :: on.(k)
          done
    done;
    Some
      (Array.init n_outputs (fun k ->
           Qm.minimize ~n_inputs ~on_set:on.(k) ~dc_set:dc.(k) ()))
  end

let synthesize ?(style = Encoding.Binary) fsm =
  let n = Fsm.n_states fsm in
  let state_bits = Encoding.width style ~n_states:n in
  let codes = Encoding.encode style ~n_states:n in
  let conds = collect_conds fsm in
  let direct = direct_logic_of fsm style codes state_bits conds in
  let minimized =
    match minimized_logic_of fsm style codes state_bits conds with
    | Some m -> m
    | None -> direct
  in
  { enc_style = style; state_bits; conds; codes; fsm; direct; minimized }

let style t = t.enc_style
let n_state_bits t = t.state_bits
let n_inputs t = t.state_bits + List.length t.conds
let cond_signals t = t.conds
let state_code t sid = t.codes.(sid)
let next_logic t = t.minimized
let direct_logic t = t.direct

let next_state t ~state ~conds =
  let x = ref t.codes.(state) in
  List.iteri
    (fun i key ->
      match List.assoc_opt key conds with
      | Some true -> x := !x lor (1 lsl (t.state_bits + i))
      | Some false | None -> ())
    t.conds;
  let code =
    Array.to_list t.minimized
    |> List.mapi (fun k sop -> if Logic.eval sop !x then 1 lsl k else 0)
    |> List.fold_left ( lor ) 0
  in
  (* decode back to a state id *)
  let found = ref (-1) in
  Array.iteri (fun sid c -> if c = code && !found = -1 then found := sid) t.codes;
  if !found = -1 then invalid_arg "Ctrl_synth.next_state: undecodable next code"
  else !found

let literal_cost t =
  Array.fold_left
    (fun acc sop -> acc + Logic.sop_literals ~n_inputs:(n_inputs t) sop)
    0 t.minimized

let direct_literal_cost t =
  Array.fold_left
    (fun acc sop -> acc + Logic.sop_literals ~n_inputs:(n_inputs t) sop)
    0 t.direct

let pla_rows t =
  Array.to_list t.minimized
  |> List.concat_map (fun sop -> List.map (fun (c : Logic.cube) -> (c.Logic.mask, c.Logic.value)) sop)
  |> List.sort_uniq compare |> List.length

let pla_cost t ~rows = rows * ((2 * n_inputs t) + t.state_bits)

let pp ppf t =
  Format.fprintf ppf "%s encoding: %d states, %d state bits, %d condition inputs@."
    (Encoding.style_to_string t.enc_style)
    (Fsm.n_states t.fsm) t.state_bits (List.length t.conds);
  Array.iteri
    (fun k sop ->
      Format.fprintf ppf "  D%d = %s@." k (Logic.sop_to_string ~n_inputs:(n_inputs t) sop))
    t.minimized
