(** Left-edge interval assignment (Kurdahi & Parker's REAL).

    Values sorted by birth time are packed greedily into register
    "tracks": each value goes to the first register whose previous
    occupant died before the value is born. For interval conflicts this
    is optimal — the number of registers equals the maximum number of
    simultaneously live values ({!Hls_util.Interval.max_overlap}), the
    property the unit tests check. *)

val assign : (int * Hls_util.Interval.t) list -> (int * int) list * int
(** [assign items] where items are [(key, lifetime)] pairs returns
    ([(key, track)] assignments, number of tracks). Keys must be
    distinct. *)
