(** Interconnect (communication-path) allocation: multiplexer sizing and
    bus allocation ("communication paths, including buses and
    multiplexers, must be chosen so that the functional units and
    registers are connected as necessary to support the data transfers
    required by the specification and the schedule").

    A {e transfer} is one physical data movement implied by the design:
    a value arriving at a functional-unit input port, or a value latched
    into a (variable or temporary) register. With point-to-point wiring,
    each destination with more than one distinct source needs a
    multiplexer ({!mux_cost} counts total extra mux inputs). With buses
    — "distributed multiplexers" — transfers that never occur in the
    same control step (or that carry the same source) can share one bus;
    {!bus_allocation} clique-partitions the transfers accordingly. *)

open Hls_cdfg

(** A physical signal source. *)
type wire =
  | W_fu_out of int  (** output of functional unit [id] *)
  | W_var of string  (** variable register output (post-sharing name) *)
  | W_temp of Cfg.bid * Dfg.nid  (** temporary register output *)
  | W_wire of Cfg.bid * Dfg.nid  (** combinational free-chain output *)
  | W_const of int

(** A destination port. *)
type dest =
  | D_fu_in of int * int  (** functional unit, input position *)
  | D_var of string  (** variable register input *)
  | D_temp of Cfg.bid * Dfg.nid  (** temporary register input *)

type transfer = { t_src : wire; t_dst : dest; t_bid : Cfg.bid; t_step : int }

val transfers :
  Hls_sched.Cfg_sched.t -> fu:Fu_alloc.t -> regs:Reg_alloc.t -> transfer list
(** All data transfers of the design, in block/step order. *)

val mux_cost : transfer list -> int
(** Σ over destinations of [max 0 (distinct sources − 1)]: total 2-input
    multiplexer equivalents for point-to-point interconnect. *)

val bus_allocation : transfer list -> transfer list list * int
(** Clique partition of transfers onto buses; returns the groups and the
    bus count. Two transfers may share a bus iff they occur in different
    (block, step) slots or carry the same source. *)

val pp_summary : Format.formatter -> transfer list -> unit
