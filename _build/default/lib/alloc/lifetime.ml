open Hls_util
open Hls_cdfg

type storage = In_variable of string | Temp of Interval.t | No_storage

type value_info = {
  nid : Dfg.nid;
  produced : int;
  last_use : int;
  storage : storage;
}

(* Stored sources (entry reads and occupying ops) reachable through free
   chains from [id]; constants excluded. *)
let rec stored_sources g id acc =
  match Dfg.op g id with
  | Op.Const _ -> acc
  | Op.Read _ -> id :: acc
  | _ when Dfg.occupies_step g id -> id :: acc
  | _ -> List.fold_left (fun acc a -> stored_sources g a acc) acc (Dfg.args g id)

let analyze sched ~term_cond =
  let g = Hls_sched.Schedule.dfg sched in
  let n = Dfg.n_nodes g in
  let n_steps = Hls_sched.Schedule.n_steps sched in
  (* last step each stored value is consumed at *)
  let last_use = Array.make n 0 in
  let consume id step =
    List.iter
      (fun src -> last_use.(src) <- max last_use.(src) step)
      (stored_sources g id [])
  in
  Dfg.iter
    (fun id node ->
      match node.Dfg.op with
      | Op.Write _ -> (
          (* a write latches at its producing step; its sources must be
             readable during that step *)
          match node.Dfg.args with
          | [ a ] -> consume a (Hls_sched.Schedule.write_step sched id)
          | _ -> ())
      | _ when Dfg.occupies_step g id ->
          let s = Hls_sched.Schedule.step_of sched id in
          List.iter (fun a -> consume a s) node.Dfg.args
      | _ -> ())
    g;
  (match term_cond with Some c -> consume c n_steps | None -> ());
  let writes = Dfg.writes g in
  let write_step wnid = Hls_sched.Schedule.write_step sched wnid in
  (* earliest write to a variable in this block, if any *)
  let first_write v =
    List.fold_left
      (fun acc (v', wnid) ->
        if v' <> v then acc
        else
          match acc with
          | Some w when w <= write_step wnid -> acc
          | _ -> Some (write_step wnid))
      None writes
  in
  (* the variable a value is directly written to (post-DCE: at most one) *)
  let written_to id =
    List.find_map
      (fun (v, wnid) ->
        if Dfg.args g wnid = [ id ] then Some (v, wnid) else None)
      writes
  in
  let storage_of id node produced lu =
    if lu <= produced then No_storage
    else
      match node.Dfg.op with
      | Op.Read v -> (
          (* the old value stays valid in v's register until the step in
             which v is overwritten (the new value latches at its end) *)
          match first_write v with
          | Some w when w < lu -> Temp (Interval.make w (lu - 1))
          | Some _ | None -> In_variable v)
      | _ -> (
          match written_to id with
          | Some (v, my_write) ->
              let overwritten =
                List.exists
                  (fun (v', wnid) ->
                    v' = v && wnid <> my_write
                    && write_step wnid >= produced
                    && write_step wnid < lu)
                  writes
              in
              if overwritten then Temp (Interval.make produced (lu - 1))
              else In_variable v
          | None -> Temp (Interval.make produced (lu - 1)))
  in
  let infos = ref [] in
  Dfg.iter
    (fun id node ->
      let record produced =
        let lu = max last_use.(id) produced in
        infos :=
          { nid = id; produced; last_use = lu; storage = storage_of id node produced lu }
          :: !infos
      in
      match node.Dfg.op with
      | Op.Read _ -> record 0
      | Op.Write _ -> () (* a write stores into a variable, it is not a value *)
      | _ when Dfg.occupies_step g id -> record (Hls_sched.Schedule.step_of sched id)
      | _ -> ())
    g;
  List.rev !infos

let temps infos =
  List.filter_map
    (fun info ->
      match info.storage with
      | Temp iv -> Some (info.nid, iv)
      | In_variable _ | No_storage -> None)
    infos
