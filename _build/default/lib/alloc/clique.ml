(* Super-node clique merging. Each group keeps the set of original nodes
   it contains; two groups are compatible iff all cross pairs are. *)

let partition ~n ~compatible =
  let groups = ref (List.init n (fun i -> [ i ])) in
  let group_compatible ga gb =
    List.for_all (fun a -> List.for_all (fun b -> compatible a b) gb) ga
  in
  let common_neighbors ga gb all =
    List.length
      (List.filter
         (fun gc -> gc != ga && gc != gb && group_compatible ga gc && group_compatible gb gc)
         all)
  in
  let rec loop () =
    let all = !groups in
    (* best compatible pair by common-neighbor count *)
    let best = ref None in
    let rec pairs = function
      | [] -> ()
      | ga :: rest ->
          List.iter
            (fun gb ->
              if group_compatible ga gb then begin
                let score = common_neighbors ga gb all in
                match !best with
                | Some (s, _, _) when s >= score -> ()
                | _ -> best := Some (score, ga, gb)
              end)
            rest;
          pairs rest
    in
    pairs all;
    match !best with
    | None -> ()
    | Some (_, ga, gb) ->
        groups :=
          List.sort compare (ga @ gb)
          :: List.filter (fun g -> g != ga && g != gb) all;
        loop ()
  in
  loop ();
  List.map (List.sort compare) !groups
  |> List.sort (fun a b ->
         match (a, b) with x :: _, y :: _ -> compare x y | _, _ -> 0)

let max_clique_lower_bound ~n ~compatible =
  (* greedy max clique in the complement (incompatibility) graph *)
  let incompatible a b = not (compatible a b) in
  let best = ref 0 in
  for seed = 0 to n - 1 do
    let clique = ref [ seed ] in
    for v = 0 to n - 1 do
      if v <> seed && List.for_all (fun u -> incompatible u v) !clique then
        clique := v :: !clique
    done;
    best := max !best (List.length !clique)
  done;
  if n = 0 then 0 else !best
