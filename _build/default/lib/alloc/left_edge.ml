open Hls_util

let assign items =
  let sorted =
    List.sort (fun (_, a) (_, b) -> Interval.compare_lo a b) items
  in
  (* track_end.(t) = hi of the last interval placed on track t *)
  let track_end = ref [] in
  let assignment =
    List.map
      (fun (key, (iv : Interval.t)) ->
        let rec find idx = function
          | [] -> None
          | last_hi :: rest ->
              if last_hi < iv.Interval.lo then Some idx else find (idx + 1) rest
        in
        match find 0 !track_end with
        | Some t ->
            track_end := List.mapi (fun i hi -> if i = t then iv.Interval.hi else hi) !track_end;
            (key, t)
        | None ->
            let t = List.length !track_end in
            track_end := !track_end @ [ iv.Interval.hi ];
            (key, t))
      sorted
  in
  (assignment, List.length !track_end)
