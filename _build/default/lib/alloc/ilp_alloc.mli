(** Functional-unit allocation as a 0/1 mathematical program (the
    Hafer-style global technique of section 3.2.2): a variable per
    (operation, candidate unit) assignment, exactly-one selection per
    operation, forbidden pairs for operations that execute
    simultaneously, unit-usage indicator variables, and an objective
    minimizing the number of units. Exact via {!Hls_util.Binprog} —
    "this was done by Hafer on a small example"; the clique and greedy
    allocators remain the practical paths. *)

val allocate : ?op_cap:int -> Hls_sched.Cfg_sched.t -> Fu_alloc.t option
(** Minimum-unit binding of all step-occupying operations. [None] when
    the design has more than [op_cap] operations (default 14). *)

val min_units : ?op_cap:int -> Hls_sched.Cfg_sched.t -> int option
(** Just the optimal unit count. *)
