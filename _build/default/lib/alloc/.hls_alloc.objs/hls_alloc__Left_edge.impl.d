lib/alloc/left_edge.ml: Hls_util Interval List
