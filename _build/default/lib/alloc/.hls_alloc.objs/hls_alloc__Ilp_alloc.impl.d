lib/alloc/ilp_alloc.ml: Array Binprog Fu_alloc Fun Hashtbl Hls_cdfg Hls_util List Printf
