lib/alloc/interconnect.ml: Array Cfg Clique Dfg Format Fu_alloc Hashtbl Hls_cdfg Hls_sched Hls_util Lifetime List Op Reg_alloc
