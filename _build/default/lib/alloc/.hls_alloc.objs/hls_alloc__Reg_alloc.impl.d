lib/alloc/reg_alloc.ml: Array Cfg Clique Dfg Format Hashtbl Hls_cdfg Hls_sched Left_edge Lifetime List Liveness String
