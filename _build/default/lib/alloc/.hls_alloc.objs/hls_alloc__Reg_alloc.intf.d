lib/alloc/reg_alloc.mli: Cfg Dfg Format Hls_cdfg Hls_sched
