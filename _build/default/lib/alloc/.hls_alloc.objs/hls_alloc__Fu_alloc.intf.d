lib/alloc/fu_alloc.mli: Cfg Dfg Format Hashtbl Hls_cdfg Hls_sched Lifetime Op
