lib/alloc/lifetime.ml: Array Dfg Hls_cdfg Hls_sched Hls_util Interval List Op
