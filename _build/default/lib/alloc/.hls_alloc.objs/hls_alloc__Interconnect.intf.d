lib/alloc/interconnect.mli: Cfg Dfg Format Fu_alloc Hls_cdfg Hls_sched Reg_alloc
