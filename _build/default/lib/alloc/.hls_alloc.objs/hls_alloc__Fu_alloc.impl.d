lib/alloc/fu_alloc.ml: Array Cfg Clique Dfg Format Hashtbl Hls_cdfg Hls_sched Lifetime List Op Printf String
