lib/alloc/left_edge.mli: Hls_util
