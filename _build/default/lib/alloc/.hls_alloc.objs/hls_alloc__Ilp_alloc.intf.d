lib/alloc/ilp_alloc.mli: Fu_alloc Hls_sched
