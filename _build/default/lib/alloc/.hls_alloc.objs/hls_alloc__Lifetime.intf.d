lib/alloc/lifetime.mli: Dfg Hls_cdfg Hls_sched Hls_util
