lib/alloc/clique.ml: List
