lib/alloc/clique.mli:
