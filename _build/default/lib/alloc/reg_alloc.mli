(** Register (storage) allocation.

    Two storage populations, per the lifetime analysis:

    - {e temporaries}: values crossing step boundaries inside a block.
      Allocated with REAL's left-edge algorithm per block; because basic
      blocks never execute concurrently, track [k] of every block is the
      same physical register, so the temp register count is the maximum
      track count over blocks.
    - {e variables}: storage crossing block boundaries. One register per
      variable, optionally shared: variables whose live ranges never
      overlap (per {!Hls_cdfg.Liveness}) {e and} that are never written
      in the same control step (one latch per register per cycle) are
      merged by clique partitioning ("values may be assigned to the same
      register when their lifetimes do not overlap").

    Input and output ports always keep dedicated registers (their values
    are externally observable). *)

open Hls_cdfg

type t

val run :
  ?share_variables:bool ->
  ports:string list ->
  outputs:string list ->
  Hls_sched.Cfg_sched.t ->
  t
(** [ports] lists all port names (never merged); [outputs] are the output
    ports, live at program exit. Sharing defaults to true. *)

val temp_track : t -> Cfg.bid -> Dfg.nid -> int option
(** Track (physical temp register index) of a value, if it needed one. *)

val n_temp_registers : t -> int

val register_of_var : t -> string -> string
(** Physical register name holding a variable (a shared register is named
    after the first variable of its group). *)

val n_variable_registers : t -> int

val n_registers : t -> int
(** Total physical registers: temps + variable groups. *)

val variable_groups : t -> string list list
(** The sharing classes, each ascending, ordered by first member. *)

val pp : Format.formatter -> t -> unit
