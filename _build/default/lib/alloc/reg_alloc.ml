open Hls_cdfg

type t = {
  temp_tracks : (Cfg.bid * Dfg.nid, int) Hashtbl.t;
  n_temps : int;
  var_reg : (string * string) list;  (* variable -> physical register name *)
  groups : string list list;
}

let run ?(share_variables = true) ~ports ~outputs cs =
  let cfg = Hls_sched.Cfg_sched.cfg cs in
  (* --- temporaries: left-edge per block, tracks shared across blocks --- *)
  let temp_tracks = Hashtbl.create 32 in
  let n_temps = ref 0 in
  List.iter
    (fun bid ->
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      let term_cond =
        match Cfg.term cfg bid with
        | Cfg.Branch (c, _, _) -> Some c
        | Cfg.Goto _ | Cfg.Halt -> None
      in
      let infos = Lifetime.analyze sched ~term_cond in
      let assignment, tracks = Left_edge.assign (Lifetime.temps infos) in
      List.iter (fun (nid, track) -> Hashtbl.replace temp_tracks (bid, nid) track) assignment;
      n_temps := max !n_temps tracks)
    (Cfg.block_ids cfg);
  (* --- variables: interference from liveness; clique-share --- *)
  let live = Liveness.analyze ~live_at_exit:outputs cfg in
  let vars = Liveness.all_variables live in
  let var_arr = Array.of_list vars in
  let n = Array.length var_arr in
  let is_port v = List.mem v ports in
  (* a physical register latches one value per cycle: variables written in
     the same (block, step) can never share, independent of liveness *)
  let write_slots : (string, (Cfg.bid * int) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let sched = Hls_sched.Cfg_sched.block_schedule cs bid in
      List.iter
        (fun (v, wnid) ->
          let slot = (bid, Hls_sched.Schedule.write_step sched wnid) in
          let cur = match Hashtbl.find_opt write_slots v with Some l -> l | None -> [] in
          Hashtbl.replace write_slots v (slot :: cur))
        (Dfg.writes g))
    (Cfg.block_ids cfg);
  let writes_clash a b =
    let sa = match Hashtbl.find_opt write_slots a with Some l -> l | None -> [] in
    let sb = match Hashtbl.find_opt write_slots b with Some l -> l | None -> [] in
    List.exists (fun s -> List.mem s sb) sa
  in
  let groups =
    if share_variables then
      Clique.partition ~n ~compatible:(fun i j ->
          let a = var_arr.(i) and b = var_arr.(j) in
          (not (is_port a))
          && (not (is_port b))
          && (not (Liveness.interfere live a b))
          && not (writes_clash a b))
      |> List.map (List.map (fun i -> var_arr.(i)))
    else List.map (fun v -> [ v ]) vars
  in
  let var_reg =
    List.concat_map
      (fun group ->
        match group with
        | rep :: _ -> List.map (fun v -> (v, rep)) group
        | [] -> [])
      groups
  in
  { temp_tracks; n_temps = !n_temps; var_reg; groups }

let temp_track t bid nid = Hashtbl.find_opt t.temp_tracks (bid, nid)

let n_temp_registers t = t.n_temps

let register_of_var t v =
  match List.assoc_opt v t.var_reg with Some r -> r | None -> v

let variable_groups t = t.groups

let n_variable_registers t = List.length t.groups

let n_registers t = t.n_temps + List.length t.groups

let pp ppf t =
  Format.fprintf ppf "temp registers: %d@." t.n_temps;
  List.iter
    (fun group ->
      Format.fprintf ppf "reg %s <- {%s}@."
        (match group with r :: _ -> r | [] -> "?")
        (String.concat ", " group))
    t.groups
