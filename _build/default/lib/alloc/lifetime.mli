(** Value lifetime analysis over a scheduled block — the input to
    register allocation ("values that are generated in one control step
    and used in another must be assigned to storage").

    A {e stored value} is an entry read or a step-occupying operation's
    result. Free operations are wiring: consuming a free chain's output
    means the chain's underlying stored sources must still be readable,
    so consumption is attributed through the chain to those sources. The
    branch condition is consumed at the block's last step (the FSM
    transition samples it there).

    Each stored value is classified:
    - [In_variable v] — the value already lives in [v]'s register for its
      whole span (it is read from / written to [v] and [v] is not
      overwritten before the last use); costs no extra register;
    - [Temp iv] — the value must occupy a temporary register over the
      step boundaries [iv] (a closed interval: held from the end of step
      [lo] through the start of step [hi + 1]);
    - [No_storage] — never crosses a step boundary. *)

open Hls_cdfg

type storage =
  | In_variable of string
  | Temp of Hls_util.Interval.t
  | No_storage

type value_info = {
  nid : Dfg.nid;
  produced : int;  (** producing step; 0 for entry values *)
  last_use : int;  (** last step the value is consumed; [produced] if unused *)
  storage : storage;
}

val analyze :
  Hls_sched.Schedule.t -> term_cond:Dfg.nid option -> value_info list
(** Analyze one scheduled block. [term_cond] is the branch condition (if
    the block ends in a conditional branch). Values are listed in node-id
    order. *)

val temps : value_info list -> (Dfg.nid * Hls_util.Interval.t) list
(** Just the values needing temporary registers. *)
