(** The end-to-end synthesis flow: compile → optimize → schedule →
    allocate → bind → synthesize control → estimate. One call takes a
    behavioral specification to a complete verified register-transfer
    design, with every stage's intermediate result exposed. *)

open Hls_lang
open Hls_sched

type scheduler =
  | Asap
  | List_path  (** list scheduling, critical-path priority *)
  | List_mobility
  | Force_directed of int  (** extra steps of slack over the critical path *)
  | Freedom
  | Branch_bound  (** falls back to list scheduling past 24 ops *)
  | Ilp_exact  (** Hafer-style 0/1 program; falls back past 12 ops *)
  | Trans_parallel
  | Trans_serial

val scheduler_to_string : scheduler -> string

type options = {
  opt_level : [ `None | `Standard | `Aggressive ];
  if_conversion : bool;  (** speculate small branch diamonds into muxes *)
  scheduler : scheduler;
  limits : Limits.t;
  allocator : [ `Clique | `Greedy_min_mux | `Greedy_first_fit ];
  share_variables : bool;
  encoding : Hls_ctrl.Encoding.style;
}

val default_options : options
(** Standard optimization, path-priority list scheduling on two
    functional units, min-mux greedy allocation, binary encoding. *)

type design = {
  options : options;
  prog : Typed.tprogram;
  cfg : Hls_cdfg.Cfg.t;  (** after optimization *)
  sched : Cfg_sched.t;
  fu : Hls_alloc.Fu_alloc.t;
  regs : Hls_alloc.Reg_alloc.t;
  transfers : Hls_alloc.Interconnect.transfer list;
  datapath : Hls_rtl.Datapath.t;
  controller : Hls_ctrl.Ctrl_synth.t;
  estimate : Hls_rtl.Estimate.t;
}

val synthesize_program : ?options:options -> Ast.program -> design
(** Raises {!Ast.Frontend_error} on bad input, [Invalid_argument] if an
    internal consistency check fails, and [Failure] if the produced
    datapath fails the structural netlist checks. *)

val synthesize : ?options:options -> string -> design
(** Parse BSL source text and synthesize. *)

val ports_of : Typed.tprogram -> (string * [ `In | `Out ] * Ast.ty) list
val output_names : Typed.tprogram -> string list

val cosim_design : design -> Hls_sim.Cosim.design
(** Adapter for {!Hls_sim.Cosim}. *)

val verify : ?runs:int -> design -> (unit, string) result
(** Random-vector co-simulation of the design (behavior = CDFG = RTL). *)
