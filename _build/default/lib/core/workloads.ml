let sqrt_newton =
  {|
-- Fig 1 of the tutorial: square root of X by Newton's method.
-- A first-degree minimax polynomial approximation over <1/16, 1>
-- provides the initial value; four iterations suffice.
module sqrt(input x: fix<8,24>; output y: fix<8,24>);
var i: int<8>;
begin
  y := 0.222222 + 0.888889 * x;
  i := 0;
  repeat
    y := 0.5 * (y + x / y);
    i := i + 1;
  until i > 3;
end
|}

let diffeq =
  {|
-- The HAL differential-equation benchmark (Paulin & Knight):
-- integrate y'' + 3xy' + 3y = 0 by forward Euler steps of dx until x = a.
module diffeq(input x_in, y_in, u_in, dx, a: fix<16,16>;
              output x_out, y_out, u_out: fix<16,16>);
var x, y, u, x1, u1, y1: fix<16,16>;
begin
  x := x_in;
  y := y_in;
  u := u_in;
  while x < a do
    x1 := x + dx;
    u1 := u - (3.0 * x * u * dx) - (3.0 * y * dx);
    y1 := y + u * dx;
    x := x1;
    u := u1;
    y := y1;
  end;
  x_out := x;
  y_out := y;
  u_out := u;
end
|}

let fir8 =
  {|
-- 8-tap FIR filter, straight-line (taps presented in parallel).
module fir8(input x0, x1, x2, x3, x4, x5, x6, x7: fix<8,24>;
            output y: fix<8,24>);
begin
  y := 0.0265 * x0 + 0.1405 * x1 + 0.2500 * x2 + 0.3230 * x3
     + 0.3230 * x4 + 0.2500 * x5 + 0.1405 * x6 + 0.0265 * x7;
end
|}

let gcd =
  {|
-- Euclid's algorithm by repeated subtraction: control-dominated.
module gcd(input a_in, b_in: int<16>; output g: int<16>);
var a, b: int<16>;
begin
  a := a_in;
  b := b_in;
  while a <> b do
    if a > b then
      a := a - b;
    else
      b := b - a;
    end;
  end;
  g := a;
end
|}

let biquad3 =
  {|
-- Three cascaded direct-form-II biquad sections: an elliptic-wave-
-- filter-style kernel (long chains of additions and constant
-- multiplications; the 0.5/0.25 coefficients strength-reduce to
-- shifts, the rest stay on multipliers). Written with a procedure per
-- section; inline expansion ("inline expansion of procedures") plus
-- forwarding/DCE collapse the abstraction back to one flat block.
module biquad3(input x, s11_in, s12_in, s21_in, s22_in, s31_in, s32_in: fix<8,24>;
               output y, s11_out, s12_out, s21_out, s22_out, s31_out, s32_out: fix<8,24>);
proc section(input inp, s1, s2, a1, a2, b1, b2: fix<8,24>;
             output outp, s1_next, s2_next: fix<8,24>);
var t: fix<8,24>;
begin
  t := inp - a1 * s1 - a2 * s2;
  outp := t + b1 * s1 + b2 * s2;
  s2_next := s1;
  s1_next := t;
end;
var y1, y2: fix<8,24>;
begin
  call section(x,  s11_in, s12_in, 0.5, 0.25, 0.8, 0.3,  y1, s11_out, s12_out);
  call section(y1, s21_in, s22_in, 0.4, 0.2,  0.7, 0.35, y2, s21_out, s22_out);
  call section(y2, s31_in, s32_in, 0.3, 0.15, 0.6, 0.25, y,  s31_out, s32_out);
end
|}

let twophase =
  {|
-- Two sequential accumulation phases with disjoint live ranges:
-- s carries phase 1, t carries phase 2, so register allocation can
-- fold them onto one physical register ("values may be assigned to
-- the same register when their lifetimes do not overlap").
module twophase(input a, b: int<16>; output y: int<16>);
var i: int<8>;
var s, t: int<16>;
begin
  s := a;
  for i := 0 to 3 do
    s := s + b;
  end;
  t := s * 2;
  for i := 0 to 3 do
    t := t - a;
  end;
  y := t;
end
|}

let all =
  [
    ("sqrt", sqrt_newton);
    ("diffeq", diffeq);
    ("fir8", fir8);
    ("gcd", gcd);
    ("biquad3", biquad3);
    ("twophase", twophase);
  ]

let find name = List.assoc name all
