lib/core/workloads.mli:
