lib/core/flow.ml: Ast Cfg_sched Hls_alloc Hls_cdfg Hls_ctrl Hls_lang Hls_rtl Hls_sched Hls_sim Hls_transform Inline Limits List Parser Printf String Typecheck Typed
