lib/core/workloads.ml: List
