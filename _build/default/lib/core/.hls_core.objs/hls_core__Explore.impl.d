lib/core/explore.ml: Flow Hls_alloc Hls_cdfg Hls_rtl Hls_sched Hls_util Limits List Printf Table
