lib/core/explore.mli: Flow Hls_sched
