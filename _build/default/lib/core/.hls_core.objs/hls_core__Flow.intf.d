lib/core/flow.mli: Ast Cfg_sched Hls_alloc Hls_cdfg Hls_ctrl Hls_lang Hls_rtl Hls_sched Hls_sim Limits Typed
