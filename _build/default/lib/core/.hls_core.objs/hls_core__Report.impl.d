lib/core/report.ml: Buffer Flow Format Hls_alloc Hls_cdfg Hls_ctrl Hls_lang Hls_rtl Hls_sched List Printf
