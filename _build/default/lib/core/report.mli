(** Human-readable design reports: the "self-documenting design process"
    the paper lists among the reasons to automate synthesis. *)

val summary : Flow.design -> string
(** Multi-section report: optimized CDFG statistics, per-block schedule,
    functional-unit binding, register allocation, interconnect summary,
    controller costs, and the area/latency estimate. *)

val schedule_table : Flow.design -> string
(** Per-block control-step table. *)

val print : Flow.design -> unit
