(** Design-space exploration — "a good synthesis system can produce
    several designs for the same specification in a reasonable amount of
    time [to] explore different trade-offs between cost, speed, power".

    Sweeps resource limits (and optionally schedulers) over one
    specification, estimates each design, and reports the area/latency
    Pareto frontier. *)

type point = {
  label : string;
  options : Flow.options;
  design : Flow.design;
  area : int;
  latency_ns : float;
}

val sweep_limits :
  ?base:Flow.options -> ?limits:Hls_sched.Limits.t list -> string -> point list
(** Synthesize the BSL source under each resource limit (default: serial,
    2, 3 and 4 general units, and a 1-ALU/1-multiplier/1-divider split). *)

val sweep_schedulers :
  ?base:Flow.options -> ?schedulers:Flow.scheduler list -> string -> point list

val pareto : point list -> point list
(** Points not dominated in (area, latency), sorted by area. *)

val table : point list -> string
(** Rendered comparison table (label, FUs, steps, area, latency, Pareto
    marker). *)
