(** Built-in behavioral workloads.

    - [sqrt_newton] — the paper's Fig 1 example: √X by four Newton
      iterations with a first-degree minimax polynomial start;
    - [diffeq] — the HAL differential-equation solver (Paulin & Knight),
      the classic scheduling benchmark of the surveyed systems;
    - [fir8] — 8-tap FIR filter, a straight-line DSP kernel (the
      CATHEDRAL domain);
    - [gcd] — Euclid's algorithm, control-dominated;
    - [biquad3] — three cascaded direct-form-II biquad sections, an
      elliptic-wave-filter-style kernel with a long add/multiply chain;
    - [twophase] — two sequential loop phases with disjoint variable
      lifetimes, the register-sharing showcase. *)

val sqrt_newton : string
val diffeq : string
val fir8 : string
val gcd : string
val biquad3 : string
val twophase : string

val all : (string * string) list
(** [(name, BSL source)] for every workload. *)

val find : string -> string
(** Source by name. Raises [Not_found]. *)
