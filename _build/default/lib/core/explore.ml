open Hls_util
open Hls_sched

type point = {
  label : string;
  options : Flow.options;
  design : Flow.design;
  area : int;
  latency_ns : float;
}

let default_limits =
  [
    Limits.Serial;
    Limits.Total 2;
    Limits.Total 3;
    Limits.Total 4;
    Limits.Classes [ (Hls_cdfg.Op.C_alu, 1); (Hls_cdfg.Op.C_mul, 1); (Hls_cdfg.Op.C_div, 1) ];
  ]

let point_of label options design =
  {
    label;
    options;
    design;
    area = design.Flow.estimate.Hls_rtl.Estimate.total_area;
    latency_ns = design.Flow.estimate.Hls_rtl.Estimate.latency_ns;
  }

let sweep_limits ?(base = Flow.default_options) ?(limits = default_limits) src =
  List.map
    (fun l ->
      let options = { base with Flow.limits = l } in
      let design = Flow.synthesize ~options src in
      point_of (Limits.to_string l) options design)
    limits

let default_schedulers =
  [ Flow.Asap; Flow.List_path; Flow.List_mobility; Flow.Freedom; Flow.Branch_bound;
    Flow.Ilp_exact; Flow.Trans_parallel; Flow.Trans_serial ]

let sweep_schedulers ?(base = Flow.default_options) ?(schedulers = default_schedulers) src =
  List.map
    (fun s ->
      let options = { base with Flow.scheduler = s } in
      let design = Flow.synthesize ~options src in
      point_of (Flow.scheduler_to_string s) options design)
    schedulers

let dominates a b =
  (a.area <= b.area && a.latency_ns < b.latency_ns)
  || (a.area < b.area && a.latency_ns <= b.latency_ns)

let pareto points =
  List.filter (fun p -> not (List.exists (fun q -> dominates q p) points)) points
  |> List.sort (fun a b -> compare a.area b.area)

let table points =
  let front = pareto points in
  let t =
    Table.create ~headers:[ "design"; "FUs"; "steps"; "area"; "latency(ns)"; "pareto" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.label;
          string_of_int (Hls_alloc.Fu_alloc.n_units p.design.Flow.fu);
          string_of_int p.design.Flow.estimate.Hls_rtl.Estimate.compute_steps;
          string_of_int p.area;
          Printf.sprintf "%.0f" p.latency_ns;
          (if List.memq p front then "*" else "");
        ])
    points;
  Table.render t
