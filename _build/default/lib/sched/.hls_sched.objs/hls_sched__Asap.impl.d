lib/sched/asap.ml: Array Depgraph Hashtbl Hls_cdfg Limits List Op
