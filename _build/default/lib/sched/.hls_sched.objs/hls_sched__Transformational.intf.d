lib/sched/transformational.mli: Depgraph Dfg Hls_cdfg Limits Schedule
