lib/sched/chaining.ml: Array Depgraph Fun Hashtbl Hls_cdfg Limits List Op Printf String
