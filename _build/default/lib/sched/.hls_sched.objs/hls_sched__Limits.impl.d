lib/sched/limits.ml: Hls_cdfg List Op Printf String
