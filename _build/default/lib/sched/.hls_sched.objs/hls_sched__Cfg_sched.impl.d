lib/sched/cfg_sched.ml: Array Cfg Dfg Format Hls_cdfg List Printf Schedule
