lib/sched/chaining.mli: Depgraph Dfg Hls_cdfg Limits Op
