lib/sched/freedom.ml: Array Depgraph Hashtbl Hls_cdfg List Op
