lib/sched/pipeline.mli: Dfg Hls_cdfg Limits Op Schedule
