lib/sched/force_directed.mli: Depgraph Dfg Hls_cdfg Op Schedule
