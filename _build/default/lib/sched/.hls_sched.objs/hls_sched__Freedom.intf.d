lib/sched/freedom.mli: Depgraph Hls_cdfg Schedule
