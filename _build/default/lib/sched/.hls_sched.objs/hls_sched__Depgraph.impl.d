lib/sched/depgraph.ml: Array Dfg Hashtbl Hls_cdfg List Op Printf Schedule
