lib/sched/schedule.ml: Array Dfg Format Hashtbl Hls_cdfg Limits List Op Printf String
