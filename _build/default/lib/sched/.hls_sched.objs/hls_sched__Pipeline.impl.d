lib/sched/pipeline.ml: Array Depgraph Hls_cdfg Limits List Op Schedule
