lib/sched/asap.mli: Depgraph Dfg Hls_cdfg Limits Schedule
