lib/sched/depgraph.mli: Dfg Hls_cdfg Op Schedule
