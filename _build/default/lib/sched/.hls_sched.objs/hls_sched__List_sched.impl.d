lib/sched/list_sched.ml: Array Depgraph Limits List
