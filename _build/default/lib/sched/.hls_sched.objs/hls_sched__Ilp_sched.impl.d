lib/sched/ilp_sched.ml: Array Binprog Depgraph Hls_cdfg Hls_util Limits List Op Printf
