lib/sched/force_directed.ml: Array Depgraph List Printf
