lib/sched/schedule.mli: Dfg Format Hls_cdfg Limits Op
