lib/sched/limits.mli: Hls_cdfg Op
