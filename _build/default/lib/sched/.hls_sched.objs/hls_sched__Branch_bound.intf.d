lib/sched/branch_bound.mli: Depgraph Hls_cdfg Limits Schedule
