lib/sched/cfg_sched.mli: Cfg Dfg Format Hls_cdfg Limits Schedule
