lib/sched/transformational.ml: Array Depgraph Hashtbl Limits List List_sched
