lib/sched/branch_bound.ml: Array Depgraph Hashtbl Hls_cdfg Limits List List_sched Op
