lib/sched/list_sched.mli: Depgraph Dfg Hls_cdfg Limits Schedule
