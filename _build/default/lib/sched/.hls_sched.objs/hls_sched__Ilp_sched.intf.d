lib/sched/ilp_sched.mli: Dfg Hls_cdfg Limits Schedule
