open Hls_cdfg

(* delays of the cheapest covering component per class, plus the fixed
   per-step overhead of a register read and one mux level; mirrors
   Hls_rtl.Component without depending on it (sched sits below rtl) *)
let op_delay_ns = function
  | Op.C_alu -> 18.0
  | Op.C_mul -> 60.0
  | Op.C_div -> 90.0
  | Op.C_shift -> 25.0
  | Op.C_free | Op.C_none -> 0.0

let step_overhead_ns = 4.0 (* register clock-to-q + input mux *)

type t = {
  steps : int array;
  ready_ns : float array;
  n_steps : int;
  period_ns : float;
  dep : Depgraph.t;
}

let counts_of dep steps s except =
  let tally = Hashtbl.create 8 in
  Array.iteri
    (fun i si ->
      if si = s && i <> except then begin
        let cls = Depgraph.cls dep i in
        let cur = try Hashtbl.find tally cls with Not_found -> 0 in
        Hashtbl.replace tally cls (cur + 1)
      end)
    steps;
  Hashtbl.fold (fun cls k acc -> (cls, k) :: acc) tally []

let schedule ~period_ns ~limits g =
  let dep = Depgraph.of_dfg g in
  let n = Depgraph.n_ops dep in
  let slowest =
    List.fold_left
      (fun acc i -> max acc (op_delay_ns (Depgraph.cls dep i)))
      0.0
      (List.init n Fun.id)
  in
  if period_ns < step_overhead_ns +. slowest then
    invalid_arg
      (Printf.sprintf "Chaining.schedule: period %.1f ns below %.1f ns minimum"
         period_ns (step_overhead_ns +. slowest));
  let prio = Depgraph.path_length dep in
  let steps = Array.make n 0 in
  let ready = Array.make n 0.0 in
  let remaining = ref (List.init n (fun i -> i)) in
  while !remaining <> [] do
    let ready_ops =
      List.filter
        (fun i -> List.for_all (fun p -> steps.(p) > 0) (Depgraph.preds dep i))
        !remaining
    in
    match
      List.sort
        (fun a b ->
          let c = compare prio.(b) prio.(a) in
          if c <> 0 then c else compare a b)
        ready_ops
    with
    | [] -> invalid_arg "Chaining.schedule: dependence cycle (internal)"
    | i :: _ ->
        let cls = Depgraph.cls dep i in
        let d = op_delay_ns cls in
        (* earliest step considering chaining: within a predecessor's
           step the op starts at the predecessor's finish time *)
        let start_in s =
          List.fold_left
            (fun acc p ->
              if steps.(p) = s then max acc ready.(p)
              else if steps.(p) > s then infinity
              else acc)
            step_overhead_ns (Depgraph.preds dep i)
        in
        let fits s =
          let start = start_in s in
          start +. d <= period_ns
          && Limits.can_add limits ~counts:(counts_of dep steps s (-1)) cls
        in
        let lo =
          List.fold_left (fun acc p -> max acc steps.(p)) 1 (Depgraph.preds dep i)
        in
        let rec place s =
          (* beyond all predecessors' steps the start time is just the
             overhead, so the search terminates at the first step with
             resource room *)
          if fits s then s else place (s + 1)
        in
        let s = place lo in
        steps.(i) <- s;
        ready.(i) <- start_in s +. d;
        remaining := List.filter (fun j -> j <> i) !remaining
  done;
  let n_steps = Array.fold_left max 1 steps in
  { steps; ready_ns = ready; n_steps; period_ns; dep }

let verify ?(limits = Limits.Unlimited) t =
  let errors = ref [] in
  let n = Depgraph.n_ops t.dep in
  for s = 1 to t.n_steps do
    if not (Limits.within limits ~counts:(counts_of t.dep t.steps s (-1))) then
      errors := Printf.sprintf "step %d exceeds resource limits" s :: !errors
  done;
  for i = 0 to n - 1 do
    if t.ready_ns.(i) > t.period_ns +. 1e-9 then
      errors := Printf.sprintf "op %d exceeds the period" i :: !errors;
    List.iter
      (fun p ->
        if t.steps.(p) > t.steps.(i) then
          errors := Printf.sprintf "op %d before its predecessor %d" i p :: !errors
        else if t.steps.(p) = t.steps.(i) then begin
          (* chained: producer must finish before the consumer completes *)
          let d = op_delay_ns (Depgraph.cls t.dep i) in
          if t.ready_ns.(i) < t.ready_ns.(p) +. d -. 1e-9 then
            errors :=
              Printf.sprintf "op %d starts before its chained producer %d finishes" i p
              :: !errors
        end)
      (Depgraph.preds t.dep i)
  done;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

let sweep ~limits ~periods_ns g =
  List.filter_map
    (fun period_ns ->
      match schedule ~period_ns ~limits g with
      | t -> Some (period_ns, t.n_steps, float_of_int t.n_steps *. period_ns)
      | exception Invalid_argument _ -> None)
    periods_ns
