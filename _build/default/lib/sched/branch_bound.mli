(** Exact resource-constrained scheduling by branch-and-bound (the
    improvement over EXPL's exhaustive search that the paper describes:
    "exhaustive search can be improved somewhat by using branch-and-bound
    techniques, which cut off the search along any path that can be
    recognized to be suboptimal").

    Operations are assigned in topological order; each partial schedule
    is pruned when (current step bound) + (remaining critical path)
    cannot beat the best complete schedule found so far. The initial
    incumbent is the list schedule, so the result is never worse than
    list scheduling. Exponential in the worst case — intended for blocks
    up to a few dozen operations (tests use it as the optimum oracle). *)

val schedule : ?node_cap:int -> limits:Limits.t -> Hls_cdfg.Dfg.t -> Schedule.t option
(** [None] when the block exceeds [node_cap] operations (default 24). *)

val schedule_dep : ?node_cap:int -> limits:Limits.t -> Depgraph.t -> int array option
