(** Dependence graph over the step-occupying operations of a block.

    Free operations (constant shifts, zero-detects, muxes) and entry
    values are dissolved into direct edges between the occupying
    operations they connect, so every scheduler sees a plain unit-delay
    DAG. Operation indices are dense [0 .. n-1], topologically ordered. *)

open Hls_cdfg

type t

val of_dfg : Dfg.t -> t

val n_ops : t -> int
val nid_of : t -> int -> Dfg.nid
(** DFG node id of an operation index. *)

val index_of : t -> Dfg.nid -> int
(** Inverse of {!nid_of}. Raises [Not_found] for non-occupying nodes. *)

val preds : t -> int -> int list
val succs : t -> int -> int list
val cls : t -> int -> Op.fu_class

val asap : t -> int array
(** Unconstrained as-soon-as-possible step of each op (1-based). *)

val alap : t -> deadline:int -> int array
(** Unconstrained as-late-as-possible steps, anchored so every op
    finishes by [deadline]. Raises [Invalid_argument] if the deadline is
    shorter than the critical path. *)

val critical_length : t -> int
(** Length of the longest dependence chain (minimum possible schedule
    length); 0 when the block has no occupying operation. *)

val path_length : t -> int array
(** Ops on the longest chain from each op to a sink, inclusive — the
    list-scheduling priority of Fig 4. *)

val to_schedule : t -> steps:int array -> Schedule.t
(** Wrap an op-indexed step assignment into a {!Schedule.t}. *)
