open Hls_util
open Hls_cdfg

let occupying_classes = [ Op.C_alu; Op.C_mul; Op.C_div; Op.C_shift ]

(* Feasibility of a schedule of length [deadline] as a 0/1 program. *)
let feasible dep ~limits ~deadline =
  let n = Depgraph.n_ops dep in
  let asap = Depgraph.asap dep in
  let alap = Depgraph.alap dep ~deadline in
  let prog = Binprog.create () in
  (* x.(i) = list of (step, var) for op i's possible placements *)
  let x =
    Array.init n (fun i ->
        List.init
          (alap.(i) - asap.(i) + 1)
          (fun k ->
            let s = asap.(i) + k in
            (s, Binprog.new_var prog (Printf.sprintf "x%d@%d" i s))))
  in
  Array.iter (fun placements -> Binprog.add_group prog (List.map snd placements)) x;
  (* precedence: op i before successor j, strictly *)
  for i = 0 to n - 1 do
    List.iter
      (fun j ->
        List.iter
          (fun (si, vi) ->
            List.iter
              (fun (sj, vj) -> if sj <= si then Binprog.forbid_pair prog vi vj)
              x.(j))
          x.(i))
      (Depgraph.succs dep i)
  done;
  (* resources per step *)
  for s = 1 to deadline do
    (* total budget *)
    (match limits with
    | Limits.Serial | Limits.Total _ ->
        let k = match limits with Limits.Serial -> 1 | Limits.Total k -> k | _ -> 1 in
        let vars =
          List.concat
            (List.init n (fun i ->
                 List.filter_map (fun (si, v) -> if si = s then Some v else None) x.(i)))
        in
        if vars <> [] then Binprog.at_most prog k vars
    | Limits.Classes caps ->
        List.iter
          (fun cls ->
            match List.assoc_opt cls caps with
            | None -> ()
            | Some cap ->
                let vars =
                  List.concat
                    (List.init n (fun i ->
                         if Depgraph.cls dep i = cls then
                           List.filter_map
                             (fun (si, v) -> if si = s then Some v else None)
                             x.(i)
                         else []))
                in
                if vars <> [] then Binprog.at_most prog cap vars)
          occupying_classes
    | Limits.Unlimited -> ())
  done;
  match Binprog.solve prog with
  | None -> None
  | Some value ->
      let steps = Array.make n 1 in
      Array.iteri
        (fun i placements ->
          List.iter (fun (s, v) -> if value v then steps.(i) <- s) placements)
        x;
      Some steps

let schedule ?(node_cap = 12) ~limits g =
  let dep = Depgraph.of_dfg g in
  let n = Depgraph.n_ops dep in
  if n > node_cap then None
  else begin
    let cl = max 1 (Depgraph.critical_length dep) in
    let rec search deadline =
      if deadline > max 1 n then
        (* serialization is always feasible; should never get here *)
        invalid_arg "Ilp_sched: no feasible deadline (internal)"
      else
        match feasible dep ~limits ~deadline with
        | Some steps -> Depgraph.to_schedule dep ~steps
        | None -> search (deadline + 1)
    in
    Some (search cl)
  end
